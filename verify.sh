#!/bin/sh
# Verification gate: vet, build, race-enabled tests. Same as `make verify`.
set -eux
# Metric-name lint: registry names must be literal dotted snake_case and
# never reuse one name across instrument types (cheap, so it runs first).
./scripts/metric_lint.sh
go vet ./...
go build ./...
# Fast early gate: the telemetry layer, the kernels it instruments and
# the scale-out transport are the most concurrency-sensitive packages;
# shake them under the race detector before the long full-tree pass.
go test -race -count=1 ./internal/telemetry ./internal/tensor ./internal/dist
go test -race -timeout 90m ./...
# Build-only smoke for the benchmark snapshot harnesses: without their env
# gates they compile, link and skip, so CI never depends on timing.
go test -run 'TestODQConvBenchSnapshot|TestTrainGemmBenchSnapshot|TestTelemetryBenchSnapshot|TestBitplaneBenchSnapshot|TestDistBenchSnapshot' -count=1 .
# Crash-safety gate: train, SIGKILL mid-run, resume; the resumed run must
# be bit-identical to one that was never interrupted.
./scripts/resume_smoke.sh
# Serving gate: start odq-serve, concurrent request burst, assert all 200s
# with cross-request batching visible on the metrics endpoint, then a
# graceful SIGTERM drain.
./scripts/serve_smoke.sh
# Scale-out gate: a 2-worker fleet and a killed-then-elastically-resumed
# fleet must both be byte-identical to a 1-worker run at the same sync
# group.
./scripts/dist_smoke.sh
# Observability gate: a real 2-process TCP fleet must share one run trace
# id across the dist handshake, and odq-tracemerge must fold the
# per-rank trace files into one lane-per-rank Perfetto trace.
./scripts/trace_smoke.sh
# Self-healing gate: SIGKILL one of three elastic workers mid-epoch and
# the survivors must regroup to a byte-identical checkpoint; a forced
# replica panic in odq-serve must answer 503 + Retry-After, respawn the
# replica and return /readyz to ready.
./scripts/chaos_smoke.sh
