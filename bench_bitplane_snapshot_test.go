package repro_bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// BitplanePredictorBench compares the AND+POPCNT bitplane predictor
// kernel against the int-GEMM it replaced, at the benchmark conv layer's
// predictor shape. The bitplane timing includes activation packing (the
// real per-forward cost); weight planes are packed once, as the executor
// caches them.
type BitplanePredictorBench struct {
	Shape      string  `json:"shape"`
	BitplaneNs int64   `json:"bitplane_ns"`
	IntGemmNs  int64   `json:"int_gemm_ns"`
	Speedup    float64 `json:"speedup"`
}

// BitplaneConvRecord is one cell of the conv grid: sensitivity level ×
// executor variant.
type BitplaneConvRecord struct {
	Sensitivity string  `json:"sensitivity"`
	Threshold   float32 `json:"threshold"`
	Variant     string  `json:"variant"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BitplanePipelineBench times a multi-layer forward with the packed-INT4
// quantized-domain pipeline against the float round-trip path on the same
// net and executor.
type BitplanePipelineBench struct {
	Net              string  `json:"net"`
	FusedConvs       int     `json:"fused_convs"`
	FloatRoundtripNs int64   `json:"float_roundtrip_ns"`
	PackedDomainNs   int64   `json:"packed_domain_ns"`
	Speedup          float64 `json:"speedup"`
}

// BitplaneBenchSnapshot is the BENCH_bitplane.json schema.
type BitplaneBenchSnapshot struct {
	Layer     string                 `json:"layer"`
	Predictor BitplanePredictorBench `json:"predictor"`
	Records   []BitplaneConvRecord   `json:"records"`
	// SparseSpeedup maps each sensitivity level to dense-ns /
	// sparse-bitplane-ns. The tentpole acceptance bar is sens100 >= 1:
	// the ODQ sparse executor must not lose to dense even when every
	// output is sensitive.
	SparseSpeedup map[string]float64 `json:"sparse_speedup_vs_dense"`
	// BitplaneSpeedup maps each sensitivity level to legacy-int-GEMM-ns /
	// sparse-bitplane-ns.
	BitplaneSpeedup map[string]float64    `json:"bitplane_speedup_vs_legacy"`
	Pipeline        BitplanePipelineBench `json:"pipeline"`
}

// minInterleaved benchmarks the entries round-robin for the given number
// of rounds and keeps each entry's fastest result. Interleaving matters
// on a noisy shared host: slow-varying background load then hits every
// variant alike instead of whichever one happened to run during the
// burst, so the ratios between entries stay meaningful even when the
// absolute numbers wobble.
func minInterleaved(rounds int, fns ...func(b *testing.B)) []testing.BenchmarkResult {
	best := make([]testing.BenchmarkResult, len(fns))
	for rep := 0; rep < rounds; rep++ {
		for i, f := range fns {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				f(b)
			})
			if rep == 0 || res.NsPerOp() < best[i].NsPerOp() {
				best[i] = res
			}
		}
	}
	return best
}

// benchPackedNet builds a bench-scale flat net the packed pipeline can
// fuse: float first conv (tail-only convention), then two fusable
// conv(+bn)+act groups with a pool between them.
func benchPackedNet(rng *tensor.RNG) *nn.Sequential {
	act := func(name string, rangeV float32) *quant.QuantReLU {
		a := quant.NewQuantReLU(name, 4)
		a.Range = rangeV
		return a
	}
	conv0 := nn.NewConv2D("conv0", 3, 16, 3, 1, 1, true, rng)
	bn0 := nn.NewBatchNorm2D("bn0", 16)
	conv1 := nn.NewConv2D("conv1", 16, 32, 3, 1, 1, true, rng)
	bn1 := nn.NewBatchNorm2D("bn1", 32)
	conv2 := nn.NewConv2D("conv2", 32, 32, 3, 1, 1, false, rng)
	for _, bn := range []*nn.BatchNorm2D{bn0, bn1} {
		for ch := 0; ch < bn.C; ch++ {
			bn.RunningMean.Data[ch] = 0.1 * float32(rng.Normal())
			bn.RunningVar.Data[ch] = 0.5 + rng.Float32()
			bn.Gamma.W.Data[ch] = 0.5 + rng.Float32()
			bn.Beta.W.Data[ch] = 0.1 * float32(rng.Normal())
		}
	}
	return nn.NewSequential("benchnet",
		conv0, bn0, act("act0", 1),
		conv1, bn1, act("act1", 1.5), nn.NewMaxPool2D("pool1", 2, 2),
		conv2, act("act2", 1.2),
	)
}

// TestBitplaneBenchSnapshot regenerates BENCH_bitplane.json. It only runs
// when BITPLANE_BENCH_SNAPSHOT=1 (benchmarking inside the normal test
// suite would make CI timing-dependent):
//
//	BITPLANE_BENCH_SNAPSHOT=1 go test -run TestBitplaneBenchSnapshot .
func TestBitplaneBenchSnapshot(t *testing.T) {
	if os.Getenv("BITPLANE_BENCH_SNAPSHOT") != "1" {
		t.Skip("set BITPLANE_BENCH_SNAPSHOT=1 to regenerate BENCH_bitplane.json")
	}
	conv, x := benchConvLayer()
	snap := &BitplaneBenchSnapshot{
		Layer:           "conv 16x32x32 -> 32 filters 3x3 s1 p1, batch 1",
		SparseSpeedup:   map[string]float64{},
		BitplaneSpeedup: map[string]float64{},
	}

	// --- Predictor micro: HBS x HBS, bitplane vs int-GEMM ---
	const outC, rows, cols = 32, 16 * 3 * 3, 32 * 32
	rng := tensor.NewRNG(11)
	wh := make([]int32, outC*rows)  // signed 2-bit HBS weights
	xhT := make([]int32, cols*rows) // unsigned 2-bit HBS codes, [cols][rows]
	for i := range wh {
		wh[i] = int32(rng.Intn(4)) - 2
	}
	for i := range xhT {
		xhT[i] = int32(rng.Intn(4))
	}
	// The int-GEMM path wants the activation matrix as [rows][cols].
	xh := make([]int32, rows*cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			xh[r*cols+c] = xhT[c*rows+r]
		}
	}
	whBP := tensor.NewBitplanes(outC, rows, 2, true)
	whBP.PackRows(wh)
	acc := make([]int64, outC*cols)
	predRes := minInterleaved(3,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xhBP := tensor.NewBitplanes(cols, rows, 2, false)
				xhBP.PackRows(xhT)
				for oc := 0; oc < outC; oc++ {
					tensor.BitplaneMulRow(acc[oc*cols:(oc+1)*cols], whBP, oc, xhBP)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.GemmInt(wh, xh, acc, outC, rows, cols)
			}
		})
	bpRes, gemmRes := predRes[0], predRes[1]
	snap.Predictor = BitplanePredictorBench{
		Shape:      "32x144 . 144x1024 (2-bit HBS)",
		BitplaneNs: bpRes.NsPerOp(),
		IntGemmNs:  gemmRes.NsPerOp(),
		Speedup:    float64(gemmRes.NsPerOp()) / float64(bpRes.NsPerOp()),
	}

	// --- Conv grid: sensitivity x executor variant ---
	variants := []struct {
		name string
		opts []core.Option
	}{
		{"sparse-bitplane", nil},
		{"sparse-legacy", []core.Option{core.WithIntGEMMPredictor()}},
		{"dense", []core.Option{core.WithDenseReference()}},
	}
	for _, p := range odqBenchGrid {
		th := thresholdForSensitivity(conv, x, p.target)
		fns := make([]func(b *testing.B), len(variants))
		for i, v := range variants {
			exec := core.NewExec(th, v.opts...)
			fns[i] = func(b *testing.B) {
				conv.Exec = exec
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					conv.Forward(x, false)
				}
			}
		}
		results := minInterleaved(3, fns...)
		conv.Exec = nil
		ns := map[string]int64{}
		for i, v := range variants {
			res := results[i]
			ns[v.name] = res.NsPerOp()
			snap.Records = append(snap.Records, BitplaneConvRecord{
				Sensitivity: p.name,
				Threshold:   th,
				Variant:     v.name,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			})
		}
		snap.SparseSpeedup[p.name] = float64(ns["dense"]) / float64(ns["sparse-bitplane"])
		snap.BitplaneSpeedup[p.name] = float64(ns["sparse-legacy"]) / float64(ns["sparse-bitplane"])
	}
	if s := snap.SparseSpeedup["sens100"]; s < 1.0 {
		t.Errorf("sparse bitplane executor lost to dense at 100%% sensitivity: speedup %.3f", s)
	}

	// --- Packed-domain pipeline vs float round-trip, multi-layer ---
	nrng := tensor.NewRNG(12)
	net := benchPackedNet(nrng)
	px := tensor.New(1, 3, 32, 32)
	nrng.FillUniform(px, 0, 1)

	sess := infer.NewSessionFromExecutor(net, "odq", core.NewExec(0.5), true)
	if err := sess.EnablePackedDomain(); err != nil {
		t.Fatalf("EnablePackedDomain: %v", err)
	}
	fused := sess.Pipeline().FusedConvs()
	// The float round-trip path is the exact module chain the packed
	// session replaced (Session.Forward without a pipeline is
	// net.Forward); benchmarking it directly lets the two paths
	// interleave on one session.
	pipeRes := minInterleaved(3,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Forward(px, false)
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sess.Forward(px)
			}
		})
	floatRes, packedRes := pipeRes[0], pipeRes[1]
	sess.Close()
	snap.Pipeline = BitplanePipelineBench{
		Net:              "conv3-16 / conv16-32+pool / conv32-32, 32x32 input, 2 fused",
		FusedConvs:       fused,
		FloatRoundtripNs: floatRes.NsPerOp(),
		PackedDomainNs:   packedRes.NsPerOp(),
		Speedup:          float64(floatRes.NsPerOp()) / float64(packedRes.NsPerOp()),
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_bitplane.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("predictor bitplane-vs-gemm speedup: %.2f", snap.Predictor.Speedup)
	t.Logf("sparse-vs-dense speedups: %v", snap.SparseSpeedup)
	t.Logf("bitplane-vs-legacy speedups: %v", snap.BitplaneSpeedup)
	t.Logf("packed pipeline speedup: %.2f", snap.Pipeline.Speedup)
}
