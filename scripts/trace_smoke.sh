#!/bin/sh
# Cross-process trace-correlation smoke test: a real 2-process TCP
# training fleet must produce per-rank trace files that
#
#   1. carry the SAME nonzero run trace id on both ranks (the id is
#      minted once on the coordinator and adopted by the joiner during
#      the dist handshake — if propagation breaks, the ids differ and
#      odq-tracemerge refuses the merge),
#   2. odq-tracemerge combines into one Perfetto-loadable file with a
#      distinct, rank-tagged process lane per rank and real spans in
#      both lanes.
set -eu

tmp=$(mktemp -d)
r0_pid=""
r1_pid=""
cleanup() {
    [ -n "$r0_pid" ] && kill -9 "$r0_pid" 2>/dev/null || true
    [ -n "$r1_pid" ] && kill -9 "$r1_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/odq-train" ./cmd/odq-train
go build -o "$tmp/odq-tracemerge" ./cmd/odq-tracemerge

flags="-model lenet5 -dataset mnist -samples 32 -batch 16 -epochs 1 -seed 9 -workers 2"

# A tiny fleet on a PID-derived port; retry on collision.
attempt=0
ok=1
while [ "$attempt" -lt 3 ]; do
    attempt=$((attempt + 1))
    port=$((20000 + ($$ + attempt * 101) % 20000))
    echo "trace_smoke: 2-process fleet on 127.0.0.1:$port (attempt $attempt)"
    "$tmp/odq-train" $flags -rank 0 -coord "127.0.0.1:$port" \
        -trace-out "$tmp/rank0.json" >"$tmp/r0.out" 2>&1 &
    r0_pid=$!
    "$tmp/odq-train" $flags -rank 1 -coord "127.0.0.1:$port" \
        -trace-out "$tmp/rank1.json" >"$tmp/r1.out" 2>&1 &
    r1_pid=$!
    if wait "$r0_pid" && wait "$r1_pid"; then
        r0_pid=""
        r1_pid=""
        ok=0
        break
    fi
    r0_pid=""
    r1_pid=""
done
if [ "$ok" -ne 0 ]; then
    echo "trace_smoke: FAIL — fleet run did not complete:" >&2
    cat "$tmp/r0.out" "$tmp/r1.out" >&2
    exit 1
fi

for f in rank0.json rank1.json; do
    if [ ! -s "$tmp/$f" ]; then
        echo "trace_smoke: FAIL — no trace file $f written" >&2
        exit 1
    fi
done

# Correlation: both ranks must carry the same nonzero run id.
id0=$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/rank0.json" | head -1)
id1=$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/rank1.json" | head -1)
if [ -z "$id0" ] || [ "$id0" = "0000000000000000" ]; then
    echo "trace_smoke: FAIL — rank 0 trace has no run id" >&2
    exit 1
fi
if [ "$id0" != "$id1" ]; then
    echo "trace_smoke: FAIL — run id mismatch: rank0=$id0 rank1=$id1 (handshake did not propagate the trace id)" >&2
    exit 1
fi
echo "trace_smoke: both ranks tagged with run $id0"

# Merge; the tool itself enforces matching run ids.
"$tmp/odq-tracemerge" -o "$tmp/merged.json" "$tmp/rank0.json" "$tmp/rank1.json"

for lane in "train rank 0" "train rank 1"; do
    if ! grep -q "\"name\": *\"$lane\"" "$tmp/merged.json"; then
        echo "trace_smoke: FAIL — merged trace has no \"$lane\" lane" >&2
        exit 1
    fi
done
# Both pids must own real spans, not just the naming metadata event.
# (Indented JSON: each event spans several lines, "ph" before "pid".)
for pid in 1 2; do
    if ! awk -v p="$pid" '
        /"ph": "X"/ { x = 1 }
        x && $0 ~ "\"pid\": " p "," { found = 1 }
        /\}/ { x = 0 }
        END { exit !found }' "$tmp/merged.json"; then
        echo "trace_smoke: FAIL — no spans in merged lane pid=$pid" >&2
        exit 1
    fi
done

spans=$(grep -c '"ph": *"X"' "$tmp/merged.json" || true)
echo "trace_smoke: OK — merged trace has both rank lanes, $spans spans, run $id0"
