#!/bin/sh
# Fleet self-healing smoke test, both halves of the chaos story:
#
# Training (elastic regroup):
#   1. Reference run: an uninterrupted 2-worker in-process fleet at sync
#      group 3, per-epoch checkpoints.
#   2. Chaos run: a 3-process TCP elastic fleet at the SAME sync group.
#      One worker SIGKILLs itself mid-epoch (at optimizer step 3, after
#      the epoch-1 checkpoint is durable). The survivors must detect the
#      death via heartbeats, regroup at world 2, roll back to the last
#      checkpoint and finish.
#   3. Pass: the chaos run's final checkpoint is byte-identical to the
#      uninterrupted reference — the kill is invisible in the bytes.
#
# Serving (supervised replicas):
#   4. odq-serve -chaos -replicas 2; arm a panic via POST
#      /v1/chaos/panic. The crashed batch answers 503 with Retry-After,
#      the process survives, /readyz returns to "ready" after the
#      supervisor respawns the replica, /v1/status shows the restart,
#      and inference works again. SIGTERM still drains exit-0.
set -eu

tmp=$(mktemp -d)
coord_pid=""
w1_pid=""
w2_pid=""
server_pid=""
cleanup() {
    for p in "$coord_pid" "$w1_pid" "$w2_pid" "$server_pid"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/odq-train" ./cmd/odq-train
go build -o "$tmp/odq-serve" ./cmd/odq-serve

# ---------- Training: SIGKILL one of three workers mid-epoch ----------

# 80 samples / batch 16 = 5 batches, group 3 -> 2 optimizer steps per
# epoch. Step 3 is mid-epoch-2, strictly after the epoch-1 checkpoint.
flags="-model lenet5 -dataset mnist -samples 80 -batch 16 -epochs 3 -ckpt-every 1 -seed 5 -group 3"

echo "chaos_smoke: reference run (uninterrupted 2-worker fleet, -group 3)"
"$tmp/odq-train" $flags -workers 2 -o "$tmp/ref.ckpt" >"$tmp/ref.out" 2>&1

echo "chaos_smoke: elastic 3-process fleet, worker 2 SIGKILLs itself at step 3"
eflags="$flags -elastic -workers 3 -hb-interval 50ms -hb-timeout 1500ms -regroup-timeout 20s"
attempt=0
ok=1
while [ "$attempt" -lt 3 ]; do
    attempt=$((attempt + 1))
    port=$((20000 + ($$ + attempt * 101) % 20000))
    echo "chaos_smoke: fleet on 127.0.0.1:$port (attempt $attempt)"
    rm -f "$tmp/elastic.ckpt"
    "$tmp/odq-train" $eflags -rank 0 -coord "127.0.0.1:$port" \
        -o "$tmp/elastic.ckpt" >"$tmp/r0.out" 2>&1 &
    coord_pid=$!
    "$tmp/odq-train" $eflags -rank 1 -coord "127.0.0.1:$port" \
        -o "$tmp/elastic.ckpt" >"$tmp/r1.out" 2>&1 &
    w1_pid=$!
    "$tmp/odq-train" $eflags -rank 2 -coord "127.0.0.1:$port" \
        -kill-after-steps 3 -o "$tmp/elastic.ckpt" >"$tmp/r2.out" 2>&1 &
    w2_pid=$!

    # The victim must die by SIGKILL (nonzero status), the survivors
    # must regroup and finish cleanly.
    victim_ok=1
    if wait "$w2_pid"; then victim_ok=0; fi
    w2_pid=""
    if wait "$coord_pid" && wait "$w1_pid"; then
        coord_pid=""
        w1_pid=""
        if [ "$victim_ok" -ne 1 ]; then
            echo "chaos_smoke: FAIL — the victim exited cleanly instead of being killed" >&2
            exit 1
        fi
        ok=0
        break
    fi
    coord_pid=""
    w1_pid=""
done
if [ "$ok" -ne 0 ]; then
    echo "chaos_smoke: FAIL — elastic fleet did not survive the kill:" >&2
    tail -5 "$tmp/r0.out" "$tmp/r1.out" "$tmp/r2.out" >&2
    exit 1
fi
if ! grep -q "peer lost, regrouping" "$tmp/r0.out"; then
    echo "chaos_smoke: FAIL — coordinator log shows no regroup:" >&2
    tail -10 "$tmp/r0.out" >&2
    exit 1
fi
if ! cmp -s "$tmp/ref.ckpt" "$tmp/elastic.ckpt"; then
    echo "chaos_smoke: FAIL — post-regroup checkpoint differs from the uninterrupted reference" >&2
    exit 1
fi
ref_acc=$(grep '^test accuracy' "$tmp/ref.out")
chaos_acc=$(grep '^test accuracy' "$tmp/r0.out")
if [ "$ref_acc" != "$chaos_acc" ]; then
    echo "chaos_smoke: FAIL — accuracy mismatch: '$ref_acc' vs '$chaos_acc'" >&2
    exit 1
fi
echo "chaos_smoke: regroup OK — survivors byte-identical to the uninterrupted fleet ($ref_acc)"

# ---------- Serving: forced replica panic, supervised respawn ----------

echo "chaos_smoke: odq-serve with 2 supervised replicas and chaos armed"
"$tmp/odq-serve" -model lenet5 -dataset mnist -scheme odq -addr 127.0.0.1:0 \
    -replicas 2 -chaos -respawn-delay 100ms \
    -max-batch 4 -batch-deadline 20ms 2>"$tmp/serve.log" &
server_pid=$!

base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/.*msg="odq-serve listening".* url=\(http:\/\/[0-9.:]*\).*/\1/p' "$tmp/serve.log" | head -1)
    [ -n "$base" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "chaos_smoke: FAIL — server died at startup:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$base" ] || { echo "chaos_smoke: FAIL — no listen url in serve log" >&2; exit 1; }

awk 'BEGIN{printf "{\"input\":["; for(i=0;i<784;i++){printf "0.5"; if(i<783) printf ","}; printf "]}"}' >"$tmp/req.json"
infer_code() {
    curl -s -o "$tmp/resp.json" -D "$tmp/headers.txt" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        --data @"$tmp/req.json" "$base/v1/infer"
}

code=$(infer_code)
if [ "$code" != "200" ]; then
    echo "chaos_smoke: FAIL — warm request got HTTP $code" >&2
    exit 1
fi

echo "chaos_smoke: injecting a replica panic"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/chaos/panic")
[ "$code" = "200" ] || { echo "chaos_smoke: FAIL — /v1/chaos/panic got $code" >&2; exit 1; }

# The armed panic fires on the next executor pass: that request must be
# answered 503 with a Retry-After — never dropped, never a process crash.
code=$(infer_code)
if [ "$code" != "503" ]; then
    echo "chaos_smoke: FAIL — request on the panicked pass got HTTP $code, want 503" >&2
    exit 1
fi
if ! grep -qi '^retry-after:' "$tmp/headers.txt"; then
    echo "chaos_smoke: FAIL — 503 carries no Retry-After header" >&2
    exit 1
fi
if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "chaos_smoke: FAIL — the replica panic took the whole server down" >&2
    exit 1
fi

echo "chaos_smoke: waiting for the supervisor to respawn the replica"
ready=1
for _ in $(seq 1 100); do
    if curl -s "$base/readyz" | grep -q '^ready$'; then
        ready=0
        break
    fi
    sleep 0.1
done
if [ "$ready" -ne 0 ]; then
    echo "chaos_smoke: FAIL — /readyz never returned to 'ready' after the respawn: $(curl -s "$base/readyz")" >&2
    exit 1
fi
if ! curl -s "$base/v1/status" | grep -q '"restarts":1'; then
    echo "chaos_smoke: FAIL — /v1/status shows no replica restart" >&2
    exit 1
fi
code=$(infer_code)
if [ "$code" != "200" ]; then
    echo "chaos_smoke: FAIL — post-respawn request got HTTP $code" >&2
    exit 1
fi

kill -TERM "$server_pid"
if wait "$server_pid"; then :; else
    echo "chaos_smoke: FAIL — SIGTERM drain exited nonzero after the chaos drill:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
server_pid=""
echo "chaos_smoke: OK — kill-regroup byte-identical, panicked replica respawned, clean drain"
