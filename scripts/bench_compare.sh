#!/bin/sh
# Regenerate every benchmark snapshot and diff it against the committed
# BENCH_*.json baseline with cmd/odq-benchcmp. The committed files are
# saved first and always restored, so the working tree is left untouched.
#
# Timing on shared hardware is noisy: the comparison is informational.
# The script's exit status is 1 if any metric slowed down beyond the
# tolerance (default +50%; override with BENCH_TOL), so callers can choose
# to gate on it — the full CI tier runs it with continue-on-error.
set -eu

cd "$(dirname "$0")/.."
TOL="${BENCH_TOL:-0.5}"

go build -o /tmp/odq-benchcmp ./cmd/odq-benchcmp

SNAPSHOTS="
BENCH_odq_conv.json|ODQ_BENCH_SNAPSHOT|TestODQConvBenchSnapshot
BENCH_train_gemm.json|TRAIN_BENCH_SNAPSHOT|TestTrainGemmBenchSnapshot
BENCH_telemetry.json|TELEMETRY_BENCH_SNAPSHOT|TestTelemetryBenchSnapshot
BENCH_bitplane.json|BITPLANE_BENCH_SNAPSHOT|TestBitplaneBenchSnapshot
BENCH_dist.json|DIST_BENCH_SNAPSHOT|TestDistBenchSnapshot
"

status=0
for entry in $SNAPSHOTS; do
    file=$(echo "$entry" | cut -d'|' -f1)
    env_gate=$(echo "$entry" | cut -d'|' -f2)
    test_name=$(echo "$entry" | cut -d'|' -f3)
    if [ ! -f "$file" ]; then
        echo "== $file: no committed baseline, skipping"
        continue
    fi
    cp "$file" "/tmp/$file.committed"
    echo "== regenerating $file ($test_name)"
    if env "$env_gate=1" go test -run "$test_name" -timeout 60m -count=1 . >/dev/null; then
        echo "== comparing $file (tolerance +$(echo "$TOL" | awk '{printf "%.0f", $1*100}')%)"
        /tmp/odq-benchcmp -tol "$TOL" "/tmp/$file.committed" "$file" || status=1
    else
        echo "== $file: regeneration failed"
        status=1
    fi
    # Restore the committed baseline whatever happened.
    mv "/tmp/$file.committed" "$file"
done
exit $status
