#!/bin/sh
# Metric-name lint: every registry lookup must use a literal, dotted,
# snake_case name, and a name must never be claimed by two different
# instrument types.
#
# Why: the Prometheus exposition derives series names from these strings
# (dots → underscores) and must emit exactly one TYPE line per name; a
# dynamic name dodges the duplicate check and invites unbounded series
# cardinality, and a type-colliding duplicate silently drops samples
# (see addSnap in internal/telemetry/prom.go). Linting the call sites
# keeps both failure modes out of the codebase instead of surfacing
# them at scrape time.
#
# Escape hatch: a line ending in a "//metric_lint:allow <reason>"
# comment is waived — for deliberately dynamic names whose cardinality
# is bounded by construction (e.g. per-layer series keyed by model
# depth). Test files are skipped; helpers there parameterize names.
set -eu
cd "$(dirname "$0")/.."

grep -rn --include='*.go' --exclude='*_test.go' \
    -E 'telemetry\.Get(Counter|Gauge|Histogram)\(' \
    cmd internal examples ./*.go 2>/dev/null | awk '
{
    # Re-split manually: code may itself contain colons.
    loc = $0
    sub(/^([^:]*:[0-9]*):.*/, "", loc)
    split($0, parts, ":")
    loc = parts[1] ":" parts[2]
    code = substr($0, length(loc) + 2)

    if (code ~ /\/\/metric_lint:allow /) next

    rest = code
    while (match(rest, /telemetry\.Get(Counter|Gauge|Histogram)\([^,)]*/)) {
        call = substr(rest, RSTART, RLENGTH)
        rest = substr(rest, RSTART + RLENGTH)
        type = call
        sub(/^telemetry\.Get/, "", type)
        sub(/\(.*/, "", type)
        arg = call
        sub(/^[^(]*\(/, "", arg)

        if (arg !~ /^"/) {
            printf "metric_lint: %s: Get%s name is not a string literal: %s\n", loc, type, arg
            bad = 1
            continue
        }
        if (arg !~ /^"[a-z0-9_]+(\.[a-z0-9_]+)+"$/) {
            printf "metric_lint: %s: Get%s name %s is not dotted snake_case (want \"namespace.metric_name\")\n", loc, type, arg
            bad = 1
            continue
        }
        name = substr(arg, 2, length(arg) - 2)
        if (name in types && types[name] != type) {
            printf "metric_lint: %s: %s registered as both %s (%s) and %s\n", loc, name, types[name], where[name], type
            bad = 1
            continue
        }
        types[name] = type
        where[name] = loc
        n++
    }
}
END {
    if (bad) exit 1
    printf "metric_lint: OK — %d literal metric names, no type collisions\n", n + 0
}
'
