#!/bin/sh
# Serving smoke test: start odq-serve on an ephemeral port, fire a
# concurrent request burst, and assert
#
#   1. every request returns HTTP 200 with a logits payload,
#   2. /healthz and /readyz both answer 200 on a live, non-draining
#      server,
#   3. the batch-size histogram on the -debug-addr metrics endpoint is
#      nonzero — on both /debug/vars (JSON) and the Prometheus /metrics
#      exposition — and the mean batch size exceeds 1 (dynamic batching
#      actually batched the burst),
#   4. SIGTERM drains gracefully and the server exits 0.
#
# Uses a randomly initialized lenet5/mnist model (no checkpoint): the
# smoke test exercises the serving machinery, not model quality.
set -eu

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/odq-serve" ./cmd/odq-serve

"$tmp/odq-serve" -model lenet5 -dataset mnist -scheme odq -threshold 0.5 \
    -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -max-batch 8 -batch-deadline 50ms 2>"$tmp/serve.log" &
server_pid=$!

# The server logs its bound addresses to stderr (structured text log:
# msg="odq-serve listening" url=http://... / msg="telemetry debug server
# listening" addr=...); poll for both.
base=""
dbg=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/.*msg="odq-serve listening".* url=\(http:\/\/[0-9.:]*\).*/\1/p' "$tmp/serve.log" | head -1)
    dbg=$(sed -n 's/.*msg="telemetry debug server listening".* addr=\([0-9.:]*\).*/\1/p' "$tmp/serve.log" | head -1)
    [ -n "$base" ] && [ -n "$dbg" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_smoke: FAIL — server died at startup:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$base" ] || [ -z "$dbg" ]; then
    echo "serve_smoke: FAIL — could not parse listen addresses from:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
echo "serve_smoke: server at $base, metrics at $dbg"

# Probe split: /healthz (liveness) and /readyz (readiness) both answer
# 200 on a freshly started, non-draining server.
for probe in healthz readyz; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$base/$probe")
    if [ "$code" != "200" ]; then
        echo "serve_smoke: FAIL — /$probe returned $code before any drain, want 200" >&2
        exit 1
    fi
done
echo "serve_smoke: /healthz and /readyz both 200"

# One 1x28x28 input: 784 zeros (the model is random-init; any input works).
python3 -c "print('{\"input\":[' + ','.join(['0.5']*784) + ']}')" >"$tmp/req.json" 2>/dev/null \
    || awk 'BEGIN{printf "{\"input\":["; for(i=0;i<784;i++){printf "0.5"; if(i<783) printf ","}; printf "]}"}' >"$tmp/req.json"

curl_one() {
    curl -s -o "$tmp/resp.$1.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        --data @"$tmp/req.json" "$base/v1/infer" >"$tmp/code.$1"
}

echo "serve_smoke: 24 concurrent requests (3 waves of 8)"
for wave in 1 2 3; do
    pids=""
    for i in 1 2 3 4 5 6 7 8; do
        curl_one "$wave.$i" &
        pids="$pids $!"
    done
    # Wait for the curls only — a bare `wait` would also wait on the
    # backgrounded server, which never exits.
    wait $pids
done

fails=0
for f in "$tmp"/code.*; do
    code=$(cat "$f")
    if [ "$code" != "200" ]; then
        echo "serve_smoke: FAIL — request $(basename "$f") got HTTP $code" >&2
        fails=$((fails + 1))
    fi
done
[ "$fails" -eq 0 ] || exit 1
if ! grep -q '"logits"' "$tmp/resp.1.1.json"; then
    echo "serve_smoke: FAIL — response carries no logits: $(cat "$tmp/resp.1.1.json")" >&2
    exit 1
fi

# Batching proof #1: the batch-size histogram on /debug/vars is nonzero.
curl -s "http://$dbg/debug/vars" >"$tmp/vars.json"
if ! grep -q 'serve.batch_size' "$tmp/vars.json"; then
    echo "serve_smoke: FAIL — no serve.batch_size histogram on the metrics endpoint" >&2
    exit 1
fi
# Prometheus exposition: /metrics must expose the batch-size histogram
# as cumulative bucket series under the snake_cased name.
curl -s "http://$dbg/metrics" >"$tmp/metrics.prom"
if ! grep -q '^serve_batch_size_bucket' "$tmp/metrics.prom"; then
    echo "serve_smoke: FAIL — no serve_batch_size_bucket series on /metrics:" >&2
    head -20 "$tmp/metrics.prom" >&2
    exit 1
fi
if ! grep -q '^# TYPE serve_batch_size histogram' "$tmp/metrics.prom"; then
    echo "serve_smoke: FAIL — /metrics missing TYPE line for serve_batch_size" >&2
    exit 1
fi
# Batching proof #2: /v1/status mean_batch > 1 (the waves of 8 with a
# 50ms deadline must have shared executor passes).
status=$(curl -s "$base/v1/status")
mean=$(printf '%s' "$status" | sed -n 's/.*"mean_batch":\([0-9.]*\).*/\1/p')
if [ -z "$mean" ]; then
    echo "serve_smoke: FAIL — no mean_batch in status: $status" >&2
    exit 1
fi
if ! awk -v m="$mean" 'BEGIN{exit !(m > 1)}'; then
    echo "serve_smoke: FAIL — mean batch size $mean, want > 1 (no cross-request batching)" >&2
    exit 1
fi
echo "serve_smoke: mean batch size $mean"

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$server_pid"
drained=1
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        drained=0
        break
    fi
    sleep 0.1
done
if [ "$drained" -ne 0 ]; then
    echo "serve_smoke: FAIL — server did not exit within 10s of SIGTERM" >&2
    exit 1
fi
if wait "$server_pid"; then :; else
    echo "serve_smoke: FAIL — server exited nonzero on SIGTERM drain:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
server_pid=""
echo "serve_smoke: OK — 24/24 requests 200, mean batch $mean, clean SIGTERM drain"
