#!/bin/sh
# Crash-safety smoke test: train, SIGKILL mid-run, resume, and assert the
# resumed run is bit-identical to one that was never interrupted.
#
#   1. Reference run: 2 epochs with per-epoch checkpoints.
#   2. Crash run: same flags, but -kill-after 1 SIGKILLs the process right
#      after epoch 1's checkpoint lands (no cleanup runs — the power cord).
#   3. Resume run: -resume picks the crash run back up for epoch 2.
#
# Pass criteria: the resumed checkpoint is byte-for-byte identical to the
# reference checkpoint, and both runs report the same test accuracy.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/odq-train" ./cmd/odq-train

flags="-model lenet5 -dataset mnist -samples 64 -batch 16 -epochs 2 -ckpt-every 1 -seed 5"

echo "resume_smoke: reference run (uninterrupted)"
"$tmp/odq-train" $flags -o "$tmp/ref.ckpt" >"$tmp/ref.out" 2>/dev/null

echo "resume_smoke: crash run (SIGKILL after epoch 1)"
if "$tmp/odq-train" $flags -o "$tmp/crash.ckpt" -kill-after 1 >/dev/null 2>&1; then
    echo "resume_smoke: FAIL — crash run exited normally instead of being killed" >&2
    exit 1
fi
if [ ! -f "$tmp/crash.ckpt" ]; then
    echo "resume_smoke: FAIL — no checkpoint survived the kill" >&2
    exit 1
fi

echo "resume_smoke: resume run (epoch 2 from the checkpoint)"
"$tmp/odq-train" $flags -o "$tmp/crash.ckpt" -resume >"$tmp/resume.out" 2>/dev/null

if ! cmp -s "$tmp/ref.ckpt" "$tmp/crash.ckpt"; then
    echo "resume_smoke: FAIL — resumed checkpoint differs from the uninterrupted one" >&2
    exit 1
fi

ref_acc=$(grep '^test accuracy' "$tmp/ref.out")
res_acc=$(grep '^test accuracy' "$tmp/resume.out")
if [ "$ref_acc" != "$res_acc" ]; then
    echo "resume_smoke: FAIL — accuracy mismatch: '$ref_acc' vs '$res_acc'" >&2
    exit 1
fi

echo "resume_smoke: OK — resumed run is bit-identical ($ref_acc)"
