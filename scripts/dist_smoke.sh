#!/bin/sh
# Scale-out smoke test: the data-parallel trajectory must be a pure
# function of the sync group, not of the worker topology — including
# across a crash.
#
#   1. Reference run: 1 worker, sync group 2, per-epoch checkpoints.
#   2. Fleet run: 2 in-process workers (group defaults to the worker
#      count, 2) — must produce a byte-identical checkpoint.
#   3. Crash run: 2 workers again, but SIGKILLed right after epoch 1's
#      checkpoint lands.
#   4. Elastic resume: 1 worker picks the 2-worker checkpoint up (the
#      group size travels in the checkpoint, the topology does not).
#
# Pass criteria: the fleet checkpoint and the killed-then-resumed
# checkpoint are both byte-for-byte identical to the reference.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/odq-train" ./cmd/odq-train

flags="-model lenet5 -dataset mnist -samples 64 -batch 16 -epochs 3 -ckpt-every 1 -seed 5"

echo "dist_smoke: reference run (1 worker, -group 2)"
"$tmp/odq-train" $flags -group 2 -o "$tmp/ref.ckpt" >"$tmp/ref.out" 2>/dev/null

echo "dist_smoke: fleet run (2 in-process workers)"
"$tmp/odq-train" $flags -workers 2 -o "$tmp/fleet.ckpt" >"$tmp/fleet.out" 2>/dev/null
if ! cmp -s "$tmp/ref.ckpt" "$tmp/fleet.ckpt"; then
    echo "dist_smoke: FAIL — 2-worker checkpoint differs from the 1-worker one" >&2
    exit 1
fi

echo "dist_smoke: crash run (2 workers, SIGKILL after epoch 1)"
if "$tmp/odq-train" $flags -workers 2 -o "$tmp/crash.ckpt" -kill-after 1 >/dev/null 2>&1; then
    echo "dist_smoke: FAIL — crash run exited normally instead of being killed" >&2
    exit 1
fi
if [ ! -f "$tmp/crash.ckpt" ]; then
    echo "dist_smoke: FAIL — no checkpoint survived the kill" >&2
    exit 1
fi

echo "dist_smoke: elastic resume (killed 2-worker run resumed by 1 worker)"
"$tmp/odq-train" $flags -resume -o "$tmp/crash.ckpt" >"$tmp/resume.out" 2>/dev/null
if ! cmp -s "$tmp/ref.ckpt" "$tmp/crash.ckpt"; then
    echo "dist_smoke: FAIL — elastically resumed checkpoint differs from the reference" >&2
    exit 1
fi

ref_acc=$(grep '^test accuracy' "$tmp/ref.out")
fleet_acc=$(grep '^test accuracy' "$tmp/fleet.out")
res_acc=$(grep '^test accuracy' "$tmp/resume.out")
if [ "$ref_acc" != "$fleet_acc" ] || [ "$ref_acc" != "$res_acc" ]; then
    echo "dist_smoke: FAIL — accuracy mismatch: '$ref_acc' / '$fleet_acc' / '$res_acc'" >&2
    exit 1
fi

echo "dist_smoke: OK — 2-worker and kill-resume runs are bit-identical to 1 worker ($ref_acc)"
