package repro_bench

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/train"
)

// withTelemetry swaps in a fresh registry, enables collection, and
// restores the previous state when the test ends, so the process-global
// telemetry switch never leaks between tests.
func withTelemetry(t *testing.T) *telemetry.Registry {
	t.Helper()
	r := telemetry.NewRegistry()
	prev := telemetry.SetDefault(r)
	telemetry.Enable()
	t.Cleanup(func() {
		telemetry.Disable()
		telemetry.SetDefault(prev)
	})
	return r
}

// TestTelemetryParityQATStep checks instrumentation parity for training:
// two identically seeded QAT networks stepped on the same batch, one with
// telemetry enabled and one without, must produce bit-identical losses
// and parameters. Telemetry may only observe the computation, never
// perturb it.
func TestTelemetryParityQATStep(t *testing.T) {
	run := func(instrument bool) (losses []float32, netOut nn.Module) {
		if instrument {
			r := telemetry.NewRegistry()
			prev := telemetry.SetDefault(r)
			telemetry.Enable()
			defer func() {
				telemetry.Disable()
				telemetry.SetDefault(prev)
			}()
		}
		net := benchQATNet(false, tensor.NewRNG(42))
		x, y := benchQATBatch(tensor.NewRNG(43))
		opt := train.NewSGD(0.01, 0.9, 1e-4)
		params := net.Params()
		for i := 0; i < 3; i++ {
			loss, _ := train.Step(net, x, y, opt, params)
			losses = append(losses, loss)
		}
		return losses, net
	}
	lossOff, netOff := run(false)
	lossOn, netOn := run(true)
	for i := range lossOff {
		if lossOff[i] != lossOn[i] {
			t.Fatalf("step %d loss diverged: disabled %v enabled %v", i, lossOff[i], lossOn[i])
		}
	}
	pOff, pOn := netOff.Params(), netOn.Params()
	for i := range pOff {
		for j := range pOff[i].W.Data {
			if pOff[i].W.Data[j] != pOn[i].W.Data[j] {
				t.Fatalf("param %s[%d] diverged: disabled %v enabled %v",
					pOff[i].Name, j, pOff[i].W.Data[j], pOn[i].W.Data[j])
			}
		}
	}
}

// TestTelemetryParityODQInference checks instrumentation parity for the
// ODQ inference path: the executor's outputs must be bit-identical with
// telemetry enabled and disabled.
func TestTelemetryParityODQInference(t *testing.T) {
	run := func(instrument bool) *tensor.Tensor {
		if instrument {
			r := telemetry.NewRegistry()
			prev := telemetry.SetDefault(r)
			telemetry.Enable()
			defer func() {
				telemetry.Disable()
				telemetry.SetDefault(prev)
			}()
		}
		conv, x := benchConvLayer()
		conv.Exec = core.NewExec(0.5)
		defer func() { conv.Exec = nil }()
		return conv.Forward(x, false)
	}
	off := run(false)
	on := run(true)
	if len(off.Data) != len(on.Data) {
		t.Fatalf("output size diverged: %d vs %d", len(off.Data), len(on.Data))
	}
	for i := range off.Data {
		if off.Data[i] != on.Data[i] {
			t.Fatalf("output[%d] diverged: disabled %v enabled %v", i, off.Data[i], on.Data[i])
		}
	}
}

// TestTelemetrySensitivityRatio pins the per-layer sensitivity-ratio
// telemetry to the executor's own profiler across the BENCH_odq_conv.json
// scenarios (~30%, ~60%, 100% sensitive): for each, a fresh registry must
// report layer.c.sensitivity_ratio equal to Exec.SensitiveFraction.
func TestTelemetrySensitivityRatio(t *testing.T) {
	conv, x := benchConvLayer()
	for _, p := range odqBenchGrid {
		// Bisect with telemetry off so probe runs don't pollute the ratio.
		th := thresholdForSensitivity(conv, x, p.target)
		t.Run(p.name, func(t *testing.T) {
			withTelemetry(t)
			e := core.NewExec(th, core.WithProfiling())
			conv.Exec = e
			defer func() { conv.Exec = nil }()
			conv.Forward(x, false)

			snap := telemetry.Snapshot()
			got, ok := snap.Gauges["layer.c.sensitivity_ratio"]
			if !ok {
				t.Fatalf("layer.c.sensitivity_ratio missing from snapshot (gauges: %v)", snap.Gauges)
			}
			want := e.SensitiveFraction()
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s: telemetry ratio %v != profiler fraction %v", p.name, got, want)
			}
			if p.target >= 1 && got != 1 {
				t.Fatalf("sens100 must be exactly 1, got %v", got)
			}
			// The raw counters must agree with the ratio they feed.
			sens := snap.Counters["layer.c.sensitive"]
			tot := snap.Counters["layer.c.outputs"]
			if tot == 0 || float64(sens)/float64(tot) != got {
				t.Fatalf("counter ratio %d/%d inconsistent with gauge %v", sens, tot, got)
			}
		})
	}
}

// TestTelemetryODQConvCounters checks the executor-level counters and
// spans emitted by one instrumented ODQ conv: conv/predictor/executor
// spans present, partial-product accounting consistent with the 2-bit
// predictor (one high×high MAC per tap) and the sparse executor (three
// partials per sensitive output).
func TestTelemetryODQConvCounters(t *testing.T) {
	// The executor-level counters are package-var handles bound to the
	// process-default registry at init, so measure deltas there instead of
	// swapping in a fresh registry (which only dynamic per-layer names and
	// spans would follow).
	r := telemetry.Default()
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	r.ResetSpans()
	before := telemetry.Snapshot()

	conv, x := benchConvLayer()
	e := core.NewExec(0.5, core.WithProfiling())
	conv.Exec = e
	defer func() { conv.Exec = nil }()
	conv.Forward(x, false)

	snap := telemetry.Snapshot()
	if got := snap.Counters["odq.convs"] - before.Counters["odq.convs"]; got != 1 {
		t.Fatalf("odq.convs delta = %d, want 1", got)
	}
	pred := snap.Counters["odq.predictor.partial_products"] - before.Counters["odq.predictor.partial_products"]
	exec := snap.Counters["odq.executor.partial_products"] - before.Counters["odq.executor.partial_products"]
	profs := e.Profiles()
	if len(profs) != 1 {
		t.Fatalf("want 1 profile, got %d", len(profs))
	}
	lp := profs[0]
	macsPerOut := lp.TotalMACs / lp.TotalOutputs
	if want := lp.TotalOutputs * macsPerOut; pred != want {
		t.Fatalf("predictor partial products %d, want %d", pred, want)
	}
	if want := 3 * lp.SensitiveOutputs * macsPerOut; exec != want {
		t.Fatalf("executor partial products %d, want %d", exec, want)
	}

	names := map[string]bool{}
	for _, ev := range r.TraceEvents() {
		names[ev.Name] = true
	}
	for _, want := range []string{"odq.conv", "odq.predictor", "odq.executor", "nn.conv.forward"} {
		if !names[want] {
			t.Fatalf("trace missing span %q (have %v)", want, names)
		}
	}

	// The legacy int-GEMM predictor path still routes through the batched
	// GEMM kernels and must keep emitting their spans.
	conv.Exec = core.NewExec(0.5, core.WithIntGEMMPredictor())
	conv.Forward(x, false)
	names = map[string]bool{}
	for _, ev := range r.TraceEvents() {
		names[ev.Name] = true
	}
	for _, want := range []string{"gemm.pack", "gemm.kernel"} {
		if !names[want] {
			t.Fatalf("legacy path trace missing span %q (have %v)", want, names)
		}
	}
}

// ---------- Committed overhead snapshot ----------

// TelemetryCost is one disabled/enabled measurement pair.
type TelemetryCost struct {
	DisabledNs float64 `json:"disabled_ns"`
	EnabledNs  float64 `json:"enabled_ns"`
	// EnabledOverheadPct is (enabled-disabled)/disabled in percent.
	EnabledOverheadPct float64 `json:"enabled_overhead_pct"`
}

// TelemetryBenchSnapshot is the BENCH_telemetry.json schema. The micro
// section prices one instrumentation site; the macro section prices the
// two hot end-to-end paths the acceptance criteria name (QAT step, ODQ
// conv). The controlled measurement is EnabledOverheadPct — disabled and
// enabled runs interleaved in one process, so machine drift cancels —
// and it must stay under 2% (the disabled-path cost is strictly smaller
// still). The baseline comparison against the pre-instrumentation
// BENCH_train_gemm.json / BENCH_odq_conv.json numbers is informational
// only: those were recorded in an earlier session, so cross-session
// drift (CPU frequency, co-tenants) dominates sub-percent effects.
type TelemetryBenchSnapshot struct {
	Micro map[string]TelemetryCost `json:"micro_per_site"`
	Macro map[string]TelemetryCost `json:"macro"`
	// BaselineNs holds the pre-instrumentation ns/op recorded by the
	// earlier benchmark snapshots on this machine, for the disabled-
	// overhead comparison; DisabledVsBaselinePct is the regression of
	// today's telemetry-disabled run against that baseline.
	BaselineNs            map[string]float64 `json:"baseline_ns"`
	DisabledVsBaselinePct map[string]float64 `json:"disabled_vs_baseline_pct"`
}

func costPair(disabled, enabled testing.BenchmarkResult) TelemetryCost {
	d, e := float64(disabled.NsPerOp()), float64(enabled.NsPerOp())
	return TelemetryCost{
		DisabledNs:         d,
		EnabledNs:          e,
		EnabledOverheadPct: 100 * (e - d) / d,
	}
}

// TestTelemetryBenchSnapshot regenerates BENCH_telemetry.json. Env-gated
// like the other benchmark snapshots so CI never depends on timing:
//
//	TELEMETRY_BENCH_SNAPSHOT=1 go test -run TestTelemetryBenchSnapshot -v .
func TestTelemetryBenchSnapshot(t *testing.T) {
	if os.Getenv("TELEMETRY_BENCH_SNAPSHOT") != "1" {
		t.Skip("set TELEMETRY_BENCH_SNAPSHOT=1 to regenerate BENCH_telemetry.json")
	}
	snap := &TelemetryBenchSnapshot{
		Micro:                 map[string]TelemetryCost{},
		Macro:                 map[string]TelemetryCost{},
		BaselineNs:            map[string]float64{},
		DisabledVsBaselinePct: map[string]float64{},
	}

	// Micro: price a single instrumentation site in both states.
	r := telemetry.NewRegistry()
	prev := telemetry.SetDefault(r)
	defer telemetry.SetDefault(prev)
	c := telemetry.GetCounter("bench.counter")
	h := telemetry.GetHistogram("bench.hist", telemetry.ExpBuckets(1, 2, 10))
	micro := map[string]func(){
		"counter_add":       func() { c.Add(1) },
		"histogram_observe": func() { h.Observe(3) },
		"span":              func() { telemetry.StartSpan("bench.span").End() },
	}
	for name, op := range micro {
		telemetry.Disable()
		dis := minOf3(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		telemetry.Enable()
		en := minOf3(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		telemetry.Disable()
		snap.Micro[name] = costPair(dis, en)
	}
	r.ResetSpans()

	// Macro: the two acceptance paths end to end. Sequential min-of-3
	// benchmark runs are too coarse here — shared-runner jitter between
	// the disabled and enabled passes swamps a sub-percent effect — so
	// each trial measures disabled and enabled back to back and the min
	// per state is taken across many interleaved trials.
	measurePair := func(op func(), iters, trials int) TelemetryCost {
		dBest, eBest := math.Inf(1), math.Inf(1)
		op() // warm pools and caches outside timing
		for tr := 0; tr < trials; tr++ {
			telemetry.Disable()
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			if ns := float64(time.Since(t0)) / float64(iters); ns < dBest {
				dBest = ns
			}
			telemetry.Enable()
			t0 = time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			if ns := float64(time.Since(t0)) / float64(iters); ns < eBest {
				eBest = ns
			}
		}
		telemetry.Disable()
		telemetry.Default().ResetSpans()
		return TelemetryCost{
			DisabledNs:         dBest,
			EnabledNs:          eBest,
			EnabledOverheadPct: 100 * (eBest - dBest) / dBest,
		}
	}

	// QAT training step, batch 32 (the BenchmarkQATStep packed path).
	qatNet := benchQATNet(false, tensor.NewRNG(42))
	qatX, qatY := benchQATBatch(tensor.NewRNG(43))
	qatOpt := train.NewSGD(0.01, 0.9, 1e-4)
	qatParams := qatNet.Params()
	snap.Macro["qat_step_batch32"] = measurePair(func() {
		train.Step(qatNet, qatX, qatY, qatOpt, qatParams)
	}, 2, 20)

	// ODQ conv pinned at the ~30%-sensitive scenario, so the disabled run
	// is directly comparable to sens30/sparse-parallel in BENCH_odq_conv.json.
	convM, xM := benchConvLayer()
	th30 := thresholdForSensitivity(convM, xM, 0.30)
	convM.Exec = core.NewExec(th30)
	snap.Macro["odq_conv"] = measurePair(func() {
		convM.Forward(xM, false)
	}, 10, 40)
	convM.Exec = nil

	// Disabled-overhead check against the committed pre-instrumentation
	// baselines (generated on this same machine by the earlier snapshots).
	if ns, ok := baselineQATStepNs(t); ok {
		snap.BaselineNs["qat_step_batch32"] = ns
		snap.DisabledVsBaselinePct["qat_step_batch32"] =
			100 * (snap.Macro["qat_step_batch32"].DisabledNs - ns) / ns
	}
	if ns, ok := baselineODQConvNs(t); ok {
		snap.BaselineNs["odq_conv"] = ns
		snap.DisabledVsBaselinePct["odq_conv"] =
			100 * (snap.Macro["odq_conv"].DisabledNs - ns) / ns
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("micro: %+v", snap.Micro)
	t.Logf("macro: %+v", snap.Macro)
	t.Logf("disabled vs baseline: %v", snap.DisabledVsBaselinePct)
}

// baselineQATStepNs reads the packed QAT-step ns/op from
// BENCH_train_gemm.json (recorded before the telemetry layer existed).
func baselineQATStepNs(t *testing.T) (float64, bool) {
	t.Helper()
	data, err := os.ReadFile("BENCH_train_gemm.json")
	if err != nil {
		return 0, false
	}
	var s TrainGemmBenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, false
	}
	for _, rec := range s.Records {
		if rec.Section == "qat-step" && rec.Variant == "packed" {
			return float64(rec.NsPerOp), true
		}
	}
	return 0, false
}

// baselineODQConvNs reads the sens30 sparse-parallel conv ns/op from
// BENCH_odq_conv.json (the same layer benchConvLayer builds).
func baselineODQConvNs(t *testing.T) (float64, bool) {
	t.Helper()
	data, err := os.ReadFile("BENCH_odq_conv.json")
	if err != nil {
		return 0, false
	}
	var s ODQConvBenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, false
	}
	for _, rec := range s.Records {
		if rec.Sensitivity == "sens30" && rec.Variant == "sparse-parallel" {
			return float64(rec.NsPerOp), true
		}
	}
	return 0, false
}
