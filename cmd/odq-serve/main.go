// Command odq-serve is the production inference service: it loads a
// checkpoint into a pool of resident infer.Sessions (-replicas) and
// serves an HTTP/JSON API with cross-request dynamic batching,
// bounded-queue admission control, round-robin batch dispatch across
// replicas, hot weight reload (POST /v1/reload or SIGHUP, applied to
// every replica) and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	odq-serve -model resnet20 -dataset c10 -ckpt resnet20.ckpt \
//	    -scheme odq -threshold 0.5 -addr :8080 -debug-addr :6060
//
// API:
//
//	POST /v1/infer   {"input":[...C*H*W floats...]} → class + logits
//	POST /v1/reload  {"path":"new.ckpt"}            → new generation
//	GET  /v1/status  serving counters + latency-stage quantiles
//	GET  /healthz    liveness (always 200 while the process runs)
//	GET  /readyz     readiness (503 while draining or with zero healthy
//	                 replicas; 200 "degraded (h/R replicas)" in between)
//
// Replicas are supervised: a panic in an executor pass answers that
// batch with errors (HTTP 503 + Retry-After), marks the replica
// unhealthy, and respawns it with a fresh session after -respawn-delay,
// up to -max-respawns times. With -chaos, POST /v1/chaos/panic injects
// such a panic on demand — the drill scripts/chaos_smoke.sh runs.
//
// Metrics (request-latency and batch-size histograms, QPS, queue
// depth), Prometheus /metrics, traces and pprof live on -debug-addr.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
	"repro/internal/telemetry/telemetryflag"
)

func main() {
	modelName := flag.String("model", "resnet20", "model architecture (must match the checkpoint)")
	dsName := flag.String("dataset", "c10", "dataset the model was trained for: c10, c100 or mnist (fixes input shape and classes)")
	scale := flag.Float64("width", 0.25, "channel width multiplier (must match the checkpoint)")
	qatBits := flag.Int("qat", 4, "QAT bit width the model was built with")
	ckpt := flag.String("ckpt", "", "checkpoint path (empty = randomly initialized; also the SIGHUP reload default)")
	scheme := flag.String("scheme", "odq", "scheme: "+infer.SchemeHelp())
	threshold := flag.Float64("threshold", 0.5, "ODQ sensitivity threshold")
	packed := flag.Bool("packed", false, "serve through the packed-INT4 quantized-domain pipeline (odq scheme, flat sequential models e.g. vgg16)")
	seed := flag.Int64("seed", 1, "init seed when no checkpoint is given")
	addr := flag.String("addr", "127.0.0.1:8080", "serving address (use :0 for an ephemeral port; the bound address is printed)")
	maxBatch := flag.Int("max-batch", 16, "flush a batch at this many requests")
	batchDeadline := flag.Duration("batch-deadline", 2*time.Millisecond, "flush a non-empty batch this long after its first request")
	queueDepth := flag.Int("queue-depth", 256, "admission queue bound; overflow gets HTTP 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish accepted requests on shutdown")
	replicas := flag.Int("replicas", 1, "resident session replicas; batches are dispatched round-robin across them")
	maxRespawns := flag.Int("max-respawns", 3, "supervisor respawns per replica before it is tombstoned")
	respawnDelay := flag.Duration("respawn-delay", 100*time.Millisecond, "pause before respawning a panicked replica")
	chaos := flag.Bool("chaos", false, "expose POST /v1/chaos/panic (inject a replica panic; chaos drills only, never production)")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	if *scale <= 0 {
		fail("-width must be > 0 (got %g)", *scale)
	}
	if *qatBits < 0 || *qatBits > 16 {
		fail("-qat must be in [0,16] (got %d)", *qatBits)
	}
	if *threshold < 0 {
		fail("-threshold must be >= 0 (got %g)", *threshold)
	}
	if _, err := infer.SchemeByName(*scheme); err != nil {
		fail("%v", err)
	}
	if *replicas < 1 {
		fail("-replicas must be >= 1 (got %d)", *replicas)
	}

	classes, c, h, w := 10, 3, 32, 32
	switch *dsName {
	case "c10":
	case "c100":
		classes = 100
	case "mnist":
		c, h, w = 1, 28, 28
	default:
		fail("unknown dataset %q (want c10, c100 or mnist)", *dsName)
	}

	telemetry.SetRole("serve")
	flushTelemetry, err := tf.Activate()
	if err != nil {
		fail("%v", err)
	}

	sessOpts := []infer.Option{infer.WithThreshold(float32(*threshold))}
	if *packed {
		sessOpts = append(sessOpts, infer.WithPackedDomain())
	}
	// Every replica owns a full model instance loaded from the same
	// checkpoint (or built from the same seed): replica invariance —
	// identical weights, bit-identical answers — is what makes the
	// round-robin dispatch invisible to clients.
	newSession := func() (*infer.Session, error) {
		model, err := infer.LoadModel(*modelName, models.Config{
			Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
		}, *ckpt)
		if err != nil {
			return nil, err
		}
		return infer.NewSession(model, *scheme, sessOpts...)
	}
	sessions := make([]*infer.Session, *replicas)
	for i := range sessions {
		var err error
		if sessions[i], err = newSession(); err != nil {
			fail("%v", err)
		}
	}

	srv, err := serve.NewReplicated(sessions, serve.Config{
		ModelName: *modelName,
		InputC:    c, InputH: h, InputW: w,
		MaxBatch:      *maxBatch,
		BatchDeadline: *batchDeadline,
		QueueDepth:    *queueDepth,
		CkptPath:      *ckpt,
		// The supervisor respawns a panicked replica through the same
		// load path that built the pool, so respawned sessions keep the
		// replica-invariance contract by construction.
		SessionFactory: newSession,
		MaxRespawns:    *maxRespawns,
		RespawnDelay:   *respawnDelay,
		EnableChaos:    *chaos,
	})
	if err != nil {
		fail("%v", err)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	// The url attr is load-bearing: scripts/serve_smoke.sh parses it to
	// find the ephemeral port behind -addr :0.
	olog.Info("odq-serve listening",
		"url", "http://"+ln.Addr().String(),
		"model", *modelName, "scheme", *scheme,
		"input", fmt.Sprintf("%dx%dx%d", c, h, w),
		"max_batch", *maxBatch, "deadline", *batchDeadline,
		"replicas", srv.Replicas())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			fail("%v", err)
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				// Hot reload from the configured default checkpoint.
				gen, err := srv.Reload("")
				if err != nil {
					olog.Error("SIGHUP reload failed", "err", err)
				} else {
					olog.Info("SIGHUP reload ok", "generation", gen)
				}
				continue
			}
			// Graceful drain: stop admission, finish every accepted
			// request, then close the HTTP side.
			olog.Info("draining", "signal", sig.String(), "timeout", *drainTimeout)
			if err := srv.Drain(*drainTimeout); err != nil {
				olog.Error("drain failed", "err", err)
				os.Exit(1)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if err != nil {
				olog.Warn("http shutdown", "err", err)
			}
			st := srv.Stats()
			olog.Info("drained",
				"served", st.Served, "rejected", st.Rejected,
				"batches", st.Batches, "mean_batch", fmt.Sprintf("%.2f", st.MeanBatch))
			if err := flushTelemetry(); err != nil {
				fail("%v", err)
			}
			return
		}
	}
}

// fail prints a one-line actionable message and exits 1.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-serve: "+format+"\n", args...)
	os.Exit(1)
}
