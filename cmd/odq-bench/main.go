// Command odq-bench regenerates the paper's tables and figures. It trains
// the required models at the selected scale (caching them across
// experiments in one process), runs every experiment — or a chosen subset
// — and prints the resulting tables.
//
// Usage:
//
//	odq-bench [-scale test|quick|full] [-run figure19,table1|all] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry/telemetryflag"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: test, quick or full")
	run := flag.String("run", "all", "comma-separated experiment ids (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quiet := flag.Bool("quiet", false, "suppress training progress logs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path (inspect with go tool pprof)")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// exit stops profiling and flushes telemetry on every path out.
	exit := func(code int) {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if err := flushTelemetry(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "test":
		scale = experiments.TestScale()
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want test, quick or full)\n", *scaleName)
		exit(2)
	}

	logOut := os.Stderr
	if *quiet {
		logOut = nil
	}
	lab := experiments.NewLab(scale, logOut)

	if *run == "all" {
		if err := experiments.RunAll(lab, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		exit(0)
	}
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fmt.Printf("### %s\n\n", name)
		if err := experiments.Run(lab, name, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	exit(0)
}
