// Command odq-train trains a model with DoReFa-style 4-bit quantization-
// aware training on a synthetic dataset and saves a checkpoint usable by
// odq-infer. With -ckpt-every it writes durable, checksummed training
// checkpoints (model + optimizer momentum + progress) atomically during
// the run, and -resume continues a killed run from the last checkpoint —
// bit-identically to a run that was never interrupted.
//
// Usage:
//
//	odq-train -model resnet20 -dataset c10 -epochs 14 -o resnet20.ckpt
//	odq-train -epochs 14 -ckpt-every 1 -o run.ckpt          # durable run
//	odq-train -epochs 14 -ckpt-every 1 -o run.ckpt -resume  # after a crash
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

// fail prints a one-line actionable message and exits 1 (2 for usage
// errors is reserved by flag itself).
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-train: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	modelName := flag.String("model", "resnet20", "model: lenet5, resnet20, resnet56, vgg16, densenet")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier")
	qatBits := flag.Int("qat", 4, "QAT bit width (0 = float training)")
	samples := flag.Int("samples", 512, "training samples")
	epochs := flag.Int("epochs", 14, "training epochs")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 0.02, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "checkpoint output path (optional)")
	ckptEvery := flag.Int("ckpt-every", 0, "save a full training checkpoint to -o every N epochs (0 = only a model checkpoint at the end)")
	resume := flag.Bool("resume", false, "resume training from the checkpoint at -o (requires -ckpt-every)")
	nanPolicy := flag.String("nan-policy", "abort", "reaction to NaN/Inf loss or gradients: abort, skip, rollback, ignore")
	clipNorm := flag.Float64("clip-norm", 0, "clip gradients to this global L2 norm (0 = off)")
	killAfter := flag.Int("kill-after", 0, "SIGKILL self after N completed epochs (crash-safety testing; 0 = off)")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	// Validate everything up front: a bad flag combination should cost
	// one line of stderr, not a panic fourteen epochs in.
	if *epochs < 1 {
		fail("-epochs must be >= 1 (got %d)", *epochs)
	}
	if *batch < 1 {
		fail("-batch must be >= 1 (got %d)", *batch)
	}
	if *samples < 1 {
		fail("-samples must be >= 1 (got %d)", *samples)
	}
	if *lr <= 0 {
		fail("-lr must be > 0 (got %g)", *lr)
	}
	if *scale <= 0 {
		fail("-width must be > 0 (got %g)", *scale)
	}
	if *qatBits < 0 || *qatBits > 16 {
		fail("-qat must be in [0,16] (got %d)", *qatBits)
	}
	if *ckptEvery < 0 {
		fail("-ckpt-every must be >= 0 (got %d)", *ckptEvery)
	}
	if (*ckptEvery > 0 || *resume) && *out == "" {
		fail("-ckpt-every/-resume need a checkpoint path: pass -o")
	}
	if *resume && *ckptEvery == 0 {
		fail("-resume needs periodic checkpoints: pass -ckpt-every (e.g. -ckpt-every 1)")
	}
	if *killAfter > 0 && *ckptEvery == 0 {
		fail("-kill-after without -ckpt-every would lose all progress: pass -ckpt-every")
	}
	policy, err := train.ParseNaNPolicy(*nanPolicy)
	if err != nil {
		fail("%v", err)
	}

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fail("%v", err)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var trainDS, testDS *dataset.Dataset
	switch *dsName {
	case "mnist":
		trainDS = dataset.MNISTLike(*samples, *seed+100)
		testDS = dataset.MNISTLike(*samples/4+1, *seed+200)
	case "c10", "c100":
		trainDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+100)
		testDS = dataset.SyntheticImages(classes, *samples/4+1, 3, 32, 32, *seed+200)
	default:
		fail("unknown dataset %q (want c10, c100 or mnist)", *dsName)
	}

	net, err := models.Build(*modelName, models.Config{
		Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
	})
	if err != nil {
		fail("%v", err)
	}

	opts := train.Options{
		Epochs: *epochs, BatchSize: *batch, LR: float32(*lr),
		Momentum: 0.9, Decay: 1e-4, Seed: *seed,
		LRDropEvery: *epochs * 2 / 3, Log: os.Stderr,
		NaNPolicy: policy, ClipNorm: float32(*clipNorm),
	}
	if *ckptEvery > 0 {
		opts.CkptPath = *out
		opts.CkptEvery = *ckptEvery
		opts.Resume = *resume
	}
	if *killAfter > 0 {
		// Crash-safety testing: die the hard way (no deferred cleanup, no
		// flushes) after the checkpoint for epoch N lands, by watching the
		// training log for the epoch-completion line.
		opts.Log = &killWatcher{out: os.Stderr, after: *killAfter}
	}

	if _, err := train.Fit(net, trainDS, opts); err != nil {
		if strings.Contains(err.Error(), "resume") {
			fail("%v (was the checkpoint written by a run with different -model/-width/-qat or -seed?)", err)
		}
		fail("%v", err)
	}
	acc := train.Evaluate(net, testDS, 64)
	fmt.Printf("test accuracy: %.4f\n", acc)

	// Without periodic checkpointing, write a model checkpoint at the
	// end (legacy flow; odq-infer loads either kind).
	if *out != "" && *ckptEvery == 0 {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		if err := nn.Save(f, net); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
	if *out != "" {
		fmt.Printf("checkpoint written to %s\n", *out)
	}
	if err := flushTelemetry(); err != nil {
		fail("%v", err)
	}
}

// killWatcher tees training-progress lines and SIGKILLs the process
// after the Nth epoch-completion line — after Fit has written that
// epoch's checkpoint would be the next step, so the kill lands between
// epochs the way a real crash does. SIGKILL is not catchable: no
// deferred cleanup runs, which is the point.
type killWatcher struct {
	out    *os.File
	after  int
	epochs int
}

func (k *killWatcher) Write(p []byte) (int, error) {
	n, err := k.out.Write(p)
	if strings.Contains(string(p), "epoch ") && strings.Contains(string(p), "loss=") {
		k.epochs++
		if k.epochs >= k.after {
			// Flush nothing, clean up nothing: simulate the power cord.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	return n, err
}
