// Command odq-train trains a model with DoReFa-style 4-bit quantization-
// aware training on a synthetic dataset and saves a checkpoint usable by
// odq-infer. With -ckpt-every it writes durable, checksummed training
// checkpoints (model + optimizer momentum + progress) atomically during
// the run, and -resume continues a killed run from the last checkpoint —
// bit-identically to a run that was never interrupted.
//
// Usage:
//
//	odq-train -model resnet20 -dataset c10 -epochs 14 -o resnet20.ckpt
//	odq-train -epochs 14 -ckpt-every 1 -o run.ckpt          # durable run
//	odq-train -epochs 14 -ckpt-every 1 -o run.ckpt -resume  # after a crash
//
// Data-parallel scale-out (-workers) runs the same trajectory across W
// workers: each step folds one sync group of -group batches, workers
// own a rank-strided share, and gradients are reduced deterministically
// before the optimizer steps. Runs with equal -group are bit-identical
// for ANY worker count, so a checkpoint from a 2-worker run resumes as
// 1 or 4 workers without changing the result:
//
//	odq-train -workers 2 -group 2 -o run.ckpt              # in-process
//	odq-train -workers 2 -rank 0 -coord :7000 -o run.ckpt  # coordinator
//	odq-train -workers 2 -rank 1 -coord host:7000          # joiner
//
// -elastic turns the fleet self-healing: links carry heartbeats, a
// worker that dies (SIGKILL, network partition) is detected within
// -hb-timeout, and the survivors regroup at the smaller world size,
// roll back to the last durable checkpoint and continue — byte-identical
// to a run launched at the surviving worker count. Requires -coord,
// -ckpt-every and -o on a path every rank can read:
//
//	odq-train -elastic -workers 3 -rank 0 -coord :7000 -group 3 -ckpt-every 1 -o run.ckpt
//	odq-train -elastic -workers 3 -rank 1 -coord host:7000 -group 3 -ckpt-every 1 -o run.ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

// joinTimeout bounds how long a coordinator or joiner waits for the
// rest of the fleet before giving up with an error.
const joinTimeout = 60 * time.Second

// fail prints a one-line actionable message and exits 1 (2 for usage
// errors is reserved by flag itself).
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-train: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	modelName := flag.String("model", "resnet20", "model: lenet5, resnet20, resnet56, vgg16, densenet")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier")
	qatBits := flag.Int("qat", 4, "QAT bit width (0 = float training)")
	samples := flag.Int("samples", 512, "training samples")
	epochs := flag.Int("epochs", 14, "training epochs")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 0.02, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "checkpoint output path (optional)")
	ckptEvery := flag.Int("ckpt-every", 0, "save a full training checkpoint to -o every N epochs (0 = only a model checkpoint at the end)")
	resume := flag.Bool("resume", false, "resume training from the checkpoint at -o (requires -ckpt-every)")
	nanPolicy := flag.String("nan-policy", "abort", "reaction to NaN/Inf loss or gradients: abort, skip, rollback, ignore")
	clipNorm := flag.Float64("clip-norm", 0, "clip gradients to this global L2 norm (0 = off)")
	killAfter := flag.Int("kill-after", 0, "SIGKILL self after N completed epochs (crash-safety testing; 0 = off)")
	workers := flag.Int("workers", 1, "data-parallel worker count (world size)")
	rank := flag.Int("rank", 0, "this process's rank in [0,workers) when -coord is set")
	coord := flag.String("coord", "", "coordinator TCP address; rank 0 listens there, other ranks dial it (empty with -workers > 1 = all workers in-process)")
	group := flag.Int("group", 0, "sync group size: global batches folded per optimizer step (0 = workers, or the checkpoint's group on resume; equal -group means bit-identical runs at any worker count)")
	elastic := flag.Bool("elastic", false, "self-healing fleet: detect dead workers via heartbeats, regroup the survivors and resume from the last checkpoint (requires -coord, -ckpt-every, -o)")
	hbInterval := flag.Duration("hb-interval", 500*time.Millisecond, "elastic: heartbeat send interval per link")
	hbTimeout := flag.Duration("hb-timeout", 5*time.Second, "elastic: frame deadline; a link silent this long means the peer is gone")
	regroupTimeout := flag.Duration("regroup-timeout", 15*time.Second, "elastic: how long the coordinator waits for survivors to rejoin after a failure")
	killSteps := flag.Int("kill-after-steps", 0, "SIGKILL self after N optimizer steps (chaos testing; 0 = off)")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	// Validate everything up front: a bad flag combination should cost
	// one line of stderr, not a panic fourteen epochs in.
	if *epochs < 1 {
		fail("-epochs must be >= 1 (got %d)", *epochs)
	}
	if *batch < 1 {
		fail("-batch must be >= 1 (got %d)", *batch)
	}
	if *samples < 1 {
		fail("-samples must be >= 1 (got %d)", *samples)
	}
	if *lr <= 0 {
		fail("-lr must be > 0 (got %g)", *lr)
	}
	if *scale <= 0 {
		fail("-width must be > 0 (got %g)", *scale)
	}
	if *qatBits < 0 || *qatBits > 16 {
		fail("-qat must be in [0,16] (got %d)", *qatBits)
	}
	if *ckptEvery < 0 {
		fail("-ckpt-every must be >= 0 (got %d)", *ckptEvery)
	}
	if (*ckptEvery > 0 || *resume) && *out == "" {
		fail("-ckpt-every/-resume need a checkpoint path: pass -o")
	}
	if *resume && *ckptEvery == 0 {
		fail("-resume needs periodic checkpoints: pass -ckpt-every (e.g. -ckpt-every 1)")
	}
	if *killAfter > 0 && *ckptEvery == 0 {
		fail("-kill-after without -ckpt-every would lose all progress: pass -ckpt-every")
	}
	if *workers < 1 {
		fail("-workers must be >= 1 (got %d)", *workers)
	}
	if *rank < 0 || *rank >= *workers {
		fail("-rank must be in [0,%d) (got %d)", *workers, *rank)
	}
	if *coord != "" && *workers < 2 {
		fail("-coord needs a fleet: pass -workers >= 2 (got %d)", *workers)
	}
	if *rank != 0 && *coord == "" {
		fail("-rank %d without -coord: non-zero ranks must dial a coordinator", *rank)
	}
	if *group < 0 {
		fail("-group must be >= 0 (got %d)", *group)
	}
	if *elastic {
		if *coord == "" {
			fail("-elastic is for TCP fleets: pass -coord (in-process workers share one fate anyway)")
		}
		if *ckptEvery == 0 || *out == "" {
			fail("-elastic recovery resumes from durable checkpoints: pass -ckpt-every and -o on a path every rank can read")
		}
		if *hbInterval <= 0 || *hbTimeout <= *hbInterval {
			fail("-hb-timeout (%v) must exceed -hb-interval (%v), both > 0", *hbTimeout, *hbInterval)
		}
		if *group == 0 {
			// The sync-group size defines the trajectory and must not move
			// when the fleet shrinks; freeze it at the launch worker count.
			*group = *workers
		}
	}
	if *killSteps > 0 && *ckptEvery == 0 {
		fail("-kill-after-steps without -ckpt-every would lose all progress: pass -ckpt-every")
	}
	policy, err := train.ParseNaNPolicy(*nanPolicy)
	if err != nil {
		fail("%v", err)
	}

	telemetry.SetRole("train")
	telemetry.SetRank(*rank)
	flushTelemetry, err := tf.Activate()
	if err != nil {
		fail("%v", err)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var trainDS, testDS *dataset.Dataset
	switch *dsName {
	case "mnist":
		trainDS = dataset.MNISTLike(*samples, *seed+100)
		testDS = dataset.MNISTLike(*samples/4+1, *seed+200)
	case "c10", "c100":
		trainDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+100)
		testDS = dataset.SyntheticImages(classes, *samples/4+1, 3, 32, 32, *seed+200)
	default:
		fail("unknown dataset %q (want c10, c100 or mnist)", *dsName)
	}

	mcfg := models.Config{Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed}

	opts := train.Options{
		Epochs: *epochs, BatchSize: *batch, LR: float32(*lr),
		Momentum: 0.9, Decay: 1e-4, Seed: *seed,
		LRDropEvery: *epochs * 2 / 3, Log: os.Stderr,
		NaNPolicy: policy, ClipNorm: float32(*clipNorm),
		GroupSize: *group,
	}
	if *ckptEvery > 0 {
		opts.CkptPath = *out
		opts.CkptEvery = *ckptEvery
		opts.Resume = *resume
	}
	if *killAfter > 0 {
		// Crash-safety testing: die the hard way (no deferred cleanup, no
		// flushes) after the checkpoint for epoch N lands, by watching the
		// training log for the epoch-completion line.
		opts.Log = &killWatcher{out: os.Stderr, after: *killAfter}
	}
	if *killSteps > 0 {
		// Chaos testing with step precision: SIGKILL the instant optimizer
		// step N completes — mid-epoch, links still open, nothing flushed.
		n := int64(*killSteps)
		opts.StepHook = func(step int64) {
			if step >= n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // self-kill
			}
		}
	}

	var net *nn.Sequential
	switch {
	case *elastic:
		// Self-healing fleet: membership (join, failure detection, regroup)
		// lives in the elastic layer, recovery (rollback + resume) in
		// FitElastic. The -rank 0 process hosts the coordinator and is
		// always group rank 0; other processes join and take whatever rank
		// the current membership epoch assigns them.
		eopts := dist.ElasticOptions{
			JoinTimeout:       joinTimeout,
			RegroupTimeout:    *regroupTimeout,
			HeartbeatInterval: *hbInterval,
			HeartbeatTimeout:  *hbTimeout,
		}
		var m dist.Membership
		if *rank == 0 {
			olog.Info("elastic coordinator listening", "world", *workers, "coord", *coord)
			c, err := dist.ElasticListen(*coord, *workers, eopts)
			if err != nil {
				fail("%v", err)
			}
			m = c
		} else {
			m = dist.NewElasticWorker(*coord, *workers, eopts)
		}
		defer m.Close() //nolint:errcheck // process exit follows
		build := func() (nn.Module, error) { return models.Build(*modelName, mcfg) }
		o := opts
		if *rank != 0 {
			o.Log = nil // one progress stream, not W interleaved ones
		}
		_, trained, err := train.FitElastic(m, build, trainDS, o)
		if err != nil {
			failFit(err)
		}
		net = trained.(*nn.Sequential)

	case *workers == 1:
		// Single worker. -group > 1 (or a resumed group checkpoint) still
		// selects the group-synchronous loop, which is bit-compatible
		// with any worker count at the same group size; Fit resolves
		// that from GroupSize and the checkpoint on its own.
		n, err := models.Build(*modelName, mcfg)
		if err != nil {
			fail("%v", err)
		}
		if _, err := train.Fit(n, trainDS, opts); err != nil {
			failFit(err)
		}
		net = n

	case *coord == "":
		// Local fleet: every rank is a goroutine in this process over an
		// in-process loopback transport. Exercises the full reduce path
		// (sharding, deterministic fold, group barrier) without sockets.
		groups, err := dist.Loopback(*workers)
		if err != nil {
			fail("%v", err)
		}
		nets := make([]*nn.Sequential, *workers)
		for r := range nets {
			if nets[r], err = models.Build(*modelName, mcfg); err != nil {
				fail("%v", err)
			}
		}
		errs := make([]error, *workers)
		var wg sync.WaitGroup
		for r := 0; r < *workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				o := opts
				o.Reducer = dist.NewReducer(groups[r])
				if r != 0 {
					o.Log = nil // one progress stream, not W interleaved ones
				}
				_, errs[r] = train.Fit(nets[r], trainDS, o)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				failFit(fmt.Errorf("worker %d: %w", r, err))
			}
		}
		net = nets[0] // all ranks hold bit-identical weights

	default:
		// Distributed fleet: this process is one rank; rank 0 is also the
		// coordinator every other rank dials. Checkpoint paths must be on
		// a filesystem all ranks can read (rank 0 alone writes).
		var g *dist.Group
		var err error
		if *rank == 0 {
			olog.Info("waiting for workers", "need", *workers-1, "coord", *coord)
			g, err = dist.Listen(*coord, *workers, joinTimeout)
		} else {
			g, err = dist.Dial(*coord, *rank, *workers, joinTimeout)
		}
		if err != nil {
			fail("%v", err)
		}
		defer g.Close() //nolint:errcheck // process exit follows
		n, err := models.Build(*modelName, mcfg)
		if err != nil {
			fail("%v", err)
		}
		opts.Reducer = dist.NewReducer(g)
		if _, err := train.Fit(n, trainDS, opts); err != nil {
			failFit(err)
		}
		net = n
	}

	// Evaluation and the final model write are rank 0's job; a joiner
	// rank's weights are bit-identical copies, so reporting them twice
	// would only be noise.
	if *rank != 0 {
		if err := flushTelemetry(); err != nil {
			fail("%v", err)
		}
		return
	}
	acc := train.Evaluate(net, testDS, 64)
	fmt.Printf("test accuracy: %.4f\n", acc)

	// Without periodic checkpointing, write a model checkpoint at the
	// end (legacy flow; odq-infer loads either kind).
	if *out != "" && *ckptEvery == 0 {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		if err := nn.Save(f, net); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
	if *out != "" {
		fmt.Printf("checkpoint written to %s\n", *out)
	}
	if err := flushTelemetry(); err != nil {
		fail("%v", err)
	}
}

// failFit exits with resume-mismatch guidance when the error calls for it.
func failFit(err error) {
	if strings.Contains(err.Error(), "resume") {
		fail("%v (was the checkpoint written by a run with different -model/-width/-qat, -seed or -group?)", err)
	}
	fail("%v", err)
}

// killWatcher tees training-progress lines and SIGKILLs the process
// after the Nth epoch-completion line — after Fit has written that
// epoch's checkpoint would be the next step, so the kill lands between
// epochs the way a real crash does. SIGKILL is not catchable: no
// deferred cleanup runs, which is the point.
type killWatcher struct {
	out    *os.File
	after  int
	epochs int
}

func (k *killWatcher) Write(p []byte) (int, error) {
	n, err := k.out.Write(p)
	if strings.Contains(string(p), "epoch ") && strings.Contains(string(p), "loss=") {
		k.epochs++
		if k.epochs >= k.after {
			// Flush nothing, clean up nothing: simulate the power cord.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	return n, err
}
