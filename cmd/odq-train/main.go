// Command odq-train trains a model with DoReFa-style 4-bit quantization-
// aware training on a synthetic dataset and saves a checkpoint usable by
// odq-infer.
//
// Usage:
//
//	odq-train -model resnet20 -dataset c10 -epochs 14 -o resnet20.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

func main() {
	modelName := flag.String("model", "resnet20", "model: lenet5, resnet20, resnet56, vgg16, densenet")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier")
	qatBits := flag.Int("qat", 4, "QAT bit width (0 = float training)")
	samples := flag.Int("samples", 512, "training samples")
	epochs := flag.Int("epochs", 14, "training epochs")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 0.02, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "checkpoint output path (optional)")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var trainDS, testDS *dataset.Dataset
	switch *dsName {
	case "mnist":
		trainDS = dataset.MNISTLike(*samples, *seed+100)
		testDS = dataset.MNISTLike(*samples/4, *seed+200)
	case "c10", "c100":
		trainDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+100)
		testDS = dataset.SyntheticImages(classes, *samples/4, 3, 32, 32, *seed+200)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dsName)
		os.Exit(2)
	}

	net, err := models.Build(*modelName, models.Config{
		Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	train.Fit(net, trainDS, train.Options{
		Epochs: *epochs, BatchSize: *batch, LR: float32(*lr),
		Momentum: 0.9, Decay: 1e-4, Seed: *seed,
		LRDropEvery: *epochs * 2 / 3, Log: os.Stderr,
	})
	acc := train.Evaluate(net, testDS, 64)
	fmt.Printf("test accuracy: %.4f\n", acc)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := nn.Save(f, net); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *out)
	}
	if err := flushTelemetry(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
