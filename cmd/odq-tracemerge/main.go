// Command odq-tracemerge combines per-process Chrome trace files —
// written by -trace-out on odq-train/odq-serve ranks of one run — into
// a single Perfetto-loadable trace with one process lane per rank.
//
// Usage:
//
//	odq-tracemerge -o merged.json rank0.json rank1.json ...
//
// Each input carries an odqMeta correlation block (run trace id, role,
// rank, replica, and the absolute wall-clock nanosecond its local ts 0
// maps to). The merge aligns every file onto one shared clock via
// those absolute bases, assigns each input its own pid named after its
// fleet position ("train rank 1"), and refuses to mix files from two
// different traced runs unless -force is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/telemetry"
)

// inputTrace is one parsed per-process trace file.
type inputTrace struct {
	path   string
	events []telemetry.TraceEvent
	meta   telemetry.TraceMeta
}

func readTrace(path string) (*inputTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f struct {
		TraceEvents     []telemetry.TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string                 `json:"displayTimeUnit"`
		OdqMeta         *telemetry.TraceMeta   `json:"odqMeta"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: not a trace file: %w", path, err)
	}
	in := &inputTrace{path: path, meta: telemetry.TraceMeta{Rank: -1, Replica: -1}}
	if f.OdqMeta != nil {
		in.meta = *f.OdqMeta
	}
	// Drop per-file metadata events; the merge emits its own process
	// naming, one per input.
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		in.events = append(in.events, ev)
	}
	return in, nil
}

// merge combines the inputs into one trace envelope. Inputs are laned
// in ascending rank order (unranked files last, in argument order);
// spans are shifted onto the shared clock when every contributing file
// carries an absolute base, and left on their local clocks otherwise.
func merge(inputs []*inputTrace, force bool) (map[string]interface{}, error) {
	runID := ""
	for _, in := range inputs {
		if in.meta.TraceID == "" {
			continue
		}
		if runID == "" {
			runID = in.meta.TraceID
		} else if in.meta.TraceID != runID && !force {
			return nil, fmt.Errorf("%s is from run %s, earlier inputs are from run %s (merge traces of one run, or pass -force)",
				in.path, in.meta.TraceID, runID)
		}
	}

	order := append([]*inputTrace(nil), inputs...)
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := order[i].meta.Rank, order[j].meta.Rank
		if (ri >= 0) != (rj >= 0) {
			return ri >= 0
		}
		return ri < rj
	})

	// A file written before this tool existed (or with no spans) has no
	// absolute base; aligning a mixed set would skew lanes, so shift
	// only when every span-bearing file can be aligned.
	alignable := true
	var minBase int64
	for _, in := range order {
		if len(in.events) == 0 {
			continue
		}
		if in.meta.BaseNs == 0 {
			alignable = false
			break
		}
		if minBase == 0 || in.meta.BaseNs < minBase {
			minBase = in.meta.BaseNs
		}
	}

	var out []telemetry.TraceEvent
	for i, in := range order {
		pid := i + 1
		out = append(out, telemetry.TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]interface{}{"name": in.meta.ProcessLabel()},
		})
		shift := 0.0
		if alignable && len(in.events) > 0 {
			shift = float64(in.meta.BaseNs-minBase) / 1e3 // ns → µs
		}
		for _, ev := range in.events {
			ev.Pid = pid
			ev.Ts += shift
			out = append(out, ev)
		}
	}
	// Spans sort by shared-clock time; metadata events lead.
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false
		}
		return out[i].Ts < out[j].Ts
	})

	env := map[string]interface{}{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
	}
	if runID != "" {
		env["odqMeta"] = map[string]interface{}{"trace_id": runID}
	}
	return env, nil
}

func main() {
	out := flag.String("o", "", "merged trace output path (default: stdout)")
	force := flag.Bool("force", false, "merge even when inputs carry different run trace ids")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: odq-tracemerge [-o merged.json] [-force] trace.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	inputs := make([]*inputTrace, 0, flag.NArg())
	for _, path := range flag.Args() {
		in, err := readTrace(path)
		if err != nil {
			fail("%v", err)
		}
		inputs = append(inputs, in)
	}
	env, err := merge(inputs, *force)
	if err != nil {
		fail("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(env); err != nil {
		fail("%v", err)
	}
}

// fail prints a one-line actionable message and exits 1.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-tracemerge: "+format+"\n", args...)
	os.Exit(1)
}
