package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// writeTraceFixture writes a minimal per-rank trace file in the
// envelope format WriteTrace produces.
func writeTraceFixture(t *testing.T, dir, name string, meta telemetry.TraceMeta, events []telemetry.TraceEvent) string {
	t.Helper()
	env := map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
		"odqMeta":         meta,
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeLanesAndClockAlignment is the tool's core contract: each
// input becomes its own pid lane named after its fleet position, and
// spans from different ranks land on one shared clock via BaseNs.
func TestMergeLanesAndClockAlignment(t *testing.T) {
	dir := t.TempDir()
	// Rank 1 started its first span 2ms (2e6 ns) after rank 0; given as
	// the later argument to check rank ordering too.
	p1 := writeTraceFixture(t, dir, "rank1.json",
		telemetry.TraceMeta{TraceID: "00000000deadbeef", Role: "train", Rank: 1, Replica: -1, BaseNs: 1_002_000_000},
		[]telemetry.TraceEvent{
			{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]interface{}{"name": "stale"}},
			{Name: "dist.reduce", Ph: "X", Ts: 0, Dur: 500, Pid: 1, Tid: 1},
		})
	p0 := writeTraceFixture(t, dir, "rank0.json",
		telemetry.TraceMeta{TraceID: "00000000deadbeef", Role: "train", Rank: 0, Replica: -1, BaseNs: 1_000_000_000},
		[]telemetry.TraceEvent{
			{Name: "train.step", Ph: "X", Ts: 100, Dur: 900, Pid: 1, Tid: 1},
		})

	in1, err := readTrace(p1)
	if err != nil {
		t.Fatal(err)
	}
	in0, err := readTrace(p0)
	if err != nil {
		t.Fatal(err)
	}
	env, err := merge([]*inputTrace{in1, in0}, false)
	if err != nil {
		t.Fatal(err)
	}
	events := env["traceEvents"].([]telemetry.TraceEvent)

	// One process_name per input, the stale per-file one dropped.
	lanes := map[int]string{}
	for _, ev := range events {
		if ev.Ph != "M" {
			continue
		}
		if ev.Name != "process_name" {
			t.Fatalf("unexpected metadata event %q", ev.Name)
		}
		lanes[ev.Pid] = ev.Args["name"].(string)
	}
	if len(lanes) != 2 || lanes[1] != "train rank 0" || lanes[2] != "train rank 1" {
		t.Fatalf("lanes %v, want pid1=train rank 0, pid2=train rank 1", lanes)
	}

	// Spans: rank 0's is unshifted (earliest base), rank 1's shifts by
	// +2e6 ns = +2000 µs; output is time-sorted so rank 0 comes first.
	var spans []telemetry.TraceEvent
	for _, ev := range events {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0].Name != "train.step" || spans[0].Ts != 100 || spans[0].Pid != 1 {
		t.Fatalf("first span %+v, want train.step ts=100 pid=1", spans[0])
	}
	if spans[1].Name != "dist.reduce" || spans[1].Ts != 2000 || spans[1].Pid != 2 {
		t.Fatalf("second span %+v, want dist.reduce ts=2000 pid=2", spans[1])
	}

	if meta := env["odqMeta"].(map[string]interface{}); meta["trace_id"] != "00000000deadbeef" {
		t.Fatalf("merged trace_id %v", meta["trace_id"])
	}
}

// TestMergeRejectsCrossedRuns: files from two different runs must not
// silently merge — that is the correlation guarantee the run id exists
// for. -force overrides.
func TestMergeRejectsCrossedRuns(t *testing.T) {
	dir := t.TempDir()
	a := writeTraceFixture(t, dir, "a.json",
		telemetry.TraceMeta{TraceID: "aaaaaaaaaaaaaaaa", Rank: 0, Replica: -1, BaseNs: 1}, nil)
	b := writeTraceFixture(t, dir, "b.json",
		telemetry.TraceMeta{TraceID: "bbbbbbbbbbbbbbbb", Rank: 1, Replica: -1, BaseNs: 1}, nil)
	inA, err := readTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	inB, err := readTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merge([]*inputTrace{inA, inB}, false); err == nil {
		t.Fatal("crossed-run merge succeeded, want error")
	} else if !strings.Contains(err.Error(), "run") {
		t.Fatalf("error %v does not mention runs", err)
	}
	if _, err := merge([]*inputTrace{inA, inB}, true); err != nil {
		t.Fatalf("-force merge failed: %v", err)
	}
}

// TestMergeUnalignableStaysLocal: a span-bearing file without an
// absolute base (pre-correlation writer) disables clock shifting for
// the whole merge rather than skewing lanes against each other.
func TestMergeUnalignableStaysLocal(t *testing.T) {
	dir := t.TempDir()
	old := writeTraceFixture(t, dir, "old.json",
		telemetry.TraceMeta{Rank: -1, Replica: -1},
		[]telemetry.TraceEvent{{Name: "a", Ph: "X", Ts: 5, Dur: 1, Pid: 1, Tid: 1}})
	nw := writeTraceFixture(t, dir, "new.json",
		telemetry.TraceMeta{Role: "train", Rank: 0, Replica: -1, BaseNs: 9_000_000_000},
		[]telemetry.TraceEvent{{Name: "b", Ph: "X", Ts: 7, Dur: 1, Pid: 1, Tid: 1}})
	inOld, err := readTrace(old)
	if err != nil {
		t.Fatal(err)
	}
	inNew, err := readTrace(nw)
	if err != nil {
		t.Fatal(err)
	}
	env, err := merge([]*inputTrace{inOld, inNew}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range env["traceEvents"].([]telemetry.TraceEvent) {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts != 5 && ev.Ts != 7 {
			t.Fatalf("span %q ts %v shifted despite unalignable input", ev.Name, ev.Ts)
		}
	}
}

// TestReadTraceRejectsGarbage: a non-trace file fails with a message
// naming the path.
func TestReadTraceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.bin")
	if err := os.WriteFile(path, []byte("\x00\x01not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTrace(path); err == nil {
		t.Fatal("garbage file parsed as trace")
	} else if !strings.Contains(err.Error(), "weights.bin") {
		t.Fatalf("error %v does not name the file", err)
	}
}
