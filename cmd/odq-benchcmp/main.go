// Command odq-benchcmp diffs two benchmark snapshot JSON files (the
// committed BENCH_*.json baselines against a fresh run). It walks both
// documents, pairs every numeric leaf whose key carries a nanosecond
// metric ("ns_per_op", "disabled_ns", ...), and prints a table of
// old/new/delta. Exit status is 1 when any metric slowed down by more
// than the tolerance — callers that only want the report (CI's
// informational tier) ignore the status.
//
// Usage: odq-benchcmp [-tol 0.5] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "odq-benchcmp: "+format+"\n", args...)
	os.Exit(2)
}

// nsMetric reports whether a JSON object key names a nanosecond timing.
func nsMetric(key string) bool {
	return strings.HasSuffix(key, "_ns") || strings.Contains(key, "ns_per_op")
}

// collect flattens a decoded JSON tree into path → value for every
// nanosecond metric leaf. Array elements use their index; regeneration is
// deterministic in ordering, so indices pair up across runs.
func collect(path string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, ok := t[k].(float64); ok && nsMetric(k) {
				out[p] = f
				continue
			}
			collect(p, t[k], out)
		}
	case []any:
		for i, e := range t {
			collect(fmt.Sprintf("%s[%d]", path, i), e, out)
		}
	}
}

func load(path string) map[string]float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail("%s: %v", path, err)
	}
	out := make(map[string]float64)
	collect("", doc, out)
	return out
}

func main() {
	tol := flag.Float64("tol", 0.5, "allowed slowdown fraction before flagging (0.5 = +50%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fail("usage: odq-benchcmp [-tol 0.5] old.json new.json")
	}
	oldM := load(flag.Arg(0))
	newM := load(flag.Arg(1))

	paths := make([]string, 0, len(oldM))
	for p := range oldM {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	w := 0
	for _, p := range paths {
		if len(p) > w {
			w = len(p)
		}
	}
	regressed := 0
	fmt.Printf("%-*s  %14s  %14s  %8s\n", w, "metric", "old(ns)", "new(ns)", "delta")
	for _, p := range paths {
		nv, ok := newM[p]
		if !ok {
			fmt.Printf("%-*s  %14.0f  %14s  %8s\n", w, p, oldM[p], "-", "removed")
			continue
		}
		delta := 0.0
		if oldM[p] != 0 {
			delta = (nv - oldM[p]) / oldM[p]
		}
		flagStr := ""
		if delta > *tol {
			flagStr = "  !"
			regressed++
		}
		fmt.Printf("%-*s  %14.0f  %14.0f  %+7.1f%%%s\n", w, p, oldM[p], nv, 100*delta, flagStr)
	}
	for p := range newM {
		if _, ok := oldM[p]; !ok {
			fmt.Printf("%-*s  %14s  %14.0f  %8s\n", w, p, "-", newM[p], "added")
		}
	}
	if regressed > 0 {
		fmt.Printf("\n%d metric(s) slower than the +%.0f%% tolerance\n", regressed, 100**tol)
		os.Exit(1)
	}
}
