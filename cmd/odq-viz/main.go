// Command odq-viz renders ODQ sensitivity masks from a profile dump
// (produced with `odq-infer -scheme odq -dump profiles.bin`) as ASCII art
// or PGM images — a quick way to *see* which output features the predictor
// marked sensitive, per layer and channel.
//
// Usage:
//
//	odq-viz -in profiles.bin                 # list layers
//	odq-viz -in profiles.bin -layer s1b0.conv1 -channel 2
//	odq-viz -in profiles.bin -layer s1b0.conv1 -pgm mask.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/maskio"
	"repro/internal/quant"
	"repro/internal/stats"
)

func main() {
	in := flag.String("in", "", "profile dump path")
	layer := flag.String("layer", "", "layer name to render (empty = list layers)")
	sample := flag.Int("sample", 0, "batch sample index")
	channel := flag.Int("channel", 0, "output channel index")
	pgm := flag.String("pgm", "", "write the mask as a PGM image to this path")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "odq-viz: -in is required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	profiles, err := maskio.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *layer == "" {
		t := stats.NewTable("Layers in dump", "layer", "geometry", "batch", "sensitive", "mask")
		for _, p := range profiles {
			frac := 0.0
			if p.TotalOutputs > 0 {
				frac = float64(p.SensitiveOutputs) / float64(p.TotalOutputs)
			}
			has := "no"
			if len(p.Mask) > 0 {
				has = "yes"
			}
			t.AddRow(p.Name,
				fmt.Sprintf("%dx%dx%d", p.Geom.OutC, p.Geom.OutH, p.Geom.OutW),
				p.Batch, stats.Pct(frac), has)
		}
		t.Render(os.Stdout)
		return
	}

	for _, p := range profiles {
		if p.Name != *layer {
			continue
		}
		if len(p.Mask) == 0 {
			fmt.Fprintf(os.Stderr, "odq-viz: layer %s carries no mask (dump with -scheme odq)\n", *layer)
			os.Exit(1)
		}
		cols := p.Geom.OutH * p.Geom.OutW
		ofm := *sample*p.Geom.OutC + *channel
		if *sample < 0 || *sample >= p.Batch || *channel < 0 || *channel >= p.Geom.OutC {
			fmt.Fprintf(os.Stderr, "odq-viz: sample/channel out of range (batch %d, %d channels)\n",
				p.Batch, p.Geom.OutC)
			os.Exit(2)
		}
		mask := p.Mask[ofm*cols : (ofm+1)*cols]
		sens := quant.MaskDensity(mask)
		fmt.Printf("%s sample %d channel %d: %d/%d sensitive (%.1f%%)\n",
			p.Name, *sample, *channel, sens, cols, 100*float64(sens)/float64(cols))
		if *pgm != "" {
			out, err := os.Create(*pgm)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			err = maskio.WritePGM(out, mask, p.Geom.OutH, p.Geom.OutW)
			out.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *pgm)
			return
		}
		for _, line := range maskio.RenderASCII(mask, p.Geom.OutH, p.Geom.OutW, 48) {
			fmt.Println("  " + line)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "odq-viz: layer %q not in dump\n", *layer)
	os.Exit(1)
}
