// Command odq-sim models execution time and energy for a profile dump
// (produced by `odq-infer -dump`) on the paper's Table-2 accelerators.
// This is the second half of the paper's methodology: the framework dumps
// per-layer sensitivity masks, the simulator turns them into performance
// and energy numbers.
//
// Usage:
//
//	odq-infer -model resnet20 -scheme odq -dump profiles.bin
//	odq-sim -in profiles.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/maskio"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	in := flag.String("in", "", "profile dump path (from odq-infer -dump)")
	perLayer := flag.Bool("layers", false, "print per-layer costs for the ODQ accelerator")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "odq-sim: -in is required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	profiles, err := maskio.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(profiles) == 0 {
		fmt.Fprintln(os.Stderr, "odq-sim: dump holds no layers")
		os.Exit(1)
	}

	accels := sim.Table2Accels()
	// ODQ utilization from the cycle-level slice simulation, when masks
	// are present.
	var utilSum, wsum float64
	for _, p := range profiles {
		if len(p.Mask) == 0 {
			continue
		}
		u, _, _ := sim.ODQUtilization(p)
		utilSum += u * float64(p.TotalMACs)
		wsum += float64(p.TotalMACs)
	}
	if wsum > 0 {
		accels["ODQ"].Utilization = utilSum / wsum
	}

	var highMACs int64
	for _, p := range profiles {
		highMACs += p.HighInputMACs
	}

	consts := energy.DefaultConstants()
	t := stats.NewTable("Modeled cost on the Table-2 accelerators",
		"accelerator", "cycles", "vs INT16", "energy (nJ)", "dram/buffer/cores")
	var base float64
	for _, name := range []string{"INT16", "INT8", "DRQ", "ODQ"} {
		bd, nc := energy.SchemeEnergy(accels[name], profiles, consts)
		cycles := float64(nc.TotalCycles())
		if name == "INT16" {
			base = cycles
		}
		tot := bd.Total()
		t.AddRow(name, nc.TotalCycles(), fmt.Sprintf("%.3fx", cycles/base),
			fmt.Sprintf("%.1f", tot/1e3),
			fmt.Sprintf("%s/%s/%s", stats.Pct(bd.DRAM/tot), stats.Pct(bd.Buffer/tot), stats.Pct(bd.Cores/tot)))
	}
	t.Render(os.Stdout)
	if highMACs == 0 {
		fmt.Println("note: dump carries no DRQ precision mix (HighInputMACs=0);" +
			" the DRQ row assumes all-low-precision inputs and is optimistic." +
			" Dump with -scheme drq84 for a faithful DRQ estimate.")
	}

	if *perLayer {
		nc := accels["ODQ"].NetworkCostOf(profiles)
		lt := stats.NewTable("Per-layer ODQ cost", "layer", "compute", "memory", "total", "sensitive")
		for i, lc := range nc.Layers {
			p := profiles[i]
			frac := 0.0
			if p.TotalOutputs > 0 {
				frac = float64(p.SensitiveOutputs) / float64(p.TotalOutputs)
			}
			lt.AddRow(lc.Name, lc.ComputeCycles, lc.MemoryCycles, lc.TotalCycles, stats.Pct(frac))
		}
		lt.Render(os.Stdout)
	}
}
