// Command odq-infer runs inference on a synthetic test set under a chosen
// quantization scheme — float, static INT-k, DRQ or ODQ — reporting
// accuracy and, for the dynamic schemes, the precision mix.
//
// Usage:
//
//	odq-infer -model resnet20 -dataset c10 -ckpt resnet20.ckpt -scheme odq -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drq"
	"repro/internal/infer"
	"repro/internal/maskio"
	"repro/internal/models"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

func main() {
	modelName := flag.String("model", "resnet20", "model architecture (must match the checkpoint)")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier (must match the checkpoint)")
	qatBits := flag.Int("qat", 4, "QAT bit width the model was built with")
	ckpt := flag.String("ckpt", "", "checkpoint path (empty = randomly initialized)")
	scheme := flag.String("scheme", "odq", "scheme: "+infer.SchemeHelp())
	threshold := flag.Float64("threshold", 0.5, "ODQ sensitivity threshold")
	packed := flag.Bool("packed", false, "run the packed-INT4 quantized-domain pipeline (odq scheme, flat sequential models e.g. vgg16)")
	samples := flag.Int("samples", 128, "test samples")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write per-layer profiles (with ODQ masks) to this path for odq-sim")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	// Validate everything up front so a bad flag combination exits with
	// one actionable line instead of a panic mid-inference.
	if *samples < 1 {
		fail("-samples must be >= 1 (got %d)", *samples)
	}
	if *scale <= 0 {
		fail("-width must be > 0 (got %g)", *scale)
	}
	if *qatBits < 0 || *qatBits > 16 {
		fail("-qat must be in [0,16] (got %d)", *qatBits)
	}
	if *threshold < 0 {
		fail("-threshold must be >= 0 (got %g)", *threshold)
	}
	switch *dsName {
	case "c10", "c100", "mnist":
	default:
		fail("unknown dataset %q (want c10, c100 or mnist)", *dsName)
	}
	if _, err := infer.SchemeByName(*scheme); err != nil {
		fail("%v", err)
	}
	if *dump != "" && *scheme == "float" {
		fail("the float scheme records no profiles: -dump needs a quantized -scheme")
	}

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fail("%v", err)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var testDS *dataset.Dataset
	if *dsName == "mnist" {
		testDS = dataset.MNISTLike(*samples, *seed+200)
	} else {
		testDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+200)
	}

	net, err := infer.LoadModel(*modelName, models.Config{
		Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
	}, *ckpt)
	if err != nil {
		fail("%v", err)
	}

	opts := []infer.Option{infer.WithThreshold(float32(*threshold)), infer.WithProfiling()}
	if *dump != "" {
		opts = append(opts, infer.WithMaskRecording())
	}
	if *packed {
		opts = append(opts, infer.WithPackedDomain())
	}
	sess, err := infer.NewSession(net, *scheme, opts...)
	if err != nil {
		fail("%v", err)
	}
	if sess.PackedDomain() {
		fmt.Printf("packed-domain pipeline: %d fused convs\n", sess.Pipeline().FusedConvs())
	}

	acc := train.EvaluateForward(sess.Forward, testDS, 32)
	fmt.Printf("scheme=%s accuracy=%.4f\n", *scheme, acc)

	// Per-family precision-mix reports.
	switch e := sess.Exec().(type) {
	case *core.Exec:
		reportODQ(e)
	case *drq.Exec:
		reportDRQ(e)
	}

	if *dump != "" {
		profiler, ok := sess.Exec().(infer.Profiled)
		if !ok {
			fail("scheme %s records no per-layer profiles: -dump is unsupported", *scheme)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fail("%v", err)
		}
		err = maskio.Write(f, profiler.Profiles())
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("profiles written to %s\n", *dump)
	}
	if err := flushTelemetry(); err != nil {
		fail("%v", err)
	}
}

// fail prints a one-line actionable message and exits 1.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-infer: "+format+"\n", args...)
	os.Exit(1)
}

func reportODQ(e *core.Exec) {
	fmt.Printf("sensitive outputs (INT4): %.1f%%, insensitive (INT2): %.1f%%\n",
		e.SensitiveFraction()*100, (1-e.SensitiveFraction())*100)
}

func reportDRQ(e *drq.Exec) {
	var hi, tot int64
	for _, p := range e.Profiles() {
		hi += p.HighInputMACs
		tot += p.TotalMACs
	}
	if tot > 0 {
		fmt.Printf("high-precision MACs: %.1f%%\n", 100*float64(hi)/float64(tot))
	}
}
