// Command odq-infer runs inference on a synthetic test set under a chosen
// quantization scheme — float, static INT-k, DRQ or ODQ — reporting
// accuracy and, for the dynamic schemes, the precision mix.
//
// Usage:
//
//	odq-infer -model resnet20 -dataset c10 -ckpt resnet20.ckpt -scheme odq -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drq"
	"repro/internal/maskio"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

func main() {
	modelName := flag.String("model", "resnet20", "model architecture (must match the checkpoint)")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier (must match the checkpoint)")
	qatBits := flag.Int("qat", 4, "QAT bit width the model was built with")
	ckpt := flag.String("ckpt", "", "checkpoint path (empty = randomly initialized)")
	scheme := flag.String("scheme", "odq", "scheme: float, int16, int8, int4, drq84, drq42, odq")
	threshold := flag.Float64("threshold", 0.5, "ODQ sensitivity threshold")
	samples := flag.Int("samples", 128, "test samples")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write per-layer profiles (with ODQ masks) to this path for odq-sim")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	// Validate everything up front so a bad flag combination exits with
	// one actionable line instead of a panic mid-inference.
	if *samples < 1 {
		fail("-samples must be >= 1 (got %d)", *samples)
	}
	if *scale <= 0 {
		fail("-width must be > 0 (got %g)", *scale)
	}
	if *qatBits < 0 || *qatBits > 16 {
		fail("-qat must be in [0,16] (got %d)", *qatBits)
	}
	if *threshold < 0 {
		fail("-threshold must be >= 0 (got %g)", *threshold)
	}
	switch *dsName {
	case "c10", "c100", "mnist":
	default:
		fail("unknown dataset %q (want c10, c100 or mnist)", *dsName)
	}
	switch *scheme {
	case "float", "int16", "int8", "int4", "drq84", "drq42", "odq":
	default:
		fail("unknown scheme %q (want float, int16, int8, int4, drq84, drq42 or odq)", *scheme)
	}
	if *dump != "" && *scheme == "float" {
		fail("the float scheme records no profiles: -dump needs a quantized -scheme")
	}

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fail("%v", err)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var testDS *dataset.Dataset
	if *dsName == "mnist" {
		testDS = dataset.MNISTLike(*samples, *seed+200)
	} else {
		testDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+200)
	}

	net, err := models.Build(*modelName, models.Config{
		Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
	})
	if err != nil {
		fail("%v", err)
	}
	if *ckpt != "" {
		f, err := os.Open(*ckpt)
		if err != nil {
			fail("%v", err)
		}
		err = nn.Load(f, net)
		f.Close()
		if err != nil {
			fail("%v (was the checkpoint trained with different -model/-width/-qat/-dataset flags?)", err)
		}
	}

	var profiler interface{ Profiles() []*quant.LayerProfile }
	switch *scheme {
	case "float":
		// No executor: the plain float path.
	case "int16", "int8", "int4":
		bits := map[string]int{"int16": 16, "int8": 8, "int4": 4}[*scheme]
		e := quant.NewStaticExec(bits, quant.WithStaticProfiling())
		nn.SetConvExec(net, e)
		profiler = e
	case "drq84", "drq42":
		hi, lo := 8, 4
		if *scheme == "drq42" {
			hi, lo = 4, 2
		}
		e := drq.NewExec(hi, lo, drq.WithProfiling())
		nn.SetConvExecTail(net, e)
		profiler = e
		defer reportDRQ(e)
	case "odq":
		opts := []core.Option{core.WithProfiling()}
		if *dump != "" {
			opts = append(opts, core.WithMaskRecording())
		}
		e := core.NewExec(float32(*threshold), opts...)
		nn.SetConvExecTail(net, e)
		profiler = e
		defer reportODQ(e)
	}

	acc := train.Evaluate(net, testDS, 32)
	fmt.Printf("scheme=%s accuracy=%.4f\n", *scheme, acc)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail("%v", err)
		}
		err = maskio.Write(f, profiler.Profiles())
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("profiles written to %s\n", *dump)
	}
	if err := flushTelemetry(); err != nil {
		fail("%v", err)
	}
}

// fail prints a one-line actionable message and exits 1.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odq-infer: "+format+"\n", args...)
	os.Exit(1)
}

func reportODQ(e *core.Exec) {
	fmt.Printf("sensitive outputs (INT4): %.1f%%, insensitive (INT2): %.1f%%\n",
		e.SensitiveFraction()*100, (1-e.SensitiveFraction())*100)
}

func reportDRQ(e *drq.Exec) {
	var hi, tot int64
	for _, p := range e.Profiles() {
		hi += p.HighInputMACs
		tot += p.TotalMACs
	}
	if tot > 0 {
		fmt.Printf("high-precision MACs: %.1f%%\n", 100*float64(hi)/float64(tot))
	}
}
