// Command odq-infer runs inference on a synthetic test set under a chosen
// quantization scheme — float, static INT-k, DRQ or ODQ — reporting
// accuracy and, for the dynamic schemes, the precision mix.
//
// Usage:
//
//	odq-infer -model resnet20 -dataset c10 -ckpt resnet20.ckpt -scheme odq -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drq"
	"repro/internal/maskio"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/telemetry/telemetryflag"
	"repro/internal/train"
)

func main() {
	modelName := flag.String("model", "resnet20", "model architecture (must match the checkpoint)")
	dsName := flag.String("dataset", "c10", "dataset: c10, c100 or mnist")
	scale := flag.Float64("width", 0.25, "channel width multiplier (must match the checkpoint)")
	qatBits := flag.Int("qat", 4, "QAT bit width the model was built with")
	ckpt := flag.String("ckpt", "", "checkpoint path (empty = randomly initialized)")
	scheme := flag.String("scheme", "odq", "scheme: float, int16, int8, int4, drq84, drq42, odq")
	threshold := flag.Float64("threshold", 0.5, "ODQ sensitivity threshold")
	samples := flag.Int("samples", 128, "test samples")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write per-layer profiles (with ODQ masks) to this path for odq-sim")
	tf := telemetryflag.Register(flag.CommandLine)
	flag.Parse()

	flushTelemetry, err := tf.Activate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	classes := 10
	if *dsName == "c100" {
		classes = 100
	}
	var testDS *dataset.Dataset
	if *dsName == "mnist" {
		testDS = dataset.MNISTLike(*samples, *seed+200)
	} else {
		testDS = dataset.SyntheticImages(classes, *samples, 3, 32, 32, *seed+200)
	}

	net, err := models.Build(*modelName, models.Config{
		Classes: classes, Scale: *scale, QATBits: *qatBits, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *ckpt != "" {
		f, err := os.Open(*ckpt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := nn.Load(f, net); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	var profiler interface{ Profiles() []*quant.LayerProfile }
	switch *scheme {
	case "float":
	case "int16", "int8", "int4":
		bits := map[string]int{"int16": 16, "int8": 8, "int4": 4}[*scheme]
		e := quant.NewStaticExec(bits, quant.WithStaticProfiling())
		nn.SetConvExec(net, e)
		profiler = e
	case "drq84", "drq42":
		hi, lo := 8, 4
		if *scheme == "drq42" {
			hi, lo = 4, 2
		}
		e := drq.NewExec(hi, lo, drq.WithProfiling())
		nn.SetConvExecTail(net, e)
		profiler = e
		defer reportDRQ(e)
	case "odq":
		opts := []core.Option{core.WithProfiling()}
		if *dump != "" {
			opts = append(opts, core.WithMaskRecording())
		}
		e := core.NewExec(float32(*threshold), opts...)
		nn.SetConvExecTail(net, e)
		profiler = e
		defer reportODQ(e)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	acc := train.Evaluate(net, testDS, 32)
	fmt.Printf("scheme=%s accuracy=%.4f\n", *scheme, acc)

	if *dump != "" {
		if profiler == nil {
			fmt.Fprintln(os.Stderr, "odq-infer: the float scheme records no profiles to dump")
			os.Exit(2)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = maskio.Write(f, profiler.Profiles())
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profiles written to %s\n", *dump)
	}
	if err := flushTelemetry(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func reportODQ(e *core.Exec) {
	fmt.Printf("sensitive outputs (INT4): %.1f%%, insensitive (INT2): %.1f%%\n",
		e.SensitiveFraction()*100, (1-e.SensitiveFraction())*100)
}

func reportDRQ(e *drq.Exec) {
	var hi, tot int64
	for _, p := range e.Profiles() {
		hi += p.HighInputMACs
		tot += p.TotalMACs
	}
	if tot > 0 {
		fmt.Printf("high-precision MACs: %.1f%%\n", 100*float64(hi)/float64(tot))
	}
}
