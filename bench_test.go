// Package repro_bench holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (each invoking the code that
// regenerates that artifact at test scale), plus kernel micro-benchmarks
// and the ablation benches called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro_bench

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/drq"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/tensor"
)

var (
	labOnce  sync.Once
	benchLab *experiments.Lab
)

// lab returns the shared experiment lab (models train once per process).
func lab() *experiments.Lab {
	labOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.TestScale(), nil)
	})
	return benchLab
}

// ---------- Kernel micro-benchmarks ----------

func BenchmarkGemmFloat(b *testing.B) {
	const m, k, n = 128, 128, 128
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	rng := tensor.NewRNG(1)
	for i := range a {
		a[i] = float32(rng.Normal())
	}
	for i := range bb {
		bb[i] = float32(rng.Normal())
	}
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(a, bb, c, m, k, n)
	}
}

func BenchmarkGemmInt(b *testing.B) {
	const m, k, n = 128, 128, 128
	a := make([]int32, m*k)
	bb := make([]int32, k*n)
	c := make([]int64, m*n)
	rng := tensor.NewRNG(2)
	for i := range a {
		a[i] = int32(rng.Intn(15)) - 7
	}
	for i := range bb {
		bb[i] = int32(rng.Intn(15)) - 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmInt(a, bb, c, m, k, n)
	}
}

func BenchmarkIm2col(b *testing.B) {
	g := tensor.Geometry(16, 32, 32, 32, 3, 1, 1)
	src := make([]float32, 16*32*32)
	dst := make([]float32, g.ColRows()*g.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2col(src, g, dst)
	}
}

// ---------- Executor micro-benchmarks (one conv layer) ----------

func benchConvLayer() (*nn.Conv2D, *tensor.Tensor) {
	rng := tensor.NewRNG(3)
	conv := nn.NewConv2D("c", 16, 32, 3, 1, 1, false, rng)
	x := tensor.New(1, 16, 32, 32)
	rng.FillUniform(x, 0, 1)
	return conv, x
}

func BenchmarkConvFloat(b *testing.B) {
	conv, x := benchConvLayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvStaticINT8(b *testing.B) {
	conv, x := benchConvLayer()
	conv.Exec = quant.NewStaticExec(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvDRQ(b *testing.B) {
	conv, x := benchConvLayer()
	conv.Exec = drq.NewExec(8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvODQ(b *testing.B) {
	conv, x := benchConvLayer()
	conv.Exec = core.NewExec(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

// ---------- One benchmark per paper artifact ----------
// Each bench invokes the code path that regenerates the corresponding
// table or figure. Trained-model construction is amortized through the
// shared lab (excluded via ResetTimer on first use).

func BenchmarkFigure1(b *testing.B) {
	l := lab()
	experiments.Figure1(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure1(l)
	}
}

func BenchmarkFigure2(b *testing.B) {
	l := lab()
	experiments.Figure2(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure2(l)
	}
}

func BenchmarkFigure3(b *testing.B) {
	l := lab()
	experiments.Figure3(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(l)
	}
}

func BenchmarkFigure4(b *testing.B) {
	l := lab()
	experiments.Figure4(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(l)
	}
}

func BenchmarkFigure5(b *testing.B) {
	l := lab()
	experiments.Figure5(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(l)
	}
}

func BenchmarkFigure9(b *testing.B) {
	// ResNet-56 at test scale: heavier model; still one training.
	l := lab()
	experiments.Figure9(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(l)
	}
}

func BenchmarkFigure10(b *testing.B) {
	l := lab()
	experiments.Figure10(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10(l)
	}
}

func BenchmarkFigure11(b *testing.B) {
	l := lab()
	experiments.Figure11(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure11(l)
	}
}

func BenchmarkTable1(b *testing.B) {
	l := lab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(l)
	}
}

func BenchmarkTable2(b *testing.B) {
	l := lab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(l)
	}
}

func BenchmarkFigure18(b *testing.B) {
	l := lab()
	experiments.Figure18(l, []string{"resnet20"}, []string{"c10"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure18(l, []string{"resnet20"}, []string{"c10"})
	}
}

func BenchmarkFigure19(b *testing.B) {
	l := lab()
	experiments.Figure19(l, []string{"resnet20"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure19(l, []string{"resnet20"})
	}
}

func BenchmarkFigure20(b *testing.B) {
	l := lab()
	experiments.Figure20(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure20(l)
	}
}

func BenchmarkFigure21(b *testing.B) {
	l := lab()
	experiments.Figure21(l, []string{"resnet20"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure21(l, []string{"resnet20"})
	}
}

func BenchmarkFigure22(b *testing.B) {
	l := lab()
	experiments.Figure22(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure22(l)
	}
}

func BenchmarkTable3(b *testing.B) {
	// Table 3 reads the stored per-model search results; benchmark on
	// the single cached model to avoid training all four architectures
	// inside a benchmark.
	l := lab()
	tm := l.Model("resnet20", "c10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.SearchThreshold(tm, 0.05, 3)
	}
}

// ---------- Ablation benches (DESIGN.md §6) ----------

func ablationWork() sim.LayerWork {
	w := sim.LayerWork{OutputsPerOFM: 256, SensPerOFM: make([]int, 64)}
	for i := range w.SensPerOFM {
		if i%8 == 0 {
			w.SensPerOFM[i] = 200
		} else {
			w.SensPerOFM[i] = 16
		}
	}
	return w
}

func BenchmarkAblationStaticAlloc(b *testing.B) {
	w := ablationWork()
	cfg := sim.DefaultSliceConfig(sim.AllocConfig{Predictor: 15, Executor: 12}, false)
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles = sim.SimulateLayer(w, cfg).Cycles
	}
	b.ReportMetric(float64(cycles), "modeled-cycles")
}

func BenchmarkAblationDynamicAlloc(b *testing.B) {
	w := ablationWork()
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := sim.SimulateLayerAuto(w)
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "modeled-cycles")
}

func BenchmarkAblationPredictor2Bit(b *testing.B) {
	conv, x := benchConvLayer()
	e := core.NewExec(0.5) // 4-bit codes, 2-bit predictor (paper default)
	conv.Exec = e
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkAblationPredictor4Bit(b *testing.B) {
	conv, x := benchConvLayer()
	// INT8 extension: 4-bit predictor over 8-bit codes.
	e := core.NewExec(0.5, core.WithBits(8), core.WithPredBits(4))
	conv.Exec = e
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

// ---------- ODQ sparse-executor benches ----------
//
// The result-generation rework computes the HL/LH/LL partials only for
// sensitive outputs, in parallel across output channels. These benches
// pin the sensitive fraction at ~30%/60%/100% and compare the sparse
// parallel path against the dense-select reference and against serial
// execution. TestODQConvBenchSnapshot (ODQ_BENCH_SNAPSHOT=1) writes the
// same grid to BENCH_odq_conv.json.

// thresholdForSensitivity bisects the ODQ threshold until the executor's
// sensitive fraction lands near target on the given layer/input.
func thresholdForSensitivity(conv *nn.Conv2D, x *tensor.Tensor, target float64) float32 {
	if target >= 1 {
		return -1 // negative threshold: every output is sensitive
	}
	sensAt := func(th float32) float64 {
		e := core.NewExec(th, core.WithProfiling())
		conv.Exec = e
		conv.Forward(x, false)
		conv.Exec = nil
		return e.SensitiveFraction()
	}
	lo, hi := float32(0), float32(8)
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if sensAt(mid) > target {
			lo = mid // too sensitive → raise threshold
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

var odqBenchGrid = []struct {
	name   string
	target float64
}{
	{"sens30", 0.30},
	{"sens60", 0.60},
	{"sens100", 1.00},
}

func BenchmarkODQConv(b *testing.B) {
	conv, x := benchConvLayer()
	for _, p := range odqBenchGrid {
		th := thresholdForSensitivity(conv, x, p.target)
		variants := []struct {
			name string
			opts []core.Option
		}{
			{"sparse-parallel", nil},
			{"sparse-serial", []core.Option{core.WithWorkers(1)}},
			{"dense", []core.Option{core.WithDenseReference()}},
		}
		for _, v := range variants {
			b.Run(p.name+"/"+v.name, func(b *testing.B) {
				conv.Exec = core.NewExec(th, v.opts...)
				defer func() { conv.Exec = nil }()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					conv.Forward(x, false)
				}
			})
		}
	}
}

func BenchmarkEnergyModel(b *testing.B) {
	g := tensor.Geometry(16, 16, 16, 32, 3, 1, 1)
	p := &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 1,
		TotalOutputs:     int64(g.TotalOutputs()),
		SensitiveOutputs: int64(g.TotalOutputs()) / 4,
		TotalMACs:        g.TotalMACs(),
	}
	profiles := []*quant.LayerProfile{p}
	a := sim.Table2Accels()["ODQ"]
	consts := energy.DefaultConstants()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		energy.SchemeEnergy(a, profiles, consts)
	}
}
