package repro_bench

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

// ---------- Scale-out snapshot (BENCH_dist.json) ----------
//
// Two layers are measured:
//
//   - Data-parallel QAT: group-synchronous training at 1/2/4 workers over
//     the in-process loopback transport, plus the reduce cost and the
//     single-batch step cost that feed the critical-path projection.
//   - Replicated serving: the batcher feeding 1/2/4 resident sessions
//     round-robin, plus the raw batch-forward cost for the projection.
//
// The CI container is typically a single CPU, where W goroutines time-slice
// one core and measured walls are flat by construction. The snapshot
// therefore records BOTH the honest measured walls on this host (with
// host_cpus alongside) and a critical-path projection whose formula is
// embedded in the JSON: compute shrinks with W (each worker owns
// ceil(G/W) of the group's batches; each replica owns 1/R of the
// batches) while the measured serial terms (reduce, batch formation)
// stay. On a host with >= W cores the projection is what the wall
// converges to.

const (
	distBenchGroup  = 4
	distBenchBatch  = 16
	distBenchTrials = 3
)

var distBenchWorlds = []int{1, 2, 4}

func distBenchNet(t *testing.T, seed int64) *nn.Sequential {
	t.Helper()
	net, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// distFitWall times one fixed QAT workload (same trajectory at every
// worker count: equal sync group) run by W loopback workers, returning
// the wall clock for the whole fit.
func distFitWall(t *testing.T, world int) time.Duration {
	t.Helper()
	ds := dataset.MNISTLike(128, 900)
	opts := train.Options{
		Epochs: 2, BatchSize: distBenchBatch, LR: 0.02,
		Momentum: 0.9, Decay: 1e-4, Seed: 9,
		LRDropEvery: 2, GroupSize: distBenchGroup,
	}
	if world == 1 {
		net := distBenchNet(t, 9)
		o := opts
		o.Reducer = dist.Local{}
		start := time.Now()
		if _, err := train.Fit(net, ds, o); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	groups, err := dist.Loopback(world)
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*nn.Sequential, world)
	for r := range nets {
		nets[r] = distBenchNet(t, 9)
	}
	errs := make([]error, world)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opts
			o.Reducer = dist.NewReducer(groups[r])
			_, errs[r] = train.Fit(nets[r], ds, o)
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", r, err)
		}
	}
	return wall
}

// distBatchStepNs times one single-batch QAT train step (forward,
// backward, optimizer) — the compute unit the projection scales by
// ceil(G/W).
func distBatchStepNs(t *testing.T) int64 {
	t.Helper()
	net := distBenchNet(t, 9)
	rng := tensor.NewRNG(77)
	x := tensor.New(distBenchBatch, 1, 28, 28)
	rng.FillUniform(x, -1, 1)
	y := make([]int, distBenchBatch)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	opt := train.NewSGD(0.02, 0.9, 1e-4)
	params := net.Params()
	train.Step(net, x, y, opt, params) // warm scratch pools
	res := minOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			train.Step(net, x, y, opt, params)
		}
	})
	return res.NsPerOp()
}

// distReduceNs times one group reduce round at the model's gradient
// size: W loopback ranks each contribute their rank-strided share of
// the group and fold. Returns the per-round wall on rank 0, min over
// rounds.
func distReduceNs(t *testing.T, world int) int64 {
	t.Helper()
	gradLen := 0
	for _, p := range distBenchNet(t, 9).Params() {
		gradLen += len(p.W.Data)
	}
	reducers := make([]dist.GradReducer, world)
	if world == 1 {
		reducers[0] = dist.Local{}
	} else {
		groups, err := dist.Loopback(world)
		if err != nil {
			t.Fatal(err)
		}
		for r := range reducers {
			reducers[r] = dist.NewReducer(groups[r])
		}
		defer func() {
			for _, red := range reducers {
				red.Close() //nolint:errcheck
			}
		}()
	}
	contrib := func(rank int) []dist.BatchGrad {
		var own []dist.BatchGrad
		for j := rank; j < distBenchGroup; j += world {
			g := make([]float32, gradLen)
			for i := range g {
				g[i] = float32(j + 1)
			}
			own = append(own, dist.BatchGrad{Index: j, Loss: 1, Correct: 1, Seen: distBenchBatch, Grad: g})
		}
		return own
	}
	const rounds = 8
	best := int64(math.MaxInt64)
	var wg sync.WaitGroup
	walls := make([]int64, rounds)
	for r := 1; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sum := make([]float32, gradLen)
			own := contrib(r)
			for step := 0; step < rounds; step++ {
				if _, err := reducers[r].Reduce(int64(step), distBenchGroup, own, sum); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	sum := make([]float32, gradLen)
	own := contrib(0)
	for step := 0; step < rounds; step++ {
		start := time.Now()
		if _, err := reducers[0].Reduce(int64(step), distBenchGroup, own, sum); err != nil {
			t.Fatal(err)
		}
		walls[step] = time.Since(start).Nanoseconds()
	}
	wg.Wait()
	for _, w := range walls[1:] { // round 0 is warmup
		if w < best {
			best = w
		}
	}
	return best
}

// distTCPReduceNs times one 2-rank group reduce round over real
// loopback TCP links, with or without the elastic liveness layer
// (heartbeat senders + per-frame deadlines) armed. The difference
// between the two is the failure detector's tax on the reduce path —
// guarded in the snapshot so heartbeats never quietly become a
// meaningful fraction of a reduce round.
func distTCPReduceNs(t *testing.T, withHB bool) int64 {
	t.Helper()
	gradLen := 0
	for _, p := range distBenchNet(t, 9).Params() {
		gradLen += len(p.W.Data)
	}
	type joinRes struct {
		g   *dist.Group
		err error
	}
	var g0, g1 *dist.Group
	if withHB {
		opts := dist.ElasticOptions{
			JoinTimeout:       30 * time.Second,
			RegroupTimeout:    5 * time.Second,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatTimeout:  5 * time.Second,
		}
		coord, err := dist.ElasticListen("127.0.0.1:0", 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close() //nolint:errcheck
		w := dist.NewElasticWorker(coord.Addr(), 2, opts)
		defer w.Close() //nolint:errcheck
		ch := make(chan joinRes, 1)
		go func() {
			g, jerr := w.Join()
			ch <- joinRes{g, jerr}
		}()
		if g0, err = coord.Join(); err != nil {
			t.Fatal(err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		g1 = r.g
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		ch := make(chan joinRes, 1)
		go func() {
			g, derr := dist.Dial(addr, 1, 2, 30*time.Second)
			ch <- joinRes{g, derr}
		}()
		if g0, err = dist.Listen(addr, 2, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		g1 = r.g
	}
	defer g0.Close() //nolint:errcheck
	defer g1.Close() //nolint:errcheck

	contrib := func(rank int) []dist.BatchGrad {
		var own []dist.BatchGrad
		for j := rank; j < distBenchGroup; j += 2 {
			g := make([]float32, gradLen)
			for i := range g {
				g[i] = float32(j + 1)
			}
			own = append(own, dist.BatchGrad{Index: j, Loss: 1, Correct: 1, Seen: distBenchBatch, Grad: g})
		}
		return own
	}
	const rounds = 8
	red0, red1 := dist.NewReducer(g0), dist.NewReducer(g1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sum := make([]float32, gradLen)
		own := contrib(1)
		for step := 0; step < rounds; step++ {
			if _, err := red1.Reduce(int64(step), distBenchGroup, own, sum); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	best := int64(math.MaxInt64)
	sum := make([]float32, gradLen)
	own := contrib(0)
	for step := 0; step < rounds; step++ {
		start := time.Now()
		if _, err := red0.Reduce(int64(step), distBenchGroup, own, sum); err != nil {
			t.Fatal(err)
		}
		if w := time.Since(start).Nanoseconds(); step > 0 && w < best { // round 0 is warmup
			best = w
		}
	}
	wg.Wait()
	return best
}

// ---------- Serving side ----------

func distServeSessions(t *testing.T, n int) []*infer.Session {
	t.Helper()
	sessions := make([]*infer.Session, n)
	for i := range sessions {
		s, err := infer.NewSession(distBenchNet(t, 30), "odq", infer.WithThreshold(0.5))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	return sessions
}

// distForwardNs times one raw MaxBatch forward on a lone session — the
// compute unit each replica executes.
func distForwardNs(t *testing.T) int64 {
	t.Helper()
	sess := distServeSessions(t, 1)[0]
	rng := tensor.NewRNG(31)
	x := tensor.New(distBenchBatch, 1, 28, 28)
	rng.FillUniform(x, -1, 1)
	sess.Forward(x) // warm
	res := minOf3(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess.Forward(x)
		}
	})
	return res.NsPerOp()
}

// distServeQPS floods a fresh R-replica server with a fixed request
// storm and returns (requests/sec, mean batch size, batches run).
func distServeQPS(t *testing.T, replicas int) (qps, meanBatch float64, batches int64) {
	t.Helper()
	const requests = 256
	srv, err := serve.NewReplicated(distServeSessions(t, replicas), serve.Config{
		InputC: 1, InputH: 28, InputW: 28,
		MaxBatch: distBenchBatch, BatchDeadline: 2 * time.Millisecond,
		QueueDepth: requests,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	input := make([]float32, 28*28)
	rng := tensor.NewRNG(32)
	for i := range input {
		input[i] = rng.Float32()*2 - 1
	}
	// Enough in-flight clients to fill MaxBatch-deep batches, so the
	// measured per-batch cost and forward_batch_ns describe the same
	// batch size.
	const clients = 32
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests/clients; i++ {
				r, err := srv.Submit(input)
				if err != nil {
					t.Error(err)
					return
				}
				<-r
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	st := srv.Stats()
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return float64(requests) / wall.Seconds(), st.MeanBatch, st.Batches
}

// ---------- Committed snapshot ----------

// DistTrainMeasured is one measured fit wall at a worker count.
type DistTrainMeasured struct {
	Workers     int     `json:"workers"`
	FitWallNs   int64   `json:"fit_wall_ns"`
	StepsPerSec float64 `json:"group_steps_per_sec"`
}

// DistServeMeasured is one measured request storm at a replica count.
type DistServeMeasured struct {
	Replicas  int     `json:"replicas"`
	QPS       float64 `json:"qps"`
	MeanBatch float64 `json:"mean_batch"`
}

// DistBenchSnapshot is the BENCH_dist.json schema.
type DistBenchSnapshot struct {
	HostCPUs  int    `json:"host_cpus"`
	Note      string `json:"note"`
	GroupSize int    `json:"group_size"`
	MaxBatch  int    `json:"max_batch"`

	TrainFormula          string              `json:"train_formula"`
	BatchStepNs           int64               `json:"batch_step_ns"`
	ReduceNs              map[string]int64    `json:"reduce_ns"`
	TCPReduceNs           int64               `json:"tcp_reduce_ns"`
	TCPReduceHBNs         int64               `json:"tcp_reduce_hb_ns"`
	TrainMeasured         []DistTrainMeasured `json:"train_measured"`
	ProjectedGroupStepNs  map[string]int64    `json:"projected_group_step_ns"`
	ProjectedTrainSpeedup map[string]float64  `json:"projected_train_speedup_vs_1w"`

	ServeFormula        string              `json:"serve_formula"`
	ForwardBatchNs      int64               `json:"forward_batch_ns"`
	BatchOverheadNs     int64               `json:"batch_overhead_ns"`
	ServeMeasured       []DistServeMeasured `json:"serve_measured"`
	ProjectedQPS        map[string]float64  `json:"projected_qps"`
	ProjectedQPSSpeedup map[string]float64  `json:"projected_qps_speedup_vs_1r"`
}

// TestDistBenchSnapshot regenerates BENCH_dist.json. Env-gated so CI
// never depends on timing:
//
//	DIST_BENCH_SNAPSHOT=1 go test -run TestDistBenchSnapshot -v .
func TestDistBenchSnapshot(t *testing.T) {
	if os.Getenv("DIST_BENCH_SNAPSHOT") != "1" {
		t.Skip("set DIST_BENCH_SNAPSHOT=1 to regenerate BENCH_dist.json")
	}
	snap := &DistBenchSnapshot{
		HostCPUs:  runtime.NumCPU(),
		GroupSize: distBenchGroup,
		MaxBatch:  distBenchBatch,
		Note: "measured_* walls are from this host; with host_cpus=1 concurrent workers/replicas " +
			"time-slice one core and measured scaling is flat by construction. projected_* applies " +
			"the embedded critical-path formulas to the measured per-batch compute and the measured " +
			"serial terms (reduce round, batch formation), which is what the wall converges to once " +
			"the host has >= W cores.",
		TrainFormula: fmt.Sprintf("projected_group_step_ns[W] = batch_step_ns * ceil(G/W) + reduce_ns[W], G=%d", distBenchGroup),
		ServeFormula: "projected_qps[R] = mean_batch * 1e9 / (batch_overhead_ns + forward_batch_ns / R)",
		ReduceNs:     map[string]int64{}, ProjectedGroupStepNs: map[string]int64{},
		ProjectedTrainSpeedup: map[string]float64{},
		ProjectedQPS:          map[string]float64{}, ProjectedQPSSpeedup: map[string]float64{},
	}

	// Training: interleave the worker counts across trials so drift in
	// machine load hits every variant equally; keep the best trial.
	snap.BatchStepNs = distBatchStepNs(t)
	bestFit := map[int]time.Duration{}
	for rep := 0; rep < distBenchTrials; rep++ {
		for _, w := range distBenchWorlds {
			wall := distFitWall(t, w)
			if cur, ok := bestFit[w]; !ok || wall < cur {
				bestFit[w] = wall
			}
		}
	}
	const groupSteps = 4 // 128 samples x 2 epochs / batch 16 / group 4
	for _, w := range distBenchWorlds {
		snap.ReduceNs[fmt.Sprint(w)] = distReduceNs(t, w)
		snap.TrainMeasured = append(snap.TrainMeasured, DistTrainMeasured{
			Workers:     w,
			FitWallNs:   bestFit[w].Nanoseconds(),
			StepsPerSec: groupSteps / bestFit[w].Seconds(),
		})
		batchesPerWorker := (distBenchGroup + w - 1) / w
		snap.ProjectedGroupStepNs[fmt.Sprint(w)] =
			snap.BatchStepNs*int64(batchesPerWorker) + snap.ReduceNs[fmt.Sprint(w)]
	}
	for _, w := range distBenchWorlds[1:] {
		snap.ProjectedTrainSpeedup[fmt.Sprint(w)] =
			float64(snap.ProjectedGroupStepNs["1"]) / float64(snap.ProjectedGroupStepNs[fmt.Sprint(w)])
	}
	// Heartbeat-overhead guard: the same 2-rank reduce over real TCP,
	// classic vs. elastic (heartbeats + per-frame deadlines armed).
	for rep := 0; rep < distBenchTrials; rep++ {
		if ns := distTCPReduceNs(t, false); rep == 0 || ns < snap.TCPReduceNs {
			snap.TCPReduceNs = ns
		}
		if ns := distTCPReduceNs(t, true); rep == 0 || ns < snap.TCPReduceHBNs {
			snap.TCPReduceHBNs = ns
		}
	}

	// Serving: same interleaving across replica counts.
	snap.ForwardBatchNs = distForwardNs(t)
	type serveBest struct {
		qps, meanBatch float64
		batches        int64
	}
	bestServe := map[int]serveBest{}
	for rep := 0; rep < distBenchTrials; rep++ {
		for _, r := range distBenchWorlds {
			qps, mb, batches := distServeQPS(t, r)
			if cur, ok := bestServe[r]; !ok || qps > cur.qps {
				bestServe[r] = serveBest{qps, mb, batches}
			}
		}
	}
	// Measured end-to-end cost of one dispatched batch at R=1; what is
	// left after subtracting the raw forward is the serial batching term.
	one := bestServe[1]
	perBatchNs := one.meanBatch * 1e9 / one.qps
	snap.BatchOverheadNs = int64(math.Max(0, perBatchNs-float64(snap.ForwardBatchNs)))
	for _, r := range distBenchWorlds {
		b := bestServe[r]
		snap.ServeMeasured = append(snap.ServeMeasured, DistServeMeasured{
			Replicas: r, QPS: b.qps, MeanBatch: b.meanBatch,
		})
		snap.ProjectedQPS[fmt.Sprint(r)] =
			one.meanBatch * 1e9 / (float64(snap.BatchOverheadNs) + float64(snap.ForwardBatchNs)/float64(r))
	}
	for _, r := range distBenchWorlds[1:] {
		snap.ProjectedQPSSpeedup[fmt.Sprint(r)] = snap.ProjectedQPS[fmt.Sprint(r)] / snap.ProjectedQPS["1"]
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_dist.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("train: batch_step=%dns reduce=%v projected speedups %v (measured %v)",
		snap.BatchStepNs, snap.ReduceNs, snap.ProjectedTrainSpeedup, snap.TrainMeasured)
	t.Logf("serve: forward=%dns overhead=%dns projected qps %v speedups %v (measured %v)",
		snap.ForwardBatchNs, snap.BatchOverheadNs, snap.ProjectedQPS, snap.ProjectedQPSSpeedup, snap.ServeMeasured)
}
