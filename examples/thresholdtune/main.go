// Thresholdtune: demonstrates ODQ's adaptive threshold selection (paper
// §3, Table 3). A trained network's predictor-output distribution seeds a
// large initial threshold, which is halved — with threshold-aware
// fine-tuning in between — until ODQ accuracy lands within tolerance of
// the INT4 static baseline. A final sweep shows the accuracy/precision
// trade-off curve of Figure 22.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	trainDS := dataset.SyntheticCIFAR10(256, 21)
	testDS := dataset.SyntheticCIFAR10(64, 22)
	net := models.ResNet(20, models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 9})

	fmt.Println("training (4-bit QAT)...")
	train.MustFit(net, trainDS, train.Options{
		Epochs: 12, BatchSize: 16, LR: 0.02, Momentum: 0.9,
		Decay: 1e-4, Seed: 10, LRDropEvery: 8,
	})

	evalWith := func(e nn.ConvExecutor) float64 {
		nn.SetConvExecTail(net, e)
		defer nn.SetConvExecTail(net, nil)
		return train.Evaluate(net, testDS, 32)
	}

	nn.SetConvExec(net, quant.NewStaticExec(4))
	refAcc := train.Evaluate(net, testDS, 32)
	nn.SetConvExec(net, nil)
	fmt.Printf("INT4 static reference accuracy: %.3f\n", refAcc)

	// Seed the search from the predictor-output distribution.
	calib, _ := testDS.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	e := core.NewExec(0, core.WithoutWeightCache())
	init := e.InitialThreshold(net, calib, 0.90)
	fmt.Printf("initial threshold (P90 of normalized predictor outputs): %.3f\n", init)

	// Threshold-aware fine-tuning hook: one epoch of straight-through
	// training with frozen batch-norm statistics per candidate.
	retrain := func(th float32) {
		nn.SetConvTrainExec(net, e)
		nn.SetBNFrozen(net, true)
		train.MustFit(net, trainDS, train.Options{
			Epochs: 1, BatchSize: 16, LR: 0.005, Momentum: 0.9, Seed: 11,
		})
		nn.SetBNFrozen(net, false)
		nn.SetConvTrainExec(net, nil)
	}

	res := e.FindThreshold(init, refAcc, 0.05, 4, retrain, func() float64 { return evalWith(e) })
	fmt.Printf("search finished: threshold=%.3f accuracy=%.3f converged=%v (%d iterations)\n",
		res.Threshold, res.Accuracy, res.Converged, res.Iterations)
	for _, step := range res.Trace {
		fmt.Printf("  tried threshold %.3f -> accuracy %.3f\n", step.Threshold, step.Accuracy)
	}

	// Figure-22-style sweep around the selected value.
	t := stats.NewTable("Threshold sweep (Figure 22 machinery)",
		"threshold", "accuracy", "INT4 share", "INT2 share")
	for _, th := range []float32{0, 0.25, 0.5, 0.75, 1.0, 1.5} {
		se := core.NewExec(th, core.WithProfiling())
		acc := evalWith(se)
		t.AddRow(th, stats.Pct(acc), stats.Pct(se.SensitiveFraction()),
			stats.Pct(1-se.SensitiveFraction()))
	}
	t.Render(os.Stdout)
}
