// Hardwarerun: pushes a whole network through the *functional* model of
// the ODQ accelerator datapath (package fabric) — weight-stationary PE
// arrays, line buffers, staggered executor clusters — and checks the
// result against the plain arithmetic definition of ODQ, while reporting
// the hardware-level accounting (cycles, DRAM traffic, idleness,
// line-buffer sharing).
package main

import (
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/fabric"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	// A briefly trained LeNet keeps the functional simulation fast.
	trainDS := dataset.MNISTLike(192, 31)
	testDS := dataset.MNISTLike(32, 32)
	net := models.LeNet5(models.Config{Classes: 10, QATBits: 4, Seed: 8})
	fmt.Println("training LeNet-5 (clipped warm-up, then 4-bit QAT)...")
	models.SetQATRelaxed(net, true)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 9,
	})
	models.SetQATRelaxed(net, false)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 4, BatchSize: 16, LR: 0.01, Momentum: 0.9, Seed: 10,
	})

	x, y := testDS.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})

	// Reference: the arithmetic definition of ODQ (threshold 0 → every
	// output sensitive → exact INT4).
	nn.SetConvExecTail(net, quant.NewStaticExec(4))
	want := net.Forward(x, false)
	nn.SetConvExecTail(net, nil)

	// The same inference through the modeled hardware.
	fe := fabric.NewExec(fabric.DefaultConfig(0))
	nn.SetConvExecTail(net, fe)
	got := net.Forward(x, false)
	acc := nn.Accuracy(got, y)
	nn.SetConvExecTail(net, nil)

	fmt.Printf("\nhardware-model output vs INT4 arithmetic: max deviation %.2g\n",
		tensor.MaxAbsDiff(got, want))
	fmt.Printf("accuracy through the modeled datapath: %.3f\n\n", acc)

	t := stats.NewTable("Hardware accounting (8 samples, threshold 0)",
		"metric", "value")
	t.AddRow("total slice cycles", fe.TotalCycles)
	t.AddRow("DRAM traffic (bytes)", fe.TotalDRAMBytes)
	t.AddRow("sensitive outputs", stats.Pct(fe.SensitiveFraction()))
	t.AddRow("array idle fraction", stats.Pct(fe.IdleFraction()))
	t.Render(os.Stdout)

	// Now with a real threshold: the executor skips insensitive outputs.
	fe2 := fabric.NewExec(fabric.DefaultConfig(0.75))
	nn.SetConvExecTail(net, fe2)
	got2 := net.Forward(x, false)
	acc2 := nn.Accuracy(got2, y)
	nn.SetConvExecTail(net, nil)
	fmt.Printf("threshold 0.75: accuracy %.3f, sensitive %s, cycles %d (vs %d all-sensitive)\n",
		acc2, stats.Pct(fe2.SensitiveFraction()), fe2.TotalCycles, fe.TotalCycles)
}
