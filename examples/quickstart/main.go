// Quickstart: build a small quantization-aware CNN, train it briefly on a
// synthetic dataset, and run inference under ODQ — the paper's
// output-directed dynamic quantization — comparing it against static INT4.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/train"
)

func main() {
	// 1. Data: a deterministic synthetic 10-class image dataset.
	trainDS := dataset.SyntheticCIFAR10(384, 1)
	testDS := dataset.SyntheticCIFAR10(64, 2)

	// 2. Model: ResNet-20 at quarter width, built for 4-bit QAT
	// (weight fake-quantizers + QuantReLU activations).
	net := models.ResNet(20, models.Config{
		Classes: 10,
		Scale:   0.25,
		QATBits: 4,
		Seed:    1,
	})

	// 3. Train: clipped-float warm-up, then quantization-aware
	// fine-tuning (the stable two-phase QAT recipe).
	fmt.Println("training (clipped warm-up, then 4-bit QAT)...")
	models.SetQATRelaxed(net, true)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 8, BatchSize: 16, LR: 0.02, Momentum: 0.9,
		Decay: 1e-4, Seed: 3, Log: os.Stdout,
	})
	models.SetQATRelaxed(net, false)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 4, BatchSize: 16, LR: 0.01, Momentum: 0.9,
		Decay: 1e-4, Seed: 4, Log: os.Stdout,
	})

	// 4. Reference: float and static INT4 inference.
	floatAcc := train.Evaluate(net, testDS, 32)
	nn.SetConvExec(net, quant.NewStaticExec(4))
	int4Acc := train.Evaluate(net, testDS, 32)
	nn.SetConvExec(net, nil)

	// 5. Threshold-aware fine-tuning (paper §3): a short straight-through
	// training pass with the ODQ forward teaches the network to tolerate
	// predictor-only insensitive outputs. Batch-norm statistics freeze.
	// 0.15 is calibrated against the per-sample predictor statistics: at
	// this scale it recovers full INT4 accuracy; harsher cuts make the
	// short fine-tune collapse on the tiny synthetic set.
	const threshold = 0.15
	odq := core.NewExec(threshold, core.WithoutWeightCache(), core.WithProfiling())
	fmt.Printf("fine-tuning with the ODQ forward (threshold %v)...\n", threshold)
	nn.SetConvTrainExec(net, odq)
	nn.SetBNFrozen(net, true)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 2, BatchSize: 16, LR: 0.005, Momentum: 0.9, Seed: 4,
	})
	nn.SetBNFrozen(net, false)
	nn.SetConvTrainExec(net, nil)

	// 6. ODQ inference: the predictor convolves only the high-order
	// 2 bits and thresholds the partial sums into a sensitivity mask;
	// the executor finishes only the sensitive outputs.
	odq.Reset() // discard fine-tuning-pass profiles; measure inference only
	nn.SetConvExecTail(net, odq)
	odqAcc := train.Evaluate(net, testDS, 32)
	nn.SetConvExecTail(net, nil)

	fmt.Printf("\naccuracy: float=%.3f  INT4=%.3f  ODQ=%.3f\n", floatAcc, int4Acc, odqAcc)
	fmt.Printf("ODQ computed %.1f%% of outputs at INT4 and %.1f%% at INT2\n",
		odq.SensitiveFraction()*100, (1-odq.SensitiveFraction())*100)
}
