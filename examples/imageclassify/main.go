// Imageclassify: the paper's end-to-end story on one workload. Trains a
// quantization-aware ResNet-20 on a synthetic CIFAR-10-like dataset, then
// compares the quantization schemes of the evaluation — static INT16/INT8,
// DRQ and ODQ — on accuracy, modeled execution time on the Table-2
// accelerators, and modeled energy.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drq"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	trainDS := dataset.SyntheticCIFAR10(256, 11)
	testDS := dataset.SyntheticCIFAR10(96, 12)

	net := models.ResNet(20, models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 5})
	fmt.Println("training ResNet-20 (4-bit QAT)...")
	train.MustFit(net, trainDS, train.Options{
		Epochs: 16, BatchSize: 16, LR: 0.02, Momentum: 0.9,
		Decay: 1e-4, Seed: 6, LRDropEvery: 10, Log: os.Stdout,
	})

	eval := func(install func(), uninstall func()) float64 {
		install()
		defer uninstall()
		return train.Evaluate(net, testDS, 32)
	}

	// Profile batch for the performance/energy models.
	calib, _ := testDS.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})

	// --- Accuracy under each scheme ---
	table := stats.NewTable("Scheme comparison (ResNet-20, synthetic CIFAR-10)",
		"scheme", "accuracy", "high-precision share")

	floatAcc := train.Evaluate(net, testDS, 32)
	table.AddRow("float (QAT grid)", stats.Pct(floatAcc), "-")

	int8 := quant.NewStaticExec(8, quant.WithStaticProfiling())
	acc := eval(func() { nn.SetConvExec(net, int8) }, func() { nn.SetConvExec(net, nil) })
	table.AddRow("static INT8", stats.Pct(acc), "100.0%")

	int16 := quant.NewStaticExec(16)
	acc = eval(func() { nn.SetConvExec(net, int16) }, func() { nn.SetConvExec(net, nil) })
	table.AddRow("static INT16", stats.Pct(acc), "100.0%")

	drq84 := drq.NewExec(8, 4, drq.WithProfiling())
	acc = eval(func() { nn.SetConvExecTail(net, drq84) }, func() { nn.SetConvExecTail(net, nil) })
	table.AddRow("DRQ 8/4", stats.Pct(acc), highShare(drq84))

	drq42 := drq.NewExec(4, 2, drq.WithProfiling())
	acc = eval(func() { nn.SetConvExecTail(net, drq42) }, func() { nn.SetConvExecTail(net, nil) })
	table.AddRow("DRQ 4/2", stats.Pct(acc), highShare(drq42))

	// ODQ needs its threshold-aware fine-tuning pass (paper §3) before
	// evaluation: the network adapts to predictor-only insensitive
	// outputs via straight-through training with frozen batch norms.
	odq := core.NewExec(0.25, core.WithoutWeightCache(), core.WithMaskRecording())
	nn.SetConvTrainExec(net, odq)
	nn.SetBNFrozen(net, true)
	train.MustFit(net, trainDS, train.Options{
		Epochs: 4, BatchSize: 16, LR: 0.005, Momentum: 0.9, Seed: 7,
	})
	nn.SetBNFrozen(net, false)
	nn.SetConvTrainExec(net, nil)

	odq.Reset() // discard fine-tuning-pass profiles; measure inference only
	acc = eval(func() { nn.SetConvExecTail(net, odq) }, func() { nn.SetConvExecTail(net, nil) })
	table.AddRow("ODQ 4/2 (th=0.25, fine-tuned)", stats.Pct(acc), stats.Pct(odq.SensitiveFraction()))
	table.Render(os.Stdout)

	// --- Modeled execution time and energy on the Table-2 accelerators ---
	int8.Reset()
	nn.SetConvExec(net, int8)
	net.Forward(calib, false)
	nn.SetConvExec(net, nil)
	staticProfiles := int8.Profiles()

	drq84.Reset()
	nn.SetConvExecTail(net, drq84)
	net.Forward(calib, false)
	nn.SetConvExecTail(net, nil)
	drqProfiles := drq84.Profiles()

	odq.Reset()
	nn.SetConvExecTail(net, odq)
	net.Forward(calib, false)
	nn.SetConvExecTail(net, nil)
	odqProfiles := odq.Profiles()

	accels := sim.Table2Accels()
	consts := energy.DefaultConstants()
	perf := stats.NewTable("Modeled cost on the Table-2 accelerators (lower is better)",
		"accelerator", "cycles", "vs INT16", "energy", "dram/buffer/cores")
	var base float64
	for _, name := range []string{"INT16", "INT8", "DRQ", "ODQ"} {
		profiles := staticProfiles
		switch name {
		case "DRQ":
			profiles = drqProfiles
		case "ODQ":
			profiles = odqProfiles
			// Derate for scheduling losses measured by the cycle sim.
			var utilSum, wsum float64
			for _, p := range odqProfiles {
				u, _, _ := sim.ODQUtilization(p)
				utilSum += u * float64(p.TotalMACs)
				wsum += float64(p.TotalMACs)
			}
			if wsum > 0 {
				accels["ODQ"].Utilization = utilSum / wsum
			}
		}
		bd, nc := energy.SchemeEnergy(accels[name], profiles, consts)
		cycles := float64(nc.TotalCycles())
		if name == "INT16" {
			base = cycles
		}
		tot := bd.Total()
		perf.AddRow(name, nc.TotalCycles(), fmt.Sprintf("%.3fx", cycles/base),
			fmt.Sprintf("%.1f nJ", tot/1e3),
			fmt.Sprintf("%s/%s/%s", stats.Pct(bd.DRAM/tot), stats.Pct(bd.Buffer/tot), stats.Pct(bd.Cores/tot)))
	}
	perf.Render(os.Stdout)
}

func highShare(e *drq.Exec) string {
	var hi, tot int64
	for _, p := range e.Profiles() {
		hi += p.HighInputMACs
		tot += p.TotalMACs
	}
	if tot == 0 {
		return "-"
	}
	return stats.Pct(float64(hi) / float64(tot))
}
