// Acceldesign: explore the reconfigurable ODQ accelerator's PE-allocation
// design space without training anything. Reproduces Table 1 analytically,
// cross-checks it with the cycle-level slice simulation, and demonstrates
// why static allocation and static workload assignment leave PEs idle
// (Figures 11 and 20 in miniature).
package main

import (
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	// --- Table 1: allocation vs sustainable sensitivity ---
	t1 := stats.NewTable("Table 1: predictor/executor split vs max sensitive fraction (no pipeline bubbles)",
		"predictor arrays", "executor arrays", "max sensitive")
	for _, cfg := range sim.Table1Configs() {
		t1.AddRow(cfg.Predictor, cfg.Executor, stats.Pct(cfg.MaxSensitiveFraction()))
	}
	t1.Render(os.Stdout)

	// --- A synthetic layer swept across sensitivity levels ---
	t2 := stats.NewTable("Reconfiguration in action: 64-channel layer, 256 outputs/channel",
		"sensitive", "chosen alloc", "cycles", "idle", "static 15P/12E idle")
	for _, s := range []float64{0.05, 0.15, 0.30, 0.50, 0.70} {
		w := sim.LayerWork{OutputsPerOFM: 256, SensPerOFM: make([]int, 64)}
		for i := range w.SensPerOFM {
			w.SensPerOFM[i] = int(s * 256)
		}
		auto, alloc := sim.SimulateLayerAuto(w)
		static := sim.SimulateLayer(w, sim.DefaultSliceConfig(sim.AllocConfig{Predictor: 15, Executor: 12}, false))
		t2.AddRow(stats.Pct(s), alloc.String(), auto.Cycles,
			stats.Pct(auto.IdleFrac()), stats.Pct(static.IdleFrac()))
	}
	t2.Render(os.Stdout)

	// --- Skewed per-channel workloads: dynamic vs static scheduling ---
	w := sim.LayerWork{OutputsPerOFM: 256, SensPerOFM: make([]int, 64)}
	for i := range w.SensPerOFM {
		if i%8 == 0 {
			w.SensPerOFM[i] = 200 // a few hot channels hold most work
		} else {
			w.SensPerOFM[i] = 8
		}
	}
	alloc := sim.AllocConfig{Predictor: 15, Executor: 12}
	static := sim.SimulateLayer(w, sim.DefaultSliceConfig(alloc, false))
	dynamic := sim.SimulateLayer(w, sim.DefaultSliceConfig(alloc, true))
	fmt.Println("Skewed channel workload (Figure 14-16 scenario):")
	fmt.Printf("  static round-robin: %6d cycles, executor idle %s\n",
		static.Cycles, stats.Pct(static.ExecIdleFrac()))
	fmt.Printf("  dynamic scheduling: %6d cycles, executor idle %s\n",
		dynamic.Cycles, stats.Pct(dynamic.ExecIdleFrac()))
	fmt.Printf("  speedup from dynamic workload allocation: %.2fx\n",
		float64(static.Cycles)/float64(dynamic.Cycles))
}
