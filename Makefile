.PHONY: all build test vet race verify verify-quick bench snapshot bench-train bench-telemetry bench-bitplane bench-dist bench-compare profile

all: build

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race -timeout 90m ./...

# The full verification gate for this repo. verify.sh is the single source
# of truth for what it runs (the full CI tier executes the same script).
verify:
	./verify.sh

# Fast local gate matching the CI PR tier: vet, build, short tests.
verify-quick:
	go vet ./...
	go build ./...
	go test -short -timeout 15m ./...

bench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate the committed benchmark snapshot (BENCH_odq_conv.json).
snapshot:
	ODQ_BENCH_SNAPSHOT=1 go test -run TestODQConvBenchSnapshot -v .

# Regenerate the committed training/GEMM snapshot (BENCH_train_gemm.json):
# packed vs seed kernels at CNN shapes plus end-to-end QAT step throughput
# at batch 32, min-of-3 runs.
bench-train:
	TRAIN_BENCH_SNAPSHOT=1 go test -run TestTrainGemmBenchSnapshot -v .

# Regenerate the committed telemetry-overhead snapshot (BENCH_telemetry.json):
# per-site disabled/enabled costs plus interleaved enabled-vs-disabled
# overhead on the QAT-step and ODQ-conv hot paths.
bench-telemetry:
	TELEMETRY_BENCH_SNAPSHOT=1 go test -run TestTelemetryBenchSnapshot -v .

# Regenerate the committed bitplane snapshot (BENCH_bitplane.json):
# bitplane vs int-GEMM predictor micro-kernels, sparse/legacy/dense
# executor at swept sensitivities, and the packed-domain pipeline vs the
# float round-trip path.
bench-bitplane:
	BITPLANE_BENCH_SNAPSHOT=1 go test -run TestBitplaneBenchSnapshot -timeout 60m -v .

# Regenerate the committed scale-out snapshot (BENCH_dist.json):
# group-synchronous QAT at 1/2/4 loopback workers and the replica pool at
# 1/2/4 sessions — measured walls plus the critical-path projection for
# multi-core hosts, interleaved min-of-trials.
bench-dist:
	DIST_BENCH_SNAPSHOT=1 go test -run TestDistBenchSnapshot -timeout 60m -v .

# Compare fresh benchmark snapshot runs against the committed BENCH_*.json
# files (informational; see scripts/bench_compare.sh).
bench-compare:
	./scripts/bench_compare.sh

# Profile a short experiment run end to end: CPU profile + Chrome trace
# (load trace.json at https://ui.perfetto.dev), then the top-10 hottest
# frames by flat time.
profile:
	go build -o odq-bench-profile ./cmd/odq-bench
	./odq-bench-profile -scale test -run figure1 -quiet \
		-cpuprofile cpu.pprof -trace-out trace.json
	go tool pprof -top -nodecount=10 odq-bench-profile cpu.pprof
	rm -f odq-bench-profile
