.PHONY: all build test vet race verify bench snapshot bench-train

all: build

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race -timeout 90m ./...

# The verification gate for this repo: vet, build, race-enabled tests.
# The experiments package runs training loops; under the race detector on a
# small machine it can exceed the default 10m per-package timeout.
verify:
	go vet ./...
	go build ./...
	go test -race -timeout 90m ./...
	# Build-only smoke for the benchmark snapshot harnesses: without their
	# env gates the snapshot tests compile, link and skip — CI never
	# depends on timing.
	go test -run 'TestODQConvBenchSnapshot|TestTrainGemmBenchSnapshot' -count=1 .

bench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate the committed benchmark snapshot (BENCH_odq_conv.json).
snapshot:
	ODQ_BENCH_SNAPSHOT=1 go test -run TestODQConvBenchSnapshot -v .

# Regenerate the committed training/GEMM snapshot (BENCH_train_gemm.json):
# packed vs seed kernels at CNN shapes plus end-to-end QAT step throughput
# at batch 32, min-of-3 runs.
bench-train:
	TRAIN_BENCH_SNAPSHOT=1 go test -run TestTrainGemmBenchSnapshot -v .
