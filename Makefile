.PHONY: all build test vet race verify bench snapshot bench-train bench-telemetry profile

all: build

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race -timeout 90m ./...

# The verification gate for this repo: vet, build, race-enabled tests.
# The experiments package runs training loops; under the race detector on a
# small machine it can exceed the default 10m per-package timeout.
verify:
	go vet ./...
	go build ./...
	# Fast early gate: the telemetry layer and the kernels it instruments
	# are the most concurrency-sensitive packages; shake them under the
	# race detector before the long full-tree pass.
	go test -race -count=1 ./internal/telemetry ./internal/tensor
	go test -race -timeout 90m ./...
	# Build-only smoke for the benchmark snapshot harnesses: without their
	# env gates the snapshot tests compile, link and skip — CI never
	# depends on timing.
	go test -run 'TestODQConvBenchSnapshot|TestTrainGemmBenchSnapshot|TestTelemetryBenchSnapshot' -count=1 .
	# Crash-safety gate: train, SIGKILL mid-run, resume; the resumed run
	# must be bit-identical to one that was never interrupted.
	./scripts/resume_smoke.sh
	# Serving gate: start odq-serve, concurrent request burst, assert all
	# 200s with cross-request batching visible on the metrics endpoint,
	# then a graceful SIGTERM drain.
	./scripts/serve_smoke.sh

bench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate the committed benchmark snapshot (BENCH_odq_conv.json).
snapshot:
	ODQ_BENCH_SNAPSHOT=1 go test -run TestODQConvBenchSnapshot -v .

# Regenerate the committed training/GEMM snapshot (BENCH_train_gemm.json):
# packed vs seed kernels at CNN shapes plus end-to-end QAT step throughput
# at batch 32, min-of-3 runs.
bench-train:
	TRAIN_BENCH_SNAPSHOT=1 go test -run TestTrainGemmBenchSnapshot -v .

# Regenerate the committed telemetry-overhead snapshot (BENCH_telemetry.json):
# per-site disabled/enabled costs plus interleaved enabled-vs-disabled
# overhead on the QAT-step and ODQ-conv hot paths.
bench-telemetry:
	TELEMETRY_BENCH_SNAPSHOT=1 go test -run TestTelemetryBenchSnapshot -v .

# Profile a short experiment run end to end: CPU profile + Chrome trace
# (load trace.json at https://ui.perfetto.dev), then the top-10 hottest
# frames by flat time.
profile:
	go build -o odq-bench-profile ./cmd/odq-bench
	./odq-bench-profile -scale test -run figure1 -quiet \
		-cpuprofile cpu.pprof -trace-out trace.json
	go tool pprof -top -nodecount=10 odq-bench-profile cpu.pprof
	rm -f odq-bench-profile
