.PHONY: all build test vet race verify bench snapshot

all: build

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race -timeout 90m ./...

# The verification gate for this repo: vet, build, race-enabled tests.
# The experiments package runs training loops; under the race detector on a
# small machine it can exceed the default 10m per-package timeout.
verify:
	go vet ./...
	go build ./...
	go test -race -timeout 90m ./...

bench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate the committed benchmark snapshot (BENCH_odq_conv.json).
snapshot:
	ODQ_BENCH_SNAPSHOT=1 go test -run TestODQConvBenchSnapshot -v .
