package repro_bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
)

// ODQConvBenchRecord is one cell of the sparse-executor benchmark grid.
type ODQConvBenchRecord struct {
	Sensitivity string  `json:"sensitivity"`
	Threshold   float32 `json:"threshold"`
	SensFrac    float64 `json:"sensitive_fraction"`
	Variant     string  `json:"variant"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ODQConvBenchSnapshot is the BENCH_odq_conv.json schema.
type ODQConvBenchSnapshot struct {
	Layer   string               `json:"layer"`
	Records []ODQConvBenchRecord `json:"records"`
	// SparseSpeedup maps each sensitivity level to dense-ns / sparse-
	// parallel-ns; ParallelSpeedup to sparse-serial-ns / sparse-parallel-ns.
	SparseSpeedup   map[string]float64 `json:"sparse_speedup_vs_dense"`
	ParallelSpeedup map[string]float64 `json:"parallel_speedup_vs_serial"`
}

// TestODQConvBenchSnapshot regenerates BENCH_odq_conv.json. It only runs
// when ODQ_BENCH_SNAPSHOT=1 (benchmarking inside the normal test suite
// would make CI timing-dependent):
//
//	ODQ_BENCH_SNAPSHOT=1 go test -run TestODQConvBenchSnapshot .
func TestODQConvBenchSnapshot(t *testing.T) {
	if os.Getenv("ODQ_BENCH_SNAPSHOT") != "1" {
		t.Skip("set ODQ_BENCH_SNAPSHOT=1 to regenerate BENCH_odq_conv.json")
	}
	conv, x := benchConvLayer()
	snap := &ODQConvBenchSnapshot{
		Layer:           "conv 16x32x32 -> 32 filters 3x3 s1 p1, batch 1",
		SparseSpeedup:   map[string]float64{},
		ParallelSpeedup: map[string]float64{},
	}
	for _, p := range odqBenchGrid {
		th := thresholdForSensitivity(conv, x, p.target)
		// Measure the realized fraction once for the record.
		probe := core.NewExec(th, core.WithProfiling())
		conv.Exec = probe
		conv.Forward(x, false)
		conv.Exec = nil
		frac := probe.SensitiveFraction()

		ns := map[string]int64{}
		for _, v := range []struct {
			name string
			opts []core.Option
		}{
			{"sparse-parallel", nil},
			{"sparse-serial", []core.Option{core.WithWorkers(1)}},
			{"dense", []core.Option{core.WithDenseReference()}},
		} {
			e := core.NewExec(th, v.opts...)
			conv.Exec = e
			// Min of three runs: shared/virtualized runners jitter far
			// more than the effect under measurement.
			var best testing.BenchmarkResult
			for rep := 0; rep < 3; rep++ {
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						conv.Forward(x, false)
					}
				})
				if rep == 0 || res.NsPerOp() < best.NsPerOp() {
					best = res
				}
			}
			conv.Exec = nil
			ns[v.name] = best.NsPerOp()
			snap.Records = append(snap.Records, ODQConvBenchRecord{
				Sensitivity: p.name,
				Threshold:   th,
				SensFrac:    frac,
				Variant:     v.name,
				NsPerOp:     best.NsPerOp(),
				AllocsPerOp: best.AllocsPerOp(),
				BytesPerOp:  best.AllocedBytesPerOp(),
			})
		}
		snap.SparseSpeedup[p.name] = float64(ns["dense"]) / float64(ns["sparse-parallel"])
		snap.ParallelSpeedup[p.name] = float64(ns["sparse-serial"]) / float64(ns["sparse-parallel"])
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_odq_conv.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sparse-vs-dense speedups: %v", snap.SparseSpeedup)
	t.Logf("parallel-vs-serial speedups: %v", snap.ParallelSpeedup)
}
