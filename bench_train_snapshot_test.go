package repro_bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/train"
)

// ---------- Seed-path replicas ----------
//
// The packed-GEMM rework replaced both the kernels (blocked/register-tiled
// vs the seed ikj loop) and the training conv data flow (pooled scratch and
// batch fan-out vs per-sample allocation and materialized transposes). To
// keep an honest baseline for BENCH_train_gemm.json, the seed behaviour is
// replayed here verbatim: fresh per-sample im2col buffers, transposeBuf
// copies, Transpose2 weight transposes and the retained naive kernels.

// seedConv2D replays the seed Conv2D training path.
type seedConv2D struct {
	Name           string
	InC, OutC      int
	K, Stride, Pad int
	Weight         *nn.Param
	Bias           *nn.Param
	WeightQuant    nn.FakeQuant

	inX, qW *tensor.Tensor
	geom    tensor.ConvGeom
	colsB   [][]float32
}

func newSeedConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *seedConv2D {
	w := tensor.New(outC, inC, k, k)
	rng.KaimingConv(w)
	return &seedConv2D{
		Name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: nn.NewParam(name+".weight", w, true),
		Bias:   nn.NewParam(name+".bias", tensor.New(outC), false),
	}
}

func (c *seedConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	qw := c.Weight.W
	if c.WeightQuant != nil {
		qw = c.WeightQuant.Forward(c.Weight.W)
	}
	n := x.Shape[0]
	g := tensor.Geometry(c.InC, x.Shape[2], x.Shape[3], c.OutC, c.K, c.Stride, c.Pad)
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	rows, cols := g.ColRows(), g.ColCols()
	if train {
		c.inX, c.qW, c.geom = x, qw, g
		c.colsB = make([][]float32, n)
	}
	buf := make([]float32, rows*cols)
	per := c.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		cb := buf
		if train {
			cb = make([]float32, rows*cols)
			c.colsB[s] = cb
		}
		tensor.Im2col(x.Data[s*per:(s+1)*per], g, cb)
		tensor.GemmNaive(qw.Data, cb, out.Data[s*g.OutC*cols:(s+1)*g.OutC*cols], g.OutC, rows, cols)
	}
	hw := g.OutH * g.OutW
	for s := 0; s < n; s++ {
		for o := 0; o < g.OutC; o++ {
			b := c.Bias.W.Data[o]
			base := (s*g.OutC + o) * hw
			for i := 0; i < hw; i++ {
				out.Data[base+i] += b
			}
		}
	}
	return out
}

func seedTransposeBuf(src []float32, rows, cols int) []float32 {
	out := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			out[cc*rows+r] = src[r*cols+cc]
		}
	}
	return out
}

func (c *seedConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := grad.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	dX := tensor.New(c.inX.Shape...)
	wT := c.qW.Reshape(g.OutC, rows).Transpose2()
	dCols := make([]float32, rows*cols)
	hw := g.OutH * g.OutW
	for s := 0; s < n; s++ {
		for o := 0; o < g.OutC; o++ {
			var sum float32
			base := (s*g.OutC + o) * hw
			for i := 0; i < hw; i++ {
				sum += grad.Data[base+i]
			}
			c.Bias.Grad.Data[o] += sum
		}
	}
	per := c.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		gs := grad.Data[s*g.OutC*cols : (s+1)*g.OutC*cols]
		colsT := seedTransposeBuf(c.colsB[s], rows, cols)
		tensor.GemmAccNaive(gs, colsT, c.Weight.Grad.Data, g.OutC, cols, rows)
		tensor.GemmNaive(wT.Data, gs, dCols, rows, g.OutC, cols)
		tensor.Col2im(dCols, g, dX.Data[s*per:(s+1)*per])
	}
	c.colsB = nil
	return dX
}

func (c *seedConv2D) Params() []*nn.Param     { return []*nn.Param{c.Weight, c.Bias} }
func (c *seedConv2D) Visit(f func(nn.Module)) { f(c) }

// seedLinear replays the seed Linear path (materialized Transpose2 of the
// weight and gradient matrices, naive kernels).
type seedLinear struct {
	Name    string
	In, Out int
	Weight  *nn.Param
	Bias    *nn.Param

	inX *tensor.Tensor
}

func newSeedLinear(name string, in, out int, rng *tensor.RNG) *seedLinear {
	w := tensor.New(out, in)
	rng.KaimingLinear(w)
	return &seedLinear{
		Name: name, In: in, Out: out,
		Weight: nn.NewParam(name+".weight", w, true),
		Bias:   nn.NewParam(name+".bias", tensor.New(out), false),
	}
}

func (l *seedLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	out := tensor.New(n, l.Out)
	wT := l.Weight.W.Transpose2()
	tensor.GemmNaive(x.Data, wT.Data, out.Data, n, l.In, l.Out)
	for s := 0; s < n; s++ {
		for o := 0; o < l.Out; o++ {
			out.Data[s*l.Out+o] += l.Bias.W.Data[o]
		}
	}
	if train {
		l.inX = x
	}
	return out
}

func (l *seedLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	gT := grad.Transpose2()
	tensor.GemmAccNaive(gT.Data, l.inX.Data, l.Weight.Grad.Data, l.Out, n, l.In)
	for s := 0; s < n; s++ {
		for o := 0; o < l.Out; o++ {
			l.Bias.Grad.Data[o] += grad.Data[s*l.Out+o]
		}
	}
	dX := tensor.New(n, l.In)
	tensor.GemmNaive(grad.Data, l.Weight.W.Data, dX.Data, n, l.Out, l.In)
	l.inX = nil
	return dX
}

func (l *seedLinear) Params() []*nn.Param     { return []*nn.Param{l.Weight, l.Bias} }
func (l *seedLinear) Visit(f func(nn.Module)) { f(l) }

// ---------- QAT step harness ----------

const qatBatch = 32

// benchQATNet builds the QAT CNN used for the training-throughput bench:
// three 3×3 conv stages (32→64→64 channels, DoReFa 4-bit weight
// quantizers, QuantReLU activations) and a linear classifier, on 3×32×32
// inputs at batch 32. seedStyle selects the seed-path replicas; both
// variants consume the RNG identically, so the weights match exactly.
func benchQATNet(seedStyle bool, rng *tensor.RNG) nn.Module {
	qrelu := func(name string) nn.Module {
		q := quant.NewQuantReLU(name, 4)
		q.Range = 3
		return q
	}
	conv := func(name string, inC, outC int) nn.Module {
		if seedStyle {
			c := newSeedConv2D(name, inC, outC, 3, 1, 1, rng)
			c.WeightQuant = &quant.WeightQuantizer{Bits: 4}
			return c
		}
		c := nn.NewConv2D(name, inC, outC, 3, 1, 1, true, rng)
		c.WeightQuant = &quant.WeightQuantizer{Bits: 4}
		return c
	}
	var fc nn.Module
	if seedStyle {
		fc = newSeedLinear("fc", 64*8*8, 10, rng)
	} else {
		fc = nn.NewLinear("fc", 64*8*8, 10, rng)
	}
	return nn.NewSequential("qatcnn",
		conv("c1", 3, 32), qrelu("q1"), nn.NewMaxPool2D("p1", 2, 2),
		conv("c2", 32, 64), qrelu("q2"), nn.NewMaxPool2D("p2", 2, 2),
		conv("c3", 64, 64), qrelu("q3"),
		nn.NewFlatten("flat"), fc,
	)
}

func benchQATBatch(rng *tensor.RNG) (*tensor.Tensor, []int) {
	x := tensor.New(qatBatch, 3, 32, 32)
	rng.FillUniform(x, -1, 1)
	y := make([]int, qatBatch)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	return x, y
}

func benchQATStep(b *testing.B, seedStyle bool) {
	net := benchQATNet(seedStyle, tensor.NewRNG(42))
	x, y := benchQATBatch(tensor.NewRNG(43))
	opt := train.NewSGD(0.01, 0.9, 1e-4)
	params := net.Params()
	train.Step(net, x, y, opt, params) // warm scratch pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.Step(net, x, y, opt, params)
	}
}

func BenchmarkQATStep(b *testing.B) {
	b.Run("packed", func(b *testing.B) { benchQATStep(b, false) })
	b.Run("seed", func(b *testing.B) { benchQATStep(b, true) })
}

// ---------- GEMM micro-bench grid ----------

// trainGemmShapes are representative im2col shapes of the bench CNN's
// conv stages (m=OutC, k=InC·K², n=OutH·OutW).
var trainGemmShapes = [][3]int{
	{64, 576, 1024},
	{32, 288, 256},
	{64, 576, 64},
}

func benchGemmFloatShape(b *testing.B, m, k, n int, naive bool) {
	rng := tensor.NewRNG(5)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	for i := range bb {
		bb[i] = rng.Float32()*2 - 1
	}
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			tensor.GemmNaive(a, bb, c, m, k, n)
		} else {
			tensor.Gemm(a, bb, c, m, k, n)
		}
	}
}

func benchGemmIntShape(b *testing.B, m, k, n int, naive bool) {
	rng := tensor.NewRNG(6)
	a := make([]int32, m*k)
	bb := make([]int32, k*n)
	c := make([]int64, m*n)
	for i := range a {
		a[i] = int32(rng.Intn(255)) - 127
	}
	for i := range bb {
		bb[i] = int32(rng.Intn(255)) - 127
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			tensor.GemmIntNaive(a, bb, c, m, k, n)
		} else {
			tensor.GemmInt(a, bb, c, m, k, n)
		}
	}
}

func BenchmarkTrainGemm(b *testing.B) {
	for _, sh := range trainGemmShapes {
		tag := fmt.Sprintf("%dx%dx%d", sh[0], sh[1], sh[2])
		b.Run("float-packed/"+tag, func(b *testing.B) { benchGemmFloatShape(b, sh[0], sh[1], sh[2], false) })
		b.Run("float-naive/"+tag, func(b *testing.B) { benchGemmFloatShape(b, sh[0], sh[1], sh[2], true) })
		b.Run("int-packed/"+tag, func(b *testing.B) { benchGemmIntShape(b, sh[0], sh[1], sh[2], false) })
		b.Run("int-naive/"+tag, func(b *testing.B) { benchGemmIntShape(b, sh[0], sh[1], sh[2], true) })
	}
}

// ---------- Committed snapshot ----------

// TrainGemmBenchRecord is one cell of the training/GEMM benchmark grid.
type TrainGemmBenchRecord struct {
	Section     string `json:"section"` // "gemm-float" | "gemm-int" | "qat-step"
	Name        string `json:"name"`    // shape or batch tag
	Variant     string `json:"variant"` // "packed" | "seed"
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// TrainGemmBenchSnapshot is the BENCH_train_gemm.json schema.
type TrainGemmBenchSnapshot struct {
	QATModel string                 `json:"qat_model"`
	Records  []TrainGemmBenchRecord `json:"records"`
	// GemmFloatSpeedup / GemmIntSpeedup map each m×k×n shape to
	// seed-ns / packed-ns for the float and integer kernels.
	GemmFloatSpeedup map[string]float64 `json:"gemm_float_speedup_vs_seed"`
	GemmIntSpeedup   map[string]float64 `json:"gemm_int_speedup_vs_seed"`
	// QATStepsPerSec reports end-to-end training steps/s at batch 32 for
	// the packed path and the seed replica; QATStepSpeedup is their ratio.
	QATStepsPerSec map[string]float64 `json:"qat_steps_per_sec_batch32"`
	QATStepSpeedup float64            `json:"qat_step_speedup_vs_seed"`
}

func minOf3(f func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		if rep == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best
}

// TestTrainGemmBenchSnapshot regenerates BENCH_train_gemm.json. Like the
// ODQ snapshot it is env-gated so CI never depends on timing:
//
//	TRAIN_BENCH_SNAPSHOT=1 go test -run TestTrainGemmBenchSnapshot -v .
func TestTrainGemmBenchSnapshot(t *testing.T) {
	if os.Getenv("TRAIN_BENCH_SNAPSHOT") != "1" {
		t.Skip("set TRAIN_BENCH_SNAPSHOT=1 to regenerate BENCH_train_gemm.json")
	}
	snap := &TrainGemmBenchSnapshot{
		QATModel:         "conv3x(3->32->64->64) k3 QuantReLU4 + fc4096x10, input 3x32x32, batch 32",
		GemmFloatSpeedup: map[string]float64{},
		GemmIntSpeedup:   map[string]float64{},
		QATStepsPerSec:   map[string]float64{},
	}
	record := func(section, name, variant string, r testing.BenchmarkResult) int64 {
		snap.Records = append(snap.Records, TrainGemmBenchRecord{
			Section: section, Name: name, Variant: variant,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		return r.NsPerOp()
	}

	for _, sh := range trainGemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		tag := fmt.Sprintf("%dx%dx%d", m, k, n)
		packed := record("gemm-float", tag, "packed",
			minOf3(func(b *testing.B) { benchGemmFloatShape(b, m, k, n, false) }))
		seed := record("gemm-float", tag, "seed",
			minOf3(func(b *testing.B) { benchGemmFloatShape(b, m, k, n, true) }))
		snap.GemmFloatSpeedup[tag] = float64(seed) / float64(packed)

		packedI := record("gemm-int", tag, "packed",
			minOf3(func(b *testing.B) { benchGemmIntShape(b, m, k, n, false) }))
		seedI := record("gemm-int", tag, "seed",
			minOf3(func(b *testing.B) { benchGemmIntShape(b, m, k, n, true) }))
		snap.GemmIntSpeedup[tag] = float64(seedI) / float64(packedI)
	}

	packed := record("qat-step", "batch32", "packed",
		minOf3(func(b *testing.B) { benchQATStep(b, false) }))
	seed := record("qat-step", "batch32", "seed",
		minOf3(func(b *testing.B) { benchQATStep(b, true) }))
	snap.QATStepsPerSec["packed"] = 1e9 / float64(packed)
	snap.QATStepsPerSec["seed"] = 1e9 / float64(seed)
	snap.QATStepSpeedup = float64(seed) / float64(packed)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_train_gemm.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("gemm float speedups: %v", snap.GemmFloatSpeedup)
	t.Logf("gemm int speedups: %v", snap.GemmIntSpeedup)
	t.Logf("qat step speedup: %.2fx (%v steps/s)", snap.QATStepSpeedup, snap.QATStepsPerSec)
}

// TestSeedReplicaMatchesPacked sanity-checks the bench baseline itself:
// the seed replica and the packed path start from identical weights and
// must produce numerically close logits and losses for the same batch, so
// the throughput comparison measures the same computation.
func TestSeedReplicaMatchesPacked(t *testing.T) {
	newNet := benchQATNet(false, tensor.NewRNG(42))
	seedNet := benchQATNet(true, tensor.NewRNG(42))
	x, y := benchQATBatch(tensor.NewRNG(43))

	ln := newNet.Forward(x, true)
	ls := seedNet.Forward(x, true)
	for i := range ln.Data {
		d := ln.Data[i] - ls.Data[i]
		if d < -1e-2 || d > 1e-2 {
			t.Fatalf("logit %d diverged: packed %g seed %g", i, ln.Data[i], ls.Data[i])
		}
	}
	lossN, gradN := nn.SoftmaxCE(ln, y)
	lossS, gradS := nn.SoftmaxCE(ls, y)
	if d := lossN - lossS; d < -1e-3 || d > 1e-3 {
		t.Fatalf("loss diverged: packed %g seed %g", lossN, lossS)
	}
	newNet.Backward(gradN)
	seedNet.Backward(gradS)
}
