// Package energy models the accelerator energy consumption behind the
// paper's Figure 21: per-MAC dynamic energy scaled by PE bit width, SRAM
// buffer and DRAM access energy per byte, and static (leakage/background)
// energy proportional to runtime. The absolute constants are documented
// engineering numbers in the spirit of Horowitz's ISSCC'14 survey and
// CACTI-scale SRAM/DRAM costs; the figures of merit are the *relative*
// energies across accelerators, which is what the paper reports
// (normalized energy).
package energy

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/sim"
)

// Constants are the per-operation energy costs in picojoules.
type Constants struct {
	// MACpJ maps a PE's native bit width to the energy of one MAC at
	// that width. Roughly quadratic in width (multiplier-dominated).
	MACpJ map[int]float64
	// BufferPJPerByte is the on-chip SRAM access energy.
	BufferPJPerByte float64
	// DRAMPJPerByte is the off-chip access energy.
	DRAMPJPerByte float64
	// LeakPJPerPECycle is the PE-array leakage per PE per cycle.
	LeakPJPerPECycle float64
	// DRAMBackgroundPJPerCycle and BufferBackgroundPJPerCycle are the
	// standby powers burned for the whole runtime; faster accelerators
	// pay less, which is where ODQ's static-energy win comes from.
	DRAMBackgroundPJPerCycle   float64
	BufferBackgroundPJPerCycle float64
}

// DefaultConstants returns the constants used by the reproduction.
func DefaultConstants() Constants {
	return Constants{
		MACpJ: map[int]float64{
			2:  0.05,
			4:  0.2,
			8:  0.8,
			16: 3.2,
		},
		BufferPJPerByte:            1.0,
		DRAMPJPerByte:              80.0,
		LeakPJPerPECycle:           0.01,
		DRAMBackgroundPJPerCycle:   20.0,
		BufferBackgroundPJPerCycle: 5.0,
	}
}

// Breakdown is the paper's three-way energy split.
type Breakdown struct {
	DRAM   float64 // pJ
	Buffer float64 // pJ
	Cores  float64 // pJ (PE slices: dynamic MACs + leakage)
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.DRAM + b.Buffer + b.Cores }

// String renders the breakdown compactly in nanojoules.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fnJ dram=%.1fnJ buffer=%.1fnJ cores=%.1fnJ",
		b.Total()/1e3, b.DRAM/1e3, b.Buffer/1e3, b.Cores/1e3)
}

// peBits returns the native PE width whose MAC energy applies to one
// PE-cycle of each accelerator kind (composed wide MACs burn multiple
// narrow-MAC cycles, each at the narrow energy).
func peBits(k sim.Kind) int {
	switch k {
	case sim.KindINT16:
		return 16
	case sim.KindINT8, sim.KindDRQ:
		return 4
	case sim.KindODQ:
		return 2
	default:
		panic("energy: unknown accelerator kind")
	}
}

// NetworkEnergy computes the energy breakdown of running a network (as a
// perf-model NetworkCost produced by a.NetworkCostOf) on accelerator a.
func NetworkEnergy(a *sim.Accel, nc *sim.NetworkCost, c Constants) Breakdown {
	macPJ, ok := c.MACpJ[peBits(a.Kind)]
	if !ok {
		panic(fmt.Sprintf("energy: no MAC energy for %d-bit PEs", peBits(a.Kind)))
	}
	cycles := float64(nc.TotalCycles())
	return Breakdown{
		DRAM:   float64(nc.TotalDRAMBytes())*c.DRAMPJPerByte + cycles*c.DRAMBackgroundPJPerCycle,
		Buffer: float64(nc.TotalBufferBytes())*c.BufferPJPerByte + cycles*c.BufferBackgroundPJPerCycle,
		Cores:  float64(nc.TotalPECycles())*macPJ + cycles*float64(a.PEs)*c.LeakPJPerPECycle,
	}
}

// SchemeEnergy is a convenience that models both cost and energy for a
// set of layer profiles on an accelerator.
func SchemeEnergy(a *sim.Accel, profiles []*quant.LayerProfile, c Constants) (Breakdown, *sim.NetworkCost) {
	nc := a.NetworkCostOf(profiles)
	return NetworkEnergy(a, nc, c), nc
}
