package energy

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func profileWith(sensFrac, highFrac float64) *quant.LayerProfile {
	g := tensor.Geometry(16, 16, 16, 32, 3, 1, 1)
	total := int64(g.TotalOutputs())
	macs := g.TotalMACs()
	return &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 1,
		TotalOutputs:     total,
		SensitiveOutputs: int64(sensFrac * float64(total)),
		TotalMACs:        macs,
		HighInputMACs:    int64(highFrac * float64(macs)),
	}
}

func TestDefaultConstantsQuadraticMACs(t *testing.T) {
	c := DefaultConstants()
	if c.MACpJ[4] != 4*c.MACpJ[2] || c.MACpJ[8] != 4*c.MACpJ[4] || c.MACpJ[16] != 4*c.MACpJ[8] {
		t.Fatalf("MAC energy must scale quadratically with width: %v", c.MACpJ)
	}
	if c.DRAMPJPerByte <= c.BufferPJPerByte {
		t.Fatal("DRAM must cost more than SRAM")
	}
}

func TestEnergyOrderingAcrossAccels(t *testing.T) {
	profiles := []*quant.LayerProfile{profileWith(0.25, 0.5)}
	accels := sim.Table2Accels()
	c := DefaultConstants()
	total := func(name string) float64 {
		b, _ := SchemeEnergy(accels[name], profiles, c)
		return b.Total()
	}
	e16, e8, edrq, eodq := total("INT16"), total("INT8"), total("DRQ"), total("ODQ")
	if !(eodq < edrq && edrq < e8 && e8 < e16) {
		t.Fatalf("energy ordering violated: INT16=%.0f INT8=%.0f DRQ=%.0f ODQ=%.0f",
			e16, e8, edrq, eodq)
	}
	// Shape target mirroring the paper's 97.6% / 66.9% savings: ODQ saves
	// the lion's share vs INT16 and a clear majority vs DRQ.
	if 1-eodq/e16 < 0.8 {
		t.Fatalf("ODQ vs INT16 saving only %.1f%%", (1-eodq/e16)*100)
	}
	if 1-eodq/edrq < 0.3 {
		t.Fatalf("ODQ vs DRQ saving only %.1f%%", (1-eodq/edrq)*100)
	}
}

func TestBreakdownComponentsPositive(t *testing.T) {
	profiles := []*quant.LayerProfile{profileWith(0.25, 0.5)}
	a := sim.Table2Accels()["ODQ"]
	b, nc := SchemeEnergy(a, profiles, DefaultConstants())
	if b.DRAM <= 0 || b.Buffer <= 0 || b.Cores <= 0 {
		t.Fatalf("breakdown has non-positive component: %+v", b)
	}
	if b.Total() != b.DRAM+b.Buffer+b.Cores {
		t.Fatal("Total must sum components")
	}
	if nc.TotalCycles() <= 0 {
		t.Fatal("cost model returned no cycles")
	}
}

func TestSensitivityRaisesODQEnergy(t *testing.T) {
	a := sim.Table2Accels()["ODQ"]
	c := DefaultConstants()
	lo, _ := SchemeEnergy(a, []*quant.LayerProfile{profileWith(0.1, 0)}, c)
	hi, _ := SchemeEnergy(a, []*quant.LayerProfile{profileWith(0.9, 0)}, c)
	if hi.Cores <= lo.Cores {
		t.Fatal("more sensitive outputs must burn more core energy")
	}
}

func TestStaticEnergyScalesWithRuntime(t *testing.T) {
	// Same work on a slower accelerator must burn more background energy.
	profiles := []*quant.LayerProfile{profileWith(0.25, 0.5)}
	accels := sim.Table2Accels()
	c := DefaultConstants()
	// Zero out per-byte and per-MAC costs: only background/leak remains.
	c.MACpJ = map[int]float64{2: 0, 4: 0, 8: 0, 16: 0}
	c.DRAMPJPerByte = 0
	c.BufferPJPerByte = 0
	c.LeakPJPerPECycle = 0
	slow, _ := SchemeEnergy(accels["INT16"], profiles, c)
	fast, _ := SchemeEnergy(accels["ODQ"], profiles, c)
	if fast.Total() >= slow.Total() {
		t.Fatalf("background energy must track runtime: fast=%.0f slow=%.0f",
			fast.Total(), slow.Total())
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{DRAM: 1000, Buffer: 2000, Cores: 3000}
	if b.String() == "" {
		t.Fatal("String must render")
	}
}
