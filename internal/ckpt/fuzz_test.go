package ckpt

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// fuzzSeeds returns the committed seed corpus: valid v2 and v1
// encodings plus characteristic mutations, so even a plain `go test`
// run (which executes only the seeds) covers the interesting decode
// paths; `go test -fuzz=FuzzReadAny` explores from there.
func fuzzSeeds(tb testing.TB) [][]byte {
	valid := &Checkpoint{
		Model:     map[string][]float32{"c1.weight": {1, -2, 3.5}, "c1.bias": {0.25}},
		Optimizer: map[string][]float32{"c1.weight": {0.1, 0.2, 0.3}},
		RNG:       &RNGState{Seed: 9},
		Progress:  &Progress{Epoch: 1, Step: 10, LR: 0.05, Loss: []float32{1}, TrainAcc: []float64{0.5}},
	}
	var v2 bytes.Buffer
	if err := Write(&v2, valid); err != nil {
		tb.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(&v1Checkpoint{
		Version: 1, Tensors: map[string][]float32{"w": {1, 2}},
	}); err != nil {
		tb.Fatal(err)
	}
	full := v2.Bytes()
	half := append([]byte(nil), full[:len(full)/2]...)
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	// A v2 header claiming an enormous section: must error cleanly, not
	// allocate unboundedly.
	lying := append([]byte(nil), full[:24]...)
	for i := 16; i < 24 && i < len(lying); i++ {
		lying[i] = 0xff
	}
	return [][]byte{
		full,
		v1.Bytes(),
		half,
		flipped,
		lying,
		[]byte{},
		[]byte("ODQCKPT2"),
		[]byte("ODQCKPT3 but longer than the magic"),
		[]byte("random text that is neither format"),
	}
}

// FuzzReadAny asserts the decoder's only failure mode is a returned
// error: no panics, no runaway allocations, on any input.
func FuzzReadAny(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadAny(bytes.NewReader(data))
		if err == nil && ck.Model == nil {
			t.Fatal("nil error must imply a decoded model section")
		}
	})
}

// FuzzRoundTrip: any checkpoint the decoder accepts must re-encode and
// decode to the same value (the decoder and encoder agree on the
// format).
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ck); err != nil {
			t.Fatalf("re-encoding an accepted checkpoint failed: %v", err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decoding a re-encoded checkpoint failed: %v", err)
		}
	})
}
