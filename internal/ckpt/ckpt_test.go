package ckpt

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Model: map[string][]float32{
			"c1.weight": {0.5, -1.25, 3e-8, 42},
			"c1.bias":   {0},
			"bn1.gamma": {1, 1, 1},
		},
		Optimizer: map[string][]float32{
			"c1.weight": {0.01, -0.02, 0, 0.5},
			"c1.bias":   {-0.003},
		},
		RNG: &RNGState{Seed: 77},
		Progress: &Progress{
			Epoch: 3, Step: 96, LR: 0.0125,
			Loss:     []float32{2.1, 1.4, 0.9},
			TrainAcc: []float64{0.3, 0.55, 0.71},
		},
	}
}

func encode(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripFull(t *testing.T) {
	ck := sampleCheckpoint()
	got, err := Read(bytes.NewReader(encode(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", ck, got)
	}
}

func TestRoundTripModelOnly(t *testing.T) {
	ck := &Checkpoint{Model: map[string][]float32{"w": {1, 2, 3}}}
	got, err := Read(bytes.NewReader(encode(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Optimizer != nil || got.RNG != nil || got.Progress != nil {
		t.Fatalf("model-only checkpoint grew sections: %+v", got)
	}
	if !reflect.DeepEqual(ck.Model, got.Model) {
		t.Fatal("model tensors mismatch")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a := encode(t, sampleCheckpoint())
	b := encode(t, sampleCheckpoint())
	if !bytes.Equal(a, b) {
		t.Fatal("same checkpoint must encode to identical bytes (map order must not leak)")
	}
}

func TestSpecialFloatsSurvive(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	negZero := float32(math.Copysign(0, -1))
	ck := &Checkpoint{Model: map[string][]float32{"w": {nan, inf, negZero}}}
	got, err := Read(bytes.NewReader(encode(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	w := got.Model["w"]
	if !math.IsNaN(float64(w[0])) || !math.IsInf(float64(w[1]), 1) {
		t.Fatalf("special values mangled: %v", w)
	}
	if math.Float32bits(w[2]) != math.Float32bits(float32(math.Copysign(0, -1))) {
		t.Fatalf("-0 not preserved bit-exactly: %x", math.Float32bits(w[2]))
	}
}

func TestReadAnyV1Gob(t *testing.T) {
	// The seed (v1) format: a bare gob of {Version, Tensors}.
	var buf bytes.Buffer
	v1 := v1Checkpoint{Version: 1, Tensors: map[string][]float32{"fc.weight": {1, 2}, "fc.bias": {3}}}
	if err := gob.NewEncoder(&buf).Encode(&v1); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 checkpoint must still load: %v", err)
	}
	if !reflect.DeepEqual(ck.Model, v1.Tensors) {
		t.Fatal("v1 tensors mismatch")
	}
	if ck.Optimizer != nil || ck.Progress != nil {
		t.Fatal("v1 checkpoints carry a model section only")
	}
}

func TestReadAnyV2(t *testing.T) {
	ck := sampleCheckpoint()
	got, err := ReadAny(bytes.NewReader(encode(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatal("ReadAny(v2) mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short":        []byte("ODQ"),
		"wrong magic":  []byte("NOTACKPTxxxxxxxxxxxxxxxx"),
		"text":         []byte("definitely not a checkpoint file, just some text"),
		"magic only":   magic[:],
		"v1 truncated": {0x2b, 0x7f},
	}
	for name, b := range cases {
		if _, err := ReadAny(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: garbage input must error", name)
		}
	}
}

func TestReadRejectsFutureVersion(t *testing.T) {
	b := encode(t, sampleCheckpoint())
	b[8] = 99 // version field follows the 8-byte magic
	_, err := Read(bytes.NewReader(b))
	if err == nil {
		t.Fatal("future version must be rejected")
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ck := sampleCheckpoint()
	if err := SaveFile(path, ck); err != nil {
		t.Fatal(err)
	}
	got, fromFallback, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFallback {
		t.Fatal("primary file must load without fallback")
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatal("file round trip mismatch")
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("unexpected files in dir: %v", entries)
	}
}

func TestSaveFileRotatesLastGood(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := &Checkpoint{Model: map[string][]float32{"w": {1}}}
	second := &Checkpoint{Model: map[string][]float32{"w": {2}}}
	if err := SaveFile(path, first); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, second); err != nil {
		t.Fatal(err)
	}
	prev, _, err := LoadFile(path + PrevSuffix)
	if err != nil {
		t.Fatalf("last-good copy must exist and load: %v", err)
	}
	if prev.Model["w"][0] != 1 {
		t.Fatal("last-good copy must hold the previous checkpoint")
	}
	cur, _, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Model["w"][0] != 2 {
		t.Fatal("primary must hold the newest checkpoint")
	}
}

func TestLoadFileFallsBackWhenPrimaryCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := &Checkpoint{Model: map[string][]float32{"w": {1}}}
	second := &Checkpoint{Model: map[string][]float32{"w": {2}}}
	if err := SaveFile(path, first); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, second); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary the way a torn write would: truncate it.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, fromFallback, err := LoadFile(path)
	if err != nil {
		t.Fatalf("fallback load must succeed: %v", err)
	}
	if !fromFallback {
		t.Fatal("load must report that the fallback was used")
	}
	if got.Model["w"][0] != 1 {
		t.Fatal("fallback must return the last-good checkpoint")
	}
}

func TestLoadFileBothMissing(t *testing.T) {
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}

func TestWriteRequiresModel(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Checkpoint{}); err == nil {
		t.Fatal("checkpoint without a model section must be rejected")
	}
}

// TestProgressGroupSizeRoundTrip: the sync-group size rides at the end
// of the progress section and survives a round trip.
func TestProgressGroupSizeRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	ck.Progress.GroupSize = 4
	got, err := Read(bytes.NewReader(encode(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Progress.GroupSize != 4 {
		t.Fatalf("GroupSize = %d, want 4", got.Progress.GroupSize)
	}
}

// TestProgressLegacyDecode: progress sections written before the
// scale-out work end right after the accuracy list; they must decode
// with GroupSize 0 (which train.Fit maps to the per-batch loop's group
// of 1), not error.
func TestProgressLegacyDecode(t *testing.T) {
	p := sampleCheckpoint().Progress
	p.GroupSize = 3
	enc, err := encodeProgress(p)
	if err != nil {
		t.Fatal(err)
	}
	legacy := enc[:len(enc)-4] // strip the trailing group-size field
	got, err := decodeProgress(legacy)
	if err != nil {
		t.Fatalf("legacy progress section must decode: %v", err)
	}
	if got.GroupSize != 0 {
		t.Fatalf("legacy GroupSize = %d, want 0", got.GroupSize)
	}
	if got.Epoch != p.Epoch || got.Step != p.Step {
		t.Fatalf("legacy decode mangled fields: %+v", got)
	}
}
