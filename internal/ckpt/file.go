// Atomic, crash-safe checkpoint file I/O: temp file + fsync + rename,
// with a rotating last-good copy so a crash at ANY point — including
// mid-rename — leaves at least one loadable checkpoint on disk.
package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/telemetry"
)

var (
	mWrites       = telemetry.GetCounter("ckpt.writes")
	mBytes        = telemetry.GetCounter("ckpt.bytes")
	mRestores     = telemetry.GetCounter("ckpt.restore_total")
	mCorrupt      = telemetry.GetCounter("ckpt.corrupt_detected")
	mFallbackLoad = telemetry.GetCounter("ckpt.fallback_loads")
)

// PrevSuffix is appended to the checkpoint path for the rotated
// last-good copy kept alongside every save.
const PrevSuffix = ".prev"

// SaveFile atomically writes ck to path:
//
//  1. encode into a temp file in the SAME directory (rename must not
//     cross filesystems),
//  2. fsync the temp file so the bytes are durable before they become
//     visible,
//  3. rotate any existing checkpoint to path+".prev" (the last-good
//     copy),
//  4. rename the temp file over path,
//  5. fsync the directory so the renames themselves are durable.
//
// A crash before (4) leaves the previous checkpoint untouched at path; a
// crash between (3) and (4) leaves it at path+".prev", which LoadFile
// falls back to. At no point is a partially written file visible under
// either name.
func SaveFile(path string, ck *Checkpoint) (err error) {
	var buf bytes.Buffer
	if err := Write(&buf, ck); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ckpt: writing %s: %w", tmpName, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", tmpName, err)
	}
	// Rotate the current checkpoint to last-good before the new one
	// takes its name. Absence of a current file is fine (first save).
	if _, statErr := os.Stat(path); statErr == nil {
		if err = os.Rename(path, path+PrevSuffix); err != nil {
			return fmt.Errorf("ckpt: rotating last-good: %w", err)
		}
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: publishing %s: %w", path, err)
	}
	if d, dirErr := os.Open(dir); dirErr == nil {
		d.Sync()
		d.Close()
	}
	if telemetry.Enabled() {
		mWrites.Inc()
		mBytes.Add(int64(buf.Len()))
	}
	return nil
}

// LoadFile reads the checkpoint at path, falling back to the rotated
// last-good copy (path+".prev") when the primary is missing or fails
// integrity checks. fromFallback reports whether the fallback was used;
// the error combines both failures when neither file loads.
func LoadFile(path string) (ck *Checkpoint, fromFallback bool, err error) {
	ck, primaryErr := loadOne(path)
	if primaryErr == nil {
		mRestores.Inc()
		return ck, false, nil
	}
	if !os.IsNotExist(primaryErr) {
		mCorrupt.Inc()
	}
	ck, prevErr := loadOne(path + PrevSuffix)
	if prevErr == nil {
		mRestores.Inc()
		mFallbackLoad.Inc()
		return ck, true, nil
	}
	return nil, false, fmt.Errorf("ckpt: %s unreadable (%v); last-good %s%s unreadable (%v)",
		path, primaryErr, path, PrevSuffix, prevErr)
}

// loadOne reads and fully verifies a single checkpoint file.
func loadOne(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
