// Package ckpt implements checkpoint format v2: a framed, checksummed
// binary envelope holding everything a training run needs to survive a
// crash — model tensors, SGD momentum buffers, RNG stream identity and
// training progress — plus the atomic file I/O (see file.go) that makes
// writes crash-safe.
//
// Design goals, in order:
//
//  1. Corruption is DETECTED, never trained through. Every section and
//     every tensor carries a CRC-32C, and a whole-file CRC covers the
//     complete envelope, so a truncated, bit-flipped or zero-filled file
//     fails to decode with an explicit error instead of silently loading
//     half a model. Quantized training is particularly sensitive to
//     scale/clipping drift from corrupted weights, which is why the paper
//     stack treats a wrong load as worse than no load.
//  2. Resume is EXACT. The envelope carries optimizer momentum, the run
//     seed and the epoch/step cursor; together with the repo's
//     (seed, epoch)-keyed RNG streams this makes a resumed run
//     bit-identical to an uninterrupted one.
//  3. v1 files still load. The seed format (a bare gob of
//     {Version, Tensors}) is recognized by sniffing for the v2 magic and
//     decoded read-only into the model section.
//
// Layout (all integers little-endian):
//
//	[8]  magic "ODQCKPT2"
//	u32  version (2)
//	u32  section count
//	per section:
//	  u16  name length, name bytes
//	  u64  payload length
//	  u32  CRC-32C(payload)
//	  payload
//	u32  CRC-32C of everything above (whole-file checksum)
//
// Tensor-map payloads ("model", "optimizer") are themselves framed:
//
//	u32  tensor count
//	per tensor (sorted by name, so encoding is deterministic):
//	  u16  name length, name bytes
//	  u64  element count
//	  u32  CRC-32C(raw element bytes)
//	  f32  elements
//
// Unknown section names are skipped (their checksums still verified),
// so older readers tolerate newer writers.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Version is the current checkpoint format version.
const Version = 2

var magic = [8]byte{'O', 'D', 'Q', 'C', 'K', 'P', 'T', '2'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section names. Unknown names are skipped on read for forward
// compatibility.
const (
	SectionModel     = "model"
	SectionOptimizer = "optimizer"
	SectionRNG       = "rng"
	SectionProgress  = "progress"
)

// maxName bounds section and tensor names; maxChunk bounds single
// allocations while reading payloads so a corrupted length field on a
// truncated stream errors out instead of attempting a huge allocation.
const (
	maxName  = 1 << 12
	maxChunk = 1 << 20
)

// RNGState identifies the random streams of a run. All stochastic
// streams in this repo (batch shuffling, augmentation) are keyed by
// (Seed, epoch), so the seed plus the progress cursor IS the complete
// RNG state; no generator internals need serializing.
type RNGState struct {
	Seed int64
}

// Progress is the training cursor and per-epoch history.
type Progress struct {
	// Epoch is the number of COMPLETED epochs; resume starts at this
	// epoch index.
	Epoch int
	// Step is the number of completed optimizer steps across the run.
	Step int64
	// LR is the learning rate in effect during the last completed epoch
	// (after any schedule drops and NaN-rollback halvings).
	LR float32
	// Loss and TrainAcc mirror train.History for the completed epochs.
	Loss     []float32
	TrainAcc []float64
	// GroupSize is the number of global batches folded into each
	// optimizer step (the sync-group size of data-parallel training).
	// 0 in files written before scale-out and means 1. Deliberately the
	// ONLY scale-out field here: worldSize and rank describe the run's
	// topology, not its trajectory, and recording them would break the
	// invariant that an N-worker and an M-worker run of the same group
	// size produce byte-equal checkpoints (the elastic-resume contract).
	GroupSize int
}

// Checkpoint is the in-memory form of a v2 file. Model is always
// present; the other sections are optional (nil when absent), which is
// how model-only inference checkpoints are written.
type Checkpoint struct {
	Model     map[string][]float32
	Optimizer map[string][]float32
	RNG       *RNGState
	Progress  *Progress
}

// section is one framed (name, payload) pair.
type section struct {
	name    string
	payload []byte
}

// crcWriter tees writes through a running CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, castagnoli, p)
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU16(w io.Writer, v uint16) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }

// encodeTensorMap frames a name→values map deterministically (sorted by
// name) with a per-tensor CRC.
func encodeTensorMap(m map[string][]float32) ([]byte, error) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	if err := writeU32(&buf, uint32(len(names))); err != nil {
		return nil, err
	}
	raw := make([]byte, 0, 4096)
	for _, name := range names {
		if len(name) > maxName {
			return nil, fmt.Errorf("ckpt: tensor name %q too long", name[:32]+"...")
		}
		vals := m[name]
		raw = raw[:0]
		for _, v := range vals {
			raw = binary.LittleEndian.AppendUint32(raw, math.Float32bits(v))
		}
		if err := writeU16(&buf, uint16(len(name))); err != nil {
			return nil, err
		}
		buf.WriteString(name)
		if err := writeU64(&buf, uint64(len(vals))); err != nil {
			return nil, err
		}
		if err := writeU32(&buf, crc32.Checksum(raw, castagnoli)); err != nil {
			return nil, err
		}
		buf.Write(raw)
	}
	return buf.Bytes(), nil
}

// decodeTensorMap is the inverse of encodeTensorMap, verifying every
// per-tensor checksum.
func decodeTensorMap(b []byte) (map[string][]float32, error) {
	r := bytes.NewReader(b)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("ckpt: tensor map header: %w", err)
	}
	out := make(map[string][]float32, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("ckpt: tensor %d name length: %w", i, err)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("ckpt: tensor %d name: %w", i, err)
		}
		name := string(nameBuf)
		var elems uint64
		if err := binary.Read(r, binary.LittleEndian, &elems); err != nil {
			return nil, fmt.Errorf("ckpt: tensor %q element count: %w", name, err)
		}
		if elems*4 > uint64(r.Len()) {
			return nil, fmt.Errorf("ckpt: tensor %q claims %d elements, only %d bytes remain",
				name, elems, r.Len())
		}
		var wantCRC uint32
		if err := binary.Read(r, binary.LittleEndian, &wantCRC); err != nil {
			return nil, fmt.Errorf("ckpt: tensor %q checksum: %w", name, err)
		}
		raw := make([]byte, elems*4)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("ckpt: tensor %q data: %w", name, err)
		}
		if got := crc32.Checksum(raw, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("ckpt: tensor %q checksum mismatch (file %08x, computed %08x): checkpoint is corrupt",
				name, wantCRC, got)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("ckpt: duplicate tensor %q in checkpoint", name)
		}
		vals := make([]float32, elems)
		for j := range vals {
			vals[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
		}
		out[name] = vals
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after tensor map", r.Len())
	}
	return out, nil
}

// encodeRNG / decodeRNG frame the RNG section.
func encodeRNG(s *RNGState) []byte {
	var buf bytes.Buffer
	writeU64(&buf, uint64(s.Seed))
	return buf.Bytes()
}

func decodeRNG(b []byte) (*RNGState, error) {
	if len(b) != 8 {
		return nil, fmt.Errorf("ckpt: rng section is %d bytes, want 8", len(b))
	}
	return &RNGState{Seed: int64(binary.LittleEndian.Uint64(b))}, nil
}

// encodeProgress / decodeProgress frame the progress section.
func encodeProgress(p *Progress) ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU64(&buf, uint64(p.Epoch)); err != nil {
		return nil, err
	}
	writeU64(&buf, uint64(p.Step))
	writeU32(&buf, math.Float32bits(p.LR))
	writeU32(&buf, uint32(len(p.Loss)))
	for _, v := range p.Loss {
		writeU32(&buf, math.Float32bits(v))
	}
	writeU32(&buf, uint32(len(p.TrainAcc)))
	for _, v := range p.TrainAcc {
		writeU64(&buf, math.Float64bits(v))
	}
	// GroupSize rides at the end so pre-scale-out files (which simply
	// stop after the accuracy list) still decode; see decodeProgress.
	writeU32(&buf, uint32(p.GroupSize))
	return buf.Bytes(), nil
}

func decodeProgress(b []byte) (*Progress, error) {
	r := bytes.NewReader(b)
	var epoch, step uint64
	var lrBits, nLoss uint32
	if err := binary.Read(r, binary.LittleEndian, &epoch); err != nil {
		return nil, fmt.Errorf("ckpt: progress epoch: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
		return nil, fmt.Errorf("ckpt: progress step: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &lrBits); err != nil {
		return nil, fmt.Errorf("ckpt: progress lr: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nLoss); err != nil {
		return nil, fmt.Errorf("ckpt: progress loss count: %w", err)
	}
	if uint64(nLoss)*4 > uint64(r.Len()) {
		return nil, fmt.Errorf("ckpt: progress claims %d loss entries, only %d bytes remain", nLoss, r.Len())
	}
	p := &Progress{Epoch: int(epoch), Step: int64(step), LR: math.Float32frombits(lrBits)}
	for i := uint32(0); i < nLoss; i++ {
		var bits uint32
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("ckpt: progress loss[%d]: %w", i, err)
		}
		p.Loss = append(p.Loss, math.Float32frombits(bits))
	}
	var nAcc uint32
	if err := binary.Read(r, binary.LittleEndian, &nAcc); err != nil {
		return nil, fmt.Errorf("ckpt: progress acc count: %w", err)
	}
	if uint64(nAcc)*8 > uint64(r.Len()) {
		return nil, fmt.Errorf("ckpt: progress claims %d acc entries, only %d bytes remain", nAcc, r.Len())
	}
	for i := uint32(0); i < nAcc; i++ {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("ckpt: progress acc[%d]: %w", i, err)
		}
		p.TrainAcc = append(p.TrainAcc, math.Float64frombits(bits))
	}
	// Optional trailing field: files written before scale-out end here
	// and load with GroupSize 0 (meaning 1).
	if r.Len() > 0 {
		var gs uint32
		if err := binary.Read(r, binary.LittleEndian, &gs); err != nil {
			return nil, fmt.Errorf("ckpt: progress group size: %w", err)
		}
		p.GroupSize = int(gs)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after progress section", r.Len())
	}
	return p, nil
}

// Write serializes ck to w in format v2. The encoding is deterministic:
// the same checkpoint always produces the same bytes, which the
// kill-and-resume verification gate relies on (resumed and uninterrupted
// runs must produce bit-identical files).
func Write(w io.Writer, ck *Checkpoint) error {
	if ck.Model == nil {
		return fmt.Errorf("ckpt: checkpoint has no model section")
	}
	var sections []section
	modelPayload, err := encodeTensorMap(ck.Model)
	if err != nil {
		return err
	}
	sections = append(sections, section{SectionModel, modelPayload})
	if ck.Optimizer != nil {
		p, err := encodeTensorMap(ck.Optimizer)
		if err != nil {
			return err
		}
		sections = append(sections, section{SectionOptimizer, p})
	}
	if ck.RNG != nil {
		sections = append(sections, section{SectionRNG, encodeRNG(ck.RNG)})
	}
	if ck.Progress != nil {
		p, err := encodeProgress(ck.Progress)
		if err != nil {
			return err
		}
		sections = append(sections, section{SectionProgress, p})
	}

	cw := &crcWriter{w: w}
	if _, err := cw.Write(magic[:]); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	if err := writeU32(cw, Version); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(len(sections))); err != nil {
		return err
	}
	for _, s := range sections {
		if err := writeU16(cw, uint16(len(s.name))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, s.name); err != nil {
			return err
		}
		if err := writeU64(cw, uint64(len(s.payload))); err != nil {
			return err
		}
		if err := writeU32(cw, crc32.Checksum(s.payload, castagnoli)); err != nil {
			return err
		}
		if _, err := cw.Write(s.payload); err != nil {
			return fmt.Errorf("ckpt: writing section %q: %w", s.name, err)
		}
	}
	// Whole-file checksum over everything written so far, NOT run through
	// cw (it must not checksum itself).
	return writeU32(w, cw.crc)
}

// readPayload reads n bytes in bounded chunks so that a corrupted length
// field on a truncated stream produces a clean error instead of a giant
// allocation.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	for n > 0 {
		chunk := n
		if chunk > maxChunk {
			chunk = maxChunk
		}
		if _, err := io.CopyN(&buf, r, int64(chunk)); err != nil {
			return nil, err
		}
		n -= chunk
	}
	return buf.Bytes(), nil
}

// Read decodes a v2 checkpoint, verifying the magic, every section
// checksum and the whole-file checksum. Any mismatch — truncation, bit
// flip, zero-fill — yields an error; a nil error guarantees the returned
// checkpoint is exactly what was written.
func Read(r io.Reader) (*Checkpoint, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading magic: %w", err)
	}
	if head != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q: not a v2 checkpoint", head[:])
	}
	return readAfterMagic(r)
}

// readAfterMagic decodes the remainder of a v2 stream whose magic has
// already been consumed and verified.
func readAfterMagic(r io.Reader) (*Checkpoint, error) {
	fileCRC := crc32.Checksum(magic[:], castagnoli)
	update := func(b []byte) { fileCRC = crc32.Update(fileCRC, castagnoli, b) }

	readN := func(n int) ([]byte, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		update(b)
		return b, nil
	}

	hdr, err := readN(8)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading version: %w", err)
	}
	version := binary.LittleEndian.Uint32(hdr[:4])
	if version != Version {
		return nil, fmt.Errorf("ckpt: unsupported checkpoint version %d (this build reads v1 and v%d)", version, Version)
	}
	nSections := binary.LittleEndian.Uint32(hdr[4:])
	if nSections > 1024 {
		return nil, fmt.Errorf("ckpt: implausible section count %d: checkpoint is corrupt", nSections)
	}

	ck := &Checkpoint{}
	seen := make(map[string]bool)
	for i := uint32(0); i < nSections; i++ {
		b, err := readN(2)
		if err != nil {
			return nil, fmt.Errorf("ckpt: section %d name length: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(b)
		if int(nameLen) > maxName {
			return nil, fmt.Errorf("ckpt: section %d name length %d too large: checkpoint is corrupt", i, nameLen)
		}
		nb, err := readN(int(nameLen))
		if err != nil {
			return nil, fmt.Errorf("ckpt: section %d name: %w", i, err)
		}
		name := string(nb)
		if seen[name] {
			return nil, fmt.Errorf("ckpt: duplicate section %q", name)
		}
		seen[name] = true
		b, err = readN(12)
		if err != nil {
			return nil, fmt.Errorf("ckpt: section %q header: %w", name, err)
		}
		payloadLen := binary.LittleEndian.Uint64(b[:8])
		wantCRC := binary.LittleEndian.Uint32(b[8:])
		payload, err := readPayload(r, payloadLen)
		if err != nil {
			return nil, fmt.Errorf("ckpt: section %q payload (%d bytes): %w", name, payloadLen, err)
		}
		update(payload)
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("ckpt: section %q checksum mismatch (file %08x, computed %08x): checkpoint is corrupt",
				name, wantCRC, got)
		}
		switch name {
		case SectionModel:
			if ck.Model, err = decodeTensorMap(payload); err != nil {
				return nil, err
			}
		case SectionOptimizer:
			if ck.Optimizer, err = decodeTensorMap(payload); err != nil {
				return nil, err
			}
		case SectionRNG:
			if ck.RNG, err = decodeRNG(payload); err != nil {
				return nil, err
			}
		case SectionProgress:
			if ck.Progress, err = decodeProgress(payload); err != nil {
				return nil, err
			}
		default:
			// Unknown section from a newer writer: checksum verified,
			// content ignored.
		}
	}

	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading whole-file checksum: %w", err)
	}
	if want := binary.LittleEndian.Uint32(tail[:]); want != fileCRC {
		return nil, fmt.Errorf("ckpt: whole-file checksum mismatch (file %08x, computed %08x): checkpoint is corrupt",
			want, fileCRC)
	}
	if ck.Model == nil {
		return nil, fmt.Errorf("ckpt: checkpoint has no model section")
	}
	return ck, nil
}

// v1Checkpoint mirrors the seed gob format (nn package, format v1).
type v1Checkpoint struct {
	Version int
	Tensors map[string][]float32
}

// ReadAny decodes either format: v2 (framed, checksummed) or the legacy
// v1 bare gob, detected by sniffing the magic. v1 files carry model
// tensors only and no integrity protection beyond gob's own framing;
// they load read-only (Save always writes v2).
func ReadAny(r io.Reader) (*Checkpoint, error) {
	var head [8]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	if n == len(head) && head == magic {
		return readAfterMagic(r)
	}
	// Not v2: reassemble the stream and try the v1 gob format.
	full := io.MultiReader(bytes.NewReader(head[:n]), r)
	var v1 v1Checkpoint
	if err := gob.NewDecoder(full).Decode(&v1); err != nil {
		return nil, fmt.Errorf("ckpt: not a v2 checkpoint and v1 decode failed: %w", err)
	}
	if v1.Version != 1 {
		return nil, fmt.Errorf("ckpt: unsupported v1-envelope version %d", v1.Version)
	}
	if v1.Tensors == nil {
		return nil, fmt.Errorf("ckpt: v1 checkpoint has no tensors")
	}
	return &Checkpoint{Model: v1.Tensors}, nil
}
