// Elastic membership: the self-healing variant of the TCP join.
//
// The classic join (tcp.go) forms one fixed-rank group and any later
// transport failure is fatal to the whole fleet. The elastic flavor
// keeps the coordinator's listener open for the life of the run and
// adds a membership epoch: when the failure detector (heartbeat
// deadlines, reduce.go) declares a peer dead, every survivor abandons
// the in-flight step, the coordinator re-runs the join handshake at
// whatever world size shows up — assigning fresh ranks in arrival
// order — and training resumes from the last durable checkpoint.
// Because the training trajectory depends only on the sync-group size
// (which travels in the checkpoint), the post-regroup run is
// byte-identical to a fresh run at the surviving worker count.
//
// Failure-model boundaries, on purpose:
//
//   - The coordinator (rank 0) is the single point of failure: it owns
//     the listener and the checkpoint writes. Workers that lose it
//     retry their rejoin until the window closes, then exit.
//   - Only transport-level failures (broken links, expired liveness
//     deadlines, abort frames) are membership events. Protocol
//     violations — desynchronized steps, corrupt payloads that pass the
//     CRC, mismatched architectures — stay fatal: regrouping cannot fix
//     a logic bug, and retrying it would mask one.
//   - A false-positive death (live peer declared dead, e.g. a network
//     partition) costs that worker: survivors regroup without it and
//     its late rejoin is rejected as a stale epoch. Training continues
//     correctly at the smaller world; capacity, not correctness, is
//     what degrades.
package dist

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
)

var (
	mPeerFailures = telemetry.GetCounter("dist.peer_failures")
	mRegroups     = telemetry.GetCounter("dist.regroups")
)

// PeerLostError marks a reduce failure as a MEMBERSHIP event — the peer
// (or the path to it) is gone — rather than a protocol violation.
// train.FitElastic regroups on it; everything else stays fatal.
type PeerLostError struct {
	// Rank is the peer declared lost (as ranked in the failed epoch).
	Rank int
	// Err is the underlying transport failure.
	Err error
}

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("dist: peer rank %d lost: %v", e.Rank, e.Err)
}

func (e *PeerLostError) Unwrap() error { return e.Err }

// IsPeerLost reports whether err represents recoverable peer loss.
func IsPeerLost(err error) bool {
	var pl *PeerLostError
	return errors.As(err, &pl)
}

// Membership hands out group incarnations: Join blocks until a group
// forms and each subsequent Join forms the next epoch (the regroup).
// Implemented by ElasticCoordinator (rank 0) and ElasticWorker.
type Membership interface {
	Join() (*Group, error)
	Close() error
}

// ElasticOptions tunes the self-healing membership layer. Zero values
// take the stated defaults.
type ElasticOptions struct {
	// JoinTimeout bounds the initial fleet formation (default 60s).
	JoinTimeout time.Duration
	// RegroupTimeout bounds how long a regroup waits for survivors to
	// rejoin, and how long a survivor keeps retrying its rejoin
	// (default 15s).
	RegroupTimeout time.Duration
	// HeartbeatInterval is the liveness beacon period (default 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the failure detector's deadline: a link with no
	// frames for this long is declared dead. Must comfortably exceed
	// HeartbeatInterval and the largest frame's transfer time
	// (default 5s).
	HeartbeatTimeout time.Duration
	// MaxRegroups caps membership churn: the run fails rather than
	// regroup a (default 8th) time, bounding a crash-looping fleet.
	MaxRegroups int
}

func (o ElasticOptions) withDefaults() ElasticOptions {
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 60 * time.Second
	}
	if o.RegroupTimeout <= 0 {
		o.RegroupTimeout = 15 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.MaxRegroups <= 0 {
		o.MaxRegroups = 8
	}
	return o
}

// ElasticCoordinator is rank 0's membership handle: it keeps the join
// listener open for the whole run so survivors can rejoin after a
// failure.
type ElasticCoordinator struct {
	ln    net.Listener
	world int // configured initial world
	opts  ElasticOptions

	runID    uint64
	epoch    uint64 // current membership epoch (0 = not yet formed)
	curWorld int    // world of the current epoch
	regroups int
	g        *Group
	joining  atomic.Bool
}

// ElasticListen binds the coordinator address for an elastic run of the
// given initial world size. The listener stays open across regroups;
// Close it when the run ends.
func ElasticListen(addr string, world int, opts ElasticOptions) (*ElasticCoordinator, error) {
	if world < 1 {
		return nil, fmt.Errorf("dist: elastic world size %d, want >= 1", world)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: elastic coordinator listen: %w", err)
	}
	return &ElasticCoordinator{ln: ln, world: world, opts: opts.withDefaults(), runID: telemetry.EnsureTraceID()}, nil
}

// Addr returns the bound listen address.
func (c *ElasticCoordinator) Addr() string { return c.ln.Addr().String() }

// Close tears the membership down: current group aborted, listener
// closed.
func (c *ElasticCoordinator) Close() error {
	if c.g != nil {
		c.g.Abort("coordinator shutting down")
		c.g = nil
	}
	return c.ln.Close()
}

// Join forms the next membership epoch and returns rank 0's group: the
// initial fleet on the first call, a regroup of the survivors on every
// later one. Regroup-during-regroup is rejected — membership changes
// are serialized by construction, a concurrent second Join is a caller
// bug, not a queueable request.
func (c *ElasticCoordinator) Join() (*Group, error) {
	if !c.joining.CompareAndSwap(false, true) {
		return nil, errors.New("dist: regroup already in progress (concurrent Join on the elastic coordinator)")
	}
	defer c.joining.Store(false)
	if c.g != nil {
		// Abandon the failed epoch: the abort unblocks every survivor
		// still parked in the old protocol so it can come rejoin.
		c.g.Abort("membership epoch abandoned, rejoin")
		c.g = nil
	}
	if c.epoch == 0 {
		return c.form()
	}
	return c.regroup()
}

// accept takes one pending connection and reads its hello under the
// given deadline. Transport-level failures on the PENDING conn (dial
// abandoned, half-open socket) return err == nil with a nil conn: the
// membership loop drops it and keeps collecting.
func (c *ElasticCoordinator) accept(deadline time.Time) (Conn, hello, error) {
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline) //nolint:errcheck // best-effort timeout
	}
	raw, err := c.ln.Accept()
	if err != nil {
		return nil, hello{}, err
	}
	raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
	conn := NewStreamConn(raw)
	h, err := recvHello(conn)
	if err != nil {
		// A broken pending conn is that worker's problem (it will retry);
		// the collection window goes on.
		conn.Close()
		return nil, hello{}, nil
	}
	raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
	return conn, h, nil
}

// reject answers a hello that cannot join this epoch with an abort
// frame carrying the reason, then drops the conn.
func (c *ElasticCoordinator) reject(conn Conn, reason string) {
	payload := make([]byte, 8, 8+len(reason))
	for i := range payload {
		payload[i] = 0
	}
	payload = append(payload, reason...)
	conn.Send(FrameAbort, payload) //nolint:errcheck // best-effort courtesy
	conn.Close()
}

// form gathers the initial fleet: world-1 fresh joiners, ranks assigned
// in arrival order.
func (c *ElasticCoordinator) form() (*Group, error) {
	deadline := time.Now().Add(c.opts.JoinTimeout)
	var conns []Conn
	cleanup := func() {
		for _, conn := range conns {
			conn.Close()
		}
	}
	for len(conns) < c.world-1 {
		conn, h, err := c.accept(deadline)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("dist: %d of %d workers joined before error: %w", len(conns), c.world-1, err)
		}
		if conn == nil {
			continue
		}
		if h.epoch != 0 {
			c.reject(conn, fmt.Sprintf("membership epoch %d unknown, this run has not formed yet", h.epoch))
			continue
		}
		if h.world != 0 && int(h.world) != c.world {
			cleanup()
			conn.Close()
			return nil, fmt.Errorf("dist: worker configured for world size %d, coordinator for %d", h.world, c.world)
		}
		conns = append(conns, conn)
	}
	return c.seal(conns)
}

// regroup collects the survivors of a failed epoch. At most
// prevWorld-2 non-root survivors can exist (at least one peer died, or
// we would not be here), so collection stops early once they have all
// rejoined; otherwise the window closes at RegroupTimeout. A two-member
// group keeps a short grace window instead, so a survivor of a
// false-positive detection still has a chance to make the next epoch.
func (c *ElasticCoordinator) regroup() (*Group, error) {
	if c.regroups >= c.opts.MaxRegroups {
		return nil, fmt.Errorf("dist: %d regroups exhausted the membership budget (MaxRegroups=%d): fleet is crash-looping",
			c.regroups, c.opts.MaxRegroups)
	}
	c.regroups++
	prevEpoch := c.epoch
	maxSurvivors := c.curWorld - 2
	window := c.opts.RegroupTimeout
	if maxSurvivors <= 0 {
		// Nobody CAN rejoin unless the detection was a false positive;
		// give that one case a brief grace window, then continue solo.
		maxSurvivors = 1
		if grace := time.Second; window > grace {
			window = grace
		}
	}
	deadline := time.Now().Add(window)
	olog.Info("regrouping", "epoch", prevEpoch+1, "max_survivors", maxSurvivors, "window", window)
	var conns []Conn
	for len(conns) < maxSurvivors {
		conn, h, err := c.accept(deadline)
		if err != nil {
			// Window closed: whoever rejoined is the new fleet.
			break
		}
		if conn == nil {
			continue
		}
		if h.epoch != prevEpoch {
			// Stale epoch: a survivor of an EARLIER incarnation that missed
			// a regroup, or a fresh joiner to a running fleet. Both are
			// rejected — the one membership transition in flight is the
			// failed-epoch survivors' regroup, nothing else.
			c.reject(conn, fmt.Sprintf("stale membership epoch %d, current is %d", h.epoch, prevEpoch))
			continue
		}
		conns = append(conns, conn)
	}
	g, err := c.seal(conns)
	if err != nil {
		return nil, err
	}
	mRegroups.Inc()
	olog.Info("regrouped", "epoch", c.epoch, "world", c.curWorld, "regroups", c.regroups)
	return g, nil
}

// seal turns the collected conns into the next epoch's group: ranks
// assigned in arrival order, welcomes sent, liveness armed.
func (c *ElasticCoordinator) seal(conns []Conn) (*Group, error) {
	c.epoch++
	world := len(conns) + 1
	c.curWorld = world
	g := &Group{rank: 0, world: world, traceID: c.runID, epoch: c.epoch, conns: make([]Conn, world)}
	for i, conn := range conns {
		rank := i + 1
		w := appendWelcome(nil, welcome{runID: c.runID, rank: uint32(rank), world: uint32(world), epoch: c.epoch})
		// Best-effort: a worker that died between hello and welcome fails
		// the first reduce of the epoch, which triggers the next regroup.
		conn.Send(FrameWelcome, w) //nolint:errcheck // see above
		g.conns[rank] = conn
	}
	g.startLiveness(c.opts.HeartbeatInterval, c.opts.HeartbeatTimeout)
	c.g = g
	return g, nil
}

// ElasticWorker is a non-root member's membership handle: Join dials
// the coordinator with bounded, jittered retries (launch order must not
// matter) and, after a failure, rejoins the next epoch.
type ElasticWorker struct {
	addr  string
	world int // expected initial world (advisory; the welcome is authoritative)
	opts  ElasticOptions

	epoch   uint64 // last epoch this worker was welcomed into
	rejoins int
	g       *Group
}

// NewElasticWorker prepares a worker-side membership handle for the
// coordinator at addr.
func NewElasticWorker(addr string, world int, opts ElasticOptions) *ElasticWorker {
	return &ElasticWorker{addr: addr, world: world, opts: opts.withDefaults()}
}

// Close aborts the current group, if any.
func (w *ElasticWorker) Close() error {
	if w.g != nil {
		w.g.Abort("worker shutting down")
		w.g = nil
	}
	return nil
}

// Join connects to the coordinator and becomes a member of the next
// epoch: the initial formation on the first call (announcing the
// expected world), a rejoin on later ones (announcing the lost epoch;
// the coordinator decides the new world). Dial and handshake failures
// retry with jittered backoff until the window closes.
func (w *ElasticWorker) Join() (*Group, error) {
	if w.g != nil {
		w.g.Abort("rejoining next membership epoch")
		w.g = nil
	}
	window := w.opts.JoinTimeout
	announceWorld := uint32(w.world)
	if w.epoch > 0 {
		if w.rejoins >= w.opts.MaxRegroups {
			return nil, fmt.Errorf("dist: %d rejoins exhausted the membership budget (MaxRegroups=%d)", w.rejoins, w.opts.MaxRegroups)
		}
		w.rejoins++
		// A rejoin must outlast the coordinator's own failure detection
		// (it may notice the death a full heartbeat timeout after us)
		// plus its collection window.
		window = w.opts.RegroupTimeout + w.opts.HeartbeatTimeout
		announceWorld = 0 // survivors take whatever world forms
	}
	deadline := time.Now().Add(window)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if time.Until(deadline) <= 0 {
			if lastErr == nil {
				lastErr = errors.New("join window closed")
			}
			return nil, fmt.Errorf("dist: worker could not join coordinator %s: %w", w.addr, lastErr)
		}
		g, permanent, err := w.attempt(announceWorld, deadline)
		if err == nil {
			w.g = g
			w.epoch = g.Epoch()
			return g, nil
		}
		if permanent {
			return nil, err
		}
		lastErr = err
		wait := dialBackoff(attempt, 25*time.Millisecond, 500*time.Millisecond)
		if remain := time.Until(deadline); wait > remain {
			wait = remain
		}
		time.Sleep(wait)
	}
}

// attempt runs one dial + handshake. permanent marks rejections that no
// retry can fix (stale epoch, protocol mismatch via abort frame).
func (w *ElasticWorker) attempt(announceWorld uint32, deadline time.Time) (g *Group, permanent bool, err error) {
	raw, err := net.DialTimeout("tcp", w.addr, time.Until(deadline))
	if err != nil {
		return nil, false, err
	}
	conn := NewStreamConn(raw)
	h := appendHello(nil, hello{
		proto: protoVersion,
		world: announceWorld,
		rank:  rankAssign,
		runID: telemetry.CurrentIdentity().TraceID,
		epoch: w.epoch,
	})
	if err := conn.Send(FrameHello, h); err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("sending join hello: %w", err)
	}
	raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
	t, payload, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("waiting for join welcome: %w", err)
	}
	switch t {
	case FrameAbort:
		conn.Close()
		reason := "(no reason)"
		if len(payload) > 8 {
			reason = string(payload[8:])
		}
		return nil, true, fmt.Errorf("dist: coordinator rejected the join: %s", reason)
	case FrameWelcome:
	default:
		conn.Close()
		return nil, false, fmt.Errorf("got %s frame while waiting for the join welcome", t)
	}
	wl, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, true, err
	}
	raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
	telemetry.SetTraceID(wl.runID)
	conns := make([]Conn, wl.world)
	conns[0] = conn
	g = &Group{rank: int(wl.rank), world: int(wl.world), traceID: wl.runID, epoch: wl.epoch, conns: conns}
	g.startLiveness(w.opts.HeartbeatInterval, w.opts.HeartbeatTimeout)
	return g, false, nil
}
