package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// refFold is the canonical result the reducer must match bit-for-bit:
// a left fold of the good per-batch gradients in batch-index order.
func refFold(grads [][]float32, bad []bool, n int) []float32 {
	sum := make([]float32, n)
	first := true
	for j := range grads {
		if bad != nil && bad[j] {
			continue
		}
		if first {
			copy(sum, grads[j])
			first = false
			continue
		}
		for i, g := range grads[j] {
			sum[i] += g
		}
	}
	return sum
}

func randGrad(rng *rand.Rand, n int) []float32 {
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	return g
}

// runReduce fans a group of per-batch gradients out over world loopback
// workers (index j owned by rank j%world), runs the reduce on every rank
// concurrently with jittered start times, and returns each rank's sum
// and metas.
func runReduce(t *testing.T, world, groupSize, gradLen int, grads [][]float32, bad []bool,
	jitter bool) ([][]float32, [][]BatchGrad) {
	t.Helper()
	groups, err := Loopback(world)
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	sums := make([][]float32, world)
	metas := make([][]BatchGrad, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			red := NewReducer(groups[r])
			defer red.Close()
			if jitter {
				time.Sleep(time.Duration(r*3) * time.Millisecond)
			}
			var local []BatchGrad
			for j := r; j < groupSize; j += world {
				bg := BatchGrad{Index: j, Loss: float32(j), Correct: int32(j), Seen: 4,
					Stats: []float32{float32(j), -float32(j)}}
				if bad != nil && bad[j] {
					bg.Bad = true
				} else {
					bg.Grad = grads[j]
				}
				local = append(local, bg)
			}
			sums[r] = make([]float32, gradLen)
			metas[r], errs[r] = red.Reduce(0, groupSize, local, sums[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: Reduce: %v", r, err)
		}
	}
	return sums, metas
}

func f32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestReduceBitIdenticalAcrossWorlds checks the core determinism claim:
// for a fixed group of batches, the reduced gradient is bit-identical
// for every world size (including the transportless Local reducer) and
// on every rank, regardless of start-time jitter.
func TestReduceBitIdenticalAcrossWorlds(t *testing.T) {
	const groupSize, gradLen = 7, 513
	rng := rand.New(rand.NewSource(42))
	grads := make([][]float32, groupSize)
	for j := range grads {
		grads[j] = randGrad(rng, gradLen)
	}
	want := refFold(grads, nil, gradLen)

	// Local reducer (world 1).
	localSum := make([]float32, gradLen)
	var local []BatchGrad
	for j := 0; j < groupSize; j++ {
		local = append(local, BatchGrad{Index: j, Grad: grads[j], Seen: 4})
	}
	if _, err := (Local{}).Reduce(0, groupSize, local, localSum); err != nil {
		t.Fatalf("Local.Reduce: %v", err)
	}
	if !f32Equal(localSum, want) {
		t.Fatal("Local reduce differs from the reference fold")
	}

	for _, world := range []int{2, 3, 4, 8} {
		sums, metas := runReduce(t, world, groupSize, gradLen, grads, nil, true)
		for r := range sums {
			if !f32Equal(sums[r], want) {
				t.Fatalf("world %d rank %d: sum differs from reference fold", world, r)
			}
			if len(metas[r]) != groupSize {
				t.Fatalf("world %d rank %d: %d metas, want %d", world, r, len(metas[r]), groupSize)
			}
			for j, m := range metas[r] {
				if m.Index != j || m.Loss != float32(j) || m.Correct != int32(j) || m.Seen != 4 {
					t.Fatalf("world %d rank %d: meta %d = %+v", world, r, j, m)
				}
				if len(m.Stats) != 2 || m.Stats[0] != float32(j) || m.Stats[1] != -float32(j) {
					t.Fatalf("world %d rank %d: meta %d stats %v", world, r, j, m.Stats)
				}
				if m.Grad != nil {
					t.Fatalf("world %d rank %d: meta %d carries a gradient", world, r, j)
				}
			}
		}
	}
}

// TestReduceWithBadBatches: Bad contributions are excluded from the fold
// but their metadata (and Bad flag) reaches every rank.
func TestReduceWithBadBatches(t *testing.T) {
	const groupSize, gradLen = 5, 64
	rng := rand.New(rand.NewSource(7))
	grads := make([][]float32, groupSize)
	for j := range grads {
		grads[j] = randGrad(rng, gradLen)
	}
	bad := []bool{false, true, false, true, false}
	want := refFold(grads, bad, gradLen)
	sums, metas := runReduce(t, 3, groupSize, gradLen, grads, bad, false)
	for r := range sums {
		if !f32Equal(sums[r], want) {
			t.Fatalf("rank %d: sum with bad batches differs from reference", r)
		}
		for j, m := range metas[r] {
			if m.Bad != bad[j] {
				t.Fatalf("rank %d: meta %d bad=%v, want %v", r, j, m.Bad, bad[j])
			}
		}
	}
}

// TestReduceAllBad: a fully-poisoned group folds to a zero gradient.
func TestReduceAllBad(t *testing.T) {
	sums, _ := runReduce(t, 2, 3, 16, make([][]float32, 3), []bool{true, true, true}, false)
	for r := range sums {
		for i, v := range sums[r] {
			if v != 0 {
				t.Fatalf("rank %d: all-bad sum[%d] = %v, want 0", r, i, v)
			}
		}
	}
}

// reduceErr runs a 2-worker reduce where the non-root rank sends the
// given contributions, returning the root's error.
func reduceErr(t *testing.T, groupSize int, rootLocal, peerLocal []BatchGrad) error {
	t.Helper()
	groups, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		red := NewReducer(groups[1])
		defer red.Close()
		sum := make([]float32, 4)
		red.Reduce(0, groupSize, peerLocal, sum) //nolint:errcheck // root's error is under test
	}()
	root := NewReducer(groups[0])
	defer root.Close()
	sum := make([]float32, 4)
	_, rootErr := root.Reduce(0, groupSize, rootLocal, sum)
	wg.Wait()
	return rootErr
}

func TestReduceValidation(t *testing.T) {
	g := []float32{1, 2, 3, 4}
	cases := []struct {
		name      string
		groupSize int
		root      []BatchGrad
		peer      []BatchGrad
	}{
		{"missing contribution", 4,
			[]BatchGrad{{Index: 0, Grad: g}, {Index: 2, Grad: g}},
			[]BatchGrad{{Index: 1, Grad: g}}}, // batch 3 never sent
		{"foreign index", 2,
			[]BatchGrad{{Index: 0, Grad: g}},
			[]BatchGrad{{Index: 0, Grad: g}}}, // peer claims root's batch
		{"out of range", 2,
			[]BatchGrad{{Index: 0, Grad: g}},
			[]BatchGrad{{Index: 5, Grad: g}}},
		{"duplicate", 4,
			[]BatchGrad{{Index: 0, Grad: g}, {Index: 2, Grad: g}},
			[]BatchGrad{{Index: 1, Grad: g}, {Index: 1, Grad: g}, {Index: 3, Grad: g}}},
		{"gradient length mismatch", 2,
			[]BatchGrad{{Index: 0, Grad: g}},
			[]BatchGrad{{Index: 1, Grad: []float32{1, 2}}}},
	}
	for _, tc := range cases {
		if err := reduceErr(t, tc.groupSize, tc.root, tc.peer); err == nil {
			t.Errorf("%s: reduce completed cleanly, want loud failure", tc.name)
		}
	}
}

// TestLocalValidation mirrors the strictness of the transport path.
func TestLocalValidation(t *testing.T) {
	sum := make([]float32, 4)
	g := []float32{1, 2, 3, 4}
	if _, err := (Local{}).Reduce(0, 2, []BatchGrad{{Index: 0, Grad: g}}, sum); err == nil {
		t.Error("missing batch folded cleanly")
	}
	if _, err := (Local{}).Reduce(0, 1, []BatchGrad{{Index: 0, Grad: g}, {Index: 0, Grad: g}}, sum); err == nil {
		t.Error("duplicate batch folded cleanly")
	}
	if _, err := (Local{}).Reduce(0, 1, []BatchGrad{{Index: 0, Grad: []float32{1}}}, sum); err == nil {
		t.Error("length mismatch folded cleanly")
	}
}

// TestReduceStepMismatch: a desynchronized worker (wrong step id) must
// abort the reduce, not silently mix steps.
func TestReduceStepMismatch(t *testing.T) {
	groups, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{1, 2, 3, 4}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		red := NewReducer(groups[1])
		defer red.Close()
		sum := make([]float32, 4)
		red.Reduce(9, 2, []BatchGrad{{Index: 1, Grad: g}}, sum) //nolint:errcheck // desync under test
	}()
	root := NewReducer(groups[0])
	defer root.Close()
	sum := make([]float32, 4)
	_, rootErr := root.Reduce(0, 2, []BatchGrad{{Index: 0, Grad: g}}, sum)
	wg.Wait()
	if rootErr == nil {
		t.Fatal("step-desynchronized reduce completed cleanly")
	}
}

// TestReduceMultiStep reuses one group for several steps (buffer and
// sequence-number reuse across Reduce calls).
func TestReduceMultiStep(t *testing.T) {
	const gradLen = 33
	rng := rand.New(rand.NewSource(3))
	groups, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	steps := 5
	gradsPerStep := make([][][]float32, steps)
	for s := range gradsPerStep {
		gradsPerStep[s] = [][]float32{randGrad(rng, gradLen), randGrad(rng, gradLen)}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		red := NewReducer(groups[1])
		defer red.Close()
		for s := 0; s < steps; s++ {
			sum := make([]float32, gradLen)
			red.Reduce(int64(s), 2, []BatchGrad{{Index: 1, Grad: gradsPerStep[s][1], Seen: 1}}, sum) //nolint:errcheck
		}
	}()
	root := NewReducer(groups[0])
	defer root.Close()
	for s := 0; s < steps; s++ {
		sum := make([]float32, gradLen)
		if _, err := root.Reduce(int64(s), 2, []BatchGrad{{Index: 0, Grad: gradsPerStep[s][0], Seen: 1}}, sum); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if want := refFold(gradsPerStep[s], nil, gradLen); !f32Equal(sum, want) {
			t.Fatalf("step %d: sum differs from reference", s)
		}
	}
	wg.Wait()
}
