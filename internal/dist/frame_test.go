package dist

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/faultinject"
)

func mustFrame(t *testing.T, ft FrameType, seq uint64, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ft, seq, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xA5, 0x00, 0xFF}, 100)}
	for i, p := range payloads {
		raw := mustFrame(t, FrameGrad, uint64(i), p)
		ft, got, err := ReadFrame(bytes.NewReader(raw), uint64(i))
		if err != nil {
			t.Fatalf("payload %d: ReadFrame: %v", i, err)
		}
		if ft != FrameGrad {
			t.Fatalf("payload %d: type %v, want grad", i, ft)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload %d: roundtrip mismatch", i)
		}
	}
}

// TestFrameTruncationDetected cuts a frame at every possible byte
// boundary; every prefix must fail to decode (except length 0, which is
// a clean EOF — "peer closed between frames").
func TestFrameTruncationDetected(t *testing.T) {
	raw := mustFrame(t, FrameGrad, 7, []byte("gradient payload bytes"))
	for n := 0; n < len(raw); n++ {
		_, _, err := ReadFrame(bytes.NewReader(faultinject.Truncate(raw, n)), 7)
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: got %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(raw))
		}
		if err == io.EOF {
			t.Fatalf("truncation to %d bytes reported a clean EOF", n)
		}
	}
}

// TestFrameBitFlipDetected flips every bit of a frame. The payload is
// protected by CRC-32C, the framing by magic/seq/length checks; the only
// field a flip can change without tripping a check is the type byte, so
// any successful decode must differ from what was sent — the protocol
// layer rejects unexpected types, so nothing corrupt gets through
// silently.
func TestFrameBitFlipDetected(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	raw := mustFrame(t, FrameGrad, 3, payload)
	for bit := 0; bit < len(raw)*8; bit++ {
		ft, got, err := ReadFrame(bytes.NewReader(faultinject.BitFlip(raw, bit)), 3)
		if err != nil {
			continue // detected
		}
		if ft == FrameGrad && bytes.Equal(got, payload) {
			t.Fatalf("bit flip at %d decoded to the original frame", bit)
		}
	}
}

// TestFrameDuplicationDetected replays a frame: the second copy carries
// an already-consumed sequence number and must be rejected.
func TestFrameDuplicationDetected(t *testing.T) {
	raw := mustFrame(t, FrameGrad, 0, []byte("dup me"))
	stream := append(append([]byte(nil), raw...), raw...)
	r := bytes.NewReader(stream)
	if _, _, err := ReadFrame(r, 0); err != nil {
		t.Fatalf("first copy: %v", err)
	}
	if _, _, err := ReadFrame(r, 1); err == nil {
		t.Fatal("duplicated frame decoded cleanly as sequence 1")
	}
}

// TestFrameReorderDetected swaps two frames in the byte stream; the
// first read sees sequence 1 where 0 was expected.
func TestFrameReorderDetected(t *testing.T) {
	f0 := mustFrame(t, FrameGrad, 0, []byte("first"))
	f1 := mustFrame(t, FrameGradEnd, 1, []byte("second"))
	stream := append(append([]byte(nil), f1...), f0...)
	if _, _, err := ReadFrame(bytes.NewReader(stream), 0); err == nil {
		t.Fatal("reordered frame decoded cleanly")
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	raw := mustFrame(t, FrameGrad, 0, []byte("x"))
	// Corrupt the length field (bytes 13..16) to a huge value.
	raw[13], raw[14], raw[15], raw[16] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := ReadFrame(bytes.NewReader(raw), 0); err == nil {
		t.Fatal("oversized length field decoded cleanly")
	}
}
