package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/telemetry"
)

var (
	mReduces      = telemetry.GetCounter("dist.reduces")
	mReduceErrors = telemetry.GetCounter("dist.reduce_errors")
	mGradBatches  = telemetry.GetCounter("dist.grad_batches")
)

// BatchGrad is one batch's contribution to a group reduce: the gradient
// of that batch alone (accumulated from zeroed buffers), its training
// metrics, and any deferred batch-norm statistics the rank computed
// while running it. Index is the batch's position inside the sync group
// — the fold key that makes the reduce deterministic.
type BatchGrad struct {
	// Index is the group-local batch index in [0, groupSize).
	Index int
	// Loss is the batch's mean loss; Correct/Seen are its top-1 counts.
	Loss    float32
	Correct int32
	Seen    int32
	// Bad marks a batch whose loss or gradient came out NaN/Inf. A bad
	// contribution ships metadata only (no gradient); every rank applies
	// the configured NaN policy to it identically.
	Bad bool
	// Grad is the flattened parameter gradient (nil when Bad, and nil in
	// the metadata view Reduce returns).
	Grad []float32
	// Stats is the flattened deferred batch-norm (mean, var) pairs this
	// batch produced; every rank replays them in batch order.
	Stats []float32
}

// GradReducer is the train.Fit hook for data-parallel gradient exchange.
// One Reduce call per optimizer step: every rank passes the isolated
// per-batch gradients of its shard, and Reduce leaves the deterministic
// group-wide sum in sum on every rank, returning the metadata (metrics,
// Bad flags, batch-norm stats — Grad nil) of ALL groupSize batches in
// ascending Index order so every rank replays identical bookkeeping.
type GradReducer interface {
	// Rank returns this worker's rank in [0, World).
	Rank() int
	// World returns the number of cooperating workers.
	World() int
	// Reduce folds the group's contributions. step is the 0-based
	// optimizer step the group belongs to, cross-checked against every
	// peer so a desynchronized worker fails loudly.
	Reduce(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error)
	// Close releases transport resources.
	Close() error
}

// slotByIndex validates contributions and places them into a dense
// groupSize-slot table. Strict by design: an out-of-range, duplicate or
// foreign-rank index means the sharding contract was violated and the
// fold result could not be trusted.
func slotByIndex(byIdx []*BatchGrad, groupSize, world, owner int, contribs []BatchGrad) error {
	for i := range contribs {
		b := &contribs[i]
		if b.Index < 0 || b.Index >= groupSize {
			return fmt.Errorf("dist: contribution index %d outside group of %d", b.Index, groupSize)
		}
		if b.Index%world != owner {
			return fmt.Errorf("dist: rank %d contributed batch %d, which rank %d owns (index %% world)",
				owner, b.Index, b.Index%world)
		}
		if byIdx[b.Index] != nil {
			return fmt.Errorf("dist: duplicate contribution for batch %d", b.Index)
		}
		byIdx[b.Index] = b
	}
	return nil
}

// foldOrdered produces the canonical group gradient: a left fold of the
// good per-batch gradients in ascending batch-index order. The first
// good gradient is COPIED into sum (not added to zero — that would flip
// -0 to +0) and the rest are added elementwise, which is bit-identical
// to sequentially accumulating those batches in one process. It returns
// the metadata view of every slot in index order.
func foldOrdered(byIdx []*BatchGrad, world int, sum []float32) ([]BatchGrad, error) {
	metas := make([]BatchGrad, 0, len(byIdx))
	first := true
	for j, b := range byIdx {
		if b == nil {
			return nil, fmt.Errorf("dist: no contribution for batch %d (rank %d never sent it)", j, j%world)
		}
		metas = append(metas, BatchGrad{
			Index: b.Index, Loss: b.Loss, Correct: b.Correct, Seen: b.Seen,
			Bad: b.Bad, Stats: b.Stats,
		})
		if b.Bad {
			continue
		}
		if len(b.Grad) != len(sum) {
			return nil, fmt.Errorf("dist: batch %d gradient has %d values, model has %d (mixed architectures in one group?)",
				j, len(b.Grad), len(sum))
		}
		if first {
			copy(sum, b.Grad)
			first = false
			continue
		}
		for i, g := range b.Grad {
			sum[i] += g
		}
	}
	if first {
		// Every batch was bad: the step is a no-op; hand back a zero
		// gradient so callers need no special case.
		for i := range sum {
			sum[i] = 0
		}
	}
	return metas, nil
}

// Local is the transportless reducer: world 1, folding the worker's own
// contributions with the identical code path the distributed fold uses,
// so a single-worker group run is bit-identical to any multi-worker run.
type Local struct{}

// Rank implements GradReducer.
func (Local) Rank() int { return 0 }

// World implements GradReducer.
func (Local) World() int { return 1 }

// Close implements GradReducer.
func (Local) Close() error { return nil }

// Reduce implements GradReducer.
func (Local) Reduce(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error) {
	byIdx := make([]*BatchGrad, groupSize)
	if err := slotByIndex(byIdx, groupSize, 1, 0, local); err != nil {
		return nil, err
	}
	return foldOrdered(byIdx, 1, sum)
}

// Reducer is the transport-backed deterministic reducer over a star
// topology: every rank sends its shard's per-batch gradients to the
// root, the root folds them in batch-index order — never arrival order —
// and broadcasts the sum plus all batch metadata, so every rank steps
// its optimizer with bit-identical inputs. Not safe for concurrent
// Reduce calls (training is step-synchronous by construction).
type Reducer struct {
	g        *Group
	enc      []byte    // reusable encode buffer
	lastSnap time.Time // last metrics snapshot piggybacked on a grad-end
}

// snapInterval throttles the metrics snapshot a non-root rank
// piggybacks on its grad-end frames, bounding the fleet-metrics cost to
// one JSON marshal per second per worker.
const snapInterval = time.Second

// NewReducer builds a reducer over an established group.
func NewReducer(g *Group) *Reducer { return &Reducer{g: g} }

// Rank implements GradReducer.
func (r *Reducer) Rank() int { return r.g.Rank() }

// World implements GradReducer.
func (r *Reducer) World() int { return r.g.World() }

// Close implements GradReducer.
func (r *Reducer) Close() error { return r.g.Close() }

// Reduce implements GradReducer.
func (r *Reducer) Reduce(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error) {
	sp := telemetry.StartSpan("dist.reduce")
	defer sp.End()
	metas, err := r.reduce(step, groupSize, local, sum)
	if err != nil {
		mReduceErrors.Inc()
		// A failed reduce ends this group incarnation: stream sequence
		// numbers and step boundaries are no longer aligned across the
		// group. An elastic group abandons the epoch on purpose — the
		// abort frame unblocks every peer parked mid-protocol so it can
		// rejoin the next epoch; a classic group just tears the transport
		// down so blocked peers fail loudly instead of waiting forever.
		if r.g.hbTimeout > 0 {
			r.g.Abort(err.Error())
		} else {
			r.g.Close()
		}
		return nil, err
	}
	if telemetry.Enabled() {
		mReduces.Inc()
		mGradBatches.Add(int64(len(local)))
	}
	return metas, nil
}

func (r *Reducer) reduce(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error) {
	if r.g.World() == 1 {
		return Local{}.Reduce(step, groupSize, local, sum)
	}
	if r.g.Rank() == 0 {
		return r.reduceRoot(step, groupSize, local, sum)
	}
	return r.reduceWorker(step, groupSize, local, sum)
}

// peerLost classifies a transport failure on the link to peer: in an
// elastic group (failure detector armed) it becomes a recoverable
// membership event the trainer regroups on; in a classic group it stays
// fatal. Protocol violations never come through here — regrouping
// cannot fix a logic bug and retrying would only mask one.
func (r *Reducer) peerLost(peer int, err error) error {
	if r.g.hbTimeout <= 0 {
		return err
	}
	mPeerFailures.Inc()
	return &PeerLostError{Rank: peer, Err: err}
}

// recvLive reads the next PROTOCOL frame from peer. Heartbeats are
// consumed transparently — each arrival already refreshed the link's
// read deadline inside Recv, which is exactly how a slow-but-alive peer
// stays alive through a long compute. A transport error (including an
// expired liveness deadline) or an abort frame from the peer surfaces
// as peer loss.
func (r *Reducer) recvLive(peer int) (FrameType, []byte, error) {
	conn := r.g.conn(peer)
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			return 0, nil, r.peerLost(peer, err)
		}
		switch t {
		case FrameHeartbeat:
			continue
		case FrameAbort:
			reason := "(no reason)"
			if len(payload) > 8 {
				reason = string(payload[8:])
			}
			return 0, nil, r.peerLost(peer, fmt.Errorf("peer abandoned the step: %s", reason))
		}
		return t, payload, nil
	}
}

func (r *Reducer) reduceWorker(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error) {
	conn := r.g.conn(0)
	runID := r.g.traceID
	for i := range local {
		r.enc = appendGradPayload(r.enc[:0], runID, step, &local[i])
		if err := conn.Send(FrameGrad, r.enc); err != nil {
			return nil, r.peerLost(0, err)
		}
	}
	r.enc = appendEndPayload(r.enc[:0], runID, step, len(local), r.maybeSnap())
	if err := conn.Send(FrameGradEnd, r.enc); err != nil {
		return nil, r.peerLost(0, err)
	}
	t, payload, err := r.recvLive(0)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d waiting for reduced gradient: %w", r.g.Rank(), err)
	}
	if t != FrameSum {
		return nil, fmt.Errorf("dist: rank %d got %s frame while waiting for the reduced gradient", r.g.Rank(), t)
	}
	return decodeSumPayload(payload, runID, step, groupSize, sum)
}

// maybeSnap returns this rank's metrics snapshot as JSON at most once
// per snapInterval while telemetry is enabled, nil otherwise. The root
// renders gathered snapshots on its /metrics endpoint, so scraping rank
// 0 sees the whole training group.
func (r *Reducer) maybeSnap() []byte {
	if !telemetry.Enabled() {
		return nil
	}
	now := time.Now()
	if now.Sub(r.lastSnap) < snapInterval {
		return nil
	}
	r.lastSnap = now
	data, err := json.Marshal(telemetry.Snapshot())
	if err != nil {
		return nil // observability must never fail the reduce
	}
	return data
}

func (r *Reducer) reduceRoot(step int64, groupSize int, local []BatchGrad, sum []float32) ([]BatchGrad, error) {
	byIdx := make([]*BatchGrad, groupSize)
	if err := slotByIndex(byIdx, groupSize, r.g.World(), 0, local); err != nil {
		return nil, err
	}
	for peer := 1; peer < r.g.World(); peer++ {
		if err := r.gatherPeer(byIdx, step, groupSize, peer); err != nil {
			return nil, err
		}
	}
	metas, err := foldOrdered(byIdx, r.g.World(), sum)
	if err != nil {
		return nil, err
	}
	r.enc = appendSumPayload(r.enc[:0], r.g.traceID, step, metas, sum)
	for peer := 1; peer < r.g.World(); peer++ {
		if err := r.g.conn(peer).Send(FrameSum, r.enc); err != nil {
			return nil, fmt.Errorf("dist: broadcasting reduced gradient to rank %d: %w", peer, r.peerLost(peer, err))
		}
	}
	return metas, nil
}

// gatherPeer drains one peer's contributions for this step, ending at
// its grad-end frame. The peer's frames arrive in its send order; the
// fold order is fixed by batch index afterwards, so cross-peer timing
// cannot influence the result.
func (r *Reducer) gatherPeer(byIdx []*BatchGrad, step int64, groupSize, peer int) error {
	count := 0
	for {
		t, payload, err := r.recvLive(peer)
		if err != nil {
			return fmt.Errorf("dist: gathering gradients from rank %d: %w", peer, err)
		}
		switch t {
		case FrameGrad:
			gotRun, gotStep, bg, err := decodeGradPayload(payload)
			if err != nil {
				return fmt.Errorf("dist: gradient frame from rank %d: %w", peer, err)
			}
			if err := checkRun(gotRun, r.g.traceID, "gradient frame", peer); err != nil {
				return err
			}
			if gotStep != step {
				return fmt.Errorf("dist: rank %d sent a gradient for step %d during step %d (worker desynchronized)",
					peer, gotStep, step)
			}
			if bg.Index < 0 || bg.Index >= groupSize {
				return fmt.Errorf("dist: rank %d contributed batch %d outside group of %d", peer, bg.Index, groupSize)
			}
			if bg.Index%r.g.World() != peer {
				return fmt.Errorf("dist: rank %d contributed batch %d, which rank %d owns",
					peer, bg.Index, bg.Index%r.g.World())
			}
			if byIdx[bg.Index] != nil {
				return fmt.Errorf("dist: duplicate contribution for batch %d from rank %d", bg.Index, peer)
			}
			byIdx[bg.Index] = bg
			count++
		case FrameGradEnd:
			gotRun, gotStep, gotCount, snap, err := decodeEndPayload(payload)
			if err != nil {
				return fmt.Errorf("dist: grad-end frame from rank %d: %w", peer, err)
			}
			if err := checkRun(gotRun, r.g.traceID, "grad-end frame", peer); err != nil {
				return err
			}
			if gotStep != step {
				return fmt.Errorf("dist: rank %d ended step %d during step %d (worker desynchronized)", peer, gotStep, step)
			}
			if gotCount != count {
				return fmt.Errorf("dist: rank %d announced %d contributions, %d arrived (frames lost in transit)",
					peer, gotCount, count)
			}
			if len(snap) > 0 {
				// Best-effort fleet metrics: a snapshot that does not parse
				// is dropped, never fails the reduce.
				var s telemetry.Snap
				if err := json.Unmarshal(snap, &s); err == nil {
					telemetry.SetPeerSnap(peer, s)
				}
			}
			return nil
		default:
			return fmt.Errorf("dist: unexpected %s frame from rank %d during gradient gather", t, peer)
		}
	}
}

// checkRun rejects a payload tagged with a different run id. Lenient
// by design when either side is untraced (id 0): hand-assembled test
// groups and pre-observability peers keep working; only two actually
// traced, actually different runs collide.
func checkRun(got, want uint64, what string, peer int) error {
	if got != 0 && want != 0 && got != want {
		return fmt.Errorf("dist: %s from rank %d belongs to run %016x, this group is run %016x (two fleets crossed?)",
			what, peer, got, want)
	}
	return nil
}

// Gradient payload: u64 run id, u64 step, u32 index, u8 bad, u32 loss
// bits, u32 correct, u32 seen, u32 nStats, f32 stats..., u64 nGrad,
// f32 grad... Floats travel as raw bits so the fold is bit-exact across
// the wire.

func appendGradPayload(dst []byte, runID uint64, step int64, b *BatchGrad) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, runID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(step))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Index))
	bad := byte(0)
	if b.Bad {
		bad = 1
	}
	dst = append(dst, bad)
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(b.Loss))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Correct))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Seen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Stats)))
	for _, v := range b.Stats {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(b.Grad)))
	for _, v := range b.Grad {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// byteReader is a bounds-checked cursor over a payload; decode paths use
// it so malformed lengths produce errors, never panics.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("payload truncated at byte %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("payload truncated at byte %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("payload truncated at byte %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("payload claims %d bytes, %d remain", n, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) f32s(n int) ([]float32, error) {
	if n < 0 || r.off+4*n > len(r.b) {
		return nil, fmt.Errorf("payload claims %d floats, %d bytes remain", n, len(r.b)-r.off)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.off+4*i:]))
	}
	r.off += 4 * n
	return out, nil
}

func (r *byteReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%d trailing bytes in payload", len(r.b)-r.off)
	}
	return nil
}

func decodeGradPayload(p []byte) (uint64, int64, *BatchGrad, error) {
	r := &byteReader{b: p}
	runID, err := r.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	step, err := r.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	idx, err := r.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	bad, err := r.u8()
	if err != nil {
		return 0, 0, nil, err
	}
	lossBits, err := r.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	correct, err := r.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	seen, err := r.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	nStats, err := r.u32()
	if err != nil {
		return 0, 0, nil, err
	}
	stats, err := r.f32s(int(nStats))
	if err != nil {
		return 0, 0, nil, err
	}
	nGrad, err := r.u64()
	if err != nil {
		return 0, 0, nil, err
	}
	grad, err := r.f32s(int(nGrad))
	if err != nil {
		return 0, 0, nil, err
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, err
	}
	bg := &BatchGrad{
		Index: int(int32(idx)), Loss: math.Float32frombits(lossBits),
		Correct: int32(correct), Seen: int32(seen), Bad: bad != 0,
		Stats: stats,
	}
	if len(grad) > 0 {
		bg.Grad = grad
	}
	return runID, int64(step), bg, nil
}

// Grad-end payload: u64 run id, u64 step, u32 count, u32 snapLen,
// snapLen bytes of metrics-snapshot JSON (0 when no snapshot rides
// along this step).

func appendEndPayload(dst []byte, runID uint64, step int64, count int, snap []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, runID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(step))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(snap)))
	dst = append(dst, snap...)
	return dst
}

func decodeEndPayload(p []byte) (uint64, int64, int, []byte, error) {
	r := &byteReader{b: p}
	runID, err := r.u64()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	step, err := r.u64()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	count, err := r.u32()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	snapLen, err := r.u32()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	snap, err := r.bytes(int(snapLen))
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if err := r.done(); err != nil {
		return 0, 0, 0, nil, err
	}
	return runID, int64(step), int(count), snap, nil
}

// Sum payload: u64 run id, u64 step, u32 groupSize, per batch {u8 bad,
// u32 loss bits, u32 correct, u32 seen, u32 nStats, f32 stats...},
// u64 nGrad, f32 folded gradient.

func appendSumPayload(dst []byte, runID uint64, step int64, metas []BatchGrad, sum []float32) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, runID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(step))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(metas)))
	for i := range metas {
		m := &metas[i]
		bad := byte(0)
		if m.Bad {
			bad = 1
		}
		dst = append(dst, bad)
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(m.Loss))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Correct))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Seen))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Stats)))
		for _, v := range m.Stats {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(sum)))
	for _, v := range sum {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

func decodeSumPayload(p []byte, wantRun uint64, wantStep int64, wantGroup int, sum []float32) ([]BatchGrad, error) {
	r := &byteReader{b: p}
	runID, err := r.u64()
	if err != nil {
		return nil, err
	}
	if err := checkRun(runID, wantRun, "reduced gradient", 0); err != nil {
		return nil, err
	}
	step, err := r.u64()
	if err != nil {
		return nil, err
	}
	if int64(step) != wantStep {
		return nil, fmt.Errorf("dist: reduced gradient is for step %d, this rank is at step %d (desynchronized)", step, wantStep)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) != wantGroup {
		return nil, fmt.Errorf("dist: reduced group has %d batches, this rank expects %d (group size mismatch)", n, wantGroup)
	}
	metas := make([]BatchGrad, n)
	for i := range metas {
		bad, err := r.u8()
		if err != nil {
			return nil, err
		}
		lossBits, err := r.u32()
		if err != nil {
			return nil, err
		}
		correct, err := r.u32()
		if err != nil {
			return nil, err
		}
		seen, err := r.u32()
		if err != nil {
			return nil, err
		}
		nStats, err := r.u32()
		if err != nil {
			return nil, err
		}
		stats, err := r.f32s(int(nStats))
		if err != nil {
			return nil, err
		}
		metas[i] = BatchGrad{
			Index: i, Loss: math.Float32frombits(lossBits),
			Correct: int32(correct), Seen: int32(seen), Bad: bad != 0,
			Stats: stats,
		}
	}
	nGrad, err := r.u64()
	if err != nil {
		return nil, err
	}
	if int(nGrad) != len(sum) {
		return nil, fmt.Errorf("dist: reduced gradient has %d values, model has %d (mixed architectures in one group?)",
			nGrad, len(sum))
	}
	folded, err := r.f32s(int(nGrad))
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	copy(sum, folded)
	return metas, nil
}
