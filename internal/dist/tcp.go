package dist

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// protoVersion guards against mixed binaries joining one run; bump it
// whenever the wire protocol changes incompatibly. v2 added the run
// trace id to the handshake (hello + welcome) and a run-id prefix on
// every reduce payload. v3 added membership epochs and coordinator-side
// rank assignment (hello carries {epoch, rank-or-assign-me}, welcome
// carries {assigned rank, world, epoch}) for elastic regroup.
const protoVersion = 3

// helloLen is the FrameHello payload: u32 proto, u32 world (0 = rejoin,
// accept whatever world forms), u32 rank (rankAssign = assign me one),
// u64 run trace id (0 when the joiner has none; the coordinator's
// welcome is authoritative either way), u64 membership epoch (0 = fresh
// join; a rejoining survivor announces the epoch it last held).
const helloLen = 28

// welcomeLen is the FrameWelcome payload: u64 run trace id, u32
// assigned rank, u32 world, u64 membership epoch.
const welcomeLen = 24

// rankAssign in a hello's rank field asks the coordinator to assign a
// rank (elastic joins — ranks are an artifact of arrival order there,
// not identity; the training trajectory depends only on the group size).
const rankAssign = 0xFFFFFFFF

// hello is the decoded join announcement.
type hello struct {
	proto uint32
	world uint32
	rank  uint32
	runID uint64
	epoch uint64
}

func appendHello(dst []byte, h hello) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, h.proto)
	dst = binary.LittleEndian.AppendUint32(dst, h.world)
	dst = binary.LittleEndian.AppendUint32(dst, h.rank)
	dst = binary.LittleEndian.AppendUint64(dst, h.runID)
	dst = binary.LittleEndian.AppendUint64(dst, h.epoch)
	return dst
}

// recvHello reads and validates the protocol envelope of a join
// announcement (frame type, length, version); membership-level checks
// (world, rank, epoch) belong to the caller.
func recvHello(conn Conn) (hello, error) {
	t, payload, err := conn.Recv()
	if err != nil {
		return hello{}, fmt.Errorf("dist: reading join hello: %w", err)
	}
	if t != FrameHello {
		return hello{}, fmt.Errorf("dist: first frame from joining worker is %s, want hello", t)
	}
	if len(payload) != helloLen {
		return hello{}, fmt.Errorf("dist: hello payload is %d bytes, want %d", len(payload), helloLen)
	}
	h := hello{
		proto: binary.LittleEndian.Uint32(payload[0:]),
		world: binary.LittleEndian.Uint32(payload[4:]),
		rank:  binary.LittleEndian.Uint32(payload[8:]),
		runID: binary.LittleEndian.Uint64(payload[12:]),
		epoch: binary.LittleEndian.Uint64(payload[20:]),
	}
	if h.proto != protoVersion {
		return hello{}, fmt.Errorf("dist: worker speaks protocol %d, coordinator speaks %d (mixed binaries?)", h.proto, protoVersion)
	}
	return h, nil
}

// welcome is the decoded join acceptance.
type welcome struct {
	runID uint64
	rank  uint32
	world uint32
	epoch uint64
}

func appendWelcome(dst []byte, w welcome) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, w.runID)
	dst = binary.LittleEndian.AppendUint32(dst, w.rank)
	dst = binary.LittleEndian.AppendUint32(dst, w.world)
	dst = binary.LittleEndian.AppendUint64(dst, w.epoch)
	return dst
}

func decodeWelcome(payload []byte) (welcome, error) {
	if len(payload) != welcomeLen {
		return welcome{}, fmt.Errorf("dist: welcome payload is %d bytes, want %d", len(payload), welcomeLen)
	}
	return welcome{
		runID: binary.LittleEndian.Uint64(payload[0:]),
		rank:  binary.LittleEndian.Uint32(payload[8:]),
		world: binary.LittleEndian.Uint32(payload[12:]),
		epoch: binary.LittleEndian.Uint64(payload[16:]),
	}, nil
}

// Coordinator is the listening side of a TCP join: rank 0 binds an
// address, then Accept gathers one hello per non-root rank.
type Coordinator struct {
	ln net.Listener
}

// NewCoordinator binds the coordinator address. Use ":0" in tests to get
// an ephemeral port via Addr.
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln}, nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops listening; joined connections stay open.
func (c *Coordinator) Close() error { return c.ln.Close() }

// Accept waits until every non-root rank has connected and announced
// itself with a hello frame, then returns rank 0's group. A wrong
// protocol version, a world-size mismatch, an out-of-range or duplicate
// rank, or fewer than world-1 joins before the timeout all abort the
// whole join: a misconfigured fleet must not start training.
func (c *Coordinator) Accept(world int, timeout time.Duration) (*Group, error) {
	if world < 2 {
		return nil, fmt.Errorf("dist: TCP join needs world >= 2 (got %d); use Loopback for single-process runs", world)
	}
	deadline := time.Now().Add(timeout)
	// The coordinator owns the run's correlation id: it adopts the
	// process's trace id (generating one if unset) and hands it to every
	// joiner in the welcome frame.
	runID := telemetry.EnsureTraceID()
	g := &Group{rank: 0, world: world, traceID: runID, conns: make([]Conn, world)}
	cleanup := func() {
		for _, conn := range g.conns {
			if conn != nil {
				conn.Close()
			}
		}
	}
	for joined := 0; joined < world-1; joined++ {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline) //nolint:errcheck // best-effort timeout
		}
		raw, err := c.ln.Accept()
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("dist: %d of %d workers joined before error: %w", joined, world-1, err)
		}
		// The join deadline must also bound the hello read: a joiner that
		// connects and then stalls (or speaks a non-frame protocol short
		// of one header) would otherwise hang the whole fleet.
		raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
		conn := NewStreamConn(raw)
		rank, err := readClassicHello(conn, world)
		if err != nil {
			conn.Close()
			cleanup()
			return nil, err
		}
		raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
		if g.conns[rank] != nil {
			conn.Close()
			cleanup()
			return nil, fmt.Errorf("dist: rank %d joined twice (duplicate -rank on two workers?)", rank)
		}
		// Hand the joiner the run id. Best-effort: a peer that dies right
		// after its hello fails the reduce later with a clearer error than
		// aborting the whole join here would give.
		w := appendWelcome(nil, welcome{runID: runID, rank: uint32(rank), world: uint32(world)})
		conn.Send(FrameWelcome, w) //nolint:errcheck // see above
		g.conns[rank] = conn
	}
	c.ln.Close()
	return g, nil
}

// readClassicHello validates a fixed-rank (non-elastic) join
// announcement against the configured world.
func readClassicHello(conn Conn, world int) (int, error) {
	h, err := recvHello(conn)
	if err != nil {
		return 0, err
	}
	if int(h.world) != world {
		return 0, fmt.Errorf("dist: worker configured for world size %d, coordinator for %d", h.world, world)
	}
	if h.rank == 0 || h.rank != rankAssign && int(h.rank) >= world {
		return 0, fmt.Errorf("dist: joining worker announced rank %d, want 1..%d", h.rank, world-1)
	}
	if h.rank == rankAssign {
		return 0, fmt.Errorf("dist: joining worker asked for rank assignment; this coordinator runs a fixed-rank join (use the elastic coordinator)")
	}
	if h.epoch != 0 {
		return 0, fmt.Errorf("dist: joining worker announced membership epoch %d on a fixed-rank join (rejoins need the elastic coordinator)", h.epoch)
	}
	return int(h.rank), nil
}

// Listen is the one-shot coordinator entry point for CLIs with a fixed
// address: bind, gather the fleet, return rank 0's group.
func Listen(addr string, world int, timeout time.Duration) (*Group, error) {
	c, err := NewCoordinator(addr)
	if err != nil {
		return nil, err
	}
	g, err := c.Accept(world, timeout)
	if err != nil {
		c.Close()
		return nil, err
	}
	return g, nil
}

// dialJitter is the shared randomness for dial backoff; math/rand's
// global source needs no seeding for this purpose, but the lock keeps
// concurrent joiners' streams independent under -race.
var dialJitter struct {
	sync.Mutex
	r *rand.Rand
}

// dialBackoff returns the next retry delay: exponential from base,
// capped at max, with ±50% jitter so a fleet of workers launched by one
// script does not hammer the coordinator in lockstep.
func dialBackoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	dialJitter.Lock()
	if dialJitter.r == nil {
		dialJitter.r = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + dialJitter.r.Float64() // [0.5, 1.5)
	dialJitter.Unlock()
	return time.Duration(float64(d) * f)
}

// dialRetry dials addr with bounded, jittered exponential backoff until
// deadline: workers may legitimately start before the coordinator binds
// its socket (start order must not matter), so connection refusals are
// retried, never fatal, while the deadline holds.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("dist: could not reach coordinator %s before the join deadline", addr)
		}
		raw, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return raw, nil
		}
		wait := dialBackoff(attempt, 25*time.Millisecond, 500*time.Millisecond)
		if remain := time.Until(deadline); wait > remain {
			wait = remain
		}
		time.Sleep(wait)
	}
}

// Dial connects a non-root worker to the coordinator — retrying with
// jittered backoff while the coordinator is still coming up, so launch
// order does not matter — and announces (rank, world) with a hello
// frame.
func Dial(addr string, rank, world int, timeout time.Duration) (*Group, error) {
	if world < 2 || rank < 1 || rank >= world {
		return nil, fmt.Errorf("dist: dialing rank must be in 1..%d (got rank %d, world %d)", world-1, rank, world)
	}
	deadline := time.Now().Add(timeout)
	raw, err := dialRetry(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d: %w", rank, err)
	}
	conn := NewStreamConn(raw)
	h := appendHello(nil, hello{
		proto: protoVersion,
		world: uint32(world),
		rank:  uint32(rank),
		runID: telemetry.CurrentIdentity().TraceID,
	})
	if err := conn.Send(FrameHello, h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: sending join hello: %w", err)
	}
	// The welcome closes the handshake: the coordinator's run id becomes
	// this rank's correlation id for metrics, traces and logs.
	raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
	t, payload, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d waiting for join welcome: %w", rank, err)
	}
	if t != FrameWelcome {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d got %s frame (%d bytes) while waiting for the join welcome", rank, t, len(payload))
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d: %w", rank, err)
	}
	if int(w.rank) != rank || int(w.world) != world {
		conn.Close()
		return nil, fmt.Errorf("dist: coordinator welcomed rank %d of world %d, this worker announced rank %d of world %d",
			w.rank, w.world, rank, world)
	}
	raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
	telemetry.SetTraceID(w.runID)
	conns := make([]Conn, world)
	conns[0] = conn
	return &Group{rank: rank, world: world, traceID: w.runID, conns: conns}, nil
}
