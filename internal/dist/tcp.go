package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/telemetry"
)

// protoVersion guards against mixed binaries joining one run; bump it
// whenever the wire protocol changes incompatibly. v2 added the run
// trace id to the handshake (hello + welcome) and a run-id prefix on
// every reduce payload.
const protoVersion = 2

// helloLen is the FrameHello payload: u32 proto, u32 world, u32 rank,
// u64 run trace id (0 when the joiner has none; the coordinator's
// welcome is authoritative either way).
const helloLen = 20

// welcomeLen is the FrameWelcome payload: u64 run trace id.
const welcomeLen = 8

// Coordinator is the listening side of a TCP join: rank 0 binds an
// address, then Accept gathers one hello per non-root rank.
type Coordinator struct {
	ln net.Listener
}

// NewCoordinator binds the coordinator address. Use ":0" in tests to get
// an ephemeral port via Addr.
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln}, nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops listening; joined connections stay open.
func (c *Coordinator) Close() error { return c.ln.Close() }

// Accept waits until every non-root rank has connected and announced
// itself with a hello frame, then returns rank 0's group. A wrong
// protocol version, a world-size mismatch, an out-of-range or duplicate
// rank, or fewer than world-1 joins before the timeout all abort the
// whole join: a misconfigured fleet must not start training.
func (c *Coordinator) Accept(world int, timeout time.Duration) (*Group, error) {
	if world < 2 {
		return nil, fmt.Errorf("dist: TCP join needs world >= 2 (got %d); use Loopback for single-process runs", world)
	}
	deadline := time.Now().Add(timeout)
	// The coordinator owns the run's correlation id: it adopts the
	// process's trace id (generating one if unset) and hands it to every
	// joiner in the welcome frame.
	runID := telemetry.EnsureTraceID()
	g := &Group{rank: 0, world: world, traceID: runID, conns: make([]Conn, world)}
	cleanup := func() {
		for _, conn := range g.conns {
			if conn != nil {
				conn.Close()
			}
		}
	}
	for joined := 0; joined < world-1; joined++ {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline) //nolint:errcheck // best-effort timeout
		}
		raw, err := c.ln.Accept()
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("dist: %d of %d workers joined before error: %w", joined, world-1, err)
		}
		// The join deadline must also bound the hello read: a joiner that
		// connects and then stalls (or speaks a non-frame protocol short
		// of one header) would otherwise hang the whole fleet.
		raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
		conn := NewStreamConn(raw)
		rank, err := readHello(conn, world)
		if err != nil {
			conn.Close()
			cleanup()
			return nil, err
		}
		raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
		if g.conns[rank] != nil {
			conn.Close()
			cleanup()
			return nil, fmt.Errorf("dist: rank %d joined twice (duplicate -rank on two workers?)", rank)
		}
		// Hand the joiner the run id. Best-effort: a peer that dies right
		// after its hello fails the reduce later with a clearer error than
		// aborting the whole join here would give.
		var welcome [welcomeLen]byte
		binary.LittleEndian.PutUint64(welcome[:], runID)
		conn.Send(FrameWelcome, welcome[:]) //nolint:errcheck // see above
		g.conns[rank] = conn
	}
	c.ln.Close()
	return g, nil
}

func readHello(conn Conn, world int) (int, error) {
	t, payload, err := conn.Recv()
	if err != nil {
		return 0, fmt.Errorf("dist: reading join hello: %w", err)
	}
	if t != FrameHello {
		return 0, fmt.Errorf("dist: first frame from joining worker is %s, want hello", t)
	}
	if len(payload) != helloLen {
		return 0, fmt.Errorf("dist: hello payload is %d bytes, want %d", len(payload), helloLen)
	}
	proto := binary.LittleEndian.Uint32(payload[0:])
	peerWorld := binary.LittleEndian.Uint32(payload[4:])
	rank := binary.LittleEndian.Uint32(payload[8:])
	if proto != protoVersion {
		return 0, fmt.Errorf("dist: worker speaks protocol %d, coordinator speaks %d (mixed binaries?)", proto, protoVersion)
	}
	if int(peerWorld) != world {
		return 0, fmt.Errorf("dist: worker configured for world size %d, coordinator for %d", peerWorld, world)
	}
	if rank == 0 || int(rank) >= world {
		return 0, fmt.Errorf("dist: joining worker announced rank %d, want 1..%d", rank, world-1)
	}
	return int(rank), nil
}

// Listen is the one-shot coordinator entry point for CLIs with a fixed
// address: bind, gather the fleet, return rank 0's group.
func Listen(addr string, world int, timeout time.Duration) (*Group, error) {
	c, err := NewCoordinator(addr)
	if err != nil {
		return nil, err
	}
	g, err := c.Accept(world, timeout)
	if err != nil {
		c.Close()
		return nil, err
	}
	return g, nil
}

// Dial connects a non-root worker to the coordinator, retrying while the
// coordinator is still coming up, and announces (rank, world) with a
// hello frame.
func Dial(addr string, rank, world int, timeout time.Duration) (*Group, error) {
	if world < 2 || rank < 1 || rank >= world {
		return nil, fmt.Errorf("dist: dialing rank must be in 1..%d (got rank %d, world %d)", world-1, rank, world)
	}
	deadline := time.Now().Add(timeout)
	var raw net.Conn
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("dist: rank %d could not reach coordinator %s within %v", rank, addr, timeout)
		}
		var err error
		raw, err = net.DialTimeout("tcp", addr, remain)
		if err == nil {
			break
		}
		// The coordinator may simply not be listening yet (workers race
		// to start); retry until the join timeout says otherwise.
		time.Sleep(50 * time.Millisecond)
	}
	conn := NewStreamConn(raw)
	hello := make([]byte, helloLen)
	binary.LittleEndian.PutUint32(hello[0:], protoVersion)
	binary.LittleEndian.PutUint32(hello[4:], uint32(world))
	binary.LittleEndian.PutUint32(hello[8:], uint32(rank))
	binary.LittleEndian.PutUint64(hello[12:], telemetry.CurrentIdentity().TraceID)
	if err := conn.Send(FrameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: sending join hello: %w", err)
	}
	// The welcome closes the handshake: the coordinator's run id becomes
	// this rank's correlation id for metrics, traces and logs.
	raw.SetReadDeadline(deadline) //nolint:errcheck // best-effort timeout
	t, payload, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d waiting for join welcome: %w", rank, err)
	}
	if t != FrameWelcome || len(payload) != welcomeLen {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d got %s frame (%d bytes) while waiting for the join welcome", rank, t, len(payload))
	}
	raw.SetReadDeadline(time.Time{}) //nolint:errcheck // joined: back to blocking reads
	runID := binary.LittleEndian.Uint64(payload)
	telemetry.SetTraceID(runID)
	conns := make([]Conn, world)
	conns[0] = conn
	return &Group{rank: rank, world: world, traceID: runID, conns: conns}, nil
}
