package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

const joinTimeout = 5 * time.Second

// joinTCP brings up a full TCP group on an ephemeral port and returns
// one *Group per rank.
func joinTCP(t *testing.T, world int) []*Group {
	t.Helper()
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	groups := make([]*Group, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 1; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			groups[r], errs[r] = Dial(coord.Addr(), r, world, joinTimeout)
		}(r)
	}
	groups[0], errs[0] = coord.Accept(world, joinTimeout)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, g := range groups {
			g.Close()
		}
	})
	return groups
}

// TestTCPReduceMatchesLoopback: the same reduce over real sockets must
// produce the bit-identical sum the loopback transport produces.
func TestTCPReduceMatchesLoopback(t *testing.T) {
	const world, groupSize, gradLen = 3, 5, 257
	grads := make([][]float32, groupSize)
	for j := range grads {
		g := make([]float32, gradLen)
		for i := range g {
			g[i] = float32(j*1000+i) * 0.001
		}
		grads[j] = g
	}
	want := refFold(grads, nil, gradLen)

	groups := joinTCP(t, world)
	sums := make([][]float32, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			red := NewReducer(groups[r])
			var local []BatchGrad
			for j := r; j < groupSize; j += world {
				local = append(local, BatchGrad{Index: j, Grad: grads[j], Seen: 1})
			}
			sums[r] = make([]float32, gradLen)
			_, errs[r] = red.Reduce(0, groupSize, local, sums[r])
		}(r)
	}
	wg.Wait()
	for r := 0; r < world; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !f32Equal(sums[r], want) {
			t.Fatalf("rank %d: TCP sum differs from reference fold", r)
		}
	}
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, joinTimeout)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return raw
}

func helloPayload(proto, world, rank uint32) []byte {
	p := make([]byte, helloLen)
	binary.LittleEndian.PutUint32(p[0:], proto)
	binary.LittleEndian.PutUint32(p[4:], world)
	binary.LittleEndian.PutUint32(p[8:], rank)
	return p
}

// acceptErr runs a world-2 coordinator against a joining byte stream the
// test crafts, returning Accept's error.
func acceptErr(t *testing.T, world int, send func(c net.Conn)) error {
	t.Helper()
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	hold := make(chan struct{})
	go func() {
		c := dialRaw(t, coord.Addr())
		defer c.Close()
		send(c)
		// Hold the conn open so a coordinator-side rejection, not our
		// exit, decides the outcome.
		<-hold
	}()
	_, aerr := coord.Accept(world, 2*time.Second)
	close(hold)
	return aerr
}

func TestJoinRejectsBadHellos(t *testing.T) {
	cases := []struct {
		name string
		send func(c net.Conn)
		want string
	}{
		{"wrong protocol version",
			func(c net.Conn) { WriteFrame(c, FrameHello, 0, helloPayload(protoVersion+1, 2, 1)) }, //nolint:errcheck
			"protocol"},
		{"world size mismatch",
			func(c net.Conn) { WriteFrame(c, FrameHello, 0, helloPayload(protoVersion, 3, 1)) }, //nolint:errcheck
			"world size"},
		{"rank zero from a joiner",
			func(c net.Conn) { WriteFrame(c, FrameHello, 0, helloPayload(protoVersion, 2, 0)) }, //nolint:errcheck
			"rank"},
		{"rank out of range",
			func(c net.Conn) { WriteFrame(c, FrameHello, 0, helloPayload(protoVersion, 2, 7)) }, //nolint:errcheck
			"rank"},
		{"not a hello frame",
			func(c net.Conn) { WriteFrame(c, FrameGrad, 0, []byte("gradient")) }, //nolint:errcheck
			"hello"},
		{"garbage bytes",
			func(c net.Conn) { c.Write([]byte("GET / HTTP/1.1\r\nHost: localhost\r\n\r\n")) }, //nolint:errcheck
			""},
		{"stalled joiner",
			func(c net.Conn) { c.Write([]byte("ODQ")) }, //nolint:errcheck // less than one header, then silence
			""},
	}
	for _, tc := range cases {
		err := acceptErr(t, 2, tc.send)
		if err == nil {
			t.Errorf("%s: join succeeded, want rejection", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestJoinRejectsDuplicateRank(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			c := dialRaw(t, coord.Addr())
			defer c.Close()
			WriteFrame(c, FrameHello, 0, helloPayload(protoVersion, 3, 1)) //nolint:errcheck
			<-done
		}()
	}
	_, aerr := coord.Accept(3, 2*time.Second)
	close(done)
	if aerr == nil || !strings.Contains(aerr.Error(), "twice") {
		t.Fatalf("duplicate rank join: err = %v, want 'joined twice'", aerr)
	}
}

func TestJoinTimeout(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	start := time.Now()
	if _, err := coord.Accept(2, 200*time.Millisecond); err == nil {
		t.Fatal("Accept with no joiners succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("Accept did not honor its timeout")
	}
}

func TestDialValidatesRank(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {2, 2}, {-1, 2}, {1, 1}} {
		if _, err := Dial("127.0.0.1:1", bad[0], bad[1], time.Millisecond); err == nil {
			t.Errorf("Dial(rank=%d, world=%d) succeeded", bad[0], bad[1])
		}
	}
}

// corruptConn wraps a net.Conn and corrupts the Nth written byte with a
// bit flip — simulating wire corruption below the frame codec.
type corruptConn struct {
	net.Conn
	mu      sync.Mutex
	written int
	target  int // byte offset to corrupt
	bit     int
}

func (c *corruptConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	start := c.written
	c.written += len(p)
	c.mu.Unlock()
	if c.target >= start && c.target < start+len(p) {
		p = faultinject.BitFlip(p, (c.target-start)*8+c.bit)
	}
	return c.Conn.Write(p)
}

// TestTCPReduceDetectsWireCorruption: a bit flipped inside a worker's
// gradient bytes in flight must fail the reduce on both sides — never
// produce a silently wrong sum.
func TestTCPReduceDetectsWireCorruption(t *testing.T) {
	// Corrupt a byte deep inside the worker's first gradient frame
	// (past the 21-byte header: inside the float payload).
	for _, target := range []int{frameHeaderLen + 30, frameHeaderLen + 64} {
		coord, err := NewCoordinator("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		grad := make([]float32, 64)
		for i := range grad {
			grad[i] = float32(i)
		}
		var workerErr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			raw := dialRaw(t, coord.Addr())
			// Hello must arrive intact, so corruption targets offsets
			// beyond the hello frame (frameHeaderLen + helloLen bytes).
			cc := &corruptConn{Conn: raw, target: frameHeaderLen + helloLen + target, bit: 3}
			conn := NewStreamConn(cc)
			hello := helloPayload(protoVersion, 2, 1)
			if workerErr = conn.Send(FrameHello, hello); workerErr != nil {
				return
			}
			// Consume the coordinator's welcome (corruption only targets
			// this worker's outbound bytes, so it arrives intact).
			if ft, _, werr := conn.Recv(); werr != nil {
				workerErr = werr
				return
			} else if ft != FrameWelcome {
				workerErr = fmt.Errorf("got %s frame, want welcome", ft)
				return
			}
			g, _ := NewGroup(1, 2, []Conn{conn, nil})
			red := NewReducer(g)
			defer red.Close()
			sum := make([]float32, len(grad))
			_, workerErr = red.Reduce(0, 2, []BatchGrad{{Index: 1, Grad: grad}}, sum)
		}()
		rootGroup, err := coord.Accept(2, joinTimeout)
		if err != nil {
			t.Fatalf("target %d: Accept: %v", target, err)
		}
		root := NewReducer(rootGroup)
		sum := make([]float32, len(grad))
		_, rootErr := root.Reduce(0, 2, []BatchGrad{{Index: 0, Grad: grad}}, sum)
		root.Close()
		<-done
		if rootErr == nil {
			t.Fatalf("target %d: root reduce over a corrupted wire completed cleanly", target)
		}
		if workerErr == nil {
			t.Fatalf("target %d: worker reduce over a corrupted wire completed cleanly", target)
		}
	}
}

// TestTCPReduceDetectsDeadPeer: a worker dying mid-gather (stream
// truncation at the transport level) must fail the root loudly.
func TestTCPReduceDetectsDeadPeer(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	grad := []float32{1, 2, 3, 4}
	done := make(chan struct{})
	go func() {
		defer close(done)
		raw := dialRaw(t, coord.Addr())
		conn := NewStreamConn(raw)
		conn.Send(FrameHello, helloPayload(protoVersion, 2, 1)) //nolint:errcheck
		// Send one gradient frame, then die before grad-end: the root
		// sees the stream cut mid-step.
		var enc []byte
		enc = appendGradPayload(enc, 0, 0, &BatchGrad{Index: 1, Grad: grad})
		conn.Send(FrameGrad, enc) //nolint:errcheck
		conn.Close()
	}()
	rootGroup, err := coord.Accept(2, joinTimeout)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	root := NewReducer(rootGroup)
	defer root.Close()
	sum := make([]float32, len(grad))
	_, rootErr := root.Reduce(0, 2, []BatchGrad{{Index: 0, Grad: grad}}, sum)
	<-done
	if rootErr == nil {
		t.Fatal("reduce with a dead peer completed cleanly")
	}
}

// TestTCPReduceDetectsDuplicatedFrame: a replayed gradient frame carries
// a stale sequence number and must be rejected at the codec layer.
func TestTCPReduceDetectsDuplicatedFrame(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	grad := []float32{1, 2, 3, 4}
	hold := make(chan struct{})
	go func() {
		raw := dialRaw(t, coord.Addr())
		defer raw.Close()
		WriteFrame(raw, FrameHello, 0, helloPayload(protoVersion, 2, 1)) //nolint:errcheck
		var enc []byte
		enc = appendGradPayload(enc, 0, 0, &BatchGrad{Index: 1, Grad: grad})
		// Replay: the same frame (same seq) twice — a duplicated segment.
		WriteFrame(raw, FrameGrad, 1, enc) //nolint:errcheck
		WriteFrame(raw, FrameGrad, 1, enc) //nolint:errcheck
		<-hold
	}()
	rootGroup, err := coord.Accept(2, joinTimeout)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	root := NewReducer(rootGroup)
	defer root.Close()
	sum := make([]float32, len(grad))
	_, rootErr := root.Reduce(0, 2, []BatchGrad{{Index: 0, Grad: grad}}, sum)
	close(hold)
	if rootErr == nil || !strings.Contains(rootErr.Error(), "sequence") {
		t.Fatalf("duplicated frame: err = %v, want sequence violation", rootErr)
	}
}

// TestTCPReduceDetectsReorderedFrames: frames written out of sequence
// order must be rejected at the codec layer.
func TestTCPReduceDetectsReorderedFrames(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	grad := []float32{1, 2, 3, 4}
	hold := make(chan struct{})
	go func() {
		raw := dialRaw(t, coord.Addr())
		defer raw.Close()
		WriteFrame(raw, FrameHello, 0, helloPayload(protoVersion, 2, 1)) //nolint:errcheck
		var g, e []byte
		g = appendGradPayload(g, 0, 0, &BatchGrad{Index: 1, Grad: grad})
		e = appendEndPayload(e, 0, 0, 1, nil)
		// Swap the wire order of seq 1 and seq 2.
		WriteFrame(raw, FrameGradEnd, 2, e) //nolint:errcheck
		WriteFrame(raw, FrameGrad, 1, g)    //nolint:errcheck
		<-hold
	}()
	rootGroup, err := coord.Accept(2, joinTimeout)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	root := NewReducer(rootGroup)
	defer root.Close()
	sum := make([]float32, len(grad))
	_, rootErr := root.Reduce(0, 2, []BatchGrad{{Index: 0, Grad: grad}}, sum)
	close(hold)
	if rootErr == nil || !strings.Contains(rootErr.Error(), "sequence") {
		t.Fatalf("reordered frames: err = %v, want sequence violation", rootErr)
	}
}
