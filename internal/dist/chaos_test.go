package dist

import (
	"net"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// chaosPair returns a real loopback TCP connection with a fault layer
// spliced under the root's end.
func chaosPair(t *testing.T) (*faultinject.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, aerr := ln.Accept()
		ch <- res{c, aerr}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return faultinject.WrapConn(client), r.c
}

// TestPartitionTripsFailureDetector splices the connection-level fault
// layer under a live group link and cuts it mid-step: the heartbeat
// failure detector on BOTH sides must classify the silence as
// recoverable peer loss within its detection bound — a partition looks
// exactly like a crashed peer, which is the point of the detector.
func TestPartitionTripsFailureDetector(t *testing.T) {
	fc, workerSide := chaosPair(t)

	root, err := NewGroup(0, 2, []Conn{nil, NewStreamConn(fc)})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := NewGroup(1, 2, []Conn{NewStreamConn(workerSide), nil})
	if err != nil {
		t.Fatal(err)
	}
	const hbInterval, hbTimeout = 50 * time.Millisecond, 500 * time.Millisecond
	root.startLiveness(hbInterval, hbTimeout)
	worker.startLiveness(hbInterval, hbTimeout)
	defer root.Close()
	defer worker.Close()

	// One clean step proves the fault layer is transparent while disarmed.
	const nParams, G = 5, 2
	workerErr := make(chan error, 2)
	go func() {
		sum := make([]float32, nParams)
		_, werr := NewReducer(worker).Reduce(0, G, elasticContrib(1, 2, G, nParams), sum)
		workerErr <- werr
	}()
	sum := make([]float32, nParams)
	if _, err := NewReducer(root).Reduce(0, G, elasticContrib(0, 2, G, nParams), sum); err != nil {
		t.Fatalf("pre-partition reduce: %v", err)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("pre-partition worker reduce: %v", werr)
	}
	checkSum(t, "pre-partition", sum, elasticWant(G, nParams))

	// Cut the link. The next step must fail as PEER LOSS on both sides
	// inside the detection bound, not hang and not surface a fatal error.
	fc.Partition()
	go func() {
		s := make([]float32, nParams)
		_, werr := NewReducer(worker).Reduce(1, G, elasticContrib(1, 2, G, nParams), s)
		workerErr <- werr
	}()
	start := time.Now()
	_, rerr := NewReducer(root).Reduce(1, G, elasticContrib(0, 2, G, nParams), sum)
	detection := time.Since(start)
	if !IsPeerLost(rerr) {
		t.Fatalf("root reduce across a partition: %v, want peer-lost", rerr)
	}
	if detection > 10*hbTimeout {
		t.Fatalf("detector took %v, want within a few heartbeat timeouts (%v)", detection, hbTimeout)
	}
	select {
	case werr := <-workerErr:
		if !IsPeerLost(werr) {
			t.Fatalf("worker reduce across a partition: %v, want peer-lost", werr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never detected the partition")
	}
}

// TestDelayedLinkStillCompletes: latency alone (well under the
// heartbeat timeout per frame) must never be classified as failure.
func TestDelayedLinkStillCompletes(t *testing.T) {
	fc, workerSide := chaosPair(t)
	root, err := NewGroup(0, 2, []Conn{nil, NewStreamConn(fc)})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := NewGroup(1, 2, []Conn{NewStreamConn(workerSide), nil})
	if err != nil {
		t.Fatal(err)
	}
	root.startLiveness(50*time.Millisecond, 800*time.Millisecond)
	worker.startLiveness(50*time.Millisecond, 800*time.Millisecond)
	defer root.Close()
	defer worker.Close()

	fc.Delay(20 * time.Millisecond)
	const nParams, G = 5, 2
	workerErr := make(chan error, 1)
	go func() {
		s := make([]float32, nParams)
		_, werr := NewReducer(worker).Reduce(0, G, elasticContrib(1, 2, G, nParams), s)
		workerErr <- werr
	}()
	sum := make([]float32, nParams)
	if _, err := NewReducer(root).Reduce(0, G, elasticContrib(0, 2, G, nParams), sum); err != nil {
		t.Fatalf("reduce over a slow link: %v", err)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker over a slow link: %v", werr)
	}
	checkSum(t, "slow link", sum, elasticWant(G, nParams))
}
