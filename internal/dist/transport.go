package dist

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/telemetry"
)

var (
	mFramesSent = telemetry.GetCounter("dist.frames_sent")
	mFramesRecv = telemetry.GetCounter("dist.frames_recv")
	mBytesSent  = telemetry.GetCounter("dist.bytes_sent")
	mFrameErrs  = telemetry.GetCounter("dist.frame_errors")
)

// Conn is one reliable, ordered frame link to a peer worker. Send is
// safe for concurrent use; Recv must have a single consumer (the reduce
// protocol has exactly one per link).
type Conn interface {
	Send(t FrameType, payload []byte) error
	Recv() (FrameType, []byte, error)
	Close() error
}

// streamConn frames an underlying byte stream — a TCP connection in
// production, a net.Pipe end for the in-process loopback — with
// per-direction sequence numbers so duplicated, dropped or reordered
// frames are detected at Recv.
type streamConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	sendMu  sync.Mutex
	sendSeq uint64
	recvSeq uint64
}

// NewStreamConn wraps a byte stream in the frame codec.
func NewStreamConn(rwc io.ReadWriteCloser) Conn {
	return &streamConn{rwc: rwc, br: bufio.NewReader(rwc)}
}

func (c *streamConn) Send(t FrameType, payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := WriteFrame(c.rwc, t, c.sendSeq, payload); err != nil {
		mFrameErrs.Inc()
		return err
	}
	c.sendSeq++
	if telemetry.Enabled() {
		mFramesSent.Inc()
		mBytesSent.Add(int64(frameHeaderLen + len(payload)))
	}
	return nil
}

func (c *streamConn) Recv() (FrameType, []byte, error) {
	t, payload, err := ReadFrame(c.br, c.recvSeq)
	if err != nil {
		if err != io.EOF {
			mFrameErrs.Inc()
		}
		return 0, nil, err
	}
	c.recvSeq++
	if telemetry.Enabled() {
		mFramesRecv.Inc()
	}
	return t, payload, nil
}

func (c *streamConn) Close() error { return c.rwc.Close() }

// Group is one worker's membership in a reduce group: its rank, the
// world size, and its frame links in a star topology — the root (rank 0)
// holds one conn per peer, every other rank holds a single conn to the
// root.
type Group struct {
	rank    int
	world   int
	traceID uint64 // run correlation id shared by the whole group (0 = untraced)
	conns   []Conn // indexed by peer rank; nil where no link exists
}

// NewGroup assembles a group from pre-established links. conns is
// indexed by peer rank: the root passes one conn per non-root rank, a
// non-root rank passes only conns[0]. Exposed so tests can splice
// fault-injecting links into the topology.
func NewGroup(rank, world int, conns []Conn) (*Group, error) {
	if world < 1 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("dist: invalid rank %d for world size %d", rank, world)
	}
	if len(conns) != world {
		return nil, fmt.Errorf("dist: got %d conn slots, want %d (one per rank)", len(conns), world)
	}
	return &Group{rank: rank, world: world, conns: conns}, nil
}

// Rank returns this worker's rank in [0, World).
func (g *Group) Rank() int { return g.rank }

// World returns the number of workers in the group.
func (g *Group) World() int { return g.world }

// TraceID returns the run correlation id the group was joined under:
// the coordinator's run id after a TCP join, the process's run id for
// loopback groups, 0 for hand-assembled (NewGroup) test groups.
func (g *Group) TraceID() uint64 { return g.traceID }

// conn returns the link to peer, which must exist in this topology.
func (g *Group) conn(peer int) Conn {
	c := g.conns[peer]
	if c == nil {
		panic(fmt.Sprintf("dist: rank %d has no link to rank %d", g.rank, peer))
	}
	return c
}

// Close closes every link of this group member.
func (g *Group) Close() error {
	var first error
	for _, c := range g.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Loopback wires a world of in-process workers into a star topology over
// synchronous in-memory pipes. The pipes run the exact frame codec the
// TCP transport uses, so local multi-worker runs and tests exercise the
// production framing, checksumming and sequence tracking.
func Loopback(world int) ([]*Group, error) {
	if world < 1 {
		return nil, fmt.Errorf("dist: world size %d, want >= 1", world)
	}
	// All loopback ranks live in this process and share its run id.
	runID := telemetry.EnsureTraceID()
	groups := make([]*Group, world)
	root := &Group{rank: 0, world: world, traceID: runID, conns: make([]Conn, world)}
	groups[0] = root
	for r := 1; r < world; r++ {
		a, b := net.Pipe()
		root.conns[r] = NewStreamConn(a)
		g := &Group{rank: r, world: world, traceID: runID, conns: make([]Conn, world)}
		g.conns[0] = NewStreamConn(b)
		groups[r] = g
	}
	return groups, nil
}
