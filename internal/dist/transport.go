package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

var (
	mFramesSent = telemetry.GetCounter("dist.frames_sent")
	mFramesRecv = telemetry.GetCounter("dist.frames_recv")
	mBytesSent  = telemetry.GetCounter("dist.bytes_sent")
	mFrameErrs  = telemetry.GetCounter("dist.frame_errors")
	mHeartbeats = telemetry.GetCounter("dist.heartbeats")
)

// Conn is one reliable, ordered frame link to a peer worker. Send is
// safe for concurrent use; Recv must have a single consumer (the reduce
// protocol has exactly one per link).
type Conn interface {
	Send(t FrameType, payload []byte) error
	Recv() (FrameType, []byte, error)
	Close() error
}

// frameTimeouter is optionally implemented by Conns that can bound
// every frame exchange with a deadline: once armed, each Recv must
// yield a frame within recv and each Send must complete within send.
// The elastic failure detector arms it on every link — heartbeats
// guarantee frame traffic on a live link, so an expired deadline means
// the peer (or the path to it) is gone, not merely slow.
type frameTimeouter interface {
	SetFrameTimeouts(recv, send time.Duration)
}

// streamConn frames an underlying byte stream — a TCP connection in
// production, a net.Pipe end for the in-process loopback — with
// per-direction sequence numbers so duplicated, dropped or reordered
// frames are detected at Recv.
type streamConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	// nc is rwc when the stream supports deadlines (net.TCPConn and
	// net.Pipe both do); nil otherwise. recvTimeout/sendTimeout of 0
	// leave the stream fully blocking — the classic, non-elastic mode.
	nc          net.Conn
	recvTimeout time.Duration
	sendTimeout time.Duration

	sendMu  sync.Mutex
	sendSeq uint64
	recvSeq uint64
}

// NewStreamConn wraps a byte stream in the frame codec.
func NewStreamConn(rwc io.ReadWriteCloser) Conn {
	c := &streamConn{rwc: rwc, br: bufio.NewReader(rwc)}
	if nc, ok := rwc.(net.Conn); ok {
		c.nc = nc
	}
	return c
}

// SetFrameTimeouts arms per-frame deadlines (0 disables a direction).
// No-op when the underlying stream cannot carry deadlines.
func (c *streamConn) SetFrameTimeouts(recv, send time.Duration) {
	if c.nc == nil {
		return
	}
	c.sendMu.Lock()
	c.recvTimeout = recv
	c.sendTimeout = send
	c.sendMu.Unlock()
}

func (c *streamConn) Send(t FrameType, payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.sendTimeout)) //nolint:errcheck // best-effort deadline
	}
	if err := WriteFrame(c.rwc, t, c.sendSeq, payload); err != nil {
		mFrameErrs.Inc()
		return err
	}
	c.sendSeq++
	if telemetry.Enabled() {
		mFramesSent.Inc()
		mBytesSent.Add(int64(frameHeaderLen + len(payload)))
	}
	return nil
}

func (c *streamConn) Recv() (FrameType, []byte, error) {
	if c.nc != nil {
		c.sendMu.Lock()
		rt := c.recvTimeout
		c.sendMu.Unlock()
		if rt > 0 {
			// The deadline covers the whole frame, so it must exceed the
			// largest frame's transfer time; heartbeats re-arm it at every
			// Recv in the liveness loop.
			c.nc.SetReadDeadline(time.Now().Add(rt)) //nolint:errcheck // best-effort deadline
		}
	}
	t, payload, err := ReadFrame(c.br, c.recvSeq)
	if err != nil {
		if err != io.EOF {
			mFrameErrs.Inc()
		}
		return 0, nil, err
	}
	c.recvSeq++
	if telemetry.Enabled() {
		mFramesRecv.Inc()
	}
	return t, payload, nil
}

func (c *streamConn) Close() error { return c.rwc.Close() }

// Group is one worker's membership in a reduce group: its rank, the
// world size, and its frame links in a star topology — the root (rank 0)
// holds one conn per peer, every other rank holds a single conn to the
// root.
type Group struct {
	rank    int
	world   int
	traceID uint64 // run correlation id shared by the whole group (0 = untraced)
	epoch   uint64 // membership epoch (0 for non-elastic groups)
	conns   []Conn // indexed by peer rank; nil where no link exists

	// Liveness config, set by startLiveness for elastic groups: hbTimeout
	// > 0 makes the reducer treat transport failures and frame-deadline
	// expiries as recoverable peer loss instead of fatal errors.
	hbTimeout time.Duration
	hbStop    chan struct{}
	hbWG      sync.WaitGroup
	closeOnce sync.Once
	abortOnce sync.Once
	closeErr  error
}

// NewGroup assembles a group from pre-established links. conns is
// indexed by peer rank: the root passes one conn per non-root rank, a
// non-root rank passes only conns[0]. Exposed so tests can splice
// fault-injecting links into the topology.
func NewGroup(rank, world int, conns []Conn) (*Group, error) {
	if world < 1 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("dist: invalid rank %d for world size %d", rank, world)
	}
	if len(conns) != world {
		return nil, fmt.Errorf("dist: got %d conn slots, want %d (one per rank)", len(conns), world)
	}
	return &Group{rank: rank, world: world, conns: conns}, nil
}

// Rank returns this worker's rank in [0, World).
func (g *Group) Rank() int { return g.rank }

// World returns the number of workers in the group.
func (g *Group) World() int { return g.world }

// TraceID returns the run correlation id the group was joined under:
// the coordinator's run id after a TCP join, the process's run id for
// loopback groups, 0 for hand-assembled (NewGroup) test groups.
func (g *Group) TraceID() uint64 { return g.traceID }

// Epoch returns the membership epoch: 0 for classic (non-elastic)
// groups, and the coordinator-assigned incarnation counter for elastic
// ones — it increments on every regroup and stale-epoch rejoins are
// rejected.
func (g *Group) Epoch() uint64 { return g.epoch }

// HeartbeatTimeout returns the liveness deadline armed on this group's
// links, or 0 for a classic group with no failure detector.
func (g *Group) HeartbeatTimeout() time.Duration { return g.hbTimeout }

// conn returns the link to peer, which must exist in this topology.
func (g *Group) conn(peer int) Conn {
	c := g.conns[peer]
	if c == nil {
		panic(fmt.Sprintf("dist: rank %d has no link to rank %d", g.rank, peer))
	}
	return c
}

// startLiveness turns the group's links into a failure detector: every
// link is armed with read/write frame deadlines of timeout, and a
// background sender per link emits a heartbeat frame every interval so
// a live peer always has traffic inside the deadline — even while both
// sides compute between protocol frames. Detection latency is bounded
// by timeout; a peer that is merely slow keeps its link alive through
// the heartbeats alone.
func (g *Group) startLiveness(interval, timeout time.Duration) {
	if interval <= 0 || timeout <= 0 {
		return
	}
	g.hbTimeout = timeout
	g.hbStop = make(chan struct{})
	var hb [8]byte
	binary.LittleEndian.PutUint64(hb[:], g.traceID)
	for _, c := range g.conns {
		if c == nil {
			continue
		}
		if tc, ok := c.(frameTimeouter); ok {
			tc.SetFrameTimeouts(timeout, timeout)
		}
		g.hbWG.Add(1)
		go func(c Conn) {
			defer g.hbWG.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-g.hbStop:
					return
				case <-tick.C:
					// A send error means the link is down; the protocol path
					// discovers the same thing on its own deadline, so the
					// beacon just retires quietly.
					if err := c.Send(FrameHeartbeat, hb[:]); err != nil {
						return
					}
					mHeartbeats.Inc()
				}
			}
		}(c)
	}
}

// Abort abandons the in-flight step on purpose: a best-effort abort
// frame (carrying reason) tells every peer to stop waiting and rejoin,
// then the links close. Idempotent, and safe to call concurrently with
// Close.
func (g *Group) Abort(reason string) {
	g.abortOnce.Do(func() {
		payload := make([]byte, 8, 8+len(reason))
		binary.LittleEndian.PutUint64(payload, g.traceID)
		payload = append(payload, reason...)
		for _, c := range g.conns {
			if c == nil {
				continue
			}
			c.Send(FrameAbort, payload) //nolint:errcheck // best-effort: the close below fails peers loudly anyway
		}
	})
	g.Close() //nolint:errcheck // abort is already the error path
}

// Close stops the heartbeat senders and closes every link of this group
// member. Idempotent: the reducer's error path, Abort and the owner's
// deferred Close may all race it.
func (g *Group) Close() error {
	g.closeOnce.Do(func() {
		if g.hbStop != nil {
			close(g.hbStop)
		}
		for _, c := range g.conns {
			if c == nil {
				continue
			}
			if err := c.Close(); err != nil && g.closeErr == nil {
				g.closeErr = err
			}
		}
		// The senders exit on hbStop or on their first send error against
		// the closed links; wait so no goroutine outlives the group.
		g.hbWG.Wait()
	})
	return g.closeErr
}

// Loopback wires a world of in-process workers into a star topology over
// synchronous in-memory pipes. The pipes run the exact frame codec the
// TCP transport uses, so local multi-worker runs and tests exercise the
// production framing, checksumming and sequence tracking.
func Loopback(world int) ([]*Group, error) {
	if world < 1 {
		return nil, fmt.Errorf("dist: world size %d, want >= 1", world)
	}
	// All loopback ranks live in this process and share its run id.
	runID := telemetry.EnsureTraceID()
	groups := make([]*Group, world)
	root := &Group{rank: 0, world: world, traceID: runID, conns: make([]Conn, world)}
	groups[0] = root
	for r := 1; r < world; r++ {
		a, b := net.Pipe()
		root.conns[r] = NewStreamConn(a)
		g := &Group{rank: r, world: world, traceID: runID, conns: make([]Conn, world)}
		g.conns[0] = NewStreamConn(b)
		groups[r] = g
	}
	return groups, nil
}
