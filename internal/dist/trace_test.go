package dist

import (
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestJoinPropagatesRunID: after a TCP join every rank's group must
// carry the coordinator's (nonzero) run trace id.
func TestJoinPropagatesRunID(t *testing.T) {
	groups := joinTCP(t, 3)
	root := groups[0].TraceID()
	if root == 0 {
		t.Fatal("coordinator group has no run id")
	}
	for r, g := range groups {
		if g.TraceID() != root {
			t.Fatalf("rank %d joined run %016x, coordinator is run %016x", r, g.TraceID(), root)
		}
	}
}

// TestLoopbackSharesRunID: all in-process groups share one run id.
func TestLoopbackSharesRunID(t *testing.T) {
	groups, err := Loopback(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	if groups[0].TraceID() == 0 {
		t.Fatal("loopback groups have no run id")
	}
	for r, g := range groups {
		if g.TraceID() != groups[0].TraceID() {
			t.Fatalf("rank %d has a different run id", r)
		}
	}
}

// TestReduceRejectsCrossedRuns: a gradient tagged with a different
// nonzero run id must fail the reduce — two fleets sharing a port by
// misconfiguration must not fold each other's gradients.
func TestReduceRejectsCrossedRuns(t *testing.T) {
	a, b := net.Pipe()
	rootG := &Group{rank: 0, world: 2, traceID: 0x1111, conns: []Conn{nil, NewStreamConn(a)}}
	workG := &Group{rank: 1, world: 2, traceID: 0x2222, conns: []Conn{NewStreamConn(b), nil}}
	grad := []float32{1, 2, 3}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sum := make([]float32, len(grad))
		// The reduce tears the transport down on error, so this worker
		// fails too; the root error is the one asserted on.
		NewReducer(workG).Reduce(0, 2, []BatchGrad{{Index: 1, Grad: grad}}, sum) //nolint:errcheck
	}()
	sum := make([]float32, len(grad))
	_, rootErr := NewReducer(rootG).Reduce(0, 2, []BatchGrad{{Index: 0, Grad: grad}}, sum)
	<-done
	if rootErr == nil || !strings.Contains(rootErr.Error(), "run") {
		t.Fatalf("crossed-run reduce: err = %v, want run mismatch", rootErr)
	}
}

// TestGradEndCarriesFleetSnapshot: with telemetry enabled, a reduce
// must deliver each worker's metrics snapshot to the root registry so
// rank 0's /metrics exposes the whole group.
func TestGradEndCarriesFleetSnapshot(t *testing.T) {
	prev := telemetry.SetDefault(telemetry.NewRegistry())
	telemetry.Enable()
	t.Cleanup(func() {
		telemetry.Disable()
		telemetry.SetDefault(prev)
	})
	telemetry.GetCounter("dist.test_snap_marker").Inc()

	const world, groupSize = 2, 2
	groups, err := Loopback(world)
	if err != nil {
		t.Fatal(err)
	}
	grad := []float32{1, 2, 3, 4}
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sum := make([]float32, len(grad))
			_, errs[r] = NewReducer(groups[r]).Reduce(0, groupSize, []BatchGrad{{Index: r, Grad: grad, Seen: 1}}, sum)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	snaps := telemetry.Default().PeerSnaps()
	if len(snaps) != 1 || snaps[0].Rank != 1 {
		t.Fatalf("root gathered %d peer snaps (%+v), want one from rank 1", len(snaps), snaps)
	}
	if snaps[0].Snap.Counters["dist.test_snap_marker"] == 0 {
		t.Fatal("gathered snapshot is missing the marker counter")
	}
}
