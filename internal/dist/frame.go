// Package dist is the horizontal scale-out layer: a length-prefixed,
// checksummed frame codec, point-to-point frame transports (in-process
// loopback pipes for tests and local multi-worker runs, TCP for
// multi-process runs), and a deterministic gradient reducer for
// data-parallel training.
//
// Design goals, in order:
//
//  1. Corruption is DETECTED, never trained through. Every frame carries
//     a magic word, a per-direction sequence number and a CRC-32C over
//     its payload, so a truncated, bit-flipped, duplicated or reordered
//     byte stream fails the reduce with an explicit error instead of
//     silently folding a corrupt gradient into every worker's weights.
//  2. The reduce is DETERMINISTIC. Per-batch gradients are folded in
//     global batch-index order — never arrival order — so the summed
//     gradient is bit-identical across runs, worker counts and network
//     timing (see reduce.go).
//  3. The loopback and TCP transports share one codec path: the loopback
//     is a net.Pipe under the same streamConn, so in-process tests
//     exercise the exact framing production uses.
package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameType tags the protocol role of a frame.
type FrameType uint8

const (
	// FrameHello is the join handshake a dialing worker sends first:
	// {proto version, world, rank} as u32s plus its u64 run trace id
	// (0 when it has none yet).
	FrameHello FrameType = 1 + iota
	// FrameGrad carries one batch's gradient contribution to the root.
	FrameGrad
	// FrameGradEnd marks the end of a worker's contributions for one
	// step and carries {step, count} so the root can cross-check.
	FrameGradEnd
	// FrameSum is the root's broadcast of the folded gradient plus the
	// per-batch metadata every rank replays.
	FrameSum
	// FrameWelcome is the coordinator's reply to an accepted hello:
	// {u64 run trace id, u32 assigned rank, u32 world, u64 membership
	// epoch}, so every rank tags its metrics, spans and logs with the
	// same correlation id and knows which incarnation of the group it
	// belongs to.
	FrameWelcome
	// FrameHeartbeat is a liveness beacon: group members exchange it in
	// the background so a peer that stops producing ANY frames within the
	// heartbeat timeout is declared dead, while a slow-but-alive peer
	// (long compute between protocol frames) keeps refreshing its
	// deadline. Payload: {u64 run trace id}. Receivers consume heartbeats
	// transparently at any protocol point.
	FrameHeartbeat
	// FrameAbort tears a membership epoch down on purpose: the sender is
	// abandoning the in-flight step (peer declared dead, regroup starting,
	// stale rejoin rejected). Payload: {u64 run trace id} followed by a
	// human-readable reason.
	FrameAbort
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameGrad:
		return "grad"
	case FrameGradEnd:
		return "grad-end"
	case FrameSum:
		return "sum"
	case FrameWelcome:
		return "welcome"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameAbort:
		return "abort"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame layout (all integers little-endian):
//
//	u32  magic "ODQF"
//	u8   type
//	u64  sequence number (per direction, starting at 0)
//	u32  payload length
//	u32  CRC-32C(payload)
//	     payload
const (
	frameHeaderLen = 4 + 1 + 8 + 4 + 4
	// MaxFramePayload bounds a single frame so a corrupted length field
	// errors out instead of attempting a huge allocation.
	MaxFramePayload = 1 << 28
)

var frameMagic = binary.LittleEndian.Uint32([]byte("ODQF"))

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64),
// the same polynomial the checkpoint format uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, seq uint64, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("dist: frame payload %d bytes exceeds limit %d", len(payload), MaxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = byte(t)
	binary.LittleEndian.PutUint64(hdr[5:], seq)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[17:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dist: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("dist: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r and verifies its magic, sequence
// number and checksum. wantSeq is the expected per-direction sequence
// number: a mismatch means a frame was duplicated, dropped or reordered
// in transit and the stream cannot be trusted. A clean EOF before any
// header byte propagates as io.EOF (peer closed between frames); every
// other shortfall is an explicit corruption error.
func ReadFrame(r io.Reader, wantSeq uint64) (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("dist: truncated frame header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != frameMagic {
		return 0, nil, fmt.Errorf("dist: bad frame magic %08x (stream corrupt or desynchronized)", got)
	}
	t := FrameType(hdr[4])
	seq := binary.LittleEndian.Uint64(hdr[5:])
	if seq != wantSeq {
		return 0, nil, fmt.Errorf("dist: frame sequence %d, want %d: frame was duplicated, dropped or reordered", seq, wantSeq)
	}
	n := binary.LittleEndian.Uint32(hdr[13:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("dist: frame claims %d payload bytes, limit %d (length field corrupt)", n, MaxFramePayload)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[17:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: truncated %s frame payload (want %d bytes): %w", t, n, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return 0, nil, fmt.Errorf("dist: %s frame checksum mismatch (header %08x, computed %08x): payload corrupt", t, wantCRC, got)
	}
	return t, payload, nil
}
