package dist

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// elasticTestOpts keeps the failure detector fast enough for tests but
// slow enough that scheduler hiccups do not fake a death.
var elasticTestOpts = ElasticOptions{
	JoinTimeout:       10 * time.Second,
	RegroupTimeout:    3 * time.Second,
	HeartbeatInterval: 50 * time.Millisecond,
	HeartbeatTimeout:  600 * time.Millisecond,
	MaxRegroups:       4,
}

// elasticContrib builds rank's shard of a groupSize-batch step: one
// deterministic gradient per owned batch index.
func elasticContrib(rank, world, groupSize, nParams int) []BatchGrad {
	var out []BatchGrad
	for idx := rank; idx < groupSize; idx += world {
		g := make([]float32, nParams)
		for i := range g {
			g[i] = float32(idx+1) * float32(i+1)
		}
		out = append(out, BatchGrad{Index: idx, Loss: float32(idx), Seen: 1, Grad: g})
	}
	return out
}

// elasticWant is the fold of every batch in [0, groupSize) as built by
// elasticContrib — independent of how the batches were sharded.
func elasticWant(groupSize, nParams int) []float32 {
	sum := make([]float32, nParams)
	for idx := 0; idx < groupSize; idx++ {
		for i := range sum {
			sum[i] += float32(idx+1) * float32(i+1)
		}
	}
	return sum
}

func checkSum(t *testing.T, who string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: sum has %d values, want %d", who, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: sum[%d] = %g, want %g", who, i, got[i], want[i])
		}
	}
}

// freeAddr reserves an ephemeral port and releases it, so a test can
// dial an address BEFORE anything listens on it.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Regression for the start-order bug: a worker launched before the
// coordinator binds its socket must retry its dial and join normally,
// not fail permanently on the first connection refusal.
func TestDialRetriesUntilCoordinatorListens(t *testing.T) {
	addr := freeAddr(t)
	type joinRes struct {
		g   *Group
		err error
	}
	ch := make(chan joinRes, 1)
	go func() {
		g, err := Dial(addr, 1, 2, 10*time.Second)
		ch <- joinRes{g, err}
	}()
	// Let the worker rack up a few refused dials first.
	time.Sleep(300 * time.Millisecond)
	g0, err := Listen(addr, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer g0.Close()
	r := <-ch
	if r.err != nil {
		t.Fatalf("worker launched before the coordinator failed to join: %v", r.err)
	}
	defer r.g.Close()
	if r.g.Rank() != 1 || r.g.World() != 2 {
		t.Fatalf("joined as rank %d of %d, want 1 of 2", r.g.Rank(), r.g.World())
	}
}

// The tentpole end to end at the dist layer: a three-member fleet loses
// one worker mid-step; the failure is classified as recoverable peer
// loss on every survivor, the fleet regroups at world 2 in a new
// membership epoch, and the post-regroup reduce folds correctly.
func TestElasticRegroupAfterWorkerDeath(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 3, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const nParams = 16

	type survivorRes struct {
		world int
		epoch uint64
		sum   []float32
		err   error
	}
	survivorCh := make(chan survivorRes, 1)
	go func() {
		w := NewElasticWorker(coord.Addr(), 3, elasticTestOpts)
		defer w.Close()
		g, err := w.Join()
		if err != nil {
			survivorCh <- survivorRes{err: fmt.Errorf("join: %w", err)}
			return
		}
		red := NewReducer(g)
		sum := make([]float32, nParams)
		if _, err := red.Reduce(0, 3, elasticContrib(g.Rank(), 3, 3, nParams), sum); err != nil {
			survivorCh <- survivorRes{err: fmt.Errorf("step 0: %w", err)}
			return
		}
		// Step 1 dies with the peer; the survivor must see recoverable
		// peer loss, not a fatal protocol error.
		_, err = red.Reduce(1, 3, elasticContrib(g.Rank(), 3, 3, nParams), sum)
		if err == nil {
			survivorCh <- survivorRes{err: errors.New("step 1 succeeded with a dead peer")}
			return
		}
		if !IsPeerLost(err) {
			survivorCh <- survivorRes{err: fmt.Errorf("step 1 error is not peer loss: %w", err)}
			return
		}
		g2, err := w.Join()
		if err != nil {
			survivorCh <- survivorRes{err: fmt.Errorf("rejoin: %w", err)}
			return
		}
		red2 := NewReducer(g2)
		sum2 := make([]float32, nParams)
		if _, err := red2.Reduce(0, 2, elasticContrib(g2.Rank(), 2, 2, nParams), sum2); err != nil {
			survivorCh <- survivorRes{err: fmt.Errorf("post-regroup reduce: %w", err)}
			return
		}
		survivorCh <- survivorRes{world: g2.World(), epoch: g2.Epoch(), sum: sum2}
	}()

	victimDead := make(chan error, 1)
	go func() {
		w := NewElasticWorker(coord.Addr(), 3, elasticTestOpts)
		g, err := w.Join()
		if err != nil {
			victimDead <- err
			return
		}
		red := NewReducer(g)
		sum := make([]float32, nParams)
		if _, err := red.Reduce(0, 3, elasticContrib(g.Rank(), 3, 3, nParams), sum); err != nil {
			victimDead <- err
			return
		}
		// Hard death, no goodbye: the links just vanish (the in-process
		// stand-in for SIGKILL).
		g.Close()
		victimDead <- nil
	}()

	g, err := coord.Join()
	if err != nil {
		t.Fatalf("initial formation: %v", err)
	}
	if g.World() != 3 || g.Epoch() != 1 {
		t.Fatalf("formed world %d epoch %d, want 3/1", g.World(), g.Epoch())
	}
	red := NewReducer(g)
	sum := make([]float32, nParams)
	if _, err := red.Reduce(0, 3, elasticContrib(0, 3, 3, nParams), sum); err != nil {
		t.Fatalf("root step 0: %v", err)
	}
	checkSum(t, "root step 0", sum, elasticWant(3, nParams))
	if err := <-victimDead; err != nil {
		t.Fatalf("victim before death: %v", err)
	}
	_, err = red.Reduce(1, 3, elasticContrib(0, 3, 3, nParams), sum)
	if err == nil {
		t.Fatal("root step 1 succeeded with a dead peer")
	}
	if !IsPeerLost(err) {
		t.Fatalf("root step 1 error is not peer loss: %v", err)
	}
	g2, err := coord.Join()
	if err != nil {
		t.Fatalf("regroup: %v", err)
	}
	if g2.World() != 2 || g2.Epoch() != 2 {
		t.Fatalf("regrouped at world %d epoch %d, want 2/2", g2.World(), g2.Epoch())
	}
	red2 := NewReducer(g2)
	sum2 := make([]float32, nParams)
	if _, err := red2.Reduce(0, 2, elasticContrib(0, 2, 2, nParams), sum2); err != nil {
		t.Fatalf("root post-regroup reduce: %v", err)
	}
	checkSum(t, "root post-regroup", sum2, elasticWant(2, nParams))

	s := <-survivorCh
	if s.err != nil {
		t.Fatalf("survivor: %v", s.err)
	}
	if s.world != 2 || s.epoch != 2 {
		t.Fatalf("survivor regrouped at world %d epoch %d, want 2/2", s.world, s.epoch)
	}
	checkSum(t, "survivor post-regroup", s.sum, elasticWant(2, nParams))
}

// A peer that is merely SLOW — stalled well past the liveness deadline
// before contributing — must stay in the group: its heartbeat beacons
// keep the link's frame deadline fresh while it computes.
func TestElasticStalledPeerStaysAlive(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 2, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const nParams = 8
	workerErr := make(chan error, 1)
	go func() {
		w := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
		defer w.Close()
		g, err := w.Join()
		if err != nil {
			workerErr <- err
			return
		}
		// Twice the liveness deadline with no protocol traffic at all.
		time.Sleep(2 * elasticTestOpts.HeartbeatTimeout)
		red := NewReducer(g)
		sum := make([]float32, nParams)
		_, err = red.Reduce(0, 2, elasticContrib(g.Rank(), 2, 2, nParams), sum)
		workerErr <- err
	}()
	g, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	red := NewReducer(g)
	sum := make([]float32, nParams)
	if _, err := red.Reduce(0, 2, elasticContrib(0, 2, 2, nParams), sum); err != nil {
		t.Fatalf("root reduce with a stalled peer: %v", err)
	}
	checkSum(t, "root", sum, elasticWant(2, nParams))
	if err := <-workerErr; err != nil {
		t.Fatalf("stalled worker: %v", err)
	}
}

// The mirror image: the ROOT takes longer than the liveness deadline to
// run its reduce while the worker is already parked waiting for the
// sum. The root's heartbeats must keep the worker's read deadline
// fresh, and the worker's receive path must skip them transparently.
func TestElasticHeartbeatDuringLongReduce(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 2, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const nParams = 8
	workerErr := make(chan error, 1)
	go func() {
		w := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
		defer w.Close()
		g, err := w.Join()
		if err != nil {
			workerErr <- err
			return
		}
		red := NewReducer(g)
		sum := make([]float32, nParams)
		_, err = red.Reduce(0, 2, elasticContrib(g.Rank(), 2, 2, nParams), sum)
		workerErr <- err
	}()
	g, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	// The worker has sent its shard and is blocked on the sum for far
	// longer than the liveness deadline.
	time.Sleep(2 * elasticTestOpts.HeartbeatTimeout)
	red := NewReducer(g)
	sum := make([]float32, nParams)
	if _, err := red.Reduce(0, 2, elasticContrib(0, 2, 2, nParams), sum); err != nil {
		t.Fatalf("slow root reduce: %v", err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("worker waiting through a long reduce: %v", err)
	}
}

// Membership changes are serialized: a second Join while one is already
// collecting must be rejected, not queued.
func TestElasticRegroupDuringRegroupRejected(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 2, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	firstErr := make(chan error, 1)
	go func() {
		g, err := coord.Join()
		if err == nil {
			defer g.Close()
		}
		firstErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // first Join is now collecting
	if _, err := coord.Join(); err == nil || !strings.Contains(err.Error(), "regroup already in progress") {
		t.Fatalf("concurrent Join: got %v, want regroup-in-progress rejection", err)
	}
	// A legitimate worker completes the first formation cleanly.
	w := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
	defer w.Close()
	if _, err := w.Join(); err != nil {
		t.Fatalf("worker join: %v", err)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("first Join: %v", err)
	}
}

// A hello announcing a membership epoch the coordinator has never
// formed is a stale or foreign joiner: rejected with an abort frame the
// worker treats as permanent (no pointless retry loop).
func TestElasticStaleEpochRejected(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 2, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	formErr := make(chan error, 1)
	go func() {
		g, err := coord.Join()
		if err == nil {
			defer g.Close()
		}
		formErr <- err
	}()
	stale := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
	stale.epoch = 7 // claims to survive an epoch that never existed
	if _, err := stale.Join(); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("stale-epoch join: got %v, want rejection", err)
	}
	w := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
	defer w.Close()
	if _, err := w.Join(); err != nil {
		t.Fatalf("legitimate join after stale rejection: %v", err)
	}
	if err := <-formErr; err != nil {
		t.Fatalf("formation: %v", err)
	}
}

// When the LAST peer dies, the regroup window closes empty and the
// coordinator continues solo at world 1 — capacity degrades to a
// single-worker run instead of the whole fleet dying.
func TestElasticShrinkToSolo(t *testing.T) {
	coord, err := ElasticListen("127.0.0.1:0", 2, elasticTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const nParams = 8
	died := make(chan error, 1)
	go func() {
		w := NewElasticWorker(coord.Addr(), 2, elasticTestOpts)
		g, err := w.Join()
		if err != nil {
			died <- err
			return
		}
		red := NewReducer(g)
		sum := make([]float32, nParams)
		if _, err := red.Reduce(0, 2, elasticContrib(g.Rank(), 2, 2, nParams), sum); err != nil {
			died <- err
			return
		}
		g.Close() // hard death
		died <- nil
	}()
	g, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	red := NewReducer(g)
	sum := make([]float32, nParams)
	if _, err := red.Reduce(0, 2, elasticContrib(0, 2, 2, nParams), sum); err != nil {
		t.Fatalf("step 0: %v", err)
	}
	if err := <-died; err != nil {
		t.Fatalf("peer before death: %v", err)
	}
	if _, err := red.Reduce(1, 2, elasticContrib(0, 2, 2, nParams), sum); err == nil {
		t.Fatal("step 1 succeeded with a dead peer")
	}
	g2, err := coord.Join()
	if err != nil {
		t.Fatalf("solo regroup: %v", err)
	}
	if g2.World() != 1 || g2.Epoch() != 2 {
		t.Fatalf("solo regroup gave world %d epoch %d, want 1/2", g2.World(), g2.Epoch())
	}
	red2 := NewReducer(g2)
	sum2 := make([]float32, nParams)
	if _, err := red2.Reduce(0, 2, elasticContrib(0, 1, 2, nParams), sum2); err != nil {
		t.Fatalf("solo reduce: %v", err)
	}
	checkSum(t, "solo", sum2, elasticWant(2, nParams))
}
