package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "layer", "value")
	tb.AddRow("C1", 0.5)
	tb.AddRow("C2", float32(1.25))
	tb.AddRow("C10", 100)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "layer", "C10", "0.5", "1.25", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		2:        "2",
		0.5:      "0.5",
		0.12345:  "0.1235",
		12345.6:  "1.23e+04",
		0.000012: "1.2e-05",
		0:        "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Percentile(vals, 0) != 1 || Percentile(vals, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(vals, 0.5) != 3 {
		t.Fatalf("median = %v", Percentile(vals, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be reordered.
	if vals[0] != 5 {
		t.Fatal("Percentile must not mutate input")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("geomean of nonpositive must be 0")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty aggregates must be 0")
	}
}

func TestPctAndBar(t *testing.T) {
	if Pct(0.256) != "25.6%" {
		t.Fatalf("Pct = %q", Pct(0.256))
	}
	b := Bar(0.5, 10)
	if len(b) != 10 || strings.Count(b, "#") != 5 {
		t.Fatalf("Bar = %q", b)
	}
	if strings.Count(Bar(2, 10), "#") != 10 || strings.Count(Bar(-1, 10), "#") != 0 {
		t.Fatal("Bar must clamp")
	}
}
