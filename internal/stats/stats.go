// Package stats provides the small table/series rendering and summary
// helpers shared by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple fixed-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (4 significant decimals, trimmed).
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 1000 || (math.Abs(v) < 0.001 && v != 0) {
		return fmt.Sprintf("%.3g", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Percentile returns the p-th percentile (0..1) of values (copied, sorted).
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(values)))
}

// Pct renders a 0..1 fraction as "NN.N%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Bar renders a crude horizontal bar for terminal output.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
