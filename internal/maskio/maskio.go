// Package maskio serializes per-layer inference profiles — geometry, MAC
// counts and the ODQ sensitivity bit masks — to a compact binary format.
// This is the artifact the paper's methodology revolves around (§5.2: the
// framework dumps binary mask maps, the simulator consumes them); here it
// decouples odq-infer (produce profiles) from odq-sim (model performance
// and energy) the same way.
package maskio

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/quant"
	"repro/internal/tensor"
)

const version = 1

// layerDTO is the on-disk form of one layer profile; masks are bit-packed.
type layerDTO struct {
	Name             string
	Index            int
	Geom             tensor.ConvGeom
	Batch            int
	TotalOutputs     int64
	SensitiveOutputs int64
	HighInputMACs    int64
	TotalMACs        int64
	MaskBits         int64
	Mask             []byte
}

type fileDTO struct {
	Version int
	Layers  []layerDTO
}

// PackMask bit-packs a boolean mask (LSB-first within each byte).
func PackMask(mask []bool) []byte {
	out := make([]byte, (len(mask)+7)/8)
	for i, b := range mask {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// UnpackMask expands n bits from a packed mask.
func UnpackMask(packed []byte, n int) ([]bool, error) {
	if len(packed) < (n+7)/8 {
		return nil, fmt.Errorf("maskio: packed mask holds %d bytes, need %d", len(packed), (n+7)/8)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = packed[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// Write serializes profiles to w.
func Write(w io.Writer, profiles []*quant.LayerProfile) error {
	f := fileDTO{Version: version}
	for _, p := range profiles {
		d := layerDTO{
			Name:             p.Name,
			Index:            p.Index,
			Geom:             p.Geom,
			Batch:            p.Batch,
			TotalOutputs:     p.TotalOutputs,
			SensitiveOutputs: p.SensitiveOutputs,
			HighInputMACs:    p.HighInputMACs,
			TotalMACs:        p.TotalMACs,
		}
		if len(p.Mask) > 0 {
			d.MaskBits = int64(len(p.Mask))
			d.Mask = PackMask(p.Mask)
		}
		f.Layers = append(f.Layers, d)
	}
	return gob.NewEncoder(w).Encode(&f)
}

// Read deserializes profiles from r.
func Read(r io.Reader) ([]*quant.LayerProfile, error) {
	var f fileDTO
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("maskio: decode: %w", err)
	}
	if f.Version != version {
		return nil, fmt.Errorf("maskio: unsupported version %d", f.Version)
	}
	var out []*quant.LayerProfile
	for _, d := range f.Layers {
		p := &quant.LayerProfile{
			Name:             d.Name,
			Index:            d.Index,
			Geom:             d.Geom,
			Batch:            d.Batch,
			TotalOutputs:     d.TotalOutputs,
			SensitiveOutputs: d.SensitiveOutputs,
			HighInputMACs:    d.HighInputMACs,
			TotalMACs:        d.TotalMACs,
		}
		if d.MaskBits > 0 {
			mask, err := UnpackMask(d.Mask, int(d.MaskBits))
			if err != nil {
				return nil, fmt.Errorf("maskio: layer %s: %w", d.Name, err)
			}
			p.Mask = mask
		}
		out = append(out, p)
	}
	return out, nil
}
