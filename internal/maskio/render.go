package maskio

import (
	"fmt"
	"io"
)

// RenderASCII draws an h×w boolean mask as '#'/'.' rows, downsampling to
// at most maxDim rows/columns.
func RenderASCII(mask []bool, h, w, maxDim int) []string {
	if maxDim <= 0 {
		maxDim = 32
	}
	stepY := (h + maxDim - 1) / maxDim
	stepX := (w + maxDim - 1) / maxDim
	if stepY < 1 {
		stepY = 1
	}
	if stepX < 1 {
		stepX = 1
	}
	var out []string
	for y := 0; y < h; y += stepY {
		line := make([]byte, 0, w/stepX+1)
		for x := 0; x < w; x += stepX {
			// A downsampled cell is "set" if any member bit is set,
			// so sparse sensitivity stays visible.
			set := false
			for yy := y; yy < y+stepY && yy < h && !set; yy++ {
				for xx := x; xx < x+stepX && xx < w; xx++ {
					if mask[yy*w+xx] {
						set = true
						break
					}
				}
			}
			if set {
				line = append(line, '#')
			} else {
				line = append(line, '.')
			}
		}
		out = append(out, string(line))
	}
	return out
}

// WritePGM writes an h×w boolean mask as a binary PGM image (sensitive =
// white). PGM is the simplest portable grayscale format and opens
// anywhere.
func WritePGM(w io.Writer, mask []bool, height, width int) error {
	if height*width != len(mask) {
		return fmt.Errorf("maskio: mask has %d bits, want %d×%d", len(mask), height, width)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	row := make([]byte, width)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if mask[y*width+x] {
				row[x] = 255
			} else {
				row[x] = 0
			}
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
