package maskio

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(100)
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = rng.Intn(2) == 1
		}
		packed := PackMask(mask)
		back, err := UnpackMask(packed, n)
		if err != nil {
			return false
		}
		for i := range mask {
			if mask[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPackDensity(t *testing.T) {
	mask := make([]bool, 17)
	if got := len(PackMask(mask)); got != 3 {
		t.Fatalf("17 bits should pack into 3 bytes, got %d", got)
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	if _, err := UnpackMask([]byte{0}, 9); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestWriteReadProfiles(t *testing.T) {
	g := tensor.Geometry(4, 8, 8, 6, 3, 1, 1)
	mask := make([]bool, 6*64)
	for i := 0; i < 50; i++ {
		mask[i*7%len(mask)] = true
	}
	sens := int64(0)
	for _, m := range mask {
		if m {
			sens++
		}
	}
	in := []*quant.LayerProfile{
		{Name: "c1", Index: 0, Geom: g, Batch: 1,
			TotalOutputs: int64(len(mask)), SensitiveOutputs: sens,
			HighInputMACs: 123, TotalMACs: g.TotalMACs(), Mask: mask},
		{Name: "c2", Index: 1, Geom: g, Batch: 2,
			TotalOutputs: 99, SensitiveOutputs: 7, TotalMACs: 1000},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("layers %d", len(out))
	}
	p := out[0]
	if p.Name != "c1" || p.SensitiveOutputs != sens || p.TotalMACs != g.TotalMACs() {
		t.Fatalf("metadata wrong: %+v", p)
	}
	for i := range mask {
		if p.Mask[i] != mask[i] {
			t.Fatalf("mask bit %d wrong", i)
		}
	}
	if out[1].Mask != nil {
		t.Fatal("maskless layer must round-trip as maskless")
	}
	if out[1].Batch != 2 || out[1].HighInputMACs != 0 {
		t.Fatalf("second layer wrong: %+v", out[1])
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestRenderASCII(t *testing.T) {
	mask := make([]bool, 16)
	mask[0], mask[5], mask[10], mask[15] = true, true, true, true // diagonal
	lines := RenderASCII(mask, 4, 4, 8)
	if len(lines) != 4 {
		t.Fatalf("lines %d", len(lines))
	}
	if lines[0][0] != '#' || lines[1][1] != '#' || lines[0][1] != '.' {
		t.Fatalf("diagonal render wrong: %v", lines)
	}
}

func TestRenderASCIIDownsamples(t *testing.T) {
	mask := make([]bool, 64*64)
	mask[63] = true // one sensitive bit in the top-right corner
	lines := RenderASCII(mask, 64, 64, 16)
	if len(lines) != 16 || len(lines[0]) != 16 {
		t.Fatalf("downsample shape %dx%d", len(lines), len(lines[0]))
	}
	// Any-set semantics must keep the lone bit visible.
	if lines[0][15] != '#' {
		t.Fatal("downsampling lost the sensitive bit")
	}
}

func TestWritePGM(t *testing.T) {
	mask := []bool{true, false, false, true}
	var buf bytes.Buffer
	if err := WritePGM(&buf, mask, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pix := out[len(out)-4:]
	if pix[0] != 255 || pix[1] != 0 || pix[2] != 0 || pix[3] != 255 {
		t.Fatalf("bad pixels: %v", pix)
	}
}

func TestWritePGMSizeMismatch(t *testing.T) {
	if err := WritePGM(&bytes.Buffer{}, []bool{true}, 2, 2); err == nil {
		t.Fatal("size mismatch must error")
	}
}
