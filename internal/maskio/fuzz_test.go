package maskio

import (
	"bytes"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// FuzzRead asserts the profile decoder never panics: truncated, mutated
// or garbage input must produce an error, not a crash, because odq-sim
// consumes mask files produced by arbitrary (possibly interrupted)
// odq-infer runs.
func FuzzRead(f *testing.F) {
	// Committed seed corpus: a valid file, a mask-bearing valid file,
	// and characteristic corruptions of both.
	var plain bytes.Buffer
	if err := Write(&plain, []*quant.LayerProfile{{
		Name: "C1", Index: 0,
		Geom:         tensor.ConvGeom{InC: 3, OutC: 8, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8, OutH: 8, OutW: 8},
		Batch:        2,
		TotalOutputs: 128, SensitiveOutputs: 40,
		HighInputMACs: 1000, TotalMACs: 4000,
	}}); err != nil {
		f.Fatal(err)
	}
	mask := make([]bool, 37) // deliberately not a multiple of 8
	for i := range mask {
		mask[i] = i%3 == 0
	}
	var masked bytes.Buffer
	if err := Write(&masked, []*quant.LayerProfile{{
		Name: "C2", Index: 1, Batch: 1,
		TotalOutputs: 37, Mask: mask,
	}}); err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{
		plain.Bytes(),
		masked.Bytes(),
		plain.Bytes()[:len(plain.Bytes())/2],
		masked.Bytes()[:8],
		{},
		[]byte("not a gob stream at all"),
	} {
		f.Add(seed)
	}
	// A length-lying mutation: claim more mask bits than bytes present.
	lying := append([]byte(nil), masked.Bytes()...)
	if len(lying) > 20 {
		lying[len(lying)-10] ^= 0x7f
	}
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		profiles, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent: every returned
		// mask length matches its recorded bit count.
		for _, p := range profiles {
			if p == nil {
				t.Fatal("nil profile from nil error")
			}
		}
	})
}

// FuzzUnpackMask: the bit-unpacker must reject short buffers and
// round-trip everything else.
func FuzzUnpackMask(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, 9)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xaa}, 3)
	f.Add([]byte{0x01}, 64)
	f.Fuzz(func(t *testing.T, packed []byte, n int) {
		if n < 0 || n > 1<<20 {
			return
		}
		mask, err := UnpackMask(packed, n)
		if err != nil {
			return
		}
		if len(mask) != n {
			t.Fatalf("unpacked %d bits, want %d", len(mask), n)
		}
		repacked := PackMask(mask)
		if n > 0 && !bytes.Equal(repacked, packed[:(n+7)/8]) {
			// Only the bits below n are significant; PackMask zeroes the
			// padding bits, so compare bit-by-bit instead.
			for i := 0; i < n; i++ {
				want := packed[i/8]&(1<<uint(i%8)) != 0
				if mask[i] != want {
					t.Fatalf("bit %d: unpacked %v, want %v", i, mask[i], want)
				}
			}
		}
	})
}
