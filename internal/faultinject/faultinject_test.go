package faultinject

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/train"
)

// testNet builds a small trainable CNN; inject selects whether the
// second conv is wrapped with a NaN injector (returned when so).
func testNet(seed int64, mode Where, after int, inject bool) (*nn.Sequential, *NaNInjector) {
	rng := tensor.NewRNG(seed)
	conv2 := nn.NewConv2D("c2", 8, 16, 3, 1, 1, false, rng)
	var mid nn.Module = conv2
	var inj *NaNInjector
	if inject {
		inj = NewNaNInjector(conv2, mode, after)
		mid = inj
	}
	net := nn.NewSequential("fi",
		nn.NewConv2D("c1", 3, 8, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b1", 8),
		nn.NewReLU("r1"),
		mid,
		nn.NewBatchNorm2D("b2", 16),
		nn.NewReLU("r2"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 16, 4, rng),
	)
	return net, inj
}

func encodeCheckpoint(t *testing.T) []byte {
	t.Helper()
	net, _ := testNet(1, InForward, 0, false)
	state, err := nn.StateTensors(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = ckpt.Write(&buf, &ckpt.Checkpoint{
		Model: state,
		RNG:   &ckpt.RNGState{Seed: 1},
		Progress: &ckpt.Progress{
			Epoch: 2, Step: 64, LR: 0.01,
			Loss: []float32{1.5, 1.1}, TrainAcc: []float64{0.4, 0.6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncationAlwaysDetected: a checkpoint cut at ANY byte boundary
// must fail to decode — a truncated file silently loading as a shorter
// model would be the worst possible outcome.
func TestTruncationAlwaysDetected(t *testing.T) {
	full := encodeCheckpoint(t)
	for n := 0; n < len(full); n++ {
		if _, err := ckpt.ReadAny(bytes.NewReader(Truncate(full, n))); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
}

// TestBitFlipAlwaysDetected: every single-bit flip anywhere in the file
// — header, section framing, tensor payloads, the checksums themselves —
// must yield a decode error. The whole-file CRC makes this exhaustive
// guarantee possible.
func TestBitFlipAlwaysDetected(t *testing.T) {
	full := encodeCheckpoint(t)
	for bit := 0; bit < len(full)*8; bit++ {
		if _, err := ckpt.ReadAny(bytes.NewReader(BitFlip(full, bit))); err == nil {
			t.Fatalf("bit flip at offset %d (byte %d) decoded without error", bit, bit/8)
		}
	}
}

// TestZeroFillDetected: zero-filled windows (filesystem holes after a
// crash) must be detected whenever they actually change bytes.
func TestZeroFillDetected(t *testing.T) {
	full := encodeCheckpoint(t)
	windows := []struct{ off, n int }{
		{0, 8},               // magic
		{8, 8},               // version + section count
		{20, 16},             // first section framing
		{len(full) / 2, 32},  // mid-payload
		{len(full) - 4, 4},   // whole-file CRC
		{len(full) - 64, 64}, // tail
		{0, len(full)},       // the whole file
		{len(full) / 3, 1},   // single byte
	}
	for _, w := range windows {
		mutated := ZeroFill(full, w.off, w.n)
		if !Changed(full, mutated) {
			continue // zeroing zeros is not a corruption
		}
		if _, err := ckpt.ReadAny(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("zero-fill at [%d,%d) decoded without error", w.off, w.off+w.n)
		}
	}
}

// TestV1GarbageDetected: corrupting the legacy gob format must also
// error out rather than half-load (gob streams are self-describing, so
// truncation inside the tensor data is the dangerous case).
func TestV1TruncationDetected(t *testing.T) {
	net, _ := testNet(1, InForward, 0, false)
	state, err := nn.StateTensors(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ckpt.Write(&buf, &ckpt.Checkpoint{Model: state}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dst, _ := testNet(2, InForward, 0, false)
	for _, n := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if err := nn.Load(bytes.NewReader(Truncate(full, n)), dst); err == nil {
			t.Fatalf("nn.Load of %d/%d bytes succeeded", n, len(full))
		}
	}
}

func trainingData() *dataset.Dataset {
	return dataset.SyntheticImages(4, 64, 3, 12, 12, 3)
}

// counterDelta runs f and returns how much the named counter moved.
func counterDelta(name string, f func()) int64 {
	c := telemetry.GetCounter(name)
	telemetry.Enable()
	defer telemetry.Disable()
	before := c.Value()
	f()
	return c.Value() - before
}

// TestNaNAbortPolicy: an injected NaN gradient must abort training with
// an explicit error and bump the nan_events counter — never be stepped
// into the weights.
func TestNaNAbortPolicy(t *testing.T) {
	net, inj := testNet(5, InBackward, 3, true)
	var fitErr error
	d := counterDelta("train.nan_events", func() {
		_, fitErr = train.Fit(net, trainingData(), train.Options{
			Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 7,
			NaNPolicy: train.NaNAbort,
		})
	})
	if fitErr == nil {
		t.Fatal("NaNAbort must surface an error")
	}
	if !strings.Contains(fitErr.Error(), "non-finite") {
		t.Fatalf("error should name the failure: %v", fitErr)
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired; test is vacuous")
	}
	if d == 0 {
		t.Fatal("train.nan_events must count the detection")
	}
	assertWeightsFinite(t, net)
}

// TestNaNForwardAbortPolicy: a poisoned activation surfaces as a
// non-finite loss and is likewise detected before any backward pass.
func TestNaNForwardAbortPolicy(t *testing.T) {
	net, inj := testNet(6, InForward, 2, true)
	_, err := train.Fit(net, trainingData(), train.Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 7,
		NaNPolicy: train.NaNAbort,
	})
	if err == nil {
		t.Fatal("poisoned activation must abort training")
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired")
	}
	assertWeightsFinite(t, net)
}

// TestNaNSkipPolicy: the poisoned batch is discarded, training completes,
// and the final weights are finite.
func TestNaNSkipPolicy(t *testing.T) {
	net, inj := testNet(8, InBackward, 2, true)
	var hist *train.History
	var fitErr error
	d := counterDelta("train.nan_skipped_steps", func() {
		hist, fitErr = train.Fit(net, trainingData(), train.Options{
			Epochs: 3, BatchSize: 16, LR: 0.05, Seed: 9,
			NaNPolicy: train.NaNSkip,
		})
	})
	if fitErr != nil {
		t.Fatalf("NaNSkip must recover: %v", fitErr)
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired")
	}
	if d == 0 {
		t.Fatal("train.nan_skipped_steps must count the skip")
	}
	if len(hist.Loss) != 3 {
		t.Fatalf("training must complete all epochs, got %d", len(hist.Loss))
	}
	assertWeightsFinite(t, net)
	if hist.Loss[len(hist.Loss)-1] >= hist.Loss[0] {
		t.Fatalf("skip policy must still converge: %v", hist.Loss)
	}
}

// TestNaNRollbackPolicy: training rolls back to the last good state,
// halves the LR and still converges.
func TestNaNRollbackPolicy(t *testing.T) {
	net, inj := testNet(10, InBackward, 6, true)
	var hist *train.History
	var fitErr error
	d := counterDelta("train.nan_rollbacks", func() {
		hist, fitErr = train.Fit(net, trainingData(), train.Options{
			Epochs: 3, BatchSize: 16, LR: 0.05, Seed: 11,
			NaNPolicy: train.NaNRollback,
		})
	})
	if fitErr != nil {
		t.Fatalf("NaNRollback must recover: %v", fitErr)
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired")
	}
	if d == 0 {
		t.Fatal("train.nan_rollbacks must count the restore")
	}
	if len(hist.Loss) != 3 {
		t.Fatalf("training must complete all epochs after rollback, got %d", len(hist.Loss))
	}
	assertWeightsFinite(t, net)
	if hist.Loss[len(hist.Loss)-1] >= hist.Loss[0] {
		t.Fatalf("rollback policy must still converge: %v", hist.Loss)
	}
}

// TestPersistentNaNEventuallyAborts: when the fault fires on every step,
// rollback must give up after MaxRollbacks instead of looping forever.
func TestPersistentNaNEventuallyAborts(t *testing.T) {
	net, inj := testNet(12, InBackward, 0, true)
	inj.Once = false // poison every backward pass
	_, err := train.Fit(net, trainingData(), train.Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 13,
		NaNPolicy: train.NaNRollback, MaxRollbacks: 2,
	})
	if err == nil {
		t.Fatal("a persistent fault must eventually abort")
	}
	if !strings.Contains(err.Error(), "rollback") {
		t.Fatalf("error should mention rollbacks: %v", err)
	}
}

// TestInfInjectionDetected: overflow (±Inf) is screened exactly like NaN.
func TestInfInjectionDetected(t *testing.T) {
	net, inj := testNet(14, InBackward, 1, true)
	inj.Value = float32(math.Inf(1))
	_, err := train.Fit(net, trainingData(), train.Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 15,
		NaNPolicy: train.NaNAbort,
	})
	if err == nil {
		t.Fatal("injected Inf must abort training")
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired")
	}
}

// TestIgnorePolicyPreservesLegacyBehavior: NaNIgnore really does train
// through the poison (the legacy behavior the other policies exist to
// replace) — this pins down that detection is what the policies add,
// not an accident of refactoring.
func TestIgnorePolicyPreservesLegacyBehavior(t *testing.T) {
	net, inj := testNet(16, InBackward, 1, true)
	hist, err := train.Fit(net, trainingData(), train.Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 17,
		NaNPolicy: train.NaNIgnore,
	})
	if err != nil {
		t.Fatalf("NaNIgnore must not error: %v", err)
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired")
	}
	_ = hist
}

func assertWeightsFinite(t *testing.T, net nn.Module) {
	t.Helper()
	for _, p := range net.Params() {
		for i, v := range p.W.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("parameter %s[%d] is non-finite after training: %v", p.Name, i, v)
			}
		}
	}
}
