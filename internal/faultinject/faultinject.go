// Package faultinject provides the byte-level corruptors and
// layer-level NaN injectors the robustness test suites drive: it mutates
// checkpoint bytes (truncation, bit flips, zero-fill) and poisons
// activations or gradients at chosen layers, so tests can assert that
// every corruption is DETECTED — an error or a telemetry counter, never
// a silent wrong result.
//
// Production code never imports this package; it exists so the failure
// paths promised by DESIGN.md §8 are continuously exercised, not just
// described.
package faultinject

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Truncate returns a copy of b cut to n bytes (n clamped to len(b)).
// Models a torn write or a partially transferred file.
func Truncate(b []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(b) {
		n = len(b)
	}
	return append([]byte(nil), b[:n]...)
}

// BitFlip returns a copy of b with the bit at bitOffset inverted.
// Models storage or transport corruption of a single bit.
func BitFlip(b []byte, bitOffset int) []byte {
	out := append([]byte(nil), b...)
	if bitOffset >= 0 && bitOffset < len(out)*8 {
		out[bitOffset/8] ^= 1 << uint(bitOffset%8)
	}
	return out
}

// ZeroFill returns a copy of b with n bytes zeroed starting at off
// (clamped to the slice). Models a hole punched by a filesystem after a
// crash (unwritten extents read back as zeros).
func ZeroFill(b []byte, off, n int) []byte {
	out := append([]byte(nil), b...)
	if off < 0 {
		off = 0
	}
	for i := off; i < off+n && i < len(out); i++ {
		out[i] = 0
	}
	return out
}

// Changed reports whether a corruption actually altered the bytes —
// zero-filling a run of zeros, for instance, is not a corruption and
// detectors cannot be expected to notice it.
func Changed(orig, mutated []byte) bool {
	if len(orig) != len(mutated) {
		return true
	}
	for i := range orig {
		if orig[i] != mutated[i] {
			return true
		}
	}
	return false
}

// Where selects which tensor a NaNInjector poisons.
type Where int

const (
	// InForward poisons the module's forward output (an activation).
	InForward Where = iota
	// InBackward poisons the gradient the module passes upstream.
	InBackward
)

// NaNInjector wraps a module and, on the Nth traversal of the selected
// direction, overwrites one element of the tensor flowing through with
// the configured poison value (NaN by default). It implements nn.Module,
// so tests splice it between layers of a Sequential to model a numeric
// blow-up at a precise point in training.
type NaNInjector struct {
	Inner nn.Module
	// Mode selects forward (activation) or backward (gradient) poisoning.
	Mode Where
	// After is how many traversals pass cleanly before the injection
	// (0 = poison the first one). Counting is per direction.
	After int
	// Value is the poison; zero value means NaN. Use
	// float32(math.Inf(1)) to model an overflow instead.
	Value float32
	// Once limits the injection to a single traversal; otherwise every
	// traversal after the threshold is poisoned.
	Once bool

	fwdCalls, bwdCalls int
	injected           int
}

// NewNaNInjector wraps inner with a NaN injection at the given point.
func NewNaNInjector(inner nn.Module, mode Where, after int) *NaNInjector {
	return &NaNInjector{Inner: inner, Mode: mode, After: after, Once: true}
}

// Injections returns how many times the poison was actually applied.
func (f *NaNInjector) Injections() int { return f.injected }

func (f *NaNInjector) poison(t *tensor.Tensor) {
	if len(t.Data) == 0 {
		return
	}
	v := f.Value
	if v == 0 {
		v = float32(math.NaN())
	}
	// Poison a stride of elements rather than a single one: downstream
	// layers legitimately zero individual gradient elements (ReLU masks,
	// pooling argmax), and a blow-up that is entirely absorbed by such a
	// mask is not a fault at all. A spread models a real numeric
	// explosion, which never corrupts exactly one lane.
	for i := 0; i < len(t.Data); i += 4 {
		t.Data[i] = v
	}
	f.injected++
}

// Forward implements nn.Module.
func (f *NaNInjector) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := f.Inner.Forward(x, train)
	if f.Mode == InForward {
		fire := f.fwdCalls >= f.After && (!f.Once || f.injected == 0)
		f.fwdCalls++
		if fire {
			f.poison(out)
		}
	}
	return out
}

// Backward implements nn.Module.
func (f *NaNInjector) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := f.Inner.Backward(grad)
	if f.Mode == InBackward {
		fire := f.bwdCalls >= f.After && (!f.Once || f.injected == 0)
		f.bwdCalls++
		if fire {
			f.poison(out)
		}
	}
	return out
}

// Params implements nn.Module.
func (f *NaNInjector) Params() []*nn.Param { return f.Inner.Params() }

// Visit implements nn.Module.
func (f *NaNInjector) Visit(fn func(nn.Module)) {
	fn(f)
	f.Inner.Visit(fn)
}
