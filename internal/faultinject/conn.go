package faultinject

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrTornWrite is returned by a Conn write that CloseAfterWrites tore:
// half the bytes went out, then the connection closed — a mid-frame
// link failure.
var ErrTornWrite = errors.New("faultinject: connection torn mid-write")

// Conn wraps a net.Conn with switchable connection-level faults: added
// latency, black-holed writes, a mid-stream tear after N writes, and a
// full partition. It implements net.Conn, so it can be spliced under
// any frame codec that expects one — including dist.NewStreamConn,
// whose deadline arming flows through to the real connection, which is
// what lets a partition trip the heartbeat failure detector exactly the
// way a real network fault would.
//
// Faults are armed from the test goroutine while the protocol runs;
// every toggle is safe for concurrent use.
type Conn struct {
	net.Conn

	mu         sync.Mutex
	delay      time.Duration
	dropWrites bool
	partition  bool
	// tearAfter counts writes until a mid-stream tear; -1 means never.
	tearAfter int
	// readDeadline mirrors the deadline armed on the real conn, so a
	// partitioned read can honor it without any bytes flowing.
	readDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn puts a fault layer under nc. All faults start disarmed; the
// wrapper is transparent until one is switched on.
func WrapConn(nc net.Conn) *Conn {
	return &Conn{Conn: nc, tearAfter: -1, closed: make(chan struct{})}
}

// Delay adds d of latency to every subsequent read and write (0
// removes it). Models a slow or congested path.
func (c *Conn) Delay(d time.Duration) {
	c.mu.Lock()
	c.delay = d
	c.mu.Unlock()
}

// DropWrites black-holes every subsequent write: the caller sees
// success, the peer sees silence. Models an asymmetric link failure.
func (c *Conn) DropWrites() {
	c.mu.Lock()
	c.dropWrites = true
	c.mu.Unlock()
}

// CloseAfterWrites arms a mid-stream tear: the next n writes pass,
// then the following one sends half its bytes and closes the
// connection. Models a link dying inside a frame.
func (c *Conn) CloseAfterWrites(n int) {
	c.mu.Lock()
	c.tearAfter = n
	c.mu.Unlock()
}

// Partition cuts the link both ways without closing it: writes are
// silently dropped and reads block — honoring any armed read deadline
// with os.ErrDeadlineExceeded — exactly the symptom a network
// partition presents to the failure detector.
func (c *Conn) Partition() {
	c.mu.Lock()
	c.partition = true
	c.mu.Unlock()
}

// Heal lifts a partition, delay and write-dropping (not an armed tear):
// the link carries traffic again, modeling a transient fault clearing.
func (c *Conn) Heal() {
	c.mu.Lock()
	c.partition = false
	c.dropWrites = false
	c.delay = 0
	c.mu.Unlock()
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	delay, part, dl := c.delay, c.partition, c.readDeadline
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !part {
		return c.Conn.Read(p)
	}
	// Partitioned: no bytes will ever arrive. Block to the armed
	// deadline (or a close), then fail the same way the kernel would.
	if dl.IsZero() {
		<-c.closed
		return 0, net.ErrClosed
	}
	if wait := time.Until(dl); wait > 0 {
		select {
		case <-time.After(wait):
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	return 0, os.ErrDeadlineExceeded
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.delay
	drop := c.dropWrites || c.partition
	tear := false
	if c.tearAfter == 0 {
		tear = true
		c.tearAfter = -1
	} else if c.tearAfter > 0 {
		c.tearAfter--
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if tear {
		c.Conn.Write(p[:len(p)/2]) //nolint:errcheck // the tear is the point
		c.Close()                  //nolint:errcheck
		return len(p) / 2, ErrTornWrite
	}
	if drop {
		// The caller sees success; the peer sees silence.
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// SetReadDeadline mirrors the deadline locally (for partitioned reads)
// and forwards it to the real connection.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline sets both directions, mirroring the read half.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Close closes the underlying connection and releases any partitioned
// reads parked on the fault layer.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
