package faultinject

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestConnTransparentByDefault(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a)
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := b.Read(buf); err != nil || string(buf) != "ping" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

func TestConnDelay(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a)
	fc.Delay(50 * time.Millisecond)
	go b.Write([]byte("x")) //nolint:errcheck
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delayed read returned in %v, want >= 50ms", elapsed)
	}
}

func TestConnDropWrites(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a)
	fc.DropWrites()
	if n, err := fc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("dropped write reported (%d, %v), want silent success", n, err)
	}
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 4)
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer received bytes a black-holed link should have dropped")
	}
}

func TestConnTearMidWrite(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a)
	fc.CloseAfterWrites(1)
	if _, err := fc.Write([]byte("full frame")); err != nil {
		t.Fatalf("write before the tear: %v", err)
	}
	n, err := fc.Write([]byte("torn frame!!"))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write err = %v, want ErrTornWrite", err)
	}
	if n != 6 {
		t.Fatalf("torn write sent %d bytes, want half (6)", n)
	}
	// The peer sees the intact first write, the half of the second, then
	// EOF — a torn stream, not a clean shutdown.
	got := make([]byte, 0, 32)
	buf := make([]byte, 32)
	b.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	for {
		k, rerr := b.Read(buf)
		got = append(got, buf[:k]...)
		if rerr != nil {
			break
		}
	}
	if string(got) != "full frametorn f" {
		t.Fatalf("peer saw %q, want the intact frame plus half the torn one", got)
	}
}

// TestConnPartitionHonorsDeadline: a partitioned read blocks — no
// data, no error — until the armed deadline, then fails with the
// kernel's own deadline error, so a frame codec above cannot tell the
// fault layer from a real partition.
func TestConnPartitionHonorsDeadline(t *testing.T) {
	a, b := tcpPair(t)
	fc := WrapConn(a)
	fc.Partition()
	go b.Write([]byte("never seen")) //nolint:errcheck

	fc.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	start := time.Now()
	buf := make([]byte, 16)
	_, err := fc.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned read err = %v, want os.ErrDeadlineExceeded", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("partitioned read error %v must be a net.Error timeout", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("partitioned read failed after %v, before the deadline", elapsed)
	}

	// Healing restores the link: the parked bytes come through.
	fc.Heal()
	fc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	n, err := fc.Read(buf)
	if err != nil || string(buf[:n]) != "never seen" {
		t.Fatalf("healed read = %q, %v", buf[:n], err)
	}
}

func TestConnCloseReleasesPartitionedRead(t *testing.T) {
	a, _ := tcpPair(t)
	fc := WrapConn(a)
	fc.Partition()
	done := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("released read err = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not release the partitioned read")
	}
}
