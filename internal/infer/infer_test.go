package infer

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func testNet(t *testing.T, seed int64) *nn.Sequential {
	t.Helper()
	net, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testInput(n int, seed int64) *tensor.Tensor {
	x := tensor.New(n, 1, 28, 28)
	rng := tensor.NewRNG(seed)
	rng.FillUniform(x, 0, 1)
	return x
}

func TestNewFromSchemeUnknownErrors(t *testing.T) {
	if _, err := NewFromScheme("int7"); err == nil {
		t.Fatal("unknown scheme must error, not panic")
	} else if !strings.Contains(err.Error(), "odq") {
		t.Fatalf("error should list valid names, got: %v", err)
	}
}

func TestNewFromSchemeFloatIsNil(t *testing.T) {
	e, err := NewFromScheme("float")
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Fatal("float scheme must yield a nil executor (plain float path)")
	}
}

func TestNewFromSchemeBuildsEveryScheme(t *testing.T) {
	for _, name := range SchemeNames() {
		e, err := NewFromScheme(name, WithThreshold(0.5), WithProfiling())
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		if name != "float" && e == nil {
			t.Fatalf("scheme %s: nil executor", name)
		}
	}
}

func TestSchemeODQThresholdApplied(t *testing.T) {
	e, err := NewFromScheme("odq", WithThreshold(0.7))
	if err != nil {
		t.Fatal(err)
	}
	odq, ok := e.(*core.Exec)
	if !ok {
		t.Fatalf("odq scheme built %T", e)
	}
	if odq.Threshold() != 0.7 {
		t.Fatalf("threshold not applied: got %g", odq.Threshold())
	}
}

// TestSessionMatchesManualConstruction pins that the factory+session path
// is the same computation as the hand-constructed executor install the
// CLIs used to do.
func TestSessionMatchesManualConstruction(t *testing.T) {
	for _, scheme := range []string{"float", "int8", "int8pc", "drq84", "odq"} {
		netA := testNet(t, 3)
		netB := testNet(t, 3)
		x := testInput(2, 7)

		sess, err := NewSession(netA, scheme, WithThreshold(0.5))
		if err != nil {
			t.Fatal(err)
		}
		got := sess.Forward(x)

		execB, err := NewFromScheme(scheme, WithThreshold(0.5))
		if err != nil {
			t.Fatal(err)
		}
		sb, _ := SchemeByName(scheme)
		Install(netB, sb, execB)
		want := netB.Forward(x, false)

		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Fatalf("scheme %s: session output differs from manual construction", scheme)
		}
	}
}

// TestForwardBatchInvariance pins the property dynamic batching relies
// on: running a sample alone is bit-identical to running it inside any
// batch, for every scheme. (The ODQ predictor and the DRQ region
// threshold normalize per sample, activations quantize on a fixed grid,
// and all kernels accumulate per-row in a batch-independent order.)
func TestForwardBatchInvariance(t *testing.T) {
	for _, scheme := range []string{"float", "int8", "int8pc", "drq84", "drq42", "odq"} {
		net := testNet(t, 5)
		sess, err := NewSession(net, scheme, WithThreshold(0.5))
		if err != nil {
			t.Fatal(err)
		}
		batch := testInput(6, 11)
		batched := sess.Forward(batch)
		classes := batched.Shape[1]
		for s := 0; s < batch.Shape[0]; s++ {
			single := sess.Forward(batch.Slice4Batch(s))
			for j := 0; j < classes; j++ {
				if single.Data[j] != batched.Data[s*classes+j] {
					t.Fatalf("scheme %s: sample %d logit %d differs batched vs alone (%g vs %g)",
						scheme, s, j, batched.Data[s*classes+j], single.Data[j])
				}
			}
		}
	}
}
