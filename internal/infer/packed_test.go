package infer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// buildPackedTestNet builds a small flat sequential net covering the
// fusion patterns the pipeline must handle: a float first conv (tail-only
// convention), a conv+bn+act+pool group, and a conv+act group with odd
// channel counts (odd im2col lane counts → bitplane tail words) and odd
// spatial output (odd code count → nibble tail).
func buildPackedTestNet(rng *tensor.RNG) *nn.Sequential {
	randomizeBN := func(bn *nn.BatchNorm2D) {
		for ch := 0; ch < bn.C; ch++ {
			bn.RunningMean.Data[ch] = 0.1 * float32(rng.Normal())
			bn.RunningVar.Data[ch] = 0.5 + rng.Float32()
			bn.Gamma.W.Data[ch] = 0.5 + rng.Float32()
			bn.Beta.W.Data[ch] = 0.1 * float32(rng.Normal())
		}
	}
	act := func(name string, rangeV float32) *quant.QuantReLU {
		a := quant.NewQuantReLU(name, 4)
		a.Range = rangeV
		return a
	}
	conv0 := nn.NewConv2D("conv0", 3, 5, 3, 1, 1, true, rng)
	bn0 := nn.NewBatchNorm2D("bn0", 5)
	randomizeBN(bn0)
	conv1 := nn.NewConv2D("conv1", 5, 7, 3, 1, 1, true, rng)
	bn1 := nn.NewBatchNorm2D("bn1", 7)
	randomizeBN(bn1)
	conv2 := nn.NewConv2D("conv2", 7, 7, 3, 1, 1, false, rng)
	return nn.NewSequential("net",
		conv0, bn0, act("act0", 1),
		conv1, bn1, act("act1", 1.7), nn.NewMaxPool2D("pool1", 2, 2),
		conv2, act("act2", 0.9),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 7*3*3, 4, rng),
	)
}

// TestPackedPipelineBitIdentical is the tentpole acceptance test: the
// packed-domain multi-layer forward must be bit-identical to the float
// round-trip path (executor → float → QuantReLU → re-code) on the same
// net with the same executor, across thresholds, including odd channel
// counts, bitplane tail lanes and nibble tail elements.
func TestPackedPipelineBitIdentical(t *testing.T) {
	for _, th := range []float32{-1, 0, 0.5, 1.0, 1e9} {
		rng := tensor.NewRNG(77)
		net := buildPackedTestNet(rng)
		x := tensor.New(3, 3, 7, 7)
		rng.FillUniform(x, -0.2, 1.2)

		e := core.NewExec(th)
		sess := NewSessionFromExecutor(net, "odq", e, true)
		want := sess.Forward(x)

		if err := sess.EnablePackedDomain(); err != nil {
			t.Fatalf("th=%v: EnablePackedDomain: %v", th, err)
		}
		if got := sess.Pipeline().FusedConvs(); got != 2 {
			t.Fatalf("th=%v: fused %d convs, want 2", th, got)
		}
		got := sess.Forward(x)
		sess.Close()

		if len(got.Data) != len(want.Data) {
			t.Fatalf("th=%v: output length %d vs %d", th, len(got.Data), len(want.Data))
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("th=%v: output %d differs: packed %v float %v", th, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestPackedPipelineLegacyExecutorParity cross-checks the packed pipeline
// against the legacy int-GEMM executor path end to end: two independent
// implementations of the same arithmetic must agree bit-for-bit.
func TestPackedPipelineLegacyExecutorParity(t *testing.T) {
	rng := tensor.NewRNG(78)
	net := buildPackedTestNet(rng)
	x := tensor.New(2, 3, 7, 7)
	rng.FillUniform(x, 0, 1)

	legacy := NewSessionFromExecutor(net, "odq", core.NewExec(0.6, core.WithIntGEMMPredictor()), true)
	want := legacy.Forward(x)
	legacy.Close()

	sess := NewSessionFromExecutor(net, "odq", core.NewExec(0.6), true)
	if err := sess.EnablePackedDomain(); err != nil {
		t.Fatalf("EnablePackedDomain: %v", err)
	}
	got := sess.Forward(x)
	sess.Close()
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("output %d differs: packed-bitplane %v legacy %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestPackedDomainRequiresODQ pins the error paths: non-ODQ schemes and
// relaxed activations must refuse packed-domain compilation.
func TestPackedDomainRequiresODQ(t *testing.T) {
	rng := tensor.NewRNG(79)
	net := buildPackedTestNet(rng)
	sess, err := NewSession(net, "int8")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.EnablePackedDomain(); err == nil {
		t.Fatal("packed domain must be rejected for the int8 scheme")
	}
	sess.Close()

	// Relaxed activations have nothing to requantize: no fusable group.
	net2 := buildPackedTestNet(rng)
	for _, m := range net2.Modules {
		if a, ok := m.(*quant.QuantReLU); ok {
			a.Relaxed = true
		}
	}
	sess2 := NewSessionFromExecutor(net2, "odq", core.NewExec(0.5), true)
	if err := sess2.EnablePackedDomain(); err == nil {
		t.Fatal("packed domain must be rejected when activations are relaxed")
	}
	sess2.Close()
}

// TestPackedDomainSessionOption checks the construction-time opt-in and
// that reloadable state (threshold via exec, weight invalidation) keeps
// working through the pipeline.
func TestPackedDomainSessionOption(t *testing.T) {
	rng := tensor.NewRNG(80)
	net := buildPackedTestNet(rng)
	sess, err := NewSession(net, "odq", WithThreshold(0.5), WithPackedDomain())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if !sess.PackedDomain() {
		t.Fatal("session must report packed domain enabled")
	}
	x := tensor.New(1, 3, 7, 7)
	rng.FillUniform(x, 0, 1)
	out1 := sess.Forward(x)

	// Mutating weights + Invalidate must change the result (cache really
	// dropped), and stay stable afterwards.
	for _, m := range net.Modules {
		if c, ok := m.(*nn.Conv2D); ok && c.Name == "conv1" {
			c.Weight.W.Scale(2)
		}
	}
	sess.Invalidate()
	out2 := sess.Forward(x)
	if tensor.MaxAbsDiff(out1, out2) == 0 {
		t.Fatal("invalidation must pick up rescaled weights through the packed pipeline")
	}
	out3 := sess.Forward(x)
	if tensor.MaxAbsDiff(out2, out3) != 0 {
		t.Fatal("packed pipeline must be deterministic after invalidation")
	}
	sess.Close()
}
