package infer

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// countingExec wraps an Executor and counts InvalidateCache calls — the
// seam for the exactly-once reload contract.
type countingExec struct {
	Executor
	invalidations atomic.Int64
}

func (c *countingExec) InvalidateCache() {
	c.invalidations.Add(1)
	c.Executor.InvalidateCache()
}

// TestReloadInvalidatesExactlyOnce pins the serve hot-reload contract:
// every Reload bumps the generation by one and calls the executor's
// InvalidateCache exactly once per bump — no redundant invalidations (a
// thrashing cache), no missing ones (stale weights).
func TestReloadInvalidatesExactlyOnce(t *testing.T) {
	net := testNet(t, 21)
	inner, err := NewFromScheme("odq", WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ce := &countingExec{Executor: inner}
	sess := NewSessionFromExecutor(net, "odq", ce, true)

	var buf bytes.Buffer
	if err := nn.Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	const reloads = 5
	for i := 1; i <= reloads; i++ {
		if err := sess.Reload(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		if got := sess.Generation(); got != uint64(i) {
			t.Fatalf("after %d reloads: generation %d", i, got)
		}
		if got := ce.invalidations.Load(); got != int64(i) {
			t.Fatalf("after %d reloads: %d InvalidateCache calls (want exactly one per reload)", i, got)
		}
		if sess.Invalidations() != sess.Generation() {
			t.Fatalf("session bookkeeping drifted: %d invalidations vs generation %d",
				sess.Invalidations(), sess.Generation())
		}
	}
}

// TestReloadStaleWeightImpossible extends PR 1's generation test to the
// session reload path: after a hot reload swaps the weights, no
// subsequent Forward may ever see results computed from the old weight
// codes — the reloaded session must be bit-identical to a session built
// fresh on the new weights.
func TestReloadStaleWeightImpossible(t *testing.T) {
	x := testInput(2, 31)

	// Session A: build on seed-1 weights, run (packing seed-1 weight
	// codes into the executor cache), then hot-reload seed-2 weights.
	netA := testNet(t, 1)
	sessA, err := NewSession(netA, "odq", WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	before := sessA.Forward(x)

	netB := testNet(t, 2)
	var buf bytes.Buffer
	if err := nn.Save(&buf, netB); err != nil {
		t.Fatal(err)
	}
	if err := sessA.Reload(&buf); err != nil {
		t.Fatal(err)
	}
	after := sessA.Forward(x)

	// Reference: a fresh session built directly on seed-2 weights.
	netRef := testNet(t, 2)
	sessRef, err := NewSession(netRef, "odq", WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	want := sessRef.Forward(x)

	if tensor.MaxAbsDiff(after, want) != 0 {
		t.Fatal("post-reload output must be bit-identical to a fresh session on the new weights (stale weight codes leaked)")
	}
	if tensor.MaxAbsDiff(before, after) == 0 {
		t.Fatal("reload did not change the output — test net weights too similar to detect staleness")
	}

	// Repeat the forward: the cache now holds the fresh codes and must
	// stay stable.
	again := sessA.Forward(x)
	if tensor.MaxAbsDiff(after, again) != 0 {
		t.Fatal("post-reload cache must be stable across calls")
	}
}

// TestInvalidateAfterDirectMutation covers the non-checkpoint path:
// in-place weight mutation + Invalidate must behave like a reload.
func TestInvalidateAfterDirectMutation(t *testing.T) {
	net := testNet(t, 9)
	sess, err := NewSession(net, "int8")
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(1, 13)
	out1 := sess.Forward(x)

	for _, c := range nn.Convs(net) {
		c.Weight.W.Scale(2)
	}
	sess.Invalidate()
	out2 := sess.Forward(x)
	if tensor.MaxAbsDiff(out1, out2) == 0 {
		t.Fatal("Invalidate must make the executor pick up mutated weights")
	}

	netRef := testNet(t, 9)
	for _, c := range nn.Convs(netRef) {
		c.Weight.W.Scale(2)
	}
	sessRef, err := NewSession(netRef, "int8")
	if err != nil {
		t.Fatal(err)
	}
	want := sessRef.Forward(x)
	if tensor.MaxAbsDiff(out2, want) != 0 {
		t.Fatal("post-invalidation output must match a fresh session on the mutated weights")
	}
}

// TestCorruptReloadLeavesSessionIntact: a reload from garbage must error
// and keep serving the old weights.
func TestCorruptReloadLeavesSessionIntact(t *testing.T) {
	net := testNet(t, 15)
	sess, err := NewSession(net, "odq", WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(1, 17)
	before := sess.Forward(x)
	gen := sess.Generation()

	if err := sess.Reload(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("corrupt checkpoint must error")
	}
	if sess.Generation() != gen {
		t.Fatal("failed reload must not bump the generation")
	}
	after := sess.Forward(x)
	if tensor.MaxAbsDiff(before, after) != 0 {
		t.Fatal("failed reload must leave the weights untouched")
	}
}
