package infer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

var mPackedForwards = telemetry.GetCounter("infer.session.packed_forwards")

// Pipeline is the packed-INT4 quantized-domain execution plan for a flat
// sequential model: conv→(batchnorm)→quantrelu groups run as single fused
// stages whose ODQ executor emits packed 4-bit activation codes, max-pool
// layers pool in the code domain, and only stages that genuinely need
// float (the first image-consuming conv, the classifier head) see a
// dequantized tensor. Activations stay packed between conv layers —
// half the bytes of int32 codes, an eighth of float32 — and the output is
// bit-identical to running the unfused module chain, because every fused
// stage reproduces its modules' float operations exactly (see
// core.Epilogue and tensor.MaxPoolPackedI4).
type Pipeline struct {
	stages []stage
	fused  int
}

// packedValue threads either a float tensor or packed codes between
// stages; exactly one side is non-nil.
type packedValue struct {
	f *tensor.Tensor
	p *tensor.PackedI4
}

type stage interface {
	forward(v packedValue) packedValue
	// consumesPacked reports whether forward accepts packed input
	// directly; the pipeline dequantizes before stages that do not.
	consumesPacked() bool
}

// fusedConvStage runs conv+bn+act as one executor call with a fused
// requantize epilogue, consuming packed codes when available.
type fusedConvStage struct {
	conv *nn.Conv2D
	exec *core.Exec
	epi  *core.Epilogue
}

func (st *fusedConvStage) consumesPacked() bool { return true }

func (st *fusedConvStage) forward(v packedValue) packedValue {
	if v.p != nil {
		return packedValue{p: st.exec.ConvPacked(v.p, st.conv, st.epi)}
	}
	return packedValue{p: st.exec.ConvFused(v.f, st.conv, st.epi)}
}

// poolStage max-pools packed codes in the nibble domain, falling back to
// the float module when handed a float tensor.
type poolStage struct {
	pool *nn.MaxPool2D
}

func (st *poolStage) consumesPacked() bool { return true }

func (st *poolStage) forward(v packedValue) packedValue {
	if v.p != nil {
		return packedValue{p: tensor.MaxPoolPackedI4(v.p, st.pool.K, st.pool.S)}
	}
	return packedValue{f: st.pool.Forward(v.f, false)}
}

// moduleStage runs any other module on the float path.
type moduleStage struct {
	m nn.Module
}

func (st *moduleStage) consumesPacked() bool { return false }

func (st *moduleStage) forward(v packedValue) packedValue {
	return packedValue{f: st.m.Forward(v.f, false)}
}

// CompilePacked builds the packed-domain pipeline for a flat sequential
// model with the given ODQ executor installed. Each conv whose Exec is
// exec, followed by an optional BatchNorm2D and a discretizing QuantReLU
// of the executor's bit width, becomes one fused stage; max-pools become
// code-domain pools; everything else runs unchanged on float. Returns an
// error when the executor or model cannot stay in the packed domain (the
// caller should fall back to the plain module chain).
func CompilePacked(net *nn.Sequential, exec *core.Exec) (*Pipeline, error) {
	if exec == nil {
		return nil, fmt.Errorf("infer: packed domain requires an ODQ executor")
	}
	if exec.Bits() != 4 {
		return nil, fmt.Errorf("infer: packed domain requires 4-bit codes, executor has %d", exec.Bits())
	}
	pl := &Pipeline{}
	mods := net.Modules
	for i := 0; i < len(mods); i++ {
		conv, ok := mods[i].(*nn.Conv2D)
		if ok {
			if st, consumed := fuseConvGroup(conv, mods[i+1:], exec); st != nil {
				pl.stages = append(pl.stages, st)
				pl.fused++
				i += consumed
				continue
			}
		}
		if mp, ok := mods[i].(*nn.MaxPool2D); ok {
			pl.stages = append(pl.stages, &poolStage{pool: mp})
			continue
		}
		pl.stages = append(pl.stages, &moduleStage{m: mods[i]})
	}
	if pl.fused == 0 {
		return nil, fmt.Errorf("infer: no fusable conv→quantrelu group found (packed domain needs the ODQ executor installed and discretizing activations)")
	}
	return pl, nil
}

// fuseConvGroup matches conv(+bn)+quantrelu starting at conv with the
// rest of the module list, returning the fused stage and how many
// trailing modules it consumed (0 when the pattern does not match).
func fuseConvGroup(conv *nn.Conv2D, rest []nn.Module, exec *core.Exec) (stage, int) {
	ce, ok := conv.Exec.(*core.Exec)
	if !ok || ce != exec {
		return nil, 0
	}
	consumed := 0
	var bn *nn.BatchNorm2D
	if len(rest) > consumed {
		if b, ok := rest[consumed].(*nn.BatchNorm2D); ok {
			bn = b
			consumed++
		}
	}
	if len(rest) <= consumed {
		return nil, 0
	}
	act, ok := rest[consumed].(*quant.QuantReLU)
	if !ok || act.Bits != exec.Bits() {
		return nil, 0
	}
	rq, ok := quant.RequantOf(act)
	if !ok {
		return nil, 0
	}
	consumed++
	return &fusedConvStage{
		conv: conv,
		exec: exec,
		epi:  &core.Epilogue{Conv: conv, BN: bn, Act: rq},
	}, consumed
}

// FusedConvs returns how many conv groups run fused in the packed domain.
func (pl *Pipeline) FusedConvs() int { return pl.fused }

// Forward runs one eval-mode pass, keeping activations packed between
// stages that can consume them and dequantizing only at float boundaries.
func (pl *Pipeline) Forward(x *tensor.Tensor) *tensor.Tensor {
	v := packedValue{f: x}
	for _, st := range pl.stages {
		if v.p != nil && !st.consumesPacked() {
			v = packedValue{f: v.p.Dequantize()}
		}
		v = st.forward(v)
	}
	if v.p != nil {
		return v.p.Dequantize()
	}
	return v.f
}
