package infer

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Session telemetry handles.
var (
	mSessionForwards = telemetry.GetCounter("infer.session.forwards")
	mSessionReloads  = telemetry.GetCounter("infer.session.reloads")
)

// Session is a resident inference session: one model with one executor
// installed for the life of the session, replacing the per-call
// construct-install-discard pattern the CLIs used to follow. Residency is
// what makes repeated inference cheap — the executor's per-layer weight
// codes stay packed across calls, and conv scratch comes from the
// process-wide buffer pools — and it is the object the serving layer
// batches requests onto.
//
// Concurrency: Forward is safe to call concurrently with other Forwards
// (executors are concurrency-safe and eval-mode modules cache nothing),
// but NOT concurrently with Reload/Invalidate, which mutate the weight
// tensors in place. Serialize reloads against forwards (the serve batcher
// does this by performing both on its single executor goroutine).
type Session struct {
	net    nn.Module
	scheme *Scheme
	exec   Executor // nil for the float scheme

	// pipeline, when non-nil, replaces the module-chain forward with the
	// packed-INT4 quantized-domain plan (see EnablePackedDomain).
	pipeline *Pipeline

	gen           atomic.Uint64
	invalidations atomic.Uint64
}

// NewSession builds the executor for a scheme, installs it on net
// following the scheme's convention, and returns the resident session.
func NewSession(net nn.Module, scheme string, opts ...Option) (*Session, error) {
	s, err := SchemeByName(scheme)
	if err != nil {
		return nil, err
	}
	exec, err := NewFromScheme(scheme, opts...)
	if err != nil {
		return nil, err
	}
	Install(net, s, exec)
	sess := &Session{net: net, scheme: s, exec: exec}
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if o.packedDomain {
		if err := sess.EnablePackedDomain(); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// NewSessionFromExecutor wraps an already-constructed executor (custom
// options, instrumented wrappers in tests) into a session. The executor
// is installed tail-only when tailOnly is set, on every conv otherwise;
// scheme is a free-form label reported by Scheme().
func NewSessionFromExecutor(net nn.Module, scheme string, exec Executor, tailOnly bool) *Session {
	s := &Scheme{Name: scheme, TailOnly: tailOnly}
	Install(net, s, exec)
	return &Session{net: net, scheme: s, exec: exec}
}

// Net returns the session's model.
func (s *Session) Net() nn.Module { return s.net }

// Exec returns the installed executor (nil for the float scheme).
func (s *Session) Exec() Executor { return s.exec }

// Scheme returns the scheme name the session was built with.
func (s *Session) Scheme() string { return s.scheme.Name }

// Generation returns the weight generation: it starts at 0 and increases
// by exactly one per Reload/Invalidate.
func (s *Session) Generation() uint64 { return s.gen.Load() }

// Invalidations returns how many times the session has invalidated the
// executor's weight caches. The reload contract is exactly one
// invalidation per generation bump — Invalidations() == Generation()
// always — pinned by the serve reload regression test.
func (s *Session) Invalidations() uint64 { return s.invalidations.Load() }

// EnablePackedDomain compiles the packed-INT4 quantized-domain pipeline
// for the session and routes Forward through it. Requires the odq scheme
// at 4-bit codes and a flat sequential model whose conv groups end in
// discretizing QuantReLU layers; the output stays bit-identical to the
// module-chain forward.
func (s *Session) EnablePackedDomain() error {
	exec, ok := s.exec.(*core.Exec)
	if !ok {
		return fmt.Errorf("infer: packed domain requires the odq scheme (session scheme is %q)", s.scheme.Name)
	}
	seq, ok := s.net.(*nn.Sequential)
	if !ok {
		return fmt.Errorf("infer: packed domain requires a flat sequential model, have %T", s.net)
	}
	pl, err := CompilePacked(seq, exec)
	if err != nil {
		return err
	}
	s.pipeline = pl
	return nil
}

// PackedDomain reports whether Forward runs the packed-domain pipeline.
func (s *Session) PackedDomain() bool { return s.pipeline != nil }

// Pipeline returns the compiled packed-domain plan (nil when disabled).
func (s *Session) Pipeline() *Pipeline { return s.pipeline }

// Forward runs one inference pass (eval mode) over a batch.
func (s *Session) Forward(x *tensor.Tensor) *tensor.Tensor {
	sp := telemetry.StartSpan("infer.session.forward")
	defer sp.End()
	mSessionForwards.Inc()
	if s.pipeline != nil {
		mPackedForwards.Inc()
		return s.pipeline.Forward(x)
	}
	return s.net.Forward(x, false)
}

// Invalidate records an in-place weight mutation: it bumps the weight
// generation and drops the executor's packed weight codes exactly once.
// Reload calls it; call it directly after mutating weights yourself.
func (s *Session) Invalidate() {
	s.gen.Add(1)
	s.invalidations.Add(1)
	if s.exec != nil {
		s.exec.InvalidateCache()
	}
}

// Reload hot-swaps the session's weights from a checkpoint stream (v2 or
// legacy v1; architecture must match) and invalidates the executor's
// weight caches exactly once. On error the weights may be partially
// written only if the checkpoint itself was readable but mismatched —
// nn.Load validates names and shapes before copying, so a mismatched or
// corrupt checkpoint leaves the session untouched.
func (s *Session) Reload(r io.Reader) error {
	if err := nn.Load(r, s.net); err != nil {
		return err
	}
	s.Invalidate()
	mSessionReloads.Inc()
	return nil
}

// ReloadFile is Reload from a checkpoint path.
func (s *Session) ReloadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Reload(f); err != nil {
		return fmt.Errorf("reloading %s: %w", path, err)
	}
	return nil
}

// Warmup runs one batch-1 zero-input forward so every layer packs its
// weight codes into the executor caches and the scratch pools reach
// steady state before the first real request pays for it.
func (s *Session) Warmup(c, h, w int) {
	x := tensor.New(1, c, h, w)
	s.Forward(x)
}

// Close uninstalls the executor, restoring the model's plain float path.
// The session must not be used afterwards.
func (s *Session) Close() {
	s.pipeline = nil
	nn.SetConvExec(s.net, nil)
}
