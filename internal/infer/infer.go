// Package infer is the common construction and lifecycle layer over the
// repo's quantized-inference executors. It gives the executor family one
// interface (Executor), one scheme-name registry with one factory
// (NewFromScheme — the single source of truth for valid scheme names,
// shared by odq-infer, odq-serve and the experiment lab), and one
// resident-session object (Session) that owns a model plus its installed
// executor for the lifetime of a serving process: weight codes stay
// packed in the executor's per-layer caches, scratch comes from the
// process-wide pools, and hot reload invalidates those caches exactly
// once per weight swap.
package infer

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/drq"
	"repro/internal/fabric"
	"repro/internal/nn"
	"repro/internal/quant"
)

// Executor is the interface every quantized conv executor in this repo
// satisfies: it can run a convolution in place of the float path, and it
// can drop its packed weight-code caches after a weight mutation.
// Implementations: core.Exec (ODQ), quant.StaticExec, quant.PerChannelExec,
// drq.Exec, fabric.Exec.
type Executor interface {
	nn.ConvExecutor
	// InvalidateCache drops cached weight codes. The contract (from the
	// generation-tracked caches): call it after every weight mutation
	// BEFORE issuing new Conv calls; in-flight Conv calls can never
	// re-populate a cache with stale codes.
	InvalidateCache()
}

// Profiled is implemented by executors that record per-layer profiles
// (everything except the fabric executor).
type Profiled interface {
	Profiles() []*quant.LayerProfile
}

// Compile-time checks that the whole family satisfies Executor.
var (
	_ Executor = (*core.Exec)(nil)
	_ Executor = (*quant.StaticExec)(nil)
	_ Executor = (*quant.PerChannelExec)(nil)
	_ Executor = (*drq.Exec)(nil)
	_ Executor = (*fabric.Exec)(nil)
)

// options collects the cross-scheme construction knobs. Scheme builders
// map them onto their concrete executor's option set; knobs a scheme does
// not have (threshold on a static executor) are ignored.
type options struct {
	threshold     float32
	profiling     bool
	maskRecording bool
	noWeightCache bool
	workers       int
	packedDomain  bool
}

// Option configures NewFromScheme / NewSession.
type Option func(*options)

// WithThreshold sets the sensitivity threshold of the dynamic schemes
// (odq, fabric); static schemes ignore it.
func WithThreshold(t float32) Option {
	return func(o *options) { o.threshold = t }
}

// WithProfiling enables per-layer profile recording on schemes that
// support it.
func WithProfiling() Option {
	return func(o *options) { o.profiling = true }
}

// WithMaskRecording enables profiling and retains per-output sensitivity
// masks (odq only; implies WithProfiling there).
func WithMaskRecording() Option {
	return func(o *options) { o.maskRecording = true }
}

// WithoutWeightCache disables weight-code caching on schemes that cache
// (use while weights mutate every step, e.g. threshold-aware retraining).
func WithoutWeightCache() Option {
	return func(o *options) { o.noWeightCache = true }
}

// WithWorkers caps executor parallelism on schemes that fan out (odq).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithPackedDomain makes NewSession compile the packed-INT4
// quantized-domain pipeline (odq scheme on a flat sequential model only;
// construction fails otherwise). NewFromScheme ignores it.
func WithPackedDomain() Option {
	return func(o *options) { o.packedDomain = true }
}

// Scheme describes one quantization scheme selectable by name.
type Scheme struct {
	// Name is the canonical CLI spelling (e.g. "int8", "drq84", "odq").
	Name string
	// Description is a one-line human summary for -help output.
	Description string
	// TailOnly marks dynamic schemes that keep the first
	// (image-consuming) conv at baseline precision, per DoReFa practice
	// (see nn.SetConvExecTail).
	TailOnly bool
	// build constructs the executor; nil for the plain float path.
	build func(o options) Executor
}

// schemes is the single source of truth for valid scheme names, in
// canonical (help/reporting) order. Everything that parses a -scheme
// flag goes through NewFromScheme / SchemeByName.
var schemes = []Scheme{
	{Name: "float", Description: "plain float32 inference (no executor)"},
	{Name: "int16", Description: "static INT16, per-tensor scales",
		build: func(o options) Executor { return quant.NewStaticExec(16, staticOpts(o)...) }},
	{Name: "int8", Description: "static INT8, per-tensor scales",
		build: func(o options) Executor { return quant.NewStaticExec(8, staticOpts(o)...) }},
	{Name: "int4", Description: "static INT4, per-tensor scales",
		build: func(o options) Executor { return quant.NewStaticExec(4, staticOpts(o)...) }},
	{Name: "int8pc", Description: "static INT8, per-output-channel weight scales",
		build: func(o options) Executor { return quant.NewPerChannelExec(8, perChannelOpts(o)...) }},
	{Name: "int4pc", Description: "static INT4, per-output-channel weight scales",
		build: func(o options) Executor { return quant.NewPerChannelExec(4, perChannelOpts(o)...) }},
	{Name: "drq84", Description: "DRQ input-directed dynamic quantization, 8/4 bits", TailOnly: true,
		build: func(o options) Executor { return drq.NewExec(8, 4, drqOpts(o)...) }},
	{Name: "drq42", Description: "DRQ input-directed dynamic quantization, 4/2 bits", TailOnly: true,
		build: func(o options) Executor { return drq.NewExec(4, 2, drqOpts(o)...) }},
	{Name: "odq", Description: "ODQ output-directed dynamic quantization (INT4 codes, 2-bit predictor)", TailOnly: true,
		build: func(o options) Executor { return core.NewExec(o.threshold, odqOpts(o)...) }},
	{Name: "fabric", Description: "ODQ through the modeled accelerator datapath (validation; very slow)", TailOnly: true,
		build: func(o options) Executor { return fabric.New(fabric.WithThreshold(o.threshold)) }},
}

func staticOpts(o options) []quant.StaticOption {
	var opts []quant.StaticOption
	if o.profiling || o.maskRecording {
		opts = append(opts, quant.WithStaticProfiling())
	}
	return opts
}

func perChannelOpts(o options) []quant.PerChannelOption {
	var opts []quant.PerChannelOption
	if o.profiling || o.maskRecording {
		opts = append(opts, quant.WithPerChannelProfiling())
	}
	return opts
}

func drqOpts(o options) []drq.Option {
	var opts []drq.Option
	if o.profiling || o.maskRecording {
		opts = append(opts, drq.WithProfiling())
	}
	return opts
}

func odqOpts(o options) []core.Option {
	var opts []core.Option
	if o.profiling {
		opts = append(opts, core.WithProfiling())
	}
	if o.maskRecording {
		opts = append(opts, core.WithMaskRecording())
	}
	if o.noWeightCache {
		opts = append(opts, core.WithoutWeightCache())
	}
	if o.workers != 0 {
		opts = append(opts, core.WithWorkers(o.workers))
	}
	return opts
}

// SchemeNames returns the valid scheme names in canonical order.
func SchemeNames() []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name
	}
	return out
}

// SchemeHelp returns the comma-joined scheme names for flag help text.
func SchemeHelp() string { return strings.Join(SchemeNames(), ", ") }

// SchemeByName returns the scheme descriptor for a canonical name, or an
// error naming the valid alternatives.
func SchemeByName(name string) (*Scheme, error) {
	for i := range schemes {
		if schemes[i].Name == name {
			return &schemes[i], nil
		}
	}
	return nil, fmt.Errorf("infer: unknown scheme %q (want one of %s)", name, SchemeHelp())
}

// NewFromScheme builds the executor for a scheme name. The "float" scheme
// returns a nil Executor (the plain float path: install nothing). Unknown
// names return an error, never a panic.
func NewFromScheme(name string, opts ...Option) (Executor, error) {
	s, err := SchemeByName(name)
	if err != nil {
		return nil, err
	}
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if s.build == nil {
		return nil, nil
	}
	return s.build(o), nil
}

// Install installs exec on net following the scheme's convention: every
// conv for static schemes, every conv but the first for dynamic ones.
// A nil exec restores the float path everywhere.
func Install(net nn.Module, s *Scheme, exec Executor) {
	if exec == nil {
		nn.SetConvExec(net, nil)
		return
	}
	if s != nil && s.TailOnly {
		nn.SetConvExecTail(net, exec)
		return
	}
	nn.SetConvExec(net, exec)
}
