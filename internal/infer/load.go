package infer

import (
	"fmt"
	"os"

	"repro/internal/models"
	"repro/internal/nn"
)

// LoadModel builds the named architecture and, when ckptPath is nonempty,
// restores its weights from the checkpoint (v2 or legacy v1). It is the
// shared build-then-load step of odq-infer and odq-serve; an empty
// ckptPath yields the randomly initialized network (useful for smoke
// tests and demos).
func LoadModel(name string, cfg models.Config, ckptPath string) (*nn.Sequential, error) {
	net, err := models.Build(name, cfg)
	if err != nil {
		return nil, err
	}
	if ckptPath == "" {
		return net, nil
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := nn.Load(f, net); err != nil {
		return nil, fmt.Errorf("loading %s: %w (was the checkpoint trained with different -model/-width/-qat flags?)", ckptPath, err)
	}
	return net, nil
}
