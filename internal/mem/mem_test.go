package mem

import (
	"testing"

	"repro/internal/tensor"
)

func TestSmallLayerSinglePass(t *testing.T) {
	s := DefaultSystem()
	g := tensor.Geometry(16, 32, 32, 32, 3, 1, 1)
	tr, err := s.ConvTraffic(g, 1, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tiles != 1 || tr.InputPasses != 1 {
		t.Fatalf("small layer should need one pass: %+v", tr)
	}
	wantW := int64(32*16*9) * 4 / 8
	wantA := int64(16*32*32) * 4 / 8
	wantO := int64(32*32*32) * 4 / 8
	if tr.DRAMBytes != wantW+wantA+wantO {
		t.Fatalf("DRAM bytes %d, want %d", tr.DRAMBytes, wantW+wantA+wantO)
	}
	if tr.DRAMCycles <= 0 || tr.BufferBytes <= 0 {
		t.Fatalf("degenerate cycles/traffic: %+v", tr)
	}
}

func TestBigLayerTiles(t *testing.T) {
	s := DefaultSystem()
	// 512×512×3×3 at 8 bits = 2.25 MB of weights > 0.17 MB buffer.
	g := tensor.Geometry(512, 8, 8, 512, 3, 1, 1)
	tr, err := s.ConvTraffic(g, 1, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tiles < 10 {
		t.Fatalf("2.25MB of weights in a 0.17MB buffer needs many tiles, got %d", tr.Tiles)
	}
	// Input traffic must scale with passes.
	single, _ := s.ConvTraffic(tensor.Geometry(512, 8, 8, 4, 3, 1, 1), 1, 8, 8, 8)
	inBytes := int64(512*8*8) * 8 / 8
	if tr.DRAMBytes < single.DRAMBytes+(int64(tr.Tiles)-1)*inBytes {
		t.Fatalf("tiled layer must refetch inputs per tile: %+v", tr)
	}
}

func TestBiggerBufferFewerTiles(t *testing.T) {
	g := tensor.Geometry(256, 16, 16, 256, 3, 1, 1)
	small := &System{GlobalBufferBytes: 64 * 1024, DRAMBytesPerCycle: 32, DRAMLatencyCycles: 64, LineBufferRows: 3}
	big := &System{GlobalBufferBytes: 1024 * 1024, DRAMBytesPerCycle: 32, DRAMLatencyCycles: 64, LineBufferRows: 3}
	trS, _ := small.ConvTraffic(g, 1, 8, 8, 8)
	trB, _ := big.ConvTraffic(g, 1, 8, 8, 8)
	if trB.Tiles >= trS.Tiles {
		t.Fatalf("bigger buffer should tile less: %d vs %d", trB.Tiles, trS.Tiles)
	}
	if trB.DRAMBytes >= trS.DRAMBytes {
		t.Fatalf("bigger buffer should move fewer DRAM bytes: %d vs %d", trB.DRAMBytes, trS.DRAMBytes)
	}
}

func TestNarrowerOperandsLessTraffic(t *testing.T) {
	s := DefaultSystem()
	g := tensor.Geometry(64, 16, 16, 64, 3, 1, 1)
	tr16, _ := s.ConvTraffic(g, 1, 16, 16, 16)
	tr4, _ := s.ConvTraffic(g, 1, 4, 4, 4)
	if tr4.DRAMBytes*3 >= tr16.DRAMBytes {
		t.Fatalf("4-bit traffic should be ~4x below 16-bit: %d vs %d", tr4.DRAMBytes, tr16.DRAMBytes)
	}
}

func TestBatchScalesInputs(t *testing.T) {
	s := DefaultSystem()
	g := tensor.Geometry(16, 16, 16, 16, 3, 1, 1)
	tr1, _ := s.ConvTraffic(g, 1, 4, 4, 4)
	tr4, _ := s.ConvTraffic(g, 4, 4, 4, 4)
	if tr4.DRAMBytes <= tr1.DRAMBytes*3 {
		t.Fatalf("batch-4 traffic should be near 4x: %d vs %d", tr4.DRAMBytes, tr1.DRAMBytes)
	}
}

func TestErrors(t *testing.T) {
	s := DefaultSystem()
	g := tensor.Geometry(4, 8, 8, 4, 3, 1, 1)
	if _, err := s.ConvTraffic(g, 0, 4, 4, 4); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, err := s.ConvTraffic(g, 1, 0, 4, 4); err == nil {
		t.Fatal("zero bits must error")
	}
}

func TestTinyBufferStillProgresses(t *testing.T) {
	s := &System{GlobalBufferBytes: 128, DRAMBytesPerCycle: 32, DRAMLatencyCycles: 8, LineBufferRows: 3}
	g := tensor.Geometry(16, 16, 16, 32, 3, 1, 1)
	tr, err := s.ConvTraffic(g, 1, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tiles < 1 || tr.Tiles > 32 {
		t.Fatalf("tile count out of range: %d", tr.Tiles)
	}
}
