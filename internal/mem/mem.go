// Package mem models the accelerator's memory system (paper §4.3): the
// global weight/input buffer that hides DRAM latency, the per-array line
// buffers that provide input reuse, and the off-chip DRAM interface.
//
// The model answers one question per layer: how many bytes actually cross
// each boundary under weight-stationary dataflow, given finite on-chip
// capacity? When a layer's filters do not all fit, the output channels are
// processed in tiles and the input feature map streams from DRAM once per
// tile — the capacity effect that makes the equal-on-chip-memory
// comparison of Table 2 meaningful.
package mem

import (
	"fmt"

	"repro/internal/tensor"
)

// System describes one accelerator's memory resources.
type System struct {
	// GlobalBufferBytes is the on-chip buffer capacity (0.17 MB in
	// Table 2, for every accelerator).
	GlobalBufferBytes int64
	// DRAMBytesPerCycle is the off-chip bandwidth.
	DRAMBytesPerCycle float64
	// DRAMLatencyCycles is the fixed startup cost per streaming pass
	// (burst setup; hidden within a pass by double buffering).
	DRAMLatencyCycles int64
	// LineBufferRows is how many input rows the line buffers hold per
	// array (K rows suffice for a K×K kernel sweep).
	LineBufferRows int
}

// DefaultSystem returns the Table-2 memory configuration.
func DefaultSystem() *System {
	return &System{
		GlobalBufferBytes: 17 * 1048576 / 100, // 0.17 MB
		DRAMBytesPerCycle: 32,
		DRAMLatencyCycles: 64,
		LineBufferRows:    3,
	}
}

// Traffic is the modeled movement for one layer.
type Traffic struct {
	// Tiles is the number of output-channel tiles the layer needed.
	Tiles int
	// InputPasses counts how many times the input streamed from DRAM
	// (= Tiles under weight-stationary tiling).
	InputPasses int
	// DRAMBytes is total off-chip traffic (weights once, inputs per
	// pass, outputs written back once).
	DRAMBytes int64
	// DRAMCycles is the bandwidth-and-latency cost of that traffic.
	DRAMCycles int64
	// BufferBytes is on-chip buffer traffic (line-buffer refills, the
	// K-fold input reuse reads, and output-buffer accumulation).
	BufferBytes int64
}

// ConvTraffic models one convolution layer. Bit widths are per element
// for weights, activations and (re-quantized) outputs.
func (s *System) ConvTraffic(g tensor.ConvGeom, batch, wBits, aBits, oBits int) (Traffic, error) {
	if batch <= 0 {
		return Traffic{}, fmt.Errorf("mem: batch %d", batch)
	}
	if wBits <= 0 || aBits <= 0 || oBits <= 0 {
		return Traffic{}, fmt.Errorf("mem: non-positive bit width (%d/%d/%d)", wBits, aBits, oBits)
	}
	weights := int64(g.OutC) * int64(g.InC) * int64(g.K) * int64(g.K)
	inputs := int64(batch) * int64(g.InC) * int64(g.InH) * int64(g.InW)
	outputs := int64(batch) * int64(g.TotalOutputs())

	wBytes := bits2bytes(weights, wBits)
	aBytes := bits2bytes(inputs, aBits)
	oBytes := bits2bytes(outputs, oBits)

	// Reserve room for the line buffers (K input rows across channels)
	// and a strip of output partial sums; the rest holds weights.
	lineBytes := bits2bytes(int64(s.LineBufferRows)*int64(g.InC)*int64(g.InW), aBits)
	outStrip := bits2bytes(int64(g.OutC)*int64(g.OutW), 32)
	avail := s.GlobalBufferBytes - lineBytes - outStrip
	if avail < 1 {
		avail = 1
	}

	tiles := 1
	if wBytes > avail {
		// Tile over output channels: each tile's filters must fit.
		perChan := bits2bytes(int64(g.InC)*int64(g.K)*int64(g.K), wBits)
		chansPerTile := avail / max64(perChan, 1)
		if chansPerTile < 1 {
			chansPerTile = 1
		}
		tiles = int((int64(g.OutC) + chansPerTile - 1) / chansPerTile)
	}

	t := Traffic{Tiles: tiles, InputPasses: tiles}
	t.DRAMBytes = wBytes + aBytes*int64(tiles) + oBytes
	t.DRAMCycles = int64(float64(t.DRAMBytes)/s.DRAMBytesPerCycle) +
		s.DRAMLatencyCycles*int64(tiles+1)
	// Line buffers serve each input K times (once per kernel row) per
	// pass; outputs bounce through the output buffer twice (predictor
	// partials in, final accumulation out).
	t.BufferBytes = aBytes*int64(g.K)*int64(tiles) + wBytes + 2*oBytes
	return t, nil
}

func bits2bytes(n int64, bits int) int64 {
	b := n * int64(bits) / 8
	if b < 1 && n > 0 {
		b = 1
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
