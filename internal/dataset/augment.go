package dataset

import "repro/internal/tensor"

// Augmenter applies the standard CIFAR training-time augmentations —
// random crop with reflection padding and random horizontal flip — to
// batches. Augmentation improves the small-sample training runs this
// reproduction uses and mirrors the training recipes the paper's models
// were trained with.
type Augmenter struct {
	// Pad is the crop padding in pixels (4 for CIFAR).
	Pad int
	// Flip enables random horizontal flips.
	Flip bool

	seed int64
	rng  *tensor.RNG
}

// NewAugmenter builds a deterministic augmenter.
func NewAugmenter(pad int, flip bool, seed int64) *Augmenter {
	return &Augmenter{Pad: pad, Flip: flip, seed: seed, rng: tensor.NewRNG(seed)}
}

// SeedEpoch rewinds the augmentation stream to a position derived only
// from (base seed, epoch). The training loop calls this at every epoch
// start so the stream consumed during epoch e does not depend on how
// many draws earlier epochs made — which is what lets a run resumed from
// an epoch-boundary checkpoint replay the exact augmentations an
// uninterrupted run would have used.
func (a *Augmenter) SeedEpoch(epoch int) {
	// Golden-ratio mixing keeps adjacent epochs' streams uncorrelated.
	a.rng = tensor.NewRNG(a.seed + int64(epoch)*0x9E3779B9)
}

// SeedBatch rewinds the stream to a position derived from (base seed,
// epoch, batch). Group-synchronous data-parallel training reseeds before
// every batch so the augmentations a batch receives depend only on its
// global position — not on which worker ran it or what that worker
// augmented earlier — which is what keeps N-worker runs bit-identical
// to 1-worker runs.
func (a *Augmenter) SeedBatch(epoch, batch int) {
	// A second mixing constant decorrelates the per-batch streams from
	// each other and from the per-epoch stream SeedEpoch produces.
	a.rng = tensor.NewRNG(a.seed + int64(epoch)*0x9E3779B9 + (int64(batch)+1)*0x85EBCA6B)
}

// Apply augments a batch [N,C,H,W] in place-ish (returns a new tensor;
// the input is untouched).
func (a *Augmenter) Apply(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.Shape...)
	for s := 0; s < n; s++ {
		dy, dx := 0, 0
		if a.Pad > 0 {
			dy = a.rng.Intn(2*a.Pad+1) - a.Pad
			dx = a.rng.Intn(2*a.Pad+1) - a.Pad
		}
		flip := a.Flip && a.rng.Intn(2) == 1
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				sy := reflect(y+dy, h)
				for xx := 0; xx < w; xx++ {
					sx := xx + dx
					if flip {
						sx = (w - 1 - xx) + dx
					}
					sx = reflect(sx, w)
					out.Set4(s, ch, y, xx, x.At4(s, ch, sy, sx))
				}
			}
		}
	}
	return out
}

// reflect mirrors an index back into [0,n) (reflection padding).
func reflect(i, n int) int {
	if n == 1 {
		return 0
	}
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
	}
	return i
}
