// Package dataset generates the synthetic image-classification datasets
// that stand in for CIFAR-10/CIFAR-100 (and MNIST for the LeNet
// illustration) in this reproduction. Images are procedurally generated
// with class-conditioned structure — oriented gratings, blob layouts and
// color statistics — so that trained networks exhibit the same weight and
// activation phenomenology the paper's quantization analysis depends on,
// while remaining learnable on a laptop. Everything is seeded and
// deterministic.
package dataset

import (
	"math"

	"repro/internal/tensor"
)

// Dataset is an in-memory labeled image set.
type Dataset struct {
	// X holds the images, laid out [N, C, H, W] with values in [0,1].
	X *tensor.Tensor
	// Y holds the integer class labels, len N.
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Batch extracts the samples at the given indices into a fresh tensor and
// label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	per := c * h * w
	x := tensor.New(len(idx), c, h, w)
	y := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Data[i*per:(i+1)*per], d.X.Data[s*per:(s+1)*per])
		y[i] = d.Y[s]
	}
	return x, y
}

// Batches partitions [0,N) into batches of at most size, optionally
// shuffled with the given seed.
func (d *Dataset) Batches(size int, shuffle bool, seed int64) [][]int {
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if shuffle {
		order = tensor.NewRNG(seed).Perm(n)
	}
	var out [][]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, order[lo:hi])
	}
	return out
}

// Subset returns a dataset view of the first n samples (all of them when
// n exceeds the length). Class balance is preserved because labels cycle.
func (d *Dataset) Subset(n int) *Dataset {
	if n >= d.Len() {
		return d
	}
	per := d.X.Len() / d.Len()
	return &Dataset{
		X:       tensor.NewFrom(d.X.Data[:n*per], append([]int{n}, d.X.Shape[1:]...)...),
		Y:       d.Y[:n],
		Classes: d.Classes,
	}
}

// classParams are the deterministic per-class generation parameters.
type classParams struct {
	angle     float64 // grating orientation
	freq      float64 // grating spatial frequency
	baseR     float32 // base color
	baseG     float32
	baseB     float32
	blobCount int     // number of bright blobs
	blobSize  float64 // blob radius in pixels
	checker   bool    // superimpose a checkerboard
	gratingW  float32 // grating contrast
}

// paramsFor derives a class's visual signature from its index. The
// constants are arbitrary mixing primes; the point is that distinct
// classes get well-separated signatures.
func paramsFor(class, classes int) classParams {
	h := uint64(class)*2654435761 + 97
	f := func(k uint64) float64 {
		h2 := (h ^ (h >> 13)) * (k*2 + 1) * 0x9E3779B97F4A7C15
		h2 ^= h2 >> 29
		return float64(h2%100000) / 100000
	}
	return classParams{
		angle:     math.Pi * float64(class) * 0.61803, // golden-angle spread
		freq:      2 + 6*f(1),
		baseR:     float32(0.2 + 0.6*f(2)),
		baseG:     float32(0.2 + 0.6*f(3)),
		baseB:     float32(0.2 + 0.6*f(4)),
		blobCount: class%4 + 1,
		blobSize:  2.5 + 3*f(5),
		checker:   class%3 == 0,
		gratingW:  float32(0.25 + 0.3*f(6)),
	}
}

// SyntheticImages generates n labeled images of size chans×h×w over the
// given number of classes, with uniform label distribution.
func SyntheticImages(classes, n, chans, h, w int, seed int64) *Dataset {
	rng := tensor.NewRNG(seed)
	d := &Dataset{X: tensor.New(n, chans, h, w), Y: make([]int, n), Classes: classes}
	per := chans * h * w
	img := make([]float32, per)
	for s := 0; s < n; s++ {
		class := s % classes
		d.Y[s] = class
		renderImage(img, paramsFor(class, classes), chans, h, w, rng)
		copy(d.X.Data[s*per:(s+1)*per], img)
	}
	return d
}

// renderImage draws one sample: class-signature structure plus per-sample
// random phase, blob placement and pixel noise.
func renderImage(dst []float32, p classParams, chans, h, w int, rng *tensor.RNG) {
	phase := rng.Float64() * 2 * math.Pi
	cosA, sinA := math.Cos(p.angle), math.Sin(p.angle)
	base := [3]float32{p.baseR, p.baseG, p.baseB}

	type blob struct{ cx, cy, r float64 }
	blobs := make([]blob, p.blobCount)
	for i := range blobs {
		blobs[i] = blob{
			cx: rng.Float64() * float64(w),
			cy: rng.Float64() * float64(h),
			r:  p.blobSize * (0.7 + 0.6*rng.Float64()),
		}
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Oriented grating.
			proj := (float64(x)*cosA + float64(y)*sinA) / float64(w)
			g := float32(math.Sin(2*math.Pi*p.freq*proj+phase)) * p.gratingW

			// Checkerboard overlay for every third class.
			var ck float32
			if p.checker && ((x/4)+(y/4))%2 == 0 {
				ck = 0.15
			}

			// Blob field.
			var bl float32
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				d2 := dx*dx + dy*dy
				if d2 < b.r*b.r*4 {
					bl += float32(0.5 * math.Exp(-d2/(2*b.r*b.r)))
				}
			}

			noise := float32(rng.Normal()) * 0.06
			for c := 0; c < chans; c++ {
				chanTint := float32(1) - 0.15*float32(c)
				v := base[c%3] + g*chanTint + ck + bl + noise
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				dst[(c*h+y)*w+x] = v
			}
		}
	}
}

// SyntheticCIFAR10 generates a CIFAR-10-like dataset: n 3×32×32 images
// over 10 classes.
func SyntheticCIFAR10(n int, seed int64) *Dataset {
	return SyntheticImages(10, n, 3, 32, 32, seed)
}

// SyntheticCIFAR100 generates a CIFAR-100-like dataset: n 3×32×32 images
// over 100 classes.
func SyntheticCIFAR100(n int, seed int64) *Dataset {
	return SyntheticImages(100, n, 3, 32, 32, seed)
}

// MNISTLike generates a 10-class 1×28×28 grayscale dataset for the
// LeNet-5 illustration.
func MNISTLike(n int, seed int64) *Dataset {
	return SyntheticImages(10, n, 1, 28, 28, seed)
}
