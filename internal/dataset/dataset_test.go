package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestSyntheticCIFAR10Basics(t *testing.T) {
	d := SyntheticCIFAR10(50, 1)
	if d.Len() != 50 || d.Classes != 10 {
		t.Fatalf("len=%d classes=%d", d.Len(), d.Classes)
	}
	if d.X.Shape[1] != 3 || d.X.Shape[2] != 32 || d.X.Shape[3] != 32 {
		t.Fatalf("shape %v", d.X.Shape)
	}
	mn, mx, _ := d.X.Stats()
	if mn < 0 || mx > 1 {
		t.Fatalf("pixel range [%v,%v] outside [0,1]", mn, mx)
	}
	// Labels cycle through classes.
	for i := 0; i < 20; i++ {
		if d.Y[i] != i%10 {
			t.Fatalf("label %d = %d", i, d.Y[i])
		}
	}
}

func TestSyntheticCIFAR100Labels(t *testing.T) {
	d := SyntheticCIFAR100(200, 2)
	if d.Classes != 100 {
		t.Fatalf("classes %d", d.Classes)
	}
	seen := map[int]bool{}
	for _, y := range d.Y {
		if y < 0 || y >= 100 {
			t.Fatalf("label out of range: %d", y)
		}
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatalf("only %d distinct labels in 200 samples", len(seen))
	}
}

func TestMNISTLikeShape(t *testing.T) {
	d := MNISTLike(10, 3)
	if d.X.Shape[1] != 1 || d.X.Shape[2] != 28 {
		t.Fatalf("mnist shape %v", d.X.Shape)
	}
}

func TestDeterminism(t *testing.T) {
	a := SyntheticCIFAR10(20, 7)
	b := SyntheticCIFAR10(20, 7)
	if tensor.MaxAbsDiff(a.X, b.X) != 0 {
		t.Fatal("same seed must give identical images")
	}
	c := SyntheticCIFAR10(20, 8)
	if tensor.MaxAbsDiff(a.X, c.X) == 0 {
		t.Fatal("different seeds must differ")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Same-class images must be more alike than cross-class images on
	// average (per-class signature dominates per-sample noise).
	d := SyntheticCIFAR10(100, 4)
	per := d.X.Len() / d.Len()
	meanOf := func(class int) []float32 {
		acc := make([]float32, per)
		cnt := 0
		for s := 0; s < d.Len(); s++ {
			if d.Y[s] != class {
				continue
			}
			for i := 0; i < per; i++ {
				acc[i] += d.X.Data[s*per+i]
			}
			cnt++
		}
		for i := range acc {
			acc[i] /= float32(cnt)
		}
		return acc
	}
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			df := float64(a[i] - b[i])
			s += df * df
		}
		return s
	}
	m0, m1, m2 := meanOf(0), meanOf(1), meanOf(2)
	if dist(m0, m1) < 1e-3 || dist(m0, m2) < 1e-3 {
		t.Fatal("class means are not separated")
	}
}

func TestBatchExtraction(t *testing.T) {
	d := SyntheticCIFAR10(10, 5)
	x, y := d.Batch([]int{3, 7})
	if x.Shape[0] != 2 || len(y) != 2 {
		t.Fatalf("batch shapes %v %v", x.Shape, y)
	}
	if y[0] != d.Y[3] || y[1] != d.Y[7] {
		t.Fatal("labels wrong")
	}
	per := 3 * 32 * 32
	for i := 0; i < per; i++ {
		if x.Data[i] != d.X.Data[3*per+i] {
			t.Fatal("batch pixels wrong")
		}
	}
}

func TestBatchesCoverAll(t *testing.T) {
	d := SyntheticCIFAR10(23, 6)
	bs := d.Batches(5, true, 1)
	if len(bs) != 5 {
		t.Fatalf("batch count %d", len(bs))
	}
	seen := map[int]bool{}
	for _, b := range bs {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d repeated", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 23 {
		t.Fatalf("covered %d of 23", len(seen))
	}
	if len(bs[4]) != 3 {
		t.Fatalf("last batch size %d, want 3", len(bs[4]))
	}
}
