package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestReflect(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 4, 0}, {3, 4, 3}, {-1, 4, 1}, {-2, 4, 2},
		{4, 4, 2}, {5, 4, 1}, {0, 1, 0}, {7, 1, 0},
	}
	for _, c := range cases {
		if got := reflect(c.i, c.n); got != c.want {
			t.Fatalf("reflect(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestAugmenterPreservesShapeAndRange(t *testing.T) {
	d := SyntheticCIFAR10(8, 1)
	a := NewAugmenter(4, true, 7)
	out := a.Apply(d.X)
	if !out.SameShape(d.X) {
		t.Fatalf("augmented shape %v", out.Shape)
	}
	mn, mx, _ := out.Stats()
	if mn < 0 || mx > 1 {
		t.Fatalf("augmented range [%v,%v]", mn, mx)
	}
	// Input must be untouched.
	d2 := SyntheticCIFAR10(8, 1)
	if tensor.MaxAbsDiff(d.X, d2.X) != 0 {
		t.Fatal("Apply must not mutate its input")
	}
}

func TestAugmenterNoOpConfig(t *testing.T) {
	d := SyntheticCIFAR10(4, 2)
	a := NewAugmenter(0, false, 1)
	out := a.Apply(d.X)
	if tensor.MaxAbsDiff(out, d.X) != 0 {
		t.Fatal("pad=0, flip=false must be the identity")
	}
}

func TestAugmenterDeterministic(t *testing.T) {
	d := SyntheticCIFAR10(4, 3)
	a1 := NewAugmenter(4, true, 9)
	a2 := NewAugmenter(4, true, 9)
	if tensor.MaxAbsDiff(a1.Apply(d.X), a2.Apply(d.X)) != 0 {
		t.Fatal("same seed must give identical augmentation")
	}
}

func TestAugmenterActuallyMoves(t *testing.T) {
	d := SyntheticCIFAR10(8, 4)
	a := NewAugmenter(4, true, 11)
	out := a.Apply(d.X)
	if tensor.MaxAbsDiff(out, d.X) == 0 {
		t.Fatal("augmentation should change at least one sample")
	}
}

func TestFlipOnlyIsExactMirrorForSome(t *testing.T) {
	// With pad 0, samples are either untouched or exactly mirrored.
	d := SyntheticCIFAR10(16, 5)
	a := NewAugmenter(0, true, 13)
	out := a.Apply(d.X)
	h, w := 32, 32
	for s := 0; s < 16; s++ {
		same, mirror := true, true
		for ch := 0; ch < 3 && (same || mirror); ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := out.At4(s, ch, y, x)
					if v != d.X.At4(s, ch, y, x) {
						same = false
					}
					if v != d.X.At4(s, ch, y, w-1-x) {
						mirror = false
					}
				}
			}
		}
		if !same && !mirror {
			t.Fatalf("sample %d neither identity nor mirror", s)
		}
	}
}
