// Package train provides the SGD optimizer and training/evaluation loops
// used to produce the trained (and quantization-aware-trained) networks
// that all of the paper's experiments run on.
package train

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

var (
	mTrainSteps  = telemetry.GetCounter("train.steps")
	mTrainEpochs = telemetry.GetCounter("train.epochs")
	mStepMs      = telemetry.GetHistogram("train.step_ms",
		telemetry.ExpBuckets(1, 2, 12)) // 1ms .. 2s
	mEpochMs = telemetry.GetHistogram("train.epoch_ms",
		telemetry.ExpBuckets(100, 2, 12)) // 0.1s .. 200s
	gTrainLoss = telemetry.GetGauge("train.loss")
	gTrainAcc  = telemetry.GetGauge("train.acc")
	gTrainLR   = telemetry.GetGauge("train.lr")
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	vel map[*nn.Param]*tensor.Tensor
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		vel: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient
// and zeroes the gradients.
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.W.Shape...)
			o.vel[p] = v
		}
		wd := float32(0)
		if p.Decay {
			wd = o.WeightDecay
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v.Data[i] = o.Momentum*v.Data[i] - o.LR*g
			p.W.Data[i] += v.Data[i]
		}
		p.ZeroGrad()
	}
}

// Step runs one training iteration — forward, loss, backward, optimizer
// update — on a single batch and returns the batch loss and logits. Fit
// uses it per batch; benchmarks use it directly to measure steady-state
// QAT step throughput.
func Step(net nn.Module, x *tensor.Tensor, y []int, opt *SGD, params []*nn.Param) (float32, *tensor.Tensor) {
	sp := telemetry.StartSpan("train.step")
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	logits := net.Forward(x, true)
	loss, grad := nn.SoftmaxCE(logits, y)
	net.Backward(grad)
	opt.Step(params)
	sp.End()
	if telemetry.Enabled() {
		mTrainSteps.Inc()
		mStepMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		gTrainLoss.Set(float64(loss))
	}
	return loss, logits
}

// Options configures a training run.
type Options struct {
	Epochs    int
	BatchSize int
	LR        float32
	Momentum  float32
	Decay     float32
	Seed      int64
	// LRDropEvery halves the learning rate every this many epochs
	// (0 disables the schedule).
	LRDropEvery int
	// Augment, when set, applies training-time augmentation to every
	// batch (random crop / flip).
	Augment *dataset.Augmenter
	// Log receives progress lines; nil silences logging.
	Log io.Writer
}

// History records per-epoch training metrics.
type History struct {
	Loss     []float32
	TrainAcc []float64
}

// Fit trains net on ds and returns the loss/accuracy history.
func Fit(net nn.Module, ds *dataset.Dataset, opts Options) *History {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.LR == 0 {
		opts.LR = 0.05
	}
	if opts.Momentum == 0 {
		opts.Momentum = 0.9
	}
	opt := NewSGD(opts.LR, opts.Momentum, opts.Decay)
	params := net.Params()
	hist := &History{}

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		spEpoch := telemetry.StartSpan("train.epoch")
		var tEpoch time.Time
		if telemetry.Enabled() {
			tEpoch = time.Now()
		}
		if opts.LRDropEvery > 0 && epoch > 0 && epoch%opts.LRDropEvery == 0 {
			opt.LR /= 2
		}
		var epochLoss float64
		var correct, seen int
		batches := ds.Batches(opts.BatchSize, true, opts.Seed+int64(epoch))
		for _, idx := range batches {
			x, y := ds.Batch(idx)
			if opts.Augment != nil {
				x = opts.Augment.Apply(x)
			}
			loss, logits := Step(net, x, y, opt, params)

			epochLoss += float64(loss) * float64(len(idx))
			pred := logits.ArgmaxRows()
			for i, p := range pred {
				if p == y[i] {
					correct++
				}
			}
			seen += len(idx)
		}
		meanLoss := float32(epochLoss / float64(seen))
		acc := float64(correct) / float64(seen)
		hist.Loss = append(hist.Loss, meanLoss)
		hist.TrainAcc = append(hist.TrainAcc, acc)
		spEpoch.End()
		if telemetry.Enabled() {
			mTrainEpochs.Inc()
			mEpochMs.Observe(float64(time.Since(tEpoch)) / float64(time.Millisecond))
			gTrainLoss.Set(float64(meanLoss))
			gTrainAcc.Set(acc)
			gTrainLR.Set(float64(opt.LR))
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "epoch %d/%d loss=%.4f acc=%.3f lr=%.4f\n",
				epoch+1, opts.Epochs, meanLoss, acc, opt.LR)
		}
	}
	return hist
}

// Evaluate returns top-1 accuracy of net on ds using inference mode.
func Evaluate(net nn.Module, ds *dataset.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	var correct, seen int
	for _, idx := range ds.Batches(batchSize, false, 0) {
		x, y := ds.Batch(idx)
		logits := net.Forward(x, false)
		pred := logits.ArgmaxRows()
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
		seen += len(idx)
	}
	if seen == 0 {
		return 0
	}
	return float64(correct) / float64(seen)
}
