// Package train provides the SGD optimizer and training/evaluation loops
// used to produce the trained (and quantization-aware-trained) networks
// that all of the paper's experiments run on, plus the crash-safety
// machinery around them: periodic checksummed checkpoints, exact resume,
// and numerical-health guards that keep a NaN from being trained through.
package train

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

var (
	mTrainSteps  = telemetry.GetCounter("train.steps")
	mTrainEpochs = telemetry.GetCounter("train.epochs")
	mStepMs      = telemetry.GetHistogram("train.step_ms",
		telemetry.ExpBuckets(1, 2, 12)) // 1ms .. 2s
	mEpochMs = telemetry.GetHistogram("train.epoch_ms",
		telemetry.ExpBuckets(100, 2, 12)) // 0.1s .. 200s
	gTrainLoss = telemetry.GetGauge("train.loss")
	gTrainAcc  = telemetry.GetGauge("train.acc")
	gTrainLR   = telemetry.GetGauge("train.lr")

	mNaNEvents    = telemetry.GetCounter("train.nan_events")
	mSkippedSteps = telemetry.GetCounter("train.nan_skipped_steps")
	mRollbacks    = telemetry.GetCounter("train.nan_rollbacks")
	mGradClips    = telemetry.GetCounter("train.grad_clips")
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	vel map[*nn.Param]*tensor.Tensor
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		vel: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient
// and zeroes the gradients.
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.W.Shape...)
			o.vel[p] = v
		}
		wd := float32(0)
		if p.Decay {
			wd = o.WeightDecay
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v.Data[i] = o.Momentum*v.Data[i] - o.LR*g
			p.W.Data[i] += v.Data[i]
		}
		p.ZeroGrad()
	}
}

// ExportState returns name-keyed copies of the momentum buffers for the
// given parameters, for checkpointing. Parameters that have not yet
// taken a step export an explicit zero buffer rather than being omitted:
// ImportState resets absent names, so an omission would make "never
// stepped" and "missing from the checkpoint" indistinguishable and let a
// mid-run elastic resume silently zero a late-activating parameter's
// velocity while the uninterrupted run kept it.
func (o *SGD) ExportState(params []*nn.Param) (map[string][]float32, error) {
	out := make(map[string][]float32, len(params))
	for _, p := range params {
		if _, dup := out[p.Name]; dup {
			return nil, fmt.Errorf("train: duplicate parameter name %q in optimizer state", p.Name)
		}
		if v, ok := o.vel[p]; ok {
			out[p.Name] = append([]float32(nil), v.Data...)
		} else {
			out[p.Name] = make([]float32, p.W.Len())
		}
	}
	return out, nil
}

// ImportState restores momentum buffers previously produced by
// ExportState. Names absent from the map reset to zero velocity; a
// length mismatch is an error (the checkpoint belongs to a different
// architecture).
func (o *SGD) ImportState(params []*nn.Param, state map[string][]float32) error {
	for _, p := range params {
		src, ok := state[p.Name]
		if !ok {
			delete(o.vel, p)
			continue
		}
		if len(src) != p.W.Len() {
			return fmt.Errorf("train: momentum buffer %q has %d values, parameter wants %d",
				p.Name, len(src), p.W.Len())
		}
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.W.Shape...)
			o.vel[p] = v
		}
		copy(v.Data, src)
	}
	return nil
}

// stepHealth classifies the numerical outcome of one training step.
type stepHealth int

const (
	healthOK stepHealth = iota
	// healthBadLoss: the batch loss came out NaN/Inf; no backward pass
	// was run and gradients are untouched.
	healthBadLoss
	// healthBadGrad: a parameter gradient came out NaN/Inf after the
	// backward pass; gradients have been zeroed and no update applied.
	healthBadGrad
)

// finite32 reports whether v is neither NaN nor ±Inf.
func finite32(v float32) bool {
	// NaN is the only value unequal to itself; float32 overflow is ±Inf.
	return v == v && v <= math.MaxFloat32 && v >= -math.MaxFloat32
}

// gradsFinite scans every accumulated gradient for NaN/Inf.
func gradsFinite(params []*nn.Param) bool {
	for _, p := range params {
		for _, g := range p.Grad.Data {
			if !finite32(g) {
				return false
			}
		}
	}
	return true
}

// clipGradNorm scales all gradients so their global L2 norm is at most
// clip, returning whether clipping fired.
func clipGradNorm(params []*nn.Param, clip float32) bool {
	var sumsq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sumsq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sumsq)
	if norm <= float64(clip) || norm == 0 {
		return false
	}
	scale := float32(float64(clip) / norm)
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
	return true
}

// forwardBackward runs the forward pass, loss and backward pass for one
// batch, leaving the batch's gradient accumulated in params. When check
// is true the loss and gradients are screened for NaN/Inf: a bad loss
// skips the backward pass, a bad gradient is zeroed — in both cases
// params hold no usable gradient.
func forwardBackward(net nn.Module, x *tensor.Tensor, y []int, params []*nn.Param,
	check bool) (float32, *tensor.Tensor, stepHealth) {
	logits := net.Forward(x, true)
	loss, grad := nn.SoftmaxCE(logits, y)
	if check && !finite32(loss) {
		return loss, logits, healthBadLoss
	}
	net.Backward(grad)
	if check && !gradsFinite(params) {
		for _, p := range params {
			p.ZeroGrad()
		}
		return loss, logits, healthBadGrad
	}
	return loss, logits, healthOK
}

// stepCore runs one training iteration. When check is true the loss and
// gradients are screened for NaN/Inf and the optimizer update is withheld
// on failure; clip > 0 enables gradient-norm clipping.
func stepCore(net nn.Module, x *tensor.Tensor, y []int, opt *SGD, params []*nn.Param,
	clip float32, check bool) (float32, *tensor.Tensor, stepHealth) {
	sp := telemetry.StartSpan("train.step")
	defer sp.End()
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	loss, logits, health := forwardBackward(net, x, y, params, check)
	if health != healthOK {
		return loss, logits, health
	}
	if clip > 0 && clipGradNorm(params, clip) {
		mGradClips.Inc()
	}
	opt.Step(params)
	if telemetry.Enabled() {
		mTrainSteps.Inc()
		mStepMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		gTrainLoss.Set(float64(loss))
	}
	return loss, logits, healthOK
}

// Step runs one training iteration — forward, loss, backward, optimizer
// update — on a single batch and returns the batch loss and logits. Fit
// uses the guarded variant per batch; benchmarks use Step directly to
// measure steady-state QAT step throughput (no health screening on this
// path).
func Step(net nn.Module, x *tensor.Tensor, y []int, opt *SGD, params []*nn.Param) (float32, *tensor.Tensor) {
	loss, logits, _ := stepCore(net, x, y, opt, params, 0, false)
	return loss, logits
}

// NaNPolicy selects how Fit reacts when a batch produces a NaN/Inf loss
// or gradient.
type NaNPolicy int

const (
	// NaNAbort (the default) stops training with an error. Nothing is
	// trained through; the last checkpoint on disk is intact.
	NaNAbort NaNPolicy = iota
	// NaNSkip discards the poisoned batch — gradients are zeroed, no
	// optimizer update — and continues with the next batch.
	NaNSkip
	// NaNRollback restores the last checkpoint (in-memory snapshot),
	// halves the learning rate and replays from that epoch. After
	// MaxRollbacks restorations it aborts.
	NaNRollback
	// NaNIgnore preserves the legacy behavior: no screening at all.
	NaNIgnore
)

// ParseNaNPolicy maps CLI-friendly names to policies.
func ParseNaNPolicy(s string) (NaNPolicy, error) {
	switch s {
	case "abort", "":
		return NaNAbort, nil
	case "skip":
		return NaNSkip, nil
	case "rollback":
		return NaNRollback, nil
	case "ignore":
		return NaNIgnore, nil
	}
	return 0, fmt.Errorf("train: unknown NaN policy %q (want abort, skip, rollback or ignore)", s)
}

// Options configures a training run.
type Options struct {
	Epochs    int
	BatchSize int
	LR        float32
	Momentum  float32
	Decay     float32
	Seed      int64
	// LRDropEvery halves the learning rate every this many epochs
	// (0 disables the schedule).
	LRDropEvery int
	// Augment, when set, applies training-time augmentation to every
	// batch (random crop / flip). Its stream is re-seeded per epoch from
	// (its seed, epoch) so resumed runs replay identical augmentations.
	Augment *dataset.Augmenter
	// Log receives progress lines; nil silences logging.
	Log io.Writer

	// CkptPath, when non-empty, enables durable checkpointing: the full
	// training state (model, momentum, RNG identity, progress) is written
	// atomically to this path every CkptEvery epochs and after the final
	// epoch, keeping a rotated last-good copy at CkptPath+".prev".
	CkptPath string
	// CkptEvery is the epoch interval between saves (default 1 when
	// CkptPath is set).
	CkptEvery int
	// Resume loads CkptPath (falling back to the last-good copy) before
	// training and continues from the recorded epoch. Resuming with a
	// different Seed than the checkpoint's is an error. When neither
	// checkpoint file exists yet the run starts fresh.
	Resume bool
	// NaNPolicy selects the reaction to NaN/Inf losses or gradients
	// (default NaNAbort).
	NaNPolicy NaNPolicy
	// MaxRollbacks caps NaNRollback restorations before aborting
	// (default 3).
	MaxRollbacks int
	// ClipNorm, when positive, rescales gradients so their global L2
	// norm never exceeds it.
	ClipNorm float32

	// Reducer, when set, runs the fit group-synchronously as one worker
	// of a data-parallel fleet: this rank computes the batches of the
	// seed-keyed shuffle whose group-local index i satisfies
	// i % World == Rank, exchanges per-batch gradients through the
	// reducer before every optimizer step, and replays the group's
	// batch-norm statistics and metrics in global batch order — so every
	// worker count produces bit-identical parameters, history and
	// checkpoints. Fit does not close the reducer; its lifecycle belongs
	// to the caller. Only rank 0 writes checkpoints.
	Reducer dist.GradReducer
	// StepHook, when set, runs after every completed optimizer step with
	// the new step count. It exists for test orchestration (the chaos
	// harness kills a worker at an exact step) and must not mutate
	// training state.
	StepHook func(step int64)
	// GroupSize is the number of global batches folded into each
	// optimizer step. It — not the worker count — defines the training
	// trajectory: runs with equal GroupSize are bit-identical for any
	// number of workers. 0 means the reducer's world size (or 1 with no
	// reducer, which is the classic per-batch loop); on resume, 0 adopts
	// the checkpoint's recorded group size. Setting GroupSize >= 1
	// without a Reducer runs the group-synchronous loop locally.
	GroupSize int
}

// History records per-epoch training metrics.
type History struct {
	Loss     []float32
	TrainAcc []float64
}

// snapshot is the in-memory rollback state: a deep copy of everything a
// checkpoint holds, so NaNRollback works even without a CkptPath.
type snapshot struct {
	epoch int   // completed epochs at snapshot time
	step  int64 // completed optimizer steps
	lr    float32
	model map[string][]float32
	opt   map[string][]float32
	loss  []float32
	acc   []float64
}

func takeSnapshot(net nn.Module, opt *SGD, params []*nn.Param, epoch int, step int64, hist *History) (*snapshot, error) {
	state, err := nn.StateTensors(net)
	if err != nil {
		return nil, err
	}
	model := make(map[string][]float32, len(state))
	for k, v := range state {
		model[k] = append([]float32(nil), v...)
	}
	optState, err := opt.ExportState(params)
	if err != nil {
		return nil, err
	}
	return &snapshot{
		epoch: epoch, step: step, lr: opt.LR,
		model: model, opt: optState,
		loss: append([]float32(nil), hist.Loss...),
		acc:  append([]float64(nil), hist.TrainAcc...),
	}, nil
}

func (s *snapshot) restore(net nn.Module, opt *SGD, params []*nn.Param, hist *History) error {
	if err := nn.ApplyState(net, s.model); err != nil {
		return err
	}
	if err := opt.ImportState(params, s.opt); err != nil {
		return err
	}
	opt.LR = s.lr
	hist.Loss = append(hist.Loss[:0], s.loss...)
	hist.TrainAcc = append(hist.TrainAcc[:0], s.acc...)
	return nil
}

// Fit trains net on ds and returns the loss/accuracy history. It fails
// (rather than panicking or training through garbage) on empty datasets,
// un-loadable resume checkpoints, and NaN events under the abort policy.
func Fit(net nn.Module, ds *dataset.Dataset, opts Options) (*History, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.LR == 0 {
		opts.LR = 0.05
	}
	if opts.Momentum == 0 {
		opts.Momentum = 0.9
	}
	if opts.CkptPath != "" && opts.CkptEvery <= 0 {
		opts.CkptEvery = 1
	}
	if opts.MaxRollbacks <= 0 {
		opts.MaxRollbacks = 3
	}
	if opts.Epochs > 0 && ds.Len() == 0 {
		return nil, fmt.Errorf("train: cannot fit on an empty dataset")
	}
	world, rank := 1, 0
	if opts.Reducer != nil {
		world, rank = opts.Reducer.World(), opts.Reducer.Rank()
		if world < 1 || rank < 0 || rank >= world {
			return nil, fmt.Errorf("train: reducer reports rank %d of world %d", rank, world)
		}
	}
	if opts.GroupSize < 0 {
		return nil, fmt.Errorf("train: GroupSize must be >= 0 (got %d)", opts.GroupSize)
	}
	opt := NewSGD(opts.LR, opts.Momentum, opts.Decay)
	params := net.Params()
	hist := &History{}
	startEpoch := 0
	resumedGroup := 0
	var step int64

	if opts.Resume {
		if opts.CkptPath == "" {
			return nil, fmt.Errorf("train: Resume requires CkptPath")
		}
		if checkpointExists(opts.CkptPath) {
			ck, fromFallback, err := ckpt.LoadFile(opts.CkptPath)
			if err != nil {
				return nil, fmt.Errorf("train: resume: %w", err)
			}
			if ck.Progress == nil || ck.RNG == nil {
				return nil, fmt.Errorf("train: resume: %s is a model-only checkpoint, not a training checkpoint", opts.CkptPath)
			}
			if ck.RNG.Seed != opts.Seed {
				return nil, fmt.Errorf("train: resume: checkpoint was trained with seed %d, run has seed %d; resuming would diverge",
					ck.RNG.Seed, opts.Seed)
			}
			if err := nn.ApplyState(net, ck.Model); err != nil {
				return nil, fmt.Errorf("train: resume: %w", err)
			}
			if ck.Optimizer != nil {
				if err := opt.ImportState(params, ck.Optimizer); err != nil {
					return nil, fmt.Errorf("train: resume: %w", err)
				}
			}
			resumedGroup = ck.Progress.GroupSize
			if resumedGroup == 0 {
				// Pre-scale-out checkpoints recorded no group size; they
				// were trained with the per-batch loop, i.e. group 1.
				resumedGroup = 1
			}
			if opts.GroupSize > 0 && opts.GroupSize != resumedGroup {
				return nil, fmt.Errorf("train: resume: checkpoint was trained with sync group %d, run requests %d; resuming would diverge",
					resumedGroup, opts.GroupSize)
			}
			startEpoch = ck.Progress.Epoch
			step = ck.Progress.Step
			opt.LR = ck.Progress.LR
			hist.Loss = append([]float32(nil), ck.Progress.Loss...)
			hist.TrainAcc = append([]float64(nil), ck.Progress.TrainAcc...)
			if opts.Log != nil {
				src := opts.CkptPath
				if fromFallback {
					src += ckpt.PrevSuffix + " (last-good fallback)"
				}
				fmt.Fprintf(opts.Log, "resumed from %s at epoch %d (lr=%.4f)\n", src, startEpoch, opt.LR)
			}
			if startEpoch >= opts.Epochs {
				return hist, nil
			}
		} else if opts.Log != nil {
			fmt.Fprintf(opts.Log, "no checkpoint at %s; starting fresh\n", opts.CkptPath)
		}
	}

	// Resolve the sync-group size G — the trajectory-defining invariant.
	// Explicit GroupSize wins; a resumed run adopts the checkpoint's
	// (validated against any explicit request above); otherwise G is the
	// worker count, so each worker contributes one batch per step. G > 1
	// or an attached reducer selects the group-synchronous loop; a
	// worker count above G only idles the surplus ranks, it never
	// changes the trajectory — that is the elastic-resume invariant.
	G := opts.GroupSize
	if resumedGroup > 0 {
		G = resumedGroup
	}
	if G == 0 {
		G = world
	}
	useGroup := opts.Reducer != nil || G > 1
	if useGroup && opts.NaNPolicy == NaNRollback {
		return nil, fmt.Errorf("train: NaNRollback is not supported in group-synchronous mode (rolling back one worker would desynchronize the fleet); use abort or skip")
	}

	check := opts.NaNPolicy != NaNIgnore
	lastGood, err := takeSnapshot(net, opt, params, startEpoch, step, hist)
	if err != nil {
		return nil, err
	}
	rollbacks := 0

	var gr *groupRunner
	if useGroup {
		gr = newGroupRunner(params, opts.Reducer, world, rank, G)
		gr.attachBN(net)
		defer gr.detachBN()
	}

	save := func(epochsDone int) error {
		// Rank 0 owns the checkpoint; every rank holds identical state,
		// so one durable copy is enough and writers never race.
		if opts.CkptPath == "" || rank != 0 {
			return nil
		}
		if epochsDone%opts.CkptEvery != 0 && epochsDone != opts.Epochs {
			return nil
		}
		optState, err := opt.ExportState(params)
		if err != nil {
			return err
		}
		model, err := nn.StateTensors(net)
		if err != nil {
			return err
		}
		return ckpt.SaveFile(opts.CkptPath, &ckpt.Checkpoint{
			Model:     model,
			Optimizer: optState,
			RNG:       &ckpt.RNGState{Seed: opts.Seed},
			Progress: &ckpt.Progress{
				Epoch: epochsDone, Step: step, LR: opt.LR,
				Loss: hist.Loss, TrainAcc: hist.TrainAcc,
				GroupSize: G,
			},
		})
	}

	for epoch := startEpoch; epoch < opts.Epochs; {
		spEpoch := telemetry.StartSpan("train.epoch")
		var tEpoch time.Time
		if telemetry.Enabled() {
			tEpoch = time.Now()
		}
		if opts.LRDropEvery > 0 && epoch > 0 && epoch%opts.LRDropEvery == 0 {
			opt.LR /= 2
		}
		if opts.Augment != nil {
			opts.Augment.SeedEpoch(epoch)
		}
		var epochLoss float64
		var correct, seen int
		rolledBack := false
		batches := ds.Batches(opts.BatchSize, true, opts.Seed+int64(epoch))
		if gr != nil {
			var gerr error
			epochLoss, correct, seen, gerr = gr.epoch(net, ds, opt, opts, epoch, batches, &step, check)
			if gerr != nil {
				spEpoch.End()
				return hist, gerr
			}
		} else {
			for _, idx := range batches {
				x, y := ds.Batch(idx)
				if opts.Augment != nil {
					x = opts.Augment.Apply(x)
				}
				loss, logits, health := stepCore(net, x, y, opt, params, opts.ClipNorm, check)
				if health != healthOK {
					mNaNEvents.Inc()
					what := "loss"
					if health == healthBadGrad {
						what = "gradient"
					}
					switch opts.NaNPolicy {
					case NaNSkip:
						mSkippedSteps.Inc()
						if opts.Log != nil {
							fmt.Fprintf(opts.Log, "epoch %d: non-finite %s, batch skipped\n", epoch+1, what)
						}
						continue
					case NaNRollback:
						rollbacks++
						if rollbacks > opts.MaxRollbacks {
							spEpoch.End()
							return hist, fmt.Errorf("train: non-finite %s persisted through %d rollbacks at epoch %d",
								what, opts.MaxRollbacks, epoch+1)
						}
						mRollbacks.Inc()
						if err := lastGood.restore(net, opt, params, hist); err != nil {
							spEpoch.End()
							return hist, fmt.Errorf("train: rollback: %w", err)
						}
						opt.LR /= 2
						step = lastGood.step
						epoch = lastGood.epoch
						if opts.Log != nil {
							fmt.Fprintf(opts.Log, "non-finite %s: rolled back to epoch %d, lr halved to %.5f\n",
								what, epoch, opt.LR)
						}
						rolledBack = true
					default: // NaNAbort
						spEpoch.End()
						return hist, fmt.Errorf("train: non-finite %s at epoch %d (batch of %d): aborting; last checkpoint is intact",
							what, epoch+1, len(idx))
					}
					if rolledBack {
						break
					}
				}
				step++
				if opts.StepHook != nil {
					opts.StepHook(step)
				}
				epochLoss += float64(loss) * float64(len(idx))
				pred := logits.ArgmaxRows()
				for i, p := range pred {
					if p == y[i] {
						correct++
					}
				}
				seen += len(idx)
			}
		}
		spEpoch.End()
		if rolledBack {
			continue
		}
		if seen == 0 {
			// Every batch of the epoch was skipped: nothing was learned
			// and nothing sane can be recorded.
			return hist, fmt.Errorf("train: epoch %d made no progress (all %d batches skipped as non-finite)",
				epoch+1, len(batches))
		}
		meanLoss := float32(epochLoss / float64(seen))
		acc := float64(correct) / float64(seen)
		hist.Loss = append(hist.Loss, meanLoss)
		hist.TrainAcc = append(hist.TrainAcc, acc)
		if telemetry.Enabled() {
			mTrainEpochs.Inc()
			mEpochMs.Observe(float64(time.Since(tEpoch)) / float64(time.Millisecond))
			gTrainLoss.Set(float64(meanLoss))
			gTrainAcc.Set(acc)
			gTrainLR.Set(float64(opt.LR))
		}
		epoch++
		if err := save(epoch); err != nil {
			return hist, fmt.Errorf("train: checkpointing after epoch %d: %w", epoch, err)
		}
		if opts.CkptPath != "" || opts.NaNPolicy == NaNRollback {
			snap, err := takeSnapshot(net, opt, params, epoch, step, hist)
			if err != nil {
				return hist, err
			}
			lastGood = snap
		}
		// Logged after the checkpoint save so the epoch-completion line
		// is a reliable "this epoch is durable" signal (the crash-safety
		// smoke test kills the process on it).
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "epoch %d/%d loss=%.4f acc=%.3f lr=%.4f\n",
				epoch, opts.Epochs, meanLoss, acc, opt.LR)
		}
	}
	return hist, nil
}

// checkpointExists reports whether the checkpoint or its last-good copy
// is present on disk.
func checkpointExists(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	_, err := os.Stat(path + ckpt.PrevSuffix)
	return err == nil
}

// MustFit is Fit for callers with no error path (tests, examples); it
// panics on failure.
func MustFit(net nn.Module, ds *dataset.Dataset, opts Options) *History {
	hist, err := Fit(net, ds, opts)
	if err != nil {
		panic(err)
	}
	return hist
}

// Evaluate returns top-1 accuracy of net on ds using inference mode.
// Degenerate inputs are handled without panicking: an empty dataset
// evaluates to 0 and a non-positive batch size falls back to the
// default.
func Evaluate(net nn.Module, ds *dataset.Dataset, batchSize int) float64 {
	return EvaluateForward(func(x *tensor.Tensor) *tensor.Tensor {
		return net.Forward(x, false)
	}, ds, batchSize)
}

// EvaluateForward is Evaluate over an arbitrary eval-mode forward function
// — e.g. a packed-domain infer.Session — for callers whose inference path
// bypasses Module.Forward.
func EvaluateForward(forward func(*tensor.Tensor) *tensor.Tensor, ds *dataset.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	var correct, seen int
	for _, idx := range ds.Batches(batchSize, false, 0) {
		x, y := ds.Batch(idx)
		logits := forward(x)
		pred := logits.ArgmaxRows()
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
		seen += len(idx)
	}
	if seen == 0 {
		return 0
	}
	return float64(correct) / float64(seen)
}
