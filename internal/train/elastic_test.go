package train

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
)

var fitElasticOpts = dist.ElasticOptions{
	JoinTimeout:       15 * time.Second,
	RegroupTimeout:    5 * time.Second,
	HeartbeatInterval: 50 * time.Millisecond,
	HeartbeatTimeout:  time.Second,
	MaxRegroups:       4,
}

// dyingMembership joins like a normal elastic worker but stays dead
// after its group is killed — the in-process stand-in for a
// SIGKILLed worker process, which never comes back either.
type dyingMembership struct {
	w    *dist.ElasticWorker
	g    *dist.Group
	dead atomic.Bool
}

func (d *dyingMembership) Join() (*dist.Group, error) {
	if d.dead.Load() {
		return nil, errors.New("victim stays dead")
	}
	g, err := d.w.Join()
	d.g = g
	return g, err
}

func (d *dyingMembership) Close() error { return d.w.Close() }

// TestFitElasticRegroupByteEqual is the self-healing tentpole end to
// end: a three-member elastic fleet loses one worker mid-epoch (after
// the epoch-1 checkpoint is durable), the survivors regroup
// automatically, resume from that checkpoint at world 2, and finish
// with weights, history and checkpoint FILE BYTES bit-identical to an
// uninterrupted single-worker run at the same sync-group size.
func TestFitElasticRegroupByteEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP fleet test")
	}
	dir := t.TempDir()
	const G = 3

	// Uninterrupted reference: worker count never matters at fixed G,
	// so one local worker defines the expected trajectory.
	refOpts := distOpts(3, filepath.Join(dir, "ref.ckpt"))
	refOpts.GroupSize = G
	refNets, refHists := fitWorld(t, 1, refOpts)
	refState := stateOf(t, refNets[0])
	refCkpt, err := os.ReadFile(refOpts.CkptPath)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := dist.ElasticListen("127.0.0.1:0", 3, fitElasticOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ckptPath := filepath.Join(dir, "elastic.ckpt")
	ds := resumeData()
	elasticOpts := func() Options {
		o := distOpts(3, ckptPath)
		o.GroupSize = G
		o.Augment = dataset.NewAugmenter(2, true, 42)
		return o
	}
	build := func() (nn.Module, error) { return resumeNet(7), nil }

	type fitRes struct {
		hist *History
		net  nn.Module
		err  error
	}
	survivorCh := make(chan fitRes, 1)
	go func() {
		w := dist.NewElasticWorker(coord.Addr(), 3, fitElasticOpts)
		defer w.Close()
		hist, net, err := FitElastic(w, build, ds, elasticOpts())
		survivorCh <- fitRes{hist, net, err}
	}()

	victimCh := make(chan error, 1)
	go func() {
		d := &dyingMembership{w: dist.NewElasticWorker(coord.Addr(), 3, fitElasticOpts)}
		defer d.Close()
		o := elasticOpts()
		// 80 samples / batch 16 = 5 batches, G 3 → 2 steps per epoch.
		// Step 3 is mid-epoch-2, strictly after rank 0 made the epoch-1
		// checkpoint durable (no step of epoch 2 completes before it).
		o.StepHook = func(step int64) {
			if step == 3 {
				d.dead.Store(true)
				d.g.Close() // hard death: links just vanish
			}
		}
		_, _, err := FitElastic(d, build, ds, o)
		victimCh <- err
	}()

	hist, net, err := FitElastic(coord, build, ds, elasticOpts())
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if verr := <-victimCh; verr == nil || !strings.Contains(verr.Error(), "victim stays dead") {
		t.Fatalf("victim: err = %v, want its permanent-death marker", verr)
	}
	s := <-survivorCh
	if s.err != nil {
		t.Fatalf("survivor: %v", s.err)
	}

	assertStatesEqual(t, "coordinator after regroup", refState, stateOf(t, net))
	assertStatesEqual(t, "survivor after regroup", refState, stateOf(t, s.net))
	if !reflect.DeepEqual(refHists[0], hist) {
		t.Fatalf("coordinator history mismatch:\nref %+v\ngot %+v", refHists[0], hist)
	}
	if !reflect.DeepEqual(refHists[0], s.hist) {
		t.Fatalf("survivor history mismatch:\nref %+v\ngot %+v", refHists[0], s.hist)
	}
	finalCkpt, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refCkpt, finalCkpt) {
		t.Fatal("post-regroup checkpoint differs from the uninterrupted reference — the self-healing invariant is broken")
	}
}

// FitElastic's invariants are demanded up front, not defaulted around.
func TestFitElasticOptionValidation(t *testing.T) {
	ds := resumeData()
	build := func() (nn.Module, error) { return resumeNet(7), nil }
	if _, _, err := FitElastic(nil, build, ds, Options{Epochs: 1, CkptPath: "x.ckpt"}); err == nil ||
		!strings.Contains(err.Error(), "GroupSize") {
		t.Fatalf("missing GroupSize: err = %v, want rejection", err)
	}
	if _, _, err := FitElastic(nil, build, ds, Options{Epochs: 1, GroupSize: 2}); err == nil ||
		!strings.Contains(err.Error(), "CkptPath") {
		t.Fatalf("missing CkptPath: err = %v, want rejection", err)
	}
	if _, _, err := FitElastic(nil, build, ds, Options{
		Epochs: 1, GroupSize: 2, CkptPath: "x.ckpt", Reducer: dist.Local{},
	}); err == nil || !strings.Contains(err.Error(), "Reducer") {
		t.Fatalf("preset Reducer: err = %v, want rejection", err)
	}
}
