package train

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// groupRunner drives the group-synchronous data-parallel loop: each
// optimizer step covers a sync group of G consecutive batches of the
// seed-keyed shuffle, this rank computes the group members whose
// group-local index i has i % world == rank, and the reducer folds every
// member's isolated gradient in ascending index order. Because the fold
// order, the batch-norm statistic replay order and the metric
// accumulation order all depend only on batch indices — never on which
// rank computed what — any worker count walks the identical float
// trajectory, which is what makes checkpoints byte-equal across fleet
// sizes and lets a run resume under a different worker count.
type groupRunner struct {
	red         dist.GradReducer
	world, rank int
	G           int

	params  []*nn.Param
	gradLen int
	sum     []float32 // folded group gradient
	vecs    [][]float32
	locals  []dist.BatchGrad

	bns     []*nn.BatchNorm2D
	statLen int
}

func newGroupRunner(params []*nn.Param, red dist.GradReducer, world, rank, G int) *groupRunner {
	if red == nil {
		red = dist.Local{}
	}
	gradLen := 0
	for _, p := range params {
		gradLen += p.W.Len()
	}
	maxOwned := (G + world - 1) / world
	g := &groupRunner{
		red: red, world: world, rank: rank, G: G,
		params: params, gradLen: gradLen,
		sum:    make([]float32, gradLen),
		vecs:   make([][]float32, maxOwned),
		locals: make([]dist.BatchGrad, 0, maxOwned),
	}
	for i := range g.vecs {
		g.vecs[i] = make([]float32, gradLen)
	}
	return g
}

// attachBN switches every non-frozen batch-norm layer to deferred
// statistics: the forward pass records each batch's (mean, var) instead
// of folding them into the running estimates, and the runner replays
// every group member's statistics in batch order after the reduce —
// running statistics are checkpoint state, so they must follow the
// deterministic group order, not this rank's private execution order.
func (g *groupRunner) attachBN(net nn.Module) {
	net.Visit(func(m nn.Module) {
		if bn, ok := m.(*nn.BatchNorm2D); ok && !bn.Frozen {
			bn.DeferStats = true
			g.bns = append(g.bns, bn)
			g.statLen += 2 * bn.C
		}
	})
}

func (g *groupRunner) detachBN() {
	for _, bn := range g.bns {
		bn.DeferStats = false
	}
}

// flatten copies the accumulated parameter gradients into dst in
// net.Params() order — stable across ranks because every rank builds the
// identical module tree.
func (g *groupRunner) flatten(dst []float32) {
	o := 0
	for _, p := range g.params {
		copy(dst[o:], p.Grad.Data)
		o += len(p.Grad.Data)
	}
}

func (g *groupRunner) unflatten(src []float32) {
	o := 0
	for _, p := range g.params {
		copy(p.Grad.Data, src[o:o+len(p.Grad.Data)])
		o += len(p.Grad.Data)
	}
}

// gatherStats snapshots the deferred batch-norm statistics the last
// forward pass recorded, in layer order.
func (g *groupRunner) gatherStats() []float32 {
	if g.statLen == 0 {
		return nil
	}
	out := make([]float32, 0, g.statLen)
	for _, bn := range g.bns {
		out = append(out, bn.LastMean...)
		out = append(out, bn.LastVar...)
	}
	return out
}

// replayStats folds one batch's broadcast statistics into the running
// estimates on this rank.
func (g *groupRunner) replayStats(stats []float32) error {
	if len(stats) != g.statLen {
		return fmt.Errorf("train: batch-norm stats have %d values, model wants %d (mixed architectures in one group?)",
			len(stats), g.statLen)
	}
	o := 0
	for _, bn := range g.bns {
		bn.ApplyStats(stats[o:o+bn.C], stats[o+bn.C:o+2*bn.C])
		o += 2 * bn.C
	}
	return nil
}

// epoch runs one epoch group-synchronously and returns the epoch
// metrics, which are identical on every rank: they are folded from the
// broadcast per-batch metadata in batch order, not from local batches.
func (g *groupRunner) epoch(net nn.Module, ds *dataset.Dataset, opt *SGD, opts Options,
	epoch int, batches [][]int, step *int64, check bool) (epochLoss float64, correct, seen int, err error) {
	for gi := 0; gi < len(batches); gi += g.G {
		gs := g.G
		if rest := len(batches) - gi; rest < gs {
			gs = rest // tail group
		}
		sp := telemetry.StartSpan("train.step")
		var t0 time.Time
		if telemetry.Enabled() {
			t0 = time.Now()
		}

		// Compute this rank's shard of the group: isolated per-batch
		// gradients, metrics and deferred batch-norm statistics.
		g.locals = g.locals[:0]
		vecIdx := 0
		for j := g.rank; j < gs; j += g.world {
			global := gi + j
			idx := batches[global]
			x, y := ds.Batch(idx)
			if opts.Augment != nil {
				// Seed by global batch position so the augmentation a
				// batch receives is shard-invariant.
				opts.Augment.SeedBatch(epoch, global)
				x = opts.Augment.Apply(x)
			}
			loss, logits, health := forwardBackward(net, x, y, g.params, check)
			bg := dist.BatchGrad{Index: j, Loss: loss, Seen: int32(len(idx))}
			if health != healthOK {
				mNaNEvents.Inc()
				bg.Bad = true
			} else {
				pred := logits.ArgmaxRows()
				for i, p := range pred {
					if p == y[i] {
						bg.Correct++
					}
				}
				vec := g.vecs[vecIdx]
				vecIdx++
				g.flatten(vec)
				bg.Grad = vec
				for _, p := range g.params {
					p.ZeroGrad()
				}
			}
			bg.Stats = g.gatherStats()
			g.locals = append(g.locals, bg)
		}

		metas, rerr := g.red.Reduce(*step, gs, g.locals, g.sum)
		if rerr != nil {
			sp.End()
			return epochLoss, correct, seen, fmt.Errorf("train: gradient reduce at epoch %d: %w", epoch+1, rerr)
		}

		// Replay the group's bookkeeping in batch order on every rank:
		// batch-norm running statistics (for all batches — the forward
		// pass ran even for bad ones, matching the per-batch loop),
		// NaN policy, and epoch metrics.
		anyGood := false
		var groupLoss float64
		goodN := 0
		for i := range metas {
			m := &metas[i]
			if g.statLen > 0 {
				if serr := g.replayStats(m.Stats); serr != nil {
					sp.End()
					return epochLoss, correct, seen, serr
				}
			}
			if m.Bad {
				switch opts.NaNPolicy {
				case NaNSkip:
					mSkippedSteps.Inc()
					if opts.Log != nil {
						fmt.Fprintf(opts.Log, "epoch %d: non-finite batch %d skipped\n", epoch+1, gi+m.Index)
					}
					continue
				default: // NaNAbort (rollback is rejected before training starts)
					sp.End()
					return epochLoss, correct, seen,
						fmt.Errorf("train: non-finite loss or gradient at epoch %d (batch %d): aborting; last checkpoint is intact",
							epoch+1, gi+m.Index)
				}
			}
			epochLoss += float64(m.Loss) * float64(m.Seen)
			correct += int(m.Correct)
			seen += int(m.Seen)
			groupLoss += float64(m.Loss)
			goodN++
			anyGood = true
		}

		if anyGood {
			g.unflatten(g.sum)
			if opts.ClipNorm > 0 && clipGradNorm(g.params, opts.ClipNorm) {
				mGradClips.Inc()
			}
			opt.Step(g.params)
			*step++
			if opts.StepHook != nil {
				opts.StepHook(*step)
			}
			if telemetry.Enabled() {
				mTrainSteps.Inc()
				mStepMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
				gTrainLoss.Set(groupLoss / float64(goodN))
			}
		}
		sp.End()
	}
	return epochLoss, correct, seen, nil
}
