package train

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// distOpts is the shared recipe for the byte-equality tests: BN (so
// deferred-statistics replay is exercised), augmentation (so per-batch
// reseeding is exercised), an LR schedule and per-epoch checkpoints.
func distOpts(epochs int, ckptPath string) Options {
	return Options{
		Epochs: epochs, BatchSize: 16, LR: 0.05, Momentum: 0.9, Decay: 1e-4,
		Seed: 41, LRDropEvery: 2, CkptEvery: 1, CkptPath: ckptPath,
		Augment: dataset.NewAugmenter(2, true, 42),
	}
}

func assertStatesEqual(t *testing.T, label string, want, got map[string][]float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: tensor count %d vs %d", label, len(want), len(got))
	}
	for name, wv := range want {
		gv := got[name]
		if len(wv) != len(gv) {
			t.Fatalf("%s: tensor %s length mismatch", label, name)
		}
		for i := range wv {
			if math.Float32bits(wv[i]) != math.Float32bits(gv[i]) {
				t.Fatalf("%s: tensor %s[%d]: %v vs %v (not bit-identical)",
					label, name, i, wv[i], gv[i])
			}
		}
	}
}

// fitWorld trains one fleet of `world` workers over the loopback
// transport — every worker gets its own net (identical init), its own
// Fit goroutine and its own augmenter — and returns the per-rank nets
// and histories. All ranks share ckptPath; only rank 0 writes it.
func fitWorld(t *testing.T, world int, opts Options) ([]*nn.Sequential, []*History) {
	t.Helper()
	if world == 1 {
		// Single worker, same group-synchronous loop via the local reducer.
		o := opts
		o.Reducer = dist.Local{}
		o.Augment = dataset.NewAugmenter(2, true, 42)
		net := resumeNet(7)
		hist, err := Fit(net, resumeData(), o)
		if err != nil {
			t.Fatalf("world 1: %v", err)
		}
		return []*nn.Sequential{net}, []*History{hist}
	}
	groups, err := dist.Loopback(world)
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*nn.Sequential, world)
	hists := make([]*History, world)
	errs := make([]error, world)
	ds := resumeData()
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		nets[r] = resumeNet(7)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opts
			o.Reducer = dist.NewReducer(groups[r])
			o.Augment = dataset.NewAugmenter(2, true, 42)
			hists[r], errs[r] = Fit(nets[r], ds, o)
		}(r)
	}
	wg.Wait()
	for _, g := range groups {
		g.Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("world %d rank %d: %v", world, r, err)
		}
	}
	return nets, hists
}

// TestGroupModeMatchesLegacy: with group size 1 and no augmentation,
// the group-synchronous loop must walk the exact float trajectory of
// the classic per-batch loop — weights, history and checkpoint FILE
// BYTES all bit-identical. This is what lets pre-scale-out checkpoints
// resume seamlessly.
func TestGroupModeMatchesLegacy(t *testing.T) {
	dir := t.TempDir()
	ds := resumeData()
	base := Options{
		Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.9, Decay: 1e-4,
		Seed: 41, LRDropEvery: 2, CkptEvery: 1,
	}

	legacy := resumeNet(7)
	lo := base
	lo.CkptPath = filepath.Join(dir, "legacy.ckpt")
	lh, err := Fit(legacy, ds, lo)
	if err != nil {
		t.Fatal(err)
	}

	grouped := resumeNet(7)
	gopts := base
	gopts.CkptPath = filepath.Join(dir, "group.ckpt")
	gopts.Reducer = dist.Local{} // forces the group loop, G = world = 1
	gh, err := Fit(grouped, ds, gopts)
	if err != nil {
		t.Fatal(err)
	}

	assertStatesEqual(t, "legacy vs group", stateOf(t, legacy), stateOf(t, grouped))
	if !reflect.DeepEqual(lh, gh) {
		t.Fatalf("history mismatch:\nlegacy %+v\ngroup  %+v", lh, gh)
	}
	lb, err := os.ReadFile(lo.CkptPath)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := os.ReadFile(gopts.CkptPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, gb) {
		t.Fatal("legacy and group-of-1 checkpoints must be bit-identical files")
	}
}

// TestByteEqualAcrossWorkerCounts is the tentpole guarantee: with the
// sync-group size fixed at 4, fleets of 1, 2, 3 and 4 workers — and a
// 5-worker fleet where the surplus rank idles — all produce
// bit-identical weights on every rank, identical histories, and
// bit-identical checkpoint files.
func TestByteEqualAcrossWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	refOpts := distOpts(2, filepath.Join(dir, "w1.ckpt"))
	refOpts.GroupSize = 4
	refNets, refHists := fitWorld(t, 1, refOpts)
	refState := stateOf(t, refNets[0])
	refCkpt, err := os.ReadFile(refOpts.CkptPath)
	if err != nil {
		t.Fatal(err)
	}

	worlds := []int{2, 3, 4, 5}
	if testing.Short() {
		worlds = []int{2}
	}
	for _, world := range worlds {
		opts := distOpts(2, filepath.Join(dir, "w.ckpt"))
		opts.GroupSize = 4 // world 5 > G: rank 4 idles, trajectory unchanged
		nets, hists := fitWorld(t, world, opts)
		for r := 0; r < world; r++ {
			assertStatesEqual(t, "world "+string(rune('0'+world))+" rank "+string(rune('0'+r)),
				refState, stateOf(t, nets[r]))
			if !reflect.DeepEqual(refHists[0], hists[r]) {
				t.Fatalf("world %d rank %d: history mismatch:\nref %+v\ngot %+v",
					world, r, refHists[0], hists[r])
			}
		}
		ckptBytes, err := os.ReadFile(opts.CkptPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refCkpt, ckptBytes) {
			t.Fatalf("world %d: checkpoint file differs from the 1-worker reference", world)
		}
		os.Remove(opts.CkptPath)
		os.Remove(opts.CkptPath + ".prev")
	}
}

// TestElasticResume: a 2-worker run killed after 1 of 3 epochs must
// resume as 1 worker AND as 3 workers, each finishing bit-identical to
// an uninterrupted 1-worker run — worker count is an execution detail,
// not training state.
func TestElasticResume(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted 1-worker reference at G=2.
	refOpts := distOpts(3, filepath.Join(dir, "ref.ckpt"))
	refOpts.GroupSize = 2
	refNets, refHists := fitWorld(t, 1, refOpts)
	refState := stateOf(t, refNets[0])
	refCkpt, err := os.ReadFile(refOpts.CkptPath)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a 2-worker fleet trains 1 epoch (G defaults to world = 2)
	// and leaves a checkpoint — the "killed" run.
	partial := filepath.Join(dir, "partial.ckpt")
	fitWorld(t, 2, distOpts(1, partial))

	resumeAs := func(world int) {
		ckptCopy := filepath.Join(dir, "resume.ckpt")
		b, err := os.ReadFile(partial)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckptCopy, b, 0o644); err != nil {
			t.Fatal(err)
		}
		opts := distOpts(3, ckptCopy)
		opts.Resume = true
		// GroupSize deliberately left 0: the resumed run must adopt the
		// checkpoint's recorded sync group (2), whatever its world size.
		nets, hists := fitWorld(t, world, opts)
		for r := range nets {
			assertStatesEqual(t, "resume", refState, stateOf(t, nets[r]))
			if !reflect.DeepEqual(refHists[0], hists[r]) {
				t.Fatalf("resume as %d workers, rank %d: history mismatch:\nref %+v\ngot %+v",
					world, r, refHists[0], hists[r])
			}
		}
		finalCkpt, err := os.ReadFile(ckptCopy)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refCkpt, finalCkpt) {
			t.Fatalf("resume as %d workers: final checkpoint differs from uninterrupted reference", world)
		}
		os.Remove(ckptCopy)
		os.Remove(ckptCopy + ".prev")
	}

	resumeAs(1)
	if !testing.Short() {
		resumeAs(3)
	}
}

// TestResumeGroupSizeMismatchRejected: explicitly requesting a sync
// group different from the checkpoint's must fail — it would silently
// change the training trajectory.
func TestResumeGroupSizeMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g2.ckpt")
	opts := distOpts(1, path)
	opts.GroupSize = 2
	if _, err := Fit(resumeNet(7), resumeData(), opts); err != nil {
		t.Fatal(err)
	}
	bad := distOpts(2, path)
	bad.Resume = true
	bad.GroupSize = 3
	_, err := Fit(resumeNet(7), resumeData(), bad)
	if err == nil || !strings.Contains(err.Error(), "sync group") {
		t.Fatalf("group-size mismatch on resume: err = %v, want rejection", err)
	}
}

// TestGroupModeRejectsRollback: rolling back one worker of a fleet
// would desynchronize it, so the combination must be refused upfront.
func TestGroupModeRejectsRollback(t *testing.T) {
	_, err := Fit(resumeNet(7), resumeData(), Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 41,
		Reducer: dist.Local{}, NaNPolicy: NaNRollback,
	})
	if err == nil || !strings.Contains(err.Error(), "NaNRollback") {
		t.Fatalf("rollback in group mode: err = %v, want rejection", err)
	}
}

// injectorNet builds a small BN net with a NaN injector spliced before
// the head, poisoning the forward pass after `after` batches.
func injectorNet(seed int64, after int) (*nn.Sequential, *faultinject.NaNInjector) {
	rng := tensor.NewRNG(seed)
	conv := nn.NewConv2D("c1", 3, 6, 3, 1, 1, false, rng)
	inj := faultinject.NewNaNInjector(conv, faultinject.InForward, after)
	net := nn.NewSequential("inj",
		inj,
		nn.NewBatchNorm2D("b1", 6),
		nn.NewReLU("r1"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 6, 4, rng),
	)
	return net, inj
}

// TestGroupModeNaNSkip: a poisoned batch under the skip policy is
// dropped from the fold and training completes.
func TestGroupModeNaNSkip(t *testing.T) {
	net, inj := injectorNet(7, 2)
	hist, err := Fit(net, resumeData(), Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 41,
		Reducer: dist.Local{}, GroupSize: 2, NaNPolicy: NaNSkip,
	})
	if err != nil {
		t.Fatalf("skip policy must train through the poisoned batch: %v", err)
	}
	if inj.Injections() == 0 {
		t.Fatal("injector never fired; the test asserted nothing")
	}
	if len(hist.Loss) != 1 || math.IsNaN(float64(hist.Loss[0])) {
		t.Fatalf("bad history after skip: %+v", hist)
	}
}

// TestGroupModeNaNAbort: the default policy stops the fleet loudly.
func TestGroupModeNaNAbort(t *testing.T) {
	net, _ := injectorNet(7, 2)
	_, err := Fit(net, resumeData(), Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 41,
		Reducer: dist.Local{}, GroupSize: 2, NaNPolicy: NaNAbort,
	})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("abort policy: err = %v, want non-finite abort", err)
	}
}

// TestSGDExportExplicitZeros: a parameter that has not stepped yet must
// export an explicit zero-velocity buffer, not be omitted — omission
// would be indistinguishable from "missing from the checkpoint" on an
// elastic resume.
func TestSGDExportExplicitZeros(t *testing.T) {
	stepped := nn.NewParam("a", tensor.NewFrom([]float32{1, 2}, 2), false)
	fresh := nn.NewParam("b", tensor.NewFrom([]float32{3, 4, 5}, 3), false)
	opt := NewSGD(0.1, 0.9, 0)
	stepped.Grad.Data[0] = 1
	opt.Step([]*nn.Param{stepped})

	st, err := opt.ExportState([]*nn.Param{stepped, fresh})
	if err != nil {
		t.Fatal(err)
	}
	zeros, ok := st["b"]
	if !ok {
		t.Fatal("never-stepped parameter missing from exported optimizer state")
	}
	if len(zeros) != 3 {
		t.Fatalf("zero-velocity buffer has %d values, want 3", len(zeros))
	}
	for i, v := range zeros {
		if v != 0 {
			t.Fatalf("zero-velocity buffer[%d] = %v", i, v)
		}
	}
}

// TestFitRejectsNegativeGroupSize covers the upfront option validation.
func TestFitRejectsNegativeGroupSize(t *testing.T) {
	if _, err := Fit(resumeNet(7), resumeData(), Options{
		Epochs: 1, BatchSize: 16, GroupSize: -1,
	}); err == nil {
		t.Fatal("negative GroupSize must be rejected")
	}
}
