package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSGDStepDirection(t *testing.T) {
	w := tensor.NewFrom([]float32{1}, 1)
	p := nn.NewParam("w", w, false)
	p.Grad.Data[0] = 2
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*nn.Param{p})
	if p.W.Data[0] != 1-0.1*2 {
		t.Fatalf("w = %v", p.W.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", tensor.NewFrom([]float32{0}, 1), false)
	opt := NewSGD(1, 0.5, 0)
	p.Grad.Data[0] = 1
	opt.Step([]*nn.Param{p}) // v = -1, w = -1
	p.Grad.Data[0] = 1
	opt.Step([]*nn.Param{p}) // v = -0.5 - 1 = -1.5, w = -2.5
	if p.W.Data[0] != -2.5 {
		t.Fatalf("momentum trajectory wrong: %v", p.W.Data[0])
	}
}

func TestSGDWeightDecayRespectsFlag(t *testing.T) {
	decayed := nn.NewParam("w", tensor.NewFrom([]float32{1}, 1), true)
	plain := nn.NewParam("b", tensor.NewFrom([]float32{1}, 1), false)
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*nn.Param{decayed, plain})
	if decayed.W.Data[0] != 1-0.1*0.5 {
		t.Fatalf("decayed w = %v", decayed.W.Data[0])
	}
	if plain.W.Data[0] != 1 {
		t.Fatalf("undecayed param moved: %v", plain.W.Data[0])
	}
}

// TestFitLearnsTinyProblem trains a small CNN on the synthetic dataset and
// requires the loss to drop and accuracy to exceed chance by a wide margin.
func TestFitLearnsTinyProblem(t *testing.T) {
	ds := dataset.SyntheticImages(4, 160, 3, 16, 16, 1)
	rng := tensor.NewRNG(2)
	net := nn.NewSequential("tiny",
		nn.NewConv2D("c1", 3, 8, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b1", 8),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewConv2D("c2", 8, 16, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b2", 16),
		nn.NewReLU("r2"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 16, 4, rng),
	)
	hist := MustFit(net, ds, Options{Epochs: 6, BatchSize: 16, LR: 0.1, Seed: 3})
	first, last := hist.Loss[0], hist.Loss[len(hist.Loss)-1]
	if last >= first {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
	acc := Evaluate(net, ds, 32)
	if acc < 0.6 {
		t.Fatalf("train accuracy %v too low (chance = 0.25)", acc)
	}
}

func TestQATModelTrains(t *testing.T) {
	ds := dataset.SyntheticImages(4, 96, 3, 16, 16, 5)
	cfg := models.Config{Classes: 4, Scale: 0.25, QATBits: 4, Seed: 6}
	rng := tensor.NewRNG(7)
	_ = rng
	net := models.ResNet(20, cfg)
	hist := MustFit(net, ds, Options{Epochs: 3, BatchSize: 16, LR: 0.05, Seed: 8})
	if hist.Loss[len(hist.Loss)-1] >= hist.Loss[0] {
		t.Fatalf("QAT loss did not drop: %v", hist.Loss)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	ds := &dataset.Dataset{X: tensor.New(0, 3, 8, 8), Y: nil, Classes: 10}
	rng := tensor.NewRNG(1)
	net := nn.NewSequential("n", nn.NewGlobalAvgPool2D("g"), nn.NewLinear("fc", 3, 10, rng))
	if acc := Evaluate(net, ds, 8); acc != 0 {
		t.Fatalf("empty dataset accuracy = %v", acc)
	}
}

func TestLRSchedule(t *testing.T) {
	ds := dataset.SyntheticImages(2, 8, 1, 8, 8, 9)
	rng := tensor.NewRNG(10)
	net := nn.NewSequential("n",
		nn.NewConv2D("c", 1, 4, 3, 1, 1, false, rng),
		nn.NewGlobalAvgPool2D("g"),
		nn.NewLinear("fc", 4, 2, rng),
	)
	// Just exercise the schedule path; 4 epochs with drops every 1.
	MustFit(net, ds, Options{Epochs: 4, BatchSize: 4, LR: 0.1, LRDropEvery: 1, Seed: 11})
}

func TestFitWithAugmentation(t *testing.T) {
	ds := dataset.SyntheticImages(4, 128, 3, 16, 16, 21)
	rng := tensor.NewRNG(22)
	net := nn.NewSequential("aug",
		nn.NewConv2D("c1", 3, 8, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b1", 8),
		nn.NewReLU("r1"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 8, 4, rng),
	)
	hist := MustFit(net, ds, Options{
		Epochs: 5, BatchSize: 16, LR: 0.1, Seed: 23,
		Augment: dataset.NewAugmenter(2, true, 24),
	})
	if hist.Loss[len(hist.Loss)-1] >= hist.Loss[0] {
		t.Fatalf("augmented training did not learn: %v", hist.Loss)
	}
}
