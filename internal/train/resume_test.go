package train

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// resumeNet builds the same small CNN every time for a given seed, so
// two runs start from bit-identical weights.
func resumeNet(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("r",
		nn.NewConv2D("c1", 3, 6, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("b1", 6),
		nn.NewReLU("r1"),
		nn.NewConv2D("c2", 6, 8, 3, 2, 1, false, rng),
		nn.NewReLU("r2"),
		nn.NewGlobalAvgPool2D("gap"),
		nn.NewLinear("fc", 8, 4, rng),
	)
}

func resumeData() *dataset.Dataset {
	return dataset.SyntheticImages(4, 80, 3, 12, 12, 31)
}

func stateOf(t *testing.T, net nn.Module) map[string][]float32 {
	t.Helper()
	st, err := nn.StateTensors(net)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]float32, len(st))
	for k, v := range st {
		out[k] = append([]float32(nil), v...)
	}
	return out
}

// TestResumeBitIdentical is the central determinism guarantee: training
// checkpointed every epoch, killed after epoch 2 of 4, and resumed must
// produce bit-identical final weights, history, and checkpoint FILE
// BYTES to a run that was never interrupted.
func TestResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ds := resumeData()
	base := Options{
		Epochs: 4, BatchSize: 16, LR: 0.05, Momentum: 0.9, Decay: 1e-4,
		Seed: 41, LRDropEvery: 2, CkptEvery: 1,
		Augment: dataset.NewAugmenter(2, true, 42),
	}

	// Uninterrupted reference run.
	full := resumeNet(7)
	optsA := base
	optsA.CkptPath = filepath.Join(dir, "a.ckpt")
	optsA.Augment = dataset.NewAugmenter(2, true, 42)
	histA, err := Fit(full, ds, optsA)
	if err != nil {
		t.Fatal(err)
	}

	// "Crashed" run: identical net, stopped after 2 epochs...
	crashed := resumeNet(7)
	optsB := base
	optsB.Epochs = 2
	optsB.CkptPath = filepath.Join(dir, "b.ckpt")
	optsB.Augment = dataset.NewAugmenter(2, true, 42)
	if _, err := Fit(crashed, ds, optsB); err != nil {
		t.Fatal(err)
	}

	// ...resumed in a NEW process (modeled by a fresh net with different
	// init — everything must come from the checkpoint).
	resumed := resumeNet(999)
	optsC := base
	optsC.CkptPath = optsB.CkptPath
	optsC.Resume = true
	optsC.Augment = dataset.NewAugmenter(2, true, 42)
	histC, err := Fit(resumed, ds, optsC)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical weights.
	a, c := stateOf(t, full), stateOf(t, resumed)
	for name, av := range a {
		cv := c[name]
		if len(av) != len(cv) {
			t.Fatalf("tensor %s length mismatch", name)
		}
		for i := range av {
			if math.Float32bits(av[i]) != math.Float32bits(cv[i]) {
				t.Fatalf("tensor %s[%d]: uninterrupted %v vs resumed %v (not bit-identical)",
					name, i, av[i], cv[i])
			}
		}
	}
	// Identical history (the resumed run's history includes the epochs
	// before the crash, restored from the checkpoint).
	if !reflect.DeepEqual(histA, histC) {
		t.Fatalf("history mismatch:\nfull    %+v\nresumed %+v", histA, histC)
	}
	// Bit-identical checkpoint files.
	ba, err := os.ReadFile(optsA.CkptPath)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := os.ReadFile(optsC.CkptPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bc) {
		t.Fatal("final checkpoint files must be bit-identical between uninterrupted and resumed runs")
	}
}

// TestResumeSeedMismatchRejected: silently resuming with a different
// seed would break the determinism contract, so it must error.
func TestResumeSeedMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	net := resumeNet(1)
	ds := resumeData()
	if _, err := Fit(net, ds, Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 5, CkptPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(resumeNet(1), ds, Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 6, CkptPath: path, Resume: true,
	}); err == nil {
		t.Fatal("resuming with a different seed must be rejected")
	}
}

// TestResumeModelOnlyCheckpointRejected: an inference (model-only)
// checkpoint has no optimizer/progress state; resuming from it would
// silently restart momentum and the LR schedule.
func TestResumeModelOnlyCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	net := resumeNet(1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Save(f, net); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Fit(resumeNet(1), resumeData(), Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 5, CkptPath: path, Resume: true,
	}); err == nil {
		t.Fatal("resuming from a model-only checkpoint must be rejected")
	}
}

// TestResumeWithoutCheckpointStartsFresh: -resume on a path that has no
// checkpoint yet (crash before the first save) trains from scratch.
func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.ckpt")
	hist, err := Fit(resumeNet(1), resumeData(), Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 5, CkptPath: path, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume with no checkpoint must start fresh: %v", err)
	}
	if len(hist.Loss) != 1 {
		t.Fatalf("expected 1 epoch of history, got %d", len(hist.Loss))
	}
	if _, _, err := ckpt.LoadFile(path); err != nil {
		t.Fatalf("fresh run must have checkpointed: %v", err)
	}
}

// TestResumeAlreadyComplete: resuming a finished run is a no-op that
// returns the recorded history.
func TestResumeAlreadyComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.ckpt")
	ds := resumeData()
	histA, err := Fit(resumeNet(1), ds, Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 5, CkptPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	histB, err := Fit(resumeNet(2), ds, Options{
		Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 5, CkptPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(histA, histB) {
		t.Fatal("re-resuming a complete run must return the recorded history")
	}
}

// TestSGDExportImportRoundTrip: momentum buffers survive a round trip
// and missing entries reset to zero velocity.
func TestSGDExportImportRoundTrip(t *testing.T) {
	p1 := nn.NewParam("a", tensor.NewFrom([]float32{1, 2}, 2), false)
	p2 := nn.NewParam("b", tensor.NewFrom([]float32{3}, 1), false)
	params := []*nn.Param{p1, p2}
	opt := NewSGD(0.1, 0.9, 0)
	p1.Grad.Data[0], p1.Grad.Data[1], p2.Grad.Data[0] = 1, 2, 3
	opt.Step(params)

	st, err := opt.ExportState(params)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := NewSGD(0.1, 0.9, 0)
	if err := opt2.ImportState(params, st); err != nil {
		t.Fatal(err)
	}
	st2, err := opt2.ExportState(params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("momentum round trip mismatch: %v vs %v", st, st2)
	}

	// Length mismatch must error.
	bad := map[string][]float32{"a": {1, 2, 3}}
	if err := opt2.ImportState(params, bad); err == nil {
		t.Fatal("momentum length mismatch must be rejected")
	}
}

// TestFitEmptyDatasetErrors: a zero-sample dataset must produce an
// error, not NaN metrics from a 0/0 division.
func TestFitEmptyDatasetErrors(t *testing.T) {
	empty := &dataset.Dataset{X: tensor.New(0, 3, 12, 12), Y: nil, Classes: 4}
	if _, err := Fit(resumeNet(1), empty, Options{Epochs: 1, BatchSize: 16}); err == nil {
		t.Fatal("fitting an empty dataset must error")
	}
}

// TestFitBatchEdgeCases: batch sizes that don't divide the sample count,
// exceed it, or equal 1 all train without panicking.
func TestFitBatchEdgeCases(t *testing.T) {
	ds := dataset.SyntheticImages(4, 10, 3, 8, 8, 3) // 10 samples
	for _, bs := range []int{1, 3, 7, 10, 64} {
		hist, err := Fit(resumeNet(int64(bs)), ds, Options{
			Epochs: 1, BatchSize: bs, LR: 0.01, Seed: 4,
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", bs, err)
		}
		if len(hist.Loss) != 1 || math.IsNaN(float64(hist.Loss[0])) {
			t.Fatalf("batch=%d: bad history %v", bs, hist.Loss)
		}
		if hist.TrainAcc[0] < 0 || hist.TrainAcc[0] > 1 {
			t.Fatalf("batch=%d: accuracy out of range: %v", bs, hist.TrainAcc[0])
		}
	}
}

// TestEvaluateBatchEdgeCases mirrors the Fit edge cases on the
// evaluation path.
func TestEvaluateBatchEdgeCases(t *testing.T) {
	ds := dataset.SyntheticImages(4, 10, 3, 8, 8, 5)
	net := resumeNet(6)
	for _, bs := range []int{1, 3, 10, 64, 0, -1} {
		acc := Evaluate(net, ds, bs)
		if acc < 0 || acc > 1 || math.IsNaN(acc) {
			t.Fatalf("batch=%d: accuracy out of range: %v", bs, acc)
		}
	}
}

// TestGradClipNorm: with a tiny clip threshold every step clips, and
// training still proceeds with finite weights.
func TestGradClipNorm(t *testing.T) {
	net := resumeNet(8)
	hist, err := Fit(net, resumeData(), Options{
		Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 9, ClipNorm: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Loss) != 1 {
		t.Fatal("training with clipping must complete")
	}
	for _, p := range net.Params() {
		for _, v := range p.W.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("clipped training produced non-finite weights")
			}
		}
	}
}

// TestClipGradNormScales: unit test of the clipping math.
func TestClipGradNormScales(t *testing.T) {
	p := nn.NewParam("w", tensor.NewFrom([]float32{0, 0}, 2), false)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	if !clipGradNorm([]*nn.Param{p}, 1) {
		t.Fatal("norm 5 must clip at threshold 1")
	}
	norm := math.Hypot(float64(p.Grad.Data[0]), float64(p.Grad.Data[1]))
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("clipped norm = %v, want 1", norm)
	}
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0.1
	if clipGradNorm([]*nn.Param{p}, 1) {
		t.Fatal("small gradients must not clip")
	}
}

// TestParseNaNPolicy covers the CLI mapping.
func TestParseNaNPolicy(t *testing.T) {
	for s, want := range map[string]NaNPolicy{
		"abort": NaNAbort, "skip": NaNSkip, "rollback": NaNRollback,
		"ignore": NaNIgnore, "": NaNAbort,
	} {
		got, err := ParseNaNPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseNaNPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseNaNPolicy("explode"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
