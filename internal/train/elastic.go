package train

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
)

var mTrainRegroups = telemetry.GetCounter("train.regroups")

// FitElastic is the self-healing training loop: it joins a group
// through the membership layer, trains with a transport-backed reducer,
// and when the run fails with recoverable peer loss it rejoins the next
// membership epoch — at whatever world size survives — rebuilds the
// network with build, resumes from the last durable checkpoint, and
// continues. Because the sync-group size G (not the worker count)
// defines the training trajectory and G travels in the checkpoint, the
// post-regroup run is byte-identical to an uninterrupted run at the
// surviving worker count.
//
// The invariant buys its simplicity with two requirements the options
// must meet up front, rather than defaulting to something that silently
// breaks it:
//
//   - GroupSize must be explicit (>= 1): a default of "the worker
//     count" would make G depend on WHEN a worker died relative to the
//     first checkpoint.
//   - CkptPath must be set, on a path all ranks can read: the regroup
//     rolls every survivor back to the same durable state. Rank 0 is
//     the only writer; a survivor that was rank 2 may resume as rank 1.
//
// Protocol violations and training errors stay fatal — a regroup can
// outlive a dead process, not a logic bug. Fit's own retry budget is
// bounded by the membership layer (ElasticOptions.MaxRegroups).
//
// The returned module is the last-built network holding the final
// trained parameters (only meaningful when err is nil).
func FitElastic(m dist.Membership, build func() (nn.Module, error), ds *dataset.Dataset, opts Options) (*History, nn.Module, error) {
	if opts.GroupSize < 1 {
		return nil, nil, fmt.Errorf("train: FitElastic requires an explicit GroupSize >= 1 (got %d): the sync-group size must not depend on which workers survive", opts.GroupSize)
	}
	if opts.CkptPath == "" {
		return nil, nil, fmt.Errorf("train: FitElastic requires CkptPath: regroup recovery resumes from the last durable checkpoint")
	}
	if opts.Reducer != nil {
		return nil, nil, fmt.Errorf("train: FitElastic builds its own reducer per membership epoch; Options.Reducer must be nil")
	}
	for attempt := 0; ; attempt++ {
		g, err := m.Join()
		if err != nil {
			return nil, nil, fmt.Errorf("train: joining membership epoch: %w", err)
		}
		telemetry.SetRank(g.Rank())
		net, err := build()
		if err != nil {
			g.Abort("building the network failed")
			return nil, nil, fmt.Errorf("train: building network for epoch %d: %w", g.Epoch(), err)
		}
		o := opts
		o.Reducer = dist.NewReducer(g)
		if attempt > 0 {
			// Every retry resumes from the durable checkpoint regardless of
			// how the run was originally launched; the first attempt honors
			// the caller's own Resume setting.
			o.Resume = true
		}
		olog.Info("elastic fit", "membership_epoch", g.Epoch(), "rank", g.Rank(), "world", g.World(), "attempt", attempt)
		hist, err := Fit(net, ds, o)
		if err == nil {
			g.Close()
			return hist, net, nil
		}
		if !dist.IsPeerLost(err) {
			// Fatal: tell the peers to stop waiting before giving up, so
			// they fail fast instead of burning their regroup budget.
			g.Abort(err.Error())
			return hist, net, err
		}
		// The reducer already aborted the group on its way out; rejoin the
		// next epoch and resume.
		mTrainRegroups.Inc()
		olog.Warn("peer lost, regrouping", "membership_epoch", g.Epoch(), "rank", g.Rank(), "err", err.Error())
	}
}
