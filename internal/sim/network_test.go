package sim

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func netWorks() []LayerWork {
	// Three layers with very different sensitivity levels so the
	// reconfigurable slice changes allocation between them.
	return []LayerWork{
		uniformWork(32, 64, 0.08),
		uniformWork(32, 64, 0.45),
		uniformWork(32, 64, 0.12),
	}
}

func TestSimulateNetworkReconfigures(t *testing.T) {
	r := SimulateNetwork(netWorks())
	if len(r.Layers) != 3 || len(r.Allocs) != 3 {
		t.Fatalf("layer bookkeeping wrong: %d/%d", len(r.Layers), len(r.Allocs))
	}
	if r.Allocs[0] == r.Allocs[1] {
		t.Fatalf("8%% and 45%% sensitivity must choose different allocations: %v", r.Allocs)
	}
	if r.Reconfigs < 2 {
		t.Fatalf("expected two allocation switches, got %d", r.Reconfigs)
	}
	var layerSum int64
	for _, l := range r.Layers {
		layerSum += l.Cycles
	}
	if r.Cycles != layerSum+int64(r.Reconfigs)*ReconfigPenaltyCycles {
		t.Fatalf("total %d != layers %d + penalties", r.Cycles, layerSum)
	}
}

func TestSimulateNetworkBeatsStatic(t *testing.T) {
	works := netWorks()
	auto := SimulateNetwork(works)
	static := SimulateNetworkStatic(works, AllocConfig{Predictor: 15, Executor: 12}, false)
	if auto.Cycles >= static.Cycles {
		t.Fatalf("reconfigurable %d cycles should beat static %d", auto.Cycles, static.Cycles)
	}
	if auto.IdleFrac() >= static.IdleFrac() {
		t.Fatalf("reconfigurable idle %.3f should beat static %.3f",
			auto.IdleFrac(), static.IdleFrac())
	}
}

func TestSimulateNetworkEmpty(t *testing.T) {
	r := SimulateNetwork(nil)
	if r.Cycles != 0 || r.Reconfigs != 0 || r.IdleFrac() != 0 {
		t.Fatalf("empty network result: %+v", r)
	}
}

func TestNetworkWorks(t *testing.T) {
	g := tensor.Geometry(3, 8, 8, 2, 3, 1, 1)
	mask := make([]bool, 2*64)
	mask[0] = true
	profiles := []*quant.LayerProfile{
		{Name: "a", Geom: g, Batch: 1, TotalOutputs: 128, SensitiveOutputs: 1, Mask: mask},
		{Name: "b", Geom: g, Batch: 1, TotalOutputs: 128, SensitiveOutputs: 64},
	}
	works := NetworkWorks(profiles)
	if len(works) != 2 {
		t.Fatalf("works %d", len(works))
	}
	if works[0].TotalSensitive() != 1 || works[1].TotalSensitive() != 64 {
		t.Fatalf("sensitive counts: %d %d", works[0].TotalSensitive(), works[1].TotalSensitive())
	}
}
