package sim

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/quant"
)

// Kind identifies which accelerator cost model applies.
type Kind int

// Accelerator kinds (the four columns of Table 2).
const (
	KindINT16 Kind = iota // DoReFa-Net static INT16 on native INT16 PEs
	KindINT8              // DoReFa-Net static INT8 on INT4 PEs (4 cycles/MAC)
	KindDRQ               // DRQ INT8/INT4 mixed on INT4 PEs
	KindODQ               // ODQ INT4/INT2 on INT2 PEs (predictor+executor)
)

// Accel is one accelerator configuration. The paper's Table 2 fixes all
// four to the same silicon area (0.17 mm² of PEs) and the same 0.17 MB of
// on-chip memory, which yields the PE counts below.
type Accel struct {
	Name string
	Kind Kind
	// PEs is the processing-element count at this accelerator's native
	// PE width (Table 2: 120 / 1692 / 1692 / 4860).
	PEs int
	// BytesPerCycle is the off-chip bandwidth of the memory interface.
	BytesPerCycle float64
	// OnChipBytes is the global buffer capacity (0.17 MB for all four).
	OnChipBytes int64
	// Utilization derates compute throughput for scheduling losses
	// (1 = perfect). For ODQ this is fed from the cycle simulation.
	Utilization float64
	// Mem, when set, replaces the flat read-once traffic model with the
	// capacity-aware memory-hierarchy model (tiling + input refetch).
	Mem *mem.System
}

// Table2Accels returns the paper's four accelerator configurations. All
// share the memory system; they differ in PE count and native width.
func Table2Accels() map[string]*Accel {
	const (
		bandwidth = 32.0               // bytes/cycle — LPDDR-class interface at accelerator clock
		onChip    = 17 * 1048576 / 100 // 0.17 MB, Table 2
	)
	msys := func() *mem.System {
		return &mem.System{
			GlobalBufferBytes: onChip,
			DRAMBytesPerCycle: bandwidth,
			DRAMLatencyCycles: 64,
			LineBufferRows:    3,
		}
	}
	return map[string]*Accel{
		"INT16": {Name: "INT16", Kind: KindINT16, PEs: 120, BytesPerCycle: bandwidth, OnChipBytes: onChip, Utilization: 1, Mem: msys()},
		"INT8":  {Name: "INT8", Kind: KindINT8, PEs: 1692, BytesPerCycle: bandwidth, OnChipBytes: onChip, Utilization: 1, Mem: msys()},
		"DRQ":   {Name: "DRQ", Kind: KindDRQ, PEs: 1692, BytesPerCycle: bandwidth, OnChipBytes: onChip, Utilization: 1, Mem: msys()},
		"ODQ":   {Name: "ODQ", Kind: KindODQ, PEs: 4860, BytesPerCycle: bandwidth, OnChipBytes: onChip, Utilization: 1, Mem: msys()},
	}
}

// LayerCost is the modeled cost of one layer on one accelerator.
type LayerCost struct {
	Name          string
	ComputeCycles int64
	MemoryCycles  int64
	// TotalCycles = max(compute, memory): compute and DMA overlap under
	// double buffering.
	TotalCycles int64
	// PECycles is the raw PE-occupancy (MAC-cycles) before dividing by
	// the PE count; the energy model consumes it.
	PECycles int64
	// DRAMBytes / BufferBytes are the modeled traffic volumes.
	DRAMBytes   int64
	BufferBytes int64
}

// NetworkCost aggregates layer costs.
type NetworkCost struct {
	Accel  string
	Layers []LayerCost
}

// TotalCycles sums the per-layer totals.
func (n *NetworkCost) TotalCycles() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.TotalCycles
	}
	return t
}

// TotalPECycles sums raw PE occupancy.
func (n *NetworkCost) TotalPECycles() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.PECycles
	}
	return t
}

// TotalDRAMBytes sums modeled DRAM traffic.
func (n *NetworkCost) TotalDRAMBytes() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.DRAMBytes
	}
	return t
}

// TotalBufferBytes sums modeled on-chip buffer traffic.
func (n *NetworkCost) TotalBufferBytes() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.BufferBytes
	}
	return t
}

// operandBits returns (weightBits, actBits, outBits) moved per element for
// each accelerator kind. Outputs are re-quantized to the activation width
// before write-back (the next layer consumes quantized activations), so
// output traffic scales with precision too. DRQ moves its high-precision
// widths (both weight precisions are resident on chip).
func operandBits(k Kind) (wBits, aBits, oBits int) {
	switch k {
	case KindINT16:
		return 16, 16, 16
	case KindINT8:
		return 8, 8, 8
	case KindDRQ:
		return 8, 8, 8 // sensitive regions dominate traffic sizing
	case KindODQ:
		return 4, 4, 4
	default:
		panic(fmt.Sprintf("sim: unknown kind %d", k))
	}
}

// peCycles returns the raw MAC-cycle demand of a layer under each kind's
// arithmetic model:
//
//	INT16: native PEs, 1 cycle per MAC.
//	INT8:  INT4 PEs compose an 8-bit MAC in 4 cycles (BitFusion).
//	DRQ:   high-precision-input MACs cost 4 cycles, the rest 1.
//	ODQ:   every MAC passes the INT2 predictor (1 cycle); MACs of
//	       sensitive outputs additionally pay the 3-cycle executor pass.
func peCycles(k Kind, p *quant.LayerProfile) int64 {
	switch k {
	case KindINT16:
		return p.TotalMACs
	case KindINT8:
		return 4 * p.TotalMACs
	case KindDRQ:
		low := p.TotalMACs - p.HighInputMACs
		return 4*p.HighInputMACs + low
	case KindODQ:
		sensMACs := int64(0)
		if p.TotalOutputs > 0 {
			frac := float64(p.SensitiveOutputs) / float64(p.TotalOutputs)
			sensMACs = int64(frac * float64(p.TotalMACs))
		}
		return p.TotalMACs + int64(ExecutorCyclesPerOutput)*sensMACs
	default:
		panic("sim: unknown kind")
	}
}

// LayerCostOf models one layer on this accelerator from its profile.
func (a *Accel) LayerCostOf(p *quant.LayerProfile) LayerCost {
	wBits, aBits, oBits := operandBits(a.Kind)
	g := p.Geom
	weights := int64(g.OutC) * int64(g.InC) * int64(g.K) * int64(g.K)
	inputs := int64(p.Batch) * int64(g.InC) * int64(g.InH) * int64(g.InW)
	outputs := p.TotalOutputs

	var dram, buffer, memCycles int64
	if a.Mem != nil {
		tr, err := a.Mem.ConvTraffic(g, p.Batch, wBits, aBits, oBits)
		if err != nil {
			panic(fmt.Sprintf("sim: memory model: %v", err))
		}
		dram, buffer, memCycles = tr.DRAMBytes, tr.BufferBytes, tr.DRAMCycles
	} else {
		wBytes := weights * int64(wBits) / 8
		aBytes := inputs * int64(aBits) / 8
		oBytes := outputs * int64(oBits) / 8
		dram = wBytes + aBytes + oBytes
		// On-chip traffic: weights stream into PE registers once;
		// inputs are read once per kernel row thanks to the line
		// buffers; outputs bounce through the output buffer twice.
		buffer = wBytes + aBytes*int64(g.K) + 2*oBytes
		memCycles = int64(float64(dram) / a.BytesPerCycle)
	}

	pe := peCycles(a.Kind, p)
	util := a.Utilization
	if util <= 0 || util > 1 {
		util = 1
	}
	compute := int64(float64(pe) / (float64(a.PEs) * util))
	if compute < 1 {
		compute = 1
	}
	total := compute
	if memCycles > total {
		total = memCycles
	}
	return LayerCost{
		Name:          p.Name,
		ComputeCycles: compute,
		MemoryCycles:  memCycles,
		TotalCycles:   total,
		PECycles:      pe,
		DRAMBytes:     dram,
		BufferBytes:   buffer,
	}
}

// NetworkCostOf models a whole network from its per-layer profiles.
func (a *Accel) NetworkCostOf(profiles []*quant.LayerProfile) *NetworkCost {
	nc := &NetworkCost{Accel: a.Name}
	for _, p := range profiles {
		nc.Layers = append(nc.Layers, a.LayerCostOf(p))
	}
	return nc
}
