package sim

import "repro/internal/quant"

// LayerWorkFromProfile converts a recorded layer profile (which must have
// been collected with KeepMasks so per-output sensitivity is available)
// into the cycle simulator's workload description. Each (sample, output
// channel) pair becomes one OFM, matching how the accelerator streams
// output feature maps through the slice.
func LayerWorkFromProfile(p *quant.LayerProfile) LayerWork {
	g := p.Geom
	cols := g.OutH * g.OutW
	nOFM := p.Batch * g.OutC
	w := LayerWork{OutputsPerOFM: cols, SensPerOFM: make([]int, nOFM)}
	if len(p.Mask) == nOFM*cols {
		for ofm := 0; ofm < nOFM; ofm++ {
			w.SensPerOFM[ofm] = int(quant.MaskDensity(p.Mask[ofm*cols : (ofm+1)*cols]))
		}
		return w
	}
	// Without masks fall back to spreading the aggregate sensitive count
	// uniformly across OFMs.
	if p.TotalOutputs > 0 && nOFM > 0 {
		per := int(float64(p.SensitiveOutputs) / float64(nOFM))
		rem := int(p.SensitiveOutputs) - per*nOFM
		for i := range w.SensPerOFM {
			w.SensPerOFM[i] = per
			if i < rem {
				w.SensPerOFM[i]++
			}
		}
	}
	return w
}

// ODQUtilization runs the reconfigurable-slice simulation for one layer
// and returns the achieved PE utilization (1 − idle fraction) along with
// the simulation result and the allocation chosen from Table 1.
func ODQUtilization(p *quant.LayerProfile) (float64, SliceResult, AllocConfig) {
	w := LayerWorkFromProfile(p)
	res, alloc := SimulateLayerAuto(w)
	return 1 - res.IdleFrac(), res, alloc
}
