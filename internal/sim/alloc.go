// Package sim models the reconfigurable ODQ accelerator and its
// comparison accelerators (Table 2). It has two layers of fidelity:
//
//   - a cycle-stepped simulation of one PE slice (predictor arrays,
//     executor arrays, reconfigurable arrays, the 21-OFM output buffer and
//     the static/dynamic workload schedulers) used for the PE-idleness
//     studies (Figures 11 and 20) and to validate Table 1, and
//
//   - an analytic full-network performance model driven by the per-layer
//     profiles (geometry, sensitivity masks, precision mixes) recorded by
//     the quantization executors — the same dump-masks-into-a-simulator
//     methodology the paper describes in §5.2 — used for the execution-time
//     and energy comparisons (Figures 19 and 21).
package sim

import "fmt"

// SliceArrays is the number of PE arrays in one PE slice (paper §4.2).
const SliceArrays = 27

// MinPredictorArrays and MinExecutorArrays are the fixed (non-
// reconfigurable) arrays at the two ends of the slice; the middle
// ReconfigurableArrays can be assigned to either side.
const (
	MinPredictorArrays   = 9
	MinExecutorArrays    = 6
	ReconfigurableArrays = SliceArrays - MinPredictorArrays - MinExecutorArrays // 12
)

// ExecutorCyclesPerOutput is the number of cycles the multi-precision
// executor PE needs for the three remaining partial products of one
// sensitive output's input-weight pair (paper §4.2, Figure 13(b)).
const ExecutorCyclesPerOutput = 3

// AllocConfig is one predictor/executor split of the 27 arrays.
type AllocConfig struct {
	Predictor int
	Executor  int
}

// String renders the config as "pP/eE".
func (c AllocConfig) String() string {
	return fmt.Sprintf("%dP/%dE", c.Predictor, c.Executor)
}

// MaxSensitiveFraction returns the largest sensitive-output fraction this
// split sustains without pipeline bubbles. The predictor produces
// `Predictor` outputs per cycle, of which a fraction s are sensitive; the
// executor retires Executor/3 sensitive outputs per cycle. Steady state
// requires s·P ≤ E/3.
func (c AllocConfig) MaxSensitiveFraction() float64 {
	if c.Predictor == 0 {
		return 0
	}
	return float64(c.Executor) / (float64(ExecutorCyclesPerOutput) * float64(c.Predictor))
}

// Table1Configs lists the five alternative allocations of the paper's
// Table 1 (predictor arrays from 9 to 21 in steps of 3).
func Table1Configs() []AllocConfig {
	var out []AllocConfig
	for p := MinPredictorArrays; p <= MinPredictorArrays+ReconfigurableArrays; p += 3 {
		out = append(out, AllocConfig{Predictor: p, Executor: SliceArrays - p})
	}
	return out
}

// ChooseConfig picks the allocation with the most predictor arrays (i.e.
// the highest prediction throughput) that still avoids pipeline bubbles at
// the given sensitive-output fraction. Fractions beyond the most
// executor-heavy configuration fall back to that configuration (the
// pipeline then runs executor-bound, as the paper's scheme also would).
func ChooseConfig(sensFrac float64) AllocConfig {
	cfgs := Table1Configs()
	best := cfgs[0] // 9P/18E tolerates the most sensitivity
	for _, c := range cfgs {
		if sensFrac <= c.MaxSensitiveFraction() && c.Predictor > best.Predictor {
			best = c
		}
	}
	return best
}
