package sim

import (
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestTable1Reproduction(t *testing.T) {
	// Paper Table 1: predictor/executor → max sensitive % w/o bubbles.
	want := map[int]int{9: 66, 12: 41, 15: 26, 18: 16, 21: 9}
	cfgs := Table1Configs()
	if len(cfgs) != 5 {
		t.Fatalf("config count %d", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Predictor+c.Executor != SliceArrays {
			t.Fatalf("config %v does not fill the slice", c)
		}
		got := int(c.MaxSensitiveFraction() * 100)
		if got != want[c.Predictor] {
			t.Fatalf("config %v: max sensitive %d%%, want %d%%", c, got, want[c.Predictor])
		}
	}
}

func TestChooseConfig(t *testing.T) {
	cases := []struct {
		s float64
		p int
	}{
		{0.05, 21}, {0.09, 21}, {0.12, 18}, {0.20, 15},
		{0.35, 12}, {0.50, 9}, {0.80, 9}, // beyond all bounds → most executor-heavy
	}
	for _, c := range cases {
		if got := ChooseConfig(c.s); got.Predictor != c.p {
			t.Fatalf("ChooseConfig(%v) = %v, want %dP", c.s, got, c.p)
		}
	}
}

func uniformWork(ofms, perOFM int, sensFrac float64) LayerWork {
	w := LayerWork{OutputsPerOFM: perOFM, SensPerOFM: make([]int, ofms)}
	for i := range w.SensPerOFM {
		w.SensPerOFM[i] = int(sensFrac * float64(perOFM))
	}
	return w
}

func TestSimulateLayerEmpty(t *testing.T) {
	res := SimulateLayer(LayerWork{}, DefaultSliceConfig(AllocConfig{9, 18}, true))
	if res.Cycles != 0 {
		t.Fatalf("empty layer cycles %d", res.Cycles)
	}
}

func TestSimulateLayerWorkConservation(t *testing.T) {
	w := uniformWork(30, 64, 0.25)
	res := SimulateLayer(w, DefaultSliceConfig(AllocConfig{15, 12}, true))
	if res.PredBusy != int64(w.TotalOutputs()) {
		t.Fatalf("predictor busy %d, want %d (1 cycle per output)", res.PredBusy, w.TotalOutputs())
	}
	if res.ExecBusy != int64(ExecutorCyclesPerOutput*w.TotalSensitive()) {
		t.Fatalf("executor busy %d, want %d", res.ExecBusy, 3*w.TotalSensitive())
	}
	// Busy+idle must equal arrays × cycles for each side.
	if res.PredBusy+res.PredIdle != 15*res.Cycles {
		t.Fatal("predictor cycle accounting broken")
	}
	if res.ExecBusy+res.ExecIdle != 12*res.Cycles {
		t.Fatal("executor cycle accounting broken")
	}
}

func TestSimulateLayerLowerBound(t *testing.T) {
	w := uniformWork(27, 100, 0.2)
	res := SimulateLayer(w, DefaultSliceConfig(AllocConfig{15, 12}, true))
	min := int64(w.TotalOutputs()) / 15
	if res.Cycles < min {
		t.Fatalf("cycles %d below predictor bound %d", res.Cycles, min)
	}
}

func TestNoBubblesBelowTable1Bound(t *testing.T) {
	// At a sensitive fraction safely below the bound the predictor must
	// almost never stall (only tail drain); above the bound it must
	// stall substantially (buffer back-pressure).
	alloc := AllocConfig{15, 12} // bound 26.7%
	below := SimulateLayer(uniformWork(1200, 64, 0.15), DefaultSliceConfig(alloc, true))
	above := SimulateLayer(uniformWork(1200, 64, 0.60), DefaultSliceConfig(alloc, true))
	if below.PredIdleFrac() > 0.05 {
		t.Fatalf("below bound: predictor idle %.3f too high", below.PredIdleFrac())
	}
	if above.PredIdleFrac() < 0.3 {
		t.Fatalf("above bound: predictor idle %.3f too low — no back-pressure?", above.PredIdleFrac())
	}
}

func TestDynamicWorkloadBeatsStatic(t *testing.T) {
	// Heavily skewed per-OFM sensitivity: static round-robin assignment
	// strands executor arrays; dynamic pulls work anywhere.
	w := LayerWork{OutputsPerOFM: 64, SensPerOFM: make([]int, 24)}
	for i := range w.SensPerOFM {
		if i%6 == 0 {
			w.SensPerOFM[i] = 48 // a few hot channels
		}
	}
	alloc := AllocConfig{15, 12}
	static := SimulateLayer(w, DefaultSliceConfig(alloc, false))
	dynamic := SimulateLayer(w, DefaultSliceConfig(alloc, true))
	if dynamic.Cycles > static.Cycles {
		t.Fatalf("dynamic %d cycles > static %d", dynamic.Cycles, static.Cycles)
	}
	if dynamic.ExecIdleFrac() > static.ExecIdleFrac() {
		t.Fatalf("dynamic exec idle %.3f > static %.3f",
			dynamic.ExecIdleFrac(), static.ExecIdleFrac())
	}
}

func TestReconfigurationReducesIdle(t *testing.T) {
	// A low-sensitivity layer on an executor-heavy static split wastes
	// executor arrays; auto-reconfiguration should cut overall idleness.
	w := uniformWork(100, 64, 0.08)
	bad := SimulateLayer(w, DefaultSliceConfig(AllocConfig{9, 18}, true))
	auto, alloc := SimulateLayerAuto(w)
	if alloc.Predictor != 21 {
		t.Fatalf("auto alloc %v, want 21P for 8%% sensitivity", alloc)
	}
	if auto.IdleFrac() >= bad.IdleFrac() {
		t.Fatalf("auto idle %.3f not better than static %.3f", auto.IdleFrac(), bad.IdleFrac())
	}
	if auto.Cycles >= bad.Cycles {
		t.Fatalf("auto cycles %d not better than %d", auto.Cycles, bad.Cycles)
	}
}

func TestSimulateLayerAllSensitive(t *testing.T) {
	w := uniformWork(12, 32, 1.0)
	res := SimulateLayer(w, DefaultSliceConfig(AllocConfig{9, 18}, true))
	// Executor is the bottleneck: 3 cycles × outputs / 18 arrays.
	bound := int64(3*w.TotalOutputs()) / 18
	if res.Cycles < bound {
		t.Fatalf("cycles %d below executor bound %d", res.Cycles, bound)
	}
}

func TestLayerWorkFromProfileMask(t *testing.T) {
	g := tensor.Geometry(3, 8, 8, 2, 3, 1, 1)
	mask := make([]bool, 2*2*64) // batch 2, 2 channels, 8×8
	for i := 0; i < 10; i++ {
		mask[i] = true // all in OFM 0
	}
	p := &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 2,
		TotalOutputs: int64(len(mask)), SensitiveOutputs: 10, Mask: mask,
	}
	w := LayerWorkFromProfile(p)
	if len(w.SensPerOFM) != 4 || w.OutputsPerOFM != 64 {
		t.Fatalf("work shape: %d OFMs × %d", len(w.SensPerOFM), w.OutputsPerOFM)
	}
	if w.SensPerOFM[0] != 10 || w.SensPerOFM[1] != 0 {
		t.Fatalf("per-OFM counts %v", w.SensPerOFM)
	}
	if w.TotalSensitive() != 10 {
		t.Fatalf("total sensitive %d", w.TotalSensitive())
	}
}

func TestLayerWorkFromProfileFallback(t *testing.T) {
	g := tensor.Geometry(3, 8, 8, 2, 3, 1, 1)
	p := &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 1,
		TotalOutputs: 128, SensitiveOutputs: 13,
	}
	w := LayerWorkFromProfile(p)
	if w.TotalSensitive() != 13 {
		t.Fatalf("fallback spread lost outputs: %d", w.TotalSensitive())
	}
}

func profileWith(sensFrac, highFrac float64) *quant.LayerProfile {
	g := tensor.Geometry(16, 16, 16, 32, 3, 1, 1)
	total := int64(1) * int64(g.TotalOutputs())
	macs := g.TotalMACs()
	return &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 1,
		TotalOutputs:     total,
		SensitiveOutputs: int64(sensFrac * float64(total)),
		TotalMACs:        macs,
		HighInputMACs:    int64(highFrac * float64(macs)),
	}
}

func TestTable2AccelOrdering(t *testing.T) {
	p := profileWith(0.25, 0.5)
	accels := Table2Accels()
	cost := func(name string) int64 {
		return accels[name].NetworkCostOf([]*quant.LayerProfile{p}).TotalCycles()
	}
	int16c, int8c, drqc, odqc := cost("INT16"), cost("INT8"), cost("DRQ"), cost("ODQ")
	if !(odqc < drqc && drqc < int8c && int8c < int16c) {
		t.Fatalf("cycle ordering violated: INT16=%d INT8=%d DRQ=%d ODQ=%d",
			int16c, int8c, drqc, odqc)
	}
	// Shape target: ODQ should beat INT16 by well over 10× and DRQ by
	// a small-integer factor, mirroring the paper's 97.8% / 67.6%.
	if float64(int16c)/float64(odqc) < 10 {
		t.Fatalf("ODQ vs INT16 speedup only %.1fx", float64(int16c)/float64(odqc))
	}
	if r := float64(drqc) / float64(odqc); r < 1.5 || r > 20 {
		t.Fatalf("ODQ vs DRQ speedup %.1fx outside plausible band", r)
	}
}

func TestPECyclesModels(t *testing.T) {
	p := profileWith(0.5, 0.5)
	if got := peCycles(KindINT16, p); got != p.TotalMACs {
		t.Fatalf("INT16 pe cycles %d", got)
	}
	if got := peCycles(KindINT8, p); got != 4*p.TotalMACs {
		t.Fatalf("INT8 pe cycles %d", got)
	}
	wantDRQ := 4*p.HighInputMACs + (p.TotalMACs - p.HighInputMACs)
	if got := peCycles(KindDRQ, p); got != wantDRQ {
		t.Fatalf("DRQ pe cycles %d want %d", got, wantDRQ)
	}
	wantODQ := p.TotalMACs + 3*(p.TotalMACs/2)
	if got := peCycles(KindODQ, p); math.Abs(float64(got-wantODQ)) > 2 {
		t.Fatalf("ODQ pe cycles %d want %d", got, wantODQ)
	}
}

func TestODQSensitivityDrivesCost(t *testing.T) {
	accels := Table2Accels()
	lo := accels["ODQ"].NetworkCostOf([]*quant.LayerProfile{profileWith(0.1, 0)}).TotalPECycles()
	hi := accels["ODQ"].NetworkCostOf([]*quant.LayerProfile{profileWith(0.9, 0)}).TotalPECycles()
	if hi <= lo {
		t.Fatal("more sensitive outputs must cost more on ODQ")
	}
}

func TestUtilizationDerating(t *testing.T) {
	p := profileWith(0.25, 0.5)
	a := Table2Accels()["ODQ"]
	full := a.LayerCostOf(p).ComputeCycles
	a.Utilization = 0.5
	derated := a.LayerCostOf(p).ComputeCycles
	if derated < full*19/10 {
		t.Fatalf("derating too weak: %d vs %d", derated, full)
	}
}

func TestMemoryBytesScaleWithPrecision(t *testing.T) {
	p := profileWith(0.25, 0.5)
	accels := Table2Accels()
	d16 := accels["INT16"].LayerCostOf(p).DRAMBytes
	d8 := accels["INT8"].LayerCostOf(p).DRAMBytes
	d4 := accels["ODQ"].LayerCostOf(p).DRAMBytes
	if !(d4 < d8 && d8 < d16) {
		t.Fatalf("DRAM bytes ordering: %d %d %d", d16, d8, d4)
	}
}

func TestODQUtilizationPipeline(t *testing.T) {
	g := tensor.Geometry(8, 16, 16, 16, 3, 1, 1)
	total := int64(g.TotalOutputs())
	mask := make([]bool, total)
	for i := range mask {
		if i%5 == 0 {
			mask[i] = true
		}
	}
	p := &quant.LayerProfile{
		Name: "c", Geom: g, Batch: 1,
		TotalOutputs: total, SensitiveOutputs: total / 5,
		TotalMACs: g.TotalMACs(), Mask: mask,
	}
	util, res, alloc := ODQUtilization(p)
	if util <= 0 || util > 1 {
		t.Fatalf("utilization %v out of range", util)
	}
	if res.Cycles == 0 {
		t.Fatal("simulation did not run")
	}
	if alloc.Predictor < MinPredictorArrays || alloc.Executor < MinExecutorArrays {
		t.Fatalf("alloc %v violates slice structure", alloc)
	}
}
