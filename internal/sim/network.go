package sim

import "repro/internal/quant"

// ReconfigPenaltyCycles is the cost of re-assigning the reconfigurable
// arrays between layers: in-flight work drains and the new weight set
// streams into the PE registers. The paper's reconfiguration happens
// between OFM groups; a fixed pipeline-drain cost per switch is the
// first-order model.
const ReconfigPenaltyCycles = 64

// NetworkSliceResult aggregates a whole network's pass through one
// reconfigurable PE slice.
type NetworkSliceResult struct {
	// Layers holds the per-layer simulation results in order.
	Layers []SliceResult
	// Allocs holds the chosen allocation per layer.
	Allocs []AllocConfig
	// Reconfigs counts allocation switches between consecutive layers.
	Reconfigs int
	// Cycles is the total including reconfiguration penalties.
	Cycles int64
}

// IdleFrac returns the network-wide idle fraction (array-cycles).
func (r *NetworkSliceResult) IdleFrac() float64 {
	var busy, idle int64
	for _, l := range r.Layers {
		busy += l.PredBusy + l.ExecBusy
		idle += l.PredIdle + l.ExecIdle
	}
	if busy+idle == 0 {
		return 0
	}
	return float64(idle) / float64(busy+idle)
}

// SimulateNetwork runs every layer through the reconfigurable slice with
// per-layer Table-1 allocation and dynamic workload scheduling, charging
// a drain penalty whenever the allocation changes.
func SimulateNetwork(works []LayerWork) *NetworkSliceResult {
	res := &NetworkSliceResult{}
	prev := AllocConfig{}
	for i, w := range works {
		alloc := ChooseConfig(w.SensitiveFraction())
		sr := SimulateLayer(w, DefaultSliceConfig(alloc, true))
		res.Layers = append(res.Layers, sr)
		res.Allocs = append(res.Allocs, alloc)
		res.Cycles += sr.Cycles
		if i > 0 && alloc != prev {
			res.Reconfigs++
			res.Cycles += ReconfigPenaltyCycles
		}
		prev = alloc
	}
	return res
}

// SimulateNetworkStatic runs every layer with one fixed allocation and
// scheduling mode — the baseline SimulateNetwork is compared against.
func SimulateNetworkStatic(works []LayerWork, alloc AllocConfig, dynamicWorkload bool) *NetworkSliceResult {
	res := &NetworkSliceResult{}
	for _, w := range works {
		sr := SimulateLayer(w, DefaultSliceConfig(alloc, dynamicWorkload))
		res.Layers = append(res.Layers, sr)
		res.Allocs = append(res.Allocs, alloc)
		res.Cycles += sr.Cycles
	}
	return res
}

// NetworkWorks converts recorded layer profiles (with masks) into the
// cycle simulator's workload list.
func NetworkWorks(profiles []*quant.LayerProfile) []LayerWork {
	out := make([]LayerWork, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, LayerWorkFromProfile(p))
	}
	return out
}
