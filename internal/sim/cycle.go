package sim

// This file implements the cycle-stepped PE-slice simulation. The model
// follows the paper's granularity: a predictor PE array produces one
// output feature per cycle (INT2 MACs, fully parallel across the array's
// PEs with stationary weights), and an executor PE array retires one
// sensitive output every ExecutorCyclesPerOutput cycles (the three
// remaining partial products on the multi-precision PEs). Completed OFMs
// wait in an output buffer of limited capacity; a full buffer back-
// pressures the predictor, and executor starvation shows up as executor
// idle cycles — the pipeline bubbles of §4.2.

import "repro/internal/telemetry"

var (
	mSimLayers   = telemetry.GetCounter("sim.layers")
	mSimCycles   = telemetry.GetCounter("sim.cycles")
	mSimIdleFrac = telemetry.GetHistogram("sim.idle_frac",
		telemetry.LinearBuckets(0.1, 0.1, 9)) // 0.1 .. 0.9
)

// LayerWork describes one convolution layer's workload for the slice.
type LayerWork struct {
	// OutputsPerOFM is OH·OW, the feature count per output channel.
	OutputsPerOFM int
	// SensPerOFM holds, per output channel, how many of its outputs were
	// predicted sensitive; len(SensPerOFM) is the channel count.
	SensPerOFM []int
}

// TotalOutputs returns the layer's total output-feature count.
func (w LayerWork) TotalOutputs() int {
	return w.OutputsPerOFM * len(w.SensPerOFM)
}

// TotalSensitive returns the layer's sensitive-output count.
func (w LayerWork) TotalSensitive() int {
	s := 0
	for _, v := range w.SensPerOFM {
		s += v
	}
	return s
}

// SensitiveFraction returns sensitive/total.
func (w LayerWork) SensitiveFraction() float64 {
	t := w.TotalOutputs()
	if t == 0 {
		return 0
	}
	return float64(w.TotalSensitive()) / float64(t)
}

// SliceConfig configures the simulated slice.
type SliceConfig struct {
	Alloc AllocConfig
	// DynamicWorkload enables the fine-grained scheduler of §4.3: idle
	// executor arrays pull work from any pending OFM (crossbar-fed
	// output-channel selection). When false, OFMs are statically bound
	// round-robin to executor arrays (Figure 14).
	DynamicWorkload bool
	// BufferOFMs is the output-buffer capacity in OFMs awaiting
	// execution (the paper keeps 21 OFMs pending).
	BufferOFMs int
}

// DefaultSliceConfig mirrors the paper's running example.
func DefaultSliceConfig(alloc AllocConfig, dynamic bool) SliceConfig {
	return SliceConfig{Alloc: alloc, DynamicWorkload: dynamic, BufferOFMs: 21}
}

// SliceResult reports the simulation outcome for one layer.
type SliceResult struct {
	Cycles int64
	// Busy/idle array-cycles, split by component.
	PredBusy, PredIdle int64
	ExecBusy, ExecIdle int64
}

// PredIdleFrac returns the predictor arrays' idle fraction.
func (r SliceResult) PredIdleFrac() float64 {
	t := r.PredBusy + r.PredIdle
	if t == 0 {
		return 0
	}
	return float64(r.PredIdle) / float64(t)
}

// ExecIdleFrac returns the executor arrays' idle fraction.
func (r SliceResult) ExecIdleFrac() float64 {
	t := r.ExecBusy + r.ExecIdle
	if t == 0 {
		return 0
	}
	return float64(r.ExecIdle) / float64(t)
}

// IdleFrac returns the overall idle fraction across all arrays.
func (r SliceResult) IdleFrac() float64 {
	t := r.PredBusy + r.PredIdle + r.ExecBusy + r.ExecIdle
	if t == 0 {
		return 0
	}
	return float64(r.PredIdle+r.ExecIdle) / float64(t)
}

// ofmState tracks one output feature map through the pipeline.
type ofmState struct {
	toStart   int // sensitive outputs not yet claimed by an executor array
	inFlight  int // sensitive outputs currently being computed
	execArray int // static assignment (round-robin), -1 when dynamic
}

// SimulateLayer runs the slice over one layer and returns busy/idle
// accounting. It is deterministic.
func SimulateLayer(w LayerWork, cfg SliceConfig) SliceResult {
	sp := telemetry.StartSpan("sim.layer")
	res := simulateLayer(w, cfg)
	sp.End()
	if telemetry.Enabled() {
		mSimLayers.Inc()
		mSimCycles.Add(res.Cycles)
		if res.Cycles > 0 {
			mSimIdleFrac.Observe(res.IdleFrac())
		}
	}
	return res
}

func simulateLayer(w LayerWork, cfg SliceConfig) SliceResult {
	nOFM := len(w.SensPerOFM)
	res := SliceResult{}
	if nOFM == 0 || w.OutputsPerOFM == 0 {
		return res
	}
	if cfg.BufferOFMs <= 0 {
		cfg.BufferOFMs = 21
	}
	p := cfg.Alloc.Predictor
	e := cfg.Alloc.Executor
	if p <= 0 {
		panic("sim: SimulateLayer needs at least one predictor array")
	}
	if e <= 0 && w.TotalSensitive() > 0 {
		panic("sim: sensitive outputs with no executor arrays can never drain")
	}

	// Predictor state: which OFM each array is working on and how many
	// outputs remain for it.
	type predState struct {
		ofm  int // -1 = none
		left int
	}
	preds := make([]predState, p)
	for i := range preds {
		preds[i].ofm = -1
	}
	nextOFM := 0 // next unstarted OFM

	// Executor state.
	type execState struct {
		countdown int // cycles left on current output
		ofm       int // OFM the current output belongs to, -1 = none
	}
	execs := make([]execState, e)
	for i := range execs {
		execs[i].ofm = -1
	}

	ofms := make([]*ofmState, nOFM)
	for i := range ofms {
		ea := -1
		if !cfg.DynamicWorkload && e > 0 {
			ea = i % e
		}
		ofms[i] = &ofmState{toStart: w.SensPerOFM[i], execArray: ea}
	}

	// pending holds OFM indices completed by the predictor whose
	// sensitive outputs are not yet all retired. Its length is the
	// output-buffer occupancy; a full buffer back-pressures the
	// predictor (which keeps ≈BufferOFMs OFMs waiting, per the paper).
	pending := []int{}
	donePred := 0 // OFMs fully predicted
	doneExec := 0 // OFMs fully executed (sensitive work drained)

	// takeWork claims the next sensitive output for executor array ei.
	takeWork := func(ei int) int {
		for _, oi := range pending {
			o := ofms[oi]
			if o.toStart <= 0 {
				continue
			}
			if !cfg.DynamicWorkload && o.execArray != ei {
				continue
			}
			return oi
		}
		return -1
	}

	// retire removes a drained OFM from the buffer.
	retire := func(oi int) {
		doneExec++
		for j, v := range pending {
			if v == oi {
				pending = append(pending[:j], pending[j+1:]...)
				return
			}
		}
	}

	const maxCycles = int64(1) << 40
	for cycle := int64(0); ; cycle++ {
		if cycle > maxCycles {
			panic("sim: SimulateLayer did not converge")
		}

		// Executor arrays: finish / continue / fetch.
		for i := range execs {
			ex := &execs[i]
			if ex.countdown > 0 {
				ex.countdown--
				res.ExecBusy++
				if ex.countdown == 0 {
					o := ofms[ex.ofm]
					o.inFlight--
					if o.toStart == 0 && o.inFlight == 0 {
						retire(ex.ofm)
					}
					ex.ofm = -1
				}
				continue
			}
			oi := takeWork(i)
			if oi < 0 {
				res.ExecIdle++
				continue
			}
			o := ofms[oi]
			o.toStart--
			o.inFlight++
			ex.ofm = oi
			ex.countdown = ExecutorCyclesPerOutput - 1 // this cycle counts
			res.ExecBusy++
		}

		// Predictor arrays: continue current OFM or start a new one if
		// the buffer has room for its result.
		for i := range preds {
			pr := &preds[i]
			if pr.ofm < 0 {
				if nextOFM < nOFM && len(pending) < cfg.BufferOFMs {
					pr.ofm = nextOFM
					pr.left = w.OutputsPerOFM
					nextOFM++
				} else {
					res.PredIdle++
					continue
				}
			}
			pr.left--
			res.PredBusy++
			if pr.left == 0 {
				oi := pr.ofm
				pr.ofm = -1
				donePred++
				if ofms[oi].toStart == 0 {
					// Nothing for the executor to do on this OFM.
					doneExec++
				} else {
					pending = append(pending, oi)
				}
			}
		}

		if donePred == nOFM && doneExec == nOFM {
			res.Cycles = cycle + 1
			break
		}
	}
	return res
}

// SimulateLayerAuto picks the Table-1 allocation from the layer's own
// sensitive fraction (the reconfigurable scheme of §4.3) and runs the
// dynamic-workload simulation.
func SimulateLayerAuto(w LayerWork) (SliceResult, AllocConfig) {
	alloc := ChooseConfig(w.SensitiveFraction())
	return SimulateLayer(w, DefaultSliceConfig(alloc, true)), alloc
}
