package quant

import (
	"math"
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// WeightCodesPerChannel quantizes conv weights [O, C, K, K] with one
// symmetric σ-clipped scale per output channel instead of one per tensor.
// Per-channel scales remove the cross-channel dynamic-range coupling that
// per-tensor scales suffer from (one outlier filter coarsens everyone's
// grid); they are the main knob production INT8/INT4 deployments turn.
// The returned scales align with the output-channel axis; the IntTensor's
// own Scale field is set to 1 and must not be used for dequantization.
func WeightCodesPerChannel(w *tensor.Tensor, bits int) (*tensor.IntTensor, []float32) {
	if w.Rank() != 4 {
		panic("quant: WeightCodesPerChannel requires [O,C,K,K] weights")
	}
	outC := w.Shape[0]
	per := w.Len() / outC
	levels := WeightLevels(bits)
	out := tensor.NewInt(bits, 1, w.Shape...)
	scales := make([]float32, outC)
	for o := 0; o < outC; o++ {
		ch := w.Data[o*per : (o+1)*per]
		chT := tensor.NewFrom(ch, per)
		scale := weightScale(chT, bits)
		if scale == 0 {
			scales[o] = 1
			continue
		}
		scales[o] = scale
		for i, v := range ch {
			c := int32(math.Round(float64(v / scale)))
			if c > levels {
				c = levels
			} else if c < -levels {
				c = -levels
			}
			out.Data[o*per+i] = c
		}
	}
	return out, scales
}

// DequantAccumPerChannel converts raw conv accumulators into floats using
// the activation scale and per-output-channel weight scales.
func DequantAccumPerChannel(acc []int64, actScale float32, wScales []float32, n int, g tensor.ConvGeom) *tensor.Tensor {
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	cols := g.OutH * g.OutW
	for s := 0; s < n; s++ {
		for o := 0; o < g.OutC; o++ {
			scale := actScale * wScales[o]
			base := (s*g.OutC + o) * cols
			for i := 0; i < cols; i++ {
				out.Data[base+i] = float32(acc[base+i]) * scale
			}
		}
	}
	return out
}

// PerChannelExec is a static INT-k executor with per-output-channel weight
// scales — the per-channel ablation of the static baselines.
type PerChannelExec struct {
	bits int
	Profiler

	mu       sync.Mutex
	cacheGen uint64
	wcache   map[*nn.Conv2D]perChanWeights
}

type perChanWeights struct {
	codes  *tensor.IntTensor
	scales []float32
}

// PerChannelOption configures a PerChannelExec at construction time.
type PerChannelOption func(*PerChannelExec)

// WithPerChannelProfiling enables per-layer profile recording.
func WithPerChannelProfiling() PerChannelOption {
	return func(e *PerChannelExec) { e.EnableProfiling() }
}

// NewPerChannelExec builds a per-channel static executor.
func NewPerChannelExec(bits int, opts ...PerChannelOption) *PerChannelExec {
	if bits < 1 || bits > 16 {
		panic("quant: NewPerChannelExec bits out of range [1,16]")
	}
	e := &PerChannelExec{bits: bits, wcache: make(map[*nn.Conv2D]perChanWeights)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Bits returns the configured bit width.
func (e *PerChannelExec) Bits() int { return e.bits }

// weightCodes returns the cached per-channel codes for a layer.
// Quantization runs outside the lock; the result is stored only if no
// InvalidateCache intervened (generation check), so an in-flight Conv can
// never re-populate the cache from stale weights — the same contract as
// the other executors' weight caches.
func (e *PerChannelExec) weightCodes(layer *nn.Conv2D) perChanWeights {
	e.mu.Lock()
	if w, ok := e.wcache[layer]; ok {
		e.mu.Unlock()
		return w
	}
	gen := e.cacheGen
	e.mu.Unlock()

	codes, scales := WeightCodesPerChannel(layer.EffectiveWeight(), e.bits)
	w := perChanWeights{codes: codes, scales: scales}

	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.wcache[layer]; ok {
		return cur
	}
	if e.cacheGen == gen {
		e.wcache[layer] = w
	}
	return w
}

// InvalidateCache drops cached weight codes. Call it after every weight
// mutation BEFORE issuing new Conv calls; generation tracking keeps
// in-flight Conv calls from re-populating the cache with stale codes.
func (e *PerChannelExec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheGen++
	e.wcache = make(map[*nn.Conv2D]perChanWeights)
}

// Conv implements nn.ConvExecutor.
func (e *PerChannelExec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	w := e.weightCodes(layer)
	qx := ActCodes(x, e.bits)
	acc, g := ConvAccum(qx, w.codes, layer.Stride, layer.Pad)
	n := x.Shape[0]
	out := DequantAccumPerChannel(acc, qx.Scale, w.scales, n, g)
	e.Record(&LayerProfile{
		Name:         layer.Name,
		Geom:         g,
		Batch:        n,
		TotalOutputs: int64(n) * int64(g.TotalOutputs()),
		TotalMACs:    int64(n) * g.TotalMACs(),
	})
	return out
}

var _ nn.ConvExecutor = (*PerChannelExec)(nil)
