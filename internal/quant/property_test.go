package quant

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Property-based invariants of the quantization primitives.

// Fake quantization is idempotent: Q(Q(x)) == Q(x).
func TestActQuantizerIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		q := &ActQuantizer{Bits: 4}
		x := tensor.New(50)
		rng.FillNormal(x, 0.5, 0.5)
		once := q.Forward(x)
		twice := q.Forward(once)
		return tensor.MaxAbsDiff(once, twice) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Quantizing an already-on-grid tensor recovers the same codes.
func TestActCodesStableOnGridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		x := tensor.New(50)
		rng.FillUniform(x, 0, 1)
		q1 := ActCodes(x, 4)
		onGrid := q1.Dequantize()
		q2 := ActCodes(onGrid, 4)
		for i := range q1.Data {
			if q1.Data[i] != q2.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Weight quantization is odd-symmetric: Q(−w) == −Q(w).
func TestWeightCodesOddSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		w := tensor.New(60)
		rng.FillNormal(w, 0, 0.7)
		q := WeightCodes(w, 4)
		neg := w.Clone()
		neg.Scale(-1)
		qn := WeightCodes(neg, 4)
		for i := range q.Data {
			if q.Data[i] != -qn.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The four-part composition (Eq. 3) holds for every random layer and for
// both split flavors the executor uses.
func TestEq3CompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		c := 1 + rng.Intn(3)
		h := 4 + rng.Intn(4)
		o := 1 + rng.Intn(3)
		x := tensor.New(1, c, h, h)
		rng.FillUniform(x, 0, 1)
		w := tensor.New(o, c, 3, 3)
		rng.FillNormal(w, 0, 0.4)

		qx := ActCodes(x, 4)
		qw := WeightCodes(w, 4)
		full, _ := ConvAccum(qx, qw, 1, 1)

		xh, xl := SplitCodesRounded(qx, 2, false)
		wh, wl := SplitCodesRounded(qw, 2, true)
		hh, _ := ConvAccum(xh, wh, 1, 1)
		hl, _ := ConvAccum(xh, wl, 1, 1)
		lh, _ := ConvAccum(xl, wh, 1, 1)
		ll, _ := ConvAccum(xl, wl, 1, 1)
		for i := range full {
			if hh[i]<<4+(hl[i]+lh[i])<<2+ll[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Per-channel quantization error never exceeds per-tensor error by more
// than float jitter (per-channel grids are at least as fine per filter).
func TestPerChannelAtLeastAsAccurateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		w := tensor.New(4, 2, 3, 3)
		rng.FillNormal(w, 0, 0.5)
		// Exaggerate one filter to stress the per-tensor grid.
		for i := 0; i < 18; i++ {
			w.Data[i] *= 8
		}
		qT := WeightCodes(w, 4)
		deqT := qT.Dequantize()
		qC, scales := WeightCodesPerChannel(w, 4)
		deqC := tensor.New(w.Shape...)
		per := w.Len() / 4
		for o := 0; o < 4; o++ {
			for i := 0; i < per; i++ {
				deqC.Data[o*per+i] = float32(qC.Data[o*per+i]) * scales[o]
			}
		}
		errT := tensor.MeanAbsDiff(w, deqT)
		errC := tensor.MeanAbsDiff(w, deqC)
		return errC <= errT*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
