package quant

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestWeightCodesPerChannelScales(t *testing.T) {
	// Two filters with very different magnitudes: per-channel scales
	// must differ while per-tensor coupling would share one.
	w := tensor.New(2, 1, 2, 2)
	for i := 0; i < 4; i++ {
		w.Data[i] = float32(i+1) * 0.01 // small filter
		w.Data[4+i] = float32(i+1) * 1  // big filter
	}
	codes, scales := WeightCodesPerChannel(w, 4)
	if len(scales) != 2 {
		t.Fatalf("scales %v", scales)
	}
	if scales[0] >= scales[1] {
		t.Fatalf("small filter must get the finer scale: %v", scales)
	}
	// Both filters should use the full code range despite the 100x
	// magnitude gap.
	maxCode := func(o int) int32 {
		var m int32
		for i := 0; i < 4; i++ {
			c := codes.Data[o*4+i]
			if c < 0 {
				c = -c
			}
			if c > m {
				m = c
			}
		}
		return m
	}
	if maxCode(0) < 5 || maxCode(1) < 5 {
		t.Fatalf("per-channel codes underutilized: %d %d", maxCode(0), maxCode(1))
	}
}

func TestPerChannelBeatsPerTensorOnSkewedFilters(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	// Skew filter magnitudes by ~30x across output channels.
	per := conv.Weight.W.Len() / 4
	for o := 0; o < 4; o++ {
		mag := float32(1)
		if o == 3 {
			mag = 30
		}
		for i := 0; i < per; i++ {
			conv.Weight.W.Data[o*per+i] *= mag
		}
	}
	x := tensor.New(1, 3, 8, 8)
	rng.FillUniform(x, 0, 1)
	ref := conv.Forward(x, false)

	conv.Exec = NewStaticExec(4)
	perTensor := conv.Forward(x, false)
	conv.Exec = NewPerChannelExec(4)
	perChan := conv.Forward(x, false)
	conv.Exec = nil

	errT := tensor.MeanAbsDiff(ref, perTensor)
	errC := tensor.MeanAbsDiff(ref, perChan)
	if errC >= errT {
		t.Fatalf("per-channel error %v should beat per-tensor %v on skewed filters", errC, errT)
	}
}

func TestDequantAccumPerChannel(t *testing.T) {
	g := tensor.Geometry(1, 2, 2, 2, 1, 1, 0)
	acc := []int64{1, 2, 3, 4, 10, 20, 30, 40}
	out := DequantAccumPerChannel(acc, 0.5, []float32{1, 0.1}, 1, g)
	if out.Data[0] != 0.5 || out.Data[4] != 0.5 {
		t.Fatalf("per-channel dequant wrong: %v", out.Data)
	}
}

func TestPerChannelExecProfiler(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	e := NewPerChannelExec(8, WithPerChannelProfiling())
	conv.Exec = e
	conv.Forward(tensor.New(1, 2, 6, 6), false)
	if len(e.Profiles()) != 1 {
		t.Fatal("profiler must record")
	}
}

func TestWeightCodesPerChannelBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-4D weights")
		}
	}()
	WeightCodesPerChannel(tensor.New(4, 4), 4)
}
