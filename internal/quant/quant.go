// Package quant implements the quantization primitives shared by every
// scheme in this reproduction: DoReFa-style fake quantizers for
// quantization-aware training, integer code extraction with per-tensor
// scales, the high/low bit split at the heart of ODQ (Eq. 3 of the paper),
// and static INT-k integer inference executors (the DoReFa-Net INT16/INT8
// baselines of the evaluation).
package quant

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ActLevels returns the number of positive quantization levels for an
// unsigned k-bit activation code (2^k − 1).
func ActLevels(bits int) int32 { return int32(1<<uint(bits)) - 1 }

// WeightLevels returns the maximum magnitude of a signed symmetric k-bit
// weight code (2^(k−1) − 1).
func WeightLevels(bits int) int32 { return int32(1<<uint(bits-1)) - 1 }

// ActQuantizer fake-quantizes activations DoReFa style: clamp to [0,1],
// then snap to the uniform unsigned k-bit grid. Backward is the straight-
// through estimator masked to the clamp range.
type ActQuantizer struct {
	Bits int
}

// Forward implements nn.FakeQuant.
func (q *ActQuantizer) Forward(x *tensor.Tensor) *tensor.Tensor {
	levels := float32(ActLevels(q.Bits))
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out.Data[i] = float32(math.Round(float64(v*levels))) / levels
	}
	return out
}

// Backward implements nn.FakeQuant (STE with clip-range mask).
func (q *ActQuantizer) Backward(grad, x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, v := range x.Data {
		if v >= 0 && v <= 1 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// WeightClipSigma bounds the symmetric weight-quantization range at this
// many standard deviations (when below the max-abs value). Like DoReFa's
// tanh normalization, clipping the Gaussian tails spreads the integer
// codes across the full range — without it almost no weight reaches the
// high-order code bits and ODQ's 2-bit sensitivity predictor goes blind.
const WeightClipSigma = 2.0

// weightScale returns the shared quantization step for a weight tensor:
// symmetric, σ-clipped at low bit widths (≤4, where spreading the codes
// matters and quantization-aware training absorbs the clipping), plain
// max-abs at higher widths (where requantizing an already-trained tensor
// must stay lossless).
func weightScale(w *tensor.Tensor, bits int) float32 {
	levels := float32(WeightLevels(bits))
	mx := w.AbsMax()
	if mx == 0 {
		return 0
	}
	if bits > 4 {
		return mx / levels
	}
	var sum, sq float64
	for _, v := range w.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(w.Len())
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	bound := float32(WeightClipSigma * sd)
	if bound == 0 || bound > mx {
		bound = mx
	}
	return bound / levels
}

// WeightQuantizer fake-quantizes weights with a symmetric σ-clipped k-bit
// grid. Backward is a pure straight-through estimator.
type WeightQuantizer struct {
	Bits int
}

// Forward implements nn.FakeQuant.
func (q *WeightQuantizer) Forward(w *tensor.Tensor) *tensor.Tensor {
	levels := float32(WeightLevels(q.Bits))
	out := tensor.New(w.Shape...)
	scale := weightScale(w, q.Bits)
	if scale == 0 {
		return out
	}
	for i, v := range w.Data {
		c := float32(math.Round(float64(v / scale)))
		if c > levels {
			c = levels
		} else if c < -levels {
			c = -levels
		}
		out.Data[i] = c * scale
	}
	return out
}

// Backward implements nn.FakeQuant (pass-through STE).
func (q *WeightQuantizer) Backward(grad, _ *tensor.Tensor) *tensor.Tensor {
	return grad.Clone()
}

// Compile-time interface checks.
var (
	_ nn.FakeQuant = (*ActQuantizer)(nil)
	_ nn.FakeQuant = (*WeightQuantizer)(nil)
)

// QuantReLU is the clipped, quantized activation layer that replaces ReLU
// in quantization-aware training (where DoReFa clips activations to [0,1]).
// At inference its output lies exactly on the unsigned k-bit grid, so
// downstream integer executors recover codes losslessly.
type QuantReLU struct {
	Name string
	Bits int
	// Range is the clipping range in input units (PACT-style α): the
	// layer computes quantize(clamp(x/Range, 0, 1)), so its *output*
	// always lies on the [0,1] k-bit grid regardless of Range and the
	// integer executors need no per-layer range plumbing. A Range wider
	// than 1 keeps gradients alive through deep stacks (a hard [0,1]
	// clip saturates ~2/3 of a unit-normal pre-activation and deep
	// ResNets stop training). Zero means 1.
	Range float32
	// Relaxed keeps the clipping but skips the discretization — the
	// warm-up phase of quantization-aware training. Training first with
	// the clip and only then with the grid makes the QAT transition
	// mild (deep networks fail to train when both land at once).
	Relaxed bool

	inX *tensor.Tensor
}

// NewQuantReLU builds the quantized activation layer.
func NewQuantReLU(name string, bits int) *QuantReLU {
	return &QuantReLU{Name: name, Bits: bits}
}

func (q *QuantReLU) rng() float32 {
	if q.Range <= 0 {
		return 1
	}
	return q.Range
}

// Forward implements nn.Module.
func (q *QuantReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		q.inX = x
	}
	r := q.rng()
	out := tensor.New(x.Shape...)
	levels := float32(ActLevels(q.Bits))
	for i, v := range x.Data {
		v /= r
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		if !q.Relaxed {
			v = float32(math.Round(float64(v*levels))) / levels
		}
		out.Data[i] = v
	}
	return out
}

// Backward implements nn.Module: clipped-range straight-through gradient
// (both modes).
func (q *QuantReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if q.inX == nil {
		panic("quant: QuantReLU.Backward without cached forward")
	}
	defer func() { q.inX = nil }()
	r := q.rng()
	dx := tensor.New(grad.Shape...)
	for i, v := range q.inX.Data {
		if v >= 0 && v <= r {
			dx.Data[i] = grad.Data[i] / r
		}
	}
	return dx
}

// Params implements nn.Module.
func (q *QuantReLU) Params() []*nn.Param { return nil }

// Visit implements nn.Module.
func (q *QuantReLU) Visit(f func(nn.Module)) { f(q) }

// ActCodes quantizes a float activation tensor to unsigned k-bit integer
// codes (clamping to [0,1] first, per the DoReFa convention).
func ActCodes(x *tensor.Tensor, bits int) *tensor.IntTensor {
	levels := ActLevels(bits)
	scale := 1 / float32(levels)
	out := tensor.NewInt(bits, scale, x.Shape...)
	fl := float64(levels)
	for i, v := range x.Data {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out.Data[i] = int32(math.Round(float64(v) * fl))
	}
	return out
}

// WeightCodes quantizes a float weight tensor to signed symmetric k-bit
// integer codes with the shared σ-clipped per-tensor scale (identical to
// the grid WeightQuantizer trains against).
func WeightCodes(w *tensor.Tensor, bits int) *tensor.IntTensor {
	levels := WeightLevels(bits)
	scale := weightScale(w, bits)
	if scale == 0 {
		return tensor.NewInt(bits, 1, w.Shape...)
	}
	out := tensor.NewInt(bits, scale, w.Shape...)
	for i, v := range w.Data {
		c := int32(math.Round(float64(v / scale)))
		if c > levels {
			c = levels
		} else if c < -levels {
			c = -levels
		}
		out.Data[i] = c
	}
	return out
}

// SplitCodes splits each code into its high-order and low-order parts
// using the exact two's-complement identity c = (c>>n)<<n + (c & (2^n−1)).
// The high tensor's scale absorbs the 2^n shift so hi.Dequantize() +
// lo.Dequantize() reconstructs the original real values exactly. Use this
// split for unsigned activation codes.
func SplitCodes(t *tensor.IntTensor, lowBits int) (hi, lo *tensor.IntTensor) {
	mask := int32(1<<uint(lowBits)) - 1
	hi = tensor.NewInt(t.Bits-lowBits, t.Scale*float32(int32(1)<<uint(lowBits)), t.Shape...)
	lo = tensor.NewInt(lowBits, t.Scale, t.Shape...)
	for i, c := range t.Data {
		hi.Data[i] = c >> uint(lowBits)
		lo.Data[i] = c & mask
	}
	return hi, lo
}

// SplitCodesSigned splits signed codes sign-magnitude style:
// hi = sign(c)·(|c|>>n), lo = sign(c)·(|c| & (2^n−1)), so that
// c = hi<<n + lo exactly while the low part stays zero-centered
// (lo ∈ [−(2^n−1), 2^n−1]). This is the split ODQ needs for weights: with
// a two's-complement split the low parts would be systematically
// non-negative and the predictor (high×high) term would carry a large
// bias on the insensitive outputs it approximates; the sign-magnitude
// split makes the dropped partial products zero-mean, which is what makes
// "the output is dominated by the high-order bits" (paper §3) hold.
func SplitCodesSigned(t *tensor.IntTensor, lowBits int) (hi, lo *tensor.IntTensor) {
	mask := int32(1<<uint(lowBits)) - 1
	hi = tensor.NewInt(t.Bits-lowBits, t.Scale*float32(int32(1)<<uint(lowBits)), t.Shape...)
	lo = tensor.NewInt(lowBits, t.Scale, t.Shape...)
	for i, c := range t.Data {
		neg := c < 0
		a := c
		if neg {
			a = -a
		}
		h := a >> uint(lowBits)
		l := a & mask
		if neg {
			h = -h
			l = -l
		}
		hi.Data[i] = h
		lo.Data[i] = l
	}
	return hi, lo
}

// SplitCodesRounded splits codes with *round-to-nearest* high parts:
// hi = clamp(round(c / 2^n)), lo = c − hi·2^n. Compared with truncation
// this shrinks the predictor's dead zone to |c| ≤ 2^(n−1)−1 (nearly every
// operand contributes its sign and coarse magnitude to the high bits,
// like DoReFa's zero-free grid) and keeps the residual zero-centered
// (|lo| ≤ 2^n − 1). This is the split the ODQ predictor uses. When
// signed, hi is clamped to the 2-bit two's-complement range [−2, 1];
// unsigned hi clamps to [0, 2^(bits−n)−1].
func SplitCodesRounded(t *tensor.IntTensor, lowBits int, signed bool) (hi, lo *tensor.IntTensor) {
	n := uint(lowBits)
	hiBits := t.Bits - lowBits
	var hiMin, hiMax int32
	if signed {
		hiMin = -(int32(1) << uint(hiBits-1))
		hiMax = int32(1)<<uint(hiBits-1) - 1
	} else {
		hiMin = 0
		hiMax = int32(1)<<uint(hiBits) - 1
	}
	half := int32(1) << (n - 1)
	step := int32(1) << n
	hi = tensor.NewInt(hiBits, t.Scale*float32(step), t.Shape...)
	lo = tensor.NewInt(lowBits+1, t.Scale, t.Shape...)
	for i, c := range t.Data {
		var h int32
		if c >= 0 {
			h = (c + half) / step
		} else {
			h = -((-c + half) / step)
		}
		if h < hiMin {
			h = hiMin
		} else if h > hiMax {
			h = hiMax
		}
		hi.Data[i] = h
		lo.Data[i] = c - h*step
	}
	return hi, lo
}

// ConvAccum runs an integer convolution of quantized activations
// x [N,C,H,W] with quantized weights w [O,C,K,K], returning the raw int64
// accumulators laid out [N,O,OH,OW] together with the geometry. The real
// value of accumulator i is acc[i] * x.Scale * w.Scale.
func ConvAccum(x, w *tensor.IntTensor, stride, pad int) ([]int64, tensor.ConvGeom) {
	g := AccumGeometry(x, w, stride, pad)
	acc := make([]int64, x.Shape[0]*g.TotalOutputs())
	ConvAccumInto(acc, x, w, stride, pad)
	return acc, g
}

// AccumGeometry resolves the conv geometry for an (activation, weight)
// code pair, panicking on a channel mismatch.
func AccumGeometry(x, w *tensor.IntTensor, stride, pad int) tensor.ConvGeom {
	c, h, wd := x.Shape[1], x.Shape[2], x.Shape[3]
	outC, k := w.Shape[0], w.Shape[2]
	if w.Shape[1] != c {
		panic("quant: ConvAccum channel mismatch")
	}
	return tensor.Geometry(c, h, wd, outC, k, stride, pad)
}

// ConvAccumInto is ConvAccum writing into a caller-provided accumulator
// (len >= batch * TotalOutputs), so hot paths can reuse pooled scratch.
// The im2col expansion itself runs on a pooled buffer, so steady-state
// calls allocate nothing.
func ConvAccumInto(acc []int64, x, w *tensor.IntTensor, stride, pad int) tensor.ConvGeom {
	g := AccumGeometry(x, w, stride, pad)
	n := x.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	if len(acc) < n*g.OutC*cols {
		panic("quant: ConvAccumInto accumulator too small")
	}
	per := g.InC * g.InH * g.InW
	// Samples are independent: fan the per-sample im2col+GemmInt out on
	// the shared worker pool, each with its own pooled scratch buffer.
	tensor.DefaultPool().ParallelN(n, func(s int) {
		buf := tensor.GetInt32(rows * cols)
		tensor.Im2colInt(x.Data[s*per:(s+1)*per], g, buf)
		tensor.GemmInt(w.Data, buf, acc[s*g.OutC*cols:(s+1)*g.OutC*cols], g.OutC, rows, cols)
		tensor.PutInt32(buf)
	})
	return g
}

// DequantAccum converts raw accumulators into a float tensor using the
// product of the two operand scales.
func DequantAccum(acc []int64, scale float32, n int, g tensor.ConvGeom) *tensor.Tensor {
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	for i, a := range acc {
		out.Data[i] = float32(a) * scale
	}
	return out
}
