package quant

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// LayerProfile records what one conv layer did under a quantization scheme
// during inference. The accelerator simulator consumes these records —
// mirroring the paper's methodology of dumping per-layer mask maps from the
// framework into a cycle simulator (§5.2).
type LayerProfile struct {
	// Name is the conv layer's name; Index its order in the network
	// (C1, C2, ... in the paper's figures).
	Name  string
	Index int
	Geom  tensor.ConvGeom
	Batch int

	// TotalOutputs counts output features across the batch.
	TotalOutputs int64
	// SensitiveOutputs counts outputs the scheme computed at high
	// precision (ODQ: predicted-sensitive; DRQ/static: not used the same
	// way — see scheme docs).
	SensitiveOutputs int64

	// HighInputMACs counts MACs whose input operand was high-precision;
	// TotalMACs counts all MACs. Used by the DRQ cost model.
	HighInputMACs int64
	TotalMACs     int64

	// Mask, when retained, is the per-output sensitivity bitmask laid
	// out [batch][outC*outH*outW] flattened; true = sensitive.
	Mask []bool
}

// Profiler accumulates per-layer profiles during an inference pass.
// Executors embed it. Enable it at construction time via the executor's
// profiling option (or EnableProfiling directly); callers Reset it between
// runs to discard e.g. calibration-pass records.
type Profiler struct {
	enabled   bool
	keepMasks bool
	mu        sync.Mutex
	profiles  []*LayerProfile
	index     map[string]int
}

// EnableProfiling turns on per-layer profile recording.
func (p *Profiler) EnableProfiling() { p.enabled = true }

// EnableMaskRecording turns on profiling and additionally retains the
// per-output sensitivity masks (large: one bool per output feature).
func (p *Profiler) EnableMaskRecording() {
	p.enabled = true
	p.keepMasks = true
}

// ProfilingEnabled reports whether Record is collecting.
func (p *Profiler) ProfilingEnabled() bool { return p.enabled }

// Reset clears accumulated profiles.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profiles = nil
	p.index = nil
}

// Profiles returns the accumulated per-layer records in network order.
func (p *Profiler) Profiles() []*LayerProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*LayerProfile(nil), p.profiles...)
}

// Record merges a layer observation into the profile set, accumulating
// counts across batches for repeat visits to the same layer. Telemetry
// publication happens unconditionally (every executor calls Record), so
// per-layer counters are live even when profile retention is off.
func (p *Profiler) Record(lp *LayerProfile) {
	recordLayerTelemetry(lp)
	if !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.index == nil {
		p.index = make(map[string]int)
	}
	if i, ok := p.index[lp.Name]; ok {
		ex := p.profiles[i]
		ex.Batch += lp.Batch
		ex.TotalOutputs += lp.TotalOutputs
		ex.SensitiveOutputs += lp.SensitiveOutputs
		ex.HighInputMACs += lp.HighInputMACs
		ex.TotalMACs += lp.TotalMACs
		if p.keepMasks {
			ex.Mask = append(ex.Mask, lp.Mask...)
		}
		return
	}
	lp.Index = len(p.profiles)
	if !p.keepMasks {
		lp.Mask = nil
	}
	p.index[lp.Name] = len(p.profiles)
	p.profiles = append(p.profiles, lp)
}

// StaticExec is the DoReFa-Net-style static quantization executor: every
// conv input and weight is quantized to the same fixed bit width (INT16,
// INT8, INT4 ... per the paper's baselines) and the convolution runs in
// integer arithmetic.
type StaticExec struct {
	bits int
	Profiler

	mu       sync.Mutex
	cacheGen uint64
	wcache   map[*nn.Conv2D]*tensor.IntTensor
}

// StaticOption configures a StaticExec at construction time.
type StaticOption func(*StaticExec)

// WithStaticProfiling enables per-layer profile recording.
func WithStaticProfiling() StaticOption {
	return func(e *StaticExec) { e.EnableProfiling() }
}

// NewStaticExec builds a static INT-k executor.
func NewStaticExec(bits int, opts ...StaticOption) *StaticExec {
	if bits < 1 || bits > 16 {
		panic("quant: NewStaticExec bits out of range [1,16]")
	}
	e := &StaticExec{bits: bits, wcache: make(map[*nn.Conv2D]*tensor.IntTensor)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Bits returns the configured bit width.
func (e *StaticExec) Bits() int { return e.bits }

// weightCodes returns cached integer codes for a layer's weights.
// Quantization runs outside the lock; the result is stored only if no
// InvalidateCache intervened, so a concurrent retraining step can never be
// overwritten by codes computed from the stale weights.
func (e *StaticExec) weightCodes(layer *nn.Conv2D) *tensor.IntTensor {
	e.mu.Lock()
	if q, ok := e.wcache[layer]; ok {
		e.mu.Unlock()
		mStaticCacheHits.Inc()
		return q
	}
	mStaticCacheMisses.Inc()
	gen := e.cacheGen
	e.mu.Unlock()

	q := WeightCodes(layer.EffectiveWeight(), e.bits)

	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.wcache[layer]; ok {
		return cur
	}
	if e.cacheGen == gen {
		e.wcache[layer] = q
	}
	return q
}

// InvalidateCache drops cached weight codes. Call it after every weight
// mutation (retraining step, fine-tune epoch) BEFORE issuing new Conv
// calls; in-flight Conv calls started before the invalidation may still
// return results computed from the old weights, but can no longer poison
// the cache for later calls.
func (e *StaticExec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheGen++
	e.wcache = make(map[*nn.Conv2D]*tensor.IntTensor)
}

// Static-executor telemetry handles (bound to the registry current at
// package init; see the telemetry package docs).
var (
	mStaticConvs       = telemetry.GetCounter("quant.static.convs")
	mStaticCacheHits   = telemetry.GetCounter("quant.static.wcache.hits")
	mStaticCacheMisses = telemetry.GetCounter("quant.static.wcache.misses")
)

// Conv implements nn.ConvExecutor.
func (e *StaticExec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	sp := telemetry.StartSpan("quant.static.conv")
	defer sp.End()
	mStaticConvs.Inc()
	qx := ActCodes(x, e.bits)
	qw := e.weightCodes(layer)
	g := AccumGeometry(qx, qw, layer.Stride, layer.Pad)
	n := x.Shape[0]
	acc := tensor.GetInt64(n * g.TotalOutputs())
	ConvAccumInto(acc, qx, qw, layer.Stride, layer.Pad)
	out := DequantAccum(acc, qx.Scale*qw.Scale, n, g)
	tensor.PutInt64(acc)
	e.Record(&LayerProfile{
		Name:         layer.Name,
		Geom:         g,
		Batch:        n,
		TotalOutputs: int64(n) * int64(g.TotalOutputs()),
		TotalMACs:    int64(n) * g.TotalMACs(),
	})
	return out
}

var _ nn.ConvExecutor = (*StaticExec)(nil)
