package quant

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerProfile records what one conv layer did under a quantization scheme
// during inference. The accelerator simulator consumes these records —
// mirroring the paper's methodology of dumping per-layer mask maps from the
// framework into a cycle simulator (§5.2).
type LayerProfile struct {
	// Name is the conv layer's name; Index its order in the network
	// (C1, C2, ... in the paper's figures).
	Name  string
	Index int
	Geom  tensor.ConvGeom
	Batch int

	// TotalOutputs counts output features across the batch.
	TotalOutputs int64
	// SensitiveOutputs counts outputs the scheme computed at high
	// precision (ODQ: predicted-sensitive; DRQ/static: not used the same
	// way — see scheme docs).
	SensitiveOutputs int64

	// HighInputMACs counts MACs whose input operand was high-precision;
	// TotalMACs counts all MACs. Used by the DRQ cost model.
	HighInputMACs int64
	TotalMACs     int64

	// Mask, when retained, is the per-output sensitivity bitmask laid
	// out [batch][outC*outH*outW] flattened; true = sensitive.
	Mask []bool
}

// Profiler accumulates per-layer profiles during an inference pass.
// Executors embed it; callers Reset it between runs.
type Profiler struct {
	Enabled   bool
	KeepMasks bool
	mu        sync.Mutex
	profiles  []*LayerProfile
	index     map[string]int
}

// Reset clears accumulated profiles.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profiles = nil
	p.index = nil
}

// Profiles returns the accumulated per-layer records in network order.
func (p *Profiler) Profiles() []*LayerProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*LayerProfile(nil), p.profiles...)
}

// Record merges a layer observation into the profile set, accumulating
// counts across batches for repeat visits to the same layer.
func (p *Profiler) Record(lp *LayerProfile) {
	if !p.Enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.index == nil {
		p.index = make(map[string]int)
	}
	if i, ok := p.index[lp.Name]; ok {
		ex := p.profiles[i]
		ex.Batch += lp.Batch
		ex.TotalOutputs += lp.TotalOutputs
		ex.SensitiveOutputs += lp.SensitiveOutputs
		ex.HighInputMACs += lp.HighInputMACs
		ex.TotalMACs += lp.TotalMACs
		if p.KeepMasks {
			ex.Mask = append(ex.Mask, lp.Mask...)
		}
		return
	}
	lp.Index = len(p.profiles)
	if !p.KeepMasks {
		lp.Mask = nil
	}
	p.index[lp.Name] = len(p.profiles)
	p.profiles = append(p.profiles, lp)
}

// StaticExec is the DoReFa-Net-style static quantization executor: every
// conv input and weight is quantized to the same fixed bit width (INT16,
// INT8, INT4 ... per the paper's baselines) and the convolution runs in
// integer arithmetic.
type StaticExec struct {
	Bits int
	Profiler

	mu     sync.Mutex
	wcache map[*nn.Conv2D]*tensor.IntTensor
}

// NewStaticExec builds a static INT-k executor.
func NewStaticExec(bits int) *StaticExec {
	return &StaticExec{Bits: bits, wcache: make(map[*nn.Conv2D]*tensor.IntTensor)}
}

// weightCodes returns cached integer codes for a layer's weights.
func (e *StaticExec) weightCodes(layer *nn.Conv2D) *tensor.IntTensor {
	e.mu.Lock()
	defer e.mu.Unlock()
	if q, ok := e.wcache[layer]; ok {
		return q
	}
	q := WeightCodes(layer.EffectiveWeight(), e.Bits)
	e.wcache[layer] = q
	return q
}

// InvalidateCache drops cached weight codes (call after mutating weights).
func (e *StaticExec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wcache = make(map[*nn.Conv2D]*tensor.IntTensor)
}

// Conv implements nn.ConvExecutor.
func (e *StaticExec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	qx := ActCodes(x, e.Bits)
	qw := e.weightCodes(layer)
	acc, g := ConvAccum(qx, qw, layer.Stride, layer.Pad)
	n := x.Shape[0]
	out := DequantAccum(acc, qx.Scale*qw.Scale, n, g)
	e.Record(&LayerProfile{
		Name:         layer.Name,
		Geom:         g,
		Batch:        n,
		TotalOutputs: int64(n) * int64(g.TotalOutputs()),
		TotalMACs:    int64(n) * g.TotalMACs(),
	})
	return out
}

var _ nn.ConvExecutor = (*StaticExec)(nil)
