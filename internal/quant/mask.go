package quant

import "repro/internal/telemetry"

// MaskDensity returns the number of true entries in a sensitivity mask.
// This is THE mask-density popcount for the repo: the ODQ executor, the
// cycle simulator's per-OFM workload builder and the mask viewer all call
// it instead of open-coding the loop, and it is the value that feeds the
// per-layer sensitivity-ratio telemetry.
func MaskDensity(mask []bool) int64 {
	var n int64
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// SensitivityRatio returns SensitiveOutputs/TotalOutputs (0 when the
// profile is empty) — the paper's "fraction of output features predicted
// sensitive", the central ratio the telemetry layer exposes per layer.
func (lp *LayerProfile) SensitivityRatio() float64 {
	if lp.TotalOutputs == 0 {
		return 0
	}
	return float64(lp.SensitiveOutputs) / float64(lp.TotalOutputs)
}

// recordLayerTelemetry publishes a layer observation to the default
// telemetry registry. Called by Profiler.Record on every executor Conv —
// independent of whether profile *retention* is enabled — so per-layer
// counters are live whenever telemetry is on. The gauge carries the
// cumulative ratio (all batches so far), matching SensitiveFraction.
func recordLayerTelemetry(lp *LayerProfile) {
	if !telemetry.Enabled() {
		return
	}
	// Dynamic names are waived from the metric lint here: the series set
	// is keyed by layer name, so its cardinality is bounded by model
	// depth, and the whole block is gated behind Enabled().
	pfx := "layer." + lp.Name
	sens := telemetry.GetCounter(pfx + ".sensitive") //metric_lint:allow per-layer series, bounded by model depth
	tot := telemetry.GetCounter(pfx + ".outputs")    //metric_lint:allow per-layer series, bounded by model depth
	sens.Add(lp.SensitiveOutputs)
	tot.Add(lp.TotalOutputs)
	telemetry.GetCounter(pfx + ".macs").Add(lp.TotalMACs) //metric_lint:allow per-layer series, bounded by model depth
	if lp.HighInputMACs != 0 {
		telemetry.GetCounter(pfx + ".high_input_macs").Add(lp.HighInputMACs) //metric_lint:allow per-layer series, bounded by model depth
	}
	if tv := tot.Value(); tv > 0 {
		telemetry.GetGauge(pfx + ".sensitivity_ratio").Set(float64(sens.Value()) / float64(tv)) //metric_lint:allow per-layer series, bounded by model depth
	}
}
