package quant

import "math"

// Requant is the code-emitting form of QuantReLU's inference forward: it
// maps a float pre-activation straight to its unsigned k-bit code instead
// of the dequantized grid value. The fused conv epilogue uses it to keep
// activations in the packed integer domain between layers.
//
// Bit-identity with the float path: QuantReLU emits
// q = float32(round(float64(clamp(v/Range)*levels)))/levels and the next
// layer's ActCodes recovers round(float64(q)*float64(levels)). For every
// code k in [0, levels] the float32 value k/levels scales back to within
// ~k·2⁻²⁴ of k, so the round-trip recovers k exactly — Code(v) equals the
// code the float path would re-derive, for identical inputs v.
type Requant struct {
	// Range is the clipping range (QuantReLU.Range semantics; always > 0).
	Range  float32
	levels float32
}

// NewRequant builds a requantizer for unsigned k-bit codes with the given
// clipping range (<= 0 means 1, matching QuantReLU).
func NewRequant(bits int, rng float32) Requant {
	if rng <= 0 {
		rng = 1
	}
	return Requant{Range: rng, levels: float32(ActLevels(bits))}
}

// RequantOf derives the requantizer matching a QuantReLU layer. Returns
// false when the layer is relaxed (no discretization — nothing to fuse).
func RequantOf(q *QuantReLU) (Requant, bool) {
	if q.Relaxed {
		return Requant{}, false
	}
	return NewRequant(q.Bits, q.Range), true
}

// Code maps a pre-activation to its code with the exact float operation
// order of QuantReLU.Forward: divide by Range (float32), clamp to [0,1],
// multiply by levels (float32), round in float64.
func (rq Requant) Code(v float32) uint8 {
	v /= rq.Range
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return uint8(math.Round(float64(v * rq.levels)))
}

// Levels returns the positive level count of the code grid.
func (rq Requant) Levels() float32 { return rq.levels }
