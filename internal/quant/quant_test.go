package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestLevels(t *testing.T) {
	if ActLevels(4) != 15 || ActLevels(2) != 3 || ActLevels(8) != 255 {
		t.Fatal("ActLevels wrong")
	}
	if WeightLevels(4) != 7 || WeightLevels(2) != 1 || WeightLevels(8) != 127 {
		t.Fatal("WeightLevels wrong")
	}
}

func TestActCodesRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(100)
	rng.FillUniform(x, 0, 1)
	for _, bits := range []int{2, 4, 8, 16} {
		q := ActCodes(x, bits)
		d := q.Dequantize()
		maxErr := tensor.MaxAbsDiff(x, d)
		half := q.Scale / 2
		if maxErr > half*1.0001 {
			t.Fatalf("bits=%d: round-trip error %v exceeds half-step %v", bits, maxErr, half)
		}
		for _, c := range q.Data {
			if c < 0 || c > ActLevels(bits) {
				t.Fatalf("bits=%d: code %d out of range", bits, c)
			}
		}
	}
}

func TestActCodesClamps(t *testing.T) {
	x := tensor.NewFrom([]float32{-5, 0.5, 7}, 3)
	q := ActCodes(x, 4)
	if q.Data[0] != 0 || q.Data[2] != 15 {
		t.Fatalf("clamping wrong: %v", q.Data)
	}
}

func TestWeightCodesSymmetric(t *testing.T) {
	x := tensor.NewFrom([]float32{-1, -0.5, 0, 0.5, 1}, 5)
	q := WeightCodes(x, 4)
	if q.Data[0] != -7 || q.Data[4] != 7 || q.Data[2] != 0 {
		t.Fatalf("weight codes %v", q.Data)
	}
	// Quantizing the negation must negate the codes (symmetry).
	neg := x.Clone()
	neg.Scale(-1)
	qn := WeightCodes(neg, 4)
	for i := range q.Data {
		if q.Data[i] != -qn.Data[i] {
			t.Fatal("weight quantization must be odd-symmetric")
		}
	}
}

func TestWeightCodesZeroTensor(t *testing.T) {
	q := WeightCodes(tensor.New(4), 4)
	for _, c := range q.Data {
		if c != 0 {
			t.Fatal("zero tensor must quantize to zero codes")
		}
	}
}

func TestSplitCodesExactRecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		x := tensor.New(64)
		rng.FillNormal(x, 0, 0.5)
		q := WeightCodes(x, 4)
		hi, lo := SplitCodes(q, 2)
		for i, c := range q.Data {
			if hi.Data[i]<<2+lo.Data[i] != c {
				return false
			}
			if lo.Data[i] < 0 || lo.Data[i] > 3 {
				return false
			}
			if hi.Data[i] < -2 || hi.Data[i] > 1 {
				return false
			}
		}
		// Dequantized halves must sum to the dequantized whole.
		whole := q.Dequantize()
		sum := hi.Dequantize()
		sum.Add(lo.Dequantize())
		return tensor.MaxAbsDiff(whole, sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCodesUnsignedActs(t *testing.T) {
	x := tensor.New(32)
	tensor.NewRNG(4).FillUniform(x, 0, 1)
	q := ActCodes(x, 4)
	hi, lo := SplitCodes(q, 2)
	for i, c := range q.Data {
		if hi.Data[i]<<2+lo.Data[i] != c {
			t.Fatal("unsigned split must recompose")
		}
		if hi.Data[i] < 0 || hi.Data[i] > 3 {
			t.Fatalf("unsigned high part out of range: %d", hi.Data[i])
		}
	}
}

func TestSplitCodesSignedProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		x := tensor.New(64)
		rng.FillNormal(x, 0, 0.5)
		q := WeightCodes(x, 4)
		hi, lo := SplitCodesSigned(q, 2)
		for i, c := range q.Data {
			if hi.Data[i]<<2+lo.Data[i] != c {
				return false
			}
			if lo.Data[i] < -3 || lo.Data[i] > 3 {
				return false
			}
			if hi.Data[i] < -1 || hi.Data[i] > 1 {
				return false
			}
			// Signs must agree (sign-magnitude split).
			if c > 0 && (hi.Data[i] < 0 || lo.Data[i] < 0) {
				return false
			}
			if c < 0 && (hi.Data[i] > 0 || lo.Data[i] > 0) {
				return false
			}
		}
		whole := q.Dequantize()
		sum := hi.Dequantize()
		sum.Add(lo.Dequantize())
		return tensor.MaxAbsDiff(whole, sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedSplitLowPartZeroMean(t *testing.T) {
	// The whole point of the sign-magnitude split: over symmetric
	// weights the low parts average to ~0, so the predictor term is an
	// unbiased estimate of the full sum. The two's-complement split
	// has strictly non-negative low parts instead.
	rng := tensor.NewRNG(42)
	w := tensor.New(4096)
	rng.FillNormal(w, 0, 0.4)
	q := WeightCodes(w, 4)
	_, loS := SplitCodesSigned(q, 2)
	_, loU := SplitCodes(q, 2)
	var sumS, sumU float64
	for i := range loS.Data {
		sumS += float64(loS.Data[i])
		sumU += float64(loU.Data[i])
	}
	meanS := sumS / float64(loS.Len())
	meanU := sumU / float64(loU.Len())
	if math.Abs(meanS) > 0.2 {
		t.Fatalf("signed split low-part mean %v not near zero", meanS)
	}
	if meanU < 0.5 {
		t.Fatalf("two's-complement low-part mean %v should be clearly positive", meanU)
	}
}

func TestSplitCodesRoundedExactAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		w := tensor.New(64)
		rng.FillNormal(w, 0, 0.5)
		q := WeightCodes(w, 4)
		hi, lo := SplitCodesRounded(q, 2, true)
		for i, c := range q.Data {
			if hi.Data[i]<<2+lo.Data[i] != c {
				return false
			}
			if hi.Data[i] < -2 || hi.Data[i] > 1 {
				return false
			}
			if lo.Data[i] < -3 || lo.Data[i] > 3 {
				return false
			}
		}
		a := tensor.New(64)
		rng.FillUniform(a, 0, 1)
		qa := ActCodes(a, 4)
		ah, al := SplitCodesRounded(qa, 2, false)
		for i, c := range qa.Data {
			if ah.Data[i]<<2+al.Data[i] != c {
				return false
			}
			if ah.Data[i] < 0 || ah.Data[i] > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundedSplitShrinksDeadZone(t *testing.T) {
	// Rounding to nearest means only |c| ≤ 1 lands in the predictor's
	// dead zone; with truncation everything below |c| = 4 vanished.
	q := tensor.NewInt(4, 1, 15)
	for i := range q.Data {
		q.Data[i] = int32(i) - 7 // -7..7
	}
	hi, _ := SplitCodesRounded(q, 2, true)
	for i, c := range q.Data {
		wantZero := c >= -1 && c <= 1
		isZero := hi.Data[i] == 0
		if wantZero != isZero {
			t.Fatalf("code %d: hi=%d (zero=%v, want %v)", c, hi.Data[i], isZero, wantZero)
		}
	}
}

// TestFourPartComposition verifies the paper's Eq. 3: the full integer
// convolution equals the sum of the four partial convolutions
// HH<<4 + (HL+LH)<<2 + LL, exactly, on integer accumulators.
func TestFourPartComposition(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := tensor.New(1, 3, 8, 8)
	rng.FillUniform(x, 0, 1)
	w := tensor.New(4, 3, 3, 3)
	rng.FillNormal(w, 0, 0.3)

	qx := ActCodes(x, 4)
	qw := WeightCodes(w, 4)
	full, g := ConvAccum(qx, qw, 1, 1)

	xh, xl := SplitCodes(qx, 2)
	wh, wl := SplitCodesSigned(qw, 2) // mixed splits, as the ODQ executor uses
	hh, _ := ConvAccum(xh, wh, 1, 1)
	hl, _ := ConvAccum(xh, wl, 1, 1)
	lh, _ := ConvAccum(xl, wh, 1, 1)
	ll, _ := ConvAccum(xl, wl, 1, 1)
	_ = g
	for i := range full {
		composed := hh[i]<<4 + (hl[i]+lh[i])<<2 + ll[i]
		if composed != full[i] {
			t.Fatalf("Eq.3 violated at %d: %d vs %d", i, composed, full[i])
		}
	}
}

func TestConvAccumMatchesFloatConv(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.New(2, 2, 6, 6)
	rng.FillUniform(x, 0, 1)
	// Uniform weights keep max|w| below the σ-clip bound, so the grid
	// covers every weight exactly.
	w := tensor.New(3, 2, 3, 3)
	rng.FillUniform(w, -0.5, 0.5)

	// High-precision quantized conv should track the float conv closely.
	qx := ActCodes(x, 16)
	qw := WeightCodes(w, 16)
	acc, g := ConvAccum(qx, qw, 1, 1)
	got := DequantAccum(acc, qx.Scale*qw.Scale, 2, g)

	conv := nn.NewConv2D("c", 2, 3, 3, 1, 1, false, rng)
	conv.Weight.W = w
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("INT16 conv deviates from float conv by %v", d)
	}
}

func TestActQuantizerForwardGrid(t *testing.T) {
	q := &ActQuantizer{Bits: 2} // grid {0, 1/3, 2/3, 1}
	x := tensor.NewFrom([]float32{-1, 0.1, 0.5, 0.9, 2}, 5)
	out := q.Forward(x)
	want := []float32{0, 0, float32(math.Round(0.5*3)) / 3, 1, 1}
	for i := range want {
		if math.Abs(float64(out.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("grid value %d: %v want %v", i, out.Data[i], want[i])
		}
	}
}

func TestActQuantizerBackwardMask(t *testing.T) {
	q := &ActQuantizer{Bits: 4}
	x := tensor.NewFrom([]float32{-0.5, 0.5, 1.5}, 3)
	g := tensor.NewFrom([]float32{1, 1, 1}, 3)
	dx := q.Backward(g, x)
	if dx.Data[0] != 0 || dx.Data[1] != 1 || dx.Data[2] != 0 {
		t.Fatalf("STE mask wrong: %v", dx.Data)
	}
}

func TestWeightQuantizerMatchesCodes(t *testing.T) {
	rng := tensor.NewRNG(11)
	w := tensor.New(40)
	rng.FillNormal(w, 0, 1)
	q := &WeightQuantizer{Bits: 4}
	fq := q.Forward(w)
	codes := WeightCodes(w, 4)
	deq := codes.Dequantize()
	if d := tensor.MaxAbsDiff(fq, deq); d > 1e-6 {
		t.Fatalf("fake-quant and integer codes disagree by %v", d)
	}
}

func TestQuantReLUActsAsClippedReLU(t *testing.T) {
	q := NewQuantReLU("q", 4)
	x := tensor.NewFrom([]float32{-1, 0.5, 3}, 1, 3)
	out := q.Forward(x, true)
	if out.Data[0] != 0 || out.Data[2] != 1 {
		t.Fatalf("QuantReLU out %v", out.Data)
	}
	g := tensor.NewFrom([]float32{2, 2, 2}, 1, 3)
	dx := q.Backward(g)
	if dx.Data[0] != 0 || dx.Data[1] != 2 || dx.Data[2] != 0 {
		t.Fatalf("QuantReLU grad %v", dx.Data)
	}
	if q.Params() != nil {
		t.Fatal("QuantReLU has no params")
	}
}

func TestStaticExecAccuracyOrdering(t *testing.T) {
	rng := tensor.NewRNG(13)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, true, rng)
	// Uniform weights avoid σ-clipping so the only error is grid width.
	rng.FillUniform(conv.Weight.W, -0.5, 0.5)
	x := tensor.New(1, 3, 8, 8)
	rng.FillUniform(x, 0, 1)
	ref := conv.Forward(x, false)

	var errs []float32
	for _, bits := range []int{2, 4, 8, 16} {
		conv.Exec = NewStaticExec(bits)
		got := conv.Forward(x, false)
		errs = append(errs, tensor.MeanAbsDiff(ref, got))
	}
	conv.Exec = nil
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Fatalf("error must shrink with more bits: %v", errs)
		}
	}
	if errs[3] > 1e-3 {
		t.Fatalf("INT16 error too large: %v", errs[3])
	}
}

func TestStaticExecBiasPreserved(t *testing.T) {
	rng := tensor.NewRNG(14)
	conv := nn.NewConv2D("c", 1, 1, 1, 1, 0, true, rng)
	conv.Weight.W.Data[0] = 0 // conv contributes nothing
	conv.Bias.W.Data[0] = 1.25
	conv.Exec = NewStaticExec(8)
	x := tensor.New(1, 1, 2, 2)
	out := conv.Forward(x, false)
	for _, v := range out.Data {
		if v != 1.25 {
			t.Fatalf("bias lost through executor: %v", out.Data)
		}
	}
}

func TestStaticExecWeightCache(t *testing.T) {
	rng := tensor.NewRNG(15)
	conv := nn.NewConv2D("c", 1, 1, 3, 1, 1, false, rng)
	e := NewStaticExec(8)
	conv.Exec = e
	x := tensor.New(1, 1, 4, 4)
	rng.FillUniform(x, 0, 1)
	out1 := conv.Forward(x, false)
	// Mutate weights without invalidating: cached codes must still be used.
	old := conv.Weight.W.Data[0]
	conv.Weight.W.Data[0] = old + 100
	out2 := conv.Forward(x, false)
	if tensor.MaxAbsDiff(out1, out2) != 0 {
		t.Fatal("cache should have served stale codes")
	}
	e.InvalidateCache()
	out3 := conv.Forward(x, false)
	if tensor.MaxAbsDiff(out1, out3) == 0 {
		t.Fatal("InvalidateCache must requantize")
	}
}

func TestProfilerAccumulates(t *testing.T) {
	rng := tensor.NewRNG(16)
	conv := nn.NewConv2D("c1", 1, 2, 3, 1, 1, false, rng)
	e := NewStaticExec(8, WithStaticProfiling())
	conv.Exec = e
	x := tensor.New(2, 1, 4, 4)
	conv.Forward(x, false)
	conv.Forward(x, false)
	ps := e.Profiles()
	if len(ps) != 1 {
		t.Fatalf("profiles = %d, want 1 (merged)", len(ps))
	}
	p := ps[0]
	if p.Batch != 4 {
		t.Fatalf("batch accumulation = %d, want 4", p.Batch)
	}
	if p.TotalOutputs != 4*2*4*4 {
		t.Fatalf("TotalOutputs = %d", p.TotalOutputs)
	}
	if p.TotalMACs != 4*int64(2*4*4)*9 {
		t.Fatalf("TotalMACs = %d", p.TotalMACs)
	}
	e.Reset()
	if len(e.Profiles()) != 0 {
		t.Fatal("Reset must clear profiles")
	}
}

func TestProfilerDisabledByDefault(t *testing.T) {
	rng := tensor.NewRNG(17)
	conv := nn.NewConv2D("c1", 1, 1, 3, 1, 1, false, rng)
	e := NewStaticExec(8)
	conv.Exec = e
	conv.Forward(tensor.New(1, 1, 4, 4), false)
	if len(e.Profiles()) != 0 {
		t.Fatal("profiler must be off unless enabled")
	}
}
