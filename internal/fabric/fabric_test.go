package fabric

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func testCodes(seed int64, c, h, w, outC, k int) (*tensor.IntTensor, *tensor.IntTensor) {
	rng := tensor.NewRNG(seed)
	xf := tensor.New(c, h, w)
	rng.FillUniform(xf, 0, 1)
	wf := tensor.New(outC, c, k, k)
	rng.FillNormal(wf, 0, 0.4)
	return quant.ActCodes(xf, 4), quant.WeightCodes(wf, 4)
}

func TestRunConvAllSensitiveMatchesFullConv(t *testing.T) {
	x, w := testCodes(1, 3, 10, 10, 5, 3)
	res, err := RunConv(x, w, 1, 1, DefaultConfig(0)) // threshold 0 → all sensitive
	if err != nil {
		t.Fatal(err)
	}
	if res.Sensitive != len(res.Mask) {
		t.Fatalf("threshold 0 must mark everything sensitive: %d/%d", res.Sensitive, len(res.Mask))
	}
	acc, g := quant.ConvAccum(
		&tensor.IntTensor{Shape: []int{1, 3, 10, 10}, Data: x.Data, Scale: x.Scale, Bits: 4},
		w, 1, 1)
	want := quant.DequantAccum(acc, x.Scale*w.Scale, 1, g)
	if d := tensor.MaxAbsDiff(res.Output, want); d > 1e-4 {
		t.Fatalf("all-sensitive fabric output deviates from INT4 conv by %v", d)
	}
}

func TestRunConvInsensitiveIsPredictorOnly(t *testing.T) {
	x, w := testCodes(2, 3, 8, 8, 4, 3)
	res, err := RunConv(x, w, 1, 1, DefaultConfig(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sensitive != 0 {
		t.Fatalf("huge threshold left %d sensitive outputs", res.Sensitive)
	}
	// Manual HH partial with the same rounded splits.
	g := tensor.Geometry(3, 8, 8, 4, 3, 1, 1)
	xh, _ := quant.SplitCodesRounded(
		&tensor.IntTensor{Shape: []int{1, 3, 8, 8}, Data: x.Data, Scale: x.Scale, Bits: 4}, 2, false)
	wh, _ := quant.SplitCodesRounded(w, 2, true)
	acc, _ := quant.ConvAccum(xh, wh, 1, 1)
	want := quant.DequantAccum(acc, xh.Scale*wh.Scale, 1, g)
	if d := tensor.MaxAbsDiff(res.Output, want); d > 1e-5 {
		t.Fatalf("insensitive fabric output deviates from predictor partial by %v", d)
	}
}

func TestRunConvMixedMaskExactPerOutput(t *testing.T) {
	x, w := testCodes(3, 4, 12, 12, 6, 3)
	res, err := RunConv(x, w, 1, 1, DefaultConfig(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sensitive == 0 || res.Sensitive == len(res.Mask) {
		t.Fatalf("want a mixed mask, got %d/%d", res.Sensitive, len(res.Mask))
	}
	acc, g := quant.ConvAccum(
		&tensor.IntTensor{Shape: []int{1, 4, 12, 12}, Data: x.Data, Scale: x.Scale, Bits: 4},
		w, 1, 1)
	full := quant.DequantAccum(acc, x.Scale*w.Scale, 1, g)
	for i, sens := range res.Mask {
		if sens {
			d := res.Output.Data[i] - full.Data[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-4 {
				t.Fatalf("sensitive output %d deviates by %v", i, d)
			}
		}
	}
}

func TestRunConvWorkConservation(t *testing.T) {
	x, w := testCodes(4, 3, 10, 10, 8, 3)
	cfg := DefaultConfig(0.8)
	res, err := RunConv(x, w, 1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(res.Mask))
	if res.PredBusy != total {
		t.Fatalf("predictor busy %d, want %d (one cycle per output)", res.PredBusy, total)
	}
	if res.ExecBusy != 3*int64(res.Sensitive) {
		t.Fatalf("executor busy %d, want %d", res.ExecBusy, 3*res.Sensitive)
	}
	if res.PredBusy+res.PredIdle != int64(cfg.PredictorArrays)*res.Cycles {
		t.Fatal("predictor cycle accounting broken")
	}
	if res.ExecBusy+res.ExecIdle != int64(cfg.ExecutorArrays)*res.Cycles {
		t.Fatal("executor cycle accounting broken")
	}
}

func TestClusterStaggeringThrottlesStarts(t *testing.T) {
	x, w := testCodes(5, 3, 10, 10, 6, 3)
	cfg := DefaultConfig(0)
	cfg.ExecutorArrays = 3
	cfg.Clusters = 3
	staggered, err := RunConv(x, w, 1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clusters = 1
	free, err := RunConv(x, w, 1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if staggered.Cycles < free.Cycles {
		t.Fatalf("cluster staggering should not speed things up: %d vs %d",
			staggered.Cycles, free.Cycles)
	}
}

func TestLineBufferSharing(t *testing.T) {
	x, w := testCodes(6, 3, 10, 10, 12, 3)
	res, err := RunConv(x, w, 1, 1, DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// All predictor arrays sweep positions in lockstep across different
	// output channels, so the line buffers must show heavy sharing.
	if res.LineBufferShared == 0 {
		t.Fatal("expected line-buffer read sharing across arrays")
	}
	if res.LineBufferReads == 0 || res.DRAMBytes == 0 || res.MaskBits == 0 {
		t.Fatalf("traffic accounting empty: %+v", res)
	}
}

func TestCrossCheckWithAbstractSim(t *testing.T) {
	// With one cluster and identical slice shape, the fabric pipeline and
	// the abstract scheduler should agree on total cycles for an
	// all-sensitive workload (where mask timing cannot diverge).
	x, w := testCodes(7, 3, 12, 12, 10, 3)
	cfg := Config{
		PredictorArrays: 15, ExecutorArrays: 12, Clusters: 1,
		Threshold: 0, BufferOFMs: 21, DynamicWorkload: true,
	}
	fres, err := RunConv(x, w, 1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := 12 * 12
	work := sim.LayerWork{OutputsPerOFM: cols, SensPerOFM: make([]int, 10)}
	for i := range work.SensPerOFM {
		work.SensPerOFM[i] = cols
	}
	sres := sim.SimulateLayer(work, sim.SliceConfig{
		Alloc:           sim.AllocConfig{Predictor: 15, Executor: 12},
		DynamicWorkload: true,
		BufferOFMs:      21,
	})
	ratio := float64(fres.Cycles) / float64(sres.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("fabric %d cycles vs abstract sim %d (ratio %.3f)",
			fres.Cycles, sres.Cycles, ratio)
	}
}

func TestRunConvErrors(t *testing.T) {
	x, w := testCodes(8, 3, 8, 8, 4, 3)

	batch := tensor.NewInt(4, x.Scale, 2, 3, 8, 8)
	if _, err := RunConv(batch, w, 1, 1, DefaultConfig(0.5)); err == nil {
		t.Fatal("batch > 1 must error")
	}

	badBits := x.Clone()
	badBits.Bits = 8
	if _, err := RunConv(badBits, w, 1, 1, DefaultConfig(0.5)); err == nil {
		t.Fatal("bit-width mismatch must error")
	}

	cfg := DefaultConfig(0.5)
	cfg.PredictorArrays = 0
	if _, err := RunConv(x, w, 1, 1, cfg); err == nil {
		t.Fatal("zero predictor arrays must error")
	}

	wBad := tensor.NewInt(4, w.Scale, 4, 9, 3, 3)
	if _, err := RunConv(x, wBad, 1, 1, DefaultConfig(0.5)); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func TestStridedAndPaddedGeometry(t *testing.T) {
	x, w := testCodes(9, 3, 9, 9, 4, 3)
	res, err := RunConv(x, w, 2, 1, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Shape[2] != 5 || res.Output.Shape[3] != 5 {
		t.Fatalf("strided geometry wrong: %v", res.Output.Shape)
	}
	acc, g := quant.ConvAccum(
		&tensor.IntTensor{Shape: []int{1, 3, 9, 9}, Data: x.Data, Scale: x.Scale, Bits: 4},
		w, 2, 1)
	want := quant.DequantAccum(acc, x.Scale*w.Scale, 1, g)
	if d := tensor.MaxAbsDiff(res.Output, want); d > 1e-4 {
		t.Fatalf("strided all-sensitive output deviates by %v", d)
	}
}
