package fabric

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Exec adapts the functional datapath model to nn.ConvExecutor, so an
// entire network can be run *through the modeled hardware*, sample by
// sample, layer by layer — the strongest end-to-end check that the
// accelerator model computes what the arithmetic definition of ODQ says.
// It is orders of magnitude slower than core.Exec; use it for validation
// and demos, not evaluation sweeps.
type Exec struct {
	// Bits is the code width (4).
	Bits int
	// Cfg is the slice configuration (threshold included).
	Cfg Config

	mu       sync.Mutex
	cacheGen uint64
	wcache   map[*nn.Conv2D]*tensor.IntTensor
	// Totals accumulated across layers and samples.
	TotalCycles     int64
	TotalDRAMBytes  int64
	TotalSensitive  int64
	TotalOutputs    int64
	PredIdle        int64
	ExecIdle        int64
	TotalArrayCycle int64
}

// Option configures a fabric Exec at construction time — the same
// functional-options construction idiom as the other executors
// (core.NewExec, quant.NewStaticExec, quant.NewPerChannelExec,
// drq.NewExec).
type Option func(*Exec)

// WithConfig sets the slice configuration (threshold included). Without
// it, New uses DefaultConfig(0): the paper's running-example slice with
// every output sensitive.
func WithConfig(cfg Config) Option {
	return func(e *Exec) { e.Cfg = cfg }
}

// WithThreshold overrides only the sensitivity threshold of the current
// configuration.
func WithThreshold(threshold float32) Option {
	return func(e *Exec) { e.Cfg.Threshold = threshold }
}

// WithBits sets the code width (default 4, the paper's).
func WithBits(bits int) Option {
	return func(e *Exec) { e.Bits = bits }
}

// New builds a fabric-backed executor with the paper's running-example
// slice configuration, modified by the given options.
func New(opts ...Option) *Exec {
	e := &Exec{Bits: 4, Cfg: DefaultConfig(0), wcache: make(map[*nn.Conv2D]*tensor.IntTensor)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// NewExec builds a fabric-backed executor from a bare Config.
//
// Deprecated: use New(WithConfig(cfg)) — the functional-options
// constructor shared by the whole executor family.
func NewExec(cfg Config) *Exec {
	return New(WithConfig(cfg))
}

// weights returns cached integer weight codes for a layer. Quantization
// runs outside the lock; the result is stored only if no InvalidateCache
// intervened (generation check), so an in-flight Conv can never
// re-populate the cache from stale weights.
func (e *Exec) weights(layer *nn.Conv2D) *tensor.IntTensor {
	e.mu.Lock()
	if q, ok := e.wcache[layer]; ok {
		e.mu.Unlock()
		return q
	}
	gen := e.cacheGen
	e.mu.Unlock()

	q := quant.WeightCodes(layer.EffectiveWeight(), e.Bits)

	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.wcache[layer]; ok {
		return cur
	}
	if e.cacheGen == gen {
		e.wcache[layer] = q
	}
	return q
}

// InvalidateCache drops cached weight codes (call after weight mutation,
// before new Conv calls — the executor-family contract).
func (e *Exec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheGen++
	e.wcache = make(map[*nn.Conv2D]*tensor.IntTensor)
}

// Conv implements nn.ConvExecutor by pushing each sample through RunConv.
func (e *Exec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	n := x.Shape[0]
	qw := e.weights(layer)
	g := layer.Geom(x.Shape[2], x.Shape[3])
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	outPer := g.OutC * g.OutH * g.OutW
	for s := 0; s < n; s++ {
		sample := x.Slice4Batch(s)
		qx := quant.ActCodes(sample, e.Bits)
		res, err := RunConv(qx, qw, layer.Stride, layer.Pad, e.Cfg)
		if err != nil {
			panic("fabric: " + err.Error())
		}
		copy(out.Data[s*outPer:(s+1)*outPer], res.Output.Data)

		e.mu.Lock()
		e.TotalCycles += res.Cycles
		e.TotalDRAMBytes += res.DRAMBytes
		e.TotalSensitive += int64(res.Sensitive)
		e.TotalOutputs += int64(len(res.Mask))
		e.PredIdle += res.PredIdle
		e.ExecIdle += res.ExecIdle
		e.TotalArrayCycle += res.Cycles * int64(e.Cfg.PredictorArrays+e.Cfg.ExecutorArrays)
		e.mu.Unlock()
	}
	return out
}

// IdleFraction returns the accumulated whole-run idle fraction.
func (e *Exec) IdleFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.TotalArrayCycle == 0 {
		return 0
	}
	return float64(e.PredIdle+e.ExecIdle) / float64(e.TotalArrayCycle)
}

// SensitiveFraction returns the accumulated sensitive-output fraction.
func (e *Exec) SensitiveFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.TotalOutputs == 0 {
		return 0
	}
	return float64(e.TotalSensitive) / float64(e.TotalOutputs)
}

var _ nn.ConvExecutor = (*Exec)(nil)
