package fabric

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Exec adapts the functional datapath model to nn.ConvExecutor, so an
// entire network can be run *through the modeled hardware*, sample by
// sample, layer by layer — the strongest end-to-end check that the
// accelerator model computes what the arithmetic definition of ODQ says.
// It is orders of magnitude slower than core.Exec; use it for validation
// and demos, not evaluation sweeps.
type Exec struct {
	// Bits is the code width (4).
	Bits int
	// Cfg is the slice configuration (threshold included).
	Cfg Config

	mu     sync.Mutex
	wcache map[*nn.Conv2D]*tensor.IntTensor
	// Totals accumulated across layers and samples.
	TotalCycles     int64
	TotalDRAMBytes  int64
	TotalSensitive  int64
	TotalOutputs    int64
	PredIdle        int64
	ExecIdle        int64
	TotalArrayCycle int64
}

// NewExec builds a fabric-backed executor.
func NewExec(cfg Config) *Exec {
	return &Exec{Bits: 4, Cfg: cfg, wcache: make(map[*nn.Conv2D]*tensor.IntTensor)}
}

func (e *Exec) weights(layer *nn.Conv2D) *tensor.IntTensor {
	e.mu.Lock()
	defer e.mu.Unlock()
	if q, ok := e.wcache[layer]; ok {
		return q
	}
	q := quant.WeightCodes(layer.EffectiveWeight(), e.Bits)
	e.wcache[layer] = q
	return q
}

// Conv implements nn.ConvExecutor by pushing each sample through RunConv.
func (e *Exec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	n := x.Shape[0]
	qw := e.weights(layer)
	g := layer.Geom(x.Shape[2], x.Shape[3])
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	outPer := g.OutC * g.OutH * g.OutW
	for s := 0; s < n; s++ {
		sample := x.Slice4Batch(s)
		qx := quant.ActCodes(sample, e.Bits)
		res, err := RunConv(qx, qw, layer.Stride, layer.Pad, e.Cfg)
		if err != nil {
			panic("fabric: " + err.Error())
		}
		copy(out.Data[s*outPer:(s+1)*outPer], res.Output.Data)

		e.mu.Lock()
		e.TotalCycles += res.Cycles
		e.TotalDRAMBytes += res.DRAMBytes
		e.TotalSensitive += int64(res.Sensitive)
		e.TotalOutputs += int64(len(res.Mask))
		e.PredIdle += res.PredIdle
		e.ExecIdle += res.ExecIdle
		e.TotalArrayCycle += res.Cycles * int64(e.Cfg.PredictorArrays+e.Cfg.ExecutorArrays)
		e.mu.Unlock()
	}
	return out
}

// IdleFraction returns the accumulated whole-run idle fraction.
func (e *Exec) IdleFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.TotalArrayCycle == 0 {
		return 0
	}
	return float64(e.PredIdle+e.ExecIdle) / float64(e.TotalArrayCycle)
}

// SensitiveFraction returns the accumulated sensitive-output fraction.
func (e *Exec) SensitiveFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.TotalOutputs == 0 {
		return 0
	}
	return float64(e.TotalSensitive) / float64(e.TotalOutputs)
}

var _ nn.ConvExecutor = (*Exec)(nil)
