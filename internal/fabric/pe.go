package fabric

// This file models the multi-precision processing element of Figure 7 /
// Figure 13 at the bit level: a PE whose primitive operation is a signed
// 2-bit × 2-bit multiply-accumulate, from which wider MACs are composed
// BitFusion-style by summing shifted 2-bit partial products. It
// substantiates the cycle costs the rest of the simulator assumes:
//
//	INT2 MAC                       1 cycle  (predictor PE, Fig 13(a))
//	INT4 MAC                       4 cycles (2×2 partial products, Fig 7)
//	executor remainder (HL+LH+LL)  3 cycles (Fig 13(b))

// MultiPrecisionPE is one PE: an accumulator plus a cycle counter.
type MultiPrecisionPE struct {
	// Acc is the running partial sum (the paper's P register, widened).
	Acc int64
	// Cycles counts primitive 2-bit MAC issues.
	Cycles int64
}

// Reset clears the accumulator (the cycle counter persists — it tracks
// lifetime occupancy).
func (pe *MultiPrecisionPE) Reset() { pe.Acc = 0 }

// mul2 is the primitive: a signed 2-bit × 2-bit product. Operands must
// fit the 2-bit signed range [-2, 1] or the unsigned range [0, 3]; the
// product of any such pair fits comfortably in the PE's adder.
func (pe *MultiPrecisionPE) mul2(a, w int32) int64 {
	pe.Cycles++
	return int64(a) * int64(w)
}

// MAC2 issues one predictor-style INT2 MAC: one cycle.
func (pe *MultiPrecisionPE) MAC2(a, w int32) {
	pe.Acc += pe.mul2(a, w)
}

// MAC4 composes a full 4-bit × 4-bit MAC from four shifted 2-bit partial
// products (aH·wH<<4 + aH·wL<<2 + aL·wH<<2 + aL·wL): four cycles. The
// activation uses the unsigned rounded split, the weight the signed one —
// exactly the executor's operand encoding.
func (pe *MultiPrecisionPE) MAC4(aHi, aLo, wHi, wLo int32) {
	pe.Acc += pe.mul2(aHi, wHi) << 4
	pe.Acc += pe.mul2(aHi, wLo) << 2
	pe.Acc += pe.mul2(aLo, wHi) << 2
	pe.Acc += pe.mul2(aLo, wLo)
}

// ExecutorMAC issues the result-generation remainder of one operand pair:
// the three partial products the predictor did NOT compute (Fig 13(b)),
// in three cycles. Adding a prior MAC2(aHi, wHi)<<4 yields the exact
// 4-bit MAC.
func (pe *MultiPrecisionPE) ExecutorMAC(aHi, aLo, wHi, wLo int32) {
	pe.Acc += pe.mul2(aHi, wLo) << 2
	pe.Acc += pe.mul2(aLo, wHi) << 2
	pe.Acc += pe.mul2(aLo, wLo)
}
