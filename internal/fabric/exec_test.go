package fabric

import (
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestFabricExecMatchesStaticINT4AllSensitive(t *testing.T) {
	// Run a whole (small) network through the modeled hardware with
	// threshold 0 and compare against static INT4 inference.
	net := models.LeNet5(models.Config{Classes: 10, Seed: 1})
	x := tensor.New(2, 1, 28, 28)
	tensor.NewRNG(2).FillUniform(x, 0, 1)

	fe := NewExec(DefaultConfig(0))
	nn.SetConvExecTail(net, fe)
	got := net.Forward(x, false)
	nn.SetConvExecTail(net, nil)

	nn.SetConvExecTail(net, quant.NewStaticExec(4))
	want := net.Forward(x, false)
	nn.SetConvExecTail(net, nil)

	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("fabric network run deviates from INT4 static by %v", d)
	}
	if fe.TotalCycles == 0 || fe.TotalDRAMBytes == 0 {
		t.Fatal("hardware accounting did not accumulate")
	}
	if f := fe.SensitiveFraction(); f != 1 {
		t.Fatalf("threshold 0 must make everything sensitive, got %v", f)
	}
	if idle := fe.IdleFraction(); idle <= 0 || idle >= 1 {
		t.Fatalf("idle fraction %v out of range", idle)
	}
}

func TestFabricExecMidThresholdRuns(t *testing.T) {
	net := models.LeNet5(models.Config{Classes: 10, Seed: 3})
	x := tensor.New(1, 1, 28, 28)
	tensor.NewRNG(4).FillUniform(x, 0, 1)

	fe := NewExec(DefaultConfig(0.8))
	nn.SetConvExecTail(net, fe)
	out := net.Forward(x, false)
	nn.SetConvExecTail(net, nil)
	if out.Shape[1] != 10 {
		t.Fatalf("output shape %v", out.Shape)
	}
	f := fe.SensitiveFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("mid threshold should give a mixed mask, got %v", f)
	}
}
