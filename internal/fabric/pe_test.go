package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestMAC2CycleCost(t *testing.T) {
	var pe MultiPrecisionPE
	pe.MAC2(3, -2)
	if pe.Acc != -6 || pe.Cycles != 1 {
		t.Fatalf("MAC2: acc=%d cycles=%d", pe.Acc, pe.Cycles)
	}
}

// MAC4 must reproduce the full 4-bit product for every code pair, using
// the executor's operand encoding (rounded splits), in exactly 4 cycles.
func TestMAC4ExactOverFullRange(t *testing.T) {
	for a := int32(0); a <= 15; a++ { // unsigned 4-bit activation codes
		for w := int32(-7); w <= 7; w++ { // signed symmetric weight codes
			aT := tensor.NewInt(4, 1, 1)
			aT.Data[0] = a
			wT := tensor.NewInt(4, 1, 1)
			wT.Data[0] = w
			ah, al := quant.SplitCodesRounded(aT, 2, false)
			wh, wl := quant.SplitCodesRounded(wT, 2, true)

			var pe MultiPrecisionPE
			pe.MAC4(ah.Data[0], al.Data[0], wh.Data[0], wl.Data[0])
			if pe.Acc != int64(a)*int64(w) {
				t.Fatalf("MAC4(%d,%d) = %d, want %d", a, w, pe.Acc, a*w)
			}
			if pe.Cycles != 4 {
				t.Fatalf("MAC4 must take 4 cycles, took %d", pe.Cycles)
			}
		}
	}
}

// Predictor cycle + executor remainder must equal the full MAC: the
// single-shot pipeline of Figure 6 in one PE.
func TestPredictorPlusExecutorEqualsFullMAC(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		a := int32(rng.Intn(16))
		w := int32(rng.Intn(15)) - 7
		aT := tensor.NewInt(4, 1, 1)
		aT.Data[0] = a
		wT := tensor.NewInt(4, 1, 1)
		wT.Data[0] = w
		ah, al := quant.SplitCodesRounded(aT, 2, false)
		wh, wl := quant.SplitCodesRounded(wT, 2, true)

		var pred, exec MultiPrecisionPE
		pred.MAC2(ah.Data[0], wh.Data[0]) // 1 cycle
		exec.ExecutorMAC(ah.Data[0], al.Data[0], wh.Data[0], wl.Data[0])

		if pred.Cycles != 1 || exec.Cycles != 3 {
			return false
		}
		return pred.Acc<<4+exec.Acc == int64(a)*int64(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPEAccumulatesAcrossTaps(t *testing.T) {
	var pe MultiPrecisionPE
	taps := [][2]int32{{1, 1}, {2, -1}, {3, 1}}
	var want int64
	for _, tp := range taps {
		pe.MAC2(tp[0], tp[1])
		want += int64(tp[0]) * int64(tp[1])
	}
	if pe.Acc != want {
		t.Fatalf("accumulation wrong: %d vs %d", pe.Acc, want)
	}
	pe.Reset()
	if pe.Acc != 0 {
		t.Fatal("Reset must clear the accumulator")
	}
	if pe.Cycles != 3 {
		t.Fatal("Reset must not clear lifetime cycles")
	}
}
