// Package fabric is the functional model of the ODQ accelerator's
// datapath (paper §4.3, Figure 17): the Im2col/Pack engine, line buffers,
// weight-stationary predictor and executor PE arrays, the output buffer
// with its sensitivity bit mask, and the staggered executor clusters.
//
// Unlike package sim — which schedules abstract work items to study
// idleness and throughput — fabric pushes *real integer codes* through the
// modeled pipeline and produces the actual convolution outputs, so tests
// can assert bit-exactness against the arithmetic definition of ODQ while
// also counting cycles and memory traffic. The two models share scheduling
// semantics; a cross-check test keeps their cycle counts in agreement.
package fabric

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Config describes the slice the layer runs on.
type Config struct {
	// Predictor/Executor array counts (their sum at most sim.SliceArrays
	// when modeling one slice).
	PredictorArrays int
	ExecutorArrays  int
	// Clusters is the number of executor clusters fed on staggered
	// cycles (3 in the paper, matching the 3-cycle executor latency).
	Clusters int
	// Threshold is the ODQ sensitivity threshold in units of the
	// layer's mean |predictor output| (same semantics as core.Exec).
	Threshold float32
	// BufferOFMs is the output-buffer capacity in pending OFMs.
	BufferOFMs int
	// DynamicWorkload enables work pulling across OFM assignments.
	DynamicWorkload bool
}

// DefaultConfig mirrors the paper's running example: 18 predictor arrays,
// 9 executor arrays in 3 clusters, a 21-OFM buffer, dynamic scheduling.
func DefaultConfig(threshold float32) Config {
	return Config{
		PredictorArrays: 18,
		ExecutorArrays:  9,
		Clusters:        3,
		Threshold:       threshold,
		BufferOFMs:      21,
		DynamicWorkload: true,
	}
}

// Result carries the functional outputs and the hardware accounting.
type Result struct {
	// Output is the dequantized layer output [1, OutC, OutH, OutW],
	// identical to what the ODQ arithmetic definition produces.
	Output *tensor.Tensor
	// Mask is the per-output sensitivity mask in [OutC*OutH*OutW] order.
	Mask []bool
	// Sensitive counts mask bits set.
	Sensitive int

	// Cycles is the total pipeline time; Pred/Exec busy and idle are
	// array-cycle tallies matching package sim's conventions.
	Cycles             int64
	PredBusy, PredIdle int64
	ExecBusy, ExecIdle int64

	// DRAMBytes counts weight+input fetch and output write-back traffic.
	DRAMBytes int64
	// LineBufferReads counts input-column reads served by line buffers;
	// LineBufferShared counts reads saved by same-cycle sharing between
	// arrays working on the same input column (the line buffers' data
	// reuse, §4.3).
	LineBufferReads  int64
	LineBufferShared int64
	// MaskBits is the size of the sensitivity bit mask in bits.
	MaskBits int64
}

// packedInput is what the Im2col/Pack engine produces: the high and low
// parts of every im2col column, ready for line-buffer streaming.
type packedInput struct {
	hi, lo *tensor.IntTensor // [rows, cols]
	rows   int
	cols   int
}

// packEngine transforms one sample's activation codes into packed column
// form (Figure 17's Im2col/Pack engine). lowBits is the split point.
func packEngine(x *tensor.IntTensor, g tensor.ConvGeom, lowBits int) packedInput {
	rows, cols := g.ColRows(), g.ColCols()
	colsBuf := make([]int32, rows*cols)
	tensor.Im2colInt(x.Data, g, colsBuf)
	full := &tensor.IntTensor{Shape: []int{rows, cols}, Data: colsBuf, Scale: x.Scale, Bits: x.Bits}
	hi, lo := quant.SplitCodesRounded(full, lowBits, false)
	return packedInput{hi: hi, lo: lo, rows: rows, cols: cols}
}

// peArray is one weight-stationary array: it holds one output channel's
// filter (split into high/low parts) and computes output features against
// streamed input columns.
type peArray struct {
	whi, wlo []int32
}

// predict computes the high×high partial for output position p — one
// cycle of a predictor array (its PEs cover the filter taps in parallel).
func (a *peArray) predict(in packedInput, p int) int64 {
	var acc int64
	for r := 0; r < in.rows; r++ {
		w := a.whi[r]
		if w == 0 {
			continue
		}
		acc += int64(w) * int64(in.hi.Data[r*in.cols+p])
	}
	return acc
}

// execute computes the three remaining partials for output position p —
// three cycles of an executor array (one partial product set per cycle on
// the multi-precision PEs).
func (a *peArray) execute(in packedInput, p int) (hl, lh, ll int64) {
	for r := 0; r < in.rows; r++ {
		ih := int64(in.hi.Data[r*in.cols+p])
		il := int64(in.lo.Data[r*in.cols+p])
		wh := int64(a.whi[r])
		wl := int64(a.wlo[r])
		hl += ih * wl
		lh += il * wh
		ll += il * wl
	}
	return hl, lh, ll
}

// RunConv pushes one sample through the modeled pipeline. x holds the
// sample's activation codes [1, C, H, W] (or [C, H, W]); w holds the
// layer's weight codes [O, C, K, K]; both at the same total bit width.
func RunConv(x, w *tensor.IntTensor, stride, pad int, cfg Config) (*Result, error) {
	shape := x.Shape
	if len(shape) == 4 {
		if shape[0] != 1 {
			return nil, fmt.Errorf("fabric: RunConv wants a single sample, got batch %d", shape[0])
		}
		shape = shape[1:]
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("fabric: bad input shape %v", x.Shape)
	}
	if len(w.Shape) != 4 || w.Shape[1] != shape[0] {
		return nil, fmt.Errorf("fabric: weight shape %v does not match input %v", w.Shape, x.Shape)
	}
	if cfg.PredictorArrays <= 0 || cfg.ExecutorArrays <= 0 {
		return nil, fmt.Errorf("fabric: need at least one predictor and one executor array")
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.BufferOFMs <= 0 {
		cfg.BufferOFMs = 21
	}
	if x.Bits != w.Bits {
		return nil, fmt.Errorf("fabric: input bits %d != weight bits %d", x.Bits, w.Bits)
	}

	c, h, wd := shape[0], shape[1], shape[2]
	outC, k := w.Shape[0], w.Shape[2]
	g := tensor.Geometry(c, h, wd, outC, k, stride, pad)
	lowBits := x.Bits / 2

	in := packEngine(&tensor.IntTensor{Shape: []int{c, h, wd}, Data: x.Data, Scale: x.Scale, Bits: x.Bits}, g, lowBits)

	// Load weight filters into stationary arrays (one logical array per
	// output channel; physical arrays time-multiplex them).
	wFull := &tensor.IntTensor{Shape: []int{outC, g.ColRows()}, Data: w.Data, Scale: w.Scale, Bits: w.Bits}
	wHi, wLo := quant.SplitCodesRounded(wFull, lowBits, true)
	filters := make([]peArray, outC)
	per := g.ColRows()
	for o := 0; o < outC; o++ {
		filters[o] = peArray{whi: wHi.Data[o*per : (o+1)*per], wlo: wLo.Data[o*per : (o+1)*per]}
	}

	cols := g.ColCols()
	predAcc := make([]int64, outC*cols)
	res := &Result{Mask: make([]bool, outC*cols)}

	// ---- Pipelined execution (mirrors sim.SimulateLayer semantics) ----
	type predState struct{ ofm, next int } // next = next output position
	preds := make([]predState, cfg.PredictorArrays)
	for i := range preds {
		preds[i].ofm = -1
	}
	type execState struct {
		countdown int
		ofm       int
	}
	execs := make([]execState, cfg.ExecutorArrays)
	for i := range execs {
		execs[i].ofm = -1
	}

	// Sensitivity is only known after an OFM's prediction completes; the
	// executor pulls (ofm, position) work from pending OFMs.
	type ofmState struct {
		predicted bool
		sensIdx   []int // sensitive positions not yet started
		inFlight  int
	}
	ofms := make([]*ofmState, outC)
	for i := range ofms {
		ofms[i] = &ofmState{}
	}
	pending := []int{}
	nextOFM := 0
	donePred, doneExec := 0, 0

	predScaleHH := in.hi.Scale * wHi.Scale
	// Per-OFM mean |pred| requires the whole layer in the paper's
	// calibration; here the hardware uses the layer-wide mean computed by
	// the predictor pass itself. We follow the two-phase semantics the
	// accelerator uses: threshold against the running mean estimate of
	// completed outputs (seeded by the first OFM, which is always fully
	// predicted before any executor work starts).
	var absSum float64
	var absCnt int64

	takeWork := func(ei int) (int, int) {
		for _, oi := range pending {
			o := ofms[oi]
			if len(o.sensIdx) == 0 {
				continue
			}
			if !cfg.DynamicWorkload && oi%cfg.ExecutorArrays != ei {
				continue
			}
			p := o.sensIdx[0]
			o.sensIdx = o.sensIdx[1:]
			o.inFlight++
			return oi, p
		}
		return -1, -1
	}
	retire := func(oi int) {
		doneExec++
		for j, v := range pending {
			if v == oi {
				pending = append(pending[:j], pending[j+1:]...)
				return
			}
		}
	}

	hlAcc := make([]int64, outC*cols)
	lhAcc := make([]int64, outC*cols)
	llAcc := make([]int64, outC*cols)

	const maxCycles = int64(1) << 40
	var cycle int64
	for cycle = 0; ; cycle++ {
		if cycle > maxCycles {
			panic("fabric: RunConv did not converge")
		}
		// Executor clusters: cluster cl can only *start* new work on
		// cycles where (cycle mod Clusters) == cl — the staggered data
		// delivery of §4.3 that lets one memory port feed 3 clusters.
		for i := range execs {
			ex := &execs[i]
			if ex.countdown > 0 {
				ex.countdown--
				res.ExecBusy++
				if ex.countdown == 0 {
					o := ofms[ex.ofm]
					o.inFlight--
					if len(o.sensIdx) == 0 && o.inFlight == 0 && o.predicted {
						retire(ex.ofm)
					}
					ex.ofm = -1
				}
				continue
			}
			cluster := i * cfg.Clusters / cfg.ExecutorArrays
			if cycle%int64(cfg.Clusters) != int64(cluster) {
				res.ExecIdle++
				continue
			}
			oi, p := takeWork(i)
			if oi < 0 {
				res.ExecIdle++
				continue
			}
			hl, lh, ll := filters[oi].execute(in, p)
			idx := oi*cols + p
			hlAcc[idx], lhAcc[idx], llAcc[idx] = hl, lh, ll
			res.LineBufferReads++
			ex.ofm = oi
			ex.countdown = 2 // 3 cycles total including this one
			res.ExecBusy++
		}

		// Predictor arrays.
		posThisCycle := map[int]int{} // input column -> readers (line-buffer sharing)
		for i := range preds {
			pr := &preds[i]
			if pr.ofm < 0 {
				if nextOFM < outC && len(pending) < cfg.BufferOFMs {
					pr.ofm = nextOFM
					pr.next = 0
					nextOFM++
				} else {
					res.PredIdle++
					continue
				}
			}
			p := pr.next
			acc := filters[pr.ofm].predict(in, p)
			predAcc[pr.ofm*cols+p] = acc
			v := float64(acc) * float64(predScaleHH)
			if v < 0 {
				v = -v
			}
			absSum += v
			absCnt++
			posThisCycle[p]++
			res.PredBusy++
			pr.next++
			if pr.next == cols {
				oi := pr.ofm
				pr.ofm = -1
				donePred++
				o := ofms[oi]
				o.predicted = true
				// Classify this OFM's outputs with the current mean
				// estimate (always non-empty: this OFM just finished).
				mean := absSum / float64(absCnt)
				cut := mean * float64(cfg.Threshold)
				for pp := 0; pp < cols; pp++ {
					pv := float64(predAcc[oi*cols+pp]) * float64(predScaleHH)
					if pv < 0 {
						pv = -pv
					}
					if pv >= cut {
						res.Mask[oi*cols+pp] = true
						res.Sensitive++
						o.sensIdx = append(o.sensIdx, pp)
					}
				}
				if len(o.sensIdx) == 0 {
					doneExec++
				} else {
					pending = append(pending, oi)
				}
			}
		}
		for p, readers := range posThisCycle {
			_ = p
			res.LineBufferReads++
			if readers > 1 {
				res.LineBufferShared += int64(readers - 1)
			}
		}

		if donePred == outC && doneExec == outC {
			res.Cycles = cycle + 1
			break
		}
	}

	// ---- Final composition (output buffer adds executor partials) ----
	out := tensor.New(1, outC, g.OutH, g.OutW)
	sHL := in.hi.Scale * wLo.Scale
	sLH := in.lo.Scale * wHi.Scale
	sLL := in.lo.Scale * wLo.Scale
	for i := range predAcc {
		v := float32(predAcc[i]) * predScaleHH
		if res.Mask[i] {
			v += float32(hlAcc[i])*sHL + float32(lhAcc[i])*sLH + float32(llAcc[i])*sLL
		}
		out.Data[i] = v
	}
	res.Output = out

	// ---- Traffic accounting ----
	wBits := int64(w.Bits)
	aBits := int64(x.Bits)
	res.DRAMBytes = int64(len(w.Data))*wBits/8 + int64(len(x.Data))*aBits/8 +
		int64(outC*cols)*aBits/8 // outputs written back requantized
	res.MaskBits = int64(outC * cols)
	return res, nil
}
