package telemetry

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the /metrics exposition byte-for-byte: a
// deterministic registry (counter, gauge, histogram) plus one gathered
// peer snapshot, under a pinned fleet identity, must render exactly
// testdata/prom_golden.txt. Scrape configs and recording rules are
// written against this format; changing it is a breaking change and
// must show up in review as a golden diff. Regenerate with
// TELEMETRY_GOLDEN_UPDATE=1 go test ./internal/telemetry.
func TestPrometheusGolden(t *testing.T) {
	r := withRegistry(t)
	withIdentity(t, Identity{TraceID: 0x0123456789abcdef, Role: "train", Rank: 0, Replica: -1})
	withEnabled(t, func() {
		r.Counter("dist.frames_sent").Add(42)
		r.Gauge("serve.qps").Set(12.5)
		h := r.Histogram("serve.request_latency_ms", []float64{1, 2, 4})
		h.Observe(0.5)
		h.Observe(2)
		h.Observe(100)

		r.SetPeerSnap(1, Snap{
			Counters: map[string]int64{"dist.frames_sent": 17},
			Gauges:   map[string]float64{},
			Histograms: map[string]HistogramSnapshot{
				"serve.request_latency_ms": {Count: 1, Sum: 3, Bounds: []float64{1, 2, 4}, Counts: []int64{0, 0, 1, 0}},
			},
		})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if os.Getenv("TELEMETRY_GOLDEN_UPDATE") == "1" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with TELEMETRY_GOLDEN_UPDATE=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusExpositionShape checks the structural invariants the
// format requires regardless of content: exactly one TYPE line per
// series name, cumulative buckets ending in +Inf == _count, and the
// conventional _total suffix on counters.
func TestPrometheusExpositionShape(t *testing.T) {
	r := withRegistry(t)
	withIdentity(t, Identity{TraceID: 1, Role: "serve", Rank: -1, Replica: -1})
	withEnabled(t, func() {
		r.Counter("serve.requests").Add(3)
		h := r.Histogram("serve.batch_size", []float64{1, 2})
		h.Observe(1)
		h.Observe(5)
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	typeSeen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if typeSeen[name] {
			t.Fatalf("duplicate TYPE line for %s:\n%s", name, out)
		}
		typeSeen[name] = true
	}
	if !typeSeen["serve_requests_total"] || !typeSeen["serve_batch_size"] {
		t.Fatalf("missing TYPE lines in:\n%s", out)
	}
	if !strings.Contains(out, `serve_batch_size_bucket{run="0000000000000001",role="serve",le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket does not equal the observation count:\n%s", out)
	}
	if !strings.Contains(out, `serve_batch_size_count{run="0000000000000001",role="serve"} 2`) {
		t.Fatalf("missing _count sample:\n%s", out)
	}
}

// TestDebugMuxEndpoints scrapes every route on the debug mux once and
// checks status and content type — the surface ServeDebug exposes.
func TestDebugMuxEndpoints(t *testing.T) {
	withRegistry(t)
	withEnabled(t, func() {
		GetCounter("mux.test_counter").Inc() //metric_lint:allow test-only name
	})
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	cases := []struct {
		path     string
		wantType string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/debug/vars", "application/json; charset=utf-8"},
		{"/debug/trace", "application/json; charset=utf-8"},
		{"/debug/pprof/", "text/html; charset=utf-8"},
	}
	for _, c := range cases {
		resp, err := srv.Client().Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != c.wantType {
			t.Fatalf("%s: content type %q, want %q", c.path, got, c.wantType)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", c.path)
		}
	}
}

// TestConcurrentScrapeAndWrite hammers the exposition endpoints while
// writers move every instrument kind and peer snapshots churn — the
// race detector (verify.sh runs this package under -race) is the
// assertion; the test itself only checks nothing panics and scrapes
// stay well-formed.
func TestConcurrentScrapeAndWrite(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		srv := httptest.NewServer(DebugMux())
		defer srv.Close()

		c := r.Counter("stress.ops")
		g := r.Gauge("stress.level")
		h := r.Histogram("stress.lat_ms", ExpBuckets(0.1, 2, 10))

		const writers, scrapers, iters = 4, 4, 200
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					c.Inc()
					g.Set(float64(i))
					h.Observe(float64(seed*i%17) + 0.2)
					sp := r.StartSpan("stress.span")
					sp.End()
					r.SetPeerSnap(seed, Snap{Counters: map[string]int64{"stress.ops": int64(i)}})
				}
			}(w)
		}
		for s := 0; s < scrapers; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters/4; i++ {
					for _, path := range []string{"/metrics", "/debug/vars", "/debug/trace"} {
						resp, err := srv.Client().Get(srv.URL + path)
						if err != nil {
							t.Errorf("%s: %v", path, err)
							return
						}
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 || len(body) == 0 {
							t.Errorf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
							return
						}
					}
				}
			}()
		}
		wg.Wait()

		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "stress_ops_total") {
			t.Fatalf("final scrape missing stress_ops_total:\n%s", buf.String())
		}
	})
}
