// Package telemetry is the observability layer of the repo: lock-free
// counters, gauges and fixed-bucket histograms in a global (but swappable)
// registry, plus scoped spans recorded into a ring buffer and exported as
// Chrome trace-event JSON (see span.go) and an optional debug HTTP surface
// (see http.go).
//
// The package is dependency-free (standard library only) and designed so
// that instrumentation can live permanently on hot paths:
//
//   - Telemetry is DISABLED by default. Every instrument operation
//     (Counter.Add, Gauge.Set, Histogram.Observe, StartSpan/End) first
//     performs one atomic load of the process-wide enable flag and
//     branches out — a few nanoseconds, no stores, no shared-cache-line
//     traffic (verified by the committed benchmarks in bench_test.go).
//   - When enabled, counters and gauges are single atomic RMW operations
//     and histograms are one atomic add per observation plus a CAS loop
//     for the running sum: no locks, no allocations.
//   - Handle lookup (GetCounter etc.) takes a registry mutex and may
//     allocate on first use of a name; instrumented packages either hoist
//     handles into package variables or gate dynamic-name lookups behind
//     Enabled().
//
// Handles bind to the registry that was Default() at creation time;
// swapping the default registry (SetDefault) affects subsequent lookups
// and Snapshot/trace readers, which is what tests need for isolation.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide instrumentation switch. It is deliberately
// global rather than per-registry so the disabled fast path is a single
// atomic load with no pointer chase.
var enabled atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns instrumentation off process-wide. Accumulated values are
// retained; they simply stop moving.
func Disable() { enabled.Store(false) }

// Enabled reports whether instrumentation is on. Instrumented code uses it
// to skip dynamic-name lookups and other setup that would allocate.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when telemetry is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically stored float64 instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v
// with bounds[i-1] < v <= bounds[i]; the final bucket (index len(bounds))
// counts v > bounds[len(bounds)-1]. Boundaries are inclusive upper bounds,
// so an observation exactly on a boundary lands in the lower bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram over a copy of the (sorted, strictly
// increasing) boundaries.
func newHistogram(bounds []float64) *Histogram {
	cp := append([]float64(nil), bounds...)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one observation when telemetry is enabled. Lock-free:
// one atomic add for the bucket and count, a CAS loop for the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.observe(v)
}

// Record observes unconditionally, ignoring the process-wide enable
// flag. It exists for always-on service statistics — the serving
// layer's latency-decomposition histograms must answer /v1/status
// whether or not telemetry collection was switched on — and must stay
// off nanosecond-scale hot paths (the whole point of the gate).
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	// Binary search for the first bound >= v (inclusive upper bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns a copy of the per-bucket counts (len(bounds)+1).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns a copy of the bucket boundaries.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Snapshot copies the histogram's current state (for Quantile and
// exposition).
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: h.Bounds(),
		Counts: h.BucketCounts(),
	}
}

// ExpBuckets returns n boundaries start, start*factor, start*factor², ... —
// the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n boundaries start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// Registry holds named instruments and the span ring buffer. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    *spanRing

	// peers holds metrics snapshots gathered from other fleet ranks
	// (see prom.go), rendered by the Prometheus exposition.
	peersMu sync.Mutex
	peers   map[int]PeerSnap
}

// NewRegistry builds an empty registry with the default span-ring capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    newSpanRing(defaultSpanCap),
	}
}

var defaultReg atomic.Pointer[Registry]

func init() { defaultReg.Store(NewRegistry()) }

// Default returns the current global registry.
func Default() *Registry { return defaultReg.Load() }

// SetDefault swaps the global registry and returns the previous one.
// Instrument handles created earlier remain bound to the old registry;
// tests use this to get an isolated view for Snapshot and trace export.
func SetDefault(r *Registry) *Registry {
	return defaultReg.Swap(r)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// boundaries on first use. Later calls return the existing histogram
// regardless of the boundaries passed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return Default().Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return Default().Gauge(name) }

// GetHistogram returns the named histogram from the default registry.
func GetHistogram(name string, bounds []float64) *Histogram {
	return Default().Histogram(name, bounds)
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts, with linear interpolation inside
// the bucket the target rank lands in — the same estimate Prometheus's
// histogram_quantile computes server-side. The first bucket
// interpolates from 0 (latencies are non-negative); ranks landing in
// the overflow bucket clamp to the highest finite boundary. Returns 0
// when nothing has been observed.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := int64(0)
	for i, bound := range s.Bounds {
		prev := cum
		cum += s.Counts[i]
		if float64(cum) >= target {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			if s.Counts[i] == 0 {
				return bound
			}
			frac := (target - float64(prev)) / float64(s.Counts[i])
			return lower + (bound-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// SpanStats summarizes the span ring buffer.
type SpanStats struct {
	Recorded int64 `json:"recorded"`
	Dropped  int64 `json:"dropped"`
	Capacity int   `json:"capacity"`
}

// Snap is a point-in-time copy of every instrument in a registry,
// json-serializable for the debug endpoint and for tests.
type Snap struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      SpanStats                    `json:"spans"`
}

// Snapshot copies the registry's current state. Concurrent writers keep
// writing during the copy; each individual value is read atomically.
func (r *Registry) Snapshot() Snap {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snap{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Spans:      r.spans.stats(),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// Snapshot copies the default registry's state.
func Snapshot() Snap { return Default().Snapshot() }
