package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"
)

// Identity names the process inside a fleet: which run it belongs to
// (TraceID), what it does (Role), and where it sits (Rank for training
// workers, Replica for serving replicas). It labels everything the
// observability layer exports — Prometheus metrics, trace files,
// structured log lines — so signals from W workers and R replicas can
// be correlated after the fact.
//
// The identity is process-global (one process is one fleet member) and
// read on every export, never on the instrument hot paths, so updating
// it costs nothing at instrumentation sites.
type Identity struct {
	// TraceID is the per-run correlation id, shared by every process of
	// one run: rank 0 (or the first process to need one) generates it
	// and the dist join handshake propagates it to joiners. Zero means
	// "no identity yet".
	TraceID uint64
	// Role is the process's job: "train", "serve", "infer", "bench".
	// Empty when unset.
	Role string
	// Rank is the training rank in [0, world); -1 when not a training
	// worker.
	Rank int
	// Replica is the serving replica index; -1 when not a replica (the
	// serving front end itself reports -1 and labels per-replica metrics
	// explicitly).
	Replica int
}

// TraceIDString renders the trace id as 16 lowercase hex digits, the
// canonical textual form used in logs, trace files and HTTP headers.
func (id Identity) TraceIDString() string {
	return fmt.Sprintf("%016x", id.TraceID)
}

var (
	identityMu sync.Mutex
	identity   = Identity{Rank: -1, Replica: -1}
)

// SetIdentity replaces the whole process identity.
func SetIdentity(id Identity) {
	identityMu.Lock()
	identity = id
	identityMu.Unlock()
}

// CurrentIdentity returns the process identity.
func CurrentIdentity() Identity {
	identityMu.Lock()
	defer identityMu.Unlock()
	return identity
}

// SetRole sets the process role, leaving the rest of the identity.
func SetRole(role string) {
	identityMu.Lock()
	identity.Role = role
	identityMu.Unlock()
}

// SetRank sets the training rank, leaving the rest of the identity.
func SetRank(rank int) {
	identityMu.Lock()
	identity.Rank = rank
	identityMu.Unlock()
}

// SetReplica sets the serving replica index, leaving the rest of the
// identity.
func SetReplica(replica int) {
	identityMu.Lock()
	identity.Replica = replica
	identityMu.Unlock()
}

// SetTraceID adopts a run trace id (a joiner learning the run's id from
// the coordinator's welcome frame). Zero is ignored: an unidentified
// peer must not erase an identity already established.
func SetTraceID(id uint64) {
	if id == 0 {
		return
	}
	identityMu.Lock()
	identity.TraceID = id
	identityMu.Unlock()
}

// EnsureTraceID returns the process's run trace id, generating one if
// none has been set — the coordinator/standalone-process path; joiners
// instead adopt the coordinator's id via SetTraceID.
func EnsureTraceID() uint64 {
	identityMu.Lock()
	defer identityMu.Unlock()
	if identity.TraceID == 0 {
		identity.TraceID = NewTraceID()
	}
	return identity.TraceID
}

// NewTraceID generates a fresh nonzero random trace id. Randomness
// comes from crypto/rand with a time+pid fallback so id generation can
// never fail.
func NewTraceID() uint64 {
	var b [8]byte
	for i := 0; i < 4; i++ {
		if _, err := rand.Read(b[:]); err != nil {
			break
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano())<<16 | uint64(os.Getpid())&0xffff
}
