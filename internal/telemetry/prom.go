package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format version 0.0.4) for the registry.
//
// Metric names in this repo are dotted snake_case namespaces
// ("serve.request_latency_ms", "dist.frames_sent" — enforced by
// scripts/metric_lint.sh); the exposition maps dots to underscores,
// appends the conventional "_total" to counters, and expands histograms
// into cumulative _bucket/_sum/_count series. Every sample carries the
// process identity as labels (run, role, rank, replica — whichever are
// set), and on a training root the handler additionally renders the
// gathered per-rank fleet snapshots (SetPeerSnap) with their own rank
// labels, so one scrape of rank 0 sees the whole training group.

// PeerSnap is one remote process's metrics snapshot, gathered over the
// dist transport (piggybacked on the reduce protocol's grad-end frames).
type PeerSnap struct {
	Rank    int
	Snap    Snap
	Updated time.Time
}

// SetPeerSnap stores (replacing) the latest snapshot gathered from a
// peer rank into the registry, for the /metrics handler to render.
func (r *Registry) SetPeerSnap(rank int, s Snap) {
	r.peersMu.Lock()
	if r.peers == nil {
		r.peers = make(map[int]PeerSnap)
	}
	r.peers[rank] = PeerSnap{Rank: rank, Snap: s, Updated: time.Now()}
	r.peersMu.Unlock()
}

// PeerSnaps returns the gathered peer snapshots in ascending rank order.
func (r *Registry) PeerSnaps() []PeerSnap {
	r.peersMu.Lock()
	out := make([]PeerSnap, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	r.peersMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// SetPeerSnap stores a peer snapshot in the default registry.
func SetPeerSnap(rank int, s Snap) { Default().SetPeerSnap(rank, s) }

// promName maps a dotted registry name to a Prometheus metric name.
func promName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promFloat renders a float sample value.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// identityLabels renders the label pairs for one process identity. rank
// overrides id.Rank when >= 0 (peer snapshots are labeled with the
// peer's rank, everything else with the identity's own).
func identityLabels(id Identity, rank int) string {
	var parts []string
	if id.TraceID != 0 {
		parts = append(parts, fmt.Sprintf(`run=%q`, id.TraceIDString()))
	}
	if id.Role != "" {
		parts = append(parts, fmt.Sprintf(`role=%q`, promLabel(id.Role)))
	}
	if rank < 0 {
		rank = id.Rank
	}
	if rank >= 0 {
		parts = append(parts, fmt.Sprintf(`rank="%d"`, rank))
	}
	if id.Replica >= 0 {
		parts = append(parts, fmt.Sprintf(`replica="%d"`, id.Replica))
	}
	return strings.Join(parts, ",")
}

// promSeries accumulates all samples of one metric name across the
// local and peer snapshots, so the exposition groups them under a
// single TYPE line as the format requires.
type promSeries struct {
	typ   string
	lines []string
}

// wrapLabels combines a base label set with an extra label expression.
func wrapLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	}
	return "{" + base + "," + extra + "}"
}

// addSnap folds one snapshot, labeled with labels, into the series set.
// A name already claimed by a different instrument type is skipped: the
// exposition must not emit conflicting TYPE lines (the metric-name lint
// keeps the codebase free of such collisions in the first place).
func addSnap(series map[string]*promSeries, s Snap, labels string) {
	claim := func(name, typ string) *promSeries {
		ps, ok := series[name]
		if !ok {
			ps = &promSeries{typ: typ}
			series[name] = ps
			return ps
		}
		if ps.typ != typ {
			return nil
		}
		return ps
	}
	for name, v := range s.Counters {
		n := promName(name) + "_total"
		if ps := claim(n, "counter"); ps != nil {
			ps.lines = append(ps.lines, fmt.Sprintf("%s%s %d", n, wrapLabels(labels, ""), v))
		}
	}
	for name, v := range s.Gauges {
		n := promName(name)
		if ps := claim(n, "gauge"); ps != nil {
			ps.lines = append(ps.lines, fmt.Sprintf("%s%s %s", n, wrapLabels(labels, ""), promFloat(v)))
		}
	}
	for name, h := range s.Histograms {
		n := promName(name)
		ps := claim(n, "histogram")
		if ps == nil {
			continue
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf(`le="%s"`, promFloat(bound))
			ps.lines = append(ps.lines, fmt.Sprintf("%s_bucket%s %d", n, wrapLabels(labels, le), cum))
		}
		ps.lines = append(ps.lines, fmt.Sprintf(`%s_bucket%s %d`, n, wrapLabels(labels, `le="+Inf"`), h.Count))
		ps.lines = append(ps.lines, fmt.Sprintf("%s_sum%s %s", n, wrapLabels(labels, ""), promFloat(h.Sum)))
		ps.lines = append(ps.lines, fmt.Sprintf("%s_count%s %d", n, wrapLabels(labels, ""), h.Count))
	}
}

// WritePrometheus writes the registry's current state — and any
// gathered peer snapshots — in the Prometheus text exposition format.
// Output is deterministic: metric names sort lexically and each name's
// samples keep local-then-ascending-peer-rank order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	id := CurrentIdentity()
	series := make(map[string]*promSeries)
	addSnap(series, r.Snapshot(), identityLabels(id, -1))
	for _, p := range r.PeerSnaps() {
		addSnap(series, p.Snap, identityLabels(id, p.Rank))
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		ps := series[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, ps.typ)
		for _, line := range ps.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus writes the default registry in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer) error { return Default().WritePrometheus(w) }
