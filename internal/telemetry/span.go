package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// defaultSpanCap is the span ring capacity: enough for tens of seconds of
// conv/GEMM-granularity spans. When the ring is full the oldest records
// are overwritten (counted in SpanStats.Dropped); within capacity the
// record is lossless — every StartSpan/End pair while enabled is kept,
// nothing is sampled.
const defaultSpanCap = 1 << 16

// spanRecord is one completed span.
type spanRecord struct {
	name  string
	start int64                  // ns, from the ring's clock
	dur   int64                  // ns
	args  map[string]interface{} // optional trace-event args (nil for plain spans)
}

// spanRing is a fixed-capacity overwrite-oldest ring of completed spans.
// Recording takes one short mutex hold (span End is conv/phase-granular,
// orders of magnitude rarer than counter updates, so a mutex keeps it
// simple and race-detector-clean).
type spanRing struct {
	mu       sync.Mutex
	buf      []spanRecord
	next     int   // next slot to write
	recorded int64 // total record() calls
	now      func() int64
}

func newSpanRing(capacity int) *spanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &spanRing{
		buf: make([]spanRecord, 0, capacity),
		now: func() int64 { return time.Now().UnixNano() },
	}
}

func (r *spanRing) record(name string, start, end int64, args map[string]interface{}) {
	rec := spanRecord{name: name, start: start, dur: end - start, args: args}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.recorded++
	r.mu.Unlock()
}

func (r *spanRing) stats() SpanStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := r.recorded - int64(len(r.buf))
	return SpanStats{Recorded: r.recorded, Dropped: dropped, Capacity: cap(r.buf)}
}

// records returns a copy of the retained spans (unordered).
func (r *spanRing) records() []spanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]spanRecord(nil), r.buf...)
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
	r.recorded = 0
}

// Span is a scoped timing measurement. The zero Span (returned when
// telemetry is disabled) makes End a no-op, so call sites need no guards:
//
//	sp := telemetry.StartSpan("odq.predictor")
//	... work ...
//	sp.End()
//
// Span is a value type: starting and ending a span allocates nothing.
type Span struct {
	name  string
	start int64
	ring  *spanRing
	args  map[string]interface{}
}

// StartSpan begins a span recorded into the default registry's ring.
// Use static (compile-time constant) names; dynamic names allocate at the
// call site.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Default().StartSpan(name)
}

// StartSpan begins a span recorded into this registry's ring.
func (r *Registry) StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	ring := r.spans
	return Span{name: name, start: ring.now(), ring: ring}
}

// StartSpanWith begins a span carrying trace-event args — request ids,
// batch sizes — that render in the span's detail pane in Perfetto. The
// map is retained until export; callers should gate construction behind
// Enabled() since building it allocates (plain StartSpan stays
// allocation-free).
func StartSpanWith(name string, args map[string]interface{}) Span {
	sp := StartSpan(name)
	sp.args = args
	return sp
}

// End completes the span. No-op on the zero Span.
func (s Span) End() {
	if s.ring == nil {
		return
	}
	s.ring.record(s.name, s.start, s.ring.now(), s.args)
}

// ResetSpans clears the registry's span ring.
func (r *Registry) ResetSpans() { r.spans.reset() }

// TraceEvent is one Chrome trace-event record — "X" (complete) for
// spans, "M" (metadata) for process naming. The exported JSON loads
// directly in Perfetto / chrome://tracing.
type TraceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`  // microseconds since the first span
	Dur  float64                `json:"dur"` // microseconds
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// TraceMeta is the cross-process correlation block embedded in every
// exported trace file: which run the process belonged to, where it sat
// in the fleet, and the absolute wall-clock nanosecond the file's ts 0
// corresponds to — odq-tracemerge uses BaseNs to line the per-rank
// lanes up on one shared clock.
type TraceMeta struct {
	TraceID string `json:"trace_id,omitempty"`
	Role    string `json:"role,omitempty"`
	Rank    int    `json:"rank"`
	Replica int    `json:"replica"`
	BaseNs  int64  `json:"base_ns"`
}

// ProcessLabel renders the human-readable fleet position ("train rank
// 0", "serve") used for Perfetto process lanes.
func (m TraceMeta) ProcessLabel() string {
	label := m.Role
	if label == "" {
		label = "proc"
	}
	if m.Rank >= 0 {
		label = fmt.Sprintf("%s rank %d", label, m.Rank)
	}
	if m.Replica >= 0 {
		label = fmt.Sprintf("%s replica %d", label, m.Replica)
	}
	return label
}

// traceFile is the Chrome trace-event file envelope. OdqMeta is an
// extension key (viewers ignore unknown envelope keys) carrying the
// correlation identity.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	OdqMeta         *TraceMeta   `json:"odqMeta,omitempty"`
}

// TraceEvents converts the retained spans to Chrome trace events, sorted
// by start time (ts is monotonically non-decreasing) and re-based so the
// earliest span starts at ts 0. Spans are laid out on "threads" by greedy
// interval coloring: each span takes the lowest tid whose previous span
// has already ended, so overlapping (concurrent or nested) spans render
// on separate rows in Perfetto.
func (r *Registry) TraceEvents() []TraceEvent {
	events, _ := r.traceEvents()
	return events
}

// traceEvents additionally returns the absolute clock value (ns) the
// events were re-based against, for the trace file's correlation block.
func (r *Registry) traceEvents() ([]TraceEvent, int64) {
	recs := r.spans.records()
	if len(recs) == 0 {
		return nil, 0
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].start != recs[j].start {
			return recs[i].start < recs[j].start
		}
		if recs[i].dur != recs[j].dur {
			return recs[i].dur > recs[j].dur // longer (enclosing) span first
		}
		return recs[i].name < recs[j].name
	})
	base := recs[0].start
	var laneEnds []int64
	events := make([]TraceEvent, 0, len(recs))
	for _, rec := range recs {
		tid := -1
		for i, end := range laneEnds {
			if end <= rec.start {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[tid] = rec.start + rec.dur
		events = append(events, TraceEvent{
			Name: rec.name,
			Ph:   "X",
			Ts:   float64(rec.start-base) / 1e3,
			Dur:  float64(rec.dur) / 1e3,
			Pid:  1,
			Tid:  tid + 1,
			Args: rec.args,
		})
	}
	return events, base
}

// WriteTrace writes the registry's spans as Chrome trace-event JSON.
// The file embeds the process identity twice: as the odqMeta envelope
// block odq-tracemerge correlates on, and as a process_name metadata
// event so even a single rank's file shows its fleet position in
// Perfetto.
func (r *Registry) WriteTrace(w io.Writer) error {
	events, base := r.traceEvents()
	if events == nil {
		events = []TraceEvent{}
	}
	id := CurrentIdentity()
	meta := &TraceMeta{
		Role: id.Role, Rank: id.Rank, Replica: id.Replica, BaseNs: base,
	}
	if id.TraceID != 0 {
		meta.TraceID = id.TraceIDString()
	}
	named := make([]TraceEvent, 0, len(events)+1)
	named = append(named, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]interface{}{"name": meta.ProcessLabel()},
	})
	named = append(named, events...)
	f := traceFile{TraceEvents: named, DisplayTimeUnit: "ns", OdqMeta: meta}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteTrace writes the default registry's spans as Chrome trace JSON.
func WriteTrace(w io.Writer) error { return Default().WriteTrace(w) }

// WriteTraceFile dumps the default registry's spans to path (the CLI
// -trace-out flag).
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteSnapshotFile dumps a JSON snapshot of the default registry to path
// (the CLI -metrics-out flag).
func WriteSnapshotFile(path string) error {
	data, err := json.MarshalIndent(Snapshot(), "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
