package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// defaultSpanCap is the span ring capacity: enough for tens of seconds of
// conv/GEMM-granularity spans. When the ring is full the oldest records
// are overwritten (counted in SpanStats.Dropped); within capacity the
// record is lossless — every StartSpan/End pair while enabled is kept,
// nothing is sampled.
const defaultSpanCap = 1 << 16

// spanRecord is one completed span.
type spanRecord struct {
	name  string
	start int64 // ns, from the ring's clock
	dur   int64 // ns
}

// spanRing is a fixed-capacity overwrite-oldest ring of completed spans.
// Recording takes one short mutex hold (span End is conv/phase-granular,
// orders of magnitude rarer than counter updates, so a mutex keeps it
// simple and race-detector-clean).
type spanRing struct {
	mu       sync.Mutex
	buf      []spanRecord
	next     int   // next slot to write
	recorded int64 // total record() calls
	now      func() int64
}

func newSpanRing(capacity int) *spanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &spanRing{
		buf: make([]spanRecord, 0, capacity),
		now: func() int64 { return time.Now().UnixNano() },
	}
}

func (r *spanRing) record(name string, start, end int64) {
	rec := spanRecord{name: name, start: start, dur: end - start}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.recorded++
	r.mu.Unlock()
}

func (r *spanRing) stats() SpanStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := r.recorded - int64(len(r.buf))
	return SpanStats{Recorded: r.recorded, Dropped: dropped, Capacity: cap(r.buf)}
}

// records returns a copy of the retained spans (unordered).
func (r *spanRing) records() []spanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]spanRecord(nil), r.buf...)
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
	r.recorded = 0
}

// Span is a scoped timing measurement. The zero Span (returned when
// telemetry is disabled) makes End a no-op, so call sites need no guards:
//
//	sp := telemetry.StartSpan("odq.predictor")
//	... work ...
//	sp.End()
//
// Span is a value type: starting and ending a span allocates nothing.
type Span struct {
	name  string
	start int64
	ring  *spanRing
}

// StartSpan begins a span recorded into the default registry's ring.
// Use static (compile-time constant) names; dynamic names allocate at the
// call site.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Default().StartSpan(name)
}

// StartSpan begins a span recorded into this registry's ring.
func (r *Registry) StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	ring := r.spans
	return Span{name: name, start: ring.now(), ring: ring}
}

// End completes the span. No-op on the zero Span.
func (s Span) End() {
	if s.ring == nil {
		return
	}
	s.ring.record(s.name, s.start, s.ring.now())
}

// ResetSpans clears the registry's span ring.
func (r *Registry) ResetSpans() { r.spans.reset() }

// TraceEvent is one Chrome trace-event ("complete" phase) record. The
// exported JSON loads directly in Perfetto / chrome://tracing.
type TraceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds since the first span
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// traceFile is the Chrome trace-event file envelope.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEvents converts the retained spans to Chrome trace events, sorted
// by start time (ts is monotonically non-decreasing) and re-based so the
// earliest span starts at ts 0. Spans are laid out on "threads" by greedy
// interval coloring: each span takes the lowest tid whose previous span
// has already ended, so overlapping (concurrent or nested) spans render
// on separate rows in Perfetto.
func (r *Registry) TraceEvents() []TraceEvent {
	recs := r.spans.records()
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].start != recs[j].start {
			return recs[i].start < recs[j].start
		}
		if recs[i].dur != recs[j].dur {
			return recs[i].dur > recs[j].dur // longer (enclosing) span first
		}
		return recs[i].name < recs[j].name
	})
	base := recs[0].start
	var laneEnds []int64
	events := make([]TraceEvent, 0, len(recs))
	for _, rec := range recs {
		tid := -1
		for i, end := range laneEnds {
			if end <= rec.start {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[tid] = rec.start + rec.dur
		events = append(events, TraceEvent{
			Name: rec.name,
			Ph:   "X",
			Ts:   float64(rec.start-base) / 1e3,
			Dur:  float64(rec.dur) / 1e3,
			Pid:  1,
			Tid:  tid + 1,
		})
	}
	return events
}

// WriteTrace writes the registry's spans as Chrome trace-event JSON.
func (r *Registry) WriteTrace(w io.Writer) error {
	f := traceFile{TraceEvents: r.TraceEvents(), DisplayTimeUnit: "ns"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteTrace writes the default registry's spans as Chrome trace JSON.
func WriteTrace(w io.Writer) error { return Default().WriteTrace(w) }

// WriteTraceFile dumps the default registry's spans to path (the CLI
// -trace-out flag).
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteSnapshotFile dumps a JSON snapshot of the default registry to path
// (the CLI -metrics-out flag).
func WriteSnapshotFile(path string) error {
	data, err := json.MarshalIndent(Snapshot(), "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
