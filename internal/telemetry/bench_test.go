package telemetry

import "testing"

// The disabled path is the contract that lets instrumentation live on hot
// kernels permanently: one atomic load and a branch. These benchmarks are
// the committed evidence (see BENCH_telemetry.json for the end-to-end
// QAT-step / ODQ-conv overhead numbers).

func BenchmarkCounterAddDisabled(b *testing.B) {
	Disable()
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	Disable()
	h := NewRegistry().Histogram("bench", ExpBuckets(1, 10, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench")
		sp.End()
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	Enable()
	defer Disable()
	h := NewRegistry().Histogram("bench", ExpBuckets(1, 10, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench")
		sp.End()
	}
}
