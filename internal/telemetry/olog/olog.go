// Package olog is the repo's structured logging layer: a thin wrapper
// over log/slog that stamps every record with the process's fleet
// identity (run trace id, role, rank, replica — whatever is set in
// package telemetry), so log lines from W training workers and R
// serving replicas interleaved in one terminal or one log aggregator
// remain attributable and join-able against metrics and traces through
// the shared run id.
//
// Two output formats are supported: "text" (slog's logfmt-style
// handler, the human default) and "json" (one JSON object per line,
// the aggregator default). The identity attributes are injected at
// Handle time, not Setup time, so a process that learns its rank or
// run id after logger setup — a joiner adopting the coordinator's
// trace id mid-handshake — logs the updated identity from that moment
// on without reconfiguration.
package olog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Options configures Setup.
type Options struct {
	// W receives the log stream (default os.Stderr).
	W io.Writer
	// Format is "text" or "json" (default "text").
	Format string
	// Level is the minimum level ("debug", "info", "warn", "error";
	// default "info").
	Level string
}

// ParseFormat validates a -log-format flag value.
func ParseFormat(s string) (string, error) {
	switch s {
	case "", "text":
		return "text", nil
	case "json":
		return "json", nil
	}
	return "", fmt.Errorf("olog: unknown log format %q (want text or json)", s)
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("olog: unknown log level %q (want debug, info, warn or error)", s)
}

// identityHandler decorates an inner handler with the live process
// identity, read per record.
type identityHandler struct{ inner slog.Handler }

func (h identityHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h identityHandler) Handle(ctx context.Context, rec slog.Record) error {
	id := telemetry.CurrentIdentity()
	if id.TraceID != 0 {
		rec.AddAttrs(slog.String("run", id.TraceIDString()))
	}
	if id.Role != "" {
		rec.AddAttrs(slog.String("role", id.Role))
	}
	if id.Rank >= 0 {
		rec.AddAttrs(slog.Int("rank", id.Rank))
	}
	if id.Replica >= 0 {
		rec.AddAttrs(slog.Int("replica", id.Replica))
	}
	return h.inner.Handle(ctx, rec)
}

func (h identityHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return identityHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h identityHandler) WithGroup(name string) slog.Handler {
	return identityHandler{inner: h.inner.WithGroup(name)}
}

// logger holds the active logger; the default logs text to stderr at
// info so packages can log before (or without) Setup.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(identityHandler{
		inner: slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}),
	}))
}

// Setup installs the process logger. Errors name the offending option.
func Setup(opts Options) error {
	w := opts.W
	if w == nil {
		w = os.Stderr
	}
	format, err := ParseFormat(opts.Format)
	if err != nil {
		return err
	}
	level, err := ParseLevel(opts.Level)
	if err != nil {
		return err
	}
	hopts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	if format == "json" {
		inner = slog.NewJSONHandler(w, hopts)
	} else {
		inner = slog.NewTextHandler(w, hopts)
	}
	logger.Store(slog.New(identityHandler{inner: inner}))
	return nil
}

// L returns the process logger.
func L() *slog.Logger { return logger.Load() }

// Debug logs at debug level with alternating key/value args.
func Debug(msg string, args ...any) { L().Debug(msg, args...) }

// Info logs at info level with alternating key/value args.
func Info(msg string, args ...any) { L().Info(msg, args...) }

// Warn logs at warn level with alternating key/value args.
func Warn(msg string, args ...any) { L().Warn(msg, args...) }

// Error logs at error level with alternating key/value args.
func Error(msg string, args ...any) { L().Error(msg, args...) }
