package olog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// withIdentity pins the process identity (it is global) and restores it.
func withIdentity(t *testing.T, id telemetry.Identity) {
	t.Helper()
	prev := telemetry.CurrentIdentity()
	telemetry.SetIdentity(id)
	t.Cleanup(func() { telemetry.SetIdentity(prev) })
}

// restoreLogger puts the default logger back after a test ran Setup.
func restoreLogger(t *testing.T) {
	t.Helper()
	prev := logger.Load()
	t.Cleanup(func() { logger.Store(prev) })
}

// TestIdentityAttrsInjected: every record carries the fields of the
// identity that are set — and only those.
func TestIdentityAttrsInjected(t *testing.T) {
	restoreLogger(t)
	withIdentity(t, telemetry.Identity{TraceID: 0xabcd, Role: "train", Rank: 2, Replica: -1})
	var buf bytes.Buffer
	if err := Setup(Options{W: &buf, Format: "text"}); err != nil {
		t.Fatal(err)
	}
	Info("hello", "k", "v")
	line := buf.String()
	for _, want := range []string{`msg=hello`, `k=v`, `run=000000000000abcd`, `role=train`, `rank=2`} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "replica=") {
		t.Fatalf("unset replica leaked into line: %s", line)
	}
}

// TestIdentityReadPerRecord: an identity learned AFTER Setup (a joiner
// adopting the coordinator's run id mid-handshake) appears on
// subsequent records without logger reconfiguration.
func TestIdentityReadPerRecord(t *testing.T) {
	restoreLogger(t)
	withIdentity(t, telemetry.Identity{Rank: -1, Replica: -1})
	var buf bytes.Buffer
	if err := Setup(Options{W: &buf, Format: "text"}); err != nil {
		t.Fatal(err)
	}
	Info("before")
	telemetry.SetTraceID(0x1234)
	Info("after")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	if strings.Contains(lines[0], "run=") {
		t.Fatalf("run id on a record logged before it existed: %s", lines[0])
	}
	if !strings.Contains(lines[1], "run=0000000000001234") {
		t.Fatalf("run id missing after SetTraceID: %s", lines[1])
	}
}

// TestJSONFormat: -log-format json yields one parseable object per
// line with the identity as plain fields.
func TestJSONFormat(t *testing.T) {
	restoreLogger(t)
	withIdentity(t, telemetry.Identity{TraceID: 1, Role: "serve", Rank: -1, Replica: 3})
	var buf bytes.Buffer
	if err := Setup(Options{W: &buf, Format: "json", Level: "warn"}); err != nil {
		t.Fatal(err)
	}
	Info("filtered out")
	Warn("kept", "n", 7)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("level filter failed, got %d lines: %q", len(lines), lines)
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not JSON: %v: %s", err, lines[0])
	}
	if rec["msg"] != "kept" || rec["n"] != float64(7) || rec["role"] != "serve" ||
		rec["run"] != "0000000000000001" || rec["replica"] != float64(3) {
		t.Fatalf("bad record: %v", rec)
	}
	if _, ok := rec["rank"]; ok {
		t.Fatalf("unset rank leaked into record: %v", rec)
	}
}

// TestSetupRejectsBadOptions: flag typos fail loudly, naming the value.
func TestSetupRejectsBadOptions(t *testing.T) {
	restoreLogger(t)
	if err := Setup(Options{Format: "xml"}); err == nil || !strings.Contains(err.Error(), "xml") {
		t.Fatalf("bad format error: %v", err)
	}
	if err := Setup(Options{Level: "loud"}); err == nil || !strings.Contains(err.Error(), "loud") {
		t.Fatalf("bad level error: %v", err)
	}
}
