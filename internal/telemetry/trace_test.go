package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// tickClock replaces the ring's clock with a deterministic 250µs tick so
// the golden trace is byte-stable.
func tickClock(r *Registry) {
	var clock int64
	r.spans.now = func() int64 {
		clock += 250_000
		return clock
	}
}

// TestTraceGolden locks the Chrome trace export format: a deterministic
// span set (a predictor span enclosing GEMM pack/kernel spans, then an
// executor span) must serialize byte-for-byte to testdata/trace_golden.json.
// Regenerate with TELEMETRY_GOLDEN_UPDATE=1 go test ./internal/telemetry.
// withIdentity pins the process identity for the test and restores the
// previous one afterwards (identity is process-global).
func withIdentity(t *testing.T, id Identity) {
	t.Helper()
	prev := CurrentIdentity()
	SetIdentity(id)
	t.Cleanup(func() { SetIdentity(prev) })
}

func TestTraceGolden(t *testing.T) {
	r := withRegistry(t)
	tickClock(r)
	withIdentity(t, Identity{TraceID: 0x0123456789abcdef, Role: "train", Rank: 0, Replica: -1})
	withEnabled(t, func() {
		pred := r.StartSpan("odq.predictor")
		pack := r.StartSpan("gemm.pack")
		pack.End()
		kern := r.StartSpan("gemm.kernel")
		kern.End()
		pred.End()
		exec := r.StartSpan("odq.executor")
		exec.End()
	})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("TELEMETRY_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with TELEMETRY_GOLDEN_UPDATE=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON diverged from golden\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// The golden itself must round-trip through encoding/json with
	// monotonically ordered ts fields and sane lane assignment.
	assertTraceWellFormed(t, buf.Bytes())
}

// assertTraceWellFormed checks the exported trace parses, has
// non-decreasing ts, and never overlaps two spans on one tid.
func assertTraceWellFormed(t *testing.T, data []byte) {
	t.Helper()
	var f struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	laneEnd := map[int]float64{}
	var prevTs float64
	sawSpan := false
	for i, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			// Identity metadata (process_name) events lead the file,
			// before any span.
			if sawSpan {
				t.Fatalf("event %d: metadata event after span events", i)
			}
			continue
		}
		if ev.Ph != "X" {
			t.Fatalf("event %d: phase %q, want X", i, ev.Ph)
		}
		sawSpan = true
		if ev.Ts < prevTs {
			t.Fatalf("event %d: ts %v < previous %v (not monotonic)", i, ev.Ts, prevTs)
		}
		prevTs = ev.Ts
		if ev.Dur < 0 {
			t.Fatalf("event %d: negative dur %v", i, ev.Dur)
		}
		if end, ok := laneEnd[ev.Tid]; ok && ev.Ts < end {
			t.Fatalf("event %d (%s): overlaps previous span on tid %d (ts %v < lane end %v)",
				i, ev.Name, ev.Tid, ev.Ts, end)
		}
		laneEnd[ev.Tid] = ev.Ts + ev.Dur
	}
}

// TestTraceMonotonicUnderConcurrency records spans from parallel
// goroutines with the real clock and checks the export invariants hold.
func TestTraceMonotonicUnderConcurrency(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					sp := r.StartSpan("concurrent.work")
					sp.End()
				}
			}()
		}
		wg.Wait()
	})
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	assertTraceWellFormed(t, buf.Bytes())
	evs := r.TraceEvents()
	if len(evs) != 6*300 {
		t.Fatalf("got %d events, want %d", len(evs), 6*300)
	}
}

// TestSpanRingOverwrite checks the overwrite-oldest policy and drop
// accounting when the ring fills.
func TestSpanRingOverwrite(t *testing.T) {
	r := withRegistry(t)
	r.spans = newSpanRing(4)
	tickClock(r)
	withEnabled(t, func() {
		for i := 0; i < 10; i++ {
			sp := r.StartSpan("s")
			sp.End()
		}
	})
	st := r.spans.stats()
	if st.Recorded != 10 || st.Dropped != 6 || st.Capacity != 4 {
		t.Fatalf("stats = %+v, want recorded 10 dropped 6 cap 4", st)
	}
	if got := len(r.TraceEvents()); got != 4 {
		t.Fatalf("retained %d events, want 4", got)
	}
	r.ResetSpans()
	if st := r.spans.stats(); st.Recorded != 0 || len(r.TraceEvents()) != 0 {
		t.Fatalf("reset did not clear ring: %+v", st)
	}
}

// TestEmptyTrace checks the writer emits a valid empty envelope.
func TestEmptyTrace(t *testing.T) {
	r := withRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	assertTraceWellFormed(t, buf.Bytes())
}
