package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// varsHandler serves an expvar-style JSON snapshot of the default
// registry. It reads Default() per request, so a swapped registry is
// picked up immediately.
func varsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(Snapshot()) //nolint:errcheck // best-effort debug endpoint
}

// traceHandler serves the span ring as Chrome trace JSON (load the saved
// response in Perfetto).
func traceHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	Default().WriteTrace(w) //nolint:errcheck // best-effort debug endpoint
}

// promHandler serves the default registry — plus any gathered fleet
// peer snapshots — in the Prometheus text exposition format.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	Default().WritePrometheus(w) //nolint:errcheck // best-effort debug endpoint
}

// Handler returns the metrics snapshot handler alone (for embedding in an
// existing mux).
func Handler() http.Handler { return http.HandlerFunc(varsHandler) }

// PrometheusHandler returns the /metrics handler alone (for embedding
// in an existing mux).
func PrometheusHandler() http.Handler { return http.HandlerFunc(promHandler) }

// DebugMux returns an http.ServeMux with the full debug surface:
//
//	/metrics      Prometheus text exposition (scrapable; includes fleet
//	              peer snapshots on a training root)
//	/debug/vars   expvar-style JSON snapshot of all metrics
//	/debug/trace  Chrome trace JSON of the span ring
//	/debug/pprof  the standard net/http/pprof handlers
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", promHandler)
	mux.HandleFunc("/debug/vars", varsHandler)
	mux.HandleFunc("/debug/trace", traceHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr in a background goroutine
// (the CLI -debug-addr flag) and returns it; callers may Close it to stop.
// Listening errors are returned synchronously. The returned server's Addr
// holds the actually bound address, so ":0" callers can discover their
// ephemeral port.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: DebugMux()}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return srv, nil
}
