package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

// withEnabled runs f with telemetry enabled, restoring the prior state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	Enable()
	defer func() {
		if !prev {
			Disable()
		}
	}()
	f()
}

// withRegistry swaps in a fresh default registry for the test.
func withRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	prev := SetDefault(r)
	t.Cleanup(func() { SetDefault(prev) })
	return r
}

func TestCounterDisabledIsInert(t *testing.T) {
	Disable()
	r := withRegistry(t)
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved: %d", got)
	}
	g := r.Gauge("g")
	g.Set(3.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("disabled gauge moved: %v", got)
	}
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 {
		t.Fatalf("disabled histogram moved: %d", h.Count())
	}
	if sp := r.StartSpan("s"); sp.ring != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		c := r.Counter("requests")
		c.Add(3)
		c.Inc()
		if got := c.Value(); got != 4 {
			t.Fatalf("counter = %d, want 4", got)
		}
		if r.Counter("requests") != c {
			t.Fatal("Counter not idempotent per name")
		}
		g := r.Gauge("ratio")
		g.Set(0.25)
		if got := g.Value(); got != 0.25 {
			t.Fatalf("gauge = %v, want 0.25", got)
		}
		// Nil handles are safe no-ops.
		var nc *Counter
		var ng *Gauge
		var nh *Histogram
		nc.Add(1)
		ng.Set(1)
		nh.Observe(1)
		if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 {
			t.Fatal("nil handles not inert")
		}
	})
}

// TestHistogramBucketBoundaries pins the bucket rule: inclusive upper
// bounds, so v == bounds[i] lands in bucket i, values beyond the last
// bound land in the overflow bucket, and values at or below the first
// bound land in bucket 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		h := r.Histogram("lat", []float64{1, 10, 100})
		cases := []struct {
			v      float64
			bucket int
		}{
			{-5, 0}, {0, 0}, {1, 0}, // at/below first bound
			{1.0000001, 1}, {10, 1}, // boundary inclusive below
			{10.5, 2}, {100, 2},
			{100.0001, 3}, {1e12, 3}, // overflow
		}
		for _, c := range cases {
			h.Observe(c.v)
		}
		counts := h.BucketCounts()
		want := []int64{3, 2, 2, 2}
		for i := range want {
			if counts[i] != want[i] {
				t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
			}
		}
		if h.Count() != int64(len(cases)) {
			t.Fatalf("count = %d, want %d", h.Count(), len(cases))
		}
		var sum float64
		for _, c := range cases {
			sum += c.v
		}
		if math.Abs(h.Sum()-sum) > 1e-6 {
			t.Fatalf("sum = %v, want %v", h.Sum(), sum)
		}
		// Unsorted boundary input is sorted at construction.
		h2 := r.Histogram("lat2", []float64{100, 1, 10})
		b := h2.Bounds()
		if b[0] != 1 || b[1] != 10 || b[2] != 100 {
			t.Fatalf("bounds not sorted: %v", b)
		}
	})
}

// TestRegistryConcurrency hammers one registry from parallel writers while
// snapshots are taken concurrently; run under -race this is the data-race
// gate for the lock-free instruments.
func TestRegistryConcurrency(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		const workers = 8
		const perWorker = 2000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := r.Counter("shared.counter")
				g := r.Gauge("shared.gauge")
				h := r.Histogram("shared.hist", []float64{10, 100, 1000})
				for i := 0; i < perWorker; i++ {
					c.Inc()
					g.Set(float64(i))
					h.Observe(float64(i % 2000))
					sp := r.StartSpan("worker")
					sp.End()
				}
			}(w)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 200; i++ {
				s := r.Snapshot()
				if c := s.Counters["shared.counter"]; c < 0 || c > workers*perWorker {
					t.Errorf("impossible counter value %d", c)
					return
				}
				r.TraceEvents()
			}
		}()
		wg.Wait()
		<-done
		s := r.Snapshot()
		if got := s.Counters["shared.counter"]; got != workers*perWorker {
			t.Fatalf("counter = %d, want %d", got, workers*perWorker)
		}
		if got := s.Histograms["shared.hist"].Count; got != workers*perWorker {
			t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
		}
		if s.Spans.Recorded != workers*perWorker {
			t.Fatalf("spans recorded = %d, want %d", s.Spans.Recorded, workers*perWorker)
		}
	})
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		r.Counter("a").Add(7)
		r.Gauge("b").Set(1.5)
		r.Histogram("c", []float64{1, 2}).Observe(1)
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var back Snap
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Counters["a"] != 7 || back.Gauges["b"] != 1.5 || back.Histograms["c"].Count != 1 {
			t.Fatalf("round trip mismatch: %+v", back)
		}
	})
}

func TestHandlersServeJSON(t *testing.T) {
	r := withRegistry(t)
	withEnabled(t, func() {
		r.Counter("hits").Add(2)
		sp := r.StartSpan("handler.span")
		sp.End()

		mux := DebugMux()
		for _, path := range []string{"/debug/vars", "/debug/trace"} {
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("%s: status %d", path, rec.Code)
			}
			body, _ := io.ReadAll(rec.Result().Body)
			if !json.Valid(body) {
				t.Fatalf("%s: invalid JSON: %s", path, body)
			}
		}
		req := httptest.NewRequest("GET", "/debug/vars", nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		var s Snap
		if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		if s.Counters["hits"] != 2 {
			t.Fatalf("vars snapshot counter = %d, want 2", s.Counters["hits"])
		}
	})
}

func TestSetDefaultSwap(t *testing.T) {
	r1 := withRegistry(t)
	withEnabled(t, func() {
		GetCounter("swap.test").Add(1)
		r2 := NewRegistry()
		SetDefault(r2)
		defer SetDefault(r1)
		GetCounter("swap.test").Add(10)
		if got := r1.Counter("swap.test").Value(); got != 1 {
			t.Fatalf("old registry = %d, want 1", got)
		}
		if got := r2.Counter("swap.test").Value(); got != 10 {
			t.Fatalf("new registry = %d, want 10", got)
		}
	})
}
