// Package telemetryflag wires the telemetry layer into a CLI. All three
// commands (odq-train, odq-infer, odq-bench) share the same three flags:
//
//	-debug-addr :6060     serve /debug/vars, /debug/trace, /debug/pprof
//	-trace-out trace.json write a Chrome trace (Perfetto-loadable) on exit
//	-metrics-out m.json   write a metrics snapshot on exit
//
// Telemetry stays globally disabled (a few ns per instrumentation site)
// unless at least one of the flags is set.
package telemetryflag

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/telemetry"
)

// Flags holds the parsed telemetry flag values.
type Flags struct {
	DebugAddr  string
	TraceOut   string
	MetricsOut string
}

// Register installs the shared telemetry flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /debug/vars, /debug/trace and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace-event JSON file (load in Perfetto) on exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write a metrics snapshot JSON file on exit")
	return f
}

// Activate enables collection when any telemetry flag was set and starts
// the debug HTTP server when -debug-addr was given. It returns a flush
// function for the caller to run before exit; with no flags set both
// Activate and the returned flush are no-ops.
func (f *Flags) Activate() (flush func() error, err error) {
	if f.DebugAddr == "" && f.TraceOut == "" && f.MetricsOut == "" {
		return func() error { return nil }, nil
	}
	telemetry.Enable()
	if f.DebugAddr != "" {
		srv, err := telemetry.ServeDebug(f.DebugAddr)
		if err != nil {
			return nil, err
		}
		// srv.Addr is the actually bound address, so ":0" callers (the
		// serve smoke test) learn their ephemeral port from this line.
		fmt.Fprintf(os.Stderr, "telemetry: debug server listening on %s (try /debug/vars, /debug/trace, /debug/pprof)\n", srv.Addr)
	}
	return f.flush, nil
}

func (f *Flags) flush() error {
	if f.TraceOut != "" {
		if err := telemetry.WriteTraceFile(f.TraceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: trace written to %s\n", f.TraceOut)
	}
	if f.MetricsOut != "" {
		if err := telemetry.WriteSnapshotFile(f.MetricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: metrics snapshot written to %s\n", f.MetricsOut)
	}
	return nil
}
