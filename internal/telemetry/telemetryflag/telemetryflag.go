// Package telemetryflag wires the telemetry layer into a CLI. All
// long-running commands (odq-train, odq-infer, odq-bench, odq-serve)
// share the same flags:
//
//	-debug-addr :6060     serve /metrics, /debug/vars, /debug/trace, /debug/pprof
//	-trace-out trace.json write a Chrome trace (Perfetto-loadable) on exit
//	-metrics-out m.json   write a metrics snapshot on exit
//	-trace-id 0f3a...     join an existing run's trace correlation id
//	-log-format text      structured log format: text or json
//	-log-level info       minimum log level: debug, info, warn, error
//
// Telemetry collection stays globally disabled (a few ns per
// instrumentation site) unless -debug-addr, -trace-out or -metrics-out
// is set; structured logging is always configured.
package telemetryflag

import (
	"flag"
	"fmt"
	"strconv"

	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
)

// Flags holds the parsed telemetry flag values.
type Flags struct {
	DebugAddr  string
	TraceOut   string
	MetricsOut string
	TraceID    string
	LogFormat  string
	LogLevel   string
}

// Register installs the shared telemetry flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace-event JSON file (load in Perfetto, merge ranks with odq-tracemerge) on exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write a metrics snapshot JSON file on exit")
	fs.StringVar(&f.TraceID, "trace-id", "",
		"16-hex-digit run trace id to join (default: generated, or adopted from the coordinator)")
	fs.StringVar(&f.LogFormat, "log-format", "text",
		"structured log format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info",
		"minimum log level: debug, info, warn or error")
	return f
}

// Activate configures structured logging, applies any explicit
// -trace-id, enables metric/span collection when a telemetry flag was
// set, and starts the debug HTTP server when -debug-addr was given. It
// returns a flush function for the caller to run before exit; with no
// telemetry flags set collection stays off and the returned flush is a
// no-op.
func (f *Flags) Activate() (flush func() error, err error) {
	if err := olog.Setup(olog.Options{Format: f.LogFormat, Level: f.LogLevel}); err != nil {
		return nil, err
	}
	if f.TraceID != "" {
		id, err := strconv.ParseUint(f.TraceID, 16, 64)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("telemetry: -trace-id %q is not a nonzero 16-hex-digit id", f.TraceID)
		}
		telemetry.SetTraceID(id)
	}
	if f.DebugAddr == "" && f.TraceOut == "" && f.MetricsOut == "" {
		return func() error { return nil }, nil
	}
	telemetry.Enable()
	// Collection is on: make sure the run has a correlation id so every
	// export (trace file, /metrics labels, log lines) can be joined.
	telemetry.EnsureTraceID()
	if f.DebugAddr != "" {
		srv, err := telemetry.ServeDebug(f.DebugAddr)
		if err != nil {
			return nil, err
		}
		// srv.Addr is the actually bound address, so ":0" callers (the
		// serve smoke test) learn their ephemeral port from this line.
		olog.Info("telemetry debug server listening", "addr", srv.Addr,
			"endpoints", "/metrics /debug/vars /debug/trace /debug/pprof")
	}
	return f.flush, nil
}

func (f *Flags) flush() error {
	if f.TraceOut != "" {
		if err := telemetry.WriteTraceFile(f.TraceOut); err != nil {
			return err
		}
		olog.Info("telemetry trace written", "path", f.TraceOut)
	}
	if f.MetricsOut != "" {
		if err := telemetry.WriteSnapshotFile(f.MetricsOut); err != nil {
			return err
		}
		olog.Info("telemetry metrics snapshot written", "path", f.MetricsOut)
	}
	return nil
}
