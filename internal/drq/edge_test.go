package drq

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Edge-case coverage for the DRQ baseline.

func TestRegionSizeOne(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	x.Set4(0, 0, 1, 2, 1)
	masks := RegionMask(x, 1, 0.5)
	for i, m := range masks[0] {
		want := i == 1*4+2
		if m != want {
			t.Fatalf("pixel-granular region mask wrong at %d", i)
		}
	}
}

func TestRegionLargerThanImage(t *testing.T) {
	x := tensor.New(1, 2, 3, 3)
	x.Fill(1)
	masks := RegionMask(x, 10, 0.5)
	for _, m := range masks[0] {
		if !m {
			t.Fatal("whole-image region must classify uniformly")
		}
	}
}

func TestRegionMaskDefaultSize(t *testing.T) {
	x := tensor.New(1, 1, 8, 8)
	masks := RegionMask(x, 0, -1) // size 0 falls back to 4; threshold -1 → all sensitive
	for _, m := range masks[0] {
		if !m {
			t.Fatal("negative threshold must mark everything sensitive")
		}
	}
}

func TestDRQZeroInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	e := NewExec(8, 4)
	conv.Exec = e
	out := conv.Forward(tensor.New(1, 2, 6, 6), false)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero input must give zero output, got %v", v)
		}
	}
}

func TestDRQ1x1ConvMatchesStaticAtExtremes(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := nn.NewConv2D("c", 3, 3, 1, 1, 0, false, rng)
	x := tensor.New(1, 3, 5, 5)
	rng.FillUniform(x, 0.2, 1)
	e := NewExec(8, 4, WithThresholdScale(0))
	conv.Exec = e
	got := conv.Forward(x, false)
	if got.Shape[2] != 5 {
		t.Fatalf("1x1 geometry wrong: %v", got.Shape)
	}
	// Every region hot → pure INT8; compare against direct dequantized conv.
	ref := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, ref); d != 0 {
		t.Fatalf("deterministic executor must repeat itself, diff %v", d)
	}
}

func TestDRQBatchedProfiles(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	e := NewExec(8, 4, WithProfiling())
	conv.Exec = e
	x := tensor.New(4, 2, 8, 8)
	rng.FillUniform(x, 0, 1)
	conv.Forward(x, false)
	p := e.Profiles()[0]
	if p.Batch != 4 {
		t.Fatalf("batch %d", p.Batch)
	}
	if p.HighInputMACs < 0 || p.HighInputMACs > p.TotalMACs {
		t.Fatalf("high MACs %d outside [0,%d]", p.HighInputMACs, p.TotalMACs)
	}
}

func TestMotivationWithZeroThresholdOutput(t *testing.T) {
	// OutputThreshold 0 classifies everything above 0 magnitude as
	// sensitive; stats must still be consistent.
	rng := tensor.NewRNG(4)
	conv := nn.NewConv2D("c", 2, 2, 3, 1, 1, false, rng)
	e := NewExec(8, 4, WithMotivation(0))
	conv.Exec = e
	x := tensor.New(1, 2, 8, 8)
	rng.FillUniform(x, 0, 1)
	conv.Forward(x, false)
	s := e.MotivationStats()[0]
	if s.SensitiveCount+s.InsensitiveCount != 2*64 {
		t.Fatalf("classified %d outputs", s.SensitiveCount+s.InsensitiveCount)
	}
}
