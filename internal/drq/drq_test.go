package drq

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestRegionMaskMarksHotRegions(t *testing.T) {
	x := tensor.New(1, 1, 8, 8)
	// Make the top-left 4×4 region hot.
	for y := 0; y < 4; y++ {
		for xx := 0; xx < 4; xx++ {
			x.Set4(0, 0, y, xx, 1)
		}
	}
	masks := RegionMask(x, 4, 0.5)
	if !masks[0][0] || !masks[0][3*8+3] {
		t.Fatal("hot region must be sensitive")
	}
	if masks[0][0*8+4] || masks[0][7*8+7] {
		t.Fatal("cold regions must be insensitive")
	}
}

func TestRegionMaskRaggedEdges(t *testing.T) {
	// 6×6 image with 4-pixel regions exercises partial edge regions.
	x := tensor.New(1, 2, 6, 6)
	x.Fill(1)
	masks := RegionMask(x, 4, 0.5)
	for i, m := range masks[0] {
		if !m {
			t.Fatalf("uniformly hot image: position %d not sensitive", i)
		}
	}
}

func TestMaskedCopyPartition(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(2, 3, 8, 8)
	rng.FillUniform(x, 0, 1)
	masks := RegionMask(x, 4, meanMagnitude(x))
	hi := maskedCopy(x, masks, true)
	lo := maskedCopy(x, masks, false)
	sum := hi.Clone()
	sum.Add(lo)
	if tensor.MaxAbsDiff(sum, x) != 0 {
		t.Fatal("hi+lo must partition x exactly")
	}
}

func TestAllSensitiveEqualsStaticHigh(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 8, 8)
	rng.FillUniform(x, 0.1, 1) // strictly positive so every region is hot

	e := NewExec(8, 4, WithThresholdScale(0)) // threshold 0 → all regions sensitive
	conv.Exec = e
	got := conv.Forward(x, false)

	conv.Exec = quant.NewStaticExec(8)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("all-sensitive DRQ must equal INT8 static, diff %v", d)
	}
}

func TestAllInsensitiveEqualsStaticLow(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 8, 8)
	rng.FillUniform(x, 0, 1)

	e := NewExec(8, 4, WithThresholdScale(1e9)) // nothing clears the threshold
	conv.Exec = e
	got := conv.Forward(x, false)

	conv.Exec = quant.NewStaticExec(4)
	want := conv.Forward(x, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("all-insensitive DRQ must equal INT4 static, diff %v", d)
	}
}

func TestMixedPrecisionBetweenExtremes(t *testing.T) {
	rng := tensor.NewRNG(4)
	conv := nn.NewConv2D("c", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 16, 16)
	rng.FillUniform(x, 0, 1)
	ref := conv.Forward(x, false)

	errAt := func(scale float32) float32 {
		e := NewExec(8, 4, WithThresholdScale(scale))
		conv.Exec = e
		defer func() { conv.Exec = nil }()
		return tensor.MeanAbsDiff(ref, conv.Forward(x, false))
	}
	allHigh := errAt(0)
	mixed := errAt(1)
	allLow := errAt(1e9)
	if !(allHigh <= mixed && mixed <= allLow) {
		t.Fatalf("error ordering violated: high=%v mixed=%v low=%v", allHigh, mixed, allLow)
	}
}

func TestHighInputMACAccounting(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := nn.NewConv2D("c", 2, 3, 3, 1, 0, false, rng) // pad=0: all taps in bounds
	x := tensor.New(1, 2, 8, 8)
	rng.FillUniform(x, 0.1, 1)

	e := NewExec(8, 4, WithThresholdScale(0), WithProfiling())
	conv.Exec = e
	conv.Forward(x, false)
	p := e.Profiles()[0]
	if p.HighInputMACs != p.TotalMACs {
		t.Fatalf("all-sensitive with no padding: high=%d total=%d", p.HighInputMACs, p.TotalMACs)
	}

	e = NewExec(8, 4, WithThresholdScale(1e9), WithProfiling())
	conv.Exec = e
	conv.Forward(x, false)
	p = e.Profiles()[0]
	if p.HighInputMACs != 0 {
		t.Fatalf("all-insensitive: high MACs = %d", p.HighInputMACs)
	}
}

func TestMotivationStatsPopulate(t *testing.T) {
	rng := tensor.NewRNG(6)
	conv := nn.NewConv2D("c1", 3, 4, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 16, 16)
	rng.FillUniform(x, 0, 1)

	e := NewExec(8, 4, WithMotivation(0.3))
	conv.Exec = e
	conv.Forward(x, false)

	stats := e.MotivationStats()
	if len(stats) != 1 {
		t.Fatalf("stats count %d", len(stats))
	}
	s := stats[0]
	total := s.SensitiveCount + s.InsensitiveCount
	if total != int64(4*16*16) {
		t.Fatalf("classified %d outputs, want %d", total, 4*16*16)
	}
	var bsum int64
	for _, b := range s.SensLowFracBuckets {
		bsum += b
	}
	if bsum != s.SensitiveCount {
		t.Fatalf("sensitive buckets sum %d != count %d", bsum, s.SensitiveCount)
	}
	bsum = 0
	for _, b := range s.InsensHighFracBuckets {
		bsum += b
	}
	if bsum != s.InsensitiveCount {
		t.Fatalf("insensitive buckets sum %d != count %d", bsum, s.InsensitiveCount)
	}
	if s.PrecLossCount != s.SensitiveCount {
		t.Fatal("precision loss must be measured on every sensitive output")
	}
	e.ResetMotivation()
	if len(e.MotivationStats()) != 0 {
		t.Fatal("ResetMotivation must clear")
	}
}

func TestFracBucket(t *testing.T) {
	cases := []struct {
		f float64
		b int
	}{{0, 0}, {0.25, 0}, {0.3, 1}, {0.5, 1}, {0.6, 2}, {0.75, 2}, {0.8, 3}, {1, 3}}
	for _, c := range cases {
		if got := fracBucket(c.f); got != c.b {
			t.Fatalf("fracBucket(%v) = %d, want %d", c.f, got, c.b)
		}
	}
}

func TestInvalidateCache(t *testing.T) {
	rng := tensor.NewRNG(7)
	conv := nn.NewConv2D("c", 1, 1, 3, 1, 1, false, rng)
	e := NewExec(8, 4)
	conv.Exec = e
	x := tensor.New(1, 1, 6, 6)
	rng.FillUniform(x, 0, 1)
	out1 := conv.Forward(x, false)
	conv.Weight.W.Scale(2)
	e.InvalidateCache()
	out2 := conv.Forward(x, false)
	if tensor.MaxAbsDiff(out1, out2) == 0 {
		t.Fatal("cache invalidation must pick up new weights")
	}
}
