// Package drq implements the DRQ baseline (Song et al., ISCA 2020):
// input-directed, region-based dynamic quantization. The input feature map
// of every convolution is partitioned into square spatial regions; regions
// whose mean magnitude exceeds a threshold are "sensitive" and are computed
// with high-precision inputs and weights, the rest with low-precision ones.
//
// Besides serving as the paper's main comparison point, this package
// carries the instrumentation behind the motivation study (Figures 2–5):
// how many low-precision inputs feed each *sensitive output*, how many
// high-precision inputs feed each *insensitive output*, the resulting
// precision loss, and the wasted extra precision (Eq. 1).
package drq

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// mDRQConvs counts executor Conv calls; per-layer output/MAC counters are
// published by the shared Profiler.Record telemetry hook.
var mDRQConvs = telemetry.GetCounter("drq.convs")

// Exec is the DRQ convolution executor. Configuration is fixed at
// construction time through Option values.
type Exec struct {
	// highBits/lowBits are the two precisions (the paper evaluates
	// 8/4 and 4/2).
	highBits, lowBits int
	// regionSize is the spatial region edge in pixels.
	regionSize int
	// thresholdScale multiplies the layer's mean input magnitude to form
	// the region-sensitivity threshold; 1.0 marks above-average regions
	// as sensitive.
	thresholdScale float32
	// outputThreshold classifies *outputs* as sensitive for the
	// motivation statistics (the same magnitude criterion ODQ uses).
	outputThreshold float32
	// collectMotivation enables the Figure 2–5 statistics, at the cost
	// of extra reference convolutions.
	collectMotivation bool

	quant.Profiler

	mu         sync.Mutex
	cacheGen   uint64
	wcacheHi   map[*nn.Conv2D]*tensor.IntTensor
	wcacheLo   map[*nn.Conv2D]*tensor.IntTensor
	motivation map[string]*MotivationStat
	motOrder   []string
}

// Option configures a DRQ Exec at construction time.
type Option func(*Exec)

// WithRegionSize sets the spatial region edge (default 4).
func WithRegionSize(n int) Option {
	return func(e *Exec) { e.regionSize = n }
}

// WithThresholdScale sets the region-sensitivity threshold as a multiple
// of the layer's mean input magnitude (default 1.0).
func WithThresholdScale(s float32) Option {
	return func(e *Exec) { e.thresholdScale = s }
}

// WithProfiling enables per-layer profile recording.
func WithProfiling() Option {
	return func(e *Exec) { e.EnableProfiling() }
}

// WithMotivation enables the Figure 2–5 motivation statistics; outputs
// with |value| above outputThreshold count as sensitive.
func WithMotivation(outputThreshold float32) Option {
	return func(e *Exec) {
		e.collectMotivation = true
		e.outputThreshold = outputThreshold
	}
}

// MotivationStat aggregates the per-layer motivation measurements.
type MotivationStat struct {
	Name  string
	Index int

	// SensLowFracBuckets histograms sensitive outputs by the fraction of
	// low-precision input taps that produced them, in quartile buckets
	// (0–25%, 25–50%, 50–75%, 75–100%) — Figure 2.
	SensLowFracBuckets [4]int64
	SensitiveCount     int64

	// InsensHighFracBuckets histograms insensitive outputs by the
	// fraction of high-precision input taps — Figure 4.
	InsensHighFracBuckets [4]int64
	InsensitiveCount      int64

	// PrecLossSum/Count average |O_float − O_DRQ| over sensitive
	// outputs — Figure 3.
	PrecLossSum   float64
	PrecLossCount int64

	// ExtraPrecision is max |O_DRQ − O_allLowInputs| over insensitive
	// outputs — Figure 5 / Eq. 1.
	ExtraPrecision float64
}

// NewExec builds a DRQ executor with the given high/low bit widths,
// modified by the given options.
func NewExec(highBits, lowBits int, opts ...Option) *Exec {
	if highBits < 2 || highBits > 16 || lowBits < 1 || lowBits >= highBits {
		panic("drq: NewExec requires 1 <= lowBits < highBits <= 16")
	}
	e := &Exec{
		highBits:       highBits,
		lowBits:        lowBits,
		regionSize:     4,
		thresholdScale: 1.0,
		wcacheHi:       make(map[*nn.Conv2D]*tensor.IntTensor),
		wcacheLo:       make(map[*nn.Conv2D]*tensor.IntTensor),
		motivation:     make(map[string]*MotivationStat),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// HighBits returns the high precision width.
func (e *Exec) HighBits() int { return e.highBits }

// LowBits returns the low precision width.
func (e *Exec) LowBits() int { return e.lowBits }

// MotivationStats returns the accumulated Figure 2–5 measurements in
// layer order.
func (e *Exec) MotivationStats() []*MotivationStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*MotivationStat, 0, len(e.motOrder))
	for _, name := range e.motOrder {
		out = append(out, e.motivation[name])
	}
	return out
}

// ResetMotivation clears the motivation measurements.
func (e *Exec) ResetMotivation() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.motivation = make(map[string]*MotivationStat)
	e.motOrder = nil
}

// weights returns the cached high/low weight codes for a layer.
// Quantization runs outside the lock; the result is stored only if no
// InvalidateCache intervened (generation check), so an in-flight Conv can
// never re-populate the cache from stale weights.
func (e *Exec) weights(layer *nn.Conv2D) (hi, lo *tensor.IntTensor) {
	e.mu.Lock()
	if h, ok := e.wcacheHi[layer]; ok {
		l := e.wcacheLo[layer]
		e.mu.Unlock()
		return h, l
	}
	gen := e.cacheGen
	e.mu.Unlock()

	w := layer.EffectiveWeight()
	h := quant.WeightCodes(w, e.highBits)
	l := quant.WeightCodes(w, e.lowBits)

	e.mu.Lock()
	defer e.mu.Unlock()
	if ch, ok := e.wcacheHi[layer]; ok {
		return ch, e.wcacheLo[layer]
	}
	if e.cacheGen == gen {
		e.wcacheHi[layer] = h
		e.wcacheLo[layer] = l
	}
	return h, l
}

// InvalidateCache drops cached weight codes. Call after every weight
// mutation before issuing new Conv calls; generation tracking keeps
// in-flight Conv calls from re-populating the cache with stale codes.
func (e *Exec) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheGen++
	e.wcacheHi = make(map[*nn.Conv2D]*tensor.IntTensor)
	e.wcacheLo = make(map[*nn.Conv2D]*tensor.IntTensor)
}

// RegionMask classifies each spatial position of x [N,C,H,W] as sensitive
// (true) or not, by comparing its region's mean magnitude (across
// channels) against threshold. The mask is [N, H*W] flattened.
func RegionMask(x *tensor.Tensor, regionSize int, threshold float32) [][]bool {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	masks := make([][]bool, n)
	rs := regionSize
	if rs <= 0 {
		rs = 4
	}
	for s := 0; s < n; s++ {
		mask := make([]bool, h*w)
		for ry := 0; ry < h; ry += rs {
			for rx := 0; rx < w; rx += rs {
				y1, x1 := ry+rs, rx+rs
				if y1 > h {
					y1 = h
				}
				if x1 > w {
					x1 = w
				}
				var sum float64
				cnt := 0
				for ch := 0; ch < c; ch++ {
					base := (s*c + ch) * h * w
					for y := ry; y < y1; y++ {
						for xx := rx; xx < x1; xx++ {
							v := x.Data[base+y*w+xx]
							if v < 0 {
								v = -v
							}
							sum += float64(v)
							cnt++
						}
					}
				}
				sensitive := float32(sum/float64(cnt)) > threshold
				if sensitive {
					for y := ry; y < y1; y++ {
						for xx := rx; xx < x1; xx++ {
							mask[y*w+xx] = true
						}
					}
				}
			}
		}
		masks[s] = mask
	}
	return masks
}

// maskedCopy returns a copy of x with positions where mask!=keep zeroed.
func maskedCopy(x *tensor.Tensor, masks [][]bool, keep bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.Shape...)
	hw := h * w
	for s := 0; s < n; s++ {
		mask := masks[s]
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				if mask[i] == keep {
					out.Data[base+i] = x.Data[base+i]
				}
			}
		}
	}
	return out
}

// countTaps runs a single-output-channel convolution of 0/1 indicators to
// count, for each output position, how many of its input taps fall in the
// indicated set. Returns counts laid out [N, OH*OW].
func countTaps(masks [][]bool, n, c, h, w, k, stride, pad int, keep bool) ([]int64, tensor.ConvGeom) {
	ind := tensor.NewInt(8, 1, n, c, h, w)
	hw := h * w
	for s := 0; s < n; s++ {
		mask := masks[s]
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				if mask[i] == keep {
					ind.Data[base+i] = 1
				}
			}
		}
	}
	ones := tensor.NewInt(8, 1, 1, c, k, k)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	return quant.ConvAccum(ind, ones, stride, pad)
}

// Conv implements nn.ConvExecutor: the mixed-precision DRQ convolution.
func (e *Exec) Conv(x *tensor.Tensor, layer *nn.Conv2D) *tensor.Tensor {
	sp := telemetry.StartSpan("drq.conv")
	defer sp.End()
	mDRQConvs.Inc()
	n := x.Shape[0]
	// The region threshold is relative to each sample's own mean input
	// magnitude (not the batch's): a sample's sensitivity map — and so
	// its output — never depends on what it was batched with, which the
	// serving layer relies on for bit-identical dynamic batching.
	masks := make([][]bool, 0, n)
	for s := 0; s < n; s++ {
		sample := x.Slice4Batch(s)
		threshold := e.thresholdScale * meanMagnitude(sample)
		masks = append(masks, RegionMask(sample, e.regionSize, threshold)...)
	}

	xHi := maskedCopy(x, masks, true)
	xLo := maskedCopy(x, masks, false)
	qxHi := quant.ActCodes(xHi, e.highBits)
	qxLo := quant.ActCodes(xLo, e.lowBits)
	wHi, wLo := e.weights(layer)

	accHi, g := quant.ConvAccum(qxHi, wHi, layer.Stride, layer.Pad)
	accLo, _ := quant.ConvAccum(qxLo, wLo, layer.Stride, layer.Pad)
	out := quant.DequantAccum(accHi, qxHi.Scale*wHi.Scale, n, g)
	lo := quant.DequantAccum(accLo, qxLo.Scale*wLo.Scale, n, g)
	out.Add(lo)

	// Cost accounting: a MAC is high-precision when its input tap lies in
	// a sensitive region.
	hiCnt, _ := countTaps(masks, n, x.Shape[1], x.Shape[2], x.Shape[3], layer.K, layer.Stride, layer.Pad, true)
	var highMACs int64
	for _, v := range hiCnt {
		highMACs += v
	}
	highMACs *= int64(g.OutC) // counts are per spatial position, same for every output channel

	e.Record(&quant.LayerProfile{
		Name:          layer.Name,
		Geom:          g,
		Batch:         n,
		TotalOutputs:  int64(n) * int64(g.TotalOutputs()),
		TotalMACs:     int64(n) * g.TotalMACs(),
		HighInputMACs: highMACs,
	})

	if e.collectMotivation {
		e.motivationStats(x, xLo, masks, out, layer, g, hiCnt)
	}
	return out
}

// motivationStats computes the Figure 2–5 statistics for one layer call.
func (e *Exec) motivationStats(x, xLo *tensor.Tensor, masks [][]bool, drqOut *tensor.Tensor,
	layer *nn.Conv2D, g tensor.ConvGeom, hiCnt []int64) {
	n := x.Shape[0]

	// Reference float convolution (no bias; executors run pre-bias).
	ref := floatConv(x, layer.EffectiveWeight(), g)

	// All-low-precision convolution for Eq. 1.
	qxAll := quant.ActCodes(x, e.lowBits)
	_, wLo := e.weights(layer)
	accAll, _ := quant.ConvAccum(qxAll, wLo, layer.Stride, layer.Pad)
	allLow := quant.DequantAccum(accAll, qxAll.Scale*wLo.Scale, n, g)

	// Valid (in-bounds) tap counts per output position.
	all := make([][]bool, n)
	for s := range all {
		m := make([]bool, x.Shape[2]*x.Shape[3])
		for i := range m {
			m[i] = true
		}
		all[s] = m
	}
	validCnt, _ := countTaps(all, n, x.Shape[1], x.Shape[2], x.Shape[3], layer.K, layer.Stride, layer.Pad, true)

	e.mu.Lock()
	defer e.mu.Unlock()
	stat, ok := e.motivation[layer.Name]
	if !ok {
		stat = &MotivationStat{Name: layer.Name, Index: len(e.motOrder)}
		e.motivation[layer.Name] = stat
		e.motOrder = append(e.motOrder, layer.Name)
	}

	cols := g.OutH * g.OutW
	for s := 0; s < n; s++ {
		for pos := 0; pos < cols; pos++ {
			valid := validCnt[s*cols+pos]
			if valid == 0 {
				continue
			}
			hi := hiCnt[s*cols+pos]
			lowFrac := 1 - float64(hi)/float64(valid)
			highFrac := float64(hi) / float64(valid)
			lb := fracBucket(lowFrac)
			hb := fracBucket(highFrac)
			for oc := 0; oc < g.OutC; oc++ {
				oi := (s*g.OutC+oc)*cols + pos
				mag := drqOut.Data[oi]
				if mag < 0 {
					mag = -mag
				}
				if mag > e.outputThreshold { // sensitive output
					stat.SensitiveCount++
					stat.SensLowFracBuckets[lb]++
					d := float64(ref.Data[oi] - drqOut.Data[oi])
					if d < 0 {
						d = -d
					}
					stat.PrecLossSum += d
					stat.PrecLossCount++
				} else {
					stat.InsensitiveCount++
					stat.InsensHighFracBuckets[hb]++
					d := float64(drqOut.Data[oi] - allLow.Data[oi])
					if d < 0 {
						d = -d
					}
					if d > stat.ExtraPrecision {
						stat.ExtraPrecision = d
					}
				}
			}
		}
	}
	_ = xLo
}

// fracBucket maps a fraction to its quartile bucket index 0..3.
func fracBucket(f float64) int {
	switch {
	case f <= 0.25:
		return 0
	case f <= 0.5:
		return 1
	case f <= 0.75:
		return 2
	default:
		return 3
	}
}

func meanMagnitude(x *tensor.Tensor) float32 {
	if x.Len() == 0 {
		return 0
	}
	var s float64
	for _, v := range x.Data {
		if v < 0 {
			v = -v
		}
		s += float64(v)
	}
	return float32(s / float64(x.Len()))
}

// floatConv is a reference float convolution used by the instrumentation.
func floatConv(x, w *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	n := x.Shape[0]
	rows, cols := g.ColRows(), g.ColCols()
	out := tensor.New(n, g.OutC, g.OutH, g.OutW)
	per := g.InC * g.InH * g.InW
	tensor.DefaultPool().ParallelN(n, func(s int) {
		buf := tensor.GetFloat32(rows * cols)
		tensor.Im2col(x.Data[s*per:(s+1)*per], g, buf)
		tensor.Gemm(w.Data, buf, out.Data[s*g.OutC*cols:(s+1)*g.OutC*cols], g.OutC, rows, cols)
		tensor.PutFloat32(buf)
	})
	return out
}

var _ nn.ConvExecutor = (*Exec)(nil)
