// Package serve is the production inference service over a pool of
// resident infer.Sessions: cross-request dynamic batching (collect
// requests up to a deadline or a max batch, run ONE batched executor
// pass, scatter the per-request results), round-robin dispatch of
// batches across replicas, admission control with a bounded queue and
// backpressure, graceful drain, and hot model reload built on the
// executors' generation-checked weight-cache invalidation.
//
// Correctness rests on two invariances pinned by tests. Batch
// invariance (package infer): the ODQ predictor and the DRQ region
// threshold normalize per sample, so a batched pass is bit-identical to
// running every request alone. Replica invariance: every replica loads
// the identical checkpoint, so which replica answers a request is an
// execution detail — batching and replication change latency and
// throughput, never answers.
//
// Concurrency model: HTTP handlers only enqueue; one collector
// goroutine owns batch formation and round-robin dispatch, and each
// replica goroutine exclusively owns one session — every Forward and
// every reload of a session happens on its replica goroutine, so weight
// swaps never race an in-flight pass. The per-replica work channels
// have capacity 1: when every replica is mid-pass the collector blocks,
// which is the backpressure that keeps the bounded admission queue
// honest.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/telemetry"
	"repro/internal/telemetry/olog"
	"repro/internal/tensor"
)

// Admission errors, mapped to HTTP status codes by the handler layer.
var (
	// ErrQueueFull means the bounded admission queue is at capacity:
	// backpressure, retry later (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining means the server is shutting down and accepts no new
	// work (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting requests")
)

// Config sizes the serving loop. Zero values take the stated defaults.
type Config struct {
	// ModelName labels status output. Default "model".
	ModelName string
	// InputC/H/W is the accepted input shape; every request must carry
	// exactly C*H*W values.
	InputC, InputH, InputW int
	// MaxBatch flushes a batch when this many requests are collected
	// (default 16).
	MaxBatch int
	// BatchDeadline flushes a non-empty batch this long after its first
	// request was dequeued (default 2ms). A lone request therefore waits
	// at most BatchDeadline before executing.
	BatchDeadline time.Duration
	// QueueDepth bounds the admission queue; submissions beyond it get
	// ErrQueueFull (default 256).
	QueueDepth int
	// CkptPath is the default checkpoint for reloads that name no path
	// (the SIGHUP path in odq-serve).
	CkptPath string

	// SessionFactory, when set, lets the supervisor respawn a panicked
	// replica with a fresh session (same checkpoint, same scheme — the
	// replica-invariance contract is the factory's to keep). Without it
	// a panicked replica is tombstoned: it keeps draining its work
	// channel answering errors, and capacity stays degraded.
	SessionFactory func() (*infer.Session, error)
	// MaxRespawns caps supervisor respawns per replica before it is
	// tombstoned — a session that panics on every fresh spawn is a
	// deterministic bug, not a transient fault (default 3).
	MaxRespawns int
	// RespawnDelay is the pause before respawning a panicked replica,
	// so a hot-looping crash cannot monopolize a core (default 100ms).
	RespawnDelay time.Duration
	// EnableChaos exposes POST /v1/chaos/panic, which arms an injected
	// panic on the next executor pass. Chaos drills only — never set it
	// in production configs.
	EnableChaos bool
}

func (c Config) withDefaults() Config {
	if c.ModelName == "" {
		c.ModelName = "model"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchDeadline <= 0 {
		c.BatchDeadline = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRespawns <= 0 {
		c.MaxRespawns = 3
	}
	if c.RespawnDelay <= 0 {
		c.RespawnDelay = 100 * time.Millisecond
	}
	return c
}

// Result is one request's answer.
type Result struct {
	// RequestID echoes the id the request was submitted under (the
	// X-ODQ-Request-ID correlation header at the HTTP layer).
	RequestID string
	// Class is the argmax class index.
	Class int
	// Logits is the request's full logit row.
	Logits []float32
	// BatchSize is how many requests shared the executor pass.
	BatchSize int
	// Replica is the index of the replica that executed the pass.
	Replica int
	// Generation is the weight generation that produced the answer.
	Generation uint64
	// Latency is enqueue-to-scatter time.
	Latency time.Duration
	// Err reports a request that was accepted but could not be answered:
	// the executing replica panicked, was already tombstoned, or the
	// client's deadline expired in the queue. The HTTP layer maps it to
	// 503 with a Retry-After; every other Result field except RequestID
	// and Replica is zero.
	Err error
}

// pending is one admitted request waiting for its batch. Ownership is a
// strict handoff — submitter → collector → one replica goroutine — so
// the mutable fields (deq, answered) never need a lock.
type pending struct {
	id   string
	x    []float32
	ctx  context.Context // client lifetime; nil means no deadline
	enq  time.Time       // admission (Submit) time
	deq  time.Time       // collector pickup time; deq-enq is the queue wait
	resp chan Result
	// answered flips just before the resp send, so the panic-recovery
	// path can answer exactly the requests the crashed pass left hanging
	// without ever double-sending on the 1-buffered channel.
	answered bool
}

type reloadReq struct {
	path string
	err  chan error
}

// replicaReload is the reload order the collector routes through a
// replica's work channel, so the swap is ordered after every batch
// dispatched before it.
type replicaReload struct {
	path string
	ack  chan error
}

// workItem is one unit dispatched to a replica: a batch to execute, or
// a weight reload to apply.
type workItem struct {
	batch  []*pending
	reload *replicaReload
}

// replica is one resident session plus the goroutine state that owns
// it. The session pointer is atomic because the supervisor swaps it on
// respawn while Status/Stats read it from other goroutines; Forward and
// ReloadFile still only ever run on the replica goroutine.
type replica struct {
	id   int
	sess atomic.Pointer[infer.Session]
	work chan workItem

	// healthy is cleared the moment a pass panics and set again only
	// after a successful respawn probe; the collector skips unhealthy
	// replicas. tombstone is terminal: the replica keeps draining its
	// work channel, answering every item with an error, so neither the
	// collector nor a drain can wedge on its channel.
	healthy   atomic.Bool
	tombstone atomic.Bool
	restarts  atomic.Int64

	served  atomic.Int64
	batches atomic.Int64
}

// Server owns a pool of resident sessions and batches requests onto it.
type Server struct {
	cfg      Config
	replicas []*replica
	classes  int

	mu       sync.RWMutex // guards draining vs. enqueue/close ordering
	draining bool

	queue   chan *pending
	reloads chan reloadReq
	done    chan struct{} // closed when the collector and all replicas exit
	wg      sync.WaitGroup

	// Plain stats, live regardless of telemetry enablement (Status and
	// the tests read these; telemetry mirrors them when enabled).
	served   atomic.Int64
	rejected atomic.Int64
	batches  atomic.Int64
	batchSum atomic.Int64

	// Telemetry instruments, bound at New. The latency-decomposition
	// histograms (hQueueWait/hCollect/hExec/hScatter/hLatencyMS) use
	// Record, not Observe: /v1/status reports their quantiles whether or
	// not telemetry collection is enabled. They sit on ms-scale paths
	// (once per request or per batch), so the always-on cost is noise.
	mRequests  *telemetry.Counter
	mRejected  *telemetry.Counter
	mBatches   *telemetry.Counter
	mReloads   *telemetry.Counter
	hLatencyMS *telemetry.Histogram
	hQueueWait *telemetry.Histogram
	hCollect   *telemetry.Histogram
	hExec      *telemetry.Histogram
	hScatter   *telemetry.Histogram
	hBatchSize *telemetry.Histogram
	gQueue     *telemetry.Gauge
	gQPS       *telemetry.Gauge

	// Supervision instruments and the chaos hook.
	mRestarts   *telemetry.Counter
	mShed       *telemetry.Counter
	gDegraded   *telemetry.Gauge
	chaosPanics atomic.Int64
}

// New builds a single-replica server over a resident session. Call
// Start to begin serving.
func New(sess *infer.Session, cfg Config) (*Server, error) {
	return NewReplicated([]*infer.Session{sess}, cfg)
}

// NewReplicated builds a server over a pool of resident sessions — one
// replica per session — and warms every replica up: one batch-1 forward
// packs each session's weight codes and tells the server the classifier
// width. The sessions must host the same model loaded from the same
// checkpoint (replica invariance is what makes round-robin dispatch
// transparent); a classifier-width disagreement is rejected here. Call
// Start to begin serving.
func NewReplicated(sessions []*infer.Session, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(sessions) == 0 {
		return nil, errors.New("serve: need at least one session")
	}
	if cfg.InputC <= 0 || cfg.InputH <= 0 || cfg.InputW <= 0 {
		return nil, fmt.Errorf("serve: input shape %dx%dx%d invalid", cfg.InputC, cfg.InputH, cfg.InputW)
	}
	classes := 0
	replicas := make([]*replica, len(sessions))
	for i, sess := range sessions {
		probe := sess.Forward(tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW))
		if probe.Rank() != 2 {
			return nil, fmt.Errorf("serve: replica %d model output rank %d, want 2 (logits)", i, probe.Rank())
		}
		if i == 0 {
			classes = probe.Shape[1]
		} else if probe.Shape[1] != classes {
			return nil, fmt.Errorf("serve: replica %d has %d classes, replica 0 has %d (pools must host one model)",
				i, probe.Shape[1], classes)
		}
		replicas[i] = &replica{id: i, work: make(chan workItem, 1)}
		replicas[i].sess.Store(sess)
		replicas[i].healthy.Store(true)
	}
	s := &Server{
		cfg:      cfg,
		replicas: replicas,
		classes:  classes,
		queue:    make(chan *pending, cfg.QueueDepth),
		reloads:  make(chan reloadReq),
		done:     make(chan struct{}),

		mRequests:  telemetry.GetCounter("serve.requests"),
		mRejected:  telemetry.GetCounter("serve.rejected"),
		mBatches:   telemetry.GetCounter("serve.batches"),
		mReloads:   telemetry.GetCounter("serve.reloads"),
		hLatencyMS: telemetry.GetHistogram("serve.request_latency_ms", telemetry.ExpBuckets(0.1, 2, 18)),
		hQueueWait: telemetry.GetHistogram("serve.queue_wait_ms", telemetry.ExpBuckets(0.01, 2, 20)),
		hCollect:   telemetry.GetHistogram("serve.collect_ms", telemetry.ExpBuckets(0.01, 2, 20)),
		hExec:      telemetry.GetHistogram("serve.execute_ms", telemetry.ExpBuckets(0.1, 2, 18)),
		hScatter:   telemetry.GetHistogram("serve.scatter_ms", telemetry.ExpBuckets(0.01, 2, 20)),
		hBatchSize: telemetry.GetHistogram("serve.batch_size", telemetry.LinearBuckets(1, 1, 64)),
		gQueue:     telemetry.GetGauge("serve.queue_depth"),
		gQPS:       telemetry.GetGauge("serve.qps"),

		mRestarts: telemetry.GetCounter("serve.replica_restarts"),
		mShed:     telemetry.GetCounter("serve.deadline_shed"),
		gDegraded: telemetry.GetGauge("serve.degraded_replicas"),
	}
	return s, nil
}

// Session returns replica 0's resident session.
func (s *Server) Session() *infer.Session { return s.replicas[0].sess.Load() }

// Replicas returns the pool size.
func (s *Server) Replicas() int { return len(s.replicas) }

// HealthyReplicas returns how many replicas are currently able to
// execute passes; anything below Replicas() is degraded capacity.
func (s *Server) HealthyReplicas() int {
	n := 0
	for _, r := range s.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}

// updateDegraded republishes the degraded-capacity gauge.
func (s *Server) updateDegraded() {
	s.gDegraded.Set(float64(len(s.replicas) - s.HealthyReplicas()))
}

// InjectPanic arms n injected panics: each fires at the start of an
// executor pass, crashing whichever replica picked the batch up — the
// chaos drill for the supervision path.
func (s *Server) InjectPanic(n int) {
	if n > 0 {
		s.chaosPanics.Add(int64(n))
	}
}

// Classes returns the classifier width discovered at warmup.
func (s *Server) Classes() int { return s.classes }

// Start launches the collector, the replica executors and the QPS
// sampler.
func (s *Server) Start() {
	for _, r := range s.replicas {
		s.wg.Add(1)
		go s.replicaLoop(r)
	}
	go s.run()
	go s.sampleQPS()
}

// Submit admits one request (input length must be exactly C*H*W) and
// returns a channel that receives exactly one Result once its batch has
// executed. ErrQueueFull and ErrDraining signal backpressure and
// shutdown; the caller maps them to 429/503.
func (s *Server) Submit(x []float32) (<-chan Result, error) {
	return s.SubmitID(x, "")
}

// SubmitID is Submit with a caller-chosen correlation id (the HTTP
// layer's X-ODQ-Request-ID) that rides through the batcher and comes
// back in the Result.
func (s *Server) SubmitID(x []float32, id string) (<-chan Result, error) {
	return s.SubmitCtx(context.Background(), x, id)
}

// SubmitCtx is SubmitID honoring the client's lifetime: a request whose
// ctx is already done when the collector picks it up is shed with
// Result.Err instead of spending executor time on an answer nobody is
// waiting for.
func (s *Server) SubmitCtx(ctx context.Context, x []float32, id string) (<-chan Result, error) {
	if want := s.cfg.InputC * s.cfg.InputH * s.cfg.InputW; len(x) != want {
		return nil, fmt.Errorf("serve: input has %d values, want %d (%dx%dx%d)",
			len(x), want, s.cfg.InputC, s.cfg.InputH, s.cfg.InputW)
	}
	p := &pending{id: id, x: x, ctx: ctx, enq: time.Now(), resp: make(chan Result, 1)}
	// The RLock pairs with Drain's Lock: draining is never set between
	// our check and our send, so no send can follow close(s.queue).
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, ErrDraining
	}
	select {
	case s.queue <- p:
		s.mRequests.Inc()
		s.gQueue.Set(float64(len(s.queue)))
		return p.resp, nil
	default:
		s.rejected.Add(1)
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
}

// Reload hot-swaps weights from the checkpoint at path (empty = the
// configured default) on EVERY replica. The reload order rides each
// replica's work channel, so on each replica it is ordered after all
// batches dispatched before it and a swap never races an executor pass.
// Returns the new weight generation. On a partial failure (some
// replicas swapped, some did not) an error is returned and the pool
// keeps serving — Result.Generation tells callers which weights
// answered; retry the reload to converge the stragglers.
func (s *Server) Reload(path string) (uint64, error) {
	if path == "" {
		path = s.cfg.CkptPath
	}
	if path == "" {
		return 0, errors.New("serve: no checkpoint path to reload from")
	}
	req := reloadReq{path: path, err: make(chan error, 1)}
	select {
	case s.reloads <- req:
	case <-s.done:
		return 0, ErrDraining
	}
	if err := <-req.err; err != nil {
		olog.Error("weight reload failed", "path", path, "err", err)
		return 0, err
	}
	gen := s.replicas[0].sess.Load().Generation()
	olog.Info("weights reloaded", "path", path, "generation", gen, "replicas", len(s.replicas))
	return gen, nil
}

// Drain stops admission (new Submits get ErrDraining), lets the pool
// finish every already-accepted request, and returns when every replica
// has exited or the timeout elapsed.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
		olog.Info("admission stopped, draining queue", "queued", len(s.queue))
	}
	select {
	case <-s.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v", timeout)
	}
}

// Draining reports whether the server has stopped admission.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// StageQuantiles is one latency stage's estimated quantiles in
// milliseconds plus the number of samples behind them.
type StageQuantiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Count int64   `json:"count"`
}

func stageQuantiles(h *telemetry.Histogram) StageQuantiles {
	snap := h.Snapshot()
	return StageQuantiles{
		P50:   snap.Quantile(0.50),
		P95:   snap.Quantile(0.95),
		P99:   snap.Quantile(0.99),
		Count: snap.Count,
	}
}

// LatencyBreakdown decomposes request latency by pipeline stage:
// queue wait (Submit to collector pickup, per request), batch collect
// (per batch), executor pass (per batch), scatter (per batch), and the
// end-to-end total (per request). Always live — the underlying
// histograms record regardless of the telemetry enable flag.
type LatencyBreakdown struct {
	QueueWait StageQuantiles `json:"queue_wait"`
	Collect   StageQuantiles `json:"collect"`
	Execute   StageQuantiles `json:"execute"`
	Scatter   StageQuantiles `json:"scatter"`
	Total     StageQuantiles `json:"total"`
}

// LatencyBreakdown returns the current per-stage latency quantiles.
func (s *Server) LatencyBreakdown() LatencyBreakdown {
	return LatencyBreakdown{
		QueueWait: stageQuantiles(s.hQueueWait),
		Collect:   stageQuantiles(s.hCollect),
		Execute:   stageQuantiles(s.hExec),
		Scatter:   stageQuantiles(s.hScatter),
		Total:     stageQuantiles(s.hLatencyMS),
	}
}

// ReplicaStats is one replica's point-in-time counters.
type ReplicaStats struct {
	Served, Batches int64
	Generation      uint64
	Healthy         bool
	Restarts        int64
}

// Stats is a point-in-time view of the serving counters.
type Stats struct {
	Served, Rejected, Batches int64
	MeanBatch                 float64
	QueueDepth, QueueCap      int
	Replicas                  int
	HealthyReplicas           int
	PerReplica                []ReplicaStats
}

// Stats returns the live counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Served:     s.served.Load(),
		Rejected:   s.rejected.Load(),
		Batches:    s.batches.Load(),
		QueueDepth:      len(s.queue),
		QueueCap:        s.cfg.QueueDepth,
		Replicas:        len(s.replicas),
		HealthyReplicas: s.HealthyReplicas(),
		PerReplica:      make([]ReplicaStats, len(s.replicas)),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.batchSum.Load()) / float64(st.Batches)
	}
	for i, r := range s.replicas {
		st.PerReplica[i] = ReplicaStats{
			Served:     r.served.Load(),
			Batches:    r.batches.Load(),
			Generation: r.sess.Load().Generation(),
			Healthy:    r.healthy.Load(),
			Restarts:   r.restarts.Load(),
		}
	}
	return st
}

// run is the collector: the single goroutine that forms batches and
// deals them round-robin across the replica pool. On exit (drain) it
// closes every work channel and waits for the replicas to finish their
// queued items, so drain completes all accepted work.
func (s *Server) run() {
	defer func() {
		for _, r := range s.replicas {
			close(r.work)
		}
		s.wg.Wait()
		close(s.done)
	}()
	rr := 0
	for {
		select {
		case r := <-s.reloads:
			s.reloadAll(r)
		case p, ok := <-s.queue:
			if !ok {
				return
			}
			s.noteDequeued(p)
			if s.shedExpired(p) {
				continue
			}
			batch, closed := s.collect(p)
			rr = s.pickReplica(rr)
			s.replicas[rr].work <- workItem{batch: batch}
			rr = (rr + 1) % len(s.replicas)
			if closed {
				return
			}
		}
	}
}

// pickReplica returns the next dispatch target, preferring healthy
// replicas in round-robin order from rr. With no healthy replica it
// falls back to rr itself: tombstoned replicas keep draining their
// channels (answering errors), so the send cannot wedge, and a
// mid-respawn replica picks its backlog up the moment it recovers.
func (s *Server) pickReplica(rr int) int {
	for i := 0; i < len(s.replicas); i++ {
		c := (rr + i) % len(s.replicas)
		if s.replicas[c].healthy.Load() {
			return c
		}
	}
	return rr
}

// shedExpired answers a request whose client already gave up while it
// was queued, instead of spending an executor pass on it. The pending is
// collector-owned at this point, so the send cannot race a replica.
func (s *Server) shedExpired(p *pending) bool {
	if p.ctx == nil || p.ctx.Err() == nil {
		return false
	}
	s.mShed.Inc()
	p.answered = true
	p.resp <- Result{
		RequestID: p.id,
		Err: fmt.Errorf("serve: client deadline expired after %.1fms in queue: %w",
			float64(p.deq.Sub(p.enq))/float64(time.Millisecond), p.ctx.Err()),
	}
	return true
}

// reloadAll routes one reload order through every replica's work
// channel and gathers the acks, reporting the first failure.
func (s *Server) reloadAll(r reloadReq) {
	ack := make(chan error, len(s.replicas))
	for _, rep := range s.replicas {
		rep.work <- workItem{reload: &replicaReload{path: r.path, ack: ack}}
	}
	var first error
	for range s.replicas {
		if err := <-ack; err != nil && first == nil {
			first = err
		}
	}
	r.err <- first
}

// noteDequeued stamps the collector-pickup time on a request and
// records its queue wait — the first addend of the latency
// decomposition /v1/status reports.
func (s *Server) noteDequeued(p *pending) {
	p.deq = time.Now()
	s.hQueueWait.Record(float64(p.deq.Sub(p.enq)) / float64(time.Millisecond))
}

// collect gathers up to MaxBatch requests (waiting at most
// BatchDeadline past the first). closed reports that the queue was
// closed during collection (drain): the batch still executes.
func (s *Server) collect(first *pending) (batch []*pending, closed bool) {
	spCollect := telemetry.StartSpan("serve.collect")
	start := time.Now()
	defer func() {
		s.hCollect.Record(float64(time.Since(start)) / float64(time.Millisecond))
		spCollect.End()
	}()
	batch = append(make([]*pending, 0, s.cfg.MaxBatch), first)
	deadline := time.NewTimer(s.cfg.BatchDeadline)
	defer deadline.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p, ok := <-s.queue:
			if !ok {
				closed = true
				s.gQueue.Set(0)
				return batch, true
			}
			s.noteDequeued(p)
			if s.shedExpired(p) {
				continue
			}
			batch = append(batch, p)
		case <-deadline.C:
			s.gQueue.Set(float64(len(s.queue)))
			return batch, false
		}
	}
	s.gQueue.Set(float64(len(s.queue)))
	return batch, false
}

// replicaLoop executes this replica's work items in dispatch order —
// the goroutine is the session's exclusive owner, so batched passes and
// weight swaps are serialized per replica by construction. Every item
// runs under the supervisor (runItem): a panic answers the item's
// requests with errors and respawns or tombstones the replica, it never
// takes the process down.
func (s *Server) replicaLoop(r *replica) {
	defer s.wg.Done()
	for it := range r.work {
		s.runItem(r, it)
	}
}

// errReplicaDown answers work routed to a tombstoned replica.
var errReplicaDown = errors.New("serve: replica is down (tombstoned after repeated panics)")

// runItem executes one work item under panic supervision.
func (s *Server) runItem(r *replica, it workItem) {
	defer func() {
		if rec := recover(); rec != nil {
			s.supervise(r, it, rec)
		}
	}()
	if r.tombstone.Load() {
		// A dead replica still consumes its channel so neither the
		// collector nor a drain can wedge on it; the answers are honest
		// errors the HTTP layer maps to 503.
		s.failItem(r, it, errReplicaDown)
		return
	}
	if it.reload != nil {
		sp := telemetry.StartSpan("serve.reload")
		err := r.sess.Load().ReloadFile(it.reload.path)
		sp.End()
		if err == nil {
			s.mReloads.Inc()
		}
		it.reload.ack <- err
		return
	}
	s.execBatch(r, it.batch)
}

// failItem answers everything in a work item with err: the unanswered
// requests of a batch, or the ack of a reload order — the latter closes
// the window where a panicked replica could strand Reload (and through
// it the collector and any concurrent Drain) waiting for an ack that
// would never come.
func (s *Server) failItem(r *replica, it workItem, err error) {
	if it.reload != nil {
		it.reload.ack <- fmt.Errorf("serve: replica %d: %w", r.id, err)
		return
	}
	for _, p := range it.batch {
		if p.answered {
			continue
		}
		p.answered = true
		p.resp <- Result{RequestID: p.id, Replica: r.id, Err: err}
	}
}

// supervise is the panic path of one replica: answer the crashed item's
// requests, mark the replica unhealthy, then respawn it with a fresh
// session from the factory — or tombstone it when the factory is absent
// or the respawn budget is spent.
func (s *Server) supervise(r *replica, it workItem, rec interface{}) {
	r.healthy.Store(false)
	s.updateDegraded()
	err := fmt.Errorf("serve: replica %d panicked: %v", r.id, rec)
	olog.Error("replica panicked", "replica", r.id, "panic", fmt.Sprint(rec),
		"restarts", r.restarts.Load())
	s.failItem(r, it, err)
	if s.cfg.SessionFactory == nil || r.restarts.Load() >= int64(s.cfg.MaxRespawns) {
		r.tombstone.Store(true)
		olog.Error("replica tombstoned", "replica", r.id, "restarts", r.restarts.Load(),
			"max_respawns", s.cfg.MaxRespawns)
		return
	}
	// Synchronous respawn on the replica goroutine: the work channel
	// buffers (and the collector skips unhealthy replicas), so the pause
	// costs capacity, never correctness.
	time.Sleep(s.cfg.RespawnDelay)
	sess, ferr := s.cfg.SessionFactory()
	if ferr == nil {
		var classes int
		classes, ferr = probeSession(sess, s.cfg.InputC, s.cfg.InputH, s.cfg.InputW)
		if ferr == nil && classes != s.classes {
			ferr = fmt.Errorf("respawned session has %d classes, pool serves %d", classes, s.classes)
		}
	}
	if ferr != nil {
		r.tombstone.Store(true)
		olog.Error("replica respawn failed, tombstoned", "replica", r.id, "err", ferr)
		return
	}
	r.sess.Store(sess)
	r.restarts.Add(1)
	s.mRestarts.Inc()
	r.healthy.Store(true)
	s.updateDegraded()
	olog.Info("replica respawned", "replica", r.id, "restarts", r.restarts.Load())
}

// probeSession warms a fresh session up with one batch-1 pass and
// reports its classifier width; a panic during the probe is an error,
// not a crash (the supervisor calls this on the recovery path).
func probeSession(sess *infer.Session, c, h, w int) (classes int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("serve: session probe panicked: %v", rec)
		}
	}()
	probe := sess.Forward(tensor.New(1, c, h, w))
	if probe.Rank() != 2 {
		return 0, fmt.Errorf("serve: session probe output rank %d, want 2 (logits)", probe.Rank())
	}
	return probe.Shape[1], nil
}

// execBatch runs one batched pass on r's session and scatters the
// results.
func (s *Server) execBatch(r *replica, batch []*pending) {
	if s.chaosPanics.Load() > 0 {
		if s.chaosPanics.Add(-1) >= 0 {
			panic(fmt.Sprintf("chaos: injected panic on replica %d", r.id))
		}
		s.chaosPanics.Add(1) // lost a decrement race; restore
	}
	n := len(batch)
	per := s.cfg.InputC * s.cfg.InputH * s.cfg.InputW
	x := tensor.New(n, s.cfg.InputC, s.cfg.InputH, s.cfg.InputW)
	for i, p := range batch {
		copy(x.Data[i*per:(i+1)*per], p.x)
	}

	// The execute span carries the request ids sharing the pass, so a
	// trace lane click shows exactly which requests a batch answered.
	var spExec telemetry.Span
	if telemetry.Enabled() {
		ids := make([]string, 0, n)
		for _, p := range batch {
			if p.id != "" {
				ids = append(ids, p.id)
			}
		}
		spExec = telemetry.StartSpanWith("serve.execute",
			map[string]interface{}{"batch": n, "replica": r.id, "request_ids": ids})
	} else {
		spExec = telemetry.StartSpan("serve.execute")
	}
	execStart := time.Now()
	sess := r.sess.Load()
	logits := sess.Forward(x)
	s.hExec.Record(float64(time.Since(execStart)) / float64(time.Millisecond))
	spExec.End()

	spScatter := telemetry.StartSpan("serve.scatter")
	scatterStart := time.Now()
	gen := sess.Generation()
	now := time.Now()
	preds := logits.ArgmaxRows()
	for i, p := range batch {
		row := make([]float32, s.classes)
		copy(row, logits.Data[i*s.classes:(i+1)*s.classes])
		lat := now.Sub(p.enq)
		s.hLatencyMS.Record(float64(lat) / float64(time.Millisecond))
		p.answered = true
		p.resp <- Result{
			RequestID:  p.id,
			Class:      preds[i],
			Logits:     row,
			BatchSize:  n,
			Replica:    r.id,
			Generation: gen,
			Latency:    lat,
		}
	}
	s.hScatter.Record(float64(time.Since(scatterStart)) / float64(time.Millisecond))
	spScatter.End()

	s.served.Add(int64(n))
	s.batches.Add(1)
	s.batchSum.Add(int64(n))
	r.served.Add(int64(n))
	r.batches.Add(1)
	s.mBatches.Inc()
	s.hBatchSize.Observe(float64(n))
}

// sampleQPS publishes the per-model QPS gauge once a second until drain.
func (s *Server) sampleQPS() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	last := int64(0)
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			cur := s.served.Load()
			s.gQPS.Set(float64(cur - last))
			last = cur
		}
	}
}
