// Package serve is the production inference service over a resident
// infer.Session: cross-request dynamic batching (collect requests up to a
// deadline or a max batch, run ONE batched executor pass, scatter the
// per-request results), admission control with a bounded queue and
// backpressure, graceful drain, and hot model reload built on the
// executors' generation-checked weight-cache invalidation.
//
// Correctness rests on a property pinned in package infer: inference is
// batch-invariant (the ODQ predictor and the DRQ region threshold
// normalize per sample), so a batched pass is bit-identical to running
// every request alone — batching changes latency and throughput, never
// answers.
//
// Concurrency model: HTTP handlers only enqueue; one batcher goroutine
// owns the session and performs every Forward and every reload, so
// weight swaps never race an in-flight pass.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Admission errors, mapped to HTTP status codes by the handler layer.
var (
	// ErrQueueFull means the bounded admission queue is at capacity:
	// backpressure, retry later (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining means the server is shutting down and accepts no new
	// work (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting requests")
)

// Config sizes the serving loop. Zero values take the stated defaults.
type Config struct {
	// ModelName labels telemetry (the per-model QPS gauge) and status
	// output. Default "model".
	ModelName string
	// InputC/H/W is the accepted input shape; every request must carry
	// exactly C*H*W values.
	InputC, InputH, InputW int
	// MaxBatch flushes a batch when this many requests are collected
	// (default 16).
	MaxBatch int
	// BatchDeadline flushes a non-empty batch this long after its first
	// request was dequeued (default 2ms). A lone request therefore waits
	// at most BatchDeadline before executing.
	BatchDeadline time.Duration
	// QueueDepth bounds the admission queue; submissions beyond it get
	// ErrQueueFull (default 256).
	QueueDepth int
	// CkptPath is the default checkpoint for reloads that name no path
	// (the SIGHUP path in odq-serve).
	CkptPath string
}

func (c Config) withDefaults() Config {
	if c.ModelName == "" {
		c.ModelName = "model"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchDeadline <= 0 {
		c.BatchDeadline = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Result is one request's answer.
type Result struct {
	// Class is the argmax class index.
	Class int
	// Logits is the request's full logit row.
	Logits []float32
	// BatchSize is how many requests shared the executor pass.
	BatchSize int
	// Generation is the weight generation that produced the answer.
	Generation uint64
	// Latency is enqueue-to-scatter time.
	Latency time.Duration
}

// pending is one admitted request waiting for its batch.
type pending struct {
	x    []float32
	enq  time.Time
	resp chan Result
}

type reloadReq struct {
	path string
	err  chan error
}

// Server owns a resident session and batches requests onto it.
type Server struct {
	cfg     Config
	sess    *infer.Session
	classes int

	mu       sync.RWMutex // guards draining vs. enqueue/close ordering
	draining bool

	queue   chan *pending
	reloads chan reloadReq
	done    chan struct{} // closed when the batcher exits

	// Plain stats, live regardless of telemetry enablement (Status and
	// the tests read these; telemetry mirrors them when enabled).
	served   atomic.Int64
	rejected atomic.Int64
	batches  atomic.Int64
	batchSum atomic.Int64

	// Telemetry instruments (per-model QPS gauge name depends on config,
	// so handles live on the server, bound at New).
	mRequests  *telemetry.Counter
	mRejected  *telemetry.Counter
	mBatches   *telemetry.Counter
	mReloads   *telemetry.Counter
	hLatencyMS *telemetry.Histogram
	hBatchSize *telemetry.Histogram
	gQueue     *telemetry.Gauge
	gQPS       *telemetry.Gauge
}

// New builds a server over a resident session and warms it up: one
// batch-1 forward packs every layer's weight codes and tells the server
// the classifier width. Call Start to begin serving.
func New(sess *infer.Session, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.InputC <= 0 || cfg.InputH <= 0 || cfg.InputW <= 0 {
		return nil, fmt.Errorf("serve: input shape %dx%dx%d invalid", cfg.InputC, cfg.InputH, cfg.InputW)
	}
	probe := sess.Forward(tensor.New(1, cfg.InputC, cfg.InputH, cfg.InputW))
	if probe.Rank() != 2 {
		return nil, fmt.Errorf("serve: model output rank %d, want 2 (logits)", probe.Rank())
	}
	s := &Server{
		cfg:     cfg,
		sess:    sess,
		classes: probe.Shape[1],
		queue:   make(chan *pending, cfg.QueueDepth),
		reloads: make(chan reloadReq),
		done:    make(chan struct{}),

		mRequests:  telemetry.GetCounter("serve.requests"),
		mRejected:  telemetry.GetCounter("serve.rejected"),
		mBatches:   telemetry.GetCounter("serve.batches"),
		mReloads:   telemetry.GetCounter("serve.reloads"),
		hLatencyMS: telemetry.GetHistogram("serve.request_latency_ms", telemetry.ExpBuckets(0.1, 2, 18)),
		hBatchSize: telemetry.GetHistogram("serve.batch_size", telemetry.LinearBuckets(1, 1, 64)),
		gQueue:     telemetry.GetGauge("serve.queue_depth"),
		gQPS:       telemetry.GetGauge("serve.qps." + cfg.ModelName),
	}
	return s, nil
}

// Session returns the underlying resident session.
func (s *Server) Session() *infer.Session { return s.sess }

// Classes returns the classifier width discovered at warmup.
func (s *Server) Classes() int { return s.classes }

// Start launches the batcher and the QPS sampler.
func (s *Server) Start() {
	go s.run()
	go s.sampleQPS()
}

// Submit admits one request (input length must be exactly C*H*W) and
// returns a channel that receives exactly one Result once its batch has
// executed. ErrQueueFull and ErrDraining signal backpressure and
// shutdown; the caller maps them to 429/503.
func (s *Server) Submit(x []float32) (<-chan Result, error) {
	if want := s.cfg.InputC * s.cfg.InputH * s.cfg.InputW; len(x) != want {
		return nil, fmt.Errorf("serve: input has %d values, want %d (%dx%dx%d)",
			len(x), want, s.cfg.InputC, s.cfg.InputH, s.cfg.InputW)
	}
	p := &pending{x: x, enq: time.Now(), resp: make(chan Result, 1)}
	// The RLock pairs with Drain's Lock: draining is never set between
	// our check and our send, so no send can follow close(s.queue).
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, ErrDraining
	}
	select {
	case s.queue <- p:
		s.mRequests.Inc()
		s.gQueue.Set(float64(len(s.queue)))
		return p.resp, nil
	default:
		s.rejected.Add(1)
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
}

// Reload asks the batcher to hot-swap weights from the checkpoint at
// path (empty = the configured default) between batches, so a swap never
// races an executor pass. Returns the new weight generation.
func (s *Server) Reload(path string) (uint64, error) {
	if path == "" {
		path = s.cfg.CkptPath
	}
	if path == "" {
		return 0, errors.New("serve: no checkpoint path to reload from")
	}
	req := reloadReq{path: path, err: make(chan error, 1)}
	select {
	case s.reloads <- req:
	case <-s.done:
		return 0, ErrDraining
	}
	if err := <-req.err; err != nil {
		return 0, err
	}
	return s.sess.Generation(), nil
}

// Drain stops admission (new Submits get ErrDraining), lets the batcher
// finish every already-accepted request, and returns when the batcher
// has exited or the timeout elapsed.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	select {
	case <-s.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v", timeout)
	}
}

// Draining reports whether the server has stopped admission.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Stats is a point-in-time view of the serving counters.
type Stats struct {
	Served, Rejected, Batches int64
	MeanBatch                 float64
	QueueDepth, QueueCap      int
}

// Stats returns the live counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Served:     s.served.Load(),
		Rejected:   s.rejected.Load(),
		Batches:    s.batches.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.batchSum.Load()) / float64(st.Batches)
	}
	return st
}

// run is the batcher: the single goroutine that owns the session.
func (s *Server) run() {
	defer close(s.done)
	for {
		select {
		case r := <-s.reloads:
			s.reload(r)
		case p, ok := <-s.queue:
			if !ok {
				return
			}
			if closed := s.runBatch(p); closed {
				return
			}
		}
	}
}

func (s *Server) reload(r reloadReq) {
	sp := telemetry.StartSpan("serve.reload")
	err := s.sess.ReloadFile(r.path)
	sp.End()
	if err == nil {
		s.mReloads.Inc()
	}
	r.err <- err
}

// runBatch collects up to MaxBatch requests (waiting at most
// BatchDeadline past the first), executes one batched pass, and scatters
// the results. Returns true when the queue was closed (drain): the
// current batch still executes — drain completes all accepted work.
func (s *Server) runBatch(first *pending) (closed bool) {
	spCollect := telemetry.StartSpan("serve.collect")
	batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
	deadline := time.NewTimer(s.cfg.BatchDeadline)
collect:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p, ok := <-s.queue:
			if !ok {
				closed = true
				break collect
			}
			batch = append(batch, p)
		case <-deadline.C:
			break collect
		}
	}
	deadline.Stop()
	s.gQueue.Set(float64(len(s.queue)))
	spCollect.End()

	n := len(batch)
	per := s.cfg.InputC * s.cfg.InputH * s.cfg.InputW
	x := tensor.New(n, s.cfg.InputC, s.cfg.InputH, s.cfg.InputW)
	for i, p := range batch {
		copy(x.Data[i*per:(i+1)*per], p.x)
	}

	spExec := telemetry.StartSpan("serve.execute")
	logits := s.sess.Forward(x)
	spExec.End()

	spScatter := telemetry.StartSpan("serve.scatter")
	gen := s.sess.Generation()
	now := time.Now()
	preds := logits.ArgmaxRows()
	for i, p := range batch {
		row := make([]float32, s.classes)
		copy(row, logits.Data[i*s.classes:(i+1)*s.classes])
		lat := now.Sub(p.enq)
		s.hLatencyMS.Observe(float64(lat) / float64(time.Millisecond))
		p.resp <- Result{
			Class:      preds[i],
			Logits:     row,
			BatchSize:  n,
			Generation: gen,
			Latency:    lat,
		}
	}
	spScatter.End()

	s.served.Add(int64(n))
	s.batches.Add(1)
	s.batchSum.Add(int64(n))
	s.mBatches.Inc()
	s.hBatchSize.Observe(float64(n))
	return closed
}

// sampleQPS publishes the per-model QPS gauge once a second until drain.
func (s *Server) sampleQPS() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	last := int64(0)
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			cur := s.served.Load()
			s.gQPS.Set(float64(cur - last))
			last = cur
		}
	}
}
