package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// InferRequest is the POST /v1/infer body: one sample per request (the
// server batches across requests, not within them).
type InferRequest struct {
	// Input is the flattened C*H*W input in NCHW order.
	Input []float32 `json:"input"`
}

// InferResponse is the POST /v1/infer answer.
type InferResponse struct {
	RequestID  string    `json:"request_id"`
	Class      int       `json:"class"`
	Logits     []float32 `json:"logits"`
	BatchSize  int       `json:"batch_size"`
	Generation uint64    `json:"generation"`
	LatencyMS  float64   `json:"latency_ms"`
}

// ReloadRequest is the POST /v1/reload body.
type ReloadRequest struct {
	// Path of the checkpoint to load; empty uses the server's configured
	// default.
	Path string `json:"path"`
}

// ReloadResponse reports the weight generation after a reload.
type ReloadResponse struct {
	Generation uint64 `json:"generation"`
}

// ReplicaStatus is one replica's share of the pool counters.
type ReplicaStatus struct {
	Replica    int    `json:"replica"`
	Served     int64  `json:"served"`
	Batches    int64  `json:"batches"`
	Generation uint64 `json:"generation"`
	Healthy    bool   `json:"healthy"`
	Restarts   int64  `json:"restarts"`
}

// ChaosPanicRequest is the POST /v1/chaos/panic body (chaos builds
// only). Count defaults to 1.
type ChaosPanicRequest struct {
	Count int `json:"count"`
}

// StatusResponse is the GET /v1/status body.
type StatusResponse struct {
	Model           string           `json:"model"`
	Scheme          string           `json:"scheme"`
	InputShape      [3]int           `json:"input_shape"`
	Classes         int              `json:"classes"`
	Generation      uint64           `json:"generation"`
	Served          int64            `json:"served"`
	Rejected        int64            `json:"rejected"`
	Batches         int64            `json:"batches"`
	MeanBatch       float64          `json:"mean_batch"`
	QueueDepth      int              `json:"queue_depth"`
	QueueCap        int              `json:"queue_cap"`
	MaxBatch        int              `json:"max_batch"`
	BatchDeadlineMS float64          `json:"batch_deadline_ms"`
	Replicas        int              `json:"replicas"`
	HealthyReplicas int              `json:"healthy_replicas"`
	PerReplica      []ReplicaStatus  `json:"per_replica"`
	Latency         LatencyBreakdown `json:"latency_ms"`
	Draining        bool             `json:"draining"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// RequestIDHeader carries the per-request correlation id. The handler
// echoes a client-supplied value (or mints one) on the response, in the
// JSON body, and through the batcher, so one id follows a request from
// the load balancer's log to the executor span that answered it.
const RequestIDHeader = "X-ODQ-Request-ID"

// Handler returns the service API:
//
//	POST /v1/infer   one sample in, class + logits out (dynamically batched)
//	POST /v1/reload  hot-swap weights from a checkpoint
//	GET  /v1/status  serving counters, model identity, latency quantiles
//	GET  /healthz    liveness (200 while the process runs)
//	GET  /readyz     readiness (503 while draining — take it out of rotation)
//
// Metrics, traces and pprof live on the separate -debug-addr server
// (telemetry.DebugMux), keeping the serving port minimal.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.cfg.EnableChaos {
		// POST /v1/chaos/panic arms the next N executor passes to panic —
		// the supervised-respawn drill. Only routed when the operator
		// explicitly opted in at startup; absent otherwise, not 403'd.
		mux.HandleFunc("/v1/chaos/panic", s.handleChaosPanic)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqID := r.Header.Get(RequestIDHeader)
	if reqID == "" {
		reqID = fmt.Sprintf("%016x", telemetry.NewTraceID())
	}
	w.Header().Set(RequestIDHeader, reqID)
	resp, err := s.SubmitCtx(r.Context(), req.Input, reqID)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the bounded queue is the admission control. The
		// Retry-After is derived from what the queue is actually doing,
		// not a constant — a loaded pool tells clients to back off longer.
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	select {
	case res := <-resp:
		if res.Err != nil {
			// Shed (client deadline passed in queue) or replica failure.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, res.Err)
			return
		}
		writeJSON(w, http.StatusOK, InferResponse{
			RequestID:  res.RequestID,
			Class:      res.Class,
			Logits:     res.Logits,
			BatchSize:  res.BatchSize,
			Generation: res.Generation,
			LatencyMS:  float64(res.Latency) / float64(time.Millisecond),
		})
	case <-r.Context().Done():
		// Client went away; the batcher's buffered send still succeeds.
		writeError(w, http.StatusServiceUnavailable, r.Context().Err())
	}
}

// retryAfterSeconds estimates when retrying is worth a client's time:
// the p95 queue wait plus one batch deadline, rounded up to whole
// seconds and clamped to [1, 30]. Under light load this is the floor of
// 1s; under a pile-up it grows with the observed queue latency instead
// of inviting an immediate retry storm.
func (s *Server) retryAfterSeconds() string {
	waitMS := stageQuantiles(s.hQueueWait).P95 + float64(s.cfg.BatchDeadline)/float64(time.Millisecond)
	secs := int(math.Ceil(waitMS / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleChaosPanic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	req := ChaosPanicRequest{Count: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("count must be >= 1, got %d", req.Count))
		return
	}
	s.InjectPanic(req.Count)
	writeJSON(w, http.StatusOK, map[string]int{"armed": req.Count})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req ReloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	gen, err := s.Reload(req.Path)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Generation: gen})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	per := make([]ReplicaStatus, len(st.PerReplica))
	for i, r := range st.PerReplica {
		per[i] = ReplicaStatus{
			Replica: i, Served: r.Served, Batches: r.Batches, Generation: r.Generation,
			Healthy: r.Healthy, Restarts: r.Restarts,
		}
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Model:           s.cfg.ModelName,
		Scheme:          s.Session().Scheme(),
		InputShape:      [3]int{s.cfg.InputC, s.cfg.InputH, s.cfg.InputW},
		Classes:         s.classes,
		Generation:      s.Session().Generation(),
		Served:          st.Served,
		Rejected:        st.Rejected,
		Batches:         st.Batches,
		MeanBatch:       st.MeanBatch,
		QueueDepth:      st.QueueDepth,
		QueueCap:        st.QueueCap,
		MaxBatch:        s.cfg.MaxBatch,
		BatchDeadlineMS: float64(s.cfg.BatchDeadline) / float64(time.Millisecond),
		Replicas:        st.Replicas,
		HealthyReplicas: st.HealthyReplicas,
		PerReplica:      per,
		Latency:         s.LatencyBreakdown(),
		Draining:        s.Draining(),
	})
}

// handleHealthz is pure liveness: as long as the process can answer
// HTTP it is alive, draining or not — restarting a draining server
// would defeat the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("ok\n")) //nolint:errcheck // best-effort liveness probe
}

// handleReadyz is readiness: 503 while draining or with zero healthy
// replicas tells load balancers to stop routing new requests here; a
// degraded pool (some but not all replicas healthy) still answers 200
// so the instance stays in rotation at reduced capacity, with the body
// saying so for operators watching the probe.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		http.Error(w, "draining\n", http.StatusServiceUnavailable)
		return
	}
	healthy, total := s.HealthyReplicas(), len(s.replicas)
	switch {
	case healthy == 0:
		http.Error(w, "no healthy replicas\n", http.StatusServiceUnavailable)
	case healthy < total:
		fmt.Fprintf(w, "degraded (%d/%d replicas)\n", healthy, total)
	default:
		w.Write([]byte("ready\n")) //nolint:errcheck // best-effort readiness probe
	}
}
