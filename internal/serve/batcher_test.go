package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

// testSession builds a small resident LeNet-5 session (1x28x28 inputs).
func testSession(t *testing.T, seed int64, scheme string) *infer.Session {
	t.Helper()
	net, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := infer.NewSession(net, scheme, infer.WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func testServer(t *testing.T, seed int64, scheme string, cfg Config) *Server {
	t.Helper()
	cfg.InputC, cfg.InputH, cfg.InputW = 1, 28, 28
	srv, err := New(testSession(t, seed, scheme), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func randInput(seed int64) []float32 {
	x := tensor.New(1, 1, 28, 28)
	tensor.NewRNG(seed).FillUniform(x, 0, 1)
	return x.Data
}

// TestDeadlineFlush: a lone request must be flushed by the batch
// deadline, not wait for MaxBatch peers that never come.
func TestDeadlineFlush(t *testing.T) {
	srv := testServer(t, 1, "odq", Config{MaxBatch: 64, BatchDeadline: 30 * time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	start := time.Now()
	resp, err := srv.Submit(randInput(7))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-resp:
		if res.BatchSize != 1 {
			t.Fatalf("lone request got batch size %d", res.BatchSize)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline flush never happened")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone request took %v", elapsed)
	}
}

// TestMaxBatchFlush: with a deliberately huge deadline, MaxBatch arrivals
// must flush immediately.
func TestMaxBatchFlush(t *testing.T) {
	const maxBatch = 4
	srv := testServer(t, 2, "odq", Config{MaxBatch: maxBatch, BatchDeadline: 10 * time.Minute})
	srv.Start()

	start := time.Now()
	resps := make([]<-chan Result, maxBatch)
	for i := range resps {
		r, err := srv.Submit(randInput(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = r
	}
	for i, r := range resps {
		select {
		case res := <-r:
			if res.BatchSize != maxBatch {
				t.Fatalf("request %d: batch size %d, want %d (max-batch flush)", i, res.BatchSize, maxBatch)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("max-batch flush never happened (stuck on the 10-minute deadline)")
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("max-batch flush took %v", elapsed)
	}
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSingleRequestLatencyBound: a lone in-flight request's end-to-end
// latency is bounded by deadline + one executor pass — it can never wait
// on other traffic.
func TestSingleRequestLatencyBound(t *testing.T) {
	const deadline = 50 * time.Millisecond
	srv := testServer(t, 3, "odq", Config{MaxBatch: 64, BatchDeadline: deadline})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	// Warm the pass once so the measured request doesn't pay first-call
	// costs.
	r0, err := srv.Submit(randInput(100))
	if err != nil {
		t.Fatal(err)
	}
	<-r0

	start := time.Now()
	resp, err := srv.Submit(randInput(101))
	if err != nil {
		t.Fatal(err)
	}
	res := <-resp
	elapsed := time.Since(start)
	if res.BatchSize != 1 {
		t.Fatalf("lone request batched with %d peers", res.BatchSize-1)
	}
	// Generous bound for race-detector CI: the point is "deadline plus
	// one pass", not "10 minutes".
	if elapsed > deadline+2*time.Second {
		t.Fatalf("lone request latency %v exceeds deadline+pass bound", elapsed)
	}
	if res.Latency <= 0 {
		t.Fatal("latency must be measured")
	}
}

// TestQueueFullBackpressure: the bounded queue rejects exactly the
// overflow, and accepted requests survive. The batcher is started only
// after filling the queue so the test is deterministic.
func TestQueueFullBackpressure(t *testing.T) {
	srv := testServer(t, 4, "int8", Config{MaxBatch: 8, BatchDeadline: time.Millisecond, QueueDepth: 2})

	r1, err := srv.Submit(randInput(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := srv.Submit(randInput(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(randInput(3)); err != ErrQueueFull {
		t.Fatalf("overflow got %v, want ErrQueueFull", err)
	}
	if srv.Stats().Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", srv.Stats().Rejected)
	}

	srv.Start()
	for _, r := range []<-chan Result{r1, r2} {
		select {
		case <-r:
		case <-time.After(30 * time.Second):
			t.Fatal("accepted request never served")
		}
	}
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestBadInputShapeRejected: admission validates the input length.
func TestBadInputShapeRejected(t *testing.T) {
	srv := testServer(t, 5, "float", Config{})
	if _, err := srv.Submit(make([]float32, 3)); err == nil {
		t.Fatal("wrong-length input must be rejected at admission")
	}
}

// TestDrainCompletesAcceptedRejectsNew: drain must (a) finish every
// accepted request even though the batch deadline is far away, (b)
// reject new submissions, (c) return promptly.
func TestDrainCompletesAcceptedRejectsNew(t *testing.T) {
	srv := testServer(t, 6, "odq", Config{MaxBatch: 64, BatchDeadline: 10 * time.Minute})
	srv.Start()

	const accepted = 5
	resps := make([]<-chan Result, accepted)
	for i := range resps {
		r, err := srv.Submit(randInput(int64(40 + i)))
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = r
	}

	start := time.Now()
	if err := srv.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drain waited %v (must flush on close, not wait out the deadline)", elapsed)
	}
	for i, r := range resps {
		select {
		case <-r:
		default:
			t.Fatalf("accepted request %d not completed by drain", i)
		}
	}
	if _, err := srv.Submit(randInput(99)); err != ErrDraining {
		t.Fatalf("post-drain submit got %v, want ErrDraining", err)
	}
	// Idempotent drain.
	if err := srv.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClientsParity is the acceptance-criteria pair in one:
// 8 concurrent clients hammer the batched server (under -race in the
// verify gate), and every answer must be bit-identical to running that
// request alone on a fresh per-request session — dynamic batching may
// never change an answer. Run for both the flagship ODQ scheme and a
// static baseline.
func TestConcurrentClientsParity(t *testing.T) {
	for _, scheme := range []string{"odq", "int8"} {
		t.Run(scheme, func(t *testing.T) {
			const clients, rounds = 8, 3
			srv := testServer(t, 7, scheme, Config{MaxBatch: clients, BatchDeadline: 20 * time.Millisecond})
			srv.Start()

			type answer struct {
				seed   int64
				logits []float32
			}
			answers := make(chan answer, clients*rounds)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						seed := int64(1000 + c*rounds + round)
						resp, err := srv.Submit(randInput(seed))
						if err != nil {
							t.Errorf("client %d: %v", c, err)
							return
						}
						res := <-resp
						answers <- answer{seed: seed, logits: res.Logits}
					}
				}(c)
			}
			wg.Wait()
			close(answers)
			if err := srv.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}

			// Per-request reference: a fresh session on identical weights,
			// fed one sample at a time.
			ref := testSession(t, 7, scheme)
			for a := range answers {
				x := tensor.New(1, 1, 28, 28)
				copy(x.Data, randInput(a.seed))
				want := ref.Forward(x)
				if len(a.logits) != want.Shape[1] {
					t.Fatalf("logit width %d vs %d", len(a.logits), want.Shape[1])
				}
				for j, v := range a.logits {
					if v != want.Data[j] {
						t.Fatalf("scheme %s seed %d: batched logit %d = %g, per-request = %g (must be bit-identical)",
							scheme, a.seed, j, v, want.Data[j])
					}
				}
			}
		})
	}
}

// TestConcurrentLoadBatchesRequests: under 8 concurrent clients the mean
// batch size must exceed 1 — the dynamic batcher actually batches.
func TestConcurrentLoadBatchesRequests(t *testing.T) {
	const clients, rounds = 8, 4
	srv := testServer(t, 8, "odq", Config{MaxBatch: clients, BatchDeadline: 100 * time.Millisecond})
	srv.Start()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				resp, err := srv.Submit(randInput(int64(c*100 + round)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				<-resp
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Served != clients*rounds {
		t.Fatalf("served %d, want %d", st.Served, clients*rounds)
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch size %.2f under %d concurrent clients — batcher never batched", st.MeanBatch, clients)
	}
	t.Logf("served %d requests in %d batches (mean batch %.2f)", st.Served, st.Batches, st.MeanBatch)
}
