package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testReplicated builds a pool of n replicas, every session hosting the
// identical model (same build seed) — the replica-invariance contract.
func testReplicated(t *testing.T, n int, seed int64, scheme string, cfg Config) *Server {
	t.Helper()
	cfg.InputC, cfg.InputH, cfg.InputW = 1, 28, 28
	sessions := make([]*infer.Session, n)
	for i := range sessions {
		sessions[i] = testSession(t, seed, scheme)
	}
	srv, err := NewReplicated(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestReplicatedParityWithSingle: a 3-replica pool must answer with
// logits bit-identical to a 1-replica server on the same weights —
// which replica executes a request is an execution detail.
func TestReplicatedParityWithSingle(t *testing.T) {
	single := testServer(t, 60, "odq", Config{MaxBatch: 4, BatchDeadline: time.Millisecond})
	pool := testReplicated(t, 3, 60, "odq", Config{MaxBatch: 4, BatchDeadline: time.Millisecond})
	single.Start()
	pool.Start()
	defer single.Drain(10 * time.Second) //nolint:errcheck
	defer pool.Drain(10 * time.Second)   //nolint:errcheck

	for i := 0; i < 12; i++ {
		in := randInput(int64(1000 + i))
		rs, err := single.Submit(in)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := pool.Submit(in)
		if err != nil {
			t.Fatal(err)
		}
		a, b := <-rs, <-rp
		if a.Class != b.Class {
			t.Fatalf("request %d: single class %d, pool class %d", i, a.Class, b.Class)
		}
		for j := range a.Logits {
			if math.Float32bits(a.Logits[j]) != math.Float32bits(b.Logits[j]) {
				t.Fatalf("request %d logit %d: single %g, pool %g (replicas must be transparent)",
					i, j, a.Logits[j], b.Logits[j])
			}
		}
		if b.Replica < 0 || b.Replica >= 3 {
			t.Fatalf("request %d: replica index %d out of pool", i, b.Replica)
		}
	}
}

// TestRoundRobinDispatch: sequential lone batches must rotate through
// the replicas in order, and the per-replica counters must add up to
// the pool totals.
func TestRoundRobinDispatch(t *testing.T) {
	const replicas, rounds = 2, 6
	srv := testReplicated(t, replicas, 61, "odq", Config{MaxBatch: 4, BatchDeadline: time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	for i := 0; i < rounds; i++ {
		r, err := srv.Submit(randInput(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		res := <-r // wait each batch out so dispatch order is deterministic
		if want := i % replicas; res.Replica != want {
			t.Fatalf("batch %d ran on replica %d, want %d (round-robin)", i, res.Replica, want)
		}
	}

	st := srv.Stats()
	if st.Replicas != replicas || len(st.PerReplica) != replicas {
		t.Fatalf("stats report %d replicas (%d detailed), want %d", st.Replicas, len(st.PerReplica), replicas)
	}
	var served, batches int64
	for i, r := range st.PerReplica {
		if r.Batches != rounds/replicas {
			t.Fatalf("replica %d ran %d batches, want %d", i, r.Batches, rounds/replicas)
		}
		served += r.Served
		batches += r.Batches
	}
	if served != st.Served || batches != st.Batches {
		t.Fatalf("per-replica totals (%d served, %d batches) disagree with pool totals (%d, %d)",
			served, batches, st.Served, st.Batches)
	}
}

// TestReplicatedReloadAll: one reload must swap weights on EVERY
// replica — every subsequent answer, whichever replica produces it,
// must come from the new weights at the same generation.
func TestReplicatedReloadAll(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "new.ckpt")
	netNew, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Save(f, netNew); err != nil {
		t.Fatal(err)
	}
	f.Close()

	const replicas = 3
	srv := testReplicated(t, replicas, 62, "odq", Config{MaxBatch: 4, BatchDeadline: time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	gen, err := srv.Reload(ckptPath)
	if err != nil {
		t.Fatalf("pool reload: %v", err)
	}
	if gen != 1 {
		t.Fatalf("post-reload generation %d, want 1", gen)
	}
	for i, r := range srv.Stats().PerReplica {
		if r.Generation != 1 {
			t.Fatalf("replica %d at generation %d after pool reload, want 1", i, r.Generation)
		}
	}

	// Every replica must now answer from the new weights: run one batch
	// per replica and compare to a fresh session on the new checkpoint.
	ref := testSession(t, 63, "odq")
	in := randInput(97)
	x := tensor.New(1, 1, 28, 28)
	copy(x.Data, in)
	want := ref.Forward(x)
	seen := make(map[int]bool)
	for i := 0; i < replicas; i++ {
		r, err := srv.Submit(in)
		if err != nil {
			t.Fatal(err)
		}
		res := <-r
		seen[res.Replica] = true
		if res.Generation != 1 {
			t.Fatalf("replica %d answered at generation %d, want 1", res.Replica, res.Generation)
		}
		for j, v := range res.Logits {
			if math.Float32bits(v) != math.Float32bits(want.Data[j]) {
				t.Fatalf("replica %d logit %d = %g, fresh session = %g (stale weights on one replica)",
					res.Replica, j, v, want.Data[j])
			}
		}
	}
	if len(seen) != replicas {
		t.Fatalf("round-robin covered %d of %d replicas", len(seen), replicas)
	}

	// A failed reload (missing file) must error and not bump generations.
	if _, err := srv.Reload(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("reload from a missing file must fail")
	}
	for i, r := range srv.Stats().PerReplica {
		if r.Generation != 1 {
			t.Fatalf("replica %d generation %d after failed reload, want 1", i, r.Generation)
		}
	}
}

// TestReplicatedDrainCompletesAccepted: drain must finish every
// accepted request across all replicas, then reject new work.
func TestReplicatedDrainCompletesAccepted(t *testing.T) {
	srv := testReplicated(t, 2, 64, "odq", Config{MaxBatch: 4, BatchDeadline: 50 * time.Millisecond})
	srv.Start()

	const n = 10
	resps := make([]<-chan Result, n)
	for i := range resps {
		r, err := srv.Submit(randInput(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = r
	}
	if err := srv.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		select {
		case <-r:
		default:
			t.Fatalf("request %d accepted before drain never answered", i)
		}
	}
	if _, err := srv.Submit(randInput(99)); err != ErrDraining {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestReplicatedStatusEndpoint: /v1/status must report the pool size
// and per-replica request totals.
func TestReplicatedStatusEndpoint(t *testing.T) {
	srv := testReplicated(t, 2, 65, "odq", Config{ModelName: "lenet5", MaxBatch: 4, BatchDeadline: time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		r, err := srv.Submit(randInput(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		<-r
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Replicas != 2 || len(st.PerReplica) != 2 {
		t.Fatalf("status replicas = %d (%d detailed), want 2", st.Replicas, len(st.PerReplica))
	}
	var total int64
	for i, r := range st.PerReplica {
		if r.Replica != i {
			t.Fatalf("per_replica[%d] labeled %d", i, r.Replica)
		}
		total += r.Served
	}
	if total != st.Served || st.Served != 4 {
		t.Fatalf("per-replica served sums to %d, status served %d, want 4", total, st.Served)
	}
}

// TestNewReplicatedValidation: an empty pool and mismatched models are
// rejected at construction.
func TestNewReplicatedValidation(t *testing.T) {
	if _, err := NewReplicated(nil, Config{InputC: 1, InputH: 28, InputW: 28}); err == nil {
		t.Fatal("empty session pool must be rejected")
	}
	a := testSession(t, 1, "odq")
	wide, err := models.Build("lenet5", models.Config{Classes: 7, Scale: 0.25, QATBits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := infer.NewSession(wide, "odq", infer.WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplicated([]*infer.Session{a, b},
		Config{InputC: 1, InputH: 28, InputW: 28}); err == nil {
		t.Fatal("replicas with different classifier widths must be rejected")
	}
}
