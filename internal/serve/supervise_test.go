package serve

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// sessionFactory builds fresh sessions off the same seed the pool was
// built from — the replica-invariance contract for respawns. It is a
// plain error-returning closure because the supervisor calls it from a
// replica goroutine, where t.Fatal is illegal.
func sessionFactory(seed int64, scheme string) func() (*infer.Session, error) {
	return func() (*infer.Session, error) {
		net, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: seed})
		if err != nil {
			return nil, err
		}
		return infer.NewSession(net, scheme, infer.WithThreshold(0.5))
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPanicRespawnRestoresServing is the supervision tentpole: an
// injected panic crashes one replica's pass, the crashed batch is
// answered with errors (never dropped, never a process crash), the pool
// keeps serving on the survivor, and the supervisor respawns the
// crashed replica with a fresh session whose answers are bit-identical
// to the pre-crash weights.
func TestPanicRespawnRestoresServing(t *testing.T) {
	const seed = 70
	srv := testReplicated(t, 2, seed, "odq", Config{
		MaxBatch: 1, BatchDeadline: time.Millisecond,
		SessionFactory: sessionFactory(seed, "odq"),
		RespawnDelay:   5 * time.Millisecond,
	})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	// Warm pass, then reference answer for parity checks.
	in := randInput(500)
	ref := testSession(t, seed, "odq")
	x := tensor.New(1, 1, 28, 28)
	copy(x.Data, in)
	want := ref.Forward(x)

	r0, err := srv.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	if res := <-r0; res.Err != nil {
		t.Fatalf("warm request failed: %v", res.Err)
	}

	srv.InjectPanic(1)
	rc, err := srv.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	crashed := <-rc
	if crashed.Err == nil {
		t.Fatal("the batch on the panicked replica must be answered with an error")
	}
	if !strings.Contains(crashed.Err.Error(), "panicked") {
		t.Fatalf("crashed batch error = %v, want the panic to be named", crashed.Err)
	}

	// The pool must keep serving while one replica is down or respawning.
	rs, err := srv.Submit(in)
	if err != nil {
		t.Fatal(err)
	}
	res := <-rs
	if res.Err != nil {
		t.Fatalf("request during degraded window failed: %v", res.Err)
	}
	for j, v := range res.Logits {
		if math.Float32bits(v) != math.Float32bits(want.Data[j]) {
			t.Fatalf("degraded-window logit %d = %g, reference = %g", j, v, want.Data[j])
		}
	}

	waitFor(t, "crashed replica to respawn", func() bool { return srv.HealthyReplicas() == 2 })
	st := srv.Stats()
	restarts := int64(0)
	for _, r := range st.PerReplica {
		restarts += r.Restarts
	}
	if restarts != 1 {
		t.Fatalf("pool restarts = %d, want exactly 1", restarts)
	}

	// Post-respawn answers are bit-identical: the factory rebuilt the
	// same weights, so the crash is invisible in the answers.
	for i := 0; i < 4; i++ {
		r, err := srv.Submit(in)
		if err != nil {
			t.Fatal(err)
		}
		res := <-r
		if res.Err != nil {
			t.Fatalf("post-respawn request %d failed: %v", i, res.Err)
		}
		for j, v := range res.Logits {
			if math.Float32bits(v) != math.Float32bits(want.Data[j]) {
				t.Fatalf("post-respawn logit %d = %g, reference = %g", j, v, want.Data[j])
			}
		}
	}
}

// TestRespawnBudgetTombstones: a replica that keeps panicking is
// respawned at most MaxRespawns times, then tombstoned — and a fully
// tombstoned pool still answers every request with an honest error
// instead of wedging the collector or a drain.
func TestRespawnBudgetTombstones(t *testing.T) {
	const seed = 71
	srv := testServer(t, seed, "odq", Config{
		MaxBatch: 1, BatchDeadline: time.Millisecond,
		SessionFactory: sessionFactory(seed, "odq"),
		MaxRespawns:    1,
		RespawnDelay:   time.Millisecond,
	})
	srv.Start()

	submitErr := func() error {
		r, err := srv.Submit(randInput(1))
		if err != nil {
			t.Fatal(err)
		}
		return (<-r).Err
	}

	srv.InjectPanic(1)
	if err := submitErr(); err == nil {
		t.Fatal("first crash must answer with an error")
	}
	waitFor(t, "first respawn", func() bool { return srv.HealthyReplicas() == 1 })

	srv.InjectPanic(1)
	if err := submitErr(); err == nil {
		t.Fatal("second crash must answer with an error")
	}
	// Budget (1) is spent: no second respawn, the replica is tombstoned.
	waitFor(t, "tombstone", func() bool { return srv.HealthyReplicas() == 0 })

	if err := submitErr(); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("tombstoned pool answered %v, want a replica-down error", err)
	}
	st := srv.Stats()
	if st.PerReplica[0].Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (budget)", st.PerReplica[0].Restarts)
	}
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain over a tombstoned pool: %v", err)
	}
}

// TestDegradedReadiness: without a SessionFactory a panicked replica is
// tombstoned immediately, /readyz stays 200 but says "degraded" while
// some capacity survives, flips to 503 at zero healthy replicas, and
// /v1/status itemizes per-replica health the whole way.
func TestDegradedReadiness(t *testing.T) {
	srv := testReplicated(t, 2, 72, "odq", Config{MaxBatch: 1, BatchDeadline: time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := readyz(); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("healthy pool readyz = %d %q", code, body)
	}

	kill := func() {
		srv.InjectPanic(1)
		r, err := srv.Submit(randInput(2))
		if err != nil {
			t.Fatal(err)
		}
		if res := <-r; res.Err == nil {
			t.Fatal("crash batch must error")
		}
	}

	kill()
	waitFor(t, "first tombstone", func() bool { return srv.HealthyReplicas() == 1 })
	code, body := readyz()
	if code != http.StatusOK || !strings.Contains(body, "degraded (1/2") {
		t.Fatalf("degraded readyz = %d %q, want 200 with degraded capacity", code, body)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.HealthyReplicas != 1 || st.Replicas != 2 {
		t.Fatalf("status healthy_replicas = %d/%d, want 1/2", st.HealthyReplicas, st.Replicas)
	}
	unhealthy := 0
	for _, r := range st.PerReplica {
		if !r.Healthy {
			unhealthy++
		}
	}
	if unhealthy != 1 {
		t.Fatalf("status lists %d unhealthy replicas, want 1", unhealthy)
	}

	kill()
	waitFor(t, "second tombstone", func() bool { return srv.HealthyReplicas() == 0 })
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "no healthy replicas") {
		t.Fatalf("dead pool readyz = %d %q, want 503", code, body)
	}
}

// TestClientDeadlineShedInQueue: a request whose client gave up while
// queued is shed by the collector with Result.Err — no executor pass is
// spent on it and its channel still gets an answer.
func TestClientDeadlineShedInQueue(t *testing.T) {
	srv := testServer(t, 73, "odq", Config{MaxBatch: 4, BatchDeadline: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	// Enqueue before Start so the cancellation deterministically lands
	// while the request is still queued.
	r, err := srv.SubmitCtx(ctx, randInput(3), "shed-me")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck

	select {
	case res := <-r:
		if res.Err == nil || !strings.Contains(res.Err.Error(), "deadline expired") {
			t.Fatalf("shed result = %+v, want a deadline-expired error", res)
		}
		if res.RequestID != "shed-me" {
			t.Fatalf("shed result id %q, want the request's id", res.RequestID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shed request never answered")
	}
	if served := srv.Stats().Served; served != 0 {
		t.Fatalf("shed request counted as served (%d)", served)
	}
}

// TestDrainReloadPanicNoStrand is the Drain/Reload race regression
// (run under -race in the verify gate): reloads, inference traffic and
// injected replica panics hammer the pool concurrently, and a drain
// must still complete — a panicked replica error-acks the reload order
// it crashed on instead of stranding Reload (and through it the
// collector and the drain) on an ack that never comes.
func TestDrainReloadPanicNoStrand(t *testing.T) {
	const seed = 74
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "w.ckpt")
	net, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Save(f, net); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv := testReplicated(t, 2, seed, "odq", Config{
		MaxBatch: 2, BatchDeadline: time.Millisecond,
		SessionFactory: sessionFactory(seed, "odq"),
		RespawnDelay:   time.Millisecond,
		CkptPath:       ckpt,
	})
	srv.Start()

	var wg sync.WaitGroup
	// Traffic: every accepted request must eventually get SOME answer.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r, err := srv.Submit(randInput(int64(c*100 + i)))
				if err != nil {
					continue // queue full / draining: rejected at admission is fine
				}
				select {
				case <-r:
				case <-time.After(30 * time.Second):
					t.Errorf("client %d request %d: accepted but never answered", c, i)
					return
				}
			}
		}(c)
	}
	// Reloads racing the traffic and the panics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			srv.Reload(ckpt) //nolint:errcheck // racing a panicked replica may legitimately error
			time.Sleep(time.Millisecond)
		}
	}()
	// Panics racing both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			srv.InjectPanic(1)
			time.Sleep(3 * time.Millisecond)
		}
	}()
	wg.Wait()

	if err := srv.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain stranded after the reload/panic hammer: %v", err)
	}
}
