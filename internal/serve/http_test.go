package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestHTTPInferRoundtrip exercises the JSON API end to end: a valid
// request gets a 200 with sane logits, a malformed one a 400.
func TestHTTPInferRoundtrip(t *testing.T) {
	srv := testServer(t, 30, "odq", Config{MaxBatch: 8, BatchDeadline: 2 * time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: randInput(55)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Logits) != srv.Classes() || ir.Class < 0 || ir.Class >= srv.Classes() {
		t.Fatalf("bad answer: class %d, %d logits", ir.Class, len(ir.Logits))
	}
	if ir.BatchSize < 1 {
		t.Fatalf("batch size %d", ir.BatchSize)
	}

	// Wrong input length → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: []float32{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input status %d, want 400", resp.StatusCode)
	}

	// Garbage JSON → 400.
	gresp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage JSON status %d, want 400", gresp.StatusCode)
	}

	// GET on infer → 405.
	get, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer status %d, want 405", get.StatusCode)
	}
}

// TestHTTPRequestIDAndLatency checks the request-id correlation path —
// a client-supplied X-ODQ-Request-ID must come back on the response
// header and body, and an absent one must be minted — and that
// /v1/status reports a nonzero latency decomposition once requests
// have flowed.
func TestHTTPRequestIDAndLatency(t *testing.T) {
	srv := testServer(t, 32, "odq", Config{MaxBatch: 8, BatchDeadline: 2 * time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b, err := json.Marshal(InferRequest{Input: randInput(60)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ir InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "req-abc-123" {
		t.Fatalf("response header id %q, want req-abc-123", got)
	}
	if ir.RequestID != "req-abc-123" {
		t.Fatalf("response body id %q, want req-abc-123", ir.RequestID)
	}

	// No id supplied: the server mints one (16 hex digits).
	resp2, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: randInput(61)})
	var ir2 InferResponse
	if err := json.Unmarshal(body, &ir2); err != nil {
		t.Fatal(err)
	}
	if len(ir2.RequestID) != 16 || resp2.Header.Get(RequestIDHeader) != ir2.RequestID {
		t.Fatalf("minted id %q / header %q, want matching 16-hex ids",
			ir2.RequestID, resp2.Header.Get(RequestIDHeader))
	}

	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if status.Latency.Total.Count < 2 || status.Latency.Execute.Count < 1 {
		t.Fatalf("latency decomposition empty: %+v", status.Latency)
	}
	if status.Latency.Total.P99 < status.Latency.Total.P50 {
		t.Fatalf("p99 %v < p50 %v", status.Latency.Total.P99, status.Latency.Total.P50)
	}
	if status.Latency.QueueWait.Count < 2 {
		t.Fatalf("queue-wait samples %d, want >= 2", status.Latency.QueueWait.Count)
	}
}

// TestHTTPStatusAndHealth checks /v1/status fields and the probe
// split: /healthz stays 200 through a drain (the process is alive),
// /readyz flips to 503 (stop routing here).
func TestHTTPStatusAndHealth(t *testing.T) {
	srv := testServer(t, 31, "int8pc", Config{ModelName: "lenet5", MaxBatch: 8, BatchDeadline: 2 * time.Millisecond})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := srv.Submit(randInput(70))
	if err != nil {
		t.Fatal(err)
	}
	<-r

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Model != "lenet5" || st.Scheme != "int8pc" || st.Served != 1 || st.Draining {
		t.Fatalf("status %+v", st)
	}
	if st.InputShape != [3]int{1, 28, 28} || st.Classes != 10 {
		t.Fatalf("status shape %v classes %d", st.InputShape, st.Classes)
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		hz, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		hz.Body.Close()
		if hz.StatusCode != http.StatusOK {
			t.Fatalf("%s %d before drain", probe, hz.StatusCode)
		}
	}

	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d while draining, want 200 (liveness must not flap on drain)", hz.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while draining, want 503", rz.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: randInput(71)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining %d, want 503", resp.StatusCode)
	}
}

// TestHTTPHotReload is the serving-level stale-weight regression: after
// POST /v1/reload swaps in a new checkpoint, answers must be
// bit-identical to a fresh per-request session on those weights, and the
// generation must bump exactly once per reload.
func TestHTTPHotReload(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "new.ckpt")
	netNew, err := models.Build("lenet5", models.Config{Classes: 10, Scale: 0.25, QATBits: 4, Seed: 202})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Save(f, netNew); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv := testServer(t, 201, "odq", Config{MaxBatch: 8, BatchDeadline: 2 * time.Millisecond})
	srv.Start()
	defer srv.Drain(10 * time.Second) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := randInput(88)
	resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-reload infer %d: %s", resp.StatusCode, body)
	}
	var before InferResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if before.Generation != 0 {
		t.Fatalf("initial generation %d", before.Generation)
	}

	// Reload with no path and none configured → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/reload", ReloadRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless reload %d, want 400", resp.StatusCode)
	}
	// Reload from a missing file → 400, generation unchanged.
	resp, _ = postJSON(t, ts.URL+"/v1/reload", ReloadRequest{Path: filepath.Join(dir, "missing.ckpt")})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-file reload %d, want 400", resp.StatusCode)
	}

	resp, body = postJSON(t, ts.URL+"/v1/reload", ReloadRequest{Path: ckpt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload %d: %s", resp.StatusCode, body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Generation != 1 {
		t.Fatalf("post-reload generation %d, want 1 (failed reloads must not bump it)", rr.Generation)
	}

	resp, body = postJSON(t, ts.URL+"/v1/infer", InferRequest{Input: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload infer %d: %s", resp.StatusCode, body)
	}
	var after InferResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Generation != 1 {
		t.Fatalf("answer generation %d, want 1", after.Generation)
	}

	// Reference: fresh session built directly on the new weights.
	ref := testSession(t, 202, "odq")
	x := tensor.New(1, 1, 28, 28)
	copy(x.Data, in)
	want := ref.Forward(x)
	for j, v := range after.Logits {
		if v != want.Data[j] {
			t.Fatalf("post-reload logit %d = %g, fresh session = %g (stale weights served)", j, v, want.Data[j])
		}
	}
	same := true
	for j, v := range after.Logits {
		if v != before.Logits[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reload did not change answers — seeds too close to detect staleness")
	}
}
