//go:build !amd64

package tensor

// Non-amd64 builds use the scalar register-tiled microkernels only.

var (
	useAsmF32 = false
	useAsmInt = false
)

func microMRF32() int { return 1 }
func microNRF32() int { return 8 }
func microMRInt() int { return 2 }
func microNRInt() int { return 4 }

// fmaKernel6x16 is never called when useAsmF32 is false.
func fmaKernel6x16(ap, bp *float32, kc int, c *float32, ldc int) {
	panic("tensor: fmaKernel6x16 unavailable")
}

// mulKernelInt2x8 is never called when useAsmInt is false.
func mulKernelInt2x8(ap, bp *int32, kc int, c *int64, ldc int) {
	panic("tensor: mulKernelInt2x8 unavailable")
}
