package tensor

// ConvGeom captures the geometry of a 2-D convolution so that forward,
// backward, and all the quantized paths agree on output sizing.
type ConvGeom struct {
	InC, InH, InW    int
	OutC, OutH, OutW int
	K, Stride, Pad   int
}

// Geometry computes output dimensions for a convolution over an input of
// inC×inH×inW with outC filters of size k, given stride and padding.
func Geometry(inC, inH, inW, outC, k, stride, pad int) ConvGeom {
	return ConvGeom{
		InC: inC, InH: inH, InW: inW,
		OutC: outC,
		OutH: (inH+2*pad-k)/stride + 1,
		OutW: (inW+2*pad-k)/stride + 1,
		K:    k, Stride: stride, Pad: pad,
	}
}

// ColRows returns the number of rows of the im2col matrix (C*K*K).
func (g ConvGeom) ColRows() int { return g.InC * g.K * g.K }

// ColCols returns the number of columns of the im2col matrix (OutH*OutW).
func (g ConvGeom) ColCols() int { return g.OutH * g.OutW }

// MACsPerOutput returns the MAC count that produces one output feature.
func (g ConvGeom) MACsPerOutput() int { return g.InC * g.K * g.K }

// TotalOutputs returns the number of output features per sample.
func (g ConvGeom) TotalOutputs() int { return g.OutC * g.OutH * g.OutW }

// TotalMACs returns the MAC count for one sample through this layer.
func (g ConvGeom) TotalMACs() int64 {
	return int64(g.TotalOutputs()) * int64(g.MACsPerOutput())
}

// Im2col expands one sample (src layout [C,H,W], len C*H*W) into the
// column matrix dst of shape [C*K*K, OutH*OutW] (row-major). Out-of-bounds
// (padding) positions contribute zero.
func Im2col(src []float32, g ConvGeom, dst []float32) {
	rows, cols := g.ColRows(), g.ColCols()
	if len(dst) < rows*cols {
		panic("tensor: Im2col dst too small")
	}
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.K; kh++ {
			for kw := 0; kw < g.K; kw++ {
				row := (c*g.K+kh)*g.K + kw
				dstRow := dst[row*cols : (row+1)*cols]
				idx := 0
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.Stride - g.Pad + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							dstRow[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.Stride - g.Pad + kw
						if iw < 0 || iw >= g.InW {
							dstRow[idx] = 0
						} else {
							dstRow[idx] = src[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Im2colInt is Im2col over int32 codes, used by the quantized paths.
func Im2colInt(src []int32, g ConvGeom, dst []int32) {
	rows, cols := g.ColRows(), g.ColCols()
	if len(dst) < rows*cols {
		panic("tensor: Im2colInt dst too small")
	}
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.K; kh++ {
			for kw := 0; kw < g.K; kw++ {
				row := (c*g.K+kh)*g.K + kw
				dstRow := dst[row*cols : (row+1)*cols]
				idx := 0
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.Stride - g.Pad + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							dstRow[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.Stride - g.Pad + kw
						if iw < 0 || iw >= g.InW {
							dstRow[idx] = 0
						} else {
							dstRow[idx] = src[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Im2colIntT writes the TRANSPOSED integer column matrix: dst has shape
// [OutH*OutW, C*K*K] (row-major), so each output position's receptive
// field is one contiguous row in (c, kh, kw) order — the same order as a
// weight-code row [O][C,K,K]. The sparse ODQ executor uses this to turn a
// masked output into a single contiguous dot product.
func Im2colIntT(src []int32, g ConvGeom, dst []int32) {
	Im2colIntTPack(src, g, dst, nil)
}

// Im2colIntTPack is Im2colIntT with an optional fused bitplane pack: when
// bp is non-nil, every gathered output row is packed into bp while still
// hot in cache, saving the second full sweep over the (large) transposed
// matrix that a separate PackRows pass would cost. bp must have R =
// ColCols() rows of L = ColRows() lanes. dst may be nil when bp is
// non-nil: the gather then runs through a single pooled row buffer and
// never materializes the rows×cols matrix at all, which keeps the
// working set at one receptive field instead of the whole transpose —
// the packed planes are the only output.
func Im2colIntTPack(src []int32, g ConvGeom, dst []int32, bp *Bitplanes) {
	rows, cols := g.ColRows(), g.ColCols()
	var rowBuf []int32
	if dst == nil {
		if bp == nil {
			panic("tensor: Im2colIntTPack needs dst or bp")
		}
		rowBuf = GetInt32(rows)
		defer PutInt32(rowBuf)
	} else if len(dst) < rows*cols {
		panic("tensor: Im2colIntT dst too small")
	}
	kk := g.K * g.K
	pos := 0
	for oh := 0; oh < g.OutH; oh++ {
		ihBase := oh*g.Stride - g.Pad
		for ow := 0; ow < g.OutW; ow++ {
			iwBase := ow*g.Stride - g.Pad
			var dstRow []int32
			if dst != nil {
				dstRow = dst[pos*rows : (pos+1)*rows]
			} else {
				dstRow = rowBuf[:rows]
			}
			interior := iwBase >= 0 && iwBase+g.K <= g.InW
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				out := dstRow[c*kk : (c+1)*kk]
				idx := 0
				for kh := 0; kh < g.K; kh++ {
					ih := ihBase + kh
					if ih < 0 || ih >= g.InH {
						for kw := 0; kw < g.K; kw++ {
							out[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					if interior {
						copy(out[idx:idx+g.K], src[rowBase+iwBase:rowBase+iwBase+g.K])
						idx += g.K
						continue
					}
					for kw := 0; kw < g.K; kw++ {
						iw := iwBase + kw
						if iw < 0 || iw >= g.InW {
							out[idx] = 0
						} else {
							out[idx] = src[rowBase+iw]
						}
						idx++
					}
				}
			}
			if bp != nil {
				bp.PackRow(pos, dstRow)
			}
			pos++
		}
	}
}

// Col2im scatters the column-matrix gradient back to an input-gradient
// buffer (the adjoint of Im2col). dst has layout [C,H,W] and is accumulated
// into (callers zero it first).
func Col2im(cols []float32, g ConvGeom, dst []float32) {
	ncols := g.ColCols()
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.K; kh++ {
			for kw := 0; kw < g.K; kw++ {
				row := (c*g.K+kh)*g.K + kw
				srcRow := cols[row*ncols : (row+1)*ncols]
				idx := 0
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.Stride - g.Pad + kh
					if ih < 0 || ih >= g.InH {
						idx += g.OutW
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.Stride - g.Pad + kw
						if iw >= 0 && iw < g.InW {
							dst[rowBase+iw] += srcRow[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
