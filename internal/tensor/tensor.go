// Package tensor provides dense float32 tensors in NCHW layout together
// with the linear-algebra kernels (parallel GEMM, im2col) that the rest of
// the DNN stack is built on. It also carries integer variants used by the
// quantized inference paths.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 tensor. Data is stored row-major with the last
// dimension contiguous; for activations the canonical layout is NCHW.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// NewFrom wraps data in a tensor with the given shape. The data slice is
// used directly (not copied); len(data) must equal the shape's element count.
func NewFrom(data []float32, shape ...int) *Tensor {
	if NumElems(shape) != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elems, data has %d", shape, NumElems(shape), len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// NumElems returns the number of elements implied by shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same data. The total
// element count must match. A single -1 dim is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in reshape")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / known
	}
	if NumElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At4 reads element (n,c,h,w) of a rank-4 tensor.
func (t *Tensor) At4(n, c, h, w int) float32 {
	return t.Data[((n*t.Shape[1]+c)*t.Shape[2]+h)*t.Shape[3]+w]
}

// Set4 writes element (n,c,h,w) of a rank-4 tensor.
func (t *Tensor) Set4(n, c, h, w int, v float32) {
	t.Data[((n*t.Shape[1]+c)*t.Shape[2]+h)*t.Shape[3]+w] = v
}

// At2 reads element (i,j) of a rank-2 tensor.
func (t *Tensor) At2(i, j int) float32 { return t.Data[i*t.Shape[1]+j] }

// Set2 writes element (i,j) of a rank-2 tensor.
func (t *Tensor) Set2(i, j int, v float32) { t.Data[i*t.Shape[1]+j] = v }

// String renders a compact description (shape plus summary statistics),
// not the full contents, which can be huge.
func (t *Tensor) String() string {
	mn, mx, mean := t.Stats()
	return fmt.Sprintf("Tensor%v[min=%.4g max=%.4g mean=%.4g]", t.Shape, mn, mx, mean)
}

// Stats returns (min, max, mean) over all elements. An empty tensor
// returns zeros.
func (t *Tensor) Stats() (min, max, mean float32) {
	if len(t.Data) == 0 {
		return 0, 0, 0
	}
	min, max = t.Data[0], t.Data[0]
	var sum float64
	for _, v := range t.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += float64(v)
	}
	return min, max, float32(sum / float64(len(t.Data)))
}

// AbsMax returns the maximum absolute value over all elements.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2 returns the Euclidean norm of all elements.
func (t *Tensor) L2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Slice4Batch returns a view of sample n of a rank-4 tensor, shaped
// [1,C,H,W] and sharing storage.
func (t *Tensor) Slice4Batch(n int) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: Slice4Batch requires rank-4 tensor")
	}
	per := t.Shape[1] * t.Shape[2] * t.Shape[3]
	return &Tensor{
		Shape: []int{1, t.Shape[1], t.Shape[2], t.Shape[3]},
		Data:  t.Data[n*per : (n+1)*per],
	}
}

// IntTensor holds quantized integer codes plus the real-valued scale that
// maps codes back to reals: real ≈ float32(code) * Scale. Codes are stored
// widened to int32 regardless of their nominal bit width (2, 4, 8, 16) so a
// single integer kernel serves every precision.
type IntTensor struct {
	Shape []int
	Data  []int32
	// Scale is the real value of one quantization step.
	Scale float32
	// Bits is the nominal bit width of the codes.
	Bits int
}

// NewInt allocates a zeroed integer tensor.
func NewInt(bits int, scale float32, shape ...int) *IntTensor {
	return &IntTensor{
		Shape: append([]int(nil), shape...),
		Data:  make([]int32, NumElems(shape)),
		Scale: scale,
		Bits:  bits,
	}
}

// Len returns the total number of codes.
func (t *IntTensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *IntTensor) Clone() *IntTensor {
	c := NewInt(t.Bits, t.Scale, t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Dequantize expands the codes back to float32.
func (t *IntTensor) Dequantize() *Tensor {
	out := New(t.Shape...)
	for i, c := range t.Data {
		out.Data[i] = float32(c) * t.Scale
	}
	return out
}
