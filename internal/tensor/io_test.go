package tensor

import (
	"bytes"
	"testing"
)

func TestTensorSaveLoadRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	NewRNG(1).FillNormal(x, 0, 1)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := LoadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(y) || MaxAbsDiff(x, y) != 0 {
		t.Fatal("round trip must be exact")
	}
}

func TestIntTensorSaveLoadRoundTrip(t *testing.T) {
	x := NewInt(4, 0.125, 3, 3)
	for i := range x.Data {
		x.Data[i] = int32(i) - 4
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := LoadIntTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Scale != 0.125 || y.Bits != 4 {
		t.Fatalf("metadata lost: %+v", y)
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("codes lost")
		}
	}
}

func TestLoadTensorGarbage(t *testing.T) {
	if _, err := LoadTensor(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadIntTensor(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("garbage must error")
	}
}
