package tensor

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// kernelShapes covers odd and prime dimensions, microkernel tail blocks
// (one off either side of MR/NR), KC boundary straddles, and the CNN-scale
// shape the benchmarks use.
func kernelShapes() [][3]int {
	shapes := [][3]int{
		{1, 1, 1},
		{2, 3, 5},
		{7, 11, 13},
		{37, 53, 61},
		{13, 300, 33},
		{7, 256, 17},
		{64, 100, 64},
		{5, 255, 9},
		{3, 257, 31},
		{64, 576, 96},
	}
	// Tail blocks around the active microkernel tile.
	for _, dm := range []int{-1, 0, 1} {
		for _, dn := range []int{-1, 0, 1} {
			m := gemmMR*3 + dm
			n := gemmNR*2 + dn
			if m < 1 {
				m = 1
			}
			if n < 1 {
				n = 1
			}
			shapes = append(shapes, [3]int{m, gemmKC + 1, n})
		}
	}
	return shapes
}

func fillRandF32(rng *RNG, s []float32) {
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
}

// fillRandI32 produces signed INT8-range codes with a zero-heavy
// distribution, matching the high/low code splits the quantized executors
// feed GemmInt.
func fillRandI32(rng *RNG, s []int32) {
	for i := range s {
		v := int32(rng.Intn(255)) - 127
		if rng.Intn(4) == 0 {
			v = 0
		}
		s[i] = v
	}
}

func assertCloseF32(t *testing.T, got, want []float32, tol float64, label string) {
	t.Helper()
	for i := range want {
		diff := math.Abs(float64(got[i]) - float64(want[i]))
		scale := math.Max(1, math.Abs(float64(want[i])))
		if diff > tol*scale {
			t.Fatalf("%s: element %d: got %g want %g (rel diff %g)",
				label, i, got[i], want[i], diff/scale)
		}
	}
}

// TestGemmTiledMatchesNaive checks the blocked float kernel against the
// retained seed ikj loop across odd, prime and tail-block shapes. Float
// results may reassociate, so the comparison is relative, not exact.
func TestGemmTiledMatchesNaive(t *testing.T) {
	rng := NewRNG(11)
	for _, sh := range kernelShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillRandF32(rng, a)
		fillRandF32(rng, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Gemm(a, b, got, m, k, n)
		GemmNaive(a, b, want, m, k, n)
		assertCloseF32(t, got, want, 1e-4, fmt.Sprintf("Gemm %dx%dx%d", m, k, n))
	}
}

// TestGemmAccTiledMatchesNaive seeds C with nonzero values and checks the
// accumulating kernel.
func TestGemmAccTiledMatchesNaive(t *testing.T) {
	rng := NewRNG(13)
	for _, sh := range kernelShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillRandF32(rng, a)
		fillRandF32(rng, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		fillRandF32(rng, want)
		copy(got, want)
		GemmAcc(a, b, got, m, k, n)
		GemmAccNaive(a, b, want, m, k, n)
		assertCloseF32(t, got, want, 1e-4, fmt.Sprintf("GemmAcc %dx%dx%d", m, k, n))
	}
}

// TestGemmIntTiledBitExact is the integer-exactness contract: the blocked
// kernel must produce bit-identical accumulators to the naive loop for
// every shape — the ODQ sparse/dense `==` parity tests depend on it.
func TestGemmIntTiledBitExact(t *testing.T) {
	rng := NewRNG(17)
	for _, sh := range kernelShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]int32, m*k)
		b := make([]int32, k*n)
		fillRandI32(rng, a)
		fillRandI32(rng, b)
		got := make([]int64, m*n)
		want := make([]int64, m*n)
		GemmInt(a, b, got, m, k, n)
		GemmIntNaive(a, b, want, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GemmInt %dx%dx%d: element %d: got %d want %d (must be bit-exact)",
					m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestGemmTNMatchesMaterializedTranspose checks that the stride-absorbed
// transpose of GemmTN matches materializing Aᵀ and running GemmAccNaive.
func TestGemmTNMatchesMaterializedTranspose(t *testing.T) {
	rng := NewRNG(19)
	for _, sh := range kernelShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, k*m) // k×m, logical operand is Aᵀ (m×k)
		b := make([]float32, k*n)
		fillRandF32(rng, a)
		fillRandF32(rng, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		fillRandF32(rng, want)
		copy(got, want)
		GemmTN(a, b, got, m, k, n)
		at := make([]float32, m*k)
		for p := 0; p < k; p++ {
			for i := 0; i < m; i++ {
				at[i*k+p] = a[p*m+i]
			}
		}
		GemmAccNaive(at, b, want, m, k, n)
		assertCloseF32(t, got, want, 1e-4, fmt.Sprintf("GemmTN %dx%dx%d", m, k, n))
	}
}

// TestGemmNTMatchesMaterializedTranspose does the same for GemmNT (C += A·Bᵀ).
func TestGemmNTMatchesMaterializedTranspose(t *testing.T) {
	rng := NewRNG(23)
	for _, sh := range kernelShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, n*k) // n×k, logical operand is Bᵀ (k×n)
		fillRandF32(rng, a)
		fillRandF32(rng, b)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		fillRandF32(rng, want)
		copy(got, want)
		GemmNT(a, b, got, m, k, n)
		bt := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bt[p*n+j] = b[j*k+p]
			}
		}
		GemmAccNaive(a, bt, want, m, k, n)
		assertCloseF32(t, got, want, 1e-4, fmt.Sprintf("GemmNT %dx%dx%d", m, k, n))
	}
}

// TestGemmBiasRowMatchesGemmPlusBias checks the bias epilogue against an
// explicit Gemm followed by a row-broadcast add.
func TestGemmBiasRowMatchesGemmPlusBias(t *testing.T) {
	rng := NewRNG(29)
	for _, sh := range [][3]int{{1, 1, 1}, {7, 11, 13}, {37, 53, 61}, {64, 576, 96}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		bias := make([]float32, m)
		fillRandF32(rng, a)
		fillRandF32(rng, b)
		fillRandF32(rng, bias)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		GemmBiasRow(a, b, got, bias, m, k, n)
		Gemm(a, b, want, m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want[i*n+j] += bias[i]
			}
		}
		assertCloseF32(t, got, want, 1e-4, fmt.Sprintf("GemmBiasRow %dx%dx%d", m, k, n))
	}
}

// TestGemmDegenerateShapes exercises every entry point with zero
// dimensions. The seed implementation divided by a row-block count derived
// from m, so m==0 crashed; now all entry points must be no-ops with the
// documented C semantics.
func TestGemmDegenerateShapes(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	bias := []float32{9, 9}
	ai := []int32{1, 2, 3, 4}
	bi := []int32{5, 6, 7, 8}

	t.Run("m=0", func(t *testing.T) {
		c := []float32{42, 42}
		Gemm(a, b, c, 0, 2, 2)
		GemmAcc(a, b, c, 0, 2, 2)
		GemmBiasRow(a, b, c, bias, 0, 2, 2)
		GemmTN(a, b, c, 0, 2, 2)
		GemmNT(a, b, c, 0, 2, 2)
		ci := []int64{42, 42}
		GemmInt(ai, bi, ci, 0, 2, 2)
		if c[0] != 42 || ci[0] != 42 {
			t.Fatalf("m=0 must leave C untouched, got %v %v", c, ci)
		}
	})
	t.Run("n=0", func(t *testing.T) {
		c := []float32{42, 42}
		Gemm(a, b, c, 2, 2, 0)
		GemmAcc(a, b, c, 2, 2, 0)
		GemmBiasRow(a, b, c, bias, 2, 2, 0)
		GemmTN(a, b, c, 2, 2, 0)
		GemmNT(a, b, c, 2, 2, 0)
		ci := []int64{42, 42}
		GemmInt(ai, bi, ci, 2, 2, 0)
		if c[0] != 42 || ci[0] != 42 {
			t.Fatalf("n=0 must leave C untouched, got %v %v", c, ci)
		}
	})
	t.Run("k=0", func(t *testing.T) {
		// k==0 means the product is the zero matrix: Gemm/GemmInt zero C,
		// GemmBiasRow leaves the broadcast bias, accumulators are no-ops.
		c := []float32{42, 42, 42, 42}
		Gemm(a, b, c, 2, 0, 2)
		if c[0] != 0 || c[3] != 0 {
			t.Fatalf("Gemm k=0 must zero C, got %v", c)
		}
		acc := []float32{1, 2, 3, 4}
		GemmAcc(a, b, acc, 2, 0, 2)
		GemmTN(a, b, acc, 2, 0, 2)
		GemmNT(a, b, acc, 2, 0, 2)
		if acc[0] != 1 || acc[3] != 4 {
			t.Fatalf("accumulating kernels with k=0 must leave C untouched, got %v", acc)
		}
		cb := []float32{0, 0, 0, 0}
		GemmBiasRow(a, b, cb, bias, 2, 0, 2)
		if cb[0] != 9 || cb[3] != 9 {
			t.Fatalf("GemmBiasRow k=0 must broadcast bias, got %v", cb)
		}
		ci := []int64{42, 42, 42, 42}
		GemmInt(ai, bi, ci, 2, 0, 2)
		if ci[0] != 0 || ci[3] != 0 {
			t.Fatalf("GemmInt k=0 must zero C, got %v", ci)
		}
	})
	t.Run("all-zero", func(t *testing.T) {
		Gemm(nil, nil, nil, 0, 0, 0)
		GemmAcc(nil, nil, nil, 0, 0, 0)
		GemmBiasRow(nil, nil, nil, nil, 0, 0, 0)
		GemmTN(nil, nil, nil, 0, 0, 0)
		GemmNT(nil, nil, nil, 0, 0, 0)
		GemmInt(nil, nil, nil, 0, 0, 0)
		MatVec(nil, nil, nil, 0, 0)
	})
}

// TestGemmSerialSizeOnePool pins the satellite contract directly: with a
// single-worker pool the blocked core must not enqueue pool tasks at all
// (Pool size 1 has no queue — enqueueing would panic on the nil channel),
// even for products far above the parallel threshold.
func TestGemmSerialSizeOnePool(t *testing.T) {
	old := gemmPool
	gemmPool = func() *Pool { return NewPool(1) }
	defer func() { gemmPool = old }()

	m, k, n := 300, 80, 96 // well above gemmParallelThreshold, >1 MC block
	rng := NewRNG(31)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillRandF32(rng, a)
	fillRandF32(rng, b)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	Gemm(a, b, got, m, k, n)
	GemmNaive(a, b, want, m, k, n)
	assertCloseF32(t, got, want, 1e-4, "size-one pool Gemm")
}

// TestGemmParallelMatchesSerial substitutes a multi-worker pool so the
// row-block fan-out actually runs (DefaultPool may be size 1 on small
// machines) and checks the parallel result is bit-identical to the serial
// one: row blocks are disjoint, so per-element reduction order must not
// depend on the worker count.
func TestGemmParallelMatchesSerial(t *testing.T) {
	m, k, n := 300, 80, 96 // >1 MC block and above the parallel threshold
	rng := NewRNG(37)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillRandF32(rng, a)
	fillRandF32(rng, b)
	ai := make([]int32, m*k)
	bi := make([]int32, k*n)
	fillRandI32(rng, ai)
	fillRandI32(rng, bi)

	serial := make([]float32, m*n)
	serialInt := make([]int64, m*n)
	Gemm(a, b, serial, m, k, n) // DefaultPool on a 1-CPU box stays serial
	GemmInt(ai, bi, serialInt, m, k, n)

	old := gemmPool
	par := NewPool(4)
	gemmPool = func() *Pool { return par }
	defer func() { gemmPool = old }()

	parallel := make([]float32, m*n)
	parallelInt := make([]int64, m*n)
	Gemm(a, b, parallel, m, k, n)
	GemmInt(ai, bi, parallelInt, m, k, n)

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("float element %d: serial %g != parallel %g", i, serial[i], parallel[i])
		}
		if serialInt[i] != parallelInt[i] {
			t.Fatalf("int element %d: serial %d != parallel %d", i, serialInt[i], parallelInt[i])
		}
	}
}

// TestGemmConcurrentCallers runs many goroutines through the kernels at
// once — the scratch pools and packing buffers must be race-free (this is
// exercised under -race by make verify).
func TestGemmConcurrentCallers(t *testing.T) {
	const workers = 8
	m, k, n := 37, 300, 33
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := NewRNG(seed)
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			fillRandF32(rng, a)
			fillRandF32(rng, b)
			ai := make([]int32, m*k)
			bi := make([]int32, k*n)
			fillRandI32(rng, ai)
			fillRandI32(rng, bi)
			got := make([]float32, m*n)
			want := make([]float32, m*n)
			gotI := make([]int64, m*n)
			wantI := make([]int64, m*n)
			for iter := 0; iter < 8; iter++ {
				Gemm(a, b, got, m, k, n)
				GemmNaive(a, b, want, m, k, n)
				for i := range want {
					d := math.Abs(float64(got[i]) - float64(want[i]))
					if d > 1e-4*math.Max(1, math.Abs(float64(want[i]))) {
						errc <- fmt.Errorf("concurrent Gemm diverged at %d", i)
						return
					}
				}
				GemmInt(ai, bi, gotI, m, k, n)
				GemmIntNaive(ai, bi, wantI, m, k, n)
				for i := range wantI {
					if gotI[i] != wantI[i] {
						errc <- fmt.Errorf("concurrent GemmInt diverged at %d", i)
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
