package tensor

import (
	"encoding/gob"
	"fmt"
	"io"
)

// tensorDTO is the gob wire form shared by Save/Load.
type tensorDTO struct {
	Shape []int
	Data  []float32
}

// intTensorDTO is the gob wire form of an IntTensor.
type intTensorDTO struct {
	Shape []int
	Data  []int32
	Scale float32
	Bits  int
}

// Save writes the tensor to w in gob format.
func (t *Tensor) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(&tensorDTO{Shape: t.Shape, Data: t.Data})
}

// LoadTensor reads a tensor previously written with Save.
func LoadTensor(r io.Reader) (*Tensor, error) {
	var d tensorDTO
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("tensor: decode: %w", err)
	}
	if NumElems(d.Shape) != len(d.Data) {
		return nil, fmt.Errorf("tensor: corrupt stream: shape %v with %d values", d.Shape, len(d.Data))
	}
	return NewFrom(d.Data, d.Shape...), nil
}

// Save writes the integer tensor to w in gob format.
func (t *IntTensor) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(&intTensorDTO{
		Shape: t.Shape, Data: t.Data, Scale: t.Scale, Bits: t.Bits,
	})
}

// LoadIntTensor reads an integer tensor previously written with Save.
func LoadIntTensor(r io.Reader) (*IntTensor, error) {
	var d intTensorDTO
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("tensor: decode: %w", err)
	}
	if NumElems(d.Shape) != len(d.Data) {
		return nil, fmt.Errorf("tensor: corrupt stream: shape %v with %d codes", d.Shape, len(d.Data))
	}
	return &IntTensor{Shape: d.Shape, Data: d.Data, Scale: d.Scale, Bits: d.Bits}, nil
}
