package tensor

// Packed, cache-blocked, register-tiled GEMM kernels.
//
// All matrix products in the repo (float training convolutions, the Linear
// layer, and the integer kernels behind every quantized executor) funnel
// into one BLIS-style loop nest: the operands are packed into
// microkernel-sized panels (zero-padded at the tails), blocked MC×KC×NC to
// keep the A block in L2 and each B panel in L1, and the innermost tile is
// computed by a register-resident MR×NR microkernel. On amd64 with
// AVX2+FMA (detected at runtime) the float microkernel is a 6×16
// fused-multiply-add kernel and the integer microkernel a 2×8 VPMULDQ
// kernel; elsewhere a scalar register-tiled fallback runs.
//
// Numerical contract:
//   - float kernels (Gemm, GemmAcc, GemmTN, GemmNT, GemmBiasRow) may
//     reassociate the reduction (blocking reorders additions, FMA keeps
//     extra intermediate precision), so results can differ from the naive
//     ikj loop by normal float32 rounding. Results are deterministic for a
//     given machine and shape, and identical between serial and parallel
//     execution (the reduction order per output element never depends on
//     the worker count).
//   - integer kernels (GemmInt) are bit-exact: integer addition is
//     associative, so any blocking order yields the same accumulators as
//     the naive loop. The ODQ sparse/dense `==` parity tests rely on this.
//
// The seed ikj kernels are retained as GemmNaive/GemmAccNaive/GemmIntNaive:
// they are the parity oracles for the randomized kernel tests and the
// baseline for BENCH_train_gemm.json.

import "repro/internal/telemetry"

// gemmParallelThreshold is the minimum m*n*k product above which GEMM fans
// out across the shared worker pool; below it the single-threaded loop is
// faster.
const gemmParallelThreshold = 64 * 64 * 64

// gemmKC is the reduction-dimension block: one packed B panel is
// gemmKC×gemmNR values (≤16 KiB float32), sized to stay L1-resident while
// a microkernel sweeps it.
const gemmKC = 256

// Microkernel tile and blocking sizes. The microkernel shape is
// arch-dependent (6×16 for the AVX2 FMA kernel, scalar register tiles
// otherwise), so the derived blocking follows it: gemmMC is the A-block
// row count (A block ≈ MC×KC stays in L2), gemmNC the B-block column
// count (B block ≈ KC×NC, streamed once per MC block).
var (
	gemmMR = microMRF32()
	gemmNR = microNRF32()
	gemmMC = gemmMCFor(gemmMR)
	gemmNC = 64 * gemmNR

	gemmMRI = microMRInt()
	gemmNRI = microNRInt()
	gemmMCI = gemmMCFor(gemmMRI)
	gemmNCI = 64 * gemmNRI
)

// gemmMCFor rounds the ~128-row A block down to a multiple of mr.
func gemmMCFor(mr int) int {
	mc := (128 / mr) * mr
	if mc < mr {
		mc = mr
	}
	return mc
}

// gemmMaxTile bounds MR*NR across all microkernel shapes (edge tiles are
// accumulated in a stack tile of this size).
const gemmMaxTile = 6 * 16

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gemmPool supplies the worker pool for the blocked cores. It is a
// variable (not a direct DefaultPool call) so tests can substitute a
// multi-worker pool and exercise the parallel row-block path even on
// single-CPU machines.
var gemmPool = DefaultPool

// ---- Public float32 entry points ----

// Gemm computes C = A*B for row-major matrices: A is m×k, B is k×n and C
// is m×n. C is overwritten. Large products are split across the shared
// worker pool by row blocks.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	if m == 0 || n == 0 {
		return
	}
	cc := c[:m*n]
	for i := range cc {
		cc[i] = 0
	}
	if k == 0 {
		return
	}
	gemmF32(a, k, 1, b, n, 1, c, m, k, n)
}

// GemmAcc computes C += A*B (no zeroing); used by backprop accumulation
// paths. Degenerate shapes (m, k or n zero) leave C untouched.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	gemmF32(a, k, 1, b, n, 1, c, m, k, n)
}

// GemmBiasRow computes C = A*B + bias broadcast across rows (bias[i] is
// added to every element of row i). This is the convolution epilogue: the
// bias lands in C during the initialization pass, so no separate
// whole-output bias sweep is needed.
func GemmBiasRow(a, b, c, bias []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmBiasRow buffer too small")
	}
	if len(bias) < m {
		panic("tensor: GemmBiasRow bias too small")
	}
	if m == 0 || n == 0 {
		return
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		bv := bias[i]
		for j := range ci {
			ci[j] = bv
		}
	}
	if k == 0 {
		return
	}
	gemmF32(a, k, 1, b, n, 1, c, m, k, n)
}

// GemmTN computes C += Aᵀ*B where A is k×m row-major (so Aᵀ is m×k), B is
// k×n and C is m×n. The transposition is absorbed by the packing pass —
// no materialized transpose buffer. Used for dW += gradᵀ·x style
// accumulations.
func GemmTN(a, b, c []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTN buffer too small")
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	gemmF32(a, 1, m, b, n, 1, c, m, k, n)
}

// GemmNT computes C += A*Bᵀ where A is m×k, B is n×k row-major (so Bᵀ is
// k×n) and C is m×n. The transposition is absorbed by the packing pass.
// Used for y = x·Wᵀ and dW += grad·colsᵀ style products.
func GemmNT(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmNT buffer too small")
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	gemmF32(a, k, 1, b, 1, k, c, m, k, n)
}

// ---- Float32 blocked core ----

// gemmF32 accumulates C += A̅·B̅ where A̅[i][p] = a[i*ars + p*acs] and
// B̅[p][j] = b[p*brs + j*bcs]. The stride pairs express plain and
// transposed operands with one packing pass each.
func gemmF32(a []float32, ars, acs int, b []float32, brs, bcs int, c []float32, m, k, n int) {
	mr, nr := gemmMR, gemmNR
	pool := gemmPool()
	parallel := pool.Size() > 1 && m*k*n >= gemmParallelThreshold
	if telemetry.Enabled() {
		if useAsmF32 {
			mGemmF32AVX2.Inc()
		} else {
			mGemmF32Scalar.Inc()
		}
		rb := 1
		if parallel {
			rb = (m + gemmMC - 1) / gemmMC
		}
		mGemmRowBlocks.Observe(float64(rb))
	}
	bp := GetFloat32(gemmKC * gemmNC)
	for jc := 0; jc < n; jc += gemmNC {
		nc := minInt(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := minInt(gemmKC, k-pc)
			spPack := telemetry.StartSpan("gemm.pack")
			packF32B(b, brs, bcs, pc, kc, jc, nc, nr, bp)
			spPack.End()
			spKern := telemetry.StartSpan("gemm.kernel")
			blocks := (m + gemmMC - 1) / gemmMC
			runBlock := func(blk int) {
				ic := blk * gemmMC
				mc := minInt(gemmMC, m-ic)
				ap := GetFloat32(gemmMC * gemmKC)
				packF32A(a, ars, acs, ic, mc, pc, kc, mr, ap)
				for ir := 0; ir < mc; ir += mr {
					h := minInt(mr, mc-ir)
					apan := ap[(ir/mr)*kc*mr:]
					crow := c[(ic+ir)*n+jc:]
					for jr := 0; jr < nc; jr += nr {
						w := minInt(nr, nc-jr)
						bpan := bp[(jr/nr)*kc*nr:]
						if h == mr && w == nr && useAsmF32 {
							fmaKernel6x16(&apan[0], &bpan[0], kc, &crow[jr], n)
						} else if h == mr && w == nr && mr == 1 {
							microF32Acc1x8(apan, bpan, kc, crow[jr:jr+8])
						} else {
							microF32Edge(apan, bpan, kc, mr, nr, h, w, crow[jr:], n)
						}
					}
				}
				PutFloat32(ap)
			}
			if parallel && blocks > 1 {
				pool.ParallelN(blocks, runBlock)
			} else {
				for blk := 0; blk < blocks; blk++ {
					runBlock(blk)
				}
			}
			spKern.End()
		}
	}
	PutFloat32(bp)
}

// packF32A packs rows [ic,ic+mc) × cols [pc,pc+kc) of A̅ into mr-row
// panels laid out panel-major [p][r]; tail rows are zero-padded.
func packF32A(a []float32, rs, cs int, ic, mc, pc, kc, mr int, dst []float32) {
	for i0 := 0; i0 < mc; i0 += mr {
		h := minInt(mr, mc-i0)
		pan := dst[(i0/mr)*kc*mr:]
		if cs == 1 {
			for r := 0; r < h; r++ {
				src := a[(ic+i0+r)*rs+pc:]
				for p := 0; p < kc; p++ {
					pan[p*mr+r] = src[p]
				}
			}
		} else {
			for r := 0; r < h; r++ {
				base := (ic + i0 + r) * rs
				for p := 0; p < kc; p++ {
					pan[p*mr+r] = a[base+(pc+p)*cs]
				}
			}
		}
		if h < mr {
			for p := 0; p < kc; p++ {
				for r := h; r < mr; r++ {
					pan[p*mr+r] = 0
				}
			}
		}
	}
}

// packF32B packs rows [pc,pc+kc) × cols [jc,jc+nc) of B̅ into nr-column
// panels laid out panel-major [p][j]; tail columns are zero-padded.
func packF32B(b []float32, rs, cs int, pc, kc, jc, nc, nr int, dst []float32) {
	for j0 := 0; j0 < nc; j0 += nr {
		w := minInt(nr, nc-j0)
		pan := dst[(j0/nr)*kc*nr:]
		if cs == 1 {
			for p := 0; p < kc; p++ {
				src := b[(pc+p)*rs+jc+j0:]
				d := pan[p*nr : p*nr+nr]
				for j := 0; j < w; j++ {
					d[j] = src[j]
				}
				for j := w; j < nr; j++ {
					d[j] = 0
				}
			}
		} else {
			for j := 0; j < w; j++ {
				src := b[(jc+j0+j)*cs+pc*rs:]
				for p := 0; p < kc; p++ {
					pan[p*nr+j] = src[p*rs]
				}
			}
			if w < nr {
				for p := 0; p < kc; p++ {
					for j := w; j < nr; j++ {
						pan[p*nr+j] = 0
					}
				}
			}
		}
	}
}

// microF32Acc1x8 is the scalar fallback microkernel for full 1×8 tiles:
// eight register-resident accumulators over one packed A row and one
// packed B panel.
func microF32Acc1x8(ap, bp []float32, kc int, cd []float32) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float32
	for p := 0; p < kc; p++ {
		av := ap[p]
		bq := bp[p*8 : p*8+8 : p*8+8]
		c0 += av * bq[0]
		c1 += av * bq[1]
		c2 += av * bq[2]
		c3 += av * bq[3]
		c4 += av * bq[4]
		c5 += av * bq[5]
		c6 += av * bq[6]
		c7 += av * bq[7]
	}
	cd = cd[:8:8]
	cd[0] += c0
	cd[1] += c1
	cd[2] += c2
	cd[3] += c3
	cd[4] += c4
	cd[5] += c5
	cd[6] += c6
	cd[7] += c7
}

// microF32Edge handles partial tiles (h<mr or w<nr): the zero-padded
// panels make the full-tile product correct, so it accumulates the whole
// mr×nr tile on the stack and stores only the valid h×w corner.
func microF32Edge(ap, bp []float32, kc, mr, nr, h, w int, c []float32, ldc int) {
	var tile [gemmMaxTile]float32
	for p := 0; p < kc; p++ {
		aq := ap[p*mr : p*mr+mr]
		bq := bp[p*nr : p*nr+nr]
		for r := 0; r < h; r++ {
			av := aq[r]
			trow := tile[r*nr : r*nr+nr]
			for j := 0; j < w; j++ {
				trow[j] += av * bq[j]
			}
		}
	}
	for r := 0; r < h; r++ {
		cd := c[r*ldc:]
		trow := tile[r*nr:]
		for j := 0; j < w; j++ {
			cd[j] += trow[j]
		}
	}
}

// ---- Integer entry point ----

// GemmInt computes C = A*B over int32 codes with int64 accumulation.
// A is m×k, B is k×n, C is m×n. This is the integer kernel behind all
// quantized convolution paths; int64 accumulation is safe even for INT16
// codes over CNN-scale reduction dimensions. Results are bit-identical to
// the naive ikj loop for any blocking (integer addition is associative).
func GemmInt(a, b []int32, c []int64, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmInt buffer too small")
	}
	if m == 0 || n == 0 {
		return
	}
	cc := c[:m*n]
	for i := range cc {
		cc[i] = 0
	}
	if k == 0 {
		return
	}
	gemmIntCore(a, b, c, m, k, n)
}

func gemmIntCore(a, b []int32, c []int64, m, k, n int) {
	mr, nr := gemmMRI, gemmNRI
	pool := gemmPool()
	parallel := pool.Size() > 1 && m*k*n >= gemmParallelThreshold
	if telemetry.Enabled() {
		if useAsmInt {
			mGemmIntAVX2.Inc()
		} else {
			mGemmIntScalar.Inc()
		}
		rb := 1
		if parallel {
			rb = (m + gemmMCI - 1) / gemmMCI
		}
		mGemmRowBlocks.Observe(float64(rb))
	}
	bp := GetInt32(gemmKC * gemmNCI)
	for jc := 0; jc < n; jc += gemmNCI {
		nc := minInt(gemmNCI, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := minInt(gemmKC, k-pc)
			spPack := telemetry.StartSpan("gemm.pack")
			packIntB(b, n, pc, kc, jc, nc, nr, bp)
			spPack.End()
			spKern := telemetry.StartSpan("gemm.kernel")
			blocks := (m + gemmMCI - 1) / gemmMCI
			runBlock := func(blk int) {
				ic := blk * gemmMCI
				mc := minInt(gemmMCI, m-ic)
				ap := GetInt32(gemmMCI * gemmKC)
				packIntA(a, k, ic, mc, pc, kc, mr, ap)
				for ir := 0; ir < mc; ir += mr {
					h := minInt(mr, mc-ir)
					apan := ap[(ir/mr)*kc*mr:]
					crow := c[(ic+ir)*n+jc:]
					for jr := 0; jr < nc; jr += nr {
						w := minInt(nr, nc-jr)
						bpan := bp[(jr/nr)*kc*nr:]
						if h == mr && w == nr && useAsmInt {
							mulKernelInt2x8(&apan[0], &bpan[0], kc, &crow[jr], n)
						} else if h == mr && w == nr && !useAsmInt {
							microIntAcc2x4(apan, bpan, kc, crow[jr:], n)
						} else {
							microIntEdge(apan, bpan, kc, mr, nr, h, w, crow[jr:], n)
						}
					}
				}
				PutInt32(ap)
			}
			if parallel && blocks > 1 {
				pool.ParallelN(blocks, runBlock)
			} else {
				for blk := 0; blk < blocks; blk++ {
					runBlock(blk)
				}
			}
			spKern.End()
		}
	}
	PutInt32(bp)
}

// packIntA packs rows [ic,ic+mc) × cols [pc,pc+kc) of row-major A into
// mr-row panels, zero-padding tail rows.
func packIntA(a []int32, lda, ic, mc, pc, kc, mr int, dst []int32) {
	for i0 := 0; i0 < mc; i0 += mr {
		h := minInt(mr, mc-i0)
		pan := dst[(i0/mr)*kc*mr:]
		for r := 0; r < h; r++ {
			src := a[(ic+i0+r)*lda+pc:]
			for p := 0; p < kc; p++ {
				pan[p*mr+r] = src[p]
			}
		}
		if h < mr {
			for p := 0; p < kc; p++ {
				for r := h; r < mr; r++ {
					pan[p*mr+r] = 0
				}
			}
		}
	}
}

// packIntB packs rows [pc,pc+kc) × cols [jc,jc+nc) of row-major B into
// nr-column panels, zero-padding tail columns.
func packIntB(b []int32, ldb, pc, kc, jc, nc, nr int, dst []int32) {
	for j0 := 0; j0 < nc; j0 += nr {
		w := minInt(nr, nc-j0)
		pan := dst[(j0/nr)*kc*nr:]
		for p := 0; p < kc; p++ {
			src := b[(pc+p)*ldb+jc+j0:]
			d := pan[p*nr : p*nr+nr]
			for j := 0; j < w; j++ {
				d[j] = src[j]
			}
			for j := w; j < nr; j++ {
				d[j] = 0
			}
		}
	}
}

// microIntAcc2x4 is the scalar integer microkernel for full 2×4 tiles.
// Quantized code matrices are often zero-heavy (high/low code splits), so
// it keeps the per-element zero skip of the seed kernel.
func microIntAcc2x4(ap, bp []int32, kc int, c []int64, ldc int) {
	var c00, c01, c02, c03 int64
	var c10, c11, c12, c13 int64
	for p := 0; p < kc; p++ {
		aq := ap[p*2 : p*2+2 : p*2+2]
		bq := bp[p*4 : p*4+4 : p*4+4]
		if av := int64(aq[0]); av != 0 {
			c00 += av * int64(bq[0])
			c01 += av * int64(bq[1])
			c02 += av * int64(bq[2])
			c03 += av * int64(bq[3])
		}
		if av := int64(aq[1]); av != 0 {
			c10 += av * int64(bq[0])
			c11 += av * int64(bq[1])
			c12 += av * int64(bq[2])
			c13 += av * int64(bq[3])
		}
	}
	cd := c[:4:4]
	cd[0] += c00
	cd[1] += c01
	cd[2] += c02
	cd[3] += c03
	cd = c[ldc : ldc+4 : ldc+4]
	cd[0] += c10
	cd[1] += c11
	cd[2] += c12
	cd[3] += c13
}

// microIntEdge handles partial integer tiles via a stack tile, mirroring
// microF32Edge.
func microIntEdge(ap, bp []int32, kc, mr, nr, h, w int, c []int64, ldc int) {
	var tile [gemmMaxTile]int64
	for p := 0; p < kc; p++ {
		aq := ap[p*mr : p*mr+mr]
		bq := bp[p*nr : p*nr+nr]
		for r := 0; r < h; r++ {
			av := int64(aq[r])
			if av == 0 {
				continue
			}
			trow := tile[r*nr : r*nr+nr]
			for j := 0; j < w; j++ {
				trow[j] += av * int64(bq[j])
			}
		}
	}
	for r := 0; r < h; r++ {
		cd := c[r*ldc:]
		trow := tile[r*nr:]
		for j := 0; j < w; j++ {
			cd[j] += trow[j]
		}
	}
}

// ---- Naive reference kernels (the seed implementation) ----
//
// Retained verbatim as the parity oracle for the randomized kernel tests
// and as the baseline side of BENCH_train_gemm.json. Do not optimize.

// GemmNaive is the seed ikj kernel: C = A*B, single-threaded.
func GemmNaive(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmNaive buffer too small")
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmAccNaive is the seed ikj accumulation kernel: C += A*B.
func GemmAccNaive(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAccNaive buffer too small")
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmIntNaive is the seed ikj integer kernel: C = A*B with int64
// accumulation.
func GemmIntNaive(a, b []int32, c []int64, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmIntNaive buffer too small")
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := int64(ai[p])
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * int64(bv)
			}
		}
	}
}

// MatVec computes y = A*x for row-major A (m×k) and dense x (k).
func MatVec(a, x, y []float32, m, k int) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("tensor: MatVec buffer too small")
	}
	for i := 0; i < m; i++ {
		var s float32
		ai := a[i*k : (i+1)*k]
		for p, v := range ai {
			s += v * x[p]
		}
		y[i] = s
	}
}
