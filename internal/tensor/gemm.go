package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the minimum m*n*k product above which GEMM fans
// out across goroutines; below it the single-threaded loop is faster.
const gemmParallelThreshold = 64 * 64 * 64

// Gemm computes C = A*B for row-major matrices: A is m×k, B is k×n and C is
// m×n. C is overwritten. Large products are split across GOMAXPROCS
// goroutines by row blocks.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	if m*k*n < gemmParallelThreshold {
		gemmBlock(a, b, c, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmBlock(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmBlock computes rows [lo,hi) of C = A*B with an ikj loop order that
// streams B rows sequentially for cache friendliness.
func gemmBlock(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmAcc computes C += A*B (no zeroing), single block; used by backprop
// accumulation paths.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < gemmParallelThreshold || workers <= 1 {
		gemmAccBlock(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmAccBlock(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func gemmAccBlock(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmInt computes C = A*B over int32 codes with int64 accumulation.
// A is m×k, B is k×n, C is m×n. This is the integer kernel behind all
// quantized convolution paths; int64 accumulation is safe even for INT16
// codes over CNN-scale reduction dimensions.
func GemmInt(a, b []int32, c []int64, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmInt buffer too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < gemmParallelThreshold || workers <= 1 {
		gemmIntBlock(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmIntBlock(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func gemmIntBlock(a, b []int32, c []int64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := int64(ai[p])
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * int64(bv)
			}
		}
	}
}

// MatVec computes y = A*x for row-major A (m×k) and dense x (k).
func MatVec(a, x, y []float32, m, k int) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("tensor: MatVec buffer too small")
	}
	for i := 0; i < m; i++ {
		var s float32
		ai := a[i*k : (i+1)*k]
		for p, v := range ai {
			s += v * x[p]
		}
		y[i] = s
	}
}
