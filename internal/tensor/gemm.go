package tensor

// gemmParallelThreshold is the minimum m*n*k product above which GEMM fans
// out across the shared worker pool; below it the single-threaded loop is
// faster.
const gemmParallelThreshold = 64 * 64 * 64

// gemmRowBlocks splits m rows into pool-sized blocks and runs body(lo, hi)
// for each block on the shared worker pool.
func gemmRowBlocks(m int, body func(lo, hi int)) {
	p := DefaultPool()
	workers := p.Size()
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	blocks := (m + rowsPer - 1) / rowsPer
	p.ParallelN(blocks, func(b int) {
		lo := b * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		body(lo, hi)
	})
}

// Gemm computes C = A*B for row-major matrices: A is m×k, B is k×n and C is
// m×n. C is overwritten. Large products are split across the shared worker
// pool by row blocks.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	if m*k*n < gemmParallelThreshold {
		gemmBlock(a, b, c, 0, m, k, n)
		return
	}
	gemmRowBlocks(m, func(lo, hi int) {
		gemmBlock(a, b, c, lo, hi, k, n)
	})
}

// gemmBlock computes rows [lo,hi) of C = A*B with an ikj loop order that
// streams B rows sequentially for cache friendliness.
func gemmBlock(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmAcc computes C += A*B (no zeroing); used by backprop accumulation
// paths.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	if m*k*n < gemmParallelThreshold || DefaultPool().Size() <= 1 {
		gemmAccBlock(a, b, c, 0, m, k, n)
		return
	}
	gemmRowBlocks(m, func(lo, hi int) {
		gemmAccBlock(a, b, c, lo, hi, k, n)
	})
}

func gemmAccBlock(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmInt computes C = A*B over int32 codes with int64 accumulation.
// A is m×k, B is k×n, C is m×n. This is the integer kernel behind all
// quantized convolution paths; int64 accumulation is safe even for INT16
// codes over CNN-scale reduction dimensions.
func GemmInt(a, b []int32, c []int64, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmInt buffer too small")
	}
	if m*k*n < gemmParallelThreshold || DefaultPool().Size() <= 1 {
		gemmIntBlock(a, b, c, 0, m, k, n)
		return
	}
	gemmRowBlocks(m, func(lo, hi int) {
		gemmIntBlock(a, b, c, lo, hi, k, n)
	})
}

func gemmIntBlock(a, b []int32, c []int64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := int64(ai[p])
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * int64(bv)
			}
		}
	}
}

// MatVec computes y = A*x for row-major A (m×k) and dense x (k).
func MatVec(a, x, y []float32, m, k int) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("tensor: MatVec buffer too small")
	}
	for i := 0; i < m; i++ {
		var s float32
		ai := a[i*k : (i+1)*k]
		for p, v := range ai {
			s += v * x[p]
		}
		y[i] = s
	}
}
