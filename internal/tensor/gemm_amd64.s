//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaKernel6x16(ap, bp *float32, kc int, c *float32, ldc int)
//
// C[r][j] += Σ_p ap[p*6+r] * bp[p*16+j] for r<6, j<16.
// 12 YMM accumulators (6 rows × 2 col-halves), B panel loaded once per p,
// A elements broadcast. Only called with kc >= 1 on AVX2+FMA hardware.
TEXT ·fmaKernel6x16(SB), NOSPLIT, $0-40
	MOVQ ap+0(FP), DI
	MOVQ bp+8(FP), SI
	MOVQ kc+16(FP), CX
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8                   // row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

floop:
	VMOVUPS (SI), Y12             // b[0:8]
	VMOVUPS 32(SI), Y13           // b[8:16]
	VBROADCASTSS (DI), Y14        // a0
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VBROADCASTSS 4(DI), Y15       // a1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3
	VBROADCASTSS 8(DI), Y14       // a2
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VBROADCASTSS 12(DI), Y15      // a3
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VBROADCASTSS 16(DI), Y14      // a4
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VBROADCASTSS 20(DI), Y15      // a5
	VFMADD231PS Y12, Y15, Y10
	VFMADD231PS Y13, Y15, Y11
	ADDQ $24, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  floop

	// C += tile, row by row.
	VADDPS (DX), Y0, Y0
	VMOVUPS Y0, (DX)
	VADDPS 32(DX), Y1, Y1
	VMOVUPS Y1, 32(DX)
	ADDQ R8, DX
	VADDPS (DX), Y2, Y2
	VMOVUPS Y2, (DX)
	VADDPS 32(DX), Y3, Y3
	VMOVUPS Y3, 32(DX)
	ADDQ R8, DX
	VADDPS (DX), Y4, Y4
	VMOVUPS Y4, (DX)
	VADDPS 32(DX), Y5, Y5
	VMOVUPS Y5, 32(DX)
	ADDQ R8, DX
	VADDPS (DX), Y6, Y6
	VMOVUPS Y6, (DX)
	VADDPS 32(DX), Y7, Y7
	VMOVUPS Y7, 32(DX)
	ADDQ R8, DX
	VADDPS (DX), Y8, Y8
	VMOVUPS Y8, (DX)
	VADDPS 32(DX), Y9, Y9
	VMOVUPS Y9, 32(DX)
	ADDQ R8, DX
	VADDPS (DX), Y10, Y10
	VMOVUPS Y10, (DX)
	VADDPS 32(DX), Y11, Y11
	VMOVUPS Y11, 32(DX)
	VZEROUPPER
	RET

// func mulKernelInt2x8(ap, bp *int32, kc int, c *int64, ldc int)
//
// C[r][j] += Σ_p int64(ap[p*2+r]) * int64(bp[p*8+j]) for r<2, j<8.
// VPMULDQ multiplies the sign-extended low dwords of each 64-bit lane, so
// every int32×int32 product is an exact int64 — the accumulation is
// bit-identical to the scalar kernels. Only called with kc >= 1 on
// AVX2 hardware.
TEXT ·mulKernelInt2x8(SB), NOSPLIT, $0-40
	MOVQ ap+0(FP), DI
	MOVQ bp+8(FP), SI
	MOVQ kc+16(FP), CX
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8                   // row stride in bytes (int64)

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

iloop:
	VPMOVSXDQ (SI), Y4            // b[0:4] as int64
	VPMOVSXDQ 16(SI), Y5          // b[4:8] as int64
	VPBROADCASTD (DI), Y6         // a0 in every dword
	VPMULDQ Y4, Y6, Y7
	VPADDQ Y7, Y0, Y0
	VPMULDQ Y5, Y6, Y7
	VPADDQ Y7, Y1, Y1
	VPBROADCASTD 4(DI), Y6        // a1
	VPMULDQ Y4, Y6, Y7
	VPADDQ Y7, Y2, Y2
	VPMULDQ Y5, Y6, Y7
	VPADDQ Y7, Y3, Y3
	ADDQ $8, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  iloop

	VPADDQ (DX), Y0, Y0
	VMOVDQU Y0, (DX)
	VPADDQ 32(DX), Y1, Y1
	VMOVDQU Y1, 32(DX)
	ADDQ R8, DX
	VPADDQ (DX), Y2, Y2
	VMOVDQU Y2, (DX)
	VPADDQ 32(DX), Y3, Y3
	VMOVDQU Y3, 32(DX)
	VZEROUPPER
	RET
