package tensor

import (
	"sync"
	"testing"
)

// scalarDot is the reference the bitplane kernels must match exactly.
func scalarDot(a, b []int32) int64 {
	var s int64
	for i := range a {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}

// randCodes fills a slice with codes valid for the given plane count and
// signedness.
func randCodes(rng *RNG, n, planes int, signed bool) []int32 {
	out := make([]int32, n)
	span := 1 << uint(planes)
	for i := range out {
		v := int32(rng.Intn(span))
		if signed {
			v -= int32(span / 2)
		}
		out[i] = v
	}
	return out
}

// TestBitplaneDotParity checks BitplaneDot against the scalar dot for
// every plane-count/signedness combination the ODQ splits produce, at
// lane counts covering sub-word, exact-word and tail-word geometries.
func TestBitplaneDotParity(t *testing.T) {
	rng := NewRNG(11)
	lanes := []int{1, 3, 45, 63, 64, 65, 127, 128, 144, 200, 576}
	type side struct {
		planes int
		signed bool
	}
	sides := []side{{1, false}, {2, false}, {2, true}, {3, true}, {4, false}, {4, true}, {5, true}}
	for _, l := range lanes {
		for _, sa := range sides {
			for _, sb := range sides {
				a := randCodes(rng, l, sa.planes, sa.signed)
				b := randCodes(rng, l, sb.planes, sb.signed)
				bpa := NewBitplanes(1, l, sa.planes, sa.signed)
				bpb := NewBitplanes(1, l, sb.planes, sb.signed)
				bpa.PackRow(0, a)
				bpb.PackRow(0, b)
				want := scalarDot(a, b)
				if got := BitplaneDot(bpa, 0, bpb, 0); got != want {
					t.Fatalf("lanes=%d a=%+v b=%+v: BitplaneDot=%d want %d", l, sa, sb, got, want)
				}
			}
		}
	}
}

// TestBitplaneDotExtremes pins the two's-complement corner codes (most
// negative value, all-ones) that a random draw can miss.
func TestBitplaneDotExtremes(t *testing.T) {
	a := []int32{3, 3, 0, 1, 2, 3}     // unsigned 2-plane max values
	b := []int32{-2, 1, -2, -1, 0, -2} // signed 2-plane extremes
	bpa := NewBitplanes(1, len(a), 2, false)
	bpb := NewBitplanes(1, len(b), 2, true)
	bpa.PackRow(0, a)
	bpb.PackRow(0, b)
	if got, want := BitplaneDot(bpa, 0, bpb, 0), scalarDot(a, b); got != want {
		t.Fatalf("extremes: got %d want %d", got, want)
	}
}

// TestBitplaneMulRowParity checks the row-times-matrix kernel on a
// predictor-shaped product (OutC rows x cols positions) with a tail word.
func TestBitplaneMulRowParity(t *testing.T) {
	rng := NewRNG(12)
	const lanes, outC, cols = 99, 7, 23
	w := randCodes(rng, outC*lanes, 2, true)
	x := randCodes(rng, cols*lanes, 2, false)
	wbp := NewBitplanes(outC, lanes, 2, true)
	xbp := NewBitplanes(cols, lanes, 2, false)
	wbp.PackRows(w)
	xbp.PackRows(x)
	dst := make([]int64, cols)
	for oc := 0; oc < outC; oc++ {
		BitplaneMulRow(dst, wbp, oc, xbp)
		for j := 0; j < cols; j++ {
			want := scalarDot(w[oc*lanes:(oc+1)*lanes], x[j*lanes:(j+1)*lanes])
			if dst[j] != want {
				t.Fatalf("oc=%d j=%d: got %d want %d", oc, j, dst[j], want)
			}
		}
	}
}

// TestBitplanePackRowOverwrite checks that PackRow fully overwrites dirty
// pooled scratch, including tail-word garbage beyond the last lane.
func TestBitplanePackRowOverwrite(t *testing.T) {
	const lanes = 70 // two words, second mostly tail
	bp := &Bitplanes{R: 1, L: lanes, P: 2, W: BitplaneWords(lanes), Data: GetUint64(BitplaneSize(1, lanes, 2))}
	for i := range bp.Data {
		bp.Data[i] = ^uint64(0) // poison
	}
	src := make([]int32, lanes) // all zero codes
	bp.PackRow(0, src)
	for i, w := range bp.Data {
		if w != 0 {
			t.Fatalf("word %d not cleared: %x", i, w)
		}
	}
	PutUint64(bp.Data)
}

// TestBitplaneDotConcurrent exercises read-shared bitplanes from many
// goroutines (the executor's per-output-channel fan-out) under -race.
func TestBitplaneDotConcurrent(t *testing.T) {
	rng := NewRNG(13)
	const lanes, rows = 144, 32
	codes := randCodes(rng, rows*lanes, 3, true)
	bp := NewBitplanes(rows, lanes, 3, true)
	bp.PackRows(codes)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rows; r++ {
				want := scalarDot(codes[r*lanes:(r+1)*lanes], codes[r*lanes:(r+1)*lanes])
				if got := BitplaneDot(bp, r, bp, r); got != want {
					t.Errorf("row %d: got %d want %d", r, got, want)
				}
			}
		}()
	}
	wg.Wait()
}

// TestBitplaneDot3Parity checks the fused three-partial executor kernel
// against scalar dots, on the paper-default plane geometry (fused path)
// and on the INT8-extension geometry (fallback path), across tail-word
// lane counts.
func TestBitplaneDot3Parity(t *testing.T) {
	rng := NewRNG(16)
	type geom struct {
		xhP, xlP int
	}
	for _, g := range []geom{{2, 3}, {4, 5}} {
		for _, lanes := range []int{1, 63, 64, 65, 144, 200} {
			const cols, outC = 5, 4
			xhC := randCodes(rng, cols*lanes, g.xhP, false)
			xlC := randCodes(rng, cols*lanes, g.xlP, true)
			whC := randCodes(rng, outC*lanes, g.xhP, true)
			wlC := randCodes(rng, outC*lanes, g.xlP, true)
			xh := NewBitplanes(cols, lanes, g.xhP, false)
			xl := NewBitplanes(cols, lanes, g.xlP, true)
			wh := NewBitplanes(outC, lanes, g.xhP, true)
			wl := NewBitplanes(outC, lanes, g.xlP, true)
			xh.PackRows(xhC)
			xl.PackRows(xlC)
			wh.PackRows(whC)
			wl.PackRows(wlC)
			for j := 0; j < cols; j++ {
				for oc := 0; oc < outC; oc++ {
					hl, lh, ll := BitplaneDot3(xh, xl, j, wh, wl, oc)
					xhRow := xhC[j*lanes : (j+1)*lanes]
					xlRow := xlC[j*lanes : (j+1)*lanes]
					whRow := whC[oc*lanes : (oc+1)*lanes]
					wlRow := wlC[oc*lanes : (oc+1)*lanes]
					if want := scalarDot(xhRow, wlRow); hl != want {
						t.Fatalf("planes=%v lanes=%d j=%d oc=%d: hl=%d want %d", g, lanes, j, oc, hl, want)
					}
					if want := scalarDot(xlRow, whRow); lh != want {
						t.Fatalf("planes=%v lanes=%d j=%d oc=%d: lh=%d want %d", g, lanes, j, oc, lh, want)
					}
					if want := scalarDot(xlRow, wlRow); ll != want {
						t.Fatalf("planes=%v lanes=%d j=%d oc=%d: ll=%d want %d", g, lanes, j, oc, ll, want)
					}
				}
			}
		}
	}
}

func BenchmarkBitplaneDot2x2(b *testing.B) {
	rng := NewRNG(14)
	const lanes = 576
	a := randCodes(rng, lanes, 2, false)
	w := randCodes(rng, lanes, 2, true)
	bpa := NewBitplanes(1, lanes, 2, false)
	bpw := NewBitplanes(1, lanes, 2, true)
	bpa.PackRow(0, a)
	bpw.PackRow(0, w)
	b.SetBytes(int64(lanes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BitplaneDot(bpa, 0, bpw, 0)
	}
}

func BenchmarkScalarDotInt(b *testing.B) {
	rng := NewRNG(15)
	const lanes = 576
	a := randCodes(rng, lanes, 2, false)
	w := randCodes(rng, lanes, 2, true)
	b.SetBytes(int64(lanes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scalarDot(a, w)
	}
}
