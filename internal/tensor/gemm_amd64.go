//go:build amd64

package tensor

// AVX2/FMA microkernels (gemm_amd64.s), gated on runtime CPU detection:
// the assembly is only reached when CPUID reports FMA+AVX2 and the OS has
// enabled YMM state (OSXSAVE/XGETBV), so the binary stays runnable on
// baseline amd64.

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

// fmaKernel6x16 accumulates a full 6×16 tile: c[r*ldc+j] += Σ_p
// ap[p*6+r]*bp[p*16+j] for r<6, j<16, using 12 YMM accumulators and
// FMA. kc must be ≥ 1.
//
//go:noescape
func fmaKernel6x16(ap, bp *float32, kc int, c *float32, ldc int)

// mulKernelInt2x8 accumulates a full 2×8 int tile: c[r*ldc+j] += Σ_p
// int64(ap[p*2+r])*int64(bp[p*8+j]), exact int32×int32→int64 products via
// VPMULDQ. kc must be ≥ 1.
//
//go:noescape
func mulKernelInt2x8(ap, bp *int32, kc int, c *int64, ldc int)

// detectAVX2FMA reports whether FMA, AVX2 and OS-enabled YMM state are all
// available.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

var haveAVX2FMA = detectAVX2FMA()

// useAsmF32/useAsmInt route full microkernel tiles to the assembly
// kernels. Split into two flags so tests can exercise the scalar integer
// path independently.
var (
	useAsmF32 = haveAVX2FMA
	useAsmInt = haveAVX2FMA
)

func microMRF32() int {
	if detectAVX2FMA() {
		return 6
	}
	return 1
}

func microNRF32() int {
	if detectAVX2FMA() {
		return 16
	}
	return 8
}

func microMRInt() int { return 2 }

func microNRInt() int {
	if detectAVX2FMA() {
		return 8
	}
	return 4
}
