package tensor

import (
	"fmt"
	"math/bits"
)

// Bitplanes is a bit-planar integer-code matrix: R logical rows of L lanes
// each, with every row stored as P uint64 bitplanes of W = ceil(L/64)
// words. Plane p of row r occupies Data[(r*P+p)*W : (r*P+p+1)*W]; lane l
// maps to bit l&63 of word l>>6. Unused tail bits of the last word are
// kept zero by PackRow, so kernels can run whole words without masking.
//
// The layout is the software analogue of a multi-precision PE array: a
// dot product between two bit-planar rows decomposes into one AND+POPCNT
// reduction per plane pair, weighted by 2^(i+j) with the usual
// two's-complement sign on the top plane of a Signed operand. Because
// every plane-pair reduction is exact integer arithmetic, bitplane dot
// products are bit-identical to the widened int32 multiply-accumulate
// they replace.
type Bitplanes struct {
	R, L, P, W int
	// Signed marks two's-complement codes: the top plane carries weight
	// -(2^(P-1)) instead of +(2^(P-1)).
	Signed bool
	Data   []uint64
}

// BitplaneWords returns the uint64 words needed per plane for `lanes`
// lanes.
func BitplaneWords(lanes int) int { return (lanes + 63) / 64 }

// BitplaneSize returns the Data length a Bitplanes with the given
// geometry requires (rows * planes * words).
func BitplaneSize(rows, lanes, planes int) int {
	return rows * planes * BitplaneWords(lanes)
}

// NewBitplanes allocates a zeroed bit-planar matrix. Hot paths instead
// construct a Bitplanes value over pooled scratch from GetUint64 (PackRow
// fully overwrites its row, so dirty buffers are fine).
func NewBitplanes(rows, lanes, planes int, signed bool) *Bitplanes {
	return &Bitplanes{
		R: rows, L: lanes, P: planes, W: BitplaneWords(lanes),
		Signed: signed,
		Data:   make([]uint64, BitplaneSize(rows, lanes, planes)),
	}
}

// PackRow packs row r from the first L values of src. Unsigned codes must
// lie in [0, 2^P-1]; signed codes in [-2^(P-1), 2^(P-1)-1] (the masked
// two's-complement truncation encodes them exactly in P planes). Values
// outside that range would alias, so callers quantize/clamp first — the
// ODQ splits do by construction.
func (bp *Bitplanes) PackRow(r int, src []int32) {
	if len(src) < bp.L {
		panic(fmt.Sprintf("tensor: PackRow src %d lanes, want %d", len(src), bp.L))
	}
	row := bp.Data[r*bp.P*bp.W : (r+1)*bp.P*bp.W]
	switch bp.P {
	case 2:
		packRow2(row, src[:bp.L], bp.W)
		return
	case 3:
		packRow3(row, src[:bp.L], bp.W)
		return
	}
	for i := range row {
		row[i] = 0
	}
	mask := uint32(1)<<uint(bp.P) - 1
	for l := 0; l < bp.L; l++ {
		u := uint32(src[l]) & mask
		if u == 0 {
			continue
		}
		w, bit := l>>6, uint(l&63)
		for p := 0; p < bp.P; p++ {
			row[p*bp.W+w] |= uint64((u>>uint(p))&1) << bit
		}
	}
}

// packRow2 packs a 2-plane row word at a time, accumulating both plane
// words in registers instead of read-modify-writing memory per lane.
func packRow2(row []uint64, src []int32, w int) {
	for wi := 0; wi < w; wi++ {
		base := wi << 6
		n := len(src) - base
		if n > 64 {
			n = 64
		}
		var p0, p1 uint64
		for l, c := range src[base : base+n] {
			u := uint64(uint32(c) & 3)
			p0 |= (u & 1) << uint(l)
			p1 |= (u >> 1) << uint(l)
		}
		row[wi] = p0
		row[w+wi] = p1
	}
}

// packRow3 is packRow2 for 3-plane codes (the ODQ low-part split).
func packRow3(row []uint64, src []int32, w int) {
	for wi := 0; wi < w; wi++ {
		base := wi << 6
		n := len(src) - base
		if n > 64 {
			n = 64
		}
		var p0, p1, p2 uint64
		for l, c := range src[base : base+n] {
			u := uint64(uint32(c) & 7)
			p0 |= (u & 1) << uint(l)
			p1 |= (u >> 1 & 1) << uint(l)
			p2 |= (u >> 2) << uint(l)
		}
		row[wi] = p0
		row[w+wi] = p1
		row[2*w+wi] = p2
	}
}

// PackRows packs all R rows from row-major src (R*L values).
func (bp *Bitplanes) PackRows(src []int32) {
	for r := 0; r < bp.R; r++ {
		bp.PackRow(r, src[r*bp.L:(r+1)*bp.L])
	}
}

// planeWeight returns the signed weight of plane p.
func planeWeight(p, planes int, signed bool) int64 {
	w := int64(1) << uint(p)
	if signed && p == planes-1 {
		return -w
	}
	return w
}

// BitplaneDot returns the exact integer dot product of row ra of a with
// row rb of b: sum over lanes of a[ra][l]*b[rb][l], reconstructed as
// plane-weighted AND+POPCNT reductions.
func BitplaneDot(a *Bitplanes, ra int, b *Bitplanes, rb int) int64 {
	if a.W != b.W || a.L != b.L {
		panic("tensor: BitplaneDot lane geometry mismatch")
	}
	w := a.W
	arow := a.Data[ra*a.P*w : (ra+1)*a.P*w]
	brow := b.Data[rb*b.P*w : (rb+1)*b.P*w]
	if a.P == 2 && b.P == 2 {
		return dot2x2(arow, brow, w, a.Signed, b.Signed)
	}
	var total int64
	for i := 0; i < a.P; i++ {
		wi := planeWeight(i, a.P, a.Signed)
		ai := arow[i*w : (i+1)*w]
		for j := 0; j < b.P; j++ {
			bj := brow[j*w : (j+1)*w]
			var pc int
			for k, av := range ai {
				pc += bits.OnesCount64(av & bj[k])
			}
			total += wi * planeWeight(j, b.P, b.Signed) * int64(pc)
		}
	}
	return total
}

// dot2x2 is the fused kernel for the paper-default 2-bit×2-bit case (the
// HBS×HBS sensitivity predictor): four AND+POPCNT streams in one pass.
func dot2x2(arow, brow []uint64, w int, aSigned, bSigned bool) int64 {
	a0, a1 := arow[:w], arow[w:2*w]
	b0, b1 := brow[:w], brow[w:2*w]
	var p00, p01, p10, p11 int
	for k := 0; k < w; k++ {
		av0, av1 := a0[k], a1[k]
		bv0, bv1 := b0[k], b1[k]
		p00 += bits.OnesCount64(av0 & bv0)
		p01 += bits.OnesCount64(av0 & bv1)
		p10 += bits.OnesCount64(av1 & bv0)
		p11 += bits.OnesCount64(av1 & bv1)
	}
	wa, wb := int64(2), int64(2)
	if aSigned {
		wa = -2
	}
	if bSigned {
		wb = -2
	}
	return int64(p00) + wb*int64(p01) + wa*int64(p10) + wa*wb*int64(p11)
}

// BitplaneMulRow computes dst[j] = dot(a[ra], b[j]) for every row j of b —
// one output-channel row of the HBS×HBS predictor product against all
// output positions. The a-row slices and plane weights are hoisted out of
// the j loop, and the 2×2 case runs a manually inlined kernel (the
// per-output call + re-slice overhead is comparable to the popcount work
// itself at typical lane counts).
func BitplaneMulRow(dst []int64, a *Bitplanes, ra int, b *Bitplanes) {
	if a.W != b.W || a.L != b.L {
		panic("tensor: BitplaneMulRow lane geometry mismatch")
	}
	if len(dst) < b.R {
		panic("tensor: BitplaneMulRow dst too small")
	}
	w := a.W
	arow := a.Data[ra*a.P*w : (ra+1)*a.P*w]
	if a.P == 2 && b.P == 2 {
		wa, wb := int64(2), int64(2)
		if a.Signed {
			wa = -2
		}
		if b.Signed {
			wb = -2
		}
		mulRow2x2(dst[:b.R], arow, b.Data, w, wa, wb)
		return
	}
	for j := 0; j < b.R; j++ {
		dst[j] = BitplaneDot(a, ra, b, j)
	}
}

func mulRow2x2(dst []int64, arow, bdata []uint64, w int, wa, wb int64) {
	if w == 3 {
		mulRow2x2w3(dst, arow, bdata, wa, wb)
		return
	}
	a0, a1 := arow[:w], arow[w:2*w]
	stride := 2 * w
	for j := range dst {
		off := j * stride
		b0 := bdata[off : off+w]
		b1 := bdata[off+w : off+stride : off+stride]
		var p00, p01, p10, p11 int
		for k := 0; k < w; k++ {
			av0, av1 := a0[k], a1[k]
			bv0, bv1 := b0[k], b1[k]
			p00 += bits.OnesCount64(av0 & bv0)
			p01 += bits.OnesCount64(av0 & bv1)
			p10 += bits.OnesCount64(av1 & bv0)
			p11 += bits.OnesCount64(av1 & bv1)
		}
		dst[j] = int64(p00) + wb*int64(p01) + wa*int64(p10) + wa*wb*int64(p11)
	}
}

// mulRow2x2w3 is the three-word (129–192 lane) specialization of
// mulRow2x2 — the common CNN shape (InC·K·K = 144 for a 16-channel 3×3
// layer). Hoisting the six weight words out of the position loop leaves
// twelve independent AND+POPCNT streams per output position and no inner
// loop at all.
func mulRow2x2w3(dst []int64, arow, bdata []uint64, wa, wb int64) {
	a00, a01, a02 := arow[0], arow[1], arow[2]
	a10, a11, a12 := arow[3], arow[4], arow[5]
	for j := range dst {
		off := j * 6
		b := bdata[off : off+6 : off+6]
		p00 := bits.OnesCount64(a00&b[0]) + bits.OnesCount64(a01&b[1]) + bits.OnesCount64(a02&b[2])
		p01 := bits.OnesCount64(a00&b[3]) + bits.OnesCount64(a01&b[4]) + bits.OnesCount64(a02&b[5])
		p10 := bits.OnesCount64(a10&b[0]) + bits.OnesCount64(a11&b[1]) + bits.OnesCount64(a12&b[2])
		p11 := bits.OnesCount64(a10&b[3]) + bits.OnesCount64(a11&b[4]) + bits.OnesCount64(a12&b[5])
		dst[j] = int64(p00) + wb*int64(p01) + wa*int64(p10) + wa*wb*int64(p11)
	}
}

// BitplaneDot3 computes the three ODQ executor partials for output
// position j against output channel oc in one fused pass:
//
//	hl = xh[j]·wl[oc]   lh = xl[j]·wh[oc]   ll = xl[j]·wl[oc]
//
// For the paper-default split (xh unsigned 2-plane, wh signed 2-plane,
// xl/wl signed 3-plane) the 21 plane-pair reductions share one word loop
// with all operand words loaded once; other geometries fall back to three
// BitplaneDot calls. Exact integer arithmetic either way.
func BitplaneDot3(xh, xl *Bitplanes, j int, wh, wl *Bitplanes, oc int) (hl, lh, ll int64) {
	if xh.P == 2 && !xh.Signed && xl.P == 3 && xl.Signed &&
		wh.P == 2 && wh.Signed && wl.P == 3 && wl.Signed &&
		xh.W == wh.W && xh.L == wh.L && xl.W == wl.W && xl.L == wl.L && xh.W == xl.W {
		return dot3Fused(xh, xl, j, wh, wl, oc)
	}
	return BitplaneDot(xh, j, wl, oc), BitplaneDot(xl, j, wh, oc), BitplaneDot(xl, j, wl, oc)
}

func dot3Fused(xh, xl *Bitplanes, j int, wh, wl *Bitplanes, oc int) (hl, lh, ll int64) {
	w := xh.W
	xhr := xh.Data[j*2*w : (j+1)*2*w]
	xlr := xl.Data[j*3*w : (j+1)*3*w]
	whr := wh.Data[oc*2*w : (oc+1)*2*w]
	wlr := wl.Data[oc*3*w : (oc+1)*3*w]
	xh0, xh1 := xhr[:w], xhr[w:2*w]
	xl0, xl1, xl2 := xlr[:w], xlr[w:2*w], xlr[2*w:3*w]
	wh0, wh1 := whr[:w], whr[w:2*w]
	wl0, wl1, wl2 := wlr[:w], wlr[w:2*w], wlr[2*w:3*w]
	var hlA, lhA, llA int
	for k := 0; k < w; k++ {
		xh0k, xh1k := xh0[k], xh1[k]
		xl0k, xl1k, xl2k := xl0[k], xl1[k], xl2[k]
		wh0k, wh1k := wh0[k], wh1[k]
		wl0k, wl1k, wl2k := wl0[k], wl1[k], wl2[k]
		// hl: xh planes weigh {1,2}, wl planes {1,2,-4}.
		hlA += bits.OnesCount64(xh0k&wl0k) +
			bits.OnesCount64(xh0k&wl1k)<<1 -
			bits.OnesCount64(xh0k&wl2k)<<2 +
			bits.OnesCount64(xh1k&wl0k)<<1 +
			bits.OnesCount64(xh1k&wl1k)<<2 -
			bits.OnesCount64(xh1k&wl2k)<<3
		// lh: xl planes weigh {1,2,-4}, wh planes {1,-2}.
		lhA += bits.OnesCount64(xl0k&wh0k) +
			bits.OnesCount64(xl1k&wh0k)<<1 -
			bits.OnesCount64(xl2k&wh0k)<<2 -
			bits.OnesCount64(xl0k&wh1k)<<1 -
			bits.OnesCount64(xl1k&wh1k)<<2 +
			bits.OnesCount64(xl2k&wh1k)<<3
		// ll: both sides {1,2,-4}.
		llA += bits.OnesCount64(xl0k&wl0k) +
			bits.OnesCount64(xl0k&wl1k)<<1 -
			bits.OnesCount64(xl0k&wl2k)<<2 +
			bits.OnesCount64(xl1k&wl0k)<<1 +
			bits.OnesCount64(xl1k&wl1k)<<2 -
			bits.OnesCount64(xl1k&wl2k)<<3 -
			bits.OnesCount64(xl2k&wl0k)<<2 -
			bits.OnesCount64(xl2k&wl1k)<<3 +
			bits.OnesCount64(xl2k&wl2k)<<4
	}
	return int64(hlA), int64(lhA), int64(llA)
}
