package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewFromLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewFrom([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Shape[1] != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Shape[1])
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Reshape(3)
}

func TestAt4Set4RoundTrip(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set4(1, 2, 3, 4, 42)
	if x.At4(1, 2, 3, 4) != 42 {
		t.Fatal("At4/Set4 disagree")
	}
	// The flat index of the last element must be Len-1.
	if x.Data[x.Len()-1] != 42 {
		t.Fatal("Set4 of last coordinate must hit last flat slot")
	}
}

func TestStatsAndAbsMax(t *testing.T) {
	x := NewFrom([]float32{-3, 1, 2}, 3)
	mn, mx, mean := x.Stats()
	if mn != -3 || mx != 2 || mean != 0 {
		t.Fatalf("Stats = %v %v %v", mn, mx, mean)
	}
	if x.AbsMax() != 3 {
		t.Fatalf("AbsMax = %v, want 3", x.AbsMax())
	}
}

func TestCloneIndependence(t *testing.T) {
	x := NewFrom([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFrom([]float32{1, 2, 3}, 3)
	b := NewFrom([]float32{4, 5, 6}, 3)
	a.Add(b)
	want := []float32{5, 7, 9}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add result %v", a.Data)
		}
	}
	a.Sub(b)
	a.Mul(b)
	want = []float32{4, 10, 18}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Mul result %v", a.Data)
		}
	}
	a.Scale(0.5)
	if a.Data[2] != 9 {
		t.Fatalf("Scale result %v", a.Data)
	}
	a.AddScaled(2, b)
	if a.Data[0] != 2+8 {
		t.Fatalf("AddScaled result %v", a.Data)
	}
}

func TestClampAndReLU(t *testing.T) {
	x := NewFrom([]float32{-2, 0.5, 3}, 3)
	x.Clamp(0, 1)
	if x.Data[0] != 0 || x.Data[1] != 0.5 || x.Data[2] != 1 {
		t.Fatalf("Clamp result %v", x.Data)
	}
	y := NewFrom([]float32{-1, 2}, 2)
	y.ReLU()
	if y.Data[0] != 0 || y.Data[1] != 2 {
		t.Fatalf("ReLU result %v", y.Data)
	}
}

func TestDiffMetrics(t *testing.T) {
	a := NewFrom([]float32{0, 1, 5}, 3)
	b := NewFrom([]float32{1, 1, 2}, 3)
	if MaxAbsDiff(a, b) != 3 {
		t.Fatalf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
	got := MeanAbsDiff(a, b)
	if math.Abs(float64(got)-4.0/3.0) > 1e-6 {
		t.Fatalf("MeanAbsDiff = %v", got)
	}
}

func TestArgmax(t *testing.T) {
	x := NewFrom([]float32{0, 5, 5, 1}, 4)
	if x.Argmax() != 1 {
		t.Fatal("Argmax must return first maximum")
	}
	m := NewFrom([]float32{1, 9, 3, 0, 2, 7}, 2, 3)
	rows := m.ArgmaxRows()
	if rows[0] != 1 || rows[1] != 2 {
		t.Fatalf("ArgmaxRows = %v", rows)
	}
}

func TestTranspose2(t *testing.T) {
	m := NewFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	tr := m.Transpose2()
	if tr.Shape[0] != 3 || tr.Shape[1] != 2 {
		t.Fatalf("transpose shape %v", tr.Shape)
	}
	if tr.At2(2, 1) != 6 || tr.At2(0, 1) != 4 {
		t.Fatalf("transpose content %v", tr.Data)
	}
}

func TestSlice4BatchSharesStorage(t *testing.T) {
	x := New(2, 1, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	s := x.Slice4Batch(1)
	if s.Data[0] != 4 {
		t.Fatalf("Slice4Batch wrong offset: %v", s.Data)
	}
	s.Data[0] = -1
	if x.Data[4] != -1 {
		t.Fatal("Slice4Batch must share storage")
	}
}

func TestGemmSmallKnown(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Gemm(a, b, c, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Gemm = %v, want %v", c, want)
		}
	}
}

func TestGemmMatchesNaiveLarge(t *testing.T) {
	rng := NewRNG(7)
	m, k, n := 65, 70, 68 // above the parallel threshold
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.Normal())
	}
	for i := range b {
		b[i] = float32(rng.Normal())
	}
	c := make([]float32, m*n)
	Gemm(a, b, c, m, k, n)
	// Naive reference.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			if d := math.Abs(float64(s - c[i*n+j])); d > 1e-3 {
				t.Fatalf("Gemm mismatch at (%d,%d): %v vs %v", i, j, c[i*n+j], s)
			}
		}
	}
}

func TestGemmAccAccumulates(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	b := []float32{2, 3, 4, 5}
	c := []float32{10, 10, 10, 10}
	GemmAcc(a, b, c, 2, 2, 2)
	want := []float32{12, 13, 14, 15}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("GemmAcc = %v, want %v", c, want)
		}
	}
}

func TestGemmIntMatchesNaive(t *testing.T) {
	rng := NewRNG(3)
	m, k, n := 8, 12, 9
	a := make([]int32, m*k)
	b := make([]int32, k*n)
	for i := range a {
		a[i] = int32(rng.Intn(15) - 7)
	}
	for i := range b {
		b[i] = int32(rng.Intn(15) - 7)
	}
	c := make([]int64, m*n)
	GemmInt(a, b, c, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for p := 0; p < k; p++ {
				s += int64(a[i*k+p]) * int64(b[p*n+j])
			}
			if s != c[i*n+j] {
				t.Fatalf("GemmInt mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmIntLargeCodesNoOverflow(t *testing.T) {
	// INT16-scale codes must not overflow thanks to int64 accumulation.
	k := 1024
	a := make([]int32, k)
	b := make([]int32, k)
	for i := range a {
		a[i] = 32767
		b[i] = 32767
	}
	c := make([]int64, 1)
	GemmInt(a, b, c, 1, k, 1)
	want := int64(32767) * 32767 * int64(k)
	if c[0] != want {
		t.Fatalf("GemmInt large = %d, want %d", c[0], want)
	}
}

func TestMatVec(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}
	x := []float32{1, 1, 1}
	y := make([]float32, 2)
	MatVec(a, x, y, 2, 3)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry(3, 32, 32, 16, 3, 1, 1)
	if g.OutH != 32 || g.OutW != 32 {
		t.Fatalf("same-pad geometry wrong: %+v", g)
	}
	g2 := Geometry(16, 32, 32, 32, 3, 2, 1)
	if g2.OutH != 16 || g2.OutW != 16 {
		t.Fatalf("strided geometry wrong: %+v", g2)
	}
	if g.MACsPerOutput() != 27 || g.TotalOutputs() != 16*32*32 {
		t.Fatalf("op counting wrong: %+v", g)
	}
	if g.TotalMACs() != int64(27)*16*32*32 {
		t.Fatalf("TotalMACs wrong")
	}
}

func TestIm2colIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	g := Geometry(2, 3, 3, 1, 1, 1, 0)
	src := make([]float32, 2*3*3)
	for i := range src {
		src[i] = float32(i)
	}
	dst := make([]float32, g.ColRows()*g.ColCols())
	Im2col(src, g, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("1x1 im2col should be identity, got %v", dst)
		}
	}
}

func TestIm2colPaddingZeros(t *testing.T) {
	g := Geometry(1, 2, 2, 1, 3, 1, 1)
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, g.ColRows()*g.ColCols())
	Im2col(src, g, dst)
	// Output is 2x2. Top-left kernel tap (kh=0,kw=0) only overlaps
	// in-bounds pixels for output (1,1), where it reads src[0]=1.
	row0 := dst[0:4]
	want := []float32{0, 0, 0, 1}
	for i := range want {
		if row0[i] != want[i] {
			t.Fatalf("padded im2col row0 = %v, want %v", row0, want)
		}
	}
	// Center tap (kh=1,kw=1) reads the image directly.
	rowC := dst[4*4 : 5*4]
	wantC := []float32{1, 2, 3, 4}
	for i := range wantC {
		if rowC[i] != wantC[i] {
			t.Fatalf("center tap = %v, want %v", rowC, wantC)
		}
	}
}

func TestIm2colIntMatchesFloat(t *testing.T) {
	g := Geometry(2, 5, 4, 3, 3, 2, 1)
	n := 2 * 5 * 4
	srcF := make([]float32, n)
	srcI := make([]int32, n)
	rng := NewRNG(11)
	for i := range srcF {
		v := int32(rng.Intn(15) - 7)
		srcI[i] = v
		srcF[i] = float32(v)
	}
	dstF := make([]float32, g.ColRows()*g.ColCols())
	dstI := make([]int32, g.ColRows()*g.ColCols())
	Im2col(srcF, g, dstF)
	Im2colInt(srcI, g, dstI)
	for i := range dstF {
		if float32(dstI[i]) != dstF[i] {
			t.Fatalf("int and float im2col disagree at %d", i)
		}
	}
}

func TestCol2imAdjoint(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> — the adjoint property that makes
	// conv backprop correct.
	g := Geometry(2, 4, 4, 1, 3, 1, 1)
	rng := NewRNG(5)
	x := make([]float32, 2*4*4)
	for i := range x {
		x[i] = float32(rng.Normal())
	}
	cols := make([]float32, g.ColRows()*g.ColCols())
	Im2col(x, g, cols)
	y := make([]float32, len(cols))
	for i := range y {
		y[i] = float32(rng.Normal())
	}
	var lhs float64
	for i := range cols {
		lhs += float64(cols[i]) * float64(y[i])
	}
	back := make([]float32, len(x))
	Col2im(y, g, back)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(back[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestIntTensorDequantize(t *testing.T) {
	q := NewInt(4, 0.25, 2, 2)
	q.Data = []int32{0, 1, -2, 4}
	d := q.Dequantize()
	want := []float32{0, 0.25, -0.5, 1}
	for i := range want {
		if d.Data[i] != want[i] {
			t.Fatalf("Dequantize = %v, want %v", d.Data, want)
		}
	}
	c := q.Clone()
	c.Data[0] = 9
	if q.Data[0] != 0 {
		t.Fatal("Clone must copy data")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float32() != b.Float32() {
			t.Fatal("same-seed RNGs must agree")
		}
	}
}

func TestKaimingConvScale(t *testing.T) {
	w := New(64, 16, 3, 3)
	NewRNG(1).KaimingConv(w)
	_, _, mean := w.Stats()
	if math.Abs(float64(mean)) > 0.01 {
		t.Fatalf("Kaiming mean too large: %v", mean)
	}
	std := w.L2() / math.Sqrt(float64(w.Len()))
	want := math.Sqrt(2.0 / (16 * 9))
	if math.Abs(std-want) > want/4 {
		t.Fatalf("Kaiming std %v, want ~%v", std, want)
	}
}

// Property: Gemm with identity A returns B's first rows.
func TestGemmIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 3 + rng.Intn(6)
		a := make([]float32, n*n)
		for i := 0; i < n; i++ {
			a[i*n+i] = 1
		}
		b := make([]float32, n*n)
		for i := range b {
			b[i] = float32(rng.Normal())
		}
		c := make([]float32, n*n)
		Gemm(a, b, c, n, n, n)
		for i := range b {
			if c[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: im2col → GEMM with a delta kernel reproduces the input plane.
func TestConvDeltaKernelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		h := 4 + rng.Intn(4)
		g := Geometry(1, h, h, 1, 3, 1, 1)
		src := make([]float32, h*h)
		for i := range src {
			src[i] = float32(rng.Normal())
		}
		cols := make([]float32, g.ColRows()*g.ColCols())
		Im2col(src, g, cols)
		// Kernel with 1 at the center acts as identity.
		w := make([]float32, 9)
		w[4] = 1
		out := make([]float32, g.ColCols())
		Gemm(w, cols, out, 1, 9, g.ColCols())
		for i := range src {
			if out[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
