package tensor

import "fmt"

// i4Levels is the number of positive levels of the unsigned 4-bit
// activation grid (2^4 - 1). The real value of code c is
// float32(c) / i4Levels — exactly the grid quant.QuantReLU emits, so
// packing and unpacking round-trip the float activation bit-exactly.
const i4Levels = 15

// PackedI4 stores unsigned 4-bit activation codes two per byte: element i
// lives in the low nibble of Data[i/2] when i is even, the high nibble
// when odd. This is the inter-layer activation format of the
// quantized-domain pipeline — half the memory traffic of int32 codes and
// an eighth of float32 — handed directly from one conv executor's fused
// requantize epilogue to the next executor's input split.
type PackedI4 struct {
	Shape []int
	Data  []uint8
}

// NewPackedI4 allocates a zeroed packed tensor.
func NewPackedI4(shape ...int) *PackedI4 {
	n := NumElems(shape)
	return &PackedI4{Shape: append([]int(nil), shape...), Data: make([]uint8, (n+1)/2)}
}

// Len returns the number of logical codes.
func (p *PackedI4) Len() int { return NumElems(p.Shape) }

// At returns code i.
func (p *PackedI4) At(i int) uint8 {
	b := p.Data[i>>1]
	if i&1 == 1 {
		return b >> 4
	}
	return b & 0xf
}

// PackI4 packs per-element codes (each < 16) two per byte. The tail
// nibble of an odd-length tensor stays zero.
func PackI4(codes []uint8, shape ...int) *PackedI4 {
	n := NumElems(shape)
	if len(codes) < n {
		panic(fmt.Sprintf("tensor: PackI4 got %d codes, shape %v wants %d", len(codes), shape, n))
	}
	p := NewPackedI4(shape...)
	PackI4Into(codes[:n], p.Data)
	return p
}

// PackI4Into packs n codes into dst (len >= (n+1)/2). Codes must be < 16.
func PackI4Into(codes []uint8, dst []uint8) {
	n := len(codes)
	for i := 0; i+1 < n; i += 2 {
		dst[i>>1] = codes[i] | codes[i+1]<<4
	}
	if n&1 == 1 {
		dst[n>>1] = codes[n-1]
	}
}

// UnpackInt expands the codes to a widened int32 IntTensor with the given
// scale (the executors pass the activation grid step, 1/15).
func (p *PackedI4) UnpackInt(scale float32) *IntTensor {
	out := NewInt(4, scale, p.Shape...)
	unpackNibbles(p.Data, out.Data)
	return out
}

// UnpackIntInto is UnpackInt writing codes into caller-provided (pooled)
// scratch of at least Len() elements.
func (p *PackedI4) UnpackIntInto(dst []int32) {
	if len(dst) < p.Len() {
		panic("tensor: UnpackIntInto dst too small")
	}
	unpackNibbles(p.Data, dst[:p.Len()])
}

func unpackNibbles(src []uint8, dst []int32) {
	n := len(dst)
	for i := 0; i+1 < n; i += 2 {
		b := src[i>>1]
		dst[i] = int32(b & 0xf)
		dst[i+1] = int32(b >> 4)
	}
	if n&1 == 1 {
		dst[n-1] = int32(src[n>>1] & 0xf)
	}
}

// Dequantize expands the codes back onto the float [0,1] activation grid:
// value i is float32(code)/15, the exact float32 quant.QuantReLU would
// have produced for the same code.
func (p *PackedI4) Dequantize() *Tensor {
	out := New(p.Shape...)
	n := len(out.Data)
	const levels = float32(i4Levels)
	for i := 0; i < n; i++ {
		out.Data[i] = float32(p.At(i)) / levels
	}
	return out
}

// MaxPoolPackedI4 max-pools an NCHW packed tensor with square window k and
// stride s entirely in the code domain. Codes are unsigned and the
// code→real map is strictly increasing, so the max code dequantizes to
// exactly the float MaxPool2D output — the pooling layer never forces the
// pipeline back into float32.
func MaxPoolPackedI4(in *PackedI4, k, s int) *PackedI4 {
	if len(in.Shape) != 4 {
		panic("tensor: MaxPoolPackedI4 requires NCHW input")
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh := (h-k)/s + 1
	ow := (w-k)/s + 1
	out := NewPackedI4(n, c, oh, ow)
	oi := 0
	for sn := 0; sn < n; sn++ {
		for ch := 0; ch < c; ch++ {
			inBase := (sn*c + ch) * h * w
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var best uint8
					for ky := 0; ky < k; ky++ {
						rowBase := inBase + (y*s+ky)*w + x*s
						for kx := 0; kx < k; kx++ {
							if v := in.At(rowBase + kx); v > best {
								best = v
							}
						}
					}
					if oi&1 == 1 {
						out.Data[oi>>1] |= best << 4
					} else {
						out.Data[oi>>1] = best
					}
					oi++
				}
			}
		}
	}
	return out
}
