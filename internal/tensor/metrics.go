package tensor

import "repro/internal/telemetry"

// Telemetry handles for the kernel layer. These sit on genuinely hot
// paths (every GEMM call, every scratch-buffer checkout, every pool
// fan-out), so they are hoisted package variables: with telemetry
// disabled each call site costs one atomic load and a branch.
var (
	// Microkernel dispatch: which code path each GEMM call took.
	mGemmF32AVX2   = telemetry.GetCounter("tensor.gemm.f32.avx2")
	mGemmF32Scalar = telemetry.GetCounter("tensor.gemm.f32.scalar")
	mGemmIntAVX2   = telemetry.GetCounter("tensor.gemm.int.avx2")
	mGemmIntScalar = telemetry.GetCounter("tensor.gemm.int.scalar")

	// Row-block fan-out width chosen by the blocked cores (1 = serial).
	mGemmRowBlocks = telemetry.GetHistogram("tensor.gemm.row_blocks",
		telemetry.ExpBuckets(1, 2, 8)) // 1,2,4,...,128

	// Scratch-pool checkout outcomes: a hit reuses a pooled buffer of
	// sufficient capacity, a miss allocates.
	mScratchHits   = telemetry.GetCounter("tensor.scratch.hits")
	mScratchMisses = telemetry.GetCounter("tensor.scratch.misses")

	// Worker-pool utilization: fan-out calls, tasks distributed, the
	// per-call task count, and queue-saturated inline fallbacks.
	mPoolCalls     = telemetry.GetCounter("tensor.pool.parallel_calls")
	mPoolTasks     = telemetry.GetCounter("tensor.pool.tasks")
	mPoolFanout    = telemetry.GetHistogram("tensor.pool.fanout", telemetry.ExpBuckets(1, 2, 10))
	mPoolSaturated = telemetry.GetCounter("tensor.pool.queue_saturated")
)
