package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Pool is a fixed-size pool of long-lived worker goroutines shared by the
// compute kernels (GEMM, the sparse ODQ executor, batch fan-out). One
// process-wide pool sized by runtime.NumCPU serves every kernel, so the
// parallelism of nested calls (a sparse conv whose predictor GEMM also
// fans out) is bounded by the machine, not multiplied by it.
//
// ParallelN is deadlock-free under nesting because the caller always
// participates in the work: if every pooled worker is busy, the calling
// goroutine drains its own task set inline.
type Pool struct {
	queue chan func()
	size  int
}

// NewPool builds a pool with the given number of workers (minimum 1).
// A pool of size 1 spawns no goroutines and runs everything inline.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size}
	if size > 1 {
		p.queue = make(chan func(), 8*size)
		for i := 0; i < size; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for f := range p.queue {
		f()
	}
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the shared process-wide pool, sized by
// runtime.NumCPU and created on first use.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewPool(runtime.NumCPU())
	})
	return defaultPool
}

// ParallelN runs fn(0) .. fn(n-1), blocking until all complete. Tasks are
// distributed dynamically (an atomic cursor), so uneven task costs
// balance across workers.
func (p *Pool) ParallelN(n int, fn func(i int)) {
	p.ParallelLimited(p.size, n, fn)
}

// ParallelLimited is ParallelN with concurrency capped at limit (<=0 or
// >size means the full pool). The calling goroutine always executes tasks
// itself; pooled workers only help, which keeps nested calls deadlock-free.
func (p *Pool) ParallelLimited(limit, n int, fn func(i int)) {
	if limit <= 0 || limit > p.size {
		limit = p.size
	}
	if telemetry.Enabled() {
		mPoolCalls.Inc()
		mPoolTasks.Add(int64(n))
		mPoolFanout.Observe(float64(n))
	}
	if n <= 1 || limit <= 1 || p.queue == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	drain := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	helpers := limit - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		job := func() {
			defer wg.Done()
			drain()
		}
		select {
		case p.queue <- job:
		default:
			// Queue saturated (deeply nested parallelism): run inline
			// rather than block on a worker that may be waiting on us.
			mPoolSaturated.Inc()
			job()
		}
	}
	drain()
	wg.Wait()
}

// ---- Scratch buffer pools ----
//
// The quantized conv hot path needs three kinds of scratch: int32 im2col
// matrices, int64 accumulators and float32 im2col matrices. Pooling them
// takes steady-state inference to near-zero allocation. Buffers come back
// DIRTY: callers must fully overwrite (im2col and GemmInt do).

var (
	i32Pool = sync.Pool{}
	i64Pool = sync.Pool{}
	f32Pool = sync.Pool{}
	u64Pool = sync.Pool{}
	u8Pool  = sync.Pool{}
)

// GetInt32 returns a length-n int32 scratch buffer with arbitrary contents.
func GetInt32(n int) []int32 {
	if v := i32Pool.Get(); v != nil {
		s := *(v.(*[]int32))
		if cap(s) >= n {
			mScratchHits.Inc()
			return s[:n]
		}
	}
	mScratchMisses.Inc()
	return make([]int32, n)
}

// PutInt32 recycles a buffer obtained from GetInt32.
func PutInt32(s []int32) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	i32Pool.Put(&s)
}

// GetInt64 returns a length-n int64 scratch buffer with arbitrary contents.
func GetInt64(n int) []int64 {
	if v := i64Pool.Get(); v != nil {
		s := *(v.(*[]int64))
		if cap(s) >= n {
			mScratchHits.Inc()
			return s[:n]
		}
	}
	mScratchMisses.Inc()
	return make([]int64, n)
}

// PutInt64 recycles a buffer obtained from GetInt64.
func PutInt64(s []int64) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	i64Pool.Put(&s)
}

// GetFloat32 returns a length-n float32 scratch buffer with arbitrary
// contents.
func GetFloat32(n int) []float32 {
	if v := f32Pool.Get(); v != nil {
		s := *(v.(*[]float32))
		if cap(s) >= n {
			mScratchHits.Inc()
			return s[:n]
		}
	}
	mScratchMisses.Inc()
	return make([]float32, n)
}

// PutFloat32 recycles a buffer obtained from GetFloat32.
func PutFloat32(s []float32) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	f32Pool.Put(&s)
}

// GetUint64 returns a length-n uint64 scratch buffer with arbitrary
// contents (bitplane word storage; Bitplanes.PackRow fully overwrites).
func GetUint64(n int) []uint64 {
	if v := u64Pool.Get(); v != nil {
		s := *(v.(*[]uint64))
		if cap(s) >= n {
			mScratchHits.Inc()
			return s[:n]
		}
	}
	mScratchMisses.Inc()
	return make([]uint64, n)
}

// PutUint64 recycles a buffer obtained from GetUint64.
func PutUint64(s []uint64) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	u64Pool.Put(&s)
}

// GetUint8 returns a length-n uint8 scratch buffer with arbitrary
// contents (per-element activation codes before nibble packing).
func GetUint8(n int) []uint8 {
	if v := u8Pool.Get(); v != nil {
		s := *(v.(*[]uint8))
		if cap(s) >= n {
			mScratchHits.Inc()
			return s[:n]
		}
	}
	mScratchMisses.Inc()
	return make([]uint8, n)
}

// PutUint8 recycles a buffer obtained from GetUint8.
func PutUint8(s []uint8) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	u8Pool.Put(&s)
}
