package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source shared by initializers and dataset
// generators so every experiment is reproducible bit-for-bit.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float32 returns a uniform value in [0,1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a standard normal sample.
func (g *RNG) Normal() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// FillUniform fills t with uniform values in [lo,hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float32) {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*g.r.Float32()
	}
}

// FillNormal fills t with N(mean, std) samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float32) {
	for i := range t.Data {
		t.Data[i] = mean + std*float32(g.r.NormFloat64())
	}
}

// KaimingConv initializes a conv weight tensor [outC,inC,K,K] with the
// Kaiming-He fan-in scaling appropriate for ReLU networks.
func (g *RNG) KaimingConv(t *Tensor) {
	if t.Rank() != 4 {
		panic("tensor: KaimingConv requires [outC,inC,K,K]")
	}
	fanIn := t.Shape[1] * t.Shape[2] * t.Shape[3]
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	g.FillNormal(t, 0, std)
}

// KaimingLinear initializes a linear weight tensor [out,in].
func (g *RNG) KaimingLinear(t *Tensor) {
	if t.Rank() != 2 {
		panic("tensor: KaimingLinear requires [out,in]")
	}
	std := float32(math.Sqrt(2.0 / float64(t.Shape[1])))
	g.FillNormal(t, 0, std)
}
