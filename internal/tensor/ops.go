package tensor

import "fmt"

// Add computes t += o elementwise. Shapes must match.
func (t *Tensor) Add(o *Tensor) {
	mustSameLen(t, o, "Add")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub computes t -= o elementwise.
func (t *Tensor) Sub(o *Tensor) {
	mustSameLen(t, o, "Sub")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Mul computes t *= o elementwise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) {
	mustSameLen(t, o, "Mul")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled computes t += s*o elementwise.
func (t *Tensor) AddScaled(s float32, o *Tensor) {
	mustSameLen(t, o, "AddScaled")
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// ReLU applies max(0, x) in place.
func (t *Tensor) ReLU() {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// MaxAbsDiff returns max_i |t_i - o_i|; it is the metric used for the
// paper's precision-loss and extra-precision measurements (Eq. 1).
func MaxAbsDiff(a, b *Tensor) float32 {
	mustSameLen(a, b, "MaxAbsDiff")
	var m float32
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// MeanAbsDiff returns mean_i |t_i - o_i|.
func MeanAbsDiff(a, b *Tensor) float32 {
	mustSameLen(a, b, "MeanAbsDiff")
	if len(a.Data) == 0 {
		return 0
	}
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		s += float64(d)
	}
	return float32(s / float64(len(a.Data)))
}

// Argmax returns the index of the maximum element. Ties resolve to the
// first occurrence. Panics on empty tensors.
func (t *Tensor) Argmax() int {
	if len(t.Data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgmaxRows treats t as [rows, cols] and returns the argmax per row.
func (t *Tensor) ArgmaxRows() []int {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRows requires a rank-2 tensor")
	}
	rows, cols := t.Shape[0], t.Shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		best, bi := row[0], 0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		out[r] = bi
	}
	return out
}

// Transpose2 returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose2() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2 requires a rank-2 tensor")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Data[j*r+i] = t.Data[i*c+j]
		}
	}
	return out
}

func mustSameLen(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s length mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
