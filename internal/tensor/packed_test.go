package tensor

import (
	"math"
	"testing"
)

// TestPackedI4RoundTrip checks pack/At/unpack round-trips for even and
// odd element counts (tail nibble).
func TestPackedI4RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 25} {
		codes := make([]uint8, n)
		for i := range codes {
			codes[i] = uint8((i*7 + 3) % 16)
		}
		p := PackI4(codes, n)
		if p.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, p.Len())
		}
		for i := range codes {
			if p.At(i) != codes[i] {
				t.Fatalf("n=%d: At(%d)=%d want %d", n, i, p.At(i), codes[i])
			}
		}
		it := p.UnpackInt(1.0 / 15)
		for i := range codes {
			if it.Data[i] != int32(codes[i]) {
				t.Fatalf("n=%d: UnpackInt[%d]=%d want %d", n, i, it.Data[i], codes[i])
			}
		}
	}
}

// TestPackedI4DequantizeMatchesGrid checks that Dequantize lands exactly
// on the float32 grid k/15 that QuantReLU emits, for every code.
func TestPackedI4DequantizeMatchesGrid(t *testing.T) {
	codes := make([]uint8, 16)
	for i := range codes {
		codes[i] = uint8(i)
	}
	f := PackI4(codes, 16).Dequantize()
	for k := 0; k < 16; k++ {
		want := float32(math.Round(float64(float32(k)/15*15))) / 15 // QuantReLU composition on an on-grid value
		if f.Data[k] != want {
			t.Fatalf("code %d: dequant %v want %v", k, f.Data[k], want)
		}
		if f.Data[k] != float32(k)/15 {
			t.Fatalf("code %d: dequant %v want %v", k, f.Data[k], float32(k)/15)
		}
	}
}

// TestMaxPoolPackedI4MatchesFloat checks packed pooling against the float
// MaxPool2D reference over odd spatial sizes.
func TestMaxPoolPackedI4MatchesFloat(t *testing.T) {
	rng := NewRNG(21)
	const n, c, h, w = 2, 3, 7, 7
	codes := make([]uint8, n*c*h*w)
	for i := range codes {
		codes[i] = uint8(rng.Intn(16))
	}
	p := PackI4(codes, n, c, h, w)
	got := MaxPoolPackedI4(p, 2, 2)

	// Float reference on the dequantized grid.
	f := p.Dequantize()
	oh, ow := (h-2)/2+1, (w-2)/2+1
	if got.Shape[2] != oh || got.Shape[3] != ow {
		t.Fatalf("shape %v want [..,%d,%d]", got.Shape, oh, ow)
	}
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					best := float32(-1)
					for ky := 0; ky < 2; ky++ {
						for kx := 0; kx < 2; kx++ {
							v := f.At4(s, ch, y*2+ky, x*2+kx)
							if v > best {
								best = v
							}
						}
					}
					oi := ((s*c+ch)*oh+y)*ow + x
					if gv := float32(got.At(oi)) / 15; gv != best {
						t.Fatalf("pool mismatch at %d: %v want %v", oi, gv, best)
					}
				}
			}
		}
	}
}
