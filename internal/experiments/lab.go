// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a function on a Lab, which owns the
// trained models, datasets, calibrated thresholds and scale parameters
// shared across experiments. Results are structured values that also
// render as text tables, so the bench harness can both assert on shapes
// and regenerate the paper's artifacts.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drq"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/train"
)

// Scale sizes the experiments. The paper's full workloads (ResNet-56 on
// CIFAR-scale data, tens of thousands of images) are out of reach for a
// pure-Go laptop run, so the default scales shrink widths and sample
// counts while preserving every structural property the figures measure.
type Scale struct {
	Name string
	// ModelScale multiplies channel widths (models.Config.Scale).
	ModelScale float64
	// TrainSamples/TestSamples size the synthetic datasets.
	TrainSamples, TestSamples int
	// Epochs/BatchSize/LR drive QAT training. QAT trains from scratch
	// and needs a conservative learning rate (max-abs weight scales
	// destabilize above ~0.02).
	Epochs    int
	BatchSize int
	LR        float32
	// ProfileSamples is how many test images feed mask/profile dumps.
	ProfileSamples int
	// FTEpochs is the number of threshold-aware retraining epochs per
	// threshold-search step (the paper retrains after introducing the
	// threshold, §3).
	FTEpochs int
	// SearchIters caps the threshold-halving steps.
	SearchIters int
	// FTSamples caps the training samples used during threshold-aware
	// retraining (0 = full training set).
	FTSamples int
	// TolAcc is the acceptable ODQ accuracy drop versus the INT4 static
	// baseline for the threshold search. The paper targets ≤0.6%; small
	// test sets need looser tolerances (one sample is worth 1–2%).
	TolAcc float64
	// Seed namespaces all randomness.
	Seed int64
}

// TestScale is for unit tests: tens of seconds for the shared models.
func TestScale() Scale {
	return Scale{Name: "test", ModelScale: 0.25, TrainSamples: 256, TestSamples: 64,
		Epochs: 12, BatchSize: 16, LR: 0.02, ProfileSamples: 8,
		FTEpochs: 1, SearchIters: 4, FTSamples: 192, TolAcc: 0.05, Seed: 1}
}

// QuickScale is the default harness scale: minutes for the full suite.
func QuickScale() Scale {
	return Scale{Name: "quick", ModelScale: 0.25, TrainSamples: 384, TestSamples: 192,
		Epochs: 12, BatchSize: 16, LR: 0.02, ProfileSamples: 16,
		FTEpochs: 1, SearchIters: 5, FTSamples: 256, TolAcc: 0.04, Seed: 1}
}

// FullScale runs wider models on more data (tens of minutes).
func FullScale() Scale {
	return Scale{Name: "full", ModelScale: 0.5, TrainSamples: 1536, TestSamples: 384,
		Epochs: 18, BatchSize: 16, LR: 0.02, ProfileSamples: 24,
		FTEpochs: 2, SearchIters: 5, FTSamples: 768, TolAcc: 0.02, Seed: 1}
}

// TrainedModel bundles a QAT-trained, threshold-calibrated network with
// its data and reference accuracy.
type TrainedModel struct {
	ModelName   string
	DatasetName string
	Net         *nn.Sequential
	Train       *dataset.Dataset
	Test        *dataset.Dataset
	// FP32Acc is the accuracy of the QAT model evaluated with float
	// convolution arithmetic (the reference all schemes compare to).
	FP32Acc float64
	// Threshold is the ODQ sensitivity threshold selected by the
	// adaptive search (with threshold-aware retraining).
	Threshold float32
	// Search is the full threshold-search trace (Table 3 machinery).
	Search core.SearchResult
	// baseState is the plain QAT checkpoint from before threshold-aware
	// retraining. Static and DRQ baselines evaluate against it; the
	// live weights are the ODQ-specialized (deployed) ones.
	baseState []byte
}

// Lab owns shared state across experiments.
type Lab struct {
	Scale Scale
	// Out receives progress logging; nil silences it.
	Out io.Writer

	mu       sync.Mutex
	models   map[string]*TrainedModel
	datasets map[string][2]*dataset.Dataset
	memo     map[string]interface{}
}

// NewLab builds a lab at the given scale.
func NewLab(scale Scale, out io.Writer) *Lab {
	return &Lab{
		Scale:    scale,
		Out:      out,
		models:   make(map[string]*TrainedModel),
		datasets: make(map[string][2]*dataset.Dataset),
		memo:     make(map[string]interface{}),
	}
}

// Memo caches an arbitrary computed value under a key so experiments can
// share expensive intermediate results (profile runs, cost models).
func (l *Lab) Memo(key string, compute func() interface{}) interface{} {
	l.mu.Lock()
	if v, ok := l.memo[key]; ok {
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()
	v := compute()
	l.mu.Lock()
	l.memo[key] = v
	l.mu.Unlock()
	return v
}

func (l *Lab) logf(format string, args ...interface{}) {
	if l.Out != nil {
		fmt.Fprintf(l.Out, format, args...)
	}
}

// classesOf maps dataset names to class counts.
func classesOf(ds string) (int, error) {
	switch ds {
	case "c10":
		return 10, nil
	case "c100":
		return 100, nil
	case "mnist":
		return 10, nil
	}
	return 0, fmt.Errorf("experiments: unknown dataset %q", ds)
}

// Datasets returns (train, test) for a dataset name, cached.
func (l *Lab) Datasets(ds string) (*dataset.Dataset, *dataset.Dataset) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pair, ok := l.datasets[ds]; ok {
		return pair[0], pair[1]
	}
	classes, err := classesOf(ds)
	if err != nil {
		panic(err)
	}
	var tr, te *dataset.Dataset
	switch ds {
	case "mnist":
		tr = dataset.MNISTLike(l.Scale.TrainSamples, l.Scale.Seed+100)
		te = dataset.MNISTLike(l.Scale.TestSamples, l.Scale.Seed+200)
	default:
		// Keep a usable per-class sample count: the 100-class dataset
		// needs more absolute samples than the 10-class one.
		nTrain := l.Scale.TrainSamples
		if min := classes * 8; nTrain < min {
			nTrain = min
		}
		nTest := l.Scale.TestSamples
		if min := classes * 2; nTest < min {
			nTest = min
		}
		tr = dataset.SyntheticImages(classes, nTrain, 3, 32, 32, l.Scale.Seed+100)
		te = dataset.SyntheticImages(classes, nTest, 3, 32, 32, l.Scale.Seed+200)
	}
	l.datasets[ds] = [2]*dataset.Dataset{tr, te}
	return tr, te
}

// Model returns the QAT-trained model for (modelName, datasetName),
// training and caching it on first use. Training uses 4-bit DoReFa QAT —
// the regime ODQ and DRQ 4/2 operate in.
func (l *Lab) Model(modelName, datasetName string) *TrainedModel {
	key := modelName + "/" + datasetName
	l.mu.Lock()
	if tm, ok := l.models[key]; ok {
		l.mu.Unlock()
		return tm
	}
	l.mu.Unlock()

	trainDS, testDS := l.Datasets(datasetName)
	classes, _ := classesOf(datasetName)
	cfg := models.Config{
		Classes: classes,
		Scale:   l.Scale.ModelScale,
		QATBits: 4,
		Seed:    l.Scale.Seed,
	}
	net, err := models.Build(modelName, cfg)
	if err != nil {
		panic(err)
	}
	l.logf("[lab] training %s on %s (%d samples, %d epochs)...\n",
		modelName, datasetName, trainDS.Len(), l.Scale.Epochs)
	lr := l.Scale.LR
	if lr == 0 {
		lr = 0.02
	}
	// Two-phase QAT: clipped-float warm-up (activation clipping active,
	// grids off), then quantization-aware fine-tuning. Landing clip and
	// grid together keeps deep networks from training at all.
	warm := l.Scale.Epochs * 2 / 3
	if warm < 1 {
		warm = 1
	}
	qat := l.Scale.Epochs - warm
	if qat < 1 {
		qat = 1
	}
	models.SetQATRelaxed(net, true)
	train.MustFit(net, trainDS, train.Options{
		Epochs:      warm,
		BatchSize:   l.Scale.BatchSize,
		LR:          lr,
		Momentum:    0.9,
		Decay:       1e-4,
		Seed:        l.Scale.Seed,
		LRDropEvery: warm * 3 / 4,
	})
	models.SetQATRelaxed(net, false)
	train.MustFit(net, trainDS, train.Options{
		Epochs:    qat,
		BatchSize: l.Scale.BatchSize,
		LR:        lr / 2,
		Momentum:  0.9,
		Decay:     1e-4,
		Seed:      l.Scale.Seed + 1,
	})
	tm := &TrainedModel{
		ModelName:   modelName,
		DatasetName: datasetName,
		Net:         net,
		Train:       trainDS,
		Test:        testDS,
		FP32Acc:     train.Evaluate(net, testDS, 64),
	}
	l.logf("[lab] %s/%s reference accuracy %.3f\n", modelName, datasetName, tm.FP32Acc)

	// Adaptive threshold selection with threshold-aware retraining
	// (paper §3): the network fine-tunes with ODQ's straight-through
	// forward so it learns to tolerate predictor-only insensitive
	// outputs, then the threshold halves until accuracy recovers.
	tol := l.Scale.TolAcc
	if tol == 0 {
		tol = 0.02
	}
	tm.Search = l.searchThreshold(tm, tol, l.Scale.SearchIters)
	tm.Threshold = tm.Search.Threshold

	l.mu.Lock()
	l.models[key] = tm
	l.mu.Unlock()
	return tm
}

// searchThreshold runs the paper's adaptive threshold algorithm on a
// freshly trained model (mutating it via retraining).
func (l *Lab) searchThreshold(tm *TrainedModel, tol float64, maxIters int) core.SearchResult {
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx)

	e := core.NewExec(0, core.WithoutWeightCache())
	init := e.InitialThreshold(tm.Net, x, 0.75)
	refAcc := l.EvalWithExec(tm, quant.NewStaticExec(4))

	lr := l.Scale.LR
	if lr == 0 {
		lr = 0.02
	}
	// Snapshot the QAT-trained weights: every threshold candidate
	// fine-tunes from the same base model, so the halving sequence's
	// early (too-aggressive) candidates cannot wreck later ones, and
	// baseline schemes evaluate the un-specialized network.
	var snapshot bytes.Buffer
	if err := nn.Save(&snapshot, tm.Net); err != nil {
		panic(err)
	}
	tm.baseState = snapshot.Bytes()
	retrain := func(float32) {
		if l.Scale.FTEpochs <= 0 {
			return
		}
		if err := nn.Load(bytes.NewReader(snapshot.Bytes()), tm.Net); err != nil {
			panic(err)
		}
		// Fine-tune with the ODQ straight-through forward and frozen
		// batch-norm statistics (standard fine-tuning configuration;
		// batch stats of approximated activations would drift).
		ftData := tm.Train
		if l.Scale.FTSamples > 0 {
			ftData = tm.Train.Subset(l.Scale.FTSamples)
		}
		nn.SetConvTrainExec(tm.Net, e)
		nn.SetBNFrozen(tm.Net, true)
		train.MustFit(tm.Net, ftData, train.Options{
			Epochs:    l.Scale.FTEpochs,
			BatchSize: l.Scale.BatchSize,
			LR:        lr / 4,
			Momentum:  0.9,
			Decay:     1e-4,
			Seed:      l.Scale.Seed + 7,
		})
		nn.SetBNFrozen(tm.Net, false)
		nn.SetConvTrainExec(tm.Net, nil)
	}
	evalAcc := func() float64 { return l.EvalDynamic(tm, e) }
	res := e.FindThreshold(init, refAcc, tol, maxIters, retrain, evalAcc)
	l.logf("[lab] %s/%s threshold search: init=%.3f final=%.3f acc=%.3f (ref %.3f, %d iters, converged=%v)\n",
		tm.ModelName, tm.DatasetName, init, res.Threshold, res.Accuracy, refAcc, res.Iterations, res.Converged)
	return res
}

// withBaseWeights runs f with the pre-retraining QAT weights installed,
// then restores the current (ODQ-specialized) weights.
func (l *Lab) withBaseWeights(tm *TrainedModel, f func()) {
	if tm.baseState == nil {
		f()
		return
	}
	var cur bytes.Buffer
	if err := nn.Save(&cur, tm.Net); err != nil {
		panic(err)
	}
	if err := nn.Load(bytes.NewReader(tm.baseState), tm.Net); err != nil {
		panic(err)
	}
	defer func() {
		if err := nn.Load(&cur, tm.Net); err != nil {
			panic(err)
		}
	}()
	f()
}

// EvalWithExec evaluates test accuracy with the given conv executor
// installed on every layer (static schemes); nil = float path. Baseline
// schemes run on the pre-retraining QAT weights.
func (l *Lab) EvalWithExec(tm *TrainedModel, exec nn.ConvExecutor) float64 {
	var acc float64
	l.withBaseWeights(tm, func() {
		nn.SetConvExec(tm.Net, exec)
		defer nn.SetConvExec(tm.Net, nil)
		acc = train.Evaluate(tm.Net, tm.Test, 32)
	})
	return acc
}

// EvalDynamic evaluates test accuracy with a dynamic-scheme executor
// installed on every layer but the first (DoReFa first-layer convention),
// on the current (ODQ-specialized) weights — the deployed configuration.
func (l *Lab) EvalDynamic(tm *TrainedModel, exec nn.ConvExecutor) float64 {
	nn.SetConvExecTail(tm.Net, exec)
	defer nn.SetConvExecTail(tm.Net, nil)
	return train.Evaluate(tm.Net, tm.Test, 32)
}

// EvalDynamicBase is EvalDynamic on the pre-retraining weights — for
// dynamic baselines (DRQ) that do not share ODQ's retraining.
func (l *Lab) EvalDynamicBase(tm *TrainedModel, exec nn.ConvExecutor) float64 {
	var acc float64
	l.withBaseWeights(tm, func() {
		acc = l.EvalDynamic(tm, exec)
	})
	return acc
}

// profileBatch returns the profiling input batch for a model.
func (l *Lab) profileBatch(tm *TrainedModel) ([]int, *dataset.Dataset) {
	n := l.Scale.ProfileSamples
	if n > tm.Test.Len() {
		n = tm.Test.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx, tm.Test
}

// Threshold returns the ODQ sensitivity threshold selected for this model
// by the adaptive search run at training time.
func (l *Lab) Threshold(tm *TrainedModel) float32 { return tm.Threshold }

// SearchThreshold returns the stored adaptive-search trace for the model
// (the search runs once, during Model construction, because it retrains
// the network as the paper prescribes).
func (l *Lab) SearchThreshold(tm *TrainedModel, _ float64, _ int) core.SearchResult {
	return tm.Search
}

// ProfileODQ runs ODQ inference over the profiling batch and returns the
// per-layer profiles (with masks when keepMasks) plus the executor used.
func (l *Lab) ProfileODQ(tm *TrainedModel, threshold float32, keepMasks bool) ([]*quant.LayerProfile, *core.Exec) {
	opts := []core.Option{core.WithProfiling()}
	if keepMasks {
		opts = append(opts, core.WithMaskRecording())
	}
	e := core.NewExec(threshold, opts...)
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx)
	nn.SetConvExecTail(tm.Net, e)
	tm.Net.Forward(x, false)
	nn.SetConvExecTail(tm.Net, nil)
	return e.Profiles(), e
}

// ProfileDRQ runs DRQ inference over the profiling batch and returns the
// per-layer profiles plus the executor (whose motivation stats are
// populated when collectMotivation).
func (l *Lab) ProfileDRQ(tm *TrainedModel, hiBits, loBits int, collectMotivation bool, outputThreshold float32) ([]*quant.LayerProfile, *drq.Exec) {
	opts := []drq.Option{drq.WithProfiling()}
	if collectMotivation {
		opts = append(opts, drq.WithMotivation(outputThreshold))
	}
	e := drq.NewExec(hiBits, loBits, opts...)
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx)
	nn.SetConvExecTail(tm.Net, e)
	tm.Net.Forward(x, false)
	nn.SetConvExecTail(tm.Net, nil)
	return e.Profiles(), e
}

// ProfileStatic runs static INT-k inference over the profiling batch and
// returns the per-layer profiles (geometry and MAC counts).
func (l *Lab) ProfileStatic(tm *TrainedModel, bits int) []*quant.LayerProfile {
	e := quant.NewStaticExec(bits, quant.WithStaticProfiling())
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx)
	nn.SetConvExec(tm.Net, e)
	tm.Net.Forward(x, false)
	nn.SetConvExec(tm.Net, nil)
	return e.Profiles()
}
