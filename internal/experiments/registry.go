package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// Runner executes one experiment against a lab.
type Runner func(l *Lab) Renderer

// Registry maps experiment ids (as used by the CLI and EXPERIMENTS.md) to
// their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"figure1":  func(l *Lab) Renderer { return Figure1(l) },
		"figure2":  func(l *Lab) Renderer { return Figure2(l) },
		"figure3":  func(l *Lab) Renderer { return Figure3(l) },
		"figure4":  func(l *Lab) Renderer { return Figure4(l) },
		"figure5":  func(l *Lab) Renderer { return Figure5(l) },
		"figure9":  func(l *Lab) Renderer { return Figure9(l) },
		"figure10": func(l *Lab) Renderer { return Figure10(l) },
		"figure11": func(l *Lab) Renderer { return Figure11(l) },
		"table1":   func(l *Lab) Renderer { return Table1(l) },
		"table2":   func(l *Lab) Renderer { return Table2(l) },
		"figure18": func(l *Lab) Renderer { return Figure18(l, nil, nil) },
		"figure19": func(l *Lab) Renderer { return Figure19(l, nil) },
		"figure20": func(l *Lab) Renderer { return Figure20(l) },
		"figure21": func(l *Lab) Renderer { return Figure21(l, nil) },
		"figure22": func(l *Lab) Renderer { return Figure22(l) },
		"table3":   func(l *Lab) Renderer { return Table3(l) },
		// Ablations beyond the paper's artifacts (DESIGN.md §6).
		"ablation-threshold": func(l *Lab) Renderer { return AblationThreshold(l) },
		"ablation-alloc":     func(l *Lab) Renderer { return AblationAlloc(l) },
		"ablation-precision": func(l *Lab) Renderer { return AblationPrecision(l) },
		"headlines":          func(l *Lab) Renderer { return ComputeHeadlines(l, nil) },
	}
}

// Names returns the experiment ids in a stable presentation order.
func Names() []string {
	order := []string{
		"figure1", "figure2", "figure3", "figure4", "figure5",
		"figure9", "figure10", "figure11", "table1", "table2",
		"figure18", "figure19", "figure20", "figure21", "figure22", "table3",
		"ablation-threshold", "ablation-alloc", "ablation-precision", "headlines",
	}
	reg := Registry()
	if len(order) != len(reg) {
		// Keep the list exhaustive; fall back to sorted keys if it drifts.
		var keys []string
		for k := range reg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	return order
}

// Run executes one experiment by id and renders it to w.
func Run(l *Lab, name string, w io.Writer) error {
	r, ok := Registry()[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	r(l).Render(w)
	return nil
}

// RunAll executes every experiment in presentation order.
func RunAll(l *Lab, w io.Writer) error {
	for _, name := range Names() {
		fmt.Fprintf(w, "### %s\n\n", name)
		if err := Run(l, name, w); err != nil {
			return err
		}
	}
	return nil
}
