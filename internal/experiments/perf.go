package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/drq"
	"repro/internal/energy"
	"repro/internal/infer"
	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/stats"
)

// figure18Schemes maps Figure 18's display labels to canonical scheme
// names in package infer's registry, in render order. Construction goes
// through infer.NewFromScheme so the experiment can never drift from the
// CLI scheme set.
var figure18Schemes = []struct {
	Label  string
	Scheme string
}{
	{"FP32", "float"},
	{"INT16", "int16"},
	{"INT8", "int8"},
	{"DRQ 8/4", "drq84"},
	{"DRQ 4/2", "drq42"},
	{"ODQ 4/2", "odq"},
}

// schemeNames lists Figure 18's display labels in render order.
var schemeNames = func() []string {
	out := make([]string, len(figure18Schemes))
	for i, s := range figure18Schemes {
		out[i] = s.Label
	}
	return out
}()

// Figure18Row is one (model, dataset, scheme) accuracy cell.
type Figure18Row struct {
	Model, Dataset, Scheme string
	Accuracy               float64
	// HighFrac is the share of computation at the scheme's high
	// precision (sensitive outputs for ODQ, high-precision MACs for
	// DRQ, 1.0 for static schemes).
	HighFrac float64
}

// Figure18Result reproduces Figure 18: Top-1 accuracy plus the
// high/low-precision split for every scheme, model and dataset.
type Figure18Result struct {
	Rows []Figure18Row
}

// Figure18 evaluates all schemes on the given models and datasets.
// Passing nil uses the paper's four models and both datasets.
func Figure18(l *Lab, modelNames, datasets []string) *Figure18Result {
	if modelNames == nil {
		modelNames = []string{"resnet56", "resnet20", "vgg16", "densenet"}
	}
	if datasets == nil {
		datasets = []string{"c10", "c100"}
	}
	r := &Figure18Result{}
	for _, ds := range datasets {
		for _, m := range modelNames {
			tm := l.Model(m, ds)
			th := l.Threshold(tm)
			for _, sc := range figure18Schemes {
				row := Figure18Row{Model: m, Dataset: ds, Scheme: sc.Label, HighFrac: 1}
				if sc.Scheme == "float" {
					row.Accuracy = tm.FP32Acc
					r.Rows = append(r.Rows, row)
					continue
				}
				exec, err := infer.NewFromScheme(sc.Scheme, infer.WithThreshold(th), infer.WithProfiling())
				if err != nil {
					panic(err) // figure18Schemes holds only registry names
				}
				// Eval mode and high-precision share are per-family
				// reporting concerns: DRQ evaluates on base weights, ODQ
				// on the threshold-retrained weights.
				switch e := exec.(type) {
				case *drq.Exec:
					row.Accuracy = l.EvalDynamicBase(tm, e)
					row.HighFrac = highMACFrac(e.Profiles())
				case *core.Exec:
					row.Accuracy = l.EvalDynamic(tm, e)
					row.HighFrac = e.SensitiveFraction()
				default:
					row.Accuracy = l.EvalWithExec(tm, exec)
				}
				r.Rows = append(r.Rows, row)
			}
		}
	}
	return r
}

func highMACFrac(profiles []*quant.LayerProfile) float64 {
	var hi, tot int64
	for _, p := range profiles {
		hi += p.HighInputMACs
		tot += p.TotalMACs
	}
	if tot == 0 {
		return 0
	}
	return float64(hi) / float64(tot)
}

// Render implements the experiment output.
func (r *Figure18Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 18: Top-1 accuracy and high-precision share per scheme",
		"dataset", "model", "scheme", "accuracy", "high-prec share")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Model, row.Scheme,
			stats.Pct(row.Accuracy), stats.Pct(row.HighFrac))
	}
	t.Render(w)
}

// AccuracyDrop returns ODQ's accuracy drop versus INT8 for a model/dataset
// (the paper's ≤0.6% claim).
func (r *Figure18Result) AccuracyDrop(model, dataset string) float64 {
	var int8Acc, odqAcc float64
	for _, row := range r.Rows {
		if row.Model != model || row.Dataset != dataset {
			continue
		}
		switch row.Scheme {
		case "INT8":
			int8Acc = row.Accuracy
		case "ODQ 4/2":
			odqAcc = row.Accuracy
		}
	}
	return int8Acc - odqAcc
}

// modelCosts bundles the per-accelerator cost models for one network.
type modelCosts struct {
	Costs    map[string]*sim.NetworkCost
	ODQUtil  float64
	SensFrac float64
}

// costsFor builds (and caches) the Figure 19/21 cost models for a network:
// profiles from each scheme's executor feed the Table-2 accelerator
// models, with ODQ's utilization taken from the cycle simulation.
func costsFor(l *Lab, modelName string) *modelCosts {
	key := "costs/" + modelName
	v := l.Memo(key, func() interface{} {
		tm := l.Model(modelName, "c10")
		th := l.Threshold(tm)

		staticProfiles := l.ProfileStatic(tm, 8)
		drqProfiles, _ := l.ProfileDRQ(tm, 8, 4, false, 0)
		odqProfiles := odqMaskProfiles(l, modelName)
		_ = th

		accels := sim.Table2Accels()

		// ODQ utilization from the cycle-level slice simulation,
		// weighted by per-layer PE work.
		var utilSum, wsum float64
		for _, p := range odqProfiles {
			util, _, _ := sim.ODQUtilization(p)
			wgt := float64(p.TotalMACs)
			utilSum += util * wgt
			wsum += wgt
		}
		util := 1.0
		if wsum > 0 {
			util = utilSum / wsum
		}
		accels["ODQ"].Utilization = util

		mc := &modelCosts{Costs: map[string]*sim.NetworkCost{}, ODQUtil: util}
		mc.Costs["INT16"] = accels["INT16"].NetworkCostOf(staticProfiles)
		mc.Costs["INT8"] = accels["INT8"].NetworkCostOf(staticProfiles)
		mc.Costs["DRQ"] = accels["DRQ"].NetworkCostOf(drqProfiles)
		mc.Costs["ODQ"] = accels["ODQ"].NetworkCostOf(odqProfiles)

		var sens, tot int64
		for _, p := range odqProfiles {
			sens += p.SensitiveOutputs
			tot += p.TotalOutputs
		}
		if tot > 0 {
			mc.SensFrac = float64(sens) / float64(tot)
		}
		return mc
	})
	return v.(*modelCosts)
}

// AccelOrder is the Figure 19/21 accelerator rendering order.
var AccelOrder = []string{"INT16", "INT8", "DRQ", "ODQ"}

// Figure19Result reproduces Figure 19: normalized execution time of every
// model on the four accelerators (INT16 = 1.0).
type Figure19Result struct {
	Models []string
	// Normalized[model][accel] in AccelOrder.
	Normalized [][]float64
	Cycles     [][]int64
	ODQUtil    []float64
}

// Figure19 models execution time for the given models (nil = all four).
func Figure19(l *Lab, modelNames []string) *Figure19Result {
	if modelNames == nil {
		modelNames = []string{"resnet56", "resnet20", "vgg16", "densenet"}
	}
	r := &Figure19Result{Models: modelNames}
	for _, m := range modelNames {
		mc := costsFor(l, m)
		base := float64(mc.Costs["INT16"].TotalCycles())
		var norm []float64
		var cyc []int64
		for _, a := range AccelOrder {
			c := mc.Costs[a].TotalCycles()
			cyc = append(cyc, c)
			norm = append(norm, float64(c)/base)
		}
		r.Normalized = append(r.Normalized, norm)
		r.Cycles = append(r.Cycles, cyc)
		r.ODQUtil = append(r.ODQUtil, mc.ODQUtil)
	}
	return r
}

// Speedup returns ODQ's relative execution-time reduction versus the
// named accelerator, averaged across models (the paper's 97.8% / 95.8% /
// 67.6% headline numbers).
func (r *Figure19Result) Speedup(vs string) float64 {
	vi := indexOf(AccelOrder, vs)
	oi := indexOf(AccelOrder, "ODQ")
	var fracs []float64
	for _, row := range r.Cycles {
		if row[vi] > 0 {
			fracs = append(fracs, 1-float64(row[oi])/float64(row[vi]))
		}
	}
	return stats.Mean(fracs)
}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: unknown accelerator %q", s))
}

// Render implements the experiment output.
func (r *Figure19Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 19: normalized execution time (INT16 = 1.0)",
		"model", "INT16", "INT8", "DRQ", "ODQ", "ODQ util")
	for i, m := range r.Models {
		n := r.Normalized[i]
		t.AddRow(m, n[0], n[1], n[2], n[3], stats.Pct(r.ODQUtil[i]))
	}
	t.Render(w)
	fmt.Fprintf(w, "ODQ execution-time reduction: vs INT16 %s, vs INT8 %s, vs DRQ %s\n\n",
		stats.Pct(r.Speedup("INT16")), stats.Pct(r.Speedup("INT8")), stats.Pct(r.Speedup("DRQ")))
}

// Figure21Result reproduces Figure 21: normalized energy with the
// DRAM/Buffer/Cores breakdown.
type Figure21Result struct {
	Models []string
	// Energy[model][accel] in AccelOrder.
	Energy     [][]energy.Breakdown
	Normalized [][]float64
}

// Figure21 models energy for the given models (nil = all four).
func Figure21(l *Lab, modelNames []string) *Figure21Result {
	if modelNames == nil {
		modelNames = []string{"resnet56", "resnet20", "vgg16", "densenet"}
	}
	consts := energy.DefaultConstants()
	accels := sim.Table2Accels()
	r := &Figure21Result{Models: modelNames}
	for _, m := range modelNames {
		mc := costsFor(l, m)
		var bds []energy.Breakdown
		var norm []float64
		var base float64
		for i, a := range AccelOrder {
			bd := energy.NetworkEnergy(accels[a], mc.Costs[a], consts)
			bds = append(bds, bd)
			if i == 0 {
				base = bd.Total()
			}
			norm = append(norm, bd.Total()/base)
		}
		r.Energy = append(r.Energy, bds)
		r.Normalized = append(r.Normalized, norm)
	}
	return r
}

// Saving returns ODQ's mean energy reduction versus the named accelerator.
func (r *Figure21Result) Saving(vs string) float64 {
	vi := indexOf(AccelOrder, vs)
	oi := indexOf(AccelOrder, "ODQ")
	var fracs []float64
	for _, row := range r.Energy {
		if row[vi].Total() > 0 {
			fracs = append(fracs, 1-row[oi].Total()/row[vi].Total())
		}
	}
	return stats.Mean(fracs)
}

// Render implements the experiment output.
func (r *Figure21Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 21: normalized energy (INT16 = 1.0) with DRAM/Buffer/Cores split",
		"model", "accel", "normalized", "dram", "buffer", "cores")
	for i, m := range r.Models {
		for j, a := range AccelOrder {
			bd := r.Energy[i][j]
			tot := bd.Total()
			t.AddRow(m, a, r.Normalized[i][j],
				stats.Pct(bd.DRAM/tot), stats.Pct(bd.Buffer/tot), stats.Pct(bd.Cores/tot))
		}
	}
	t.Render(w)
	fmt.Fprintf(w, "ODQ energy reduction: vs INT16 %s, vs INT8 %s, vs DRQ %s\n\n",
		stats.Pct(r.Saving("INT16")), stats.Pct(r.Saving("INT8")), stats.Pct(r.Saving("DRQ")))
}
