package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// PaperHeadlines are the numbers the paper reports for its headline
// claims, used for the paper-vs-measured summary.
var PaperHeadlines = struct {
	SpeedupVsINT16, SpeedupVsINT8, SpeedupVsDRQ float64 // exec-time reduction
	SavingVsINT16, SavingVsINT8, SavingVsDRQ    float64 // energy reduction
	MaxAccuracyDrop                             float64 // ODQ vs INT8 (≤)
	DRQ42DropLow, DRQ42DropHigh                 float64 // DRQ 4/2 degradation range
	MaxODQIdle                                  float64 // Figure 20 peak idle
	SensLow, SensHigh                           float64 // sensitive-output range (§4.2)
}{
	SpeedupVsINT16: 0.978, SpeedupVsINT8: 0.958, SpeedupVsDRQ: 0.676,
	SavingVsINT16: 0.976, SavingVsINT8: 0.935, SavingVsDRQ: 0.669,
	MaxAccuracyDrop: 0.006,
	DRQ42DropLow:    0.025, DRQ42DropHigh: 0.10,
	MaxODQIdle: 0.18,
	SensLow:    0.08, SensHigh: 0.50,
}

// Headlines aggregates the measured headline numbers from the (cached)
// experiment results for a set of models on the c10 dataset.
type Headlines struct {
	Models []string

	SpeedupVsINT16, SpeedupVsINT8, SpeedupVsDRQ float64
	SavingVsINT16, SavingVsINT8, SavingVsDRQ    float64

	// MaxAccuracyDrop is the worst ODQ-vs-INT8 drop across models.
	MaxAccuracyDrop float64
	// DRQ42Drop is the worst DRQ 4/2 drop versus INT8.
	DRQ42Drop float64
	// MaxODQIdle is Figure 20's peak idle fraction.
	MaxODQIdle float64
	// SensMin/SensMax bound the per-model overall sensitive fractions.
	SensMin, SensMax float64
}

// ComputeHeadlines runs (or reuses) the experiments needed for the
// headline summary. Passing nil models uses the paper's four.
func ComputeHeadlines(l *Lab, modelNames []string) *Headlines {
	if modelNames == nil {
		modelNames = []string{"resnet56", "resnet20", "vgg16", "densenet"}
	}
	h := &Headlines{Models: modelNames, SensMin: 1}

	f19 := Figure19(l, modelNames)
	h.SpeedupVsINT16 = f19.Speedup("INT16")
	h.SpeedupVsINT8 = f19.Speedup("INT8")
	h.SpeedupVsDRQ = f19.Speedup("DRQ")

	f21 := Figure21(l, modelNames)
	h.SavingVsINT16 = f21.Saving("INT16")
	h.SavingVsINT8 = f21.Saving("INT8")
	h.SavingVsDRQ = f21.Saving("DRQ")

	f18 := Figure18(l, modelNames, []string{"c10"})
	accOf := func(model, scheme string) float64 {
		for _, row := range f18.Rows {
			if row.Model == model && row.Scheme == scheme {
				return row.Accuracy
			}
		}
		return 0
	}
	for _, m := range modelNames {
		if d := accOf(m, "INT8") - accOf(m, "ODQ 4/2"); d > h.MaxAccuracyDrop {
			h.MaxAccuracyDrop = d
		}
		if d := accOf(m, "INT8") - accOf(m, "DRQ 4/2"); d > h.DRQ42Drop {
			h.DRQ42Drop = d
		}
		mc := costsFor(l, m)
		if mc.SensFrac < h.SensMin {
			h.SensMin = mc.SensFrac
		}
		if mc.SensFrac > h.SensMax {
			h.SensMax = mc.SensFrac
		}
	}

	f20 := Figure20(l)
	h.MaxODQIdle = f20.MaxIdle
	return h
}

// Render implements Renderer: the paper-vs-measured headline table.
func (h *Headlines) Render(w io.Writer) {
	p := PaperHeadlines
	t := stats.NewTable("Headline claims: paper vs this reproduction",
		"claim", "paper", "measured")
	t.AddRow("ODQ exec-time reduction vs INT16", stats.Pct(p.SpeedupVsINT16), stats.Pct(h.SpeedupVsINT16))
	t.AddRow("ODQ exec-time reduction vs INT8", stats.Pct(p.SpeedupVsINT8), stats.Pct(h.SpeedupVsINT8))
	t.AddRow("ODQ exec-time reduction vs DRQ", stats.Pct(p.SpeedupVsDRQ), stats.Pct(h.SpeedupVsDRQ))
	t.AddRow("ODQ energy reduction vs INT16", stats.Pct(p.SavingVsINT16), stats.Pct(h.SavingVsINT16))
	t.AddRow("ODQ energy reduction vs INT8", stats.Pct(p.SavingVsINT8), stats.Pct(h.SavingVsINT8))
	t.AddRow("ODQ energy reduction vs DRQ", stats.Pct(p.SavingVsDRQ), stats.Pct(h.SavingVsDRQ))
	t.AddRow("ODQ accuracy drop vs INT8 (worst)",
		"<= "+stats.Pct(p.MaxAccuracyDrop), stats.Pct(h.MaxAccuracyDrop))
	t.AddRow("DRQ 4/2 accuracy drop (worst)",
		fmt.Sprintf("%s..%s", stats.Pct(p.DRQ42DropLow), stats.Pct(p.DRQ42DropHigh)),
		stats.Pct(h.DRQ42Drop))
	t.AddRow("peak ODQ PE idleness (Fig 20)",
		"<= "+stats.Pct(p.MaxODQIdle), stats.Pct(h.MaxODQIdle))
	t.AddRow("sensitive-output range",
		fmt.Sprintf("%s..%s", stats.Pct(p.SensLow), stats.Pct(p.SensHigh)),
		fmt.Sprintf("%s..%s", stats.Pct(h.SensMin), stats.Pct(h.SensMax)))
	t.Render(w)
}
