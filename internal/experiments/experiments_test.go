package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
)

var (
	labOnce   sync.Once
	sharedLab *Lab
)

// testLab returns a lab shared by all tests so each model trains once.
func testLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("trains the shared lab models (tens of seconds); full tier only")
	}
	labOnce.Do(func() {
		sharedLab = NewLab(TestScale(), nil)
	})
	return sharedLab
}

func TestLabModelCachingAndAccuracy(t *testing.T) {
	l := testLab(t)
	tm1 := l.Model("resnet20", "c10")
	tm2 := l.Model("resnet20", "c10")
	if tm1 != tm2 {
		t.Fatal("Model must cache")
	}
	if tm1.FP32Acc <= 0.15 {
		t.Fatalf("trained accuracy %.3f not above chance", tm1.FP32Acc)
	}
}

func TestThresholdCachedAndPositive(t *testing.T) {
	l := testLab(t)
	tm := l.Model("resnet20", "c10")
	th1 := l.Threshold(tm)
	th2 := l.Threshold(tm)
	if th1 != th2 {
		t.Fatal("Threshold must cache")
	}
	if th1 < 0 {
		t.Fatalf("threshold %v negative", th1)
	}
}

func TestMotivationFigures(t *testing.T) {
	l := testLab(t)
	// Dynamic schemes skip the first conv (DoReFa convention), so the
	// per-layer figures cover convs-1 layers.
	convs := len(nn.Convs(l.Model("resnet20", "c10").Net)) - 1

	f2 := Figure2(l)
	if len(f2.Layers) != convs {
		t.Fatalf("figure2 layers %d, want %d", len(f2.Layers), convs)
	}
	for i, b := range f2.Buckets {
		sum := b[0] + b[1] + b[2] + b[3]
		if sum > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("figure2 layer %d buckets sum %v", i, sum)
		}
	}

	f3 := Figure3(l)
	if len(f3.Loss) != convs {
		t.Fatal("figure3 layer count")
	}
	for _, v := range f3.Loss {
		if v < 0 {
			t.Fatal("negative precision loss")
		}
	}

	f4 := Figure4(l)
	if len(f4.Layers) != convs {
		t.Fatal("figure4 layer count")
	}

	f5 := Figure5(l)
	anyWaste := false
	for _, v := range f5.Extra {
		if v < 0 {
			t.Fatal("negative extra precision")
		}
		if v > 0 {
			anyWaste = true
		}
	}
	if !anyWaste {
		t.Fatal("expected measurable computation waste in at least one layer")
	}

	var buf bytes.Buffer
	f2.Render(&buf)
	f3.Render(&buf)
	f4.Render(&buf)
	f5.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("render missing titles")
	}
}

func TestFigure1Illustration(t *testing.T) {
	l := testLab(t)
	r := Figure1(l)
	if r.SensitiveTotal == 0 && r.InsensitiveTotal == 0 {
		t.Fatal("figure1 classified no outputs")
	}
	if len(r.InputMask) == 0 || len(r.OutputMask) == 0 {
		t.Fatal("figure1 masks not rendered")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "case 1") {
		t.Fatal("figure1 render incomplete")
	}
}

func TestFigure10Insensitivity(t *testing.T) {
	l := testLab(t)
	r := Figure10(l)
	convs := len(nn.Convs(l.Model("resnet20", "c10").Net)) - 1
	if len(r.Layers) != convs {
		t.Fatalf("figure10 layers %d, want %d", len(r.Layers), convs)
	}
	for _, f := range r.Insensitive {
		if f < 0 || f > 1 {
			t.Fatalf("insensitive fraction %v out of range", f)
		}
	}
}

func TestFigure11StaticVsFigure20Dynamic(t *testing.T) {
	l := testLab(t)
	f11 := Figure11(l)
	f20 := Figure20(l)
	if len(f11.Layers) == 0 || len(f20.Layers) != len(f11.Layers) {
		t.Fatal("allocation figures layer mismatch")
	}
	// Headline claim: dynamic allocation reduces worst-case idleness
	// compared with static allocation.
	worstStatic := 0.0
	for ci := range f11.Configs {
		for i := range f11.Layers {
			idle := (f11.PreIdle[ci][i] + f11.ExeIdle[ci][i]) / 2
			if idle > worstStatic {
				worstStatic = idle
			}
		}
	}
	if f20.MaxIdle >= worstStatic {
		t.Fatalf("dynamic max idle %.3f not below static worst %.3f", f20.MaxIdle, worstStatic)
	}
}

func TestTable1SimMatchesAnalytic(t *testing.T) {
	l := testLab(t)
	r := Table1(l)
	if len(r.Rows) != 5 {
		t.Fatalf("table1 rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		diff := row.SimulatedMax - row.AnalyticMax
		if diff < -0.06 || diff > 0.12 {
			t.Fatalf("config %v: simulated %.3f vs analytic %.3f",
				row.Config, row.SimulatedMax, row.AnalyticMax)
		}
	}
}

func TestTable2Constants(t *testing.T) {
	r := Table2(testLab(t))
	if len(r.Accels) != 4 {
		t.Fatal("table2 must list four accelerators")
	}
	if r.Accels[0].PEs != 120 || r.Accels[3].PEs != 4860 {
		t.Fatalf("table2 PE counts wrong: %d %d", r.Accels[0].PEs, r.Accels[3].PEs)
	}
}

func TestFigure18AccuracyShapes(t *testing.T) {
	l := testLab(t)
	r := Figure18(l, []string{"resnet20"}, []string{"c10"})
	if len(r.Rows) != len(schemeNames) {
		t.Fatalf("figure18 rows %d", len(r.Rows))
	}
	acc := map[string]float64{}
	for _, row := range r.Rows {
		acc[row.Scheme] = row.Accuracy
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", row)
		}
	}
	// Shape claims (loose at test scale): INT16 tracks FP32 closely;
	// ODQ must track its own precision ceiling — static INT4, the
	// reference the adaptive threshold search converges against — to
	// within the search tolerance plus slack for eval noise. (ODQ's
	// sensitive outputs equal the full INT4 convolution, so static INT4
	// bounds what any threshold can reach; per-sample DRQ region
	// thresholds lifted the DRQ 4/2 baseline above that ceiling at this
	// tiny synthetic scale, so a direct ODQ-vs-DRQ comparison is only
	// meaningful at full scale.)
	if d := acc["FP32"] - acc["INT16"]; d > 0.1 || d < -0.1 {
		t.Fatalf("INT16 deviates from FP32 by %.3f", d)
	}
	tm := l.Model("resnet20", "c10")
	int4Acc := l.EvalWithExec(tm, quant.NewStaticExec(4))
	if acc["ODQ 4/2"]+1e-9 < int4Acc-l.Scale.TolAcc-0.05 {
		t.Fatalf("ODQ 4/2 (%.3f) trails its static INT4 ceiling (%.3f) beyond the search tolerance %.2f",
			acc["ODQ 4/2"], int4Acc, l.Scale.TolAcc)
	}
}

func TestFigure19Ordering(t *testing.T) {
	l := testLab(t)
	r := Figure19(l, []string{"resnet20"})
	n := r.Normalized[0]
	// INT16 = 1.0 by construction; everything else faster; ODQ fastest.
	if n[0] != 1 {
		t.Fatalf("INT16 must normalize to 1, got %v", n[0])
	}
	if !(n[3] < n[2] && n[2] < n[1] && n[1] < n[0]) {
		t.Fatalf("normalized times out of order: %v", n)
	}
	if s := r.Speedup("INT16"); s < 0.8 {
		t.Fatalf("ODQ vs INT16 reduction %.3f too small", s)
	}
	if s := r.Speedup("DRQ"); s < 0.3 {
		t.Fatalf("ODQ vs DRQ reduction %.3f too small", s)
	}
	if r.ODQUtil[0] <= 0 || r.ODQUtil[0] > 1 {
		t.Fatalf("ODQ utilization %v out of range", r.ODQUtil[0])
	}
}

func TestFigure21EnergyShapes(t *testing.T) {
	l := testLab(t)
	r := Figure21(l, []string{"resnet20"})
	n := r.Normalized[0]
	if !(n[3] < n[2] && n[2] < n[1] && n[1] < n[0]) {
		t.Fatalf("normalized energies out of order: %v", n)
	}
	if s := r.Saving("INT16"); s < 0.8 {
		t.Fatalf("ODQ vs INT16 energy saving %.3f too small", s)
	}
	for _, bd := range r.Energy[0] {
		if bd.DRAM <= 0 || bd.Buffer <= 0 || bd.Cores <= 0 {
			t.Fatalf("energy breakdown non-positive: %+v", bd)
		}
	}
}

func TestFigure22Monotonicity(t *testing.T) {
	l := testLab(t)
	r := Figure22(l)
	for i := 1; i < len(r.Thresholds); i++ {
		if r.SensFrac[i] > r.SensFrac[i-1]+1e-9 {
			t.Fatalf("sensitive fraction must fall with threshold: %v", r.SensFrac)
		}
	}
	if r.SensFrac[0] <= r.SensFrac[len(r.SensFrac)-1] {
		t.Fatal("threshold sweep produced a flat sensitivity curve")
	}
}

func TestRegistryCompleteAndRuns(t *testing.T) {
	reg := Registry()
	for _, name := range Names() {
		if _, ok := reg[name]; !ok {
			t.Fatalf("registry missing %q", name)
		}
	}
	l := testLab(t)
	var buf bytes.Buffer
	// Exercise Run on a cheap, already-cached experiment.
	if err := Run(l, "table2", &buf); err != nil {
		t.Fatal(err)
	}
	if err := Run(l, "nope", &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if buf.Len() == 0 {
		t.Fatal("Run produced no output")
	}
}

func TestAblationThreshold(t *testing.T) {
	l := testLab(t)
	r := AblationThreshold(l)
	if r.GlobalSensFrac <= 0 || r.GlobalSensFrac > 1 {
		t.Fatalf("global sensitivity %v out of range", r.GlobalSensFrac)
	}
	if len(r.LayerThresholds) == 0 {
		t.Fatal("per-layer calibration produced no thresholds")
	}
	// The calibrated run should land near the global sensitivity level.
	d := r.PerLayerSensFrac - r.GlobalSensFrac
	if d < -0.25 || d > 0.25 {
		t.Fatalf("calibrated sensitivity %.3f far from target %.3f",
			r.PerLayerSensFrac, r.GlobalSensFrac)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "per-layer") {
		t.Fatal("render incomplete")
	}
}

func TestAblationAlloc(t *testing.T) {
	l := testLab(t)
	r := AblationAlloc(l)
	if r.StaticStatic <= 0 {
		t.Fatal("no cycles modeled")
	}
	if r.StaticDynamic > r.StaticStatic {
		t.Fatalf("dynamic workload must not be slower: %d vs %d",
			r.StaticDynamic, r.StaticStatic)
	}
	if r.ReconfigDynamic > r.StaticDynamic {
		t.Fatalf("reconfiguration must not be slower: %d vs %d",
			r.ReconfigDynamic, r.StaticDynamic)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "reconfigurable") {
		t.Fatal("render incomplete")
	}
}

func TestAblationPrecision(t *testing.T) {
	l := testLab(t)
	r := AblationPrecision(l)
	// Note: no accuracy ordering is asserted — the model is threshold-
	// aware-retrained for the 4/2 error pattern, so the 8/4 extension
	// sees a different (untrained-for) approximation profile.
	if r.Acc42 < 0 || r.Acc42 > 1 || r.Acc84 < 0 || r.Acc84 > 1 {
		t.Fatalf("accuracies out of range: %v %v", r.Acc42, r.Acc84)
	}
	if r.Sens84 <= 0 || r.Sens84 > 1 || r.Sens42 <= 0 || r.Sens42 > 1 {
		t.Fatalf("sensitivity fractions out of range: %v %v", r.Sens42, r.Sens84)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "extension") {
		t.Fatal("render incomplete")
	}
}

func TestComputeHeadlines(t *testing.T) {
	l := testLab(t)
	h := ComputeHeadlines(l, []string{"resnet20"})
	if h.SpeedupVsINT16 <= 0 || h.SpeedupVsINT16 >= 1 {
		t.Fatalf("speedup vs INT16 %v out of range", h.SpeedupVsINT16)
	}
	if h.SavingVsDRQ <= 0 {
		t.Fatalf("energy saving vs DRQ %v", h.SavingVsDRQ)
	}
	if h.SensMin > h.SensMax {
		t.Fatalf("sensitivity bounds inverted: %v > %v", h.SensMin, h.SensMax)
	}
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "paper") {
		t.Fatal("headline render incomplete")
	}
}

func TestTable3ThresholdSearch(t *testing.T) {
	l := testLab(t)
	// Restrict to the cached model to keep the test fast: call the
	// underlying search directly rather than Table3 (which trains all
	// four models).
	tm := l.Model("resnet20", "c10")
	res := l.SearchThreshold(tm, 0.05, 4)
	if res.Iterations < 1 || len(res.Trace) != res.Iterations {
		t.Fatalf("search bookkeeping wrong: %+v", res)
	}
	if res.Threshold < 0 {
		t.Fatal("negative threshold")
	}
}
