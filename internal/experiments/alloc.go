package experiments

import (
	"io"

	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/stats"
)

// odqMaskProfiles returns (cached) ODQ profiles with per-output masks for
// a model, feeding the cycle-level PE simulations.
func odqMaskProfiles(l *Lab, modelName string) []*quant.LayerProfile {
	key := "odqmasks/" + modelName
	v := l.Memo(key, func() interface{} {
		tm := l.Model(modelName, "c10")
		th := l.Threshold(tm)
		profiles, _ := l.ProfileODQ(tm, th, true)
		return profiles
	})
	return v.([]*quant.LayerProfile)
}

// Figure11Result reports per-layer predictor/executor idle fractions for
// two static PE allocations with the static (round-robin) workload
// scheduler — the inefficiency Figure 11 demonstrates.
type Figure11Result struct {
	Model   string
	Configs []sim.AllocConfig
	Layers  []string
	// PreIdle[cfg][layer], ExeIdle[cfg][layer].
	PreIdle [][]float64
	ExeIdle [][]float64
}

// Figure11 reproduces Figure 11 on ResNet-20 masks: (a) 15P/12E and
// (b) 18P/9E, both statically allocated and statically scheduled.
func Figure11(l *Lab) *Figure11Result {
	profiles := odqMaskProfiles(l, "resnet20")
	r := &Figure11Result{
		Model:   "resnet20",
		Configs: []sim.AllocConfig{{Predictor: 15, Executor: 12}, {Predictor: 18, Executor: 9}},
	}
	r.PreIdle = make([][]float64, len(r.Configs))
	r.ExeIdle = make([][]float64, len(r.Configs))
	for i, p := range profiles {
		r.Layers = append(r.Layers, layerLabel(i))
		w := sim.LayerWorkFromProfile(p)
		for ci, cfg := range r.Configs {
			res := sim.SimulateLayer(w, sim.DefaultSliceConfig(cfg, false))
			r.PreIdle[ci] = append(r.PreIdle[ci], res.PredIdleFrac())
			r.ExeIdle[ci] = append(r.ExeIdle[ci], res.ExecIdleFrac())
		}
	}
	return r
}

// Render implements the experiment output.
func (r *Figure11Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 11: % idle PEs under STATIC allocation (ResNet-20)",
		"layer",
		"pre_idle "+r.Configs[0].String(), "exe_idle "+r.Configs[0].String(),
		"pre_idle "+r.Configs[1].String(), "exe_idle "+r.Configs[1].String())
	for i, l := range r.Layers {
		t.AddRow(l,
			stats.Pct(r.PreIdle[0][i]), stats.Pct(r.ExeIdle[0][i]),
			stats.Pct(r.PreIdle[1][i]), stats.Pct(r.ExeIdle[1][i]))
	}
	t.Render(w)
}

// Table1Row pairs an allocation with its analytic bubble-free bound and
// the bound observed in the cycle simulation.
type Table1Row struct {
	Config       sim.AllocConfig
	AnalyticMax  float64
	SimulatedMax float64
}

// Table1Result reproduces Table 1 and cross-checks it against the cycle
// simulator.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 computes the analytic maxima and validates each with a bisection
// over the simulated sensitive fraction (bubble-free = predictor idle
// only in the tail).
func Table1(l *Lab) *Table1Result {
	r := &Table1Result{}
	for _, cfg := range sim.Table1Configs() {
		row := Table1Row{Config: cfg, AnalyticMax: cfg.MaxSensitiveFraction()}
		row.SimulatedMax = simulatedMaxSensitive(cfg)
		r.Rows = append(r.Rows, row)
	}
	return r
}

// simulatedMaxSensitive bisects for the largest uniform sensitive
// fraction whose predictor idle stays at tail-only levels.
func simulatedMaxSensitive(cfg sim.AllocConfig) float64 {
	const (
		ofms     = 400
		perOFM   = 64
		tailIdle = 0.05
	)
	bubbleFree := func(s float64) bool {
		w := sim.LayerWork{OutputsPerOFM: perOFM, SensPerOFM: make([]int, ofms)}
		for i := range w.SensPerOFM {
			w.SensPerOFM[i] = int(s * float64(perOFM))
		}
		// Table 1 is a steady-state *rate* condition; give the buffer
		// room to absorb the synchronized per-wave OFM bursts so we
		// measure throughput, not transient buffering.
		sc := sim.SliceConfig{Alloc: cfg, DynamicWorkload: true, BufferOFMs: 21 + 3*cfg.Predictor}
		res := sim.SimulateLayer(w, sc)
		return res.PredIdleFrac() <= tailIdle
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if bubbleFree(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Render implements the experiment output.
func (r *Table1Result) Render(w io.Writer) {
	t := stats.NewTable("Table 1: PE-array allocation vs max sensitive fraction without pipeline bubbles",
		"predictor arrays", "executor arrays", "analytic max", "simulated max")
	for _, row := range r.Rows {
		t.AddRow(row.Config.Predictor, row.Config.Executor,
			stats.Pct(row.AnalyticMax), stats.Pct(row.SimulatedMax))
	}
	t.Render(w)
}

// Table2Result renders the accelerator configurations under comparison.
type Table2Result struct {
	Accels []*sim.Accel
}

// Table2 reports the Table-2 configurations.
func Table2(_ *Lab) *Table2Result {
	m := sim.Table2Accels()
	return &Table2Result{Accels: []*sim.Accel{m["INT16"], m["INT8"], m["DRQ"], m["ODQ"]}}
}

// Render implements the experiment output.
func (r *Table2Result) Render(w io.Writer) {
	t := stats.NewTable("Table 2: accelerator configurations (equal area / on-chip memory)",
		"accelerator", "#PEs", "on-chip memory (MB)")
	for _, a := range r.Accels {
		t.AddRow(a.Name, a.PEs, float64(a.OnChipBytes)/(1024*1024))
	}
	t.Render(w)
}

// Figure20Result reports per-layer idle fractions under the full ODQ
// scheme: per-layer Table-1 reconfiguration plus dynamic workload
// scheduling.
type Figure20Result struct {
	Model   string
	Layers  []string
	Idle    []float64
	Allocs  []sim.AllocConfig
	MaxIdle float64
}

// Figure20 reproduces Figure 20 on ResNet-20 masks.
func Figure20(l *Lab) *Figure20Result {
	profiles := odqMaskProfiles(l, "resnet20")
	r := &Figure20Result{Model: "resnet20"}
	for i, p := range profiles {
		w := sim.LayerWorkFromProfile(p)
		res, alloc := sim.SimulateLayerAuto(w)
		idle := res.IdleFrac()
		r.Layers = append(r.Layers, layerLabel(i))
		r.Idle = append(r.Idle, idle)
		r.Allocs = append(r.Allocs, alloc)
		if idle > r.MaxIdle {
			r.MaxIdle = idle
		}
	}
	return r
}

// Render implements the experiment output.
func (r *Figure20Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 20: % idle PEs with ODQ dynamic allocation (ResNet-20)",
		"layer", "allocation", "idle", "")
	for i, l := range r.Layers {
		t.AddRow(l, r.Allocs[i].String(), stats.Pct(r.Idle[i]), stats.Bar(r.Idle[i], 30))
	}
	t.Render(w)
}
