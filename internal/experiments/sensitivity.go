package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/stats"
)

// InsensitivityResult is the per-layer percentage of insensitive output
// features under ODQ (Figures 9 and 10).
type InsensitivityResult struct {
	Title       string
	Model       string
	Threshold   float32
	Layers      []string
	Insensitive []float64 // fraction per layer
}

// insensitivityFor profiles a model with ODQ and extracts per-layer
// insensitive-output fractions.
func insensitivityFor(l *Lab, modelName, title string) *InsensitivityResult {
	key := "insens/" + modelName
	v := l.Memo(key, func() interface{} {
		tm := l.Model(modelName, "c10")
		th := l.Threshold(tm)
		profiles, _ := l.ProfileODQ(tm, th, false)
		r := &InsensitivityResult{Title: title, Model: modelName, Threshold: th}
		for i, p := range profiles {
			r.Layers = append(r.Layers, layerLabel(i))
			frac := 0.0
			if p.TotalOutputs > 0 {
				frac = 1 - float64(p.SensitiveOutputs)/float64(p.TotalOutputs)
			}
			r.Insensitive = append(r.Insensitive, frac)
		}
		return r
	})
	return v.(*InsensitivityResult)
}

// Figure9 reproduces Figure 9: insensitive output percentage per layer of
// ResNet-56 under ODQ.
func Figure9(l *Lab) *InsensitivityResult {
	return insensitivityFor(l, "resnet56",
		"Figure 9: % insensitive output features per layer (ODQ, ResNet-56)")
}

// Figure10 reproduces Figure 10 for ResNet-20.
func Figure10(l *Lab) *InsensitivityResult {
	return insensitivityFor(l, "resnet20",
		"Figure 10: % insensitive output features per layer (ODQ, ResNet-20)")
}

// Render implements the experiment output.
func (r *InsensitivityResult) Render(w io.Writer) {
	t := stats.NewTable(r.Title, "layer", "insensitive", "")
	for i, l := range r.Layers {
		t.AddRow(l, stats.Pct(r.Insensitive[i]), stats.Bar(r.Insensitive[i], 30))
	}
	t.Render(w)
}

// Figure22Result is the threshold sweep of Figure 22: accuracy and the
// INT4 (sensitive) / INT2 (insensitive) computation split versus the
// sensitivity threshold.
type Figure22Result struct {
	Model      string
	Thresholds []float32
	Accuracy   []float64
	SensFrac   []float64 // = INT4 share; 1-SensFrac is the INT2 share
}

// Figure22 sweeps the ODQ threshold on ResNet-20.
func Figure22(l *Lab) *Figure22Result {
	tm := l.Model("resnet20", "c10")
	r := &Figure22Result{Model: tm.ModelName}
	for _, th := range []float32{0, 0.0625, 0.125, 0.25, 0.375, 0.5, 0.75, 1.0} {
		e := core.NewExec(th, core.WithProfiling())
		acc := l.EvalDynamic(tm, e)
		// Reuse the evaluation pass's profiles for the precision split.
		r.Thresholds = append(r.Thresholds, th)
		r.Accuracy = append(r.Accuracy, acc)
		r.SensFrac = append(r.SensFrac, e.SensitiveFraction())
	}
	return r
}

// Render implements the experiment output.
func (r *Figure22Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 22: threshold analysis (ODQ, ResNet-20)",
		"threshold", "accuracy", "INT4 (sensitive)", "INT2 (insensitive)")
	for i := range r.Thresholds {
		t.AddRow(r.Thresholds[i], stats.Pct(r.Accuracy[i]),
			stats.Pct(r.SensFrac[i]), stats.Pct(1-r.SensFrac[i]))
	}
	t.Render(w)
}

// Table3Row is one model's adaptive-threshold outcome.
type Table3Row struct {
	Model      string
	Threshold  float32
	Accuracy   float64
	RefAcc     float64
	Iterations int
	Converged  bool
}

// Table3Result reproduces Table 3: the threshold chosen per model by the
// adaptive search.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the adaptive threshold search for all four models.
func Table3(l *Lab) *Table3Result {
	r := &Table3Result{}
	for _, m := range []string{"resnet56", "resnet20", "vgg16", "densenet"} {
		tm := l.Model(m, "c10")
		res := l.SearchThreshold(tm, 0.02, 6)
		refAcc := l.FP32AccOf(tm)
		r.Rows = append(r.Rows, Table3Row{
			Model:      m,
			Threshold:  res.Threshold,
			Accuracy:   res.Accuracy,
			RefAcc:     refAcc,
			Iterations: res.Iterations,
			Converged:  res.Converged,
		})
	}
	return r
}

// FP32AccOf returns the model's float reference accuracy.
func (l *Lab) FP32AccOf(tm *TrainedModel) float64 { return tm.FP32Acc }

// Render implements the experiment output.
func (r *Table3Result) Render(w io.Writer) {
	t := stats.NewTable("Table 3: adaptive sensitivity thresholds",
		"model", "threshold", "ODQ acc", "FP32 acc", "iterations", "converged")
	for _, row := range r.Rows {
		t.AddRow(row.Model, row.Threshold, stats.Pct(row.Accuracy),
			stats.Pct(row.RefAcc), row.Iterations, row.Converged)
	}
	t.Render(w)
}
