package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/drq"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// motivationStats runs (once per lab) the instrumented DRQ INT8/INT4 pass
// on ResNet-20 / synthetic-CIFAR-10 that Figures 2–5 are measured from.
func motivationStats(l *Lab) []*drq.MotivationStat {
	v := l.Memo("motivation/resnet20/c10", func() interface{} {
		tm := l.Model("resnet20", "c10")
		th := l.Threshold(tm)
		_, exec := l.ProfileDRQ(tm, 8, 4, true, th)
		return exec.MotivationStats()
	})
	return v.([]*drq.MotivationStat)
}

// layerLabel renders the paper's C1..Cn naming.
func layerLabel(i int) string { return fmt.Sprintf("C%d", i+1) }

// Figure1Result illustrates the input-directed mismatch on LeNet-5: how
// many sensitive outputs are produced mostly from insensitive (low-
// precision) inputs, and vice versa — the two failure cases of Figure 1.
type Figure1Result struct {
	Layer string
	// SensitiveFromLowInputs counts sensitive outputs computed with
	// >50% low-precision inputs (case 1 of Figure 1).
	SensitiveFromLowInputs int64
	SensitiveTotal         int64
	// InsensitiveFromHighInputs counts insensitive outputs computed
	// with >50% high-precision inputs (case 2).
	InsensitiveFromHighInputs int64
	InsensitiveTotal          int64
	// InputMask/OutputMask are small ASCII renderings of one sample's
	// input-region sensitivity and output sensitivity.
	InputMask  []string
	OutputMask []string
}

// Figure1 reproduces the Figure-1 illustration with LeNet-5 on the
// MNIST-like dataset.
func Figure1(l *Lab) *Figure1Result {
	tm := l.Model("lenet5", "mnist")
	_, exec := l.ProfileDRQ(tm, 8, 4, true, 0.3)
	ms := exec.MotivationStats()
	if len(ms) == 0 {
		return &Figure1Result{}
	}
	s := ms[0]
	res := &Figure1Result{
		Layer:                     s.Name,
		SensitiveFromLowInputs:    s.SensLowFracBuckets[2] + s.SensLowFracBuckets[3],
		SensitiveTotal:            s.SensitiveCount,
		InsensitiveFromHighInputs: s.InsensHighFracBuckets[2] + s.InsensHighFracBuckets[3],
		InsensitiveTotal:          s.InsensitiveCount,
	}

	// Render one sample's masks for the first conv layer.
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx[:1])
	inMask := drq.RegionMask(x, 4, meanAbs(x))
	res.InputMask = asciiMask(inMask[0], x.Shape[2], x.Shape[3])

	conv := nn.Convs(tm.Net)[0]
	odq := core.NewExec(0.3, core.WithMaskRecording())
	nn.SetConvExec(tm.Net, odq)
	tm.Net.Forward(x, false)
	nn.SetConvExec(tm.Net, nil)
	for _, p := range odq.Profiles() {
		if p.Name == conv.Name {
			cols := p.Geom.OutH * p.Geom.OutW
			if len(p.Mask) >= cols {
				res.OutputMask = asciiMask(p.Mask[:cols], p.Geom.OutH, p.Geom.OutW)
			}
		}
	}
	return res
}

// Render implements the experiment output.
func (r *Figure1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== Figure 1 (illustration): input- vs output-directed sensitivity, LeNet-5 ==\n")
	fmt.Fprintf(w, "layer %s: %d/%d sensitive outputs built from >50%% low-precision inputs (case 1)\n",
		r.Layer, r.SensitiveFromLowInputs, r.SensitiveTotal)
	fmt.Fprintf(w, "layer %s: %d/%d insensitive outputs built from >50%% high-precision inputs (case 2)\n",
		r.Layer, r.InsensitiveFromHighInputs, r.InsensitiveTotal)
	fmt.Fprintln(w, "input-region sensitivity (one sample, '#'=sensitive):")
	for _, line := range r.InputMask {
		fmt.Fprintln(w, "  "+line)
	}
	fmt.Fprintln(w, "output sensitivity, first conv channel ('#'=sensitive):")
	for _, line := range r.OutputMask {
		fmt.Fprintln(w, "  "+line)
	}
	fmt.Fprintln(w)
}

// Figure2Result is the per-layer quartile histogram of low-precision
// input fractions feeding sensitive outputs.
type Figure2Result struct {
	Layers  []string
	Buckets [][4]float64 // fraction of sensitive outputs per quartile
}

// Figure2 reproduces Figure 2 (DRQ on ResNet-20).
func Figure2(l *Lab) *Figure2Result {
	ms := motivationStats(l)
	r := &Figure2Result{}
	for i, s := range ms {
		r.Layers = append(r.Layers, layerLabel(i))
		var b [4]float64
		if s.SensitiveCount > 0 {
			for j := range b {
				b[j] = float64(s.SensLowFracBuckets[j]) / float64(s.SensitiveCount)
			}
		}
		r.Buckets = append(r.Buckets, b)
	}
	return r
}

// Render implements the experiment output.
func (r *Figure2Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 2: % of low-precision inputs feeding SENSITIVE outputs (DRQ, ResNet-20)",
		"layer", "0-25%", "25-50%", "50-75%", "75-100%")
	for i, l := range r.Layers {
		b := r.Buckets[i]
		t.AddRow(l, stats.Pct(b[0]), stats.Pct(b[1]), stats.Pct(b[2]), stats.Pct(b[3]))
	}
	t.Render(w)
}

// Figure3Result is the per-layer mean precision loss on sensitive outputs.
type Figure3Result struct {
	Layers []string
	Loss   []float64
}

// Figure3 reproduces Figure 3.
func Figure3(l *Lab) *Figure3Result {
	ms := motivationStats(l)
	r := &Figure3Result{}
	for i, s := range ms {
		r.Layers = append(r.Layers, layerLabel(i))
		loss := 0.0
		if s.PrecLossCount > 0 {
			loss = s.PrecLossSum / float64(s.PrecLossCount)
		}
		r.Loss = append(r.Loss, loss)
	}
	return r
}

// Render implements the experiment output.
func (r *Figure3Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 3: precision loss on sensitive outputs (DRQ, ResNet-20)",
		"layer", "mean |float-DRQ|")
	for i, l := range r.Layers {
		t.AddRow(l, r.Loss[i])
	}
	t.Render(w)
}

// Figure4Result is the per-layer quartile histogram of high-precision
// input fractions feeding insensitive outputs.
type Figure4Result struct {
	Layers  []string
	Buckets [][4]float64
}

// Figure4 reproduces Figure 4.
func Figure4(l *Lab) *Figure4Result {
	ms := motivationStats(l)
	r := &Figure4Result{}
	for i, s := range ms {
		r.Layers = append(r.Layers, layerLabel(i))
		var b [4]float64
		if s.InsensitiveCount > 0 {
			for j := range b {
				b[j] = float64(s.InsensHighFracBuckets[j]) / float64(s.InsensitiveCount)
			}
		}
		r.Buckets = append(r.Buckets, b)
	}
	return r
}

// Render implements the experiment output.
func (r *Figure4Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 4: % of high-precision inputs feeding INSENSITIVE outputs (DRQ, ResNet-20)",
		"layer", "0-25%", "25-50%", "50-75%", "75-100%")
	for i, l := range r.Layers {
		b := r.Buckets[i]
		t.AddRow(l, stats.Pct(b[0]), stats.Pct(b[1]), stats.Pct(b[2]), stats.Pct(b[3]))
	}
	t.Render(w)
}

// Figure5Result is the per-layer computation waste (extra precision,
// Eq. 1) on insensitive outputs.
type Figure5Result struct {
	Layers []string
	Extra  []float64
}

// Figure5 reproduces Figure 5.
func Figure5(l *Lab) *Figure5Result {
	ms := motivationStats(l)
	r := &Figure5Result{}
	for i, s := range ms {
		r.Layers = append(r.Layers, layerLabel(i))
		r.Extra = append(r.Extra, s.ExtraPrecision)
	}
	return r
}

// Render implements the experiment output.
func (r *Figure5Result) Render(w io.Writer) {
	t := stats.NewTable("Figure 5: computation waste on insensitive outputs (Eq. 1, DRQ, ResNet-20)",
		"layer", "max |DRQ-allLow|")
	for i, l := range r.Layers {
		t.AddRow(l, r.Extra[i])
	}
	t.Render(w)
}

// asciiMask renders a boolean H×W mask as '#'/'.' rows, downsampling to at
// most 16 rows/cols for terminal friendliness.
func asciiMask(mask []bool, h, w int) []string {
	stepY, stepX := (h+15)/16, (w+15)/16
	if stepY < 1 {
		stepY = 1
	}
	if stepX < 1 {
		stepX = 1
	}
	var out []string
	for y := 0; y < h; y += stepY {
		line := make([]byte, 0, w/stepX+1)
		for x := 0; x < w; x += stepX {
			if mask[y*w+x] {
				line = append(line, '#')
			} else {
				line = append(line, '.')
			}
		}
		out = append(out, string(line))
	}
	return out
}

func meanAbs(x *tensor.Tensor) float32 {
	if x.Len() == 0 {
		return 0
	}
	var s float64
	for _, v := range x.Data {
		if v < 0 {
			v = -v
		}
		s += float64(v)
	}
	return float32(s / float64(x.Len()))
}
