package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationThresholdResult compares the paper's single network-wide
// threshold (§6.4: "we use the same threshold across all layers, which
// greatly simplifies the design") against per-layer thresholds calibrated
// to equalize every layer's sensitivity at the same overall level.
type AblationThresholdResult struct {
	Model string
	// Global run.
	GlobalThreshold float32
	GlobalAccuracy  float64
	GlobalSensFrac  float64
	// Per-layer calibrated run.
	PerLayerAccuracy float64
	PerLayerSensFrac float64
	// LayerThresholds is the calibrated per-layer map.
	LayerThresholds map[string]float32
}

// AblationThreshold runs the global-vs-per-layer threshold comparison on
// ResNet-20.
func AblationThreshold(l *Lab) *AblationThresholdResult {
	tm := l.Model("resnet20", "c10")
	th := l.Threshold(tm)

	global := core.NewExec(th, core.WithProfiling())
	r := &AblationThresholdResult{Model: tm.ModelName, GlobalThreshold: th}
	r.GlobalAccuracy = l.EvalDynamic(tm, global)
	r.GlobalSensFrac = global.SensitiveFraction()

	// Calibrate per-layer thresholds toward the global run's overall
	// sensitive fraction with a few multiplicative passes over the
	// profiling batch.
	target := r.GlobalSensFrac
	if target <= 0 {
		target = 0.5
	}
	idx, ds := l.profileBatch(tm)
	x, _ := ds.Batch(idx)
	overrides := map[string]float32{}
	for pass := 0; pass < 3; pass++ {
		pe := core.NewExec(th, core.WithLayerThresholds(overrides), core.WithProfiling())
		nn.SetConvExecTail(tm.Net, pe)
		tm.Net.Forward(x, false)
		nn.SetConvExecTail(tm.Net, nil)
		for _, p := range pe.Profiles() {
			if p.TotalOutputs == 0 {
				continue
			}
			frac := float64(p.SensitiveOutputs) / float64(p.TotalOutputs)
			cur, ok := overrides[p.Name]
			if !ok {
				cur = th
			}
			switch {
			case frac > target*1.1: // too sensitive → raise threshold
				overrides[p.Name] = cur * 1.4
			case frac < target*0.9: // too insensitive → lower threshold
				overrides[p.Name] = cur * 0.7
			default:
				overrides[p.Name] = cur
			}
		}
	}
	r.LayerThresholds = overrides

	per := core.NewExec(th, core.WithLayerThresholds(overrides), core.WithProfiling())
	r.PerLayerAccuracy = l.EvalDynamic(tm, per)
	r.PerLayerSensFrac = per.SensitiveFraction()
	return r
}

// Render implements the experiment output.
func (r *AblationThresholdResult) Render(w io.Writer) {
	t := stats.NewTable("Ablation: global vs per-layer sensitivity thresholds (ResNet-20)",
		"variant", "accuracy", "sensitive fraction")
	t.AddRow("global (paper)", stats.Pct(r.GlobalAccuracy), stats.Pct(r.GlobalSensFrac))
	t.AddRow("per-layer calibrated", stats.Pct(r.PerLayerAccuracy), stats.Pct(r.PerLayerSensFrac))
	t.Render(w)
}

// AblationPrecisionResult evaluates the paper's precision-extension claim
// ("ODQ is not limited to 4-bit and 2-bit quantization and can be easily
// extended to support other types of precision, e.g., INT8"): the same
// executor at 8-bit codes with a 4-bit predictor. Caveat when reading the
// numbers: the lab's model is threshold-aware-retrained against the 4/2
// error pattern, so the 8/4 variant runs on a network tuned for a
// different approximation profile.
type AblationPrecisionResult struct {
	Model     string
	Threshold float32
	// Rows: {name, accuracy, sensitive fraction}.
	Acc42, Acc84   float64
	Sens42, Sens84 float64
}

// AblationPrecision compares ODQ 4/2 against the INT8/INT4 extension on
// ResNet-20.
func AblationPrecision(l *Lab) *AblationPrecisionResult {
	tm := l.Model("resnet20", "c10")
	th := l.Threshold(tm)
	r := &AblationPrecisionResult{Model: tm.ModelName, Threshold: th}

	e42 := core.NewExec(th, core.WithProfiling())
	r.Acc42 = l.EvalDynamic(tm, e42)
	r.Sens42 = e42.SensitiveFraction()

	e84 := core.NewExec(th, core.WithBits(8), core.WithPredBits(4), core.WithProfiling())
	r.Acc84 = l.EvalDynamic(tm, e84)
	r.Sens84 = e84.SensitiveFraction()
	return r
}

// Render implements the experiment output.
func (r *AblationPrecisionResult) Render(w io.Writer) {
	t := stats.NewTable("Ablation: ODQ precision extension (ResNet-20, same threshold)",
		"variant", "accuracy", "sensitive fraction")
	t.AddRow("ODQ 4/2 (paper)", stats.Pct(r.Acc42), stats.Pct(r.Sens42))
	t.AddRow("ODQ 8/4 (extension)", stats.Pct(r.Acc84), stats.Pct(r.Sens84))
	t.Render(w)
}

// AblationAllocResult totals modeled cycles over a network's masks for
// three scheduler variants, quantifying what Figures 11 and 20 show
// per layer.
type AblationAllocResult struct {
	Model string
	// Cycles per variant.
	StaticStatic    int64 // fixed 15P/12E, static round-robin workload
	StaticDynamic   int64 // fixed 15P/12E, dynamic workload
	ReconfigDynamic int64 // per-layer Table-1 reconfig + dynamic workload
}

// AblationAlloc runs the scheduler ablation on ResNet-20 masks.
func AblationAlloc(l *Lab) *AblationAllocResult {
	profiles := odqMaskProfiles(l, "resnet20")
	r := &AblationAllocResult{Model: "resnet20"}
	fixed := sim.AllocConfig{Predictor: 15, Executor: 12}
	for _, p := range profiles {
		w := sim.LayerWorkFromProfile(p)
		r.StaticStatic += sim.SimulateLayer(w, sim.DefaultSliceConfig(fixed, false)).Cycles
		r.StaticDynamic += sim.SimulateLayer(w, sim.DefaultSliceConfig(fixed, true)).Cycles
		res, _ := sim.SimulateLayerAuto(w)
		r.ReconfigDynamic += res.Cycles
	}
	return r
}

// Render implements the experiment output.
func (r *AblationAllocResult) Render(w io.Writer) {
	t := stats.NewTable("Ablation: PE allocation & workload scheduling (ResNet-20, total slice cycles)",
		"variant", "cycles", "vs static/static")
	base := float64(r.StaticStatic)
	t.AddRow("static alloc + static workload", r.StaticStatic, "1.000x")
	t.AddRow("static alloc + dynamic workload", r.StaticDynamic,
		stats.FormatFloat(float64(r.StaticDynamic)/base)+"x")
	t.AddRow("reconfigurable + dynamic (ODQ)", r.ReconfigDynamic,
		stats.FormatFloat(float64(r.ReconfigDynamic)/base)+"x")
	t.Render(w)
}
